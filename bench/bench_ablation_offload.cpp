// Ablation: full GPU offload vs partial offload vs CPU-only.
//
// The paper's core design decision is offloading the *entire* cSTF pipeline
// to the GPU: "Offloading the entire end-to-end cSTF computation to the GPU
// eliminates the need to transfer data between host and GPU over the slower
// PCIe or NVLink interconnect" (Section 1). This bench quantifies that claim
// by modeling the partial-offload strategy earlier frameworks used — MTTKRP
// on the GPU, the constrained update on the CPU — which must move the MTTKRP
// output M (I_n x R) to the host and the updated factor H (I_n x R) back,
// every mode, every iteration.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  cstf::bench::JsonSession session("ablation_offload");
  using namespace cstf;
  const auto gpu = simgpu::a100();
  const index_t rank = 32;
  std::printf("=== Ablation: full GPU offload vs partial offload (A100 model, R=%lld) ===\n\n",
              static_cast<long long>(rank));
  std::printf("%-12s %12s %12s %12s %14s\n", "Tensor", "Full GPU [s]",
              "Hybrid [s]", "CPU [s]", "Transfer [s]");

  std::vector<double> hybrid_penalties;
  for (const auto& name : bench::dataset_names()) {
    const DatasetAnalog data = bench::load_dataset(name);
    const auto gpu_it = bench::gpu_iteration(data, gpu, UpdateScheme::kCuAdmm, rank);
    const auto cpu_it = bench::splatt_iteration(data, rank);

    // Hybrid: GPU MTTKRP, CPU everything else, plus per-mode transfers of M
    // down and H back up at full dataset scale.
    double transfer = 0.0;
    for (std::size_t m = 0; m < data.spec.full_dims.size(); ++m) {
      const double matrix_bytes =
          static_cast<double>(data.spec.full_dims[m]) *
          static_cast<double>(rank) * simgpu::kWord;
      transfer += 2.0 * simgpu::transfer_time(gpu, matrix_bytes);
    }
    const double hybrid = gpu_it.mttkrp + cpu_it.gram + cpu_it.update +
                          cpu_it.normalize + transfer;
    hybrid_penalties.push_back(hybrid / gpu_it.total());
    std::printf("%-12s %12.5f %12.5f %12.5f %14.5f\n", name.c_str(),
                gpu_it.total(), hybrid, cpu_it.total(), transfer);
  }
  std::printf("\nHybrid / full-GPU geomean slowdown: %.2fx\n",
              bench::geomean(hybrid_penalties));
  std::printf(
      "Shape to verify: the hybrid pays both the CPU update and the link\n"
      "transfers; full offload dominates it on every tensor.\n");
  return 0;
}
