// The cost of constraints: per-iteration modeled time of unconstrained
// CP-ALS vs non-negative cSTF with cuADMM (10 inner iterations), on the GPU
// model — quantifying the paper's premise that adding constraints creates a
// new bottleneck in the update phase.
#include <cstdio>

#include "bench_util.hpp"
#include "updates/als.hpp"

int main() {
  cstf::bench::JsonSession session("constraint_overhead");
  using namespace cstf;
  const auto spec = simgpu::a100();
  const index_t rank = 32;
  std::printf("=== Constraint overhead: unconstrained ALS vs cuADMM "
              "(A100 model, R=%lld) ===\n\n",
              static_cast<long long>(rank));
  std::printf("%-12s %12s %12s %12s %16s\n", "Tensor", "ALS [s]",
              "cuADMM [s]", "overhead", "update share");

  std::vector<double> overheads;
  for (const auto& name : bench::dataset_names()) {
    const DatasetAnalog data = bench::load_dataset(name);
    BlcoBackend backend(data.tensor);
    std::vector<double> mode_scales;
    for (int m = 0; m < data.tensor.num_modes(); ++m) {
      mode_scales.push_back(data.dim_scale(m));
    }
    AlsUpdate als;
    const auto t_als = bench::modeled_iteration(
        backend, als, spec, rank, mode_scales, data.nnz_scale());
    auto cuadmm = CstfFramework::make_update(UpdateScheme::kCuAdmm,
                                             Proximity::non_negative(), 10);
    const auto t_admm = bench::modeled_iteration(
        backend, *cuadmm, spec, rank, mode_scales, data.nnz_scale());
    const double overhead = t_admm.total() / t_als.total();
    overheads.push_back(overhead);
    std::printf("%-12s %12.5f %12.5f %11.2fx %15.1f%%\n", name.c_str(),
                t_als.total(), t_admm.total(), overhead,
                100.0 * t_admm.update / t_admm.total());
  }
  std::printf("%-12s %12s %12s %11.2fx\n", "GeoMean", "", "",
              bench::geomean(overheads));
  std::printf(
      "\nShape to verify: constraints cost more where mode lengths are long\n"
      "(the 10-inner-iteration ADMM re-touches the factor repeatedly), the\n"
      "premise behind optimizing the update phase at all.\n");
  return 0;
}
