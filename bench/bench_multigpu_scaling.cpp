// Multi-GPU MTTKRP scaling (the paper's future-work extension, simulated):
// per-mode MTTKRP time on 1/2/4/8 A100s with ring all-reduce of the partial
// outputs over NVLink, for a small, a medium, and two large tensors.
//
// Expected shape: near-linear scaling where the per-device work dominates
// (large nnz, short output mode); the all-reduce of long-mode outputs
// (Flickr mode 2: 28.2M x 32 doubles = 7.2 GB) caps speedup.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "multigpu/multi_gpu.hpp"

int main() {
  cstf::bench::JsonSession session("multigpu_scaling");
  using namespace cstf;
  const index_t rank = 32;
  std::printf("=== Multi-GPU MTTKRP scaling (A100 + NVLink ring, R=%lld) ===\n\n",
              static_cast<long long>(rank));
  std::printf("%-12s %-6s %12s %12s %12s %12s %12s %8s %8s\n", "Tensor",
              "Mode", "1 GPU [s]", "2 GPUs", "4 GPUs", "8 GPUs", "8 ovl",
              "chunks", "parity");

  for (const char* name : {"NIPS", "NELL2", "Delicious", "Amazon"}) {
    const DatasetAnalog data = bench::load_dataset(name);
    Rng rng(3);
    std::vector<Matrix> factors;
    for (int m = 0; m < data.tensor.num_modes(); ++m) {
      Matrix f(data.tensor.dim(m), rank);
      f.fill_uniform(rng, 0.0, 1.0);
      factors.push_back(std::move(f));
    }
    for (int mode = 0; mode < data.tensor.num_modes(); ++mode) {
      double base = 0.0;
      std::printf("%-12s %-6d", name, mode + 1);
      for (int devices : {1, 2, 4, 8}) {
        MultiGpuOptions opt;
        opt.num_devices = devices;
        MultiGpuCstf engine(data.tensor, opt);
        Matrix out(data.tensor.dim(mode), rank);
        engine.mttkrp(factors, mode, out);
        const double t = engine.modeled_mttkrp_time(
            mode, rank, data.nnz_scale(), data.dim_scale(mode));
        if (devices == 1) {
          base = t;
          std::printf(" %12.5f", t);
        } else {
          std::printf(" %10.2fx ", base / t);
        }
        if (devices == 8) {
          // Chunked comm/compute overlap: all-reduce pieces pipeline behind
          // the remaining shard compute on a communication stream.
          int chunks = 0;
          const double ovl = engine.modeled_mttkrp_time_overlapped(
              mode, rank, data.nnz_scale(), data.dim_scale(mode), 0, &chunks);
          // Parity gate: the compiled 1-chunk plan degenerates to the legacy
          // serial model (slowest shard + all-reduce) exactly.
          const double plan_serial = engine.modeled_mttkrp_time_overlapped(
              mode, rank, data.nnz_scale(), data.dim_scale(mode), 1);
          CSTF_CHECK_MSG(std::abs(plan_serial - t) <= 1e-12 * std::abs(t),
                         "planner 1-chunk makespan " << plan_serial
                         << " != legacy serial makespan " << t << " on "
                         << name << " mode " << mode);
          std::printf(" %10.2fx  %7d %7.4fx", base / ovl, chunks,
                      plan_serial / t);
          if (session.enabled()) {
            bench::BenchRecord rec;
            rec.dataset = name;
            rec.machine = engine.options().device.name;
            rec.rank = rank;
            rec.phases.mttkrp = t;  // serial 8-GPU reference
            rec.extras = {{"mode", static_cast<double>(mode)},
                          {"devices", 8.0},
                          {"legacy_serial_s", t},
                          {"planner_serial_s", plan_serial},
                          {"planner_overlap_s", ovl},
                          {"chunks", static_cast<double>(chunks)}};
            session.add_record(std::move(rec));
          }
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nColumns 2-4 are speedups over 1 GPU (serial: slowest shard +\n"
      "all-reduce). \"8 ovl\" overlaps chunked all-reduce with compute on 8\n"
      "GPUs — at least the serial 8-GPU speedup, and strictly better where\n"
      "the all-reduce tail was exposed (long output modes). \"parity\" runs\n"
      "the exec::Planner-compiled schedule at 1 chunk, which must reproduce\n"
      "the legacy serial model exactly (1.0000; the bench aborts otherwise).\n");
  return 0;
}
