// Reproduces Figure 4: per-mode speedup of cuADMM's two optimizations —
// operation fusion (OF), pre-inversion (PI), and both — over the baseline
// cuBLAS-composed ADMM, for a rank-32 update on the H100 model.
//
// Expected shape: PI >= OF individually; OF+PI best; speedup grows with the
// mode length (small ~1.0-1.3x for NIPS/Enron, up to ~1.8x for the large
// factor matrices of Flickr/Delicious/Amazon).
#include <cstdio>

#include "bench_util.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"

namespace {

using namespace cstf;

// Modeled full-scale time of one ADMM update call (10 inner iterations) on
// an I x R factor with the given OF/PI configuration.
double admm_time(index_t i_rows, double scale, index_t rank, bool fusion,
                 bool preinversion, const simgpu::DeviceSpec& spec) {
  Rng rng(11);
  Matrix g(2 * rank, rank);
  g.fill_uniform(rng, 0.0, 1.0);
  Matrix s(rank, rank);
  la::gram(g, s);
  Matrix m(i_rows, rank), h(i_rows, rank);
  m.fill_uniform(rng, 0.0, 1.0);
  h.fill_uniform(rng, 0.0, 1.0);

  AdmmOptions opt;
  opt.prox = Proximity::non_negative();
  opt.inner_iterations = 10;
  opt.operation_fusion = fusion;
  opt.preinversion = preinversion;
  AdmmUpdate admm(opt);
  simgpu::Device dev(spec);
  ModeState state;
  admm.update(dev, s, m, h, state);
  return perfmodel::modeled_time_scaled(dev, scale);
}

}  // namespace

int main() {
  cstf::bench::JsonSession session("fig4_cuadmm");
  const index_t rank = 32;
  const auto spec = simgpu::h100();
  std::printf("=== Figure 4: cuADMM optimization speedups over baseline ADMM "
              "(H100 model, R=%lld, 10 inner iters) ===\n\n",
              static_cast<long long>(rank));
  std::printf("%-12s %-8s %-12s %10s %10s %10s\n", "Tensor", "Mode",
              "I (full)", "OF", "PI", "OF+PI");

  // The paper's Figure-4 dataset groups: small (NIPS), medium (Enron),
  // large (Flickr, Delicious, Amazon).
  for (const char* name : {"NIPS", "Enron", "Flickr", "Delicious", "Amazon"}) {
    const DatasetAnalog data = bench::load_dataset(name);
    for (int mode = 0; mode < data.tensor.num_modes(); ++mode) {
      // Cap the in-memory factor height; the metered stats are scaled to the
      // full mode length regardless.
      const index_t run_rows = std::min<index_t>(data.tensor.dim(mode), 20000);
      const double scale =
          static_cast<double>(data.spec.full_dims[static_cast<std::size_t>(mode)]) /
          static_cast<double>(run_rows);
      const double base = admm_time(run_rows, scale, rank, false, false, spec);
      const double of = admm_time(run_rows, scale, rank, true, false, spec);
      const double pi = admm_time(run_rows, scale, rank, false, true, spec);
      const double both = admm_time(run_rows, scale, rank, true, true, spec);
      std::printf("%-12s Mode %-3d %-12.3g %9.2fx %9.2fx %9.2fx\n", name,
                  mode + 1,
                  static_cast<double>(
                      data.spec.full_dims[static_cast<std::size_t>(mode)]),
                  base / of, base / pi, base / both);
    }
  }
  std::printf(
      "\nPaper shape to verify: OF+PI >= max(OF, PI); speedup grows with the\n"
      "mode length, up to ~1.8x for the largest factor matrices.\n");
  return 0;
}
