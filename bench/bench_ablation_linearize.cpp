// Ablation of the linearization bit ordering (DESIGN.md §5, decision 5):
// ALTO/BLCO interleave mode bits round-robin so that nearby linearized
// values are nearby in *every* mode. The ablation baseline lays each mode's
// bits out contiguously (mode-major), which degenerates to a mode-0
// lexicographic sort. Two observable consequences:
//   * BLCO block spans: interleaving keeps each block's coordinate range
//     tight in all modes, shrinking the per-block delta width (compression);
//   * MTTKRP locality: with mode-major order, only mode-0 gathers are
//     local — the other modes' factor reads scatter across the full factor.
#include <cstdio>

#include "bench_util.hpp"
#include "formats/blco.hpp"

int main() {
  cstf::bench::JsonSession session("ablation_linearize");
  using namespace cstf;
  std::printf("=== Ablation: interleaved vs mode-major linearization ===\n\n");
  std::printf("%-12s %18s %18s %14s\n", "Tensor", "interleaved [b/nnz]",
              "mode-major [b/nnz]", "delta-bit win");

  for (const char* name : {"NIPS", "Uber", "NELL2", "Delicious", "NELL1"}) {
    const DatasetAnalog data = bench::load_dataset(name);
    const BlcoTensor inter(data.tensor, 4096, BitOrder::kInterleaved);
    const BlcoTensor major(data.tensor, 4096, BitOrder::kModeMajor);
    const double value_bytes =
        static_cast<double>(data.tensor.nnz()) * sizeof(real_t);
    const double bits_inter = 8.0 * (inter.storage_bytes() - value_bytes) /
                              static_cast<double>(inter.nnz());
    const double bits_major = 8.0 * (major.storage_bytes() - value_bytes) /
                              static_cast<double>(major.nnz());
    std::printf("%-12s %18.1f %18.1f %13.2fx\n", name, bits_inter, bits_major,
                bits_major / bits_inter);
  }
  // The Table-2 analogs scatter their skewed indices uniformly (hash mixing
  // in the generator), which is locality-neutral: both orderings compress
  // about equally above. Real tensors cluster (communities, co-occurring
  // tags); a clustered synthetic shows where interleaving wins.
  {
    Rng rng(77);
    SparseTensor clustered({1 << 14, 1 << 14, 1 << 14});
    index_t coords[3];
    for (int cluster = 0; cluster < 200; ++cluster) {
      index_t center[3];
      for (auto& c : center) {
        c = static_cast<index_t>(rng.uniform_index((1 << 14) - 256));
      }
      for (int k = 0; k < 300; ++k) {
        for (int m = 0; m < 3; ++m) {
          coords[m] = center[m] + static_cast<index_t>(rng.uniform_index(256));
        }
        clustered.append(coords, 1.0);
      }
    }
    clustered.sort_by_mode(0);
    clustered.dedup_sum();
    const BlcoTensor inter(clustered, 256, BitOrder::kInterleaved);
    const BlcoTensor major(clustered, 256, BitOrder::kModeMajor);
    const double value_bytes =
        static_cast<double>(clustered.nnz()) * sizeof(real_t);
    const double bits_inter = 8.0 * (inter.storage_bytes() - value_bytes) /
                              static_cast<double>(inter.nnz());
    const double bits_major = 8.0 * (major.storage_bytes() - value_bytes) /
                              static_cast<double>(major.nnz());
    std::printf("%-12s %18.1f %18.1f %13.2fx\n", "clustered", bits_inter,
                bits_major, bits_major / bits_inter);
  }
  std::printf(
      "\nIndex bits per nonzero after per-block delta packing. The uniform\n"
      "hash-scattered analogs are locality-neutral (ratios ~1.0); the\n"
      "clustered tensor shows a modest interleaving win from tighter block\n"
      "spans. Interleaving's primary benefit is not compression but\n"
      "mode-agnostic MTTKRP locality: one sorted copy gives cache-friendly\n"
      "gathers for every mode, where mode-major order favors mode 0 only —\n"
      "an effect the working-set model of the MTTKRP kernels captures.\n");
  return 0;
}
