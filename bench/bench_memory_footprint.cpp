// Device-memory footprint of a fully GPU-resident run, per dataset at full
// scale, against the 80 GB HBM of the paper's GPUs (Table 1).
//
// The BLCO substrate (Nguyen et al., ICS'22) exists precisely because the
// largest FROSTT tensors approach or exceed device memory; this bench shows
// which Table-2 datasets are comfortably resident and how BLCO's
// delta-compressed indices compare against COO and CSF storage.
#include <cstdio>

#include "bench_util.hpp"
#include "formats/blco.hpp"
#include "formats/csf.hpp"

int main() {
  cstf::bench::JsonSession session("memory_footprint");
  using namespace cstf;
  const index_t rank = 32;
  const double hbm = 80e9;
  std::printf("=== Device-memory footprint at full dataset scale (R=%lld, 80 GB HBM) ===\n\n",
              static_cast<long long>(rank));
  std::printf("%-12s %12s %12s %12s %14s %10s\n", "Tensor", "COO [GB]",
              "CSF [GB]", "BLCO [GB]", "resident [GB]", "fits?");

  for (const auto& name : bench::dataset_names()) {
    const DatasetAnalog data = bench::load_dataset(name);
    const int modes = data.tensor.num_modes();
    const double scale = data.nnz_scale();

    // Per-format index+value storage, scaled to full nonzero count.
    const double coo_bytes =
        static_cast<double>(data.tensor.nnz()) *
        (static_cast<double>(modes) * sizeof(index_t) + sizeof(real_t)) * scale;
    const CsfTensor csf(data.tensor, 0);
    const double csf_bytes = csf.storage_bytes() * scale;
    const BlcoTensor blco(data.tensor);
    const double blco_bytes = blco.storage_bytes() * scale;

    // Full resident footprint: BLCO + factors + duals + scratch.
    double factor_bytes = 0.0, max_rows = 0.0;
    for (std::size_t m = 0; m < data.spec.full_dims.size(); ++m) {
      const auto rows = static_cast<double>(data.spec.full_dims[m]);
      factor_bytes += 2.0 * rows * static_cast<double>(rank) * sizeof(real_t);
      max_rows = std::max(max_rows, rows);
    }
    const double resident = blco_bytes + factor_bytes +
                            3.0 * max_rows * static_cast<double>(rank) *
                                sizeof(real_t);
    std::printf("%-12s %12.3f %12.3f %12.3f %14.3f %10s\n", name.c_str(),
                coo_bytes / 1e9, csf_bytes / 1e9, blco_bytes / 1e9,
                resident / 1e9, resident <= hbm ? "yes" : "NO (stream)");
  }
  std::printf(
      "\nShape to verify: BLCO's delta-packed blocks undercut COO on every\n"
      "tensor (Amazon: ~54 GB COO vs ~18 GB BLCO — COO would leave no room\n"
      "for factors on an 80 GB device). The long-mode tensors' factor state\n"
      "grows with R; at R=128 Flickr/NELL1 exceed the device, which is the\n"
      "out-of-memory case the BLCO substrate paper streams.\n");
  return 0;
}
