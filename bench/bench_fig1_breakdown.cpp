// Reproduces Figure 1: execution-time breakdown of constrained tensor
// factorization for a dense tensor (DenseTF, PLANC-style) vs a sparse tensor
// (SparseTF, modified PLANC on Delicious), both on the Xeon model, R = 32.
//
// Expected shape: MTTKRP dominates DenseTF; UPDATE dominates SparseTF.
#include <cstdio>

#include "bench_util.hpp"
#include "tensor/dense.hpp"

namespace {

using namespace cstf;

void print_breakdown(const char* label, const bench::ModeledIteration& it) {
  const double total = it.total();
  std::printf("%-22s %8.1f%% %8.1f%% %8.1f%% %8.1f%%   (modeled %.4f s)\n",
              label, 100.0 * it.gram / total, 100.0 * it.mttkrp / total,
              100.0 * it.update / total, 100.0 * it.normalize / total, total);
}

}  // namespace

int main() {
  cstf::bench::JsonSession session("fig1_breakdown");
  const index_t rank = 32;
  std::printf("=== Figure 1: DenseTF vs SparseTF phase breakdown (Xeon model, R=%lld) ===\n\n",
              static_cast<long long>(rank));
  std::printf("%-22s %9s %9s %9s %9s\n", "", "GRAM", "MTTKRP", "UPDATE",
              "NORMALIZE");

  // --- DenseTF: the paper's synthetic 400 x 200 x 100 x 50 tensor, run at
  // 1/5 linear scale and metered statistics scaled back up per mode.
  {
    const std::vector<index_t> full_dims{400, 200, 100, 50};
    const std::vector<index_t> run_dims{80, 40, 20, 10};
    Rng rng(1);
    DenseTensor dense(run_dims);
    for (index_t i = 0; i < dense.num_elements(); ++i) {
      dense.data()[i] = rng.uniform();
    }
    DenseBackend backend(std::move(dense));
    std::vector<double> mode_scales;
    double elem_scale = 1.0;
    for (std::size_t m = 0; m < full_dims.size(); ++m) {
      const double s = static_cast<double>(full_dims[m]) /
                       static_cast<double>(run_dims[m]);
      mode_scales.push_back(s);
      elem_scale *= s;
    }
    for (UpdateScheme scheme :
         {UpdateScheme::kAdmm, UpdateScheme::kMu, UpdateScheme::kHals}) {
      auto update = CstfFramework::make_update(
          scheme, Proximity::non_negative(), 10);
      const auto it = bench::modeled_iteration(
          backend, *update, simgpu::xeon_8367hc(), rank, mode_scales,
          elem_scale);
      const char* name = scheme == UpdateScheme::kAdmm ? "DenseTF / ADMM"
                         : scheme == UpdateScheme::kMu ? "DenseTF / MU"
                                                        : "DenseTF / HALS";
      print_breakdown(name, it);
    }
  }

  // --- SparseTF: Delicious (Table 2), modified-PLANC = ALTO + unfused ADMM.
  {
    const DatasetAnalog deli = bench::load_dataset("Delicious");
    for (UpdateScheme scheme :
         {UpdateScheme::kAdmm, UpdateScheme::kMu, UpdateScheme::kHals}) {
      const auto it = bench::planc_sparse_iteration(deli, scheme, rank);
      const char* name = scheme == UpdateScheme::kAdmm ? "SparseTF / ADMM"
                         : scheme == UpdateScheme::kMu ? "SparseTF / MU"
                                                        : "SparseTF / HALS";
      print_breakdown(name, it);
    }
  }

  std::printf(
      "\nPaper shape to verify: MTTKRP dominates DenseTF; the UPDATE phase\n"
      "dominates SparseTF (Delicious).\n");
  return 0;
}
