// Reproduces Figures 9 and 10: speedup of the GPU framework running the MU
// and HALS non-negativity updates over the modified-PLANC CPU baseline
// (ALTO + MU/HALS on the Xeon model). Compiled twice:
// bench_fig9_mu_hals_a100 and bench_fig10_mu_hals_h100.
//
// Expected shape: geomeans comparable to the ADMM speedups (paper: MU 6.42x
// / HALS 5.90x on A100; 8.89x / 7.78x on H100).
#include <cstdio>

#include "bench_util.hpp"

int main() {
#ifdef CSTF_BENCH_H100
  cstf::bench::JsonSession session("fig10_mu_hals_h100");
#else
  cstf::bench::JsonSession session("fig9_mu_hals_a100");
#endif
  using namespace cstf;
#ifdef CSTF_BENCH_H100
  const auto spec = simgpu::h100();
  const char* fig = "Figure 10";
#else
  const auto spec = simgpu::a100();
  const char* fig = "Figure 9";
#endif
  const index_t rank = 32;
  std::printf("=== %s: MU / HALS per-iteration speedup vs PLANC-CPU (%s model, R=%lld) ===\n\n",
              fig, spec.name.c_str(), static_cast<long long>(rank));
  std::printf("%-12s %12s %12s\n", "Tensor", "MU", "HALS");

  std::vector<double> mu_speedups, hals_speedups;
  for (const auto& name : bench::dataset_names()) {
    const DatasetAnalog data = bench::load_dataset(name);
    const auto cpu_mu =
        bench::planc_sparse_iteration(data, UpdateScheme::kMu, rank);
    const auto gpu_mu =
        bench::gpu_iteration(data, spec, UpdateScheme::kMu, rank);
    const auto cpu_hals =
        bench::planc_sparse_iteration(data, UpdateScheme::kHals, rank);
    const auto gpu_hals =
        bench::gpu_iteration(data, spec, UpdateScheme::kHals, rank);
    const double mu = cpu_mu.total() / gpu_mu.total();
    const double hals = cpu_hals.total() / gpu_hals.total();
    mu_speedups.push_back(mu);
    hals_speedups.push_back(hals);
    std::printf("%-12s %11.2fx %11.2fx\n", name.c_str(), mu, hals);
  }
  std::printf("%-12s %11.2fx %11.2fx\n", "GeoMean",
              bench::geomean(mu_speedups), bench::geomean(hals_speedups));
  std::printf(
      "\nPaper reference: MU/HALS geomeans 6.42x/5.90x (A100) and\n"
      "8.89x/7.78x (H100) — comparable to the ADMM speedups, demonstrating\n"
      "the framework's update-scheme flexibility.\n");
  return 0;
}
