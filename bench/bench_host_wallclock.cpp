// Measured host wall-clock per phase — the only numbers in this repository
// that time *this machine* rather than the modeled targets. Useful for
// regression tracking of the real implementations and for sanity-checking
// that the modeled phase *ratios* are not artifacts: the host is a CPU, so
// its measured breakdown should resemble the modeled Xeon shape (UPDATE
// heavy for ADMM on long-mode tensors), not the GPU shape.
//
// The second section times the adaptive scatter engine (mttkrp/scatter.hpp)
// head-to-head on two synthetic fixtures chosen to separate the strategies:
//   scatter_short — mode length 1024 (<= 4096), rank 32: heavy contention,
//                   the privatized strategy's home turf;
//   scatter_long  — mode length 2^18: ~1 update/row, where atomics rarely
//                   collide and sorted should stay within ~1.1x of atomic.
// Each (fixture, strategy) wall time is the best of N repeats and is checked
// against mttkrp_ref before being trusted.
//
// The third section times the two MTTKRP engines (DESIGN.md §13) head to
// head on a 4-way short-mode fixture: the flat per-mode BLCO kernels against
// the dimension-tree reuse engine, one full AO iteration's MTTKRPs (all
// modes) per measurement. Order 4 is where the chain's reuse has room to pay
// (~9 vs 12 per-nonzero multiplies); the fixture's short modes keep the
// factor gathers cache-resident so the flop saving shows up in host time.
//
// The fourth section pits the autotuner against the cost model (DESIGN.md
// §14): run_tuning_trials picks a configuration for a 3-way fixture, and one
// full AO iteration's MTTKRPs are timed under the tuned and the model-picked
// configurations head to head.
//
// `--smoke` runs only the gated sections and exits nonzero when any gate
// fails: privatized must beat atomic on the short-mode scatter fixture,
// dimtree must not lose to flat on the 4-way fixture, and the tuned
// configuration must not lose to the model-picked one by more than 5% —
// the perf regression gates scripts/check.sh runs (CSTF_CHECK_SKIP_PERF=1
// skips them there).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_util.hpp"
#include "mttkrp/coo_mttkrp.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/generate.hpp"

namespace {

using namespace cstf;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic factor fill (cheap hash; no RNG state to thread through).
void fill_factor(Matrix& m, index_t mode) {
  for (index_t j = 0; j < m.cols(); ++j) {
    for (index_t i = 0; i < m.rows(); ++i) {
      const auto h = static_cast<std::uint64_t>(i) * 1315423911u +
                     static_cast<std::uint64_t>(j) * 2654435761u +
                     static_cast<std::uint64_t>(mode) * 97u;
      m(i, j) = 0.25 + static_cast<real_t>(h % 1000u) * 1e-3;
    }
  }
}

struct ScatterTimes {
  double atomic = 0.0;      // best-of-N wall seconds per strategy
  double privatized = 0.0;
  double sorted = 0.0;
};

/// Times the three concrete strategies on mode 0 of `x`. The sorted plan is
/// prebuilt and untimed (it is built once per tensor and amortized over the
/// factorization's iterations). Aborts via CSTF_CHECK if any strategy
/// disagrees with the sequential reference.
ScatterTimes time_scatter_strategies(const SparseTensor& x, index_t rank,
                                     int repeats) {
  std::vector<Matrix> factors;
  for (int m = 0; m < x.num_modes(); ++m) {
    factors.emplace_back(x.dim(m), rank);
    fill_factor(factors.back(), m);
  }
  Matrix ref(x.dim(0), rank);
  mttkrp_ref(x, factors, 0, ref);
  const ScatterPlan plan = coo_scatter_plan(x, 0);

  auto best_of = [&](ScatterStrategy strategy) {
    ScatterOptions opts;
    opts.strategy = strategy;
    Matrix out(x.dim(0), rank);
    double best = 1e30;
    for (int rep = 0; rep < repeats; ++rep) {
      const double t0 = now_s();
      mttkrp_coo(x, factors, 0, out, opts, &plan);
      best = std::min(best, now_s() - t0);
    }
    CSTF_CHECK_MSG(max_abs_diff(ref, out) <= 1e-6 * static_cast<real_t>(rank),
                   "scatter strategy "
                       << scatter_strategy_name(strategy)
                       << " disagrees with mttkrp_ref on the bench fixture");
    return best;
  };

  ScatterTimes t;
  t.atomic = best_of(ScatterStrategy::kAtomic);
  t.privatized = best_of(ScatterStrategy::kPrivatized);
  t.sorted = best_of(ScatterStrategy::kSorted);
  return t;
}

/// Emits one JSON record for a scatter fixture: the wall times live in the
/// kernel rows (one per strategy); the phase block carries the atomic
/// baseline as MTTKRP wall time and zero modeled time (nothing here is
/// modeled — these are host measurements).
void record_scatter_fixture(const std::string& dataset, index_t rank,
                            double nnz, const ScatterTimes& t) {
  bench::JsonSession* session = bench::JsonSession::current();
  if (session == nullptr) return;
  bench::BenchRecord rec;
  rec.dataset = dataset;
  rec.machine = "host";
  rec.rank = rank;
  rec.wall.mttkrp = t.atomic;
  const double flops = nnz * static_cast<double>(rank) * 4.0;
  const auto row = [&](const char* name, double wall_s) {
    bench::BenchKernelRow r;
    r.name = name;
    r.spans = 1;
    r.launches = 1;
    r.flops = flops;
    r.wall_s = wall_s;
    return r;
  };
  rec.kernels.push_back(row("scatter_atomic", t.atomic));
  rec.kernels.push_back(row("scatter_privatized", t.privatized));
  rec.kernels.push_back(row("scatter_sorted", t.sorted));
  session->add_record(std::move(rec));
}

/// Runs the scatter fixtures; returns false when the smoke gate fails
/// (privatized slower than atomic on the short-mode fixture).
bool run_scatter_section(int repeats) {
  const index_t rank = 32;
  std::printf(
      "\n=== Scatter-engine wall time, best of %d (mode 0, R=%lld) ===\n\n",
      repeats, static_cast<long long>(rank));
  std::printf("%-14s %10s %10s %12s %12s %12s %12s\n", "Fixture", "mode_len",
              "nnz", "atomic[ms]", "priv[ms]", "sorted[ms]", "priv/atomic");

  bool ok = true;
  ScatterTimes short_t, long_t;
  {
    RandomTensorParams p;
    p.dims = {1024, 4096, 4096};
    p.target_nnz = 200000;
    p.seed = 7;
    const SparseTensor x = generate_random(p);
    short_t = time_scatter_strategies(x, rank, repeats);
    std::printf("%-14s %10lld %10lld %12.3f %12.3f %12.3f %12.3f\n",
                "scatter_short", static_cast<long long>(x.dim(0)),
                static_cast<long long>(x.nnz()), short_t.atomic * 1e3,
                short_t.privatized * 1e3, short_t.sorted * 1e3,
                short_t.privatized / short_t.atomic);
    record_scatter_fixture("scatter_short", rank,
                           static_cast<double>(x.nnz()), short_t);
    ok = short_t.privatized <= short_t.atomic;
  }
  {
    RandomTensorParams p;
    p.dims = {index_t{1} << 18, 4096, 4096};
    p.target_nnz = 200000;
    p.seed = 11;
    const SparseTensor x = generate_random(p);
    long_t = time_scatter_strategies(x, rank, repeats);
    std::printf("%-14s %10lld %10lld %12.3f %12.3f %12.3f %12.3f\n",
                "scatter_long", static_cast<long long>(x.dim(0)),
                static_cast<long long>(x.nnz()), long_t.atomic * 1e3,
                long_t.privatized * 1e3, long_t.sorted * 1e3,
                long_t.privatized / long_t.atomic);
    record_scatter_fixture("scatter_long", rank, static_cast<double>(x.nnz()),
                           long_t);
  }
  std::printf(
      "\nGate: privatized %s atomic on scatter_short (%.3f ms vs %.3f ms)\n",
      ok ? "beats" : "LOSES TO", short_t.privatized * 1e3,
      short_t.atomic * 1e3);
  std::printf("Info: sorted/atomic on scatter_long = %.3f (target <= 1.1)\n",
              long_t.sorted / long_t.atomic);
  return ok;
}

/// Times one full AO iteration's MTTKRPs (all modes, best of N) through a
/// BLCO backend, flat vs dimension-tree. Every mode's output is checked
/// against mttkrp_ref before a time is trusted. Returns false when the
/// smoke gate fails (dimtree slower than flat).
bool run_dimtree_section(int repeats) {
  const index_t rank = 32;
  RandomTensorParams p;
  p.dims = {768, 1024, 1536, 2048};
  p.target_nnz = 150000;
  p.seed = 13;
  const SparseTensor x = generate_random(p);

  std::vector<Matrix> factors;
  for (int m = 0; m < x.num_modes(); ++m) {
    factors.emplace_back(x.dim(m), rank);
    fill_factor(factors.back(), m);
  }
  std::vector<Matrix> refs;
  for (int m = 0; m < x.num_modes(); ++m) {
    refs.emplace_back(x.dim(m), rank);
    mttkrp_ref(x, factors, m, refs.back());
  }

  // One timed measurement = the full iteration's MTTKRP sequence. For the
  // tree backend the lazy chain folds run inside the mode-n calls, so their
  // cost is charged — this is the steady-state per-iteration work, not a
  // warm-cache shortcut.
  auto best_of = [&](const BlcoBackend& backend) {
    simgpu::Device dev(simgpu::a100());
    double best = 1e30;
    for (int rep = 0; rep < repeats; ++rep) {
      double total = 0.0;
      for (int m = 0; m < x.num_modes(); ++m) {
        Matrix out(x.dim(m), rank);
        const double t0 = now_s();
        backend.mttkrp(dev, factors, m, out);
        total += now_s() - t0;
        CSTF_CHECK_MSG(
            max_abs_diff(refs[static_cast<std::size_t>(m)], out) <=
                1e-6 * static_cast<real_t>(rank),
            "mttkrp engine disagrees with mttkrp_ref on mode " << m);
      }
      best = std::min(best, total);
    }
    return best;
  };

  BlcoBackend flat(x);
  BlcoBackend tree(x);
  tree.enable_dimtree(x, rank);
  const double flat_s = best_of(flat);
  const double tree_s = best_of(tree);

  std::printf(
      "\n=== MTTKRP engine wall time, best of %d (4-way %lldx%lldx%lldx%lld, "
      "%lld nnz, all modes, R=%lld) ===\n\n",
      repeats, static_cast<long long>(x.dim(0)),
      static_cast<long long>(x.dim(1)), static_cast<long long>(x.dim(2)),
      static_cast<long long>(x.dim(3)), static_cast<long long>(x.nnz()),
      static_cast<long long>(rank));
  std::printf("%-14s %12s %12s %12s\n", "Engine", "flat[ms]", "dimtree[ms]",
              "flat/tree");
  std::printf("%-14s %12.3f %12.3f %12.3f\n", "blco", flat_s * 1e3,
              tree_s * 1e3, flat_s / tree_s);

  if (bench::JsonSession* session = bench::JsonSession::current()) {
    bench::BenchRecord rec;
    rec.dataset = "dimtree_4way";
    rec.machine = "host";
    rec.rank = rank;
    rec.wall.mttkrp = flat_s;
    rec.extras.emplace_back("mttkrp_flat_wall_s", flat_s);
    rec.extras.emplace_back("mttkrp_dimtree_wall_s", tree_s);
    session->add_record(std::move(rec));
  }

  const bool ok = tree_s <= flat_s;
  std::printf("\nGate: dimtree %s flat on the 4-way fixture (%.3f ms vs "
              "%.3f ms)\n",
              ok ? "does not lose to" : "LOSES TO", tree_s * 1e3,
              flat_s * 1e3);
  return ok;
}

/// Times one AO iteration's MTTKRPs (all modes, best of N) under the cost
/// model's configuration and under the autotuned one. The autotuner defers
/// to the model whenever the measured win is inside its tie-break tolerance,
/// so the tuned configuration losing by more than 5% means the trial harness
/// stopped reflecting the real kernels — that is the gate.
bool run_autotune_section(int repeats) {
  const index_t rank = 32;
  RandomTensorParams p;
  p.dims = {1024, 2048, 4096};
  p.target_nnz = 150000;
  p.seed = 17;
  const SparseTensor x = generate_random(p);

  autotune::TuneInputs in;
  in.tensor = &x;
  in.rank = rank;
  in.spec = simgpu::a100();
  autotune::TuningOptions topts;
  topts.policy = autotune::TuningPolicy::kMeasure;
  const autotune::TuningRecord rec = autotune::run_tuning_trials(in, topts);

  std::vector<Matrix> factors;
  for (int m = 0; m < x.num_modes(); ++m) {
    factors.emplace_back(x.dim(m), rank);
    fill_factor(factors.back(), m);
  }
  std::vector<Matrix> refs;
  for (int m = 0; m < x.num_modes(); ++m) {
    refs.emplace_back(x.dim(m), rank);
    mttkrp_ref(x, factors, m, refs.back());
  }

  auto best_of = [&](const BlcoBackend& backend) {
    simgpu::Device dev(simgpu::a100());
    double best = 1e30;
    for (int rep = 0; rep < repeats; ++rep) {
      double total = 0.0;
      for (int m = 0; m < x.num_modes(); ++m) {
        Matrix out(x.dim(m), rank);
        const double t0 = now_s();
        backend.mttkrp(dev, factors, m, out);
        total += now_s() - t0;
        CSTF_CHECK_MSG(
            max_abs_diff(refs[static_cast<std::size_t>(m)], out) <=
                1e-6 * static_cast<real_t>(rank),
            "tuned mttkrp disagrees with mttkrp_ref on mode " << m);
      }
      best = std::min(best, total);
    }
    return best;
  };

  // Model side: the exact configuration a kModel run would use, kAuto engine
  // resolution included.
  BlcoBackend model_backend(x);
  const MttkrpMode model_mode = resolve_mttkrp_mode(
      x, rank, ScatterOptions{}, simgpu::a100(), kDefaultDimtreeBudgetBytes,
      model_backend.tensor().storage_bytes());
  if (model_mode == MttkrpMode::kDimtree) {
    model_backend.enable_dimtree(x, rank);
  }
  const double model_s = best_of(model_backend);

  // Tuned side: the record's per-mode scatter picks, engine, and chunk knob.
  ScatterOptions tuned_scatter;
  tuned_scatter.per_mode = rec.scatter_per_mode;
  BlcoBackend tuned_backend(x, 4096, tuned_scatter);
  if (rec.mttkrp_mode == MttkrpMode::kDimtree) {
    tuned_backend.enable_dimtree(x, rank, rec.dimtree_budget_bytes);
  }
  const index_t saved_chunks = parallel_chunks_per_worker();
  if (rec.chunks_per_worker > 0) {
    set_parallel_chunks_per_worker(static_cast<index_t>(rec.chunks_per_worker));
  }
  const double tuned_s = best_of(tuned_backend);
  set_parallel_chunks_per_worker(saved_chunks);

  std::printf(
      "\n=== Autotuned vs model-picked MTTKRP config, best of %d "
      "(3-way %lldx%lldx%lld, %lld nnz, R=%lld) ===\n\n",
      repeats, static_cast<long long>(x.dim(0)),
      static_cast<long long>(x.dim(1)), static_cast<long long>(x.dim(2)),
      static_cast<long long>(x.nnz()), static_cast<long long>(rank));
  std::printf("%-14s %12s %12s %12s\n", "Config", "model[ms]", "tuned[ms]",
              "tuned/model");
  std::printf("%-14s %12.3f %12.3f %12.3f\n", "iteration", model_s * 1e3,
              tuned_s * 1e3, tuned_s / model_s);
  std::printf("tuned: engine %s, chunks/worker %u, scatter",
              mttkrp_mode_name(rec.mttkrp_mode), rec.chunks_per_worker);
  for (ScatterStrategy s : rec.scatter_per_mode) {
    std::printf(" %s", scatter_strategy_name(s));
  }
  std::printf("  (model engine %s)\n", mttkrp_mode_name(model_mode));

  if (bench::JsonSession* session = bench::JsonSession::current()) {
    bench::BenchRecord brec;
    brec.dataset = "autotune_3way";
    brec.machine = "host";
    brec.rank = rank;
    brec.wall.mttkrp = tuned_s;
    brec.extras.emplace_back("mttkrp_model_config_wall_s", model_s);
    brec.extras.emplace_back("mttkrp_tuned_config_wall_s", tuned_s);
    brec.extras.emplace_back("tuned_chunks_per_worker",
                             static_cast<double>(rec.chunks_per_worker));
    session->add_record(std::move(brec));
  }

  const bool ok = tuned_s <= 1.05 * model_s;
  std::printf("\nGate: tuned config %s the model-picked config "
              "(%.3f ms vs %.3f ms, tolerance 5%%)\n",
              ok ? "does not lose to" : "LOSES TO", tuned_s * 1e3,
              model_s * 1e3);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  cstf::bench::JsonSession session("host_wallclock");
  using namespace cstf;

  if (!smoke) {
    const index_t rank = 16;
    std::printf(
        "=== Measured host wall-clock per cSTF iteration (this machine, R=%lld) ===\n\n",
        static_cast<long long>(rank));
    std::printf("%-12s %-8s %10s %10s %10s %10s %10s\n", "Tensor", "Engine",
                "GRAM[ms]", "MTTKRP", "UPDATE", "NORM", "total");

    for (const char* name : {"NIPS", "NELL2", "Delicious"}) {
      const DatasetAnalog data = bench::load_dataset(name);
      std::vector<double> mode_scales(
          static_cast<std::size_t>(data.tensor.num_modes()), 1.0);

      {
        BlcoBackend backend(data.tensor);
        auto update = CstfFramework::make_update(
            UpdateScheme::kCuAdmm, Proximity::non_negative(), 10);
        bench::ModeledIteration wall;
        bench::modeled_iteration(backend, *update, simgpu::a100(), rank,
                                 mode_scales, 1.0, &wall);
        std::printf("%-12s %-8s %10.2f %10.2f %10.2f %10.2f %10.2f\n", name,
                    "blco", wall.gram * 1e3, wall.mttkrp * 1e3,
                    wall.update * 1e3, wall.normalize * 1e3,
                    wall.total() * 1e3);
      }
      {
        CsfBackend backend(data.tensor);
        BlockAdmmOptions opt;
        opt.prox = Proximity::non_negative();
        BlockAdmmUpdate update(opt);
        bench::ModeledIteration wall;
        bench::modeled_iteration(backend, update, simgpu::xeon_8367hc(), rank,
                                 mode_scales, 1.0, &wall);
        std::printf("%-12s %-8s %10.2f %10.2f %10.2f %10.2f %10.2f\n", name,
                    "csf", wall.gram * 1e3, wall.mttkrp * 1e3,
                    wall.update * 1e3, wall.normalize * 1e3,
                    wall.total() * 1e3);
      }
    }
    std::printf(
        "\nWall times are for the scaled analogs on this host (CPU execution\n"
        "regardless of the metering target) — compare trends, not magnitudes.\n");
  }

  const bool scatter_ok = run_scatter_section(smoke ? 7 : 3);
  const bool dimtree_ok = run_dimtree_section(smoke ? 7 : 3);
  const bool autotune_ok = run_autotune_section(smoke ? 7 : 3);
  if (smoke && !scatter_ok) {
    std::fprintf(stderr,
                 "bench_host_wallclock --smoke: privatized scatter slower "
                 "than atomic on the short-mode fixture\n");
    return 1;
  }
  if (smoke && !dimtree_ok) {
    std::fprintf(stderr,
                 "bench_host_wallclock --smoke: dimtree MTTKRP slower than "
                 "flat on the 4-way fixture\n");
    return 1;
  }
  if (smoke && !autotune_ok) {
    std::fprintf(stderr,
                 "bench_host_wallclock --smoke: autotuned config more than "
                 "5%% slower than the model-picked config\n");
    return 1;
  }
  return 0;
}
