// Measured host wall-clock per phase — the only numbers in this repository
// that time *this machine* rather than the modeled targets. Useful for
// regression tracking of the real implementations and for sanity-checking
// that the modeled phase *ratios* are not artifacts: the host is a CPU, so
// its measured breakdown should resemble the modeled Xeon shape (UPDATE
// heavy for ADMM on long-mode tensors), not the GPU shape.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  cstf::bench::JsonSession session("host_wallclock");
  using namespace cstf;
  const index_t rank = 16;
  std::printf("=== Measured host wall-clock per cSTF iteration (this machine, R=%lld) ===\n\n",
              static_cast<long long>(rank));
  std::printf("%-12s %-8s %10s %10s %10s %10s %10s\n", "Tensor", "Engine",
              "GRAM[ms]", "MTTKRP", "UPDATE", "NORM", "total");

  for (const char* name : {"NIPS", "NELL2", "Delicious"}) {
    const DatasetAnalog data = bench::load_dataset(name);
    std::vector<double> mode_scales(
        static_cast<std::size_t>(data.tensor.num_modes()), 1.0);

    {
      BlcoBackend backend(data.tensor);
      auto update = CstfFramework::make_update(UpdateScheme::kCuAdmm,
                                               Proximity::non_negative(), 10);
      bench::ModeledIteration wall;
      bench::modeled_iteration(backend, *update, simgpu::a100(), rank,
                               mode_scales, 1.0, &wall);
      std::printf("%-12s %-8s %10.2f %10.2f %10.2f %10.2f %10.2f\n", name,
                  "blco", wall.gram * 1e3, wall.mttkrp * 1e3,
                  wall.update * 1e3, wall.normalize * 1e3, wall.total() * 1e3);
    }
    {
      CsfBackend backend(data.tensor);
      BlockAdmmOptions opt;
      opt.prox = Proximity::non_negative();
      BlockAdmmUpdate update(opt);
      bench::ModeledIteration wall;
      bench::modeled_iteration(backend, update, simgpu::xeon_8367hc(), rank,
                               mode_scales, 1.0, &wall);
      std::printf("%-12s %-8s %10.2f %10.2f %10.2f %10.2f %10.2f\n", name,
                  "csf", wall.gram * 1e3, wall.mttkrp * 1e3, wall.update * 1e3,
                  wall.normalize * 1e3, wall.total() * 1e3);
    }
  }
  std::printf(
      "\nWall times are for the scaled analogs on this host (CPU execution\n"
      "regardless of the metering target) — compare trends, not magnitudes.\n");
  return 0;
}
