// Placement decision model (the paper's §7 future work, implemented):
// for each dataset, per-mode per-phase costs are modeled on both machines
// and scheduler::choose_placement picks the optimal device per phase,
// accounting for host-link transfers at device switches.
//
// Expected outcome: large long-mode tensors place everything on the GPU
// (transfers never pay for themselves); tensors whose CPU update is
// competitive (Uber, Chicago — cf. the sub-1x ADMM speedups in Figure 7) get
// hybrid or CPU-leaning plans.
#include <cstdio>

#include "bench_util.hpp"
#include "scheduler/placement.hpp"

int main() {
  cstf::bench::JsonSession session("scheduler");
  using namespace cstf;
  const auto gpu_spec = simgpu::a100();
  const index_t rank = 32;
  std::printf("=== Placement decision model (A100 + Xeon, R=%lld) ===\n\n",
              static_cast<long long>(rank));
  std::printf("%-12s %-9s %12s %12s %12s  %s\n", "Tensor", "Plan",
              "chosen [s]", "all-GPU [s]", "all-CPU [s]", "phase placement");

  for (const auto& name : bench::dataset_names()) {
    const DatasetAnalog data = bench::load_dataset(name);
    std::vector<double> mode_scales;
    for (int m = 0; m < data.tensor.num_modes(); ++m) {
      mode_scales.push_back(data.dim_scale(m));
    }

    // Per-mode, per-phase costs on each machine.
    std::vector<bench::ModeledIteration> gpu_modes, cpu_modes;
    {
      BlcoBackend backend(data.tensor);
      auto update = CstfFramework::make_update(UpdateScheme::kCuAdmm,
                                               Proximity::non_negative(), 10);
      bench::modeled_iteration(backend, *update, gpu_spec, rank, mode_scales,
                               data.nnz_scale(), nullptr, &gpu_modes);
    }
    {
      CsfBackend backend(data.tensor);
      BlockAdmmOptions opt;
      opt.prox = Proximity::non_negative();
      BlockAdmmUpdate update(opt);
      bench::modeled_iteration(backend, update, simgpu::xeon_8367hc(), rank,
                               mode_scales, data.nnz_scale(), nullptr,
                               &cpu_modes);
    }

    // Phase chain with link-boundary sizes. The tensor itself is resident on
    // both sides (uploaded once, amortized); the per-phase live data is the
    // mode's factor/MTTKRP matrix.
    std::vector<scheduler::PhaseCost> phases;
    double total_gpu = 0.0, total_cpu = 0.0;
    for (int n = 0; n < data.tensor.num_modes(); ++n) {
      const double matrix_bytes =
          static_cast<double>(data.spec.full_dims[static_cast<std::size_t>(n)]) *
          static_cast<double>(rank) * simgpu::kWord;
      const auto& g = gpu_modes[static_cast<std::size_t>(n)];
      const auto& c = cpu_modes[static_cast<std::size_t>(n)];
      const std::string mode = "m" + std::to_string(n);
      phases.push_back({mode + "/mttkrp", c.gram + c.mttkrp, g.gram + g.mttkrp,
                        matrix_bytes});
      phases.push_back({mode + "/update", c.update, g.update, matrix_bytes});
      phases.push_back({mode + "/norm", c.normalize, g.normalize, matrix_bytes});
      total_gpu += g.total();
      total_cpu += c.total();
    }

    const scheduler::PlacementPlan plan =
        scheduler::choose_placement(phases, gpu_spec);
    std::string placements;
    for (const auto& step : plan.steps) {
      placements += step.target == scheduler::Target::kGpu ? 'G' : 'C';
    }
    std::printf("%-12s %-9s %12.5f %12.5f %12.5f  %s\n", name.c_str(),
                plan.hybrid() ? "hybrid"
                : plan.all_on(scheduler::Target::kGpu) ? "all-GPU" : "all-CPU",
                plan.total_seconds, total_gpu, total_cpu, placements.c_str());
  }
  std::printf(
      "\nPer-phase letters: G = GPU, C = CPU, in (mttkrp, update, normalize)\n"
      "order per mode. The chosen plan is never worse than either pure\n"
      "placement by construction.\n");
  return 0;
}
