// Reproduces Table 2: the evaluation datasets (full-size specs) plus the
// scaled analogs this repository generates for them.
#include <cstdio>
#include <sstream>

#include "bench_util.hpp"

int main() {
  cstf::bench::JsonSession session("table2_datasets");
  using namespace cstf;
  std::printf("=== Table 2: sparse tensor datasets (paper spec vs generated analog) ===\n\n");
  std::printf("%-11s %-34s %-10s %-10s %-26s %-9s %-9s\n", "Tensor",
              "Dimensions (paper)", "NNZs", "Density", "Analog dims",
              "Analog", "Scale");
  for (const auto& name : bench::dataset_names()) {
    const DatasetAnalog analog = bench::load_dataset(name);
    const DatasetSpec& spec = analog.spec;
    std::ostringstream dims_full, dims_analog;
    for (std::size_t m = 0; m < spec.full_dims.size(); ++m) {
      if (m) dims_full << " x ";
      dims_full << spec.full_dims[m];
    }
    for (int m = 0; m < analog.tensor.num_modes(); ++m) {
      if (m) dims_analog << " x ";
      dims_analog << analog.tensor.dim(m);
    }
    std::printf("%-11s %-34s %-10.1e %-10.1e %-26s %-9lld %-9.0f\n",
                spec.name.c_str(), dims_full.str().c_str(), spec.full_nnz,
                spec.density(), dims_analog.str().c_str(),
                static_cast<long long>(analog.tensor.nnz()),
                analog.nnz_scale());
  }
  std::printf(
      "\n'Scale' is full nnz / analog nnz — the factor benches use to map\n"
      "metered MTTKRP statistics back to full size (DESIGN.md section 2).\n"
      "Set CSTF_DATA_DIR to a directory of FROSTT .tns files to run on the\n"
      "real tensors (scale becomes 1).\n");
  return 0;
}
