#include "bench_util.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "exec/executor.hpp"
#include "exec/planner.hpp"
#include "la/blas.hpp"
#include "la/elementwise.hpp"
#include "simgpu/dblas.hpp"
#include "tensor/io.hpp"

namespace cstf::bench {

namespace {

JsonSession* g_session = nullptr;

bool bench_json_enabled() {
  const std::string flag = env_string("CSTF_BENCH_JSON", "");
  if (!flag.empty() && flag != "0") return true;
  return !env_string("CSTF_BENCH_JSON_DIR", "").empty();
}

void append_phase(std::ostringstream& os, const char* name, double modeled,
                  double wall, bool last = false) {
  os << '"' << name << "\":{\"modeled_s\":" << simgpu::json::number(modeled)
     << ",\"wall_s\":" << simgpu::json::number(wall) << '}'
     << (last ? "" : ",");
}

}  // namespace

JsonSession::JsonSession(std::string bench_name)
    : name_(std::move(bench_name)), enabled_(bench_json_enabled()) {
  CSTF_CHECK_MSG(g_session == nullptr, "only one JsonSession may be active");
  g_session = this;
}

JsonSession::~JsonSession() {
  try {
    write();
  } catch (...) {
    // A failed telemetry write must not take the bench down.
  }
  g_session = nullptr;
}

JsonSession* JsonSession::current() { return g_session; }

std::string JsonSession::output_path() const {
  const std::string dir = env_string("CSTF_BENCH_JSON_DIR", ".");
  return dir + "/BENCH_" + name_ + ".json";
}

void JsonSession::add_record(BenchRecord record) {
  records_.push_back(std::move(record));
}

void JsonSession::annotate_last(const std::string& key, double value) {
  if (records_.empty()) return;
  records_.back().extras.emplace_back(key, value);
}

void JsonSession::set_dataset_context(std::string dataset) {
  dataset_context_ = std::move(dataset);
}

std::string JsonSession::take_dataset_context() {
  std::string out;
  std::swap(out, dataset_context_);
  return out;
}

std::string JsonSession::to_json() const {
  std::ostringstream os;
  os << "{\"bench\":\"" << simgpu::json::escape(name_)
     << "\",\"schema_version\":1,\"records\":[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    if (i > 0) os << ',';
    os << "{\"dataset\":\"" << simgpu::json::escape(r.dataset)
       << "\",\"machine\":\"" << simgpu::json::escape(r.machine)
       << "\",\"rank\":" << r.rank << ",\"phases\":{";
    append_phase(os, phase::kGram, r.phases.gram, r.wall.gram);
    append_phase(os, phase::kMttkrp, r.phases.mttkrp, r.wall.mttkrp);
    append_phase(os, phase::kUpdate, r.phases.update, r.wall.update);
    append_phase(os, phase::kNormalize, r.phases.normalize, r.wall.normalize,
                 /*last=*/true);
    os << "},\"total_modeled_s\":" << simgpu::json::number(r.phases.total())
       << ",\"kernels\":[";
    for (std::size_t k = 0; k < r.kernels.size(); ++k) {
      const BenchKernelRow& row = r.kernels[k];
      if (k > 0) os << ',';
      os << "{\"name\":\"" << simgpu::json::escape(row.name)
         << "\",\"spans\":" << row.spans << ",\"launches\":" << row.launches
         << ",\"flops\":" << simgpu::json::number(row.flops)
         << ",\"bytes\":" << simgpu::json::number(row.bytes)
         << ",\"modeled_s\":" << simgpu::json::number(row.modeled_s)
         << ",\"wall_s\":" << simgpu::json::number(row.wall_s) << '}';
    }
    os << "]";
    if (!r.extras.empty()) {
      os << ",\"extra\":{";
      for (std::size_t e = 0; e < r.extras.size(); ++e) {
        if (e > 0) os << ',';
        os << '"' << simgpu::json::escape(r.extras[e].first)
           << "\":" << simgpu::json::number(r.extras[e].second);
      }
      os << '}';
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string JsonSession::write() {
  if (!enabled_ || written_) return "";
  const std::string path = output_path();
  std::ofstream out(path);
  CSTF_CHECK_MSG(out.good(), "cannot write bench JSON " << path);
  out << to_json() << '\n';
  out.close();
  written_ = true;
  std::fprintf(stderr, "[bench] wrote %s (%zu record%s)\n", path.c_str(),
               records_.size(), records_.size() == 1 ? "" : "s");
  return path;
}

DatasetAnalog load_dataset(const std::string& name) {
  const DatasetSpec& spec = dataset_by_name(name);
  const std::string dir = env_string("CSTF_DATA_DIR", "");
  if (!dir.empty()) {
    const std::string path = dir + "/" + name + ".tns";
    std::ifstream probe(path);
    if (probe.good()) {
      probe.close();
      DatasetAnalog full{spec, read_tns_file(path)};
      return full;  // dim_scale/nnz_scale ~ 1 for the real tensor
    }
  }
  return make_analog(spec, default_analog_nnz());
}

ModeledIteration modeled_iteration(const DatasetAnalog& data,
                                   const MttkrpBackend& backend,
                                   const UpdateMethod& update,
                                   const simgpu::DeviceSpec& spec,
                                   index_t rank, ModeledIteration* wall,
                                   std::vector<ModeledIteration>* per_mode) {
  std::vector<double> mode_scales;
  for (int m = 0; m < backend.num_modes(); ++m) {
    mode_scales.push_back(data.dim_scale(m));
  }
  if (JsonSession::current() != nullptr) {
    JsonSession::current()->set_dataset_context(data.spec.name);
  }
  return modeled_iteration(backend, update, spec, rank, mode_scales,
                           data.nnz_scale(), wall, per_mode);
}

double overlapped_total(const std::vector<ModeledIteration>& per_mode,
                        const simgpu::DeviceSpec& spec) {
  // Fixed-span timeline: per mode, the Gram work runs on its own lane
  // concurrently with the default-lane MTTKRP (both only need the previous
  // mode's normalized factor), and the update joins the two. The phase times
  // are already scaled, so the spans carry them as externally modeled
  // durations.
  simgpu::Device dev(spec);
  const simgpu::Stream gram = dev.create_stream("gram");
  for (const ModeledIteration& m : per_mode) {
    // Gram_n starts once the default lane has retired Normalize_{n-1}.
    dev.wait_event(gram, dev.record_event());
    dev.record_fixed("gram", m.gram, gram);
    dev.record_fixed("mttkrp", m.mttkrp);
    dev.wait_event(simgpu::Stream{}, dev.record_event(gram));
    dev.record_fixed("update", m.update);
    dev.record_fixed("normalize", m.normalize);
  }
  return dev.modeled_makespan_s();
}

double planner_overlapped_total(const std::vector<ModeledIteration>& per_mode,
                                const simgpu::DeviceSpec& spec) {
  std::vector<exec::FixedModePhases> modes;
  modes.reserve(per_mode.size());
  for (const ModeledIteration& m : per_mode) {
    modes.push_back({m.gram, m.mttkrp, m.update, m.normalize});
  }
  auto plan = std::make_shared<const exec::Plan>(
      exec::Planner::compile_fixed_pipeline(modes));
  simgpu::Device dev(spec);
  exec::Executor executor(dev, std::move(plan));
  executor.run();
  return dev.modeled_makespan_s();
}

ModeledIteration modeled_iteration(const MttkrpBackend& backend,
                                   const UpdateMethod& update,
                                   const simgpu::DeviceSpec& spec,
                                   index_t rank,
                                   const std::vector<double>& mode_scales,
                                   double nnz_scale, ModeledIteration* wall,
                                   std::vector<ModeledIteration>* per_mode) {
  const int modes = backend.num_modes();
  if (per_mode) per_mode->assign(static_cast<std::size_t>(modes), {});
  simgpu::Device dev(spec);
  // The tracer survives the per-phase dev.reset() calls, so its per-kernel
  // aggregates cover the whole iteration for the telemetry record.
  simgpu::Tracer tracer;
  dev.set_tracer(&tracer);

  // Factors + cached grams, as the driver holds them.
  Rng rng(7);
  std::vector<Matrix> factors;
  std::vector<Matrix> grams;
  std::vector<ModeState> states(static_cast<std::size_t>(modes));
  for (int m = 0; m < modes; ++m) {
    Matrix f(backend.dim(m), rank);
    f.fill_uniform(rng, 0.0, 1.0);
    Matrix g(rank, rank);
    la::gram(f, g);
    factors.push_back(std::move(f));
    grams.push_back(std::move(g));
  }

  ModeledIteration out;
  ModeledIteration wall_local;  // always measured, so telemetry has wall times
  Matrix s(rank, rank), m_out;
  std::vector<real_t> lambda(static_cast<std::size_t>(rank), 1.0);

  for (int n = 0; n < modes; ++n) {
    Matrix& h = factors[static_cast<std::size_t>(n)];
    const double mode_scale = mode_scales[static_cast<std::size_t>(n)];

    // --- GRAM: Hadamard of cached grams (R^2, negligible but metered) plus
    // the post-update dsyrk of this mode's factor.
    dev.reset();
    Timer t_gram;
    tracer.begin_phase(phase::kGram);
    s.set_all(1.0);
    for (int m = 0; m < modes; ++m) {
      if (m != n) la::hadamard_inplace(s, grams[static_cast<std::size_t>(m)]);
    }
    simgpu::dsyrk_gram(dev, h, grams[static_cast<std::size_t>(n)]);
    {
      const double dt = perfmodel::modeled_time_scaled(dev, mode_scale);
      out.gram += dt;
      if (per_mode) (*per_mode)[static_cast<std::size_t>(n)].gram += dt;
    }
    wall_local.gram += t_gram.seconds();
    tracer.end_phase();

    // --- MTTKRP.
    dev.reset();
    Timer t_mttkrp;
    tracer.begin_phase(phase::kMttkrp);
    if (!m_out.same_shape(h)) m_out.resize(h.rows(), h.cols());
    backend.mttkrp(dev, factors, n, m_out);
    {
      const double dt = perfmodel::modeled_time_scaled(dev, nnz_scale);
      out.mttkrp += dt;
      if (per_mode) (*per_mode)[static_cast<std::size_t>(n)].mttkrp += dt;
    }
    wall_local.mttkrp += t_mttkrp.seconds();
    tracer.end_phase();

    // --- UPDATE.
    dev.reset();
    Timer t_update;
    tracer.begin_phase(phase::kUpdate);
    update.update(dev, s, m_out, h, states[static_cast<std::size_t>(n)]);
    {
      const double dt = perfmodel::modeled_time_scaled(dev, mode_scale);
      out.update += dt;
      if (per_mode) (*per_mode)[static_cast<std::size_t>(n)].update += dt;
    }
    wall_local.update += t_update.seconds();
    tracer.end_phase();

    // --- NORMALIZE (column 2-norms absorbed into lambda).
    dev.reset();
    Timer t_norm;
    tracer.begin_phase(phase::kNormalize);
    {
      simgpu::KernelStats stats;
      stats.flops = 3.0 * static_cast<double>(h.size());
      stats.bytes_streamed = 2.0 * static_cast<double>(h.size()) * simgpu::kWord;
      stats.parallel_items = static_cast<double>(h.cols());
      stats.launches = 2;
      dev.record("normalize", stats);
    }
    la::column_norms(h, lambda.data());
    la::scale_columns_inv(h, lambda.data());
    {
      const double dt = perfmodel::modeled_time_scaled(dev, mode_scale);
      out.normalize += dt;
      if (per_mode) (*per_mode)[static_cast<std::size_t>(n)].normalize += dt;
    }
    wall_local.normalize += t_norm.seconds();
    tracer.end_phase();
  }
  if (wall) {
    wall->gram += wall_local.gram;
    wall->mttkrp += wall_local.mttkrp;
    wall->update += wall_local.update;
    wall->normalize += wall_local.normalize;
  }
  if (JsonSession* session = JsonSession::current()) {
    BenchRecord rec;
    rec.dataset = session->take_dataset_context();
    if (rec.dataset.empty()) rec.dataset = "synthetic";
    rec.machine = spec.name;
    rec.rank = rank;
    rec.phases = out;
    rec.wall = wall_local;
    for (const auto& [kernel, agg] : tracer.per_kernel()) {
      BenchKernelRow row;
      row.name = kernel;
      row.spans = agg.spans;
      row.launches = agg.stats.launches;
      row.flops = agg.stats.flops;
      row.bytes = agg.stats.total_bytes();
      row.modeled_s = agg.modeled_s;
      row.wall_s = agg.wall_s;
      rec.kernels.push_back(std::move(row));
    }
    session->add_record(std::move(rec));
  }
  return out;
}

ModeledIteration gpu_iteration(const DatasetAnalog& data,
                               const simgpu::DeviceSpec& gpu_spec,
                               UpdateScheme scheme, index_t rank,
                               std::vector<ModeledIteration>* per_mode) {
  BlcoBackend backend(data.tensor);
  auto update = CstfFramework::make_update(scheme, Proximity::non_negative(),
                                           /*admm_inner_iterations=*/10);
  return modeled_iteration(data, backend, *update, gpu_spec, rank,
                           /*wall=*/nullptr, per_mode);
}

ModeledIteration gpu_iteration_mttkrp(const DatasetAnalog& data,
                                      const simgpu::DeviceSpec& gpu_spec,
                                      UpdateScheme scheme, index_t rank,
                                      MttkrpMode engine, ModeledIteration* wall,
                                      std::vector<ModeledIteration>* per_mode) {
  CSTF_CHECK_MSG(engine != MttkrpMode::kAuto,
                 "gpu_iteration_mttkrp wants an explicit engine; resolve "
                 "kAuto with full_scale_mttkrp_mode first");
  BlcoBackend backend(data.tensor);
  if (engine == MttkrpMode::kDimtree) backend.enable_dimtree(data.tensor, rank);
  auto update = CstfFramework::make_update(scheme, Proximity::non_negative(),
                                           /*admm_inner_iterations=*/10);
  return modeled_iteration(data, backend, *update, gpu_spec, rank, wall,
                           per_mode);
}

MttkrpMode full_scale_mttkrp_mode(const DatasetAnalog& data,
                                  const simgpu::DeviceSpec& gpu_spec,
                                  index_t rank) {
  const BlcoBackend backend(data.tensor);
  return resolve_mttkrp_mode(data.tensor, rank, ScatterOptions{}, gpu_spec,
                             kDefaultDimtreeBudgetBytes,
                             backend.tensor().storage_bytes(),
                             data.nnz_scale());
}

ModeledIteration splatt_iteration(const DatasetAnalog& data, index_t rank) {
  CsfBackend backend(data.tensor);
  BlockAdmmOptions opt;
  opt.prox = Proximity::non_negative();
  opt.inner_iterations = 10;
  BlockAdmmUpdate update(opt);
  return modeled_iteration(data, backend, update, simgpu::xeon_8367hc(), rank);
}

ModeledIteration planc_sparse_iteration(const DatasetAnalog& data,
                                        UpdateScheme scheme, index_t rank) {
  AltoBackend backend(data.tensor);
  auto update = CstfFramework::make_update(scheme, Proximity::non_negative(),
                                           /*admm_inner_iterations=*/10);
  return modeled_iteration(data, backend, *update, simgpu::xeon_8367hc(), rank);
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

void print_header(const std::vector<std::string>& columns, int width) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::printf("%-*s", i == 0 ? 14 : width, columns[i].c_str());
  }
  std::printf("\n");
  print_rule(columns.size(), width);
}

void print_row(const std::string& label, const std::vector<double>& values,
               int width, int precision) {
  std::printf("%-14s", label.c_str());
  for (double v : values) std::printf("%-*.*f", width, precision, v);
  std::printf("\n");
}

void print_rule(std::size_t columns, int width) {
  const std::size_t total = 14 + (columns > 0 ? columns - 1 : 0) * static_cast<std::size_t>(width);
  for (std::size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

const std::vector<std::string>& dataset_names() {
  static const std::vector<std::string> names = {
      "NIPS", "Uber", "Chicago", "Vast", "Enron",
      "NELL2", "Flickr", "Delicious", "NELL1", "Amazon"};
  return names;
}

}  // namespace cstf::bench
