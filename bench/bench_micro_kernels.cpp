// Google-benchmark micro-benchmarks: host wall-clock of the individual
// kernels (dense BLAS, Cholesky machinery, the four MTTKRP formats, and the
// ADMM variants). These measure this machine, not the modeled devices — use
// them for regression tracking of the real implementations.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "formats/alto.hpp"
#include "formats/blco.hpp"
#include "formats/csf.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "mttkrp/alto_mttkrp.hpp"
#include "mttkrp/blco_mttkrp.hpp"
#include "mttkrp/coo_mttkrp.hpp"
#include "mttkrp/csf_mttkrp.hpp"
#include "tensor/generate.hpp"
#include "updates/admm.hpp"
#include "updates/hals.hpp"
#include "updates/mu.hpp"

namespace cstf {
namespace {

Matrix random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  m.fill_uniform(rng, 0.0, 1.0);
  return m;
}

SparseTensor bench_tensor() {
  RandomTensorParams p;
  p.dims = {2000, 1500, 1000};
  p.target_nnz = 50000;
  p.seed = 3;
  static SparseTensor t = generate_random(p);
  return t;
}

void BM_GemmTallSkinny(benchmark::State& state) {
  const index_t rows = state.range(0), rank = 32;
  const Matrix a = random_matrix(rows, rank, 1);
  const Matrix b = random_matrix(rank, rank, 2);
  Matrix c(rows, rank);
  for (auto _ : state) {
    la::gemm(la::Op::kNone, la::Op::kNone, 1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * rank * rank * 2);
}
BENCHMARK(BM_GemmTallSkinny)->Arg(1 << 12)->Arg(1 << 15);

void BM_Gram(benchmark::State& state) {
  const Matrix a = random_matrix(state.range(0), 32, 3);
  Matrix s(32, 32);
  for (auto _ : state) {
    la::gram(a, s);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_Gram)->Arg(1 << 12)->Arg(1 << 15);

void BM_CholeskyFactor(benchmark::State& state) {
  const index_t rank = state.range(0);
  Matrix g = random_matrix(2 * rank, rank, 4);
  Matrix s(rank, rank), l;
  la::gram(g, s);
  la::add_diagonal(s, 1.0);
  for (auto _ : state) {
    la::cholesky_factor(s, l);
    benchmark::DoNotOptimize(l.data());
  }
}
BENCHMARK(BM_CholeskyFactor)->Arg(16)->Arg(32)->Arg(64);

void BM_CholeskySolveRight(benchmark::State& state) {
  const index_t rows = state.range(0), rank = 32;
  Matrix g = random_matrix(2 * rank, rank, 5);
  Matrix s(rank, rank), l;
  la::gram(g, s);
  la::add_diagonal(s, 1.0);
  la::cholesky_factor(s, l);
  Matrix b = random_matrix(rows, rank, 6);
  for (auto _ : state) {
    Matrix x = b;
    la::cholesky_solve_right(l, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_CholeskySolveRight)->Arg(1 << 12);

template <typename BuildAndRun>
void mttkrp_bench(benchmark::State& state, BuildAndRun&& run) {
  const SparseTensor t = bench_tensor();
  std::vector<Matrix> factors;
  for (int m = 0; m < t.num_modes(); ++m) {
    factors.push_back(random_matrix(t.dim(m), 32, 100 + m));
  }
  Matrix out(t.dim(0), 32);
  for (auto _ : state) {
    run(t, factors, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * t.nnz());
}

void BM_MttkrpCoo(benchmark::State& state) {
  mttkrp_bench(state, [](const SparseTensor& t,
                         const std::vector<Matrix>& factors, Matrix& out) {
    mttkrp_coo(t, factors, 0, out);
  });
}
BENCHMARK(BM_MttkrpCoo);

void BM_MttkrpCsf(benchmark::State& state) {
  const SparseTensor t = bench_tensor();
  const CsfTensor csf(t, 0);
  std::vector<Matrix> factors;
  for (int m = 0; m < t.num_modes(); ++m) {
    factors.push_back(random_matrix(t.dim(m), 32, 100 + m));
  }
  Matrix out(t.dim(0), 32);
  for (auto _ : state) {
    mttkrp_csf(csf, factors, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * t.nnz());
}
BENCHMARK(BM_MttkrpCsf);

void BM_MttkrpAlto(benchmark::State& state) {
  const SparseTensor t = bench_tensor();
  const AltoTensor alto(t);
  std::vector<Matrix> factors;
  for (int m = 0; m < t.num_modes(); ++m) {
    factors.push_back(random_matrix(t.dim(m), 32, 100 + m));
  }
  Matrix out(t.dim(0), 32);
  for (auto _ : state) {
    mttkrp_alto(alto, factors, 0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * t.nnz());
}
BENCHMARK(BM_MttkrpAlto);

void BM_MttkrpBlco(benchmark::State& state) {
  const SparseTensor t = bench_tensor();
  const BlcoTensor blco(t, 4096);
  std::vector<Matrix> factors;
  for (int m = 0; m < t.num_modes(); ++m) {
    factors.push_back(random_matrix(t.dim(m), 32, 100 + m));
  }
  Matrix out(t.dim(0), 32);
  simgpu::Device dev(simgpu::a100());
  for (auto _ : state) {
    mttkrp_blco(dev, blco, factors, 0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * t.nnz());
}
BENCHMARK(BM_MttkrpBlco);

void admm_bench(benchmark::State& state, bool fusion, bool preinversion) {
  const index_t rows = 1 << 14, rank = 32;
  Matrix g = random_matrix(2 * rank, rank, 7);
  Matrix s(rank, rank);
  la::gram(g, s);
  const Matrix m = random_matrix(rows, rank, 8);
  Matrix h = random_matrix(rows, rank, 9);
  AdmmOptions opt;
  opt.inner_iterations = 10;
  opt.operation_fusion = fusion;
  opt.preinversion = preinversion;
  AdmmUpdate admm(opt);
  simgpu::Device dev(simgpu::a100());
  ModeState st;
  for (auto _ : state) {
    admm.update(dev, s, m, h, st);
    benchmark::DoNotOptimize(h.data());
  }
}

void BM_AdmmBaseline(benchmark::State& state) { admm_bench(state, false, false); }
void BM_AdmmFused(benchmark::State& state) { admm_bench(state, true, false); }
void BM_AdmmPreinverted(benchmark::State& state) { admm_bench(state, false, true); }
void BM_CuAdmm(benchmark::State& state) { admm_bench(state, true, true); }
BENCHMARK(BM_AdmmBaseline);
BENCHMARK(BM_AdmmFused);
BENCHMARK(BM_AdmmPreinverted);
BENCHMARK(BM_CuAdmm);

void BM_MuUpdate(benchmark::State& state) {
  const index_t rows = 1 << 14, rank = 32;
  Matrix g = random_matrix(2 * rank, rank, 10);
  Matrix s(rank, rank);
  la::gram(g, s);
  const Matrix m = random_matrix(rows, rank, 11);
  Matrix h = random_matrix(rows, rank, 12);
  MuUpdate mu;
  simgpu::Device dev(simgpu::a100());
  ModeState st;
  for (auto _ : state) {
    mu.update(dev, s, m, h, st);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_MuUpdate);

void BM_HalsUpdate(benchmark::State& state) {
  const index_t rows = 1 << 14, rank = 32;
  Matrix g = random_matrix(2 * rank, rank, 13);
  Matrix s(rank, rank);
  la::gram(g, s);
  const Matrix m = random_matrix(rows, rank, 14);
  Matrix h = random_matrix(rows, rank, 15);
  HalsUpdate hals;
  simgpu::Device dev(simgpu::a100());
  ModeState st;
  for (auto _ : state) {
    hals.update(dev, s, m, h, st);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_HalsUpdate);

}  // namespace
}  // namespace cstf

// Expanded BENCHMARK_MAIN() so the bench participates in JSON telemetry
// discovery (the session records no modeled iterations; it still emits an
// empty, schema-valid BENCH_micro_kernels.json for run_benches.sh).
int main(int argc, char** argv) {
  cstf::bench::JsonSession session("micro_kernels");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
