// Serving fold-in throughput: per-request ADMM vs batched + pre-inverted.
//
// The serving layer's claim is that two paper ideas transfer from training
// to inference: pre-inversion (factor S + rho*I once per published model,
// not once per request) and fusion-style batching (B concurrent fold-ins
// stack into one (B x R) ADMM solve whose rows are bit-identical to B
// single-row solves). This bench measures both effects against the naive
// baseline — every request re-factorizes the Gram and solves alone — on
// modeled device time AND measured host wall-clock, and emits the usual
// bench JSON telemetry.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "common/timer.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/fold_in.hpp"
#include "serve/model_io.hpp"
#include "serve/model_store.hpp"
#include "serve/runtime.hpp"

namespace {

using namespace cstf;

/// Deterministic synthetic fold-in workload against `model`.
std::vector<serve::FoldInRequest> make_requests(
    const serve::ServableModel& model, int mode, int count,
    std::uint64_t seed) {
  std::vector<serve::FoldInRequest> requests;
  requests.reserve(static_cast<std::size_t>(count));
  Rng rng(seed);
  const int modes = model.num_modes();
  for (int i = 0; i < count; ++i) {
    serve::FoldInRequest req;
    req.mode = mode;
    const int nnz = 4 + static_cast<int>(rng.uniform_index(12));
    for (int j = 0; j < nnz; ++j) {
      for (int m = 0; m < modes; ++m) {
        if (m == mode) continue;
        req.coords.push_back(static_cast<index_t>(
            rng.uniform_index(static_cast<std::uint64_t>(model.mode_size(m)))));
      }
      req.values.push_back(rng.uniform(0.0, 2.0));
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

struct ConfigResult {
  double wall_s = 0.0;
  double modeled_s = 0.0;
  std::vector<std::vector<real_t>> rows;
  serve::LatencySummary latency;
};

/// Runs the whole request list in fixed-size batches through one engine
/// configuration on a fresh device, returning timings and the solved rows.
ConfigResult run_config(const serve::ServableModel& model,
                        const std::vector<serve::FoldInRequest>& requests,
                        std::size_t batch_size, bool use_cached_gram,
                        simgpu::Tracer* tracer) {
  simgpu::Device device(simgpu::a100());
  if (tracer != nullptr) device.set_tracer(tracer);
  serve::ServeRuntime runtime(device, global_pool());
  serve::FoldInOptions options;
  options.use_cached_gram = use_cached_gram;
  serve::FoldInEngine engine(runtime, options);

  ConfigResult result;
  result.rows.reserve(requests.size());
  Timer wall;
  for (std::size_t lo = 0; lo < requests.size(); lo += batch_size) {
    const std::size_t hi = std::min(requests.size(), lo + batch_size);
    const std::vector<serve::FoldInRequest> batch(requests.begin() + static_cast<std::ptrdiff_t>(lo),
                                                  requests.begin() + static_cast<std::ptrdiff_t>(hi));
    std::vector<serve::FoldInResult> solved = engine.fold_in_batch(model, batch);
    for (serve::FoldInResult& r : solved) result.rows.push_back(std::move(r.row));
  }
  result.wall_s = wall.seconds();
  result.modeled_s = device.modeled_time_s();
  result.latency = engine.latency().summary();
  return result;
}

double max_row_diff(const std::vector<std::vector<real_t>>& a,
                    const std::vector<std::vector<real_t>>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t r = 0; r < a[i].size(); ++r) {
      worst = std::max(worst, std::abs(static_cast<double>(a[i][r] - b[i][r])));
    }
  }
  return worst;
}

}  // namespace

int main() {
  bench::JsonSession session("serve_throughput");
  const index_t rank = 16;
  const int num_requests = 512;
  const char* dataset = "Uber";

  // Train a small model and publish it (building the snapshot's cached
  // pre-factorized Gram, charged once here rather than per request).
  const DatasetAnalog data = bench::load_dataset(dataset);
  FrameworkOptions options;
  options.rank = rank;
  options.max_iterations = 3;
  CstfFramework framework(data.tensor, options);
  const AuntfResult trained = framework.run();
  serve::SavedModel saved;
  saved.model = framework.ktensor();
  saved.meta.name = dataset;
  saved.meta.set_constraint(options.prox);
  saved.meta.final_fit = trained.final_fit;
  saved.meta.options_digest = serve::digest_options(options);
  serve::ModelStore store;
  serve::ServableModelPtr model = store.publish(std::move(saved));

  // Fold into the longest mode (most factor rows, the realistic case).
  int mode = 0;
  for (int m = 1; m < model->num_modes(); ++m) {
    if (model->mode_size(m) > model->mode_size(mode)) mode = m;
  }
  const std::vector<serve::FoldInRequest> requests =
      make_requests(*model, mode, num_requests, 7);

  std::printf("=== serving fold-in throughput (%s analog, R=%lld, %d "
              "requests, mode %d, A100 model) ===\n\n",
              dataset, static_cast<long long>(rank), num_requests, mode);
  std::printf("%-26s %12s %12s %12s %12s %14s\n", "configuration",
              "host [ms]", "modeled [ms]", "host spdup", "model spdup",
              "p99 [us]");

  // Baseline: one request per solve, Gram re-factorized every time.
  const ConfigResult baseline =
      run_config(*model, requests, 1, /*use_cached_gram=*/false, nullptr);
  std::printf("%-26s %12.2f %12.3f %12s %12s %14.1f\n",
              "per-request (re-factor)", baseline.wall_s * 1e3,
              baseline.modeled_s * 1e3, "1.00x", "1.00x",
              baseline.latency.p99_s * 1e6);

  auto emit_record = [&](const std::string& machine, double modeled_s,
                         double wall_s, simgpu::Tracer& tracer) {
    bench::BenchRecord record;
    record.dataset = dataset;
    record.machine = machine;
    record.rank = rank;
    record.phases.update = modeled_s;
    record.wall.update = wall_s;
    for (const auto& [name, agg] : tracer.per_kernel()) {
      bench::BenchKernelRow row;
      row.name = name;
      row.spans = agg.spans;
      row.launches = agg.stats.launches;
      row.flops = agg.stats.flops;
      row.bytes = agg.stats.total_bytes();
      row.modeled_s = agg.modeled_s;
      row.wall_s = agg.wall_s;
      record.kernels.push_back(std::move(row));
    }
    session.add_record(std::move(record));
  };
  {
    simgpu::Tracer tracer;
    const ConfigResult rerun =
        run_config(*model, requests, 1, /*use_cached_gram=*/false, &tracer);
    emit_record("A100 per-request", rerun.modeled_s, rerun.wall_s, tracer);
  }

  bool batched_wins_at_8 = true;
  double worst_diff = 0.0;
  for (std::size_t batch : {std::size_t{1}, std::size_t{4}, std::size_t{8},
                            std::size_t{16}, std::size_t{64}}) {
    simgpu::Tracer tracer;
    const ConfigResult batched =
        run_config(*model, requests, batch, /*use_cached_gram=*/true, &tracer);
    worst_diff = std::max(worst_diff, max_row_diff(baseline.rows, batched.rows));
    const double host_speedup = baseline.wall_s / batched.wall_s;
    const double model_speedup = baseline.modeled_s / batched.modeled_s;
    std::printf("%-26s %12.2f %12.3f %11.2fx %11.2fx %14.1f\n",
                ("batched+preinv B=" + std::to_string(batch)).c_str(),
                batched.wall_s * 1e3, batched.modeled_s * 1e3, host_speedup,
                model_speedup, batched.latency.p99_s * 1e6);
    emit_record("A100 batch=" + std::to_string(batch), batched.modeled_s,
                batched.wall_s, tracer);
    if (batch >= 8 && (host_speedup <= 1.0 || model_speedup <= 1.0)) {
      batched_wins_at_8 = false;
    }
  }

  std::printf("\nmax |batched row - per-request row| = %.3e (rows are the "
              "same constrained solve)\n", worst_diff);
  std::printf("batched+pre-inverted %s the per-request baseline on both "
              "clocks at B >= 8\n",
              batched_wins_at_8 ? "beats" : "DOES NOT beat");
  return batched_wins_at_8 && worst_diff < 1e-8 ? 0 : 1;
}
