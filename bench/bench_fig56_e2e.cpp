// Reproduces Figures 5 and 6: end-to-end per-iteration speedup of the GPU
// cSTF framework (BLCO + cuADMM) over SPLATT (CSF + blocked AO-ADMM on the
// 26-core Xeon), rank 32, across the 10 Table-2 tensors plus the geometric
// mean. Compiled twice: bench_fig5_e2e_a100 and bench_fig6_e2e_h100.
//
// Expected shape: every speedup >= ~1x; larger for long-mode tensors
// (Flickr/Delicious/NELL1/Amazon); small tensors (NIPS/Uber/Chicago) see the
// least benefit; H100 >= A100; geomean ~5-7x.
//
// A second table compares the two MTTKRP engines (flat per-mode kernels vs
// the dimension-tree reuse engine, DESIGN.md §13) on the 4-way tensors and
// gates the build: over the tensors the full-scale resolver routes to
// dimtree, the modeled MTTKRP speedup geomean must be >= 1.3x.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/error.hpp"

int main() {
#ifdef CSTF_BENCH_H100
  cstf::bench::JsonSession session("fig6_e2e_h100");
#else
  cstf::bench::JsonSession session("fig5_e2e_a100");
#endif
  using namespace cstf;
#ifdef CSTF_BENCH_H100
  const auto spec = simgpu::h100();
  const char* fig = "Figure 6";
#else
  const auto spec = simgpu::a100();
  const char* fig = "Figure 5";
#endif
  const index_t rank = 32;
  std::printf("=== %s: end-to-end per-iteration speedup vs SPLATT (%s model, R=%lld) ===\n\n",
              fig, spec.name.c_str(), static_cast<long long>(rank));
  std::printf("%-12s %14s %14s %10s %14s %10s %14s %8s\n", "Tensor",
              "SPLATT [s]", (spec.name + " [s]").c_str(), "Speedup",
              "GPU ovl [s]", "ovl Spdup", "plan ovl [s]", "parity");

  struct TreeRow {
    std::string name;
    double flat_s = 0.0;
    double tree_s = 0.0;
    double chain_bytes = 0.0;
    MttkrpMode pick = MttkrpMode::kFlat;
  };
  std::vector<TreeRow> tree_rows;

  std::vector<double> speedups;
  std::vector<double> ovl_speedups;
  for (const auto& name : bench::dataset_names()) {
    const DatasetAnalog data = bench::load_dataset(name);
    const auto cpu = bench::splatt_iteration(data, rank);
    std::vector<bench::ModeledIteration> per_mode;
    const auto gpu = bench::gpu_iteration(data, spec, UpdateScheme::kCuAdmm,
                                          rank, &per_mode);
    const double ovl = bench::overlapped_total(per_mode, spec);
    // Parity gate: the compiled fixed-pipeline plan must reproduce the
    // legacy hand-rolled overlap timeline exactly.
    const double plan_ovl = bench::planner_overlapped_total(per_mode, spec);
    CSTF_CHECK_MSG(std::abs(plan_ovl - ovl) <= 1e-12 * std::abs(ovl),
                   "planner overlap makespan " << plan_ovl
                   << " != legacy overlap makespan " << ovl << " on " << name);
    const double speedup = cpu.total() / gpu.total();
    speedups.push_back(speedup);
    ovl_speedups.push_back(cpu.total() / ovl);
    std::printf("%-12s %14.5f %14.5f %9.2fx %14.5f %9.2fx %14.5f %7.4fx\n",
                name.c_str(), cpu.total(), gpu.total(), speedup, ovl,
                ovl_speedups.back(), plan_ovl, plan_ovl / ovl);
    if (session.enabled()) {
      session.annotate_last("legacy_overlap_s", ovl);
      session.annotate_last("planner_overlap_s", plan_ovl);
    }
    // Flat vs dimension-tree MTTKRP on the 4-way tensors (second table
    // below). The dimtree run adds its own JSON record; both engines'
    // modeled MTTKRP seconds ride along as extras on it.
    if (data.tensor.num_modes() >= 4) {
      const auto tree = bench::gpu_iteration_mttkrp(
          data, spec, UpdateScheme::kCuAdmm, rank, MttkrpMode::kDimtree);
      session.annotate_last("mttkrp_flat_s", gpu.mttkrp);
      session.annotate_last("mttkrp_dimtree_s", tree.mttkrp);
      TreeRow row;
      row.name = name;
      row.flat_s = gpu.mttkrp;
      row.tree_s = tree.mttkrp;
      row.chain_bytes = static_cast<double>(data.tensor.nnz()) *
                        static_cast<double>(rank) * sizeof(real_t);
      row.pick = bench::full_scale_mttkrp_mode(data, spec, rank);
      tree_rows.push_back(std::move(row));
    }
  }
  std::printf("%-12s %14s %14s %9.2fx %14s %9.2fx\n", "GeoMean", "", "",
              bench::geomean(speedups), "", bench::geomean(ovl_speedups));
  // --- Flat vs dimension-tree MTTKRP (DESIGN.md §13) ---------------------
  std::printf(
      "\n=== Flat vs dimension-tree MTTKRP (4-way tensors, %s, R=%lld) ===\n\n",
      spec.name.c_str(), static_cast<long long>(rank));
  std::printf("%-12s %14s %14s %10s %12s %8s\n", "Tensor", "flat [s]",
              "dimtree [s]", "Speedup", "chain [MB]", "auto");
  std::vector<double> gated;
  for (const TreeRow& row : tree_rows) {
    std::printf("%-12s %14.5f %14.5f %9.2fx %12.2f %8s\n", row.name.c_str(),
                row.flat_s, row.tree_s, row.flat_s / row.tree_s,
                row.chain_bytes / (1024.0 * 1024.0),
                mttkrp_mode_name(row.pick));
    if (row.pick == MttkrpMode::kDimtree) {
      // The resolver only returns kDimtree when the chain fits the budget
      // (the chain it would actually allocate, i.e. at in-memory size).
      CSTF_CHECK_MSG(row.chain_bytes <= kDefaultDimtreeBudgetBytes,
                     "resolver picked dimtree for " << row.name
                     << " with an over-budget chain");
      gated.push_back(row.flat_s / row.tree_s);
    }
  }
  CSTF_CHECK_MSG(!gated.empty(),
                 "resolve_mttkrp_mode picked flat for every 4-way tensor — "
                 "the dimtree engine never wins, which defeats its purpose");
  const double tree_geomean = bench::geomean(gated);
  // The A100 run carries the headline claim (>= 1.3x, DESIGN.md §13). The
  // H100's fatter HBM narrows the gather-bound gap the tree exploits and
  // its resolver drops Chicago (small nnz: flat streams it almost for
  // free), so that figure gates at 1.2x purely as a regression guard.
#ifdef CSTF_BENCH_H100
  const double tree_gate = 1.2;
#else
  const double tree_gate = 1.3;
#endif
  std::printf("%-12s %14s %14s %9.2fx\n", "GeoMean*", "", "", tree_geomean);
  std::printf(
      "\n(*) over the tensors the full-scale resolver routes to dimtree.\n"
      "Gate: that geomean must be >= %.2fx — the bench aborts otherwise.\n",
      tree_gate);
  CSTF_CHECK_MSG(tree_geomean >= tree_gate,
                 "dimtree modeled MTTKRP speedup geomean "
                     << tree_geomean << "x < " << tree_gate
                     << "x over the resolver-selected 4-way tensors");

  std::printf(
      "\nPaper reference: geomean 5.10x (max 41.59x) on A100; 7.01x\n"
      "(max 58.05x) on H100. Shape to verify: long-mode tensors gain most;\n"
      "small tensors least. \"GPU ovl\" pipelines each mode's Gram work\n"
      "against its MTTKRP on a second stream — a small, free win on top.\n"
      "\"plan ovl\" is the same schedule compiled by exec::Planner and run\n"
      "by exec::Executor; \"parity\" (plan/legacy) must be 1.0000 — the\n"
      "bench aborts otherwise.\n");
  return 0;
}
