// Reproduces Figures 5 and 6: end-to-end per-iteration speedup of the GPU
// cSTF framework (BLCO + cuADMM) over SPLATT (CSF + blocked AO-ADMM on the
// 26-core Xeon), rank 32, across the 10 Table-2 tensors plus the geometric
// mean. Compiled twice: bench_fig5_e2e_a100 and bench_fig6_e2e_h100.
//
// Expected shape: every speedup >= ~1x; larger for long-mode tensors
// (Flickr/Delicious/NELL1/Amazon); small tensors (NIPS/Uber/Chicago) see the
// least benefit; H100 >= A100; geomean ~5-7x.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/error.hpp"

int main() {
#ifdef CSTF_BENCH_H100
  cstf::bench::JsonSession session("fig6_e2e_h100");
#else
  cstf::bench::JsonSession session("fig5_e2e_a100");
#endif
  using namespace cstf;
#ifdef CSTF_BENCH_H100
  const auto spec = simgpu::h100();
  const char* fig = "Figure 6";
#else
  const auto spec = simgpu::a100();
  const char* fig = "Figure 5";
#endif
  const index_t rank = 32;
  std::printf("=== %s: end-to-end per-iteration speedup vs SPLATT (%s model, R=%lld) ===\n\n",
              fig, spec.name.c_str(), static_cast<long long>(rank));
  std::printf("%-12s %14s %14s %10s %14s %10s %14s %8s\n", "Tensor",
              "SPLATT [s]", (spec.name + " [s]").c_str(), "Speedup",
              "GPU ovl [s]", "ovl Spdup", "plan ovl [s]", "parity");

  std::vector<double> speedups;
  std::vector<double> ovl_speedups;
  for (const auto& name : bench::dataset_names()) {
    const DatasetAnalog data = bench::load_dataset(name);
    const auto cpu = bench::splatt_iteration(data, rank);
    std::vector<bench::ModeledIteration> per_mode;
    const auto gpu = bench::gpu_iteration(data, spec, UpdateScheme::kCuAdmm,
                                          rank, &per_mode);
    const double ovl = bench::overlapped_total(per_mode, spec);
    // Parity gate: the compiled fixed-pipeline plan must reproduce the
    // legacy hand-rolled overlap timeline exactly.
    const double plan_ovl = bench::planner_overlapped_total(per_mode, spec);
    CSTF_CHECK_MSG(std::abs(plan_ovl - ovl) <= 1e-12 * std::abs(ovl),
                   "planner overlap makespan " << plan_ovl
                   << " != legacy overlap makespan " << ovl << " on " << name);
    const double speedup = cpu.total() / gpu.total();
    speedups.push_back(speedup);
    ovl_speedups.push_back(cpu.total() / ovl);
    std::printf("%-12s %14.5f %14.5f %9.2fx %14.5f %9.2fx %14.5f %7.4fx\n",
                name.c_str(), cpu.total(), gpu.total(), speedup, ovl,
                ovl_speedups.back(), plan_ovl, plan_ovl / ovl);
    if (session.enabled()) {
      session.annotate_last("legacy_overlap_s", ovl);
      session.annotate_last("planner_overlap_s", plan_ovl);
    }
  }
  std::printf("%-12s %14s %14s %9.2fx %14s %9.2fx\n", "GeoMean", "", "",
              bench::geomean(speedups), "", bench::geomean(ovl_speedups));
  std::printf(
      "\nPaper reference: geomean 5.10x (max 41.59x) on A100; 7.01x\n"
      "(max 58.05x) on H100. Shape to verify: long-mode tensors gain most;\n"
      "small tensors least. \"GPU ovl\" pipelines each mode's Gram work\n"
      "against its MTTKRP on a second stream — a small, free win on top.\n"
      "\"plan ovl\" is the same schedule compiled by exec::Planner and run\n"
      "by exec::Executor; \"parity\" (plan/legacy) must be 1.0000 — the\n"
      "bench aborts otherwise.\n");
  return 0;
}
