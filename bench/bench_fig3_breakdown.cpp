// Reproduces Figure 3: cSTF phase breakdown on the three largest tensors
// (Flickr, Delicious, NELL1) — UPDATE dominates. The paper profiles the
// modified-PLANC CPU implementation; both the CPU baseline and our GPU
// framework are shown.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  cstf::bench::JsonSession session("fig3_breakdown");
  using namespace cstf;
  const index_t rank = 32;
  std::printf("=== Figure 3: cSTF phase breakdown on the largest tensors (R=%lld) ===\n\n",
              static_cast<long long>(rank));
  std::printf("%-26s %9s %9s %9s %9s\n", "", "GRAM", "MTTKRP", "UPDATE",
              "NORMALIZE");

  for (const char* name : {"Flickr", "Delicious", "NELL1"}) {
    const DatasetAnalog data = bench::load_dataset(name);
    const auto cpu =
        bench::planc_sparse_iteration(data, UpdateScheme::kAdmm, rank);
    const auto gpu =
        bench::gpu_iteration(data, simgpu::h100(), UpdateScheme::kCuAdmm, rank);
    auto print = [&](const std::string& label,
                     const bench::ModeledIteration& it) {
      const double total = it.total();
      std::printf("%-26s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n", label.c_str(),
                  100.0 * it.gram / total, 100.0 * it.mttkrp / total,
                  100.0 * it.update / total, 100.0 * it.normalize / total);
    };
    print(std::string(name) + " (CPU)", cpu);
    print(std::string(name) + " (H100)", gpu);
  }

  std::printf(
      "\nPaper shape to verify: the ADMM UPDATE phase dominates the CPU\n"
      "execution on all three tensors, motivating cuADMM.\n");
  return 0;
}
