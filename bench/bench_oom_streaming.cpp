// Out-of-memory streamed MTTKRP: the execution mode the BLCO substrate paper
// (Nguyen et al., ICS'22) exists for. When the tensor plus factors exceed
// device memory, BLCO blocks are staged over the host link in batches,
// double-buffered against compute. This bench models MTTKRP time at full
// dataset scale for a sweep of device-memory budgets.
//
// Expected shape: resident (budget >= tensor) time is flat; as the budget
// shrinks the staging link becomes the roof, degrading smoothly — not a
// cliff — because transfer overlaps compute.
#include <cstdio>

#include "bench_util.hpp"
#include "mttkrp/blco_mttkrp.hpp"

int main() {
  cstf::bench::JsonSession session("oom_streaming");
  using namespace cstf;
  const index_t rank = 32;
  const auto spec = simgpu::a100();
  std::printf("=== Out-of-memory streamed MTTKRP (A100 + PCIe staging, R=%lld) ===\n\n",
              static_cast<long long>(rank));
  std::printf("%-12s %-16s %10s %14s %14s %14s\n", "Tensor", "Budget",
              "batches", "mttkrp [ms]", "serial [ms]", "overlap [ms]");

  for (const char* name : {"Delicious", "Amazon"}) {
    const DatasetAnalog data = bench::load_dataset(name);
    Rng rng(9);
    std::vector<Matrix> factors;
    for (int m = 0; m < data.tensor.num_modes(); ++m) {
      Matrix f(data.tensor.dim(m), rank);
      f.fill_uniform(rng, 0.0, 1.0);
      factors.push_back(std::move(f));
    }
    const BlcoTensor blco(data.tensor, 1024);
    const double full = blco.storage_bytes();
    const char* labels[4] = {"resident", "1/2 tensor", "1/4 tensor",
                             "1/8 tensor"};
    const double budgets[4] = {2.0 * full, full / 2.0, full / 4.0, full / 8.0};
    // Per budget: the legacy within-span overlap model, the fully serial
    // copy-then-compute sum, and the explicit copy-stream pipeline makespan.
    const auto run_budget = [&](const simgpu::DeviceSpec& s, double budget,
                                const char* label) {
      simgpu::Device dev(s);
      Matrix out(data.tensor.dim(0), rank);
      const index_t batches =
          mttkrp_blco_streamed(dev, blco, factors, 0, out, budget);
      const double legacy =
          perfmodel::modeled_time_scaled(dev, data.nnz_scale()) * 1e3;

      simgpu::Device piped(s);
      const simgpu::Stream copy = piped.create_stream("h2d_copy");
      Matrix out2(data.tensor.dim(0), rank);
      mttkrp_blco_streamed(piped, blco, factors, 0, out2, budget, copy);
      const double serial =
          perfmodel::modeled_time_scaled(piped, data.nnz_scale()) * 1e3;
      const double overlap = piped.modeled_makespan_s(data.nnz_scale()) * 1e3;
      std::printf("%-12s %-16s %10lld %14.3f %14.3f %14.3f\n", name, label,
                  static_cast<long long>(batches), legacy,
                  batches > 1 ? serial : legacy,
                  batches > 1 ? overlap : legacy);
    };
    for (int i = 0; i < 4; ++i) run_budget(spec, budgets[i], labels[i]);
    // Degraded link (contended PCIe at 2 GB/s): where staging finally binds.
    {
      simgpu::DeviceSpec slow = spec;
      slow.host_link_bandwidth = 2e9;
      run_budget(slow, full / 8.0, "1/8 + slow link");
    }
  }
  std::printf(
      "\nShape to verify (the BLCO substrate paper's headline): staging is\n"
      "fully hidden behind the gather-bound kernel at PCIe speeds — the\n"
      "streamed rows match the resident row. Only a badly degraded link\n"
      "(last row) makes the host transfer the roof.\n"
      "\"serial [ms]\" stages every batch before its compute with no overlap;\n"
      "\"overlap [ms]\" is the double-buffered copy-stream pipeline makespan —\n"
      "between the other two, converging to mttkrp [ms] when compute binds.\n");
  return 0;
}
