// Shared bench harness: dataset loading, per-phase modeled timing at full
// dataset scale, table formatting, and machine-readable JSON telemetry.
//
// Modeled-time methodology (see DESIGN.md §2): every kernel executes for
// real on the host and meters its flops/bytes; benches scale each phase's
// metered record to the full-size dataset (nnz_scale for MTTKRP,
// per-mode dim_scale for the factor-update phases) and feed the roofline
// cost model with the target machine's spec. Host wall-clock times are also
// reported where meaningful. If CSTF_DATA_DIR is set and contains
// "<Name>.tns" (FROSTT format), the real tensor is loaded instead of the
// synthetic analog and all scale factors are 1.
//
// JSON telemetry (see DESIGN.md §6): every bench main opens a JsonSession
// named after the binary. When CSTF_BENCH_JSON is set (non-empty, != "0") or
// CSTF_BENCH_JSON_DIR names a directory, the session writes
// BENCH_<name>.json on destruction; each modeled_iteration() call adds one
// record automatically. Schema (version 1):
//
//   {"bench": "<name>", "schema_version": 1, "records": [
//      {"dataset": "...", "machine": "...", "rank": R,
//       "phases": {"GRAM":      {"modeled_s": g, "wall_s": gw},
//                  "MTTKRP":    {...}, "UPDATE": {...}, "NORMALIZE": {...}},
//       "total_modeled_s": g + m + u + n,     // always the sum of phases
//       "kernels": [ {"name": "...", "spans": s, "launches": l,
//                     "flops": f, "bytes": b, "modeled_s": ms,
//                     "wall_s": ws}, ... ]}, ... ]}
//
// "phases"/"total_modeled_s" are scaled to the full-size dataset (the number
// the tables print); "kernels" rows are the tracer's raw per-kernel
// aggregates at run scale — modeled_s is roofline time, wall_s is measured
// host time. A record may carry an optional "extra" object of bench-specific
// scalars (e.g. the planner-vs-legacy overlap makespans); validators ignore
// it. scripts/run_benches.sh regenerates every BENCH_*.json and validates
// them with tools/cstf_json_check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cstf/auntf.hpp"
#include "cstf/framework.hpp"
#include "perfmodel/admm_model.hpp"
#include "simgpu/trace.hpp"
#include "tensor/datasets.hpp"
#include "updates/block_admm.hpp"

namespace cstf::bench {

/// Loads the dataset: real `.tns` from CSTF_DATA_DIR when available,
/// otherwise the deterministic scaled analog.
DatasetAnalog load_dataset(const std::string& name);

/// Modeled seconds of one cSTF outer iteration, split by phase, at full
/// dataset scale on the given machine.
struct ModeledIteration {
  double gram = 0.0;
  double mttkrp = 0.0;
  double update = 0.0;
  double normalize = 0.0;

  double total() const { return gram + mttkrp + update + normalize; }
};

/// Runs one metered outer iteration (all modes) of the AUNTF loop with the
/// given backend/update and models each phase at full scale for `spec`.
/// `mode_scales[n]` scales mode-n factor phases (GRAM/UPDATE/NORMALIZE) and
/// `nnz_scale` scales MTTKRP. Also accumulates host wall-clock per phase
/// into `wall` when non-null.
ModeledIteration modeled_iteration(const MttkrpBackend& backend,
                                   const UpdateMethod& update,
                                   const simgpu::DeviceSpec& spec,
                                   index_t rank,
                                   const std::vector<double>& mode_scales,
                                   double nnz_scale,
                                   ModeledIteration* wall = nullptr,
                                   std::vector<ModeledIteration>* per_mode = nullptr);

/// DatasetAnalog convenience overload: scales taken from the analog.
ModeledIteration modeled_iteration(const DatasetAnalog& data,
                                   const MttkrpBackend& backend,
                                   const UpdateMethod& update,
                                   const simgpu::DeviceSpec& spec,
                                   index_t rank,
                                   ModeledIteration* wall = nullptr,
                                   std::vector<ModeledIteration>* per_mode = nullptr);

/// Modeled iteration time when each mode's Gram work is pipelined against
/// its MTTKRP on a second stream (the AuntfOptions::pipeline_streams
/// schedule): Gram_n and MTTKRP_n both depend only on Normalize_{n-1}, the
/// update joins them. Built from the already-scaled per-mode phase times on
/// a stream timeline of fixed spans; always within
/// [max-per-mode-path, serial total].
double overlapped_total(const std::vector<ModeledIteration>& per_mode,
                        const simgpu::DeviceSpec& spec);

/// The same schedule compiled through exec::Planner::compile_fixed_pipeline
/// and realized by exec::Executor (the path the trainer now runs on).
/// Bit-identical to overlapped_total() by construction; benches print both
/// as a planner-vs-legacy makespan-parity column, keeping the hand-rolled
/// version above alive purely as the legacy reference.
double planner_overlapped_total(const std::vector<ModeledIteration>& per_mode,
                                const simgpu::DeviceSpec& spec);

/// Convenience bundles for the three systems the figures compare.
ModeledIteration gpu_iteration(const DatasetAnalog& data,
                               const simgpu::DeviceSpec& gpu_spec,
                               UpdateScheme scheme, index_t rank,
                               std::vector<ModeledIteration>* per_mode = nullptr);
ModeledIteration splatt_iteration(const DatasetAnalog& data, index_t rank);

/// gpu_iteration() with the MTTKRP engine forced: kDimtree routes every
/// mode through the dimension-tree reuse engine (DESIGN.md §13), kFlat
/// matches gpu_iteration(). kAuto is rejected — resolve it explicitly with
/// full_scale_mttkrp_mode() so benches report which engine actually ran.
ModeledIteration gpu_iteration_mttkrp(
    const DatasetAnalog& data, const simgpu::DeviceSpec& gpu_spec,
    UpdateScheme scheme, index_t rank, MttkrpMode engine,
    ModeledIteration* wall = nullptr,
    std::vector<ModeledIteration>* per_mode = nullptr);

/// The engine resolve_mttkrp_mode would pick for this dataset at FULL size:
/// analog MTTKRP stats scaled by nnz_scale, flat streaming charged at the
/// BLCO storage footprint — the kAuto decision for the real tensor rather
/// than for the in-memory analog.
MttkrpMode full_scale_mttkrp_mode(const DatasetAnalog& data,
                                  const simgpu::DeviceSpec& gpu_spec,
                                  index_t rank);
ModeledIteration planc_sparse_iteration(const DatasetAnalog& data,
                                        UpdateScheme scheme, index_t rank);

/// One per-kernel row of a bench JSON record (tracer aggregate, run scale).
struct BenchKernelRow {
  std::string name;
  std::int64_t spans = 0;
  std::int64_t launches = 0;
  double flops = 0.0;
  double bytes = 0.0;
  double modeled_s = 0.0;
  double wall_s = 0.0;
};

/// One record of a bench JSON file: a modeled outer iteration on one
/// (dataset, machine, rank) combination.
struct BenchRecord {
  std::string dataset;
  std::string machine;
  index_t rank = 0;
  ModeledIteration phases;  ///< full-scale modeled seconds per phase
  ModeledIteration wall;    ///< measured host seconds per phase
  std::vector<BenchKernelRow> kernels;
  /// Optional bench-specific scalars, serialized as an "extra" object on the
  /// record (e.g. the planner-vs-legacy overlap makespans). Validators ignore
  /// unknown fields, so this is schema-compatible.
  std::vector<std::pair<std::string, double>> extras;
};

/// RAII bench-JSON session. Each bench main constructs one as its first
/// statement; modeled_iteration() adds records to the current session, and
/// the destructor writes BENCH_<name>.json when emission is enabled via
/// CSTF_BENCH_JSON / CSTF_BENCH_JSON_DIR (see the header comment for the
/// schema). Exactly one session may exist at a time.
class JsonSession {
 public:
  explicit JsonSession(std::string bench_name);
  ~JsonSession();
  JsonSession(const JsonSession&) = delete;
  JsonSession& operator=(const JsonSession&) = delete;

  /// The active session (nullptr outside a bench main).
  static JsonSession* current();

  /// True when the environment requests JSON emission.
  bool enabled() const { return enabled_; }
  const std::string& name() const { return name_; }

  /// Destination file: $CSTF_BENCH_JSON_DIR/BENCH_<name>.json (the directory
  /// defaults to the working directory).
  std::string output_path() const;

  void add_record(BenchRecord record);
  std::size_t record_count() const { return records_.size(); }

  /// Attaches an extra scalar to the most recently added record (no-op when
  /// no record exists). Benches use this to record values computed after
  /// modeled_iteration() auto-added the record, e.g. overlap parity numbers.
  void annotate_last(const std::string& key, double value);

  /// Dataset label applied to the next auto-added record (set by the
  /// DatasetAnalog overload of modeled_iteration; consumed once).
  void set_dataset_context(std::string dataset);

  /// The JSON document for the records so far (exposed for tests).
  std::string to_json() const;

  /// Writes the document now (normally done by the destructor); returns the
  /// path, or "" when emission is disabled.
  std::string write();

 private:
  friend ModeledIteration modeled_iteration(
      const MttkrpBackend&, const UpdateMethod&, const simgpu::DeviceSpec&,
      index_t, const std::vector<double>&, double, ModeledIteration*,
      std::vector<ModeledIteration>*);

  std::string take_dataset_context();

  std::string name_;
  bool enabled_ = false;
  bool written_ = false;
  std::string dataset_context_;
  std::vector<BenchRecord> records_;
};

/// Geometric mean of a list of ratios.
double geomean(const std::vector<double>& values);

/// Fixed-width table printing.
void print_header(const std::vector<std::string>& columns, int width = 12);
void print_row(const std::string& label, const std::vector<double>& values,
               int width = 12, int precision = 2);
void print_rule(std::size_t columns, int width = 12);

/// The 10 paper dataset names, Table 2 order.
const std::vector<std::string>& dataset_names();

}  // namespace cstf::bench
