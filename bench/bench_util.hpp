// Shared bench harness: dataset loading, per-phase modeled timing at full
// dataset scale, and table formatting.
//
// Modeled-time methodology (see DESIGN.md §2): every kernel executes for
// real on the host and meters its flops/bytes; benches scale each phase's
// metered record to the full-size dataset (nnz_scale for MTTKRP,
// per-mode dim_scale for the factor-update phases) and feed the roofline
// cost model with the target machine's spec. Host wall-clock times are also
// reported where meaningful. If CSTF_DATA_DIR is set and contains
// "<Name>.tns" (FROSTT format), the real tensor is loaded instead of the
// synthetic analog and all scale factors are 1.
#pragma once

#include <string>
#include <vector>

#include "cstf/auntf.hpp"
#include "cstf/framework.hpp"
#include "perfmodel/admm_model.hpp"
#include "tensor/datasets.hpp"
#include "updates/block_admm.hpp"

namespace cstf::bench {

/// Loads the dataset: real `.tns` from CSTF_DATA_DIR when available,
/// otherwise the deterministic scaled analog.
DatasetAnalog load_dataset(const std::string& name);

/// Modeled seconds of one cSTF outer iteration, split by phase, at full
/// dataset scale on the given machine.
struct ModeledIteration {
  double gram = 0.0;
  double mttkrp = 0.0;
  double update = 0.0;
  double normalize = 0.0;

  double total() const { return gram + mttkrp + update + normalize; }
};

/// Runs one metered outer iteration (all modes) of the AUNTF loop with the
/// given backend/update and models each phase at full scale for `spec`.
/// `mode_scales[n]` scales mode-n factor phases (GRAM/UPDATE/NORMALIZE) and
/// `nnz_scale` scales MTTKRP. Also accumulates host wall-clock per phase
/// into `wall` when non-null.
ModeledIteration modeled_iteration(const MttkrpBackend& backend,
                                   const UpdateMethod& update,
                                   const simgpu::DeviceSpec& spec,
                                   index_t rank,
                                   const std::vector<double>& mode_scales,
                                   double nnz_scale,
                                   ModeledIteration* wall = nullptr,
                                   std::vector<ModeledIteration>* per_mode = nullptr);

/// DatasetAnalog convenience overload: scales taken from the analog.
ModeledIteration modeled_iteration(const DatasetAnalog& data,
                                   const MttkrpBackend& backend,
                                   const UpdateMethod& update,
                                   const simgpu::DeviceSpec& spec,
                                   index_t rank,
                                   ModeledIteration* wall = nullptr);

/// Convenience bundles for the three systems the figures compare.
ModeledIteration gpu_iteration(const DatasetAnalog& data,
                               const simgpu::DeviceSpec& gpu_spec,
                               UpdateScheme scheme, index_t rank);
ModeledIteration splatt_iteration(const DatasetAnalog& data, index_t rank);
ModeledIteration planc_sparse_iteration(const DatasetAnalog& data,
                                        UpdateScheme scheme, index_t rank);

/// Geometric mean of a list of ratios.
double geomean(const std::vector<double>& values);

/// Fixed-width table printing.
void print_header(const std::vector<std::string>& columns, int width = 12);
void print_row(const std::string& label, const std::vector<double>& values,
               int width = 12, int precision = 2);
void print_rule(std::size_t columns, int width = 12);

/// The 10 paper dataset names, Table 2 order.
const std::vector<std::string>& dataset_names();

}  // namespace cstf::bench
