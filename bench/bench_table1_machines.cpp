// Reproduces Table 1: the hardware/software setup the cost model encodes.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  cstf::bench::JsonSession session("table1_machines");
  using namespace cstf;
  std::printf("=== Table 1: machine specifications used by the cost model ===\n\n");
  std::printf("%-22s%-14s%-14s%-14s\n", "", "Xeon-8367HC", "A100", "H100");
  const simgpu::DeviceSpec specs[3] = {simgpu::xeon_8367hc(), simgpu::a100(),
                                       simgpu::h100()};
  auto row = [&](const char* label, auto getter, const char* fmt) {
    std::printf("%-22s", label);
    for (const auto& s : specs) std::printf(fmt, getter(s));
    std::printf("\n");
  };
  row("peak FP64 [TF/s]",
      [](const simgpu::DeviceSpec& s) { return s.peak_flops / 1e12; },
      "%-14.2f");
  row("bandwidth [GB/s]",
      [](const simgpu::DeviceSpec& s) { return s.mem_bandwidth / 1e9; },
      "%-14.0f");
  row("LLC/L2 cache [MB]",
      [](const simgpu::DeviceSpec& s) { return s.cache_bytes / 1e6; },
      "%-14.1f");
  row("launch overhead [us]",
      [](const simgpu::DeviceSpec& s) { return s.launch_overhead * 1e6; },
      "%-14.1f");
  row("saturation [items]",
      [](const simgpu::DeviceSpec& s) { return s.saturation_parallelism; },
      "%-14.0f");
  row("stream BW fraction",
      [](const simgpu::DeviceSpec& s) { return s.stream_bw_fraction; },
      "%-14.2f");
  row("random BW fraction",
      [](const simgpu::DeviceSpec& s) { return s.random_bw_fraction; },
      "%-14.2f");
  std::printf(
      "\nNote: A100 and H100 share the Table-1 bandwidth (2039 GB/s); the\n"
      "H100's larger cache is the differentiator the paper highlights.\n");
  return 0;
}
