// Convergence quality across update schemes: fit per outer iteration of
// cuADMM, MU, HALS, and exact-NNLS BPP on a planted fully observed
// non-negative tensor. Complements the paper's per-iteration *cost*
// comparison: ADMM's selling point (Section 2.4) is that it converges as
// fast as exact methods per outer iteration at a fraction of the cost —
// this bench shows both axes.
#include <cstdio>

#include "bench_util.hpp"
#include "tensor/generate.hpp"

int main() {
  cstf::bench::JsonSession session("convergence");
  using namespace cstf;
  LowRankTensorParams gen;
  gen.dims = {40, 32, 24};
  gen.rank = 5;
  gen.target_nnz = 40 * 32 * 24;
  gen.noise = 0.02;
  gen.seed = 17;
  const LowRankTensor data = generate_low_rank(gen);
  std::printf("=== Convergence per outer iteration (planted rank-5, R=8) ===\n\n");
  std::printf("tensor: %s\n\n", data.tensor.shape_string().c_str());
  std::printf("%-8s %10s %10s %10s %10s\n", "iter", "cuADMM", "MU", "HALS",
              "BPP");

  constexpr int kIters = 15;
  double fits[4][kIters];
  double modeled[4];
  const UpdateScheme schemes[4] = {UpdateScheme::kCuAdmm, UpdateScheme::kMu,
                                   UpdateScheme::kHals, UpdateScheme::kBpp};
  for (int si = 0; si < 4; ++si) {
    FrameworkOptions opt;
    opt.rank = 8;
    opt.max_iterations = kIters;
    opt.scheme = schemes[si];
    CstfFramework fw(data.tensor, opt);
    fw.driver().initialize();
    for (int it = 0; it < kIters; ++it) fits[si][it] = fw.driver().iterate();
    modeled[si] = fw.device().modeled_time_s();
  }
  for (int it = 0; it < kIters; ++it) {
    std::printf("%-8d %10.4f %10.4f %10.4f %10.4f\n", it + 1, fits[0][it],
                fits[1][it], fits[2][it], fits[3][it]);
  }
  std::printf("\nmodeled A100 time for the %d iterations [ms]:\n", kIters);
  std::printf("%-8s %10.2f %10.2f %10.2f %10.2f\n", "", modeled[0] * 1e3,
              modeled[1] * 1e3, modeled[2] * 1e3, modeled[3] * 1e3);
  std::printf(
      "\nShape to verify: cuADMM tracks the exact BPP fit trajectory within\n"
      "a few iterations; MU converges markedly slower per iteration — the\n"
      "reason AO-ADMM is the paper's default update.\n");
  return 0;
}
