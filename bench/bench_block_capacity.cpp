// BLCO block-capacity sweep: the block is the GPU kernel's unit of work and
// the delta-compression window. Small blocks compress harder (tighter spans)
// but multiply per-block headers and shrink per-block parallel work; large
// blocks stream better. This sweep shows the compression/parallelism
// trade-off that motivates the ~4K default.
#include <cstdio>

#include "bench_util.hpp"
#include "formats/blco.hpp"
#include "mttkrp/blco_mttkrp.hpp"

int main() {
  cstf::bench::JsonSession session("block_capacity");
  using namespace cstf;
  const index_t rank = 32;
  std::printf("=== BLCO block-capacity sweep (A100 model, R=%lld) ===\n\n",
              static_cast<long long>(rank));
  std::printf("%-12s %-10s %14s %12s %16s\n", "Tensor", "Capacity",
              "bits/nnz", "blocks", "mttkrp [ms]");

  for (const char* name : {"NELL2", "Delicious"}) {
    const DatasetAnalog data = bench::load_dataset(name);
    Rng rng(5);
    std::vector<Matrix> factors;
    for (int m = 0; m < data.tensor.num_modes(); ++m) {
      Matrix f(data.tensor.dim(m), rank);
      f.fill_uniform(rng, 0.0, 1.0);
      factors.push_back(std::move(f));
    }
    for (index_t capacity : {256, 1024, 4096, 16384}) {
      const BlcoTensor blco(data.tensor, capacity);
      const double value_bytes =
          static_cast<double>(blco.nnz()) * sizeof(real_t);
      const double bits =
          8.0 * (blco.storage_bytes() - value_bytes) /
          static_cast<double>(blco.nnz());
      simgpu::Device dev(simgpu::a100());
      Matrix out(data.tensor.dim(0), rank);
      mttkrp_blco(dev, blco, factors, 0, out);
      const double t =
          perfmodel::modeled_time_scaled(dev, data.nnz_scale()) * 1e3;
      std::printf("%-12s %-10lld %14.1f %12lld %16.3f\n", name,
                  static_cast<long long>(capacity), bits,
                  static_cast<long long>(blco.num_blocks()), t);
    }
  }
  std::printf(
      "\nShape to verify: smaller blocks need fewer delta bits but create\n"
      "more blocks (headers + launch-side bookkeeping); the default 4K sits\n"
      "on the flat part of both curves.\n");
  return 0;
}
