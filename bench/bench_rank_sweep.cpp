// Section 5.1 rank sweep: the paper evaluates ranks {16, 32, 64}; this bench
// reports the end-to-end GPU-vs-SPLATT speedup at each rank for a small,
// a medium, and two large tensors, on both GPU models.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  cstf::bench::JsonSession session("rank_sweep");
  using namespace cstf;
  std::printf("=== Rank sweep {16, 32, 64}: end-to-end speedup vs SPLATT ===\n\n");
  std::printf("%-12s %-8s %12s %12s\n", "Tensor", "Rank", "A100", "H100");
  for (const char* name : {"NIPS", "NELL2", "Delicious", "Amazon"}) {
    const DatasetAnalog data = bench::load_dataset(name);
    for (index_t rank : {16, 32, 64}) {
      const auto cpu = bench::splatt_iteration(data, rank);
      const auto a100 =
          bench::gpu_iteration(data, simgpu::a100(), UpdateScheme::kCuAdmm, rank);
      const auto h100 =
          bench::gpu_iteration(data, simgpu::h100(), UpdateScheme::kCuAdmm, rank);
      std::printf("%-12s %-8lld %11.2fx %11.2fx\n", name,
                  static_cast<long long>(rank), cpu.total() / a100.total(),
                  cpu.total() / h100.total());
    }
  }
  std::printf(
      "\nShape to verify: speedups persist across ranks; higher rank raises\n"
      "arithmetic intensity (Eq. 5), helping the bandwidth-rich GPUs.\n");
  return 0;
}
