// Section 5.1 rank sweep: the paper evaluates ranks {16, 32, 64}; this bench
// reports the end-to-end GPU-vs-SPLATT speedup at each rank for a small,
// a medium, and two large tensors, on both GPU models.
//
// The right-hand columns compare the two MTTKRP engines (DESIGN.md §13) on
// the A100: the flat per-mode BLCO kernels against the dimension-tree reuse
// engine, as full-scale modeled MTTKRP seconds per outer iteration. "auto"
// is what resolve_mttkrp_mode would pick for the full-size tensor (the
// framework's kAuto decision). The JSON record for each dimtree run carries
// the flat/dimtree modeled and host-wallclock MTTKRP seconds as extras.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  cstf::bench::JsonSession session("rank_sweep");
  using namespace cstf;
  std::printf("=== Rank sweep {16, 32, 64}: end-to-end speedup vs SPLATT ===\n\n");
  std::printf("%-12s %-8s %10s %10s %14s %14s %10s %8s\n", "Tensor", "Rank",
              "A100", "H100", "mttkrp-flat[s]", "mttkrp-tree[s]", "tree-spd",
              "auto");
  for (const char* name : {"NIPS", "NELL2", "Delicious", "Amazon"}) {
    const DatasetAnalog data = bench::load_dataset(name);
    for (index_t rank : {16, 32, 64}) {
      const auto cpu = bench::splatt_iteration(data, rank);
      bench::ModeledIteration flat_wall, tree_wall;
      const auto a100 = bench::gpu_iteration_mttkrp(
          data, simgpu::a100(), UpdateScheme::kCuAdmm, rank, MttkrpMode::kFlat,
          &flat_wall);
      const auto h100 =
          bench::gpu_iteration(data, simgpu::h100(), UpdateScheme::kCuAdmm, rank);
      const auto tree = bench::gpu_iteration_mttkrp(
          data, simgpu::a100(), UpdateScheme::kCuAdmm, rank,
          MttkrpMode::kDimtree, &tree_wall);
      session.annotate_last("mttkrp_flat_s", a100.mttkrp);
      session.annotate_last("mttkrp_dimtree_s", tree.mttkrp);
      session.annotate_last("mttkrp_flat_wall_s", flat_wall.mttkrp);
      session.annotate_last("mttkrp_dimtree_wall_s", tree_wall.mttkrp);
      const MttkrpMode pick =
          bench::full_scale_mttkrp_mode(data, simgpu::a100(), rank);
      std::printf("%-12s %-8lld %9.2fx %9.2fx %14.4f %14.4f %9.2fx %8s\n",
                  name, static_cast<long long>(rank),
                  cpu.total() / a100.total(), cpu.total() / h100.total(),
                  a100.mttkrp, tree.mttkrp, a100.mttkrp / tree.mttkrp,
                  mttkrp_mode_name(pick));
    }
  }
  std::printf(
      "\nShape to verify: speedups persist across ranks; higher rank raises\n"
      "arithmetic intensity (Eq. 5), helping the bandwidth-rich GPUs. The\n"
      "tree-vs-flat ratio tracks the reuse factor (order-dependent), not the\n"
      "rank: the chain grows with R exactly as the flat reads do.\n");
  return 0;
}
