// Reproduces the Section 3.3 analysis (Equations 3-5): the ADMM cost model
// W = 19IR + 2IR^2 flops, Q = 22IR + R^2 words, and the arithmetic
// intensities 0.29 / 0.47 / 0.83 flop/byte at ranks 16 / 32 / 64 — plus a
// cross-check of the closed form against the metered implementation.
#include <cstdio>

#include "bench_util.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"

int main() {
  cstf::bench::JsonSession session("eq345_intensity");
  using namespace cstf;
  std::printf("=== Equations 3-5: ADMM computation / data-movement model ===\n\n");
  const double i_len = 1e6;
  std::printf("I = %.0e (factor rows), double precision\n\n", i_len);
  std::printf("%-8s %14s %14s %12s %12s\n", "Rank", "W [flops]", "Q [words]",
              "AI [f/B]", "paper AI");
  const double paper_ai[3] = {0.29, 0.47, 0.83};
  int idx = 0;
  for (double rank : {16.0, 32.0, 64.0}) {
    const auto m = perfmodel::admm_iteration_model(i_len, rank);
    std::printf("%-8.0f %14.3e %14.3e %12.3f %12.2f\n", rank, m.flops,
                m.words, m.intensity, paper_ai[idx++]);
  }

  std::printf("\nRoofline per-inner-iteration time [us] from the closed form:\n");
  std::printf("%-8s %14s %14s %14s\n", "Rank", "Xeon", "A100", "H100");
  for (double rank : {16.0, 32.0, 64.0}) {
    std::printf("%-8.0f %14.2f %14.2f %14.2f\n", rank,
                1e6 * perfmodel::admm_iteration_time(i_len, rank,
                                                     simgpu::xeon_8367hc()),
                1e6 * perfmodel::admm_iteration_time(i_len, rank, simgpu::a100()),
                1e6 * perfmodel::admm_iteration_time(i_len, rank, simgpu::h100()));
  }

  // Cross-check: metered words per inner iteration of the real fused cuADMM
  // vs the paper's Q.
  std::printf("\nMetered cross-check (fused cuADMM, one inner iteration):\n");
  std::printf("%-8s %18s %18s\n", "Rank", "metered words/IR", "paper Q/IR (=22)");
  for (index_t rank : {16, 32, 64}) {
    const index_t rows = 4096;
    Rng rng(5);
    Matrix g(2 * rank, rank);
    g.fill_normal(rng);
    Matrix s(rank, rank);
    la::gram(g, s);
    la::add_diagonal(s, 1.0);
    Matrix m(rows, rank), h(rows, rank);
    m.fill_uniform(rng);
    h.fill_uniform(rng);
    AdmmOptions opt;
    opt.inner_iterations = 1;
    AdmmUpdate admm(opt);
    simgpu::Device dev(simgpu::a100());
    ModeState state;
    admm.update(dev, s, m, h, state);
    const double words = dev.total().total_bytes() / 8.0;
    std::printf("%-8lld %18.1f %18.1f\n", static_cast<long long>(rank),
                words / static_cast<double>(rows * rank), 22.0);
  }
  std::printf(
      "\nThe fused implementation moves fewer words than the generic Q=22IR\n"
      "accounting — that difference is the operation-fusion saving.\n");
  return 0;
}
