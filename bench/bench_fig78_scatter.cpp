// Reproduces Figures 7 and 8: per-tensor MTTKRP speedup vs ADMM speedup
// (GPU over SPLATT-CPU), the scatter showing the two kernels' inverse
// relationship. Compiled twice: bench_fig7_scatter_a100 and
// bench_fig8_scatter_h100.
//
// Expected shape: tensors with long modes (high ADMM speedup) tend to have
// lower MTTKRP speedup and vice versa; Vast is the paper's outlier.
#include <cstdio>

#include "bench_util.hpp"

int main() {
#ifdef CSTF_BENCH_H100
  cstf::bench::JsonSession session("fig8_scatter_h100");
#else
  cstf::bench::JsonSession session("fig7_scatter_a100");
#endif
  using namespace cstf;
#ifdef CSTF_BENCH_H100
  const auto spec = simgpu::h100();
  const char* fig = "Figure 8";
#else
  const auto spec = simgpu::a100();
  const char* fig = "Figure 7";
#endif
  const index_t rank = 32;
  std::printf("=== %s: MTTKRP vs ADMM per-kernel speedup over SPLATT (%s model, R=%lld) ===\n\n",
              fig, spec.name.c_str(), static_cast<long long>(rank));
  std::printf("%-12s %16s %16s\n", "Tensor", "MTTKRP speedup", "ADMM speedup");

  for (const auto& name : bench::dataset_names()) {
    const DatasetAnalog data = bench::load_dataset(name);
    const auto cpu = bench::splatt_iteration(data, rank);
    const auto gpu = bench::gpu_iteration(data, spec, UpdateScheme::kCuAdmm, rank);
    std::printf("%-12s %15.2fx %15.2fx\n", name.c_str(),
                cpu.mttkrp / gpu.mttkrp, cpu.update / gpu.update);
  }
  std::printf(
      "\nPaper shape to verify: ADMM speedup grows with mode length while\n"
      "MTTKRP speedup tends the other way (more sparsity -> less factor-row\n"
      "reuse); plotted together the points fall along an inverse relation.\n");
  return 0;
}
