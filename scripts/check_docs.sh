#!/usr/bin/env bash
# check_docs.sh — documentation drift gate, run by scripts/check.sh and the
# docs_check ctest.
#
# Three checks:
#   1. Flag coverage: every quoted "--flag" literal in tools/*.cpp must be
#      documented in docs/TOOLS.md (as `--flag` followed by a word
#      boundary, so `--check` cannot hide behind `--checkpoint-every`).
#   2. Relative links: every markdown link target in README.md, DESIGN.md,
#      and docs/*.md that is not a URL or a pure anchor must resolve to an
#      existing file (relative to the file containing the link).
#   3. Section anchors: every "DESIGN.md §N" (and bare "§N" inside
#      DESIGN.md) must have a matching "## N." heading in DESIGN.md.
#
# --self-test runs the negative mode: check 1 must FAIL against a doctored
# TOOLS.md with one flag's documentation removed, proving the gate can
# actually catch an undocumented flag.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- check 1: tool flags are documented -------------------------------------
# $1 = the TOOLS.md to check against. Prints failures; returns nonzero if
# any flag is undocumented.
check_flags() {
  local tools_md="$1" missing=0 tool flag
  for src in tools/*.cpp; do
    tool="$(basename "$src" .cpp)"
    for flag in $(grep -o '"--[a-z0-9-]*"' "$src" | tr -d '"' | sort -u); do
      # Documented means `--flag` with a boundary after it: closing
      # backtick, space (value placeholder), or '=' (the --trace=FILE form).
      if ! grep -Eq '`'"${flag}"'(`| |=)' "$tools_md"; then
        echo "FAIL: $tool flag $flag is not documented in $tools_md"
        missing=1
      fi
    done
  done
  return "$missing"
}

if [ "${1:-}" = "--self-test" ]; then
  # Negative mode: strip the --metrics-out rows from a copy of TOOLS.md and
  # require the flag check to notice.
  doctored="$(mktemp)"
  trap 'rm -f "$doctored"' EXIT
  grep -v -- '--metrics-out' docs/TOOLS.md > "$doctored"
  if check_flags "$doctored" > /dev/null; then
    echo "SELF-TEST FAIL: undocumented --metrics-out was not detected"
    exit 1
  fi
  echo "self-test ok: undocumented flag is detected"
  exit 0
fi

check_flags docs/TOOLS.md || fail=1

# --- check 2: relative markdown links resolve -------------------------------
for md in README.md DESIGN.md docs/*.md; do
  dir="$(dirname "$md")"
  # Link targets: ](target) — strip URLs, pure #anchors, and any #anchor
  # suffix on a file target.
  for target in $(grep -o '](\([^)]*\))' "$md" | sed 's/^](//; s/)$//'); do
    case "$target" in
      http://*|https://*|chrome://*|\#*) continue ;;
    esac
    file="${target%%#*}"
    [ -n "$file" ] || continue
    if [ ! -e "$dir/$file" ] && [ ! -e "$file" ]; then
      echo "FAIL: $md links to missing file: $target"
      fail=1
    fi
  done
done

# --- check 3: DESIGN.md section references resolve --------------------------
refs="$( { grep -ho 'DESIGN\.md §[0-9]*' README.md docs/*.md tools/*.cpp \
             src/*/*.hpp src/*/*.cpp 2>/dev/null;
           grep -ho '§[0-9]*' DESIGN.md; } |
         grep -o '§[0-9]*' | tr -d '§' | sort -un )"
for n in $refs; do
  if ! grep -q "^## $n\." DESIGN.md; then
    echo "FAIL: reference to DESIGN.md §$n but no '## $n.' heading exists"
    fail=1
  fi
done

if [ "$fail" = "0" ]; then
  echo "docs check ok: flags documented, links resolve, section refs valid"
fi
exit "$fail"
