#!/usr/bin/env bash
# Tier-1 gate: a documentation drift check (scripts/check_docs.sh + its
# negative self-test), then the full test suite twice — a plain
# RelWithDebInfo build, then an ASan+UBSan build (-DCSTF_SANITIZE=ON). Any
# doc drift, compile error, test failure, or sanitizer report fails the
# script.
#
# After the plain pass, a perf-smoke step runs the scatter-engine and
# MTTKRP-engine fixtures (bench_host_wallclock --smoke): it fails if the
# privatized strategy is slower than atomic scatter on the short-mode
# fixture or if the dimension-tree engine is slower than the flat kernels
# on the 4-way fixture (DESIGN.md §13), and validates the emitted JSON
# telemetry. A serve-smoke step then runs the serve-labeled
# ctest group, a full save/load/serve workload through cstf_serve, and the
# fold-in throughput bench (batched + pre-inverted must beat per-request
# ADMM on modeled and host clocks at batch >= 8), and a chaos smoke replays
# the workload under 1% injected kernel-launch failures (every request must
# still succeed via retries/degraded mode). CSTF_CHECK_SKIP_PERF=1 skips
# these (e.g. on loaded CI machines where wall-clock comparisons are
# unreliable); the chaos smoke is repeated against the sanitized build.
#
# An autotune-smoke step runs the autotune-labeled ctest group (cache round
# trip, corruption taxonomy, trial determinism, decision goldens, plus the
# cstf_tune populate-then-hit fixture pair) and a counter-verified cache
# round trip through cstf_tune: measure-populate a fresh CSTFTUNE file,
# then require the second run to be a pure cache hit (--expect-cached).
#
# Knobs (env vars): CSTF_CHECK_SKIP_SANITIZE=1 skips the second pass (useful
# on toolchains without sanitizer runtimes), CSTF_CHECK_SKIP_PERF=1,
# CSTF_CHECK_TSAN=1 adds a ThreadSanitizer pass (-DCSTF_TSAN=ON) over the
# exec-, dimtree-, autotune-, and metrics-labeled ctest groups (the
# executor/plan-cache layer every concurrent path now submits through, the
# dimension-tree engine's parallel chain derives, and the metrics
# registry's lock-free counter hot path), CSTF_THREADS.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== docs gate: tool flags documented, links resolve, section refs valid"
# No build needed; fails fast on documentation drift. The self-test proves
# the gate still detects an undocumented flag (negative mode).
bash scripts/check_docs.sh
bash scripts/check_docs.sh --self-test

echo "=== pass 1/2: plain build + ctest"
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [ "${CSTF_CHECK_SKIP_PERF:-0}" = "1" ]; then
  echo "=== perf smoke skipped (CSTF_CHECK_SKIP_PERF=1)"
else
  echo "=== perf smoke: scatter strategies + dimtree-vs-flat MTTKRP"
  mkdir -p results/json
  CSTF_BENCH_JSON=1 CSTF_BENCH_JSON_DIR=results/json \
    ./build/bench/bench_host_wallclock --smoke
  ./build/tools/cstf_json_check results/json/BENCH_host_wallclock.json

  echo "=== serve smoke: save/load round trip + mixed query/fold-in workload"
  # The serve-labeled ctest group (unit suite + CLI smoke) plus an end-to-end
  # workload with telemetry; cstf_serve exits nonzero if any request fails,
  # latencies are non-finite, or a fold-in row violates its constraint.
  ctest --test-dir build -L serve --output-on-failure
  mkdir -p results
  ./build/tools/cstf_serve --dataset Uber --rank 4 --iters 2 --requests 100 \
    --clients 4 --save results/check_serve_model.cstf \
    --json results/check_serve_telemetry.json \
    --metrics-out results/check_serve_metrics.prom
  # Batched + pre-inverted must beat per-request ADMM on both clocks at B>=8
  # (bit-identical rows, verified inside the bench).
  CSTF_BENCH_JSON=1 CSTF_BENCH_JSON_DIR=results/json \
    ./build/bench/bench_serve_throughput
  ./build/tools/cstf_json_check results/json/BENCH_serve_throughput.json

  echo "=== chaos smoke: serving under 1% injected kernel-launch failures"
  # Same mixed workload with a seeded probabilistic fault plan on the serving
  # kernels; retry-with-backoff and degraded-mode isolation must absorb every
  # injected fault (cstf_serve exits nonzero if any request ultimately fails).
  ./build/tools/cstf_serve --dataset Uber --rank 4 --iters 2 --requests 200 \
    --clients 4 --retries 10 --fault-plan "launch:p=0.01,seed=7" \
    --json results/check_chaos_telemetry.json

  echo "=== autotune smoke: tuning cache round trip, counter-verified"
  # The autotune-labeled ctest group (unit suite + cstf_tune/cstf_cli smoke),
  # then an explicit populate-then-hit pass against a fresh cache file:
  # the first cstf_tune run must measure (trials), the second must be a pure
  # cache hit — --expect-cached exits nonzero if any decision re-ran trials.
  ctest --test-dir build -L autotune --output-on-failure
  rm -f results/check_tuning.cstftune
  ./build/tools/cstf_tune --dataset Uber --dataset NIPS --rank 8 \
    --tune measure --tuning-cache results/check_tuning.cstftune
  ./build/tools/cstf_tune --dataset Uber --dataset NIPS --rank 8 \
    --tune cached --tuning-cache results/check_tuning.cstftune --expect-cached
fi

if [ "${CSTF_CHECK_TSAN:-0}" = "1" ]; then
  echo "=== TSan pass: exec- and dimtree-labeled suites under ThreadSanitizer"
  # TSan and ASan cannot share a binary (the configure step enforces the
  # exclusivity), so this is its own build tree. The exec group covers the
  # executor, plan caches, and the trainer/streaming/serving paths that
  # submit through them — the layer where stream/event races would live.
  # The dimtree group rides along: the chain derives scatter through the
  # same parallel accumulation engine, and its lazy extends must be race-
  # free against the plan's explicit extend ops.
  # The autotune group rides along: micro-trials run warmup+timed kernels
  # through the same parallel-for engine the chunk sweep retunes.
  # The metrics group rides along: the registry's lock-free counter hot path
  # (relaxed fetch_add from every kernel launch and serve request) is
  # exactly the kind of code TSan exists to vet.
  cmake -B build-tsan -S . -DCSTF_TSAN=ON
  cmake --build build-tsan -j
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan -L 'exec|dimtree|autotune|metrics' \
    --output-on-failure
fi

if [ "${CSTF_CHECK_SKIP_SANITIZE:-0}" = "1" ]; then
  echo "=== pass 2/2 skipped (CSTF_CHECK_SKIP_SANITIZE=1)"
  exit 0
fi

echo "=== pass 2/2: ASan+UBSan build + ctest"
cmake -B build-asan -S . -DCSTF_SANITIZE=ON
cmake --build build-asan -j
# halt_on_error makes UBSan reports fail the test run instead of just logging.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure -j

echo "=== dimtree + autotune + metrics groups under ASan+UBSan (label re-run)"
# Redundant with the full sanitized suite above, but keeps the dimension-
# tree engine's pointer-heavy chain arithmetic, the tuning cache's binary
# parser (attacker-controlled bytes on the load path), and the metrics
# registry/exposition layer visibly gated even if the full pass is ever
# narrowed.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-asan -L 'dimtree|autotune|metrics' --output-on-failure

echo "=== chaos smoke under ASan: fault-recovery paths must be leak-free"
# The retry/degraded paths unwind through exceptions mid-batch; run them under
# the sanitizers to prove the unwinding leaks nothing and frees nothing twice.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ./build-asan/tools/cstf_serve --dataset Uber --rank 4 --iters 2 \
    --requests 200 --clients 4 --retries 10 \
    --fault-plan "launch:p=0.01,seed=7" >/dev/null

echo
echo "All checks passed (plain + sanitized)."
