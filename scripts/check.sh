#!/usr/bin/env bash
# Tier-1 gate: builds and runs the full test suite twice — a plain
# RelWithDebInfo build, then an ASan+UBSan build (-DCSTF_SANITIZE=ON). Any
# compile error, test failure, or sanitizer report fails the script.
#
# After the plain pass, a perf-smoke step runs the scatter-engine fixtures
# (bench_host_wallclock --smoke): it fails if the privatized strategy is
# slower than atomic scatter on the short-mode fixture, and validates the
# emitted JSON telemetry. CSTF_CHECK_SKIP_PERF=1 skips it (e.g. on loaded CI
# machines where wall-clock comparisons are unreliable).
#
# Knobs (env vars): CSTF_CHECK_SKIP_SANITIZE=1 skips the second pass (useful
# on toolchains without sanitizer runtimes), CSTF_CHECK_SKIP_PERF=1,
# CSTF_THREADS.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== pass 1/2: plain build + ctest"
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [ "${CSTF_CHECK_SKIP_PERF:-0}" = "1" ]; then
  echo "=== perf smoke skipped (CSTF_CHECK_SKIP_PERF=1)"
else
  echo "=== perf smoke: scatter strategies (privatized must beat atomic)"
  mkdir -p results/json
  CSTF_BENCH_JSON=1 CSTF_BENCH_JSON_DIR=results/json \
    ./build/bench/bench_host_wallclock --smoke
  ./build/tools/cstf_json_check results/json/BENCH_host_wallclock.json
fi

if [ "${CSTF_CHECK_SKIP_SANITIZE:-0}" = "1" ]; then
  echo "=== pass 2/2 skipped (CSTF_CHECK_SKIP_SANITIZE=1)"
  exit 0
fi

echo "=== pass 2/2: ASan+UBSan build + ctest"
cmake -B build-asan -S . -DCSTF_SANITIZE=ON
cmake --build build-asan -j
# halt_on_error makes UBSan reports fail the test run instead of just logging.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure -j

echo
echo "All checks passed (plain + sanitized)."
