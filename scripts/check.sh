#!/usr/bin/env bash
# Tier-1 gate: builds and runs the full test suite twice — a plain
# RelWithDebInfo build, then an ASan+UBSan build (-DCSTF_SANITIZE=ON). Any
# compile error, test failure, or sanitizer report fails the script.
#
# Knobs (env vars): CSTF_CHECK_SKIP_SANITIZE=1 skips the second pass (useful
# on toolchains without sanitizer runtimes), CSTF_THREADS.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== pass 1/2: plain build + ctest"
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [ "${CSTF_CHECK_SKIP_SANITIZE:-0}" = "1" ]; then
  echo "=== pass 2/2 skipped (CSTF_CHECK_SKIP_SANITIZE=1)"
  exit 0
fi

echo "=== pass 2/2: ASan+UBSan build + ctest"
cmake -B build-asan -S . -DCSTF_SANITIZE=ON
cmake --build build-asan -j
# halt_on_error makes UBSan reports fail the test run instead of just logging.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-asan --output-on-failure -j

echo
echo "All checks passed (plain + sanitized)."
