#!/usr/bin/env bash
# Builds Release, runs every bench with JSON telemetry enabled, and validates
# every emitted BENCH_*.json with tools/cstf_json_check (malformed or
# schema-violating output fails the script). Outputs land in ./results/json/.
#
# Knobs (env vars): CSTF_ANALOG_NNZ (analog size; defaulted small here so the
# full sweep stays fast), CSTF_DATA_DIR (real FROSTT .tns files),
# CSTF_THREADS.
set -euo pipefail
cd "$(dirname "$0")/.."

export CSTF_ANALOG_NNZ="${CSTF_ANALOG_NNZ:-20000}"

build_dir=build-bench
cmake -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j

json_dir=results/json
mkdir -p "$json_dir"
rm -f "$json_dir"/BENCH_*.json

for bench in "$build_dir"/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "=== $name"
  CSTF_BENCH_JSON=1 CSTF_BENCH_JSON_DIR="$json_dir" "$bench" > /dev/null
done

echo
shopt -s nullglob
emitted=("$json_dir"/BENCH_*.json)
if [ "${#emitted[@]}" -eq 0 ]; then
  echo "run_benches.sh: no BENCH_*.json emitted" >&2
  exit 1
fi
"$build_dir"/tools/cstf_json_check "${emitted[@]}"
echo "run_benches.sh: ${#emitted[@]} telemetry file(s) valid in $json_dir/"
