#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every paper
# table/figure plus the extension benches. Outputs land in ./results/.
#
# Knobs (env vars): CSTF_ANALOG_NNZ (analog size, default 60000),
# CSTF_DATA_DIR (real FROSTT .tns files), CSTF_THREADS.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for bench in build/bench/bench_*; do
  name=$(basename "$bench")
  echo "=== $name"
  "$bench" | tee "results/$name.txt"
done

echo
echo "All benches complete; outputs in results/."
