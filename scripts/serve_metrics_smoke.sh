#!/usr/bin/env bash
# serve_metrics_smoke.sh — end-to-end agreement check between the two
# reliability surfaces cstf_serve exposes:
#
#   1. the Prometheus dump written by --metrics-out
#      (cstf_serve_requests{outcome="..."} counters), and
#   2. the "reliability" block of the --json telemetry report.
#
# Both are rendered from the same ReliabilitySnapshot (the tool calls
# serve::export_reliability(rel) before taking the metrics snapshot), so
# every shared counter must match EXACTLY — not approximately.  A mismatch
# means the export bridge or the exposition formatting regressed.
#
# usage: serve_metrics_smoke.sh /path/to/cstf_serve
set -euo pipefail

SERVE_BIN="${1:?usage: serve_metrics_smoke.sh /path/to/cstf_serve}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

prom="$workdir/serve_metrics.prom"
json="$workdir/serve_metrics.json"

# The fault plan forces transient launch failures so the retried counter is
# exercised with a nonzero value, not just trivially 0 == 0.
"$SERVE_BIN" --dataset Uber --rank 4 --iters 2 --requests 40 --clients 2 \
  --fault-plan "launch:p=0.05,seed=7,max=8" \
  --metrics-out "$prom" --json "$json" > "$workdir/serve.log"

[ -s "$prom" ] || { echo "FAIL: $prom missing or empty"; exit 1; }
[ -s "$json" ] || { echo "FAIL: $json missing or empty"; exit 1; }

# Value of cstf_serve_requests{outcome="<label>"} in the Prometheus dump.
prom_value() {
  local line
  line="$(grep -F "cstf_serve_requests{outcome=\"$1\"}" "$prom" || true)"
  if [ -z "$line" ]; then echo "MISSING"; else echo "${line##* }"; fi
}

# Value of "<key>":N inside the JSON report's reliability block.  The keys
# checked here appear only in that block (metric labels render as string
# values, never as keys), so a plain grep is unambiguous.
json_value() {
  grep -o "\"$1\":[0-9.eE+-]*" "$json" | head -1 | cut -d: -f2
}

fail=0

# outcome label in the .prom dump -> key in the JSON reliability block.
check() {
  local outcome="$1" key="$2" p j
  p="$(prom_value "$outcome")"
  j="$(json_value "$key")"
  if [ -z "$j" ]; then
    echo "FAIL: JSON reliability key \"$key\" not found"
    fail=1
  elif [ "$p" != "$j" ]; then
    echo "FAIL: outcome=$outcome prom=$p != json.$key=$j"
    fail=1
  else
    echo "ok: outcome=$outcome $p == json.$key"
  fi
}

check shed shed
check timed_out timed_out
check retried fold_in_retries
check degraded degraded
check failed failed

# submitted/served have no JSON twin but must exist and be ordered.
submitted="$(prom_value submitted)"
served="$(prom_value served)"
if [ "$submitted" = "MISSING" ] || [ "$served" = "MISSING" ]; then
  echo "FAIL: submitted/served counters missing from $prom"
  fail=1
elif ! awk -v s="$submitted" -v d="$served" 'BEGIN { exit !(s >= d) }'; then
  echo "FAIL: submitted ($submitted) < served ($served)"
  fail=1
else
  echo "ok: submitted=$submitted >= served=$served"
fi

# Exposition hygiene: the family must carry HELP/TYPE headers.
grep -q '^# HELP cstf_serve_requests ' "$prom" || {
  echo "FAIL: missing HELP line for cstf_serve_requests"; fail=1; }
grep -q '^# TYPE cstf_serve_requests counter$' "$prom" || {
  echo "FAIL: missing TYPE line for cstf_serve_requests"; fail=1; }

exit "$fail"
