// Trend analysis over spatiotemporal count data — another application the
// paper's introduction cites (trend analysis over large multi-way datasets,
// in the spirit of the Chicago / Uber tensors in Table 2).
//
//   build/examples/trend_analysis
//
// A (district x incident-category x week) tensor of incident counts is
// synthesized from three planted urban trends (a summer outdoor spike, a
// winter indoor pattern, and a year-round downtown baseline). Non-negative
// CPD recovers each trend as one interpretable component; the example
// matches recovered components to the planted ones by their seasonal
// profiles and prints each trend's peak weeks and top categories.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "cstf/framework.hpp"
#include "tensor/coo.hpp"

namespace {

using namespace cstf;

constexpr index_t kDistricts = 40;
constexpr index_t kCategories = 12;
constexpr index_t kWeeks = 52;

struct PlantedTrend {
  const char* name;
  index_t peak_week;   // center of the seasonal bump (-1: flat)
  double width;        // gaussian width in weeks
  std::vector<index_t> categories;
  double district_bias;  // concentration toward low district ids (downtown)
};

double seasonal(const PlantedTrend& trend, index_t week) {
  if (trend.peak_week < 0) return 1.0;
  const double d = std::min<double>(
      std::abs(static_cast<double>(week - trend.peak_week)),
      52.0 - std::abs(static_cast<double>(week - trend.peak_week)));
  return std::exp(-0.5 * d * d / (trend.width * trend.width));
}

}  // namespace

int main() {
  const std::vector<PlantedTrend> trends = {
      {"summer-outdoor", 26, 5.0, {0, 1, 2}, 0.2},
      {"winter-indoor", 0, 4.0, {3, 4, 5}, 0.5},
      {"downtown-baseline", -1, 0.0, {6, 7, 8, 9}, 2.0},
  };

  Rng rng(99);
  SparseTensor incidents({kDistricts, kCategories, kWeeks});
  index_t coords[3];
  for (index_t d = 0; d < kDistricts; ++d) {
    for (index_t c = 0; c < kCategories; ++c) {
      for (index_t w = 0; w < kWeeks; ++w) {
        double rate = 0.0;
        for (const auto& trend : trends) {
          if (std::find(trend.categories.begin(), trend.categories.end(), c) ==
              trend.categories.end()) {
            continue;
          }
          const double spatial =
              std::exp(-trend.district_bias * static_cast<double>(d) /
                       static_cast<double>(kDistricts));
          rate += 5.0 * spatial * seasonal(trend, w);
        }
        if (rate <= 0.05) continue;
        const double count = rate * rng.uniform(0.6, 1.4);
        if (count < 0.2) continue;
        coords[0] = d;
        coords[1] = c;
        coords[2] = w;
        incidents.append(coords, count);
      }
    }
  }
  incidents.sort_by_mode(0);
  incidents.dedup_sum();
  std::printf("incident tensor: %s\n", incidents.shape_string().c_str());

  FrameworkOptions options;
  options.rank = 3;
  options.max_iterations = 40;
  options.fit_tolerance = 1e-5;
  options.scheme = UpdateScheme::kCuAdmm;
  options.prox = Proximity::non_negative();
  CstfFramework framework(incidents, options);
  const AuntfResult result = framework.run();
  std::printf("factorized: %d iterations, fit %.3f\n\n", result.iterations,
              result.final_fit);

  const KTensor model = framework.ktensor();
  const Matrix& week_factor = model.factors[2];
  const Matrix& category_factor = model.factors[1];

  int matched = 0;
  for (index_t r = 0; r < options.rank; ++r) {
    // Peak week and top categories of this component.
    index_t peak = 0;
    for (index_t w = 0; w < kWeeks; ++w) {
      if (week_factor(w, r) > week_factor(peak, r)) peak = w;
    }
    std::vector<std::pair<real_t, index_t>> cats;
    for (index_t c = 0; c < kCategories; ++c) {
      cats.emplace_back(category_factor(c, r), c);
    }
    std::sort(cats.rbegin(), cats.rend());
    std::printf("component %lld (lambda %7.1f): peak week %2lld, top categories",
                static_cast<long long>(r),
                model.lambda[static_cast<std::size_t>(r)],
                static_cast<long long>(peak));
    for (int i = 0; i < 3; ++i) {
      std::printf(" %lld", static_cast<long long>(cats[i].second));
    }

    // Match against the planted trend with the most overlapping category set.
    const PlantedTrend* best = nullptr;
    int best_overlap = -1;
    for (const auto& trend : trends) {
      int overlap = 0;
      for (int i = 0; i < 3; ++i) {
        if (std::find(trend.categories.begin(), trend.categories.end(),
                      cats[i].second) != trend.categories.end()) {
          ++overlap;
        }
      }
      if (overlap > best_overlap) {
        best_overlap = overlap;
        best = &trend;
      }
    }
    std::printf("  -> recovered \"%s\"\n", best->name);
    if (best_overlap >= 2) ++matched;
  }
  std::printf("\n%d of 3 planted trends recovered with clean category "
              "separation\n", matched);
  return matched == 3 ? 0 : 1;
}
