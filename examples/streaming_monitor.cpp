// Online monitoring with streaming cSTF: factorize a live stream of tensor
// slices and raise an alert when a slice's reconstruction residual departs
// from the learned behaviour — the streaming counterpart of the
// network_anomaly example.
//
//   build/examples/streaming_monitor
//
// A (sensor x channel) slice arrives every tick. Normal traffic follows a
// slowly rotating low-rank pattern; at tick 70 an unstructured interference
// burst hits a random subset of cells. The monitor flags exactly that tick.
#include <cmath>
#include <cstdio>
#include <vector>

#include "streaming/streaming_cstf.hpp"
#include "tensor/generate.hpp"

namespace {

using namespace cstf;

constexpr index_t kSensors = 32;
constexpr index_t kChannels = 24;
constexpr int kTicks = 100;
constexpr int kAnomalyTick = 70;

}  // namespace

int main() {
  // Planted generating factors for the normal regime.
  Rng rng(123);
  Matrix sensor_patterns(kSensors, 3), channel_patterns(kChannels, 3);
  sensor_patterns.fill_uniform(rng, 0.0, 1.0);
  channel_patterns.fill_uniform(rng, 0.0, 1.0);

  StreamingOptions options;
  options.rank = 5;
  options.forgetting = 0.99;
  StreamingCstf monitor({kSensors, kChannels}, options);

  std::printf("tick  residual  status\n");
  int alerts = 0, false_alerts = 0;
  std::vector<real_t> history;
  for (int tick = 0; tick < kTicks; ++tick) {
    // Normal slice: mixture of the three patterns with drifting weights.
    SparseTensor slice({kSensors, kChannels});
    const real_t w[3] = {1.0 + 0.3 * std::sin(0.05 * tick),
                         0.8 + 0.3 * std::cos(0.03 * tick), 0.5};
    index_t coords[2];
    for (index_t i = 0; i < kSensors; ++i) {
      for (index_t j = 0; j < kChannels; ++j) {
        real_t v = 0.0;
        for (int r = 0; r < 3; ++r) {
          v += w[r] * sensor_patterns(i, r) * channel_patterns(j, r);
        }
        v *= rng.uniform(0.95, 1.05);
        coords[0] = i;
        coords[1] = j;
        slice.append(coords, v);
      }
    }
    if (tick == kAnomalyTick) {
      // Unstructured interference: huge values at 50 random cells.
      SparseTensor burst({kSensors, kChannels});
      for (int k = 0; k < 50; ++k) {
        coords[0] = static_cast<index_t>(rng.uniform_index(kSensors));
        coords[1] = static_cast<index_t>(rng.uniform_index(kChannels));
        burst.append(coords, rng.uniform(15.0, 25.0));
      }
      burst.sort_by_mode(0);
      burst.dedup_sum();
      // Merge burst into the slice.
      for (index_t k = 0; k < burst.nnz(); ++k) {
        coords[0] = burst.indices(0)[static_cast<std::size_t>(k)];
        coords[1] = burst.indices(1)[static_cast<std::size_t>(k)];
        slice.append(coords, burst.values()[static_cast<std::size_t>(k)]);
      }
      slice.sort_by_mode(0);
      slice.dedup_sum();
    }

    monitor.ingest(slice);
    const real_t residual = monitor.last_slice_residual();

    // Alert when the residual exceeds 3x the trailing median-ish baseline
    // (simple robust threshold over the last 20 ticks, after warm-up).
    bool alert = false;
    if (history.size() >= 20) {
      real_t baseline = 0.0;
      for (std::size_t k = history.size() - 20; k < history.size(); ++k) {
        baseline += history[k];
      }
      baseline /= 20.0;
      alert = residual > 3.0 * baseline;
    }
    history.push_back(residual);
    if (alert || tick % 10 == 0 || tick == kAnomalyTick) {
      std::printf("%4d  %8.4f  %s\n", tick, residual,
                  alert ? "*** ALERT ***" : "");
    }
    if (alert) {
      ++alerts;
      if (tick != kAnomalyTick) ++false_alerts;
    }
  }

  std::printf("\n%d alert(s), %d false; anomaly at tick %d %s\n", alerts,
              false_alerts, kAnomalyTick,
              (alerts >= 1 && false_alerts == 0) ? "correctly detected"
                                                 : "MISSED");
  return (alerts >= 1 && false_alerts == 0) ? 0 : 1;
}
