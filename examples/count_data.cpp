// Count data and the choice of objective: Gaussian least squares (the cSTF
// framework's default) vs the Poisson/KL objective (gcp::PoissonNtf), on a
// tensor of genuine Poisson counts.
//
//   build/examples/count_data
//
// A (user x item x day) count tensor is sampled from a planted non-negative
// low-rank rate model. Both factorizations run at the true rank; the example
// reports how directionally close each method's recovered components are to
// the planted rate factors (congruence). The KL objective models the count
// noise correctly and recovers the sparser, Poisson-noised components more
// faithfully — the motivation behind generalized-loss CP in the paper's
// related work.
#include <algorithm>
#include <cstdio>

#include "cstf/framework.hpp"
#include "cstf/metrics.hpp"
#include "gcp/poisson_ntf.hpp"
#include "tensor/coo.hpp"

namespace {

using namespace cstf;

double mean_best_congruence(const KTensor& got, const KTensor& truth) {
  double total = 0.0;
  for (index_t r = 0; r < got.rank(); ++r) {
    double best = 0.0;
    for (index_t s = 0; s < truth.rank(); ++s) {
      best = std::max(best, component_congruence(got, r, truth, s));
    }
    total += best;
  }
  return total / static_cast<double>(got.rank());
}

}  // namespace

int main() {
  const std::vector<index_t> dims{40, 30, 20};
  const index_t rank = 3;
  Rng rng(2026);

  // Planted non-negative rate factors (sparse-ish, like real activity data).
  KTensor truth;
  for (index_t dim : dims) {
    Matrix f(dim, rank);
    for (index_t j = 0; j < rank; ++j) {
      for (index_t i = 0; i < dim; ++i) {
        f(i, j) = rng.uniform() < 0.6 ? 0.02 : rng.uniform(0.5, 1.5);
      }
    }
    truth.factors.push_back(std::move(f));
  }
  truth.lambda.assign(static_cast<std::size_t>(rank), 1.0);

  // Sample Poisson counts from the rate tensor, dropping zero counts.
  SparseTensor counts(dims);
  index_t coords[3];
  for (coords[0] = 0; coords[0] < dims[0]; ++coords[0]) {
    for (coords[1] = 0; coords[1] < dims[1]; ++coords[1]) {
      for (coords[2] = 0; coords[2] < dims[2]; ++coords[2]) {
        const real_t rate = 4.0 * truth.value_at(coords);
        const auto count = static_cast<real_t>(rng.poisson(rate));
        if (count > 0.0) counts.append(coords, count);
      }
    }
  }
  counts.sort_by_mode(0);
  std::printf("count tensor: %s\n\n", counts.shape_string().c_str());

  // Gaussian least-squares cSTF.
  FrameworkOptions ls_opt;
  ls_opt.rank = rank;
  ls_opt.max_iterations = 60;
  ls_opt.fit_tolerance = 1e-6;
  CstfFramework ls(counts, ls_opt);
  const AuntfResult ls_result = ls.run();
  const double ls_congruence = mean_best_congruence(ls.ktensor(), truth);

  // Poisson/KL NTF.
  PoissonNtfOptions kl_opt;
  kl_opt.rank = rank;
  kl_opt.max_iterations = 120;
  kl_opt.tolerance = 1e-6;
  PoissonNtf kl(counts, kl_opt);
  const PoissonNtfResult kl_result = kl.run();
  const double kl_congruence = mean_best_congruence(kl.ktensor(), truth);

  std::printf("%-22s %12s %20s\n", "objective", "iterations",
              "rate-factor congruence");
  std::printf("%-22s %12d %19.3f\n", "Gaussian LS (cuADMM)",
              ls_result.iterations, ls_congruence);
  std::printf("%-22s %12d %19.3f\n", "Poisson KL (MU)", kl_result.iterations,
              kl_congruence);
  std::printf(
      "\nBoth recover the planted structure; the KL objective is the\n"
      "statistically matched one for counts and should be at least as\n"
      "faithful (congruence closer to 1).\n");
  return (kl_congruence > 0.85 && ls_congruence > 0.7) ? 0 : 1;
}
