// Quickstart: factorize a sparse tensor with the GPU cSTF framework.
//
//   build/examples/quickstart [rank] [iterations]
//
// Generates a small synthetic non-negative tensor with planted low-rank
// structure, runs rank-R non-negative CPD with the cuADMM update (operation
// fusion + pre-inversion, Algorithm 3 of the paper), and reports the fit,
// per-phase timings, and the modeled A100 execution time.
#include <cstdio>
#include <cstdlib>

#include "cstf/framework.hpp"
#include "tensor/generate.hpp"

int main(int argc, char** argv) {
  using namespace cstf;
  const index_t rank = argc > 1 ? std::atoll(argv[1]) : 8;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 10;

  // A fully observed synthetic tensor sampled from a planted rank-4
  // non-negative model plus 1% noise — so a good factorization must reach a
  // fit near 0.99.
  LowRankTensorParams gen;
  gen.dims = {30, 24, 18};
  gen.rank = 4;
  gen.target_nnz = 30 * 24 * 18;
  gen.noise = 0.01;
  gen.seed = 7;
  const LowRankTensor data = generate_low_rank(gen);
  std::printf("tensor: %s\n", data.tensor.shape_string().c_str());

  FrameworkOptions options;
  options.rank = rank;
  options.max_iterations = iterations;
  options.scheme = UpdateScheme::kCuAdmm;           // fused + pre-inverted ADMM
  options.prox = Proximity::non_negative();         // the paper's constraint
  options.device = simgpu::a100();                  // modeled execution target

  CstfFramework framework(data.tensor, options);
  const AuntfResult result = framework.run();

  std::printf("\nconverged after %d iterations, fit = %.4f\n",
              result.iterations, result.final_fit);
  std::printf("fit history:");
  for (real_t fit : result.fit_history) std::printf(" %.3f", fit);
  std::printf("\n\nper-phase host wall time [ms]:\n");
  for (const auto& [phase, seconds] : framework.driver().phases().totals()) {
    std::printf("  %-10s %8.3f\n", phase.c_str(), seconds * 1e3);
  }
  std::printf("\nmodeled %s time for the whole run: %.3f ms\n",
              options.device.name.c_str(),
              framework.device().modeled_time_s() * 1e3);

  const KTensor model = framework.ktensor();
  std::printf("\ncomponent weights (lambda):");
  for (real_t l : model.lambda) std::printf(" %.3f", l);
  std::printf("\nexact fit recomputed from the model: %.4f\n",
              model.fit_to(data.tensor));
  return 0;
}
