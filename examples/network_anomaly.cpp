// Anomaly detection in network traffic — one of the application domains the
// paper's introduction motivates (cybersecurity / anomaly detection).
//
//   build/examples/network_anomaly
//
// A (source x destination x hour) traffic-count tensor is synthesized with
// smooth low-rank background traffic plus an injected exfiltration burst: a
// small set of hosts suddenly talks to one destination during a short window
// of hours. Non-negative CPD separates the background into its own
// components, and the burst — being rank-1 and localized — emerges as a
// component whose temporal loading spikes exactly in the attack window.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "cstf/framework.hpp"
#include "tensor/coo.hpp"

namespace {

using namespace cstf;

constexpr index_t kSources = 64;
constexpr index_t kDestinations = 48;
constexpr index_t kHours = 72;
constexpr index_t kAttackStart = 50;
constexpr index_t kAttackEnd = 56;

SparseTensor synthesize_traffic() {
  Rng rng(2024);
  SparseTensor traffic({kSources, kDestinations, kHours});

  // Background: two diurnal patterns (office-hours and nightly-batch) over
  // random host/dst communities.
  std::vector<real_t> office(kHours), batch(kHours);
  for (index_t h = 0; h < kHours; ++h) {
    const index_t hod = h % 24;
    office[h] = (hod >= 8 && hod <= 18) ? 1.0 : 0.1;
    batch[h] = (hod >= 1 && hod <= 4) ? 0.8 : 0.05;
  }
  index_t coords[3];
  for (index_t s = 0; s < kSources; ++s) {
    for (index_t d = 0; d < kDestinations; ++d) {
      // Sparse communication graph: ~20% of pairs talk at all.
      if (rng.uniform() > 0.2) continue;
      const real_t affinity = rng.uniform(0.5, 2.0);
      const bool nightly = rng.uniform() < 0.3;
      for (index_t h = 0; h < kHours; ++h) {
        const real_t rate = affinity * (nightly ? batch[h] : office[h]);
        const real_t count = rate * rng.uniform(0.7, 1.3);
        if (count < 0.15) continue;
        coords[0] = s;
        coords[1] = d;
        coords[2] = h;
        traffic.append(coords, count);
      }
    }
  }

  // Injected anomaly: compromised hosts 3, 17, 31 exfiltrate to dst 7
  // during hours [kAttackStart, kAttackEnd).
  for (index_t s : {3, 17, 31}) {
    for (index_t h = kAttackStart; h < kAttackEnd; ++h) {
      coords[0] = s;
      coords[1] = 7;
      coords[2] = h;
      traffic.append(coords, rng.uniform(8.0, 12.0));  // 10x normal volume
    }
  }
  traffic.sort_by_mode(0);
  traffic.dedup_sum();
  return traffic;
}

}  // namespace

int main() {
  const SparseTensor traffic = synthesize_traffic();
  std::printf("traffic tensor: %s\n", traffic.shape_string().c_str());

  FrameworkOptions options;
  options.rank = 6;
  options.max_iterations = 30;
  options.fit_tolerance = 1e-4;
  options.scheme = UpdateScheme::kCuAdmm;
  options.prox = Proximity::non_negative();
  CstfFramework framework(traffic, options);
  const AuntfResult result = framework.run();
  std::printf("factorized: %d iterations, fit %.3f\n\n", result.iterations,
              result.final_fit);

  // Score each component by how concentrated its temporal loading is inside
  // the attack window relative to its total mass.
  const KTensor model = framework.ktensor();
  const Matrix& time_factor = model.factors[2];
  int anomaly_component = -1;
  double best_concentration = 0.0;
  for (index_t r = 0; r < options.rank; ++r) {
    double window = 0.0, total = 1e-12;
    for (index_t h = 0; h < kHours; ++h) {
      total += time_factor(h, r);
      if (h >= kAttackStart && h < kAttackEnd) window += time_factor(h, r);
    }
    const double concentration = window / total;
    std::printf("component %lld: lambda=%7.2f  attack-window share=%5.1f%%\n",
                static_cast<long long>(r),
                model.lambda[static_cast<std::size_t>(r)],
                100.0 * concentration);
    if (concentration > best_concentration) {
      best_concentration = concentration;
      anomaly_component = static_cast<int>(r);
    }
  }

  // The attack window is 6 of 72 hours = 8.3% of uniform mass; the anomalous
  // component should be several times more concentrated.
  std::printf("\nmost anomalous component: %d (%.0f%% of its temporal mass in "
              "the %lld-hour attack window)\n",
              anomaly_component, 100.0 * best_concentration,
              static_cast<long long>(kAttackEnd - kAttackStart));

  // Identify the implicated hosts: the top source loadings of the component.
  const Matrix& src_factor = model.factors[0];
  std::vector<std::pair<real_t, index_t>> hosts;
  for (index_t s = 0; s < kSources; ++s) {
    hosts.emplace_back(src_factor(s, anomaly_component), s);
  }
  std::sort(hosts.rbegin(), hosts.rend());
  std::printf("top implicated sources:");
  for (int i = 0; i < 3; ++i) {
    std::printf(" host-%lld(%.2f)", static_cast<long long>(hosts[i].second),
                hosts[i].first);
  }
  std::printf("   (ground truth: hosts 3, 17, 31)\n");
  return best_concentration > 0.5 ? 0 : 1;
}
