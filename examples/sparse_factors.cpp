// Constraint flexibility: L1-regularized non-negative factorization.
//
//   build/examples/sparse_factors
//
// ADMM's proximity-operator formulation supports constraints beyond plain
// non-negativity (the flexibility Section 3.2 highlights). This example
// factorizes the same tensor twice — once with the non-negativity projection
// and once with the combined L1 + non-negativity soft-threshold — and shows
// that the L1 run produces markedly sparser (more interpretable) factors at
// a modest cost in fit.
#include <cstdio>

#include "cstf/framework.hpp"
#include "tensor/generate.hpp"

namespace {

using namespace cstf;

double factor_sparsity(const KTensor& model) {
  index_t zeros = 0, total = 0;
  for (const Matrix& factor : model.factors) {
    for (index_t i = 0; i < factor.size(); ++i) {
      zeros += (factor.data()[i] == 0.0);
    }
    total += factor.size();
  }
  return static_cast<double>(zeros) / static_cast<double>(total);
}

}  // namespace

int main() {
  // Planted model whose true factors are themselves ~70% sparse (the
  // low-rank generator draws mostly-small entries), so the L1 run has real
  // structure to find.
  LowRankTensorParams gen;
  gen.dims = {40, 32, 24};
  gen.rank = 5;
  gen.target_nnz = 40 * 32 * 24;
  gen.noise = 0.02;
  gen.seed = 31;
  const LowRankTensor data = generate_low_rank(gen);
  std::printf("tensor: %s\n\n", data.tensor.shape_string().c_str());

  FrameworkOptions base;
  base.rank = 8;
  base.max_iterations = 25;
  base.scheme = UpdateScheme::kCuAdmm;

  std::printf("%-22s %10s %12s\n", "constraint", "fit", "zero frac");
  double plain_sparsity = 0.0, l1_sparsity = 0.0;
  for (double lambda : {0.0, 0.05, 0.15, 0.4}) {
    FrameworkOptions options = base;
    options.prox = lambda == 0.0 ? Proximity::non_negative()
                                 : Proximity::l1_non_negative(lambda);
    CstfFramework framework(data.tensor, options);
    const AuntfResult result = framework.run();
    const double sparsity = factor_sparsity(framework.ktensor());
    if (lambda == 0.0) {
      plain_sparsity = sparsity;
    } else if (lambda == 0.4) {
      l1_sparsity = sparsity;
    }
    char label[64];
    std::snprintf(label, sizeof(label),
                  lambda == 0.0 ? "nonneg" : "nonneg + L1(%.2f)", lambda);
    std::printf("%-22s %10.4f %11.1f%%\n", label, result.final_fit,
                100.0 * sparsity);
  }

  std::printf("\nLarger L1 weights trade a little fit for much sparser "
              "factors.\n");
  return l1_sparsity > plain_sparsity ? 0 : 1;
}
