// cstf_info — inspect a sparse tensor and report the statistics that drive
// cSTF performance (the quantities the paper's analysis reasons about).
//
//   cstf_info --input data.tns
//   cstf_info --dataset NELL2
//
// Reports dimensions, nonzeros, density, per-mode fiber statistics (distinct
// indices, average nonzeros per used index — the MTTKRP reuse factor), the
// update/MTTKRP work ratio of Eq. 3, and the storage cost of each supported
// format.
//
// With --plan, additionally compiles one AO iteration for the tensor (at
// --rank, optionally --pipeline, optionally --mttkrp auto|flat|dimtree) and
// dumps the execution graph: ops with lane assignment and event edges,
// buffer lifetimes, and the peak device-memory estimate
// CstfFramework::device_footprint_bytes() reports. When the dimension-tree
// engine is in effect the dump is followed by the chosen tree: node shapes,
// reuse factor, and intermediate bytes against the budget (DESIGN.md §13).
//
// With --metrics (standalone, no tensor needed), prints the process metrics
// catalog: every instrument the codebase registers, with type, labels,
// unit, and help text (the same catalog docs/METRICS.md documents).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cstf/framework.hpp"
#include "formats/alto.hpp"
#include "formats/blco.hpp"
#include "formats/csf.hpp"
#include "metrics/catalog.hpp"
#include "mttkrp/scatter.hpp"
#include "tensor/datasets.hpp"
#include "tensor/io.hpp"

namespace {

using namespace cstf;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: cstf_info (--input FILE.tns | --dataset NAME) "
               "[--rank N] [--plan] [--pipeline] "
               "[--mttkrp auto|flat|dimtree]\n"
               "       cstf_info --metrics\n");
  std::exit(2);
}

void print_metrics_catalog() {
  std::size_t count = 0;
  const metrics::CatalogEntry* entries = metrics::catalog_entries(&count);
  std::printf("%-32s %-10s %-8s %-8s %s\n", "name", "type", "labels", "unit",
              "help");
  for (std::size_t i = 0; i < count; ++i) {
    const metrics::CatalogEntry& e = entries[i];
    std::printf("%-32s %-10s %-8s %-8s %s\n", e.name,
                metrics::instrument_type_name(e.type),
                e.label_keys[0] != '\0' ? e.label_keys : "-", e.unit, e.help);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, dataset;
  index_t rank = 32;
  bool show_plan = false;
  bool pipeline = false;
  bool show_metrics = false;
  MttkrpMode mttkrp_mode = MttkrpMode::kAuto;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--input") input = value();
    else if (arg == "--dataset") dataset = value();
    else if (arg == "--rank") rank = std::atoll(value().c_str());
    else if (arg == "--plan") show_plan = true;
    else if (arg == "--pipeline") pipeline = true;
    else if (arg == "--metrics") show_metrics = true;
    else if (arg == "--mttkrp") {
      if (!parse_mttkrp_mode(value(), &mttkrp_mode)) usage();
    }
    else usage();
  }
  if (show_metrics && input.empty() && dataset.empty()) {
    print_metrics_catalog();
    return 0;
  }
  if (input.empty() == dataset.empty()) usage();

  try {
    const SparseTensor t =
        input.empty() ? make_analog(dataset).tensor : read_tns_file(input);
    std::printf("tensor     : %s\n", t.shape_string().c_str());
    std::printf("density    : %.3e\n", t.density());
    std::printf("||X||_F    : %.6e\n\n", std::sqrt(t.frobenius_norm_sq()));

    std::printf("%-6s %12s %14s %16s %18s %13s %11s\n", "mode", "length",
                "distinct", "nnz/used-idx", "update/mttkrp work",
                "updates/row", "scatter");
    const ScatterOptions scatter_opts;  // defaults: kAuto resolution
    double sum_dims = 0.0;
    for (int m = 0; m < t.num_modes(); ++m) {
      std::vector<bool> seen(static_cast<std::size_t>(t.dim(m)), false);
      index_t distinct = 0;
      for (index_t v : t.indices(m)) {
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = true;
          ++distinct;
        }
      }
      sum_dims += static_cast<double>(t.dim(m));
      // Eq. 3 per-mode update flops (19IR + 2IR^2, 10 inner iterations)
      // against the per-mode MTTKRP flops (~nnz * R * modes).
      const double update_w =
          10.0 * (19.0 * static_cast<double>(t.dim(m)) * static_cast<double>(rank) +
                  2.0 * static_cast<double>(t.dim(m)) * static_cast<double>(rank * rank));
      const double mttkrp_w = static_cast<double>(t.nnz()) *
                              static_cast<double>(rank) *
                              static_cast<double>(t.num_modes());
      // The scatter engine's contention proxy (expected MTTKRP updates per
      // output row) and the strategy kAuto would pick for this mode.
      const double updates_per_row =
          static_cast<double>(t.nnz()) / static_cast<double>(t.dim(m));
      const ScatterStrategy picked =
          resolve_scatter_strategy(scatter_opts, t.dim(m), rank, t.nnz());
      std::printf("%-6d %12lld %14lld %16.2f %18.3f %13.2f %11s\n", m,
                  static_cast<long long>(t.dim(m)),
                  static_cast<long long>(distinct),
                  static_cast<double>(t.nnz()) /
                      static_cast<double>(std::max<index_t>(distinct, 1)),
                  update_w / mttkrp_w, updates_per_row,
                  scatter_strategy_name(picked));
    }
    std::printf("\nsum of mode lengths: %.3e (x R = factor elements: %.3e)\n",
                sum_dims, sum_dims * static_cast<double>(rank));
    std::printf("the paper's sparse-TF regime: factor elements comparable to "
                "nnz (%.3e)\n\n", static_cast<double>(t.nnz()));

    const double coo_bytes =
        static_cast<double>(t.nnz()) *
        (static_cast<double>(t.num_modes()) * sizeof(index_t) + sizeof(real_t));
    const CsfTensor csf(t, 0);
    const AltoTensor alto(t);
    const BlcoTensor blco(t);
    std::printf("%-8s %14s %12s\n", "format", "bytes", "vs COO");
    std::printf("%-8s %14.0f %11.2fx\n", "COO", coo_bytes, 1.0);
    std::printf("%-8s %14.0f %11.2fx\n", "CSF", csf.storage_bytes(),
                csf.storage_bytes() / coo_bytes);
    std::printf("%-8s %14.0f %11.2fx\n", "ALTO", alto.storage_bytes(),
                alto.storage_bytes() / coo_bytes);
    std::printf("%-8s %14.0f %11.2fx  (bit layout: %d bits/coordinate)\n",
                "BLCO", blco.storage_bytes(),
                blco.storage_bytes() / coo_bytes,
                blco.encoding().total_bits());

    if (show_plan) {
      FrameworkOptions opts;
      opts.rank = rank;
      opts.pipeline_streams = pipeline;
      opts.mttkrp_mode = mttkrp_mode;
      CstfFramework framework(t, opts);
      std::printf("\ncompiled AO iteration (rank %lld%s, mttkrp %s%s):\n%s",
                  static_cast<long long>(rank),
                  pipeline ? ", pipelined" : "",
                  mttkrp_mode_name(framework.resolved_mttkrp_mode()),
                  mttkrp_mode == MttkrpMode::kAuto ? ", auto-resolved" : "",
                  framework.driver().plan().describe().c_str());
      std::printf("device footprint (plan peak): %.3e bytes\n",
                  framework.device_footprint_bytes());
      if (const DimTreeEngine* tree = framework.backend().dimtree()) {
        std::printf("\n%s", describe_dimtree(*tree).c_str());
      } else {
        std::printf("\nmttkrp engine: flat per-mode kernels "
                    "(no dimension tree; rerun with --mttkrp dimtree to "
                    "force one)\n");
      }
      // Cache telemetry: the AO plan cache (one compile per option set) and
      // the scatter plan cache (one resolve per (mode, shape)). The dimtree
      // engine keeps its own scatter-plan cache for the chain kernels.
      const exec::PlanCache& plans = framework.driver().plan_cache();
      std::printf("\nplan cache: %lld hits, %lld misses\n",
                  static_cast<long long>(plans.hits()),
                  static_cast<long long>(plans.misses()));
      const ScatterPlanCache& scatter_plans = framework.backend().scatter_plans();
      std::printf("scatter plan cache: %lld hits, %lld misses\n",
                  static_cast<long long>(scatter_plans.hits()),
                  static_cast<long long>(scatter_plans.misses()));
      if (const DimTreeEngine* tree = framework.backend().dimtree()) {
        std::printf("dimtree scatter plan cache: %lld hits, %lld misses\n",
                    static_cast<long long>(tree->scatter_plans().hits()),
                    static_cast<long long>(tree->scatter_plans().misses()));
      }
    }
    if (show_metrics) {
      std::printf("\n");
      print_metrics_catalog();
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "cstf_info: %s\n", e.what());
    return 1;
  }
  return 0;
}
