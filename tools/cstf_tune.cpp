// cstf_tune — pre-tune a set of tensors and dump the decision table.
//
//   cstf_tune --dataset Uber --dataset NIPS --tuning-cache tuned.cstftune
//   cstf_tune --input data.tns --rank 32 --tune measure
//
// For every tensor the tool runs the autotuning resolution exactly the way a
// training run would (CstfFramework construction under the chosen policy),
// executes one training iteration with the decided configuration, and prints
// one decision-table row: the per-mode scatter picks, the MTTKRP engine, the
// chunk knob, and the measured/modeled evidence behind the decision. With a
// --tuning-cache file the decisions persist, so later cstf_cli/cstf_serve
// runs with --tune cached skip the trials entirely.
//
// Options:
//   --dataset NAME    synthetic Table-2 analog to tune (repeatable)
//   --input FILE.tns  FROSTT tensor to tune (repeatable)
//   --rank N          factorization rank the decisions are tuned for (16)
//   --device D        a100 | h100 | xeon cost-model target (a100)
//   --tune P          cached | measure — cached reuses stored decisions and
//                     runs trials only on a miss; measure always re-measures
//                     (default cached; model would tune nothing)
//   --tuning-cache F  CSTFTUNE cache file to consult and refresh
//   --expect-cached   exit nonzero unless EVERY decision was a cache hit
//                     (no trials run) — the counter-verified second-run
//                     smoke check scripts/check.sh uses
//
// JSON telemetry: opens bench JsonSession "tune"; each tensor adds a record
// whose extras carry trials_run / cache_hit, the evidence seconds, and the
// plan-cache and scatter-plan-cache hit/miss counters of the verification
// iteration (enable with CSTF_BENCH_JSON=1).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cstf/framework.hpp"
#include "tensor/datasets.hpp"
#include "tensor/io.hpp"

namespace {

using namespace cstf;

[[noreturn]] void usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr,
               "usage: cstf_tune (--dataset NAME | --input FILE.tns)...\n"
               "                 [--rank N] [--device a100|h100|xeon]\n"
               "                 [--tune cached|measure]"
               " [--tuning-cache FILE]\n"
               "                 [--expect-cached]\n");
  std::exit(2);
}

simgpu::DeviceSpec parse_device(const std::string& spec) {
  if (spec == "a100") return simgpu::a100();
  if (spec == "h100") return simgpu::h100();
  if (spec == "xeon") return simgpu::xeon_8367hc();
  usage(("unknown device: " + spec).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::pair<std::string, bool>> sources;  // (name, is_file)
  index_t rank = 16;
  simgpu::DeviceSpec device_spec = simgpu::a100();
  autotune::TuningOptions tuning;
  tuning.policy = autotune::TuningPolicy::kCached;
  bool expect_cached = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--dataset") sources.emplace_back(value(), false);
    else if (arg == "--input") sources.emplace_back(value(), true);
    else if (arg == "--rank") rank = std::atoll(value().c_str());
    else if (arg == "--device") device_spec = parse_device(value());
    else if (arg == "--tune") {
      const std::string spec = value();
      if (!autotune::parse_tuning_policy(spec, &tuning.policy) ||
          tuning.policy == autotune::TuningPolicy::kModel) {
        usage(("--tune must be cached or measure, got: " + spec).c_str());
      }
    }
    else if (arg == "--tuning-cache") tuning.cache_path = value();
    else if (arg == "--expect-cached") expect_cached = true;
    else if (arg == "--help" || arg == "-h") usage(nullptr);
    else usage(("unknown argument: " + arg).c_str());
  }
  if (sources.empty()) {
    usage("at least one --dataset / --input is required");
  }

  cstf::bench::JsonSession session("tune");
  int not_cached = 0;
  try {
    std::printf("%-12s %10s %8s %-8s %7s %12s %12s  %s\n", "tensor", "nnz",
                "source", "engine", "chunks", "measured[ms]", "model[ms]",
                "scatter per mode");
    for (const auto& [name, is_file] : sources) {
      const SparseTensor tensor =
          is_file ? read_tns_file(name) : make_analog(name).tensor;

      FrameworkOptions options;
      options.rank = rank;
      options.device = device_spec;
      options.tuning = tuning;
      options.max_iterations = 1;
      options.compute_fit = false;
      CstfFramework framework(tensor, options);
      const autotune::TuningOutcome& outcome = framework.tuning();
      if (!outcome.cache_hit) ++not_cached;

      // One training iteration under the decided configuration: verifies the
      // decision plugs in end to end and exercises the plan caches whose
      // counters the telemetry reports.
      framework.run();

      const autotune::TuningRecord& rec = outcome.record;
      std::string scatter;
      for (ScatterStrategy s : rec.scatter_per_mode) {
        if (!scatter.empty()) scatter += ' ';
        scatter += scatter_strategy_name(s);
      }
      std::printf("%-12s %10lld %8s %-8s %7u %12.3f %12.3f  %s\n",
                  name.c_str(), static_cast<long long>(tensor.nnz()),
                  outcome.cache_hit ? "cache" : "trials",
                  mttkrp_mode_name(rec.mttkrp_mode), rec.chunks_per_worker,
                  rec.measured_best_s * 1e3, rec.measured_model_s * 1e3,
                  scatter.c_str());

      bench::BenchRecord brec;
      brec.dataset = name;
      brec.machine = device_spec.name;
      brec.rank = rank;
      brec.extras.emplace_back("trials_run", outcome.trials_run ? 1.0 : 0.0);
      brec.extras.emplace_back("cache_hit", outcome.cache_hit ? 1.0 : 0.0);
      brec.extras.emplace_back("measured_best_s", rec.measured_best_s);
      brec.extras.emplace_back("measured_model_s", rec.measured_model_s);
      brec.extras.emplace_back("modeled_best_s", rec.modeled_best_s);
      brec.extras.emplace_back("modeled_model_s", rec.modeled_model_s);
      brec.extras.emplace_back("chunks_per_worker",
                               static_cast<double>(rec.chunks_per_worker));
      const exec::PlanCache& plans = framework.driver().plan_cache();
      brec.extras.emplace_back("plan_cache_hits",
                               static_cast<double>(plans.hits()));
      brec.extras.emplace_back("plan_cache_misses",
                               static_cast<double>(plans.misses()));
      const ScatterPlanCache& scatter_plans =
          framework.backend().scatter_plans();
      brec.extras.emplace_back("scatter_plan_hits",
                               static_cast<double>(scatter_plans.hits()));
      brec.extras.emplace_back("scatter_plan_misses",
                               static_cast<double>(scatter_plans.misses()));
      session.add_record(std::move(brec));
    }
    if (!tuning.cache_path.empty()) {
      std::printf("\ntuning cache: %s\n", tuning.cache_path.c_str());
    }
    if (expect_cached && not_cached != 0) {
      std::fprintf(stderr,
                   "cstf_tune: --expect-cached but %d decision(s) missed the "
                   "cache and re-ran trials\n",
                   not_cached);
      return 1;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "cstf_tune: %s\n", e.what());
    return 1;
  }
  return 0;
}
