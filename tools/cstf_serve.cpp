// cstf_serve — model serving: load a factorized model, answer batched
// queries, and admit unseen slices by constrained fold-in.
//
//   cstf_serve --model model.cstf [options]
//   cstf_serve --dataset Uber [--rank N] [--iters N] [--save PATH] [options]
//
// With --dataset the tool factorizes the synthetic analog, saves the model
// through the .cstf serializer, and then serves from the *loaded* copy — one
// command exercises the full save/load round trip.
//
// Serving options:
//   --requests N     total client requests in the open-loop workload (200)
//   --clients T      concurrent client threads (4)
//   --query-frac F   fraction of requests that are queries; the rest are
//                    fold-ins (0.5)
//   --topk K         every 4th query is a top-k scoring of this size (5)
//   --batch B        fold-in batcher max batch size (16)
//   --linger S       batcher linger window in seconds (0.002)
//   --per-request    disable Gram caching AND batching: every fold-in
//                    re-factorizes S + rho*I alone (the baseline mode)
//   --device D       a100 | h100 | xeon cost-model target (a100)
//   --seed N         workload (and --dataset factorization) seed (42)
//   --trace FILE     chrome://tracing timeline of the serving kernels
//   --json FILE      machine-readable latency/batch telemetry
//   --metrics-out F  Prometheus text exposition of the process metrics
//                    registry, dumped periodically during the workload and
//                    once at the end (atomic tmp+rename each time)
//
// Reliability options (chaos testing, see DESIGN.md §11):
//   --fault-plan S   inject faults into the serving device, e.g.
//                    "launch:p=0.01,seed=7" (defaults to $CSTF_FAULT_PLAN)
//   --retries N      transient-fault retries per query / fused fold-in (10)
//   --backoff S      base retry backoff, doubled per attempt (0.0002)
//   --deadline S     per-request fold-in deadline; 0 = none (0)
//   --max-queue N    fold-in admission-queue bound; beyond it requests are
//                    shed, not queued (1024)
//
// Autotuning options (DESIGN.md §14):
//   --tune P         model | cached | measure — batcher autotuning policy.
//                    measure calibrates the fused-solve cost after the
//                    workload and derives a tuned max_batch/linger from the
//                    measured arrival rate; cached applies a previously
//                    stored decision before serving starts
//   --tuning-cache F CSTFTUNE cache file the decision is read from /
//                    written to
//
// Output: model provenance, query and fold-in latency summaries
// (p50/p95/p99), the realized batch-size histogram, the worst fold-in ADMM
// residual, reliability counters (shed/timeout/retry/degraded), and the
// modeled device time of the whole workload. Shed and timed-out requests
// are load-management outcomes, not failures; the exit code is nonzero only
// for unhandled errors.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "autotune/tuning.hpp"
#include "common/digest.hpp"
#include "cstf/framework.hpp"
#include "metrics/exposition.hpp"
#include "metrics/registry.hpp"
#include "serve/fold_in.hpp"
#include "serve/model_store.hpp"
#include "serve/query_engine.hpp"
#include "simgpu/fault.hpp"
#include "simgpu/trace.hpp"
#include "tensor/datasets.hpp"

namespace {

using namespace cstf;

[[noreturn]] void usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr,
               "usage: cstf_serve (--model FILE.cstf | --dataset NAME)\n"
               "                  [--rank N] [--iters N] [--save PATH]"
               " [--requests N]\n"
               "                  [--clients T] [--query-frac F] [--topk K]"
               " [--batch B]\n"
               "                  [--linger S] [--per-request]"
               " [--device a100|h100|xeon]\n"
               "                  [--fault-plan SPEC] [--retries N]"
               " [--backoff S]\n"
               "                  [--deadline S] [--max-queue N]\n"
               "                  [--tune model|cached|measure]"
               " [--tuning-cache FILE]\n"
               "                  [--seed N] [--trace FILE] [--json FILE]\n"
               "                  [--metrics-out FILE]\n");
  std::exit(2);
}

simgpu::DeviceSpec parse_device(const std::string& spec) {
  if (spec == "a100") return simgpu::a100();
  if (spec == "h100") return simgpu::h100();
  if (spec == "xeon") return simgpu::xeon_8367hc();
  usage(("unknown device: " + spec).c_str());
}

// Strict numeric flag parsing (same discipline as cstf_cli
// --dimtree-budget): the whole token must parse and land in range; trailing
// garbage, overflow, and out-of-range values are rejected instead of
// silently truncating to 0 the way atoi would.
long long parse_count_flag(const std::string& arg, const std::string& spec,
                           long long min_value) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(spec.c_str(), &end, 10);
  if (end == spec.c_str() || *end != '\0' || errno == ERANGE ||
      v < min_value) {
    usage((arg + " must be an integer >= " + std::to_string(min_value) +
           ", got: " + spec)
              .c_str());
  }
  return v;
}

double parse_seconds_flag(const std::string& arg, const std::string& spec) {
  char* end = nullptr;
  const double v = std::strtod(spec.c_str(), &end);
  if (end == spec.c_str() || *end != '\0' || !std::isfinite(v) || v < 0.0) {
    usage((arg + " must be a finite non-negative number of seconds, got: " +
           spec)
              .c_str());
  }
  return v;
}

void print_summary(const char* label, const serve::LatencySummary& s) {
  std::printf("%-18s %8lld requests  p50 %9.1f us  p95 %9.1f us  "
              "p99 %9.1f us  max %9.1f us\n",
              label, static_cast<long long>(s.count), s.p50_s * 1e6,
              s.p95_s * 1e6, s.p99_s * 1e6, s.max_s * 1e6);
}

std::string latency_json(const serve::LatencySummary& s) {
  using simgpu::json::number;
  return "{\"count\":" + number(static_cast<double>(s.count)) +
         ",\"mean_s\":" + number(s.mean_s) + ",\"p50_s\":" + number(s.p50_s) +
         ",\"p95_s\":" + number(s.p95_s) + ",\"p99_s\":" + number(s.p99_s) +
         ",\"max_s\":" + number(s.max_s) + "}";
}

/// Background dumper for --metrics-out: rewrites `path` (atomically) every
/// ~250 ms while the workload runs. The final authoritative dump happens on
/// the main thread after export_reliability(), not here.
class PeriodicMetricsDumper {
 public:
  explicit PeriodicMetricsDumper(std::string path) : path_(std::move(path)) {
    thread_ = std::thread([this] { loop(); });
  }

  ~PeriodicMetricsDumper() { stop(); }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
      lock.unlock();
      metrics::write_text_atomic(
          path_, metrics::to_prometheus(
                     metrics::MetricsRegistry::global().snapshot()));
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(250),
                   [this] { return stopping_; });
    }
  }

  std::string path_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string model_path, dataset, save_path, trace_path, json_path;
  std::string metrics_path;
  index_t rank = 8;
  int iters = 5;
  int requests = 200;
  int clients = 4;
  double query_frac = 0.5;
  int topk = 5;
  std::size_t batch = 16;
  double linger_s = 0.002;
  bool per_request = false;
  std::uint64_t seed = 42;
  simgpu::DeviceSpec device_spec = simgpu::a100();
  std::string fault_spec;
  bool fault_spec_given = false;
  int retries = 10;
  double backoff_s = 0.0002;
  double deadline_s = 0.0;
  std::size_t max_queue = 1024;
  autotune::TuningPolicy tune_policy = autotune::TuningPolicy::kModel;
  std::string tuning_cache_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--model") model_path = value();
    else if (arg == "--dataset") dataset = value();
    else if (arg == "--rank") rank = std::atoll(value().c_str());
    else if (arg == "--iters") iters = std::atoi(value().c_str());
    else if (arg == "--save") save_path = value();
    else if (arg == "--requests") requests = std::atoi(value().c_str());
    else if (arg == "--clients") clients = std::atoi(value().c_str());
    else if (arg == "--query-frac") query_frac = std::atof(value().c_str());
    else if (arg == "--topk") topk = std::atoi(value().c_str());
    else if (arg == "--batch") batch = static_cast<std::size_t>(std::atoll(value().c_str()));
    else if (arg == "--linger") linger_s = std::atof(value().c_str());
    else if (arg == "--per-request") per_request = true;
    else if (arg == "--device") device_spec = parse_device(value());
    else if (arg == "--fault-plan") { fault_spec = value(); fault_spec_given = true; }
    else if (arg == "--retries") {
      retries = static_cast<int>(parse_count_flag(arg, value(), 0));
    }
    else if (arg == "--backoff") backoff_s = parse_seconds_flag(arg, value());
    else if (arg == "--deadline") deadline_s = parse_seconds_flag(arg, value());
    else if (arg == "--max-queue") {
      max_queue = static_cast<std::size_t>(parse_count_flag(arg, value(), 0));
    }
    else if (arg == "--tune") {
      const std::string spec = value();
      if (!autotune::parse_tuning_policy(spec, &tune_policy)) {
        usage(("unknown tuning policy: " + spec).c_str());
      }
    }
    else if (arg == "--tuning-cache") tuning_cache_path = value();
    else if (arg == "--seed") seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--trace") trace_path = value();
    else if (arg == "--json") json_path = value();
    else if (arg == "--metrics-out") metrics_path = value();
    else if (arg == "--help" || arg == "-h") usage(nullptr);
    else usage(("unknown argument: " + arg).c_str());
  }
  if (model_path.empty() == dataset.empty()) {
    usage("exactly one of --model / --dataset is required");
  }
  if (requests < 1 || clients < 1) usage("--requests/--clients must be >= 1");

  try {
    // --dataset: factorize, persist, and serve from the loaded copy.
    if (model_path.empty()) {
      FrameworkOptions options;
      options.rank = rank;
      options.max_iterations = iters;
      options.seed = seed;
      const DatasetAnalog analog = make_analog(dataset);
      CstfFramework framework(analog.tensor, options);
      const AuntfResult result = framework.run();
      serve::SavedModel saved;
      saved.model = framework.ktensor();
      saved.meta.name = dataset;
      saved.meta.set_constraint(options.prox);
      saved.meta.final_fit = result.final_fit;
      saved.meta.options_digest = serve::digest_options(options);
      saved.meta.seed = options.seed;
      saved.meta.iterations = static_cast<std::uint32_t>(result.iterations);
      model_path = save_path.empty() ? dataset + ".cstf" : save_path;
      serve::save_model(saved, model_path);
      std::printf("factorized %s (fit %.5f) -> %s\n", dataset.c_str(),
                  result.final_fit, model_path.c_str());
    }

    serve::ModelStore store;
    serve::ServableModelPtr model = store.load_and_publish(model_path);
    const int modes = model->num_modes();
    std::printf("serving model '%s': %d modes, rank %lld, constraint %s, "
                "trained fit %.5f (generation %llu)\n",
                model->meta().name.c_str(), modes,
                static_cast<long long>(model->rank()),
                model->meta().prox().name().c_str(), model->meta().final_fit,
                static_cast<unsigned long long>(model->generation()));

    simgpu::Device device(device_spec);
    simgpu::Tracer tracer;
    if (!trace_path.empty()) device.set_tracer(&tracer);

    // Fault injection: the plan outlives the device hookup; training above
    // ran on the framework's own device, so only serving kernels can fail.
    simgpu::FaultPlan fault_plan =
        fault_spec_given ? simgpu::FaultPlan(fault_spec)
                         : simgpu::FaultPlan::from_env();
    std::optional<simgpu::ScopedAllocFaults> alloc_faults;
    if (fault_plan.active()) {
      device.set_fault_plan(&fault_plan);
      alloc_faults.emplace(fault_plan);  // alloc arms hit ScratchPool::acquire
      std::printf("fault injection active (%s)\n",
                  fault_spec_given ? fault_spec.c_str() : "$CSTF_FAULT_PLAN");
    }

    serve::ServeRuntime runtime(device, global_pool());
    serve::QueryEngine queries(runtime);
    serve::FoldInOptions fold_options;
    fold_options.use_cached_gram = !per_request;
    serve::FoldInEngine fold_engine(runtime, fold_options);
    serve::FoldInBatcher::Options batcher_options;
    batcher_options.max_batch = per_request ? 1 : batch;
    batcher_options.max_linger_s = per_request ? 0.0 : linger_s;
    batcher_options.max_queue = max_queue;
    batcher_options.default_deadline_s = deadline_s;
    batcher_options.max_retries = retries;
    batcher_options.retry_backoff_s = backoff_s;

    // Batcher autotuning key: this device + the served model's shape. The
    // arrival rate is workload-dependent, so the stored record carries the
    // measured rate it was tuned for as evidence.
    autotune::TuningKey serve_key;
    autotune::TuningCache tuning_cache;
    bool tuned_from_cache = false;
    if (tune_policy != autotune::TuningPolicy::kModel) {
      std::vector<index_t> dims(static_cast<std::size_t>(modes));
      for (int m = 0; m < modes; ++m) {
        dims[static_cast<std::size_t>(m)] = model->mode_size(m);
      }
      serve_key.device_digest = autotune::digest_device_spec(device_spec);
      serve_key.tensor_digest = autotune::digest_shape_fingerprint(
          dims, 0, /*layout_tag=*/0x53455256);  // "SERV": batcher records
      serve_key.rank = static_cast<std::uint64_t>(model->rank());
      serve_key.options_digest = DigestBuilder()
                                     .u64(static_cast<std::uint64_t>(batch))
                                     .boolean(per_request)
                                     .value();
      if (!tuning_cache_path.empty()) {
        tuning_cache = autotune::TuningCache::load_or_empty(tuning_cache_path);
      }
      if (tune_policy == autotune::TuningPolicy::kCached && !per_request) {
        const autotune::TuningRecord* rec = tuning_cache.find(serve_key);
        if (rec != nullptr && rec->batcher_max_batch > 0) {
          batcher_options.max_batch = rec->batcher_max_batch;
          batcher_options.max_linger_s = rec->batcher_linger_s;
          tuned_from_cache = true;
          std::printf("autotune: cached batcher decision (max_batch %u, "
                      "linger %.4f s, tuned at %.1f req/s)\n",
                      rec->batcher_max_batch, rec->batcher_linger_s,
                      rec->batcher_arrival_rate_rps);
        }
      }
    }

    serve::FoldInBatcher batcher(fold_engine, store, model->meta().name,
                                 batcher_options);

    // Periodic metrics exposition while the workload runs; the final dump
    // below (after export_reliability) is the authoritative one.
    std::optional<PeriodicMetricsDumper> metrics_dumper;
    if (!metrics_path.empty()) metrics_dumper.emplace(metrics_path);

    // Open-loop workload: each client issues its share of requests, holding
    // fold-in futures until the end so concurrent arrivals can coalesce.
    std::atomic<long> failures{0};
    std::atomic<long> query_retries{0};
    std::atomic<long> sheds{0};
    std::atomic<long> timeouts{0};
    std::vector<double> worst_primal(static_cast<std::size_t>(clients), 0.0);
    std::vector<std::thread> workers;
    Timer wall;
    for (int t = 0; t < clients; ++t) {
      workers.emplace_back([&, t] {
        Rng rng(seed + 1000 * static_cast<std::uint64_t>(t + 1));
        // Queries run on the client thread, so the client owns their retry
        // loop (fold-ins retry inside the batcher).
        const auto with_retries = [&](const auto& fn) {
          for (int attempt = 0;; ++attempt) {
            try {
              fn();
              return;
            } catch (const simgpu::FaultError& e) {
              if (!e.transient() || attempt >= retries) throw;
              query_retries.fetch_add(1, std::memory_order_relaxed);
              if (backoff_s > 0.0) {
                std::this_thread::sleep_for(std::chrono::duration<double>(
                    backoff_s * static_cast<double>(1 << attempt)));
              }
            }
          }
        };
        std::vector<std::future<serve::FoldInResult>> futures;
        const int share = requests / clients + (t < requests % clients ? 1 : 0);
        for (int q = 0; q < share; ++q) {
          try {
            if (rng.uniform() < query_frac) {
              if (q % 4 == 3) {
                std::vector<index_t> fixed(static_cast<std::size_t>(modes));
                for (int m = 0; m < modes; ++m) {
                  fixed[static_cast<std::size_t>(m)] = static_cast<index_t>(
                      rng.uniform_index(
                          static_cast<std::uint64_t>(model->mode_size(m))));
                }
                with_retries([&] {
                  queries.top_k(*model,
                                static_cast<int>(rng.uniform_index(
                                    static_cast<std::uint64_t>(modes))),
                                fixed, topk);
                });
              } else {
                std::vector<index_t> coords;
                for (int b = 0; b < 8; ++b) {
                  for (int m = 0; m < modes; ++m) {
                    coords.push_back(static_cast<index_t>(rng.uniform_index(
                        static_cast<std::uint64_t>(model->mode_size(m)))));
                  }
                }
                with_retries([&] { queries.predict(*model, coords); });
              }
            } else {
              serve::FoldInRequest req;
              req.mode = static_cast<int>(
                  rng.uniform_index(static_cast<std::uint64_t>(modes)));
              const int nnz = 4 + static_cast<int>(rng.uniform_index(8));
              for (int j = 0; j < nnz; ++j) {
                for (int m = 0; m < modes; ++m) {
                  if (m == req.mode) continue;
                  req.coords.push_back(static_cast<index_t>(rng.uniform_index(
                      static_cast<std::uint64_t>(model->mode_size(m)))));
                }
                req.values.push_back(rng.uniform(0.0, 2.0));
              }
              futures.push_back(batcher.submit(std::move(req)));
            }
          } catch (const Error&) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
        double worst = 0.0;
        for (auto& f : futures) {
          try {
            const serve::FoldInResult result = f.get();
            if (result.diagnostics.primal_residual > worst) {
              worst = result.diagnostics.primal_residual;
            }
          } catch (const serve::ShedError&) {
            // Load management, not an error: the client's cue to back off.
            sheds.fetch_add(1, std::memory_order_relaxed);
          } catch (const serve::DeadlineError&) {
            timeouts.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::exception&) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
        worst_primal[static_cast<std::size_t>(t)] = worst;
      });
    }
    for (std::thread& w : workers) w.join();
    batcher.flush();  // anything still lingering
    const double wall_s = std::max(wall.seconds(), 1e-9);

    double worst = 0.0;
    for (double w : worst_primal) worst = std::max(worst, w);
    const serve::LatencySummary query_lat = queries.latency().summary();
    const serve::LatencySummary fold_lat = batcher.latency().summary();

    const double arrival_rps = batcher.measured_arrival_rate_rps();
    std::printf("\nworkload: %d requests, %d clients, %.3f s wall "
                "(%.0f req/s), %ld failures\n",
                requests, clients, wall_s,
                static_cast<double>(requests) / wall_s,
                failures.load());
    std::printf("measured fold-in arrival rate: %.1f req/s\n", arrival_rps);

    // Post-workload batcher calibration: fit the fused-solve cost model
    // t(B) = base + per_row * B from two timed solves, combine it with the
    // measured arrival rate, and store the tuned (max_batch, linger) for the
    // next run to pick up with --tune cached.
    autotune::BatcherTuning batcher_tuning;
    if (tune_policy != autotune::TuningPolicy::kModel) {
      auto timed_solve = [&](int rows) {
        std::vector<serve::FoldInRequest> reqs;
        Rng cal_rng(seed ^ 0xb47cULL);
        for (int j = 0; j < rows; ++j) {
          serve::FoldInRequest req;
          req.mode = 0;
          for (int e = 0; e < 4; ++e) {
            for (int m = 0; m < modes; ++m) {
              if (m == req.mode) continue;
              req.coords.push_back(static_cast<index_t>(cal_rng.uniform_index(
                  static_cast<std::uint64_t>(model->mode_size(m)))));
            }
            req.values.push_back(cal_rng.uniform(0.0, 2.0));
          }
          reqs.push_back(std::move(req));
        }
        // Calibration runs outside the serving retry wrapper, so absorb
        // transient (injected) faults here; a retried attempt re-times the
        // solve from scratch.
        for (int attempt = 0;; ++attempt) {
          try {
            Timer t;
            fold_engine.fold_in_batch(*model, reqs);
            return t.seconds();
          } catch (const Error&) {
            if (attempt >= 5) throw;
          }
        }
      };
      autotune::BatcherCalibration cal;
      bool calibrated = true;
      try {
        const double t1 = timed_solve(1);
        const double t8 = timed_solve(8);
        cal.solve_per_row_s = std::max(0.0, (t8 - t1) / 7.0);
        cal.solve_base_s = std::max(0.0, t1 - cal.solve_per_row_s);
      } catch (const Error& e) {
        // A fault-ridden measurement is worthless; keep the current knobs
        // rather than failing an otherwise successful serve run.
        calibrated = false;
        std::printf("autotune: batcher calibration aborted (%s); keeping %s "
                    "batcher knobs\n",
                    e.what(), tuned_from_cache ? "cached" : "default");
      }
      cal.arrival_rate_rps = arrival_rps;
      if (calibrated) {
        batcher_tuning = autotune::tune_fold_in_batcher(cal);
        std::printf("autotune (%s): solve base %.1f us + %.1f us/row -> "
                    "tuned max_batch %u, linger %.4f s%s\n",
                    autotune::tuning_policy_name(tune_policy),
                    cal.solve_base_s * 1e6, cal.solve_per_row_s * 1e6,
                    batcher_tuning.max_batch, batcher_tuning.linger_s,
                    tuned_from_cache ? " (served with cached decision)" : "");
      }
      if (calibrated && !tuned_from_cache) {
        autotune::TuningRecord rec;
        rec.batcher_max_batch = batcher_tuning.max_batch;
        rec.batcher_linger_s = batcher_tuning.linger_s;
        rec.batcher_arrival_rate_rps = arrival_rps;
        rec.seed = seed;
        rec.provenance = "cstf_serve batcher calibration, model '" +
                         model->meta().name + "'";
        tuning_cache.put(serve_key, std::move(rec));
        if (!tuning_cache_path.empty()) {
          tuning_cache.save(tuning_cache_path);
          std::printf("tuning cache updated: %s\n", tuning_cache_path.c_str());
        }
      }
    }
    print_summary("query latency", query_lat);
    print_summary("fold-in latency", fold_lat);
    std::printf("fold-in batches: %lld (mean size %.2f)\n",
                static_cast<long long>(batcher.batch_sizes().batches()),
                batcher.batch_sizes().mean_batch_size());
    for (const auto& [size, count] : batcher.batch_sizes().histogram()) {
      std::printf("  batch size %3lld: %lld\n", static_cast<long long>(size),
                  static_cast<long long>(count));
    }
    std::printf("worst fold-in primal residual: %.3e\n", worst);
    const serve::ReliabilitySnapshot rel = batcher.reliability().snapshot();
    // Ratchet the registry to this exact snapshot, then capture the
    // snapshot every metrics surface below (final --metrics-out dump, JSON
    // "metrics" block) is rendered from — the serve.requests counters and
    // the JSON reliability block agree by construction.
    serve::export_reliability(rel);
    const metrics::MetricsSnapshot metrics_snap =
        metrics::MetricsRegistry::global().snapshot();
    if (metrics_dumper.has_value()) {
      metrics_dumper->stop();
      metrics::write_text_atomic(metrics_path,
                                 metrics::to_prometheus(metrics_snap));
      std::printf("metrics written to %s\n", metrics_path.c_str());
    }
    if (fault_plan.active() || rel.shed + rel.timed_out + rel.retries +
                                       rel.degraded + rel.failed !=
                                   0) {
      std::printf("reliability: %lld injected faults, %ld query retries, "
                  "%lld fold-in retries, %lld shed, %lld timed out, "
                  "%lld degraded, %lld failed\n",
                  static_cast<long long>(fault_plan.injected()),
                  query_retries.load(), static_cast<long long>(rel.retries),
                  static_cast<long long>(rel.shed),
                  static_cast<long long>(rel.timed_out),
                  static_cast<long long>(rel.degraded),
                  static_cast<long long>(rel.failed));
    }
    std::printf("modeled %s time for the serving work: %.6f s\n",
                device_spec.name.c_str(), device.modeled_time_s());

    CSTF_CHECK_MSG(std::isfinite(query_lat.p99_s) &&
                       std::isfinite(fold_lat.p99_s),
                   "non-finite latency quantile");
    CSTF_CHECK_MSG(std::isfinite(worst), "non-finite fold-in residual");

    if (!trace_path.empty()) {
      tracer.write_chrome_trace(trace_path);
      std::printf("trace written to %s\n", trace_path.c_str());
    }
    if (!json_path.empty()) {
      using simgpu::json::number;
      std::string doc = "{\n  \"model\": \"" +
                        simgpu::json::escape(model->meta().name) +
                        "\",\n  \"requests\": " +
                        number(static_cast<double>(requests)) +
                        ",\n  \"wall_s\": " + number(wall_s) +
                        ",\n  \"query_latency\": " + latency_json(query_lat) +
                        ",\n  \"fold_in_latency\": " + latency_json(fold_lat) +
                        ",\n  \"mean_batch_size\": " +
                        number(batcher.batch_sizes().mean_batch_size()) +
                        ",\n  \"arrival_rate_rps\": " + number(arrival_rps) +
                        ",\n  \"tuned_max_batch\": " +
                        number(static_cast<double>(
                            batcher_tuning.max_batch)) +
                        ",\n  \"tuned_linger_s\": " +
                        number(batcher_tuning.linger_s) +
                        ",\n  \"worst_primal_residual\": " + number(worst) +
                        ",\n  \"reliability\": {\"injected_faults\":" +
                        number(static_cast<double>(fault_plan.injected())) +
                        ",\"query_retries\":" +
                        number(static_cast<double>(query_retries.load())) +
                        ",\"fold_in_retries\":" +
                        number(static_cast<double>(rel.retries)) +
                        ",\"shed\":" + number(static_cast<double>(rel.shed)) +
                        ",\"timed_out\":" +
                        number(static_cast<double>(rel.timed_out)) +
                        ",\"degraded\":" +
                        number(static_cast<double>(rel.degraded)) +
                        ",\"failed\":" +
                        number(static_cast<double>(rel.failed)) +
                        ",\"failures\":" +
                        number(static_cast<double>(failures.load())) + "}" +
                        ",\n  \"modeled_s\": " +
                        number(device.modeled_time_s()) +
                        ",\n  \"metrics\": " + metrics::to_json(metrics_snap) +
                        "\n}\n";
      std::ofstream out(json_path);
      CSTF_CHECK_MSG(out.good(), "cannot write " << json_path);
      out << doc;
      std::printf("telemetry written to %s\n", json_path.c_str());
    }
    if (failures.load() != 0) return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "cstf_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
