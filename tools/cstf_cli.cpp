// cstf_cli — command-line constrained sparse tensor factorization.
//
//   cstf_cli --input data.tns [options]
//   cstf_cli --dataset Delicious [options]          (synthetic Table-2 analog)
//
// Options:
//   --rank N            factorization rank (default 16)
//   --iters N           max outer iterations (default 20)
//   --tol X             fit tolerance for early stop (default 1e-4)
//   --scheme S          cuadmm | admm | mu | hals | als | bpp (default cuadmm)
//   --constraint C      nonneg | none | l1:<w> | l1nn:<w> | box:<lo>,<hi> |
//                       simplex | smooth:<w> (default nonneg)
//   --device D          a100 | h100 | xeon (cost-model target, default a100)
//   --scatter S         auto | atomic | privatized | sorted — MTTKRP output
//                       accumulation strategy (default auto; see DESIGN.md §8)
//   --mttkrp M          auto | flat | dimtree — MTTKRP engine: flat per-mode
//                       kernels or the dimension-tree reuse engine; auto
//                       models both and picks per tensor (DESIGN.md §13)
//   --dimtree-budget B  byte cap on the dimension tree's chain intermediate
//                       (default 256 MiB; over budget falls back to flat)
//   --tune P            model | cached | measure — autotuning policy
//                       (default model = cost model only; cached/measure run
//                       seeded micro-trials, see DESIGN.md §14)
//   --tuning-cache F    CSTFTUNE cache file consulted/refreshed by
//                       --tune cached|measure
//   --deterministic     force atomic-free scatter: repeated runs with the
//                       same seed produce bit-identical factors
//   --seed N            RNG seed for the factor initialization (default 42)
//   --output PREFIX     write factors to PREFIX.mode<k>.txt and lambda to
//                       PREFIX.lambda.txt
//   --checkpoint PATH   save the model as a binary checkpoint (loadable via
//                       cstf::load_ktensor)
//   --checkpoint-every N  write a crash-consistent CSTFCKPT training
//                       checkpoint every N outer iterations (requires
//                       --checkpoint-path)
//   --checkpoint-path P where the periodic training checkpoint goes
//   --resume PATH       resume training from a CSTFCKPT checkpoint; with the
//                       same options the resumed run is bit-identical to an
//                       uninterrupted one (pair with --deterministic)
//   --save PATH         save a versioned, checksummed .cstf serving model
//                       (factors + constraint + provenance; loadable by
//                       cstf_serve and cstf::serve::load_model)
//   --model-name NAME   store key recorded in the .cstf model (default: the
//                       dataset name or input path)
//   --profile           print a per-kernel summary (spans, launches, flops,
//                       bytes, roofline-modeled and measured wall time)
//   --trace FILE        write a chrome://tracing JSON timeline of every
//                       kernel launch and phase (open in chrome://tracing or
//                       https://ui.perfetto.dev)
//   --metrics-out FILE  dump the process metrics registry (kernel totals,
//                       cache hit/miss counters, op-duration histograms) in
//                       Prometheus text format after the run
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "cstf/framework.hpp"
#include "metrics/exposition.hpp"
#include "metrics/registry.hpp"
#include "serve/model_io.hpp"
#include "simgpu/trace.hpp"
#include "tensor/datasets.hpp"
#include "tensor/io.hpp"

namespace {

using namespace cstf;

[[noreturn]] void usage(const char* message) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr,
               "usage: cstf_cli (--input FILE.tns | --dataset NAME) [--rank N]"
               " [--iters N]\n"
               "                [--tol X] [--scheme cuadmm|admm|mu|hals|als]\n"
               "                [--constraint nonneg|none|l1:W|l1nn:W|"
               "box:LO,HI|simplex|smooth:W]\n"
               "                [--device a100|h100|xeon]"
               " [--scatter auto|atomic|privatized|sorted]\n"
               "                [--mttkrp auto|flat|dimtree]"
               " [--dimtree-budget BYTES]\n"
               "                [--tune model|cached|measure]"
               " [--tuning-cache FILE]\n"
               "                [--deterministic] [--seed N]"
               " [--output PREFIX]\n"
               "                [--checkpoint-every N --checkpoint-path P]"
               " [--resume P]\n"
               "                [--profile] [--trace FILE]"
               " [--metrics-out FILE]\n");
  std::exit(2);
}

Proximity parse_constraint(const std::string& spec) {
  if (spec == "nonneg") return Proximity::non_negative();
  if (spec == "none") return Proximity::identity();
  if (spec == "simplex") return Proximity::simplex();
  if (spec.rfind("l1nn:", 0) == 0) {
    return Proximity::l1_non_negative(std::atof(spec.c_str() + 5));
  }
  if (spec.rfind("l1:", 0) == 0) {
    return Proximity::l1(std::atof(spec.c_str() + 3));
  }
  if (spec.rfind("smooth:", 0) == 0) {
    return Proximity::smooth(std::atof(spec.c_str() + 7));
  }
  if (spec.rfind("box:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const auto comma = rest.find(',');
    if (comma == std::string::npos) usage("box constraint needs box:LO,HI");
    return Proximity::box(std::atof(rest.substr(0, comma).c_str()),
                          std::atof(rest.substr(comma + 1).c_str()));
  }
  usage(("unknown constraint: " + spec).c_str());
}

UpdateScheme parse_scheme(const std::string& spec) {
  if (spec == "cuadmm") return UpdateScheme::kCuAdmm;
  if (spec == "admm") return UpdateScheme::kAdmm;
  if (spec == "mu") return UpdateScheme::kMu;
  if (spec == "hals") return UpdateScheme::kHals;
  if (spec == "als") return UpdateScheme::kAls;
  if (spec == "bpp") return UpdateScheme::kBpp;
  usage(("unknown scheme: " + spec).c_str());
}

simgpu::DeviceSpec parse_device(const std::string& spec) {
  if (spec == "a100") return simgpu::a100();
  if (spec == "h100") return simgpu::h100();
  if (spec == "xeon") return simgpu::xeon_8367hc();
  usage(("unknown device: " + spec).c_str());
}

void write_matrix(const Matrix& m, const std::string& path) {
  std::ofstream out(path);
  CSTF_CHECK_MSG(out.good(), "cannot write " << path);
  for (index_t i = 0; i < m.rows(); ++i) {
    for (index_t j = 0; j < m.cols(); ++j) {
      out << m(i, j) << (j + 1 < m.cols() ? '\t' : '\n');
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, dataset, output, checkpoint, trace_path;
  std::string save_path, model_name, metrics_path;
  bool profile = false;
  FrameworkOptions options;
  options.rank = 16;
  options.max_iterations = 20;
  options.fit_tolerance = 1e-4;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--input") input = value();
    else if (arg == "--dataset") dataset = value();
    else if (arg == "--rank") options.rank = std::atoll(value().c_str());
    else if (arg == "--iters") options.max_iterations = std::atoi(value().c_str());
    else if (arg == "--tol") options.fit_tolerance = std::atof(value().c_str());
    else if (arg == "--scheme") options.scheme = parse_scheme(value());
    else if (arg == "--constraint") options.prox = parse_constraint(value());
    else if (arg == "--device") options.device = parse_device(value());
    else if (arg == "--scatter") {
      const std::string spec = value();
      if (!parse_scatter_strategy(spec, &options.scatter.strategy)) {
        usage(("unknown scatter strategy: " + spec).c_str());
      }
    }
    else if (arg == "--mttkrp") {
      const std::string spec = value();
      if (!parse_mttkrp_mode(spec, &options.mttkrp_mode)) {
        usage(("unknown mttkrp mode: " + spec).c_str());
      }
    }
    else if (arg == "--dimtree-budget") {
      const std::string spec = value();
      char* end = nullptr;
      const double bytes = std::strtod(spec.c_str(), &end);
      if (end == spec.c_str() || *end != '\0' || !(bytes > 0.0) ||
          !std::isfinite(bytes)) {
        usage(("--dimtree-budget must be a positive byte count, got: " + spec)
                  .c_str());
      }
      options.dimtree_budget_bytes = bytes;
    }
    else if (arg == "--tune") {
      const std::string spec = value();
      if (!autotune::parse_tuning_policy(spec, &options.tuning.policy)) {
        usage(("unknown tuning policy: " + spec).c_str());
      }
    }
    else if (arg == "--tuning-cache") options.tuning.cache_path = value();
    else if (arg == "--deterministic") options.scatter.deterministic = true;
    else if (arg == "--seed") options.seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--output") output = value();
    else if (arg == "--checkpoint") checkpoint = value();
    else if (arg == "--checkpoint-every") options.checkpoint_every = std::atoi(value().c_str());
    else if (arg == "--checkpoint-path") options.checkpoint_path = value();
    else if (arg == "--resume") options.resume_from = value();
    else if (arg == "--save") save_path = value();
    else if (arg == "--model-name") model_name = value();
    else if (arg == "--profile") profile = true;
    else if (arg == "--trace") trace_path = value();
    else if (arg.rfind("--trace=", 0) == 0) trace_path = arg.substr(8);
    else if (arg == "--metrics-out") metrics_path = value();
    else if (arg == "--help" || arg == "-h") usage(nullptr);
    else usage(("unknown argument: " + arg).c_str());
  }
  if (input.empty() == dataset.empty()) {
    usage("exactly one of --input / --dataset is required");
  }
  if (options.checkpoint_every < 0) {
    usage("--checkpoint-every must be >= 0 (0 disables checkpointing)");
  }
  if (options.checkpoint_every > 0 && options.checkpoint_path.empty()) {
    usage("--checkpoint-every requires --checkpoint-path");
  }

  try {
    const SparseTensor tensor =
        input.empty() ? make_analog(dataset).tensor : read_tns_file(input);
    std::printf("tensor: %s\n", tensor.shape_string().c_str());
    std::printf("constraint: %s, rank %lld, device %s, scatter %s%s\n",
                options.prox.name().c_str(),
                static_cast<long long>(options.rank),
                options.device.name.c_str(),
                scatter_strategy_name(options.scatter.strategy),
                options.scatter.deterministic ? " (deterministic)" : "");

    if (!options.resume_from.empty()) {
      std::printf("resuming from checkpoint %s\n", options.resume_from.c_str());
    }
    if (options.checkpoint_every > 0) {
      std::printf("checkpointing to %s every %d iteration(s)\n",
                  options.checkpoint_path.c_str(), options.checkpoint_every);
    }

    CstfFramework framework(tensor, options);
    std::printf("mttkrp engine: %s%s\n",
                mttkrp_mode_name(framework.resolved_mttkrp_mode()),
                options.mttkrp_mode == MttkrpMode::kAuto
                    ? " (auto-resolved)" : "");
    const autotune::TuningOutcome& tuned = framework.tuning();
    if (tuned.applied) {
      std::printf("autotune (%s): %s, chunks/worker %u, scatter",
                  autotune::tuning_policy_name(options.tuning.policy),
                  tuned.cache_hit ? "cache hit" : "micro-trials",
                  tuned.record.chunks_per_worker);
      for (ScatterStrategy s : tuned.record.scatter_per_mode) {
        std::printf(" %s", scatter_strategy_name(s));
      }
      std::printf("\n");
    }
    simgpu::Tracer tracer;
    if (profile || !trace_path.empty()) {
      framework.device().set_tracer(&tracer);
    }
    const AuntfResult result = framework.run();
    std::printf("\n%d iteration(s), final fit %.5f%s\n", result.iterations,
                result.final_fit, result.converged ? " (converged)" : "");
    std::printf("modeled %s execution time: %.4f s\n",
                options.device.name.c_str(),
                framework.device().modeled_time_s());
    std::printf("phase breakdown (host wall time):\n");
    for (const auto& [phase, sec] : framework.driver().phases().totals()) {
      std::printf("  %-10s %9.4f s\n", phase.c_str(), sec);
    }
    if (profile) {
      std::printf("\nper-kernel profile (modeled %s, measured host):\n%s",
                  options.device.name.c_str(),
                  tracer.summary_table().c_str());
    }
    if (!trace_path.empty()) {
      tracer.write_chrome_trace(trace_path);
      std::printf("trace written to %s\n", trace_path.c_str());
    }

    if (!output.empty()) {
      const KTensor model = framework.ktensor();
      for (int m = 0; m < model.num_modes(); ++m) {
        write_matrix(model.factors[static_cast<std::size_t>(m)],
                     output + ".mode" + std::to_string(m) + ".txt");
      }
      std::ofstream lam(output + ".lambda.txt");
      for (real_t l : model.lambda) lam << l << '\n';
      std::printf("factors written to %s.mode*.txt\n", output.c_str());
    }
    if (!checkpoint.empty()) {
      save_ktensor(framework.ktensor(), checkpoint);
      std::printf("checkpoint written to %s\n", checkpoint.c_str());
    }
    if (!save_path.empty()) {
      serve::SavedModel saved;
      saved.model = framework.ktensor();
      saved.meta.name =
          model_name.empty() ? (dataset.empty() ? input : dataset)
                             : model_name;
      saved.meta.set_constraint(options.prox);
      saved.meta.final_fit = result.final_fit;
      saved.meta.options_digest = serve::digest_options(options);
      saved.meta.seed = options.seed;
      saved.meta.iterations = static_cast<std::uint32_t>(result.iterations);
      serve::save_model(saved, save_path);
      std::printf("serving model '%s' written to %s\n",
                  saved.meta.name.c_str(), save_path.c_str());
    }
    if (!metrics_path.empty()) {
      metrics::write_text_atomic(
          metrics_path, metrics::to_prometheus(
                            metrics::MetricsRegistry::global().snapshot()));
      std::printf("metrics written to %s\n", metrics_path.c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "cstf_cli: %s\n", e.what());
    return 1;
  }
  return 0;
}
