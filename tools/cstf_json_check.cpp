// cstf_json_check — validates bench telemetry JSON files.
//
//   cstf_json_check BENCH_a.json [BENCH_b.json ...]
//
// Each file must parse as JSON (simgpu::json::parse, the same strict parser
// the tests use) and follow the bench schema from bench/bench_util.hpp:
// a "bench" string, a "records" array, and — per record — dataset/machine
// strings, a numeric rank, the four-phase "phases" object, and a
// "total_modeled_s" that equals the sum of the per-phase modeled seconds.
// Exits nonzero (listing every problem) when any file fails, so
// scripts/run_benches.sh can gate on it.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "simgpu/trace.hpp"

namespace {

using cstf::simgpu::json::Value;

const char* const kPhases[] = {"GRAM", "MTTKRP", "UPDATE", "NORMALIZE"};

bool is_number(const Value* v) {
  return v != nullptr && v->type == Value::Type::kNumber;
}
bool is_string(const Value* v) {
  return v != nullptr && v->type == Value::Type::kString;
}

/// Appends schema problems for one parsed document to `errors`; returns the
/// number found.
int check_document(const Value& doc, std::string file, std::string* errors) {
  int bad = 0;
  auto fail = [&](const std::string& what) {
    *errors += "  " + file + ": " + what + "\n";
    ++bad;
  };
  if (doc.type != Value::Type::kObject) {
    fail("top level is not an object");
    return bad;
  }
  if (!is_string(doc.find("bench"))) fail("missing \"bench\" string");
  const Value* records = doc.find("records");
  if (records == nullptr || records->type != Value::Type::kArray) {
    fail("missing \"records\" array");
    return bad;
  }
  for (std::size_t i = 0; i < records->array.size(); ++i) {
    const Value& r = records->array[i];
    const std::string where = "record " + std::to_string(i);
    if (r.type != Value::Type::kObject) {
      fail(where + " is not an object");
      continue;
    }
    if (!is_string(r.find("dataset"))) fail(where + ": missing dataset");
    if (!is_string(r.find("machine"))) fail(where + ": missing machine");
    if (!is_number(r.find("rank"))) fail(where + ": missing rank");
    const Value* phases = r.find("phases");
    const Value* total = r.find("total_modeled_s");
    if (phases == nullptr || phases->type != Value::Type::kObject) {
      fail(where + ": missing phases object");
      continue;
    }
    double phase_sum = 0.0;
    for (const char* name : kPhases) {
      const Value* p = phases->find(name);
      if (p == nullptr || !is_number(p->find("modeled_s")) ||
          !is_number(p->find("wall_s"))) {
        fail(where + ": phase " + name + " missing modeled_s/wall_s");
        continue;
      }
      phase_sum += p->find("modeled_s")->num;
    }
    if (!is_number(total)) {
      fail(where + ": missing total_modeled_s");
    } else {
      // The reported total must be exactly the sum of the phases (up to
      // formatting round-trip noise).
      const double tol = 1e-12 + 1e-9 * std::abs(phase_sum);
      if (std::abs(total->num - phase_sum) > tol) {
        std::ostringstream os;
        os << where << ": total_modeled_s " << total->num
           << " != phase sum " << phase_sum;
        fail(os.str());
      }
    }
    const Value* kernels = r.find("kernels");
    if (kernels == nullptr || kernels->type != Value::Type::kArray) {
      fail(where + ": missing kernels array");
      continue;
    }
    for (std::size_t k = 0; k < kernels->array.size(); ++k) {
      const Value& row = kernels->array[k];
      if (!is_string(row.find("name")) || !is_number(row.find("flops")) ||
          !is_number(row.find("bytes")) || !is_number(row.find("modeled_s"))) {
        fail(where + ": kernel row " + std::to_string(k) + " malformed");
      }
    }
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: cstf_json_check FILE.json [FILE.json ...]\n");
    return 2;
  }
  int bad_files = 0;
  std::string errors;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in.good()) {
      errors += "  " + path + ": cannot open\n";
      ++bad_files;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      const Value doc = cstf::simgpu::json::parse(buf.str());
      if (check_document(doc, path, &errors) > 0) ++bad_files;
    } catch (const cstf::Error& e) {
      errors += "  " + path + ": " + e.what() + "\n";
      ++bad_files;
    }
  }
  if (bad_files > 0) {
    std::fprintf(stderr, "cstf_json_check: %d bad file(s):\n%s", bad_files,
                 errors.c_str());
    return 1;
  }
  std::printf("cstf_json_check: %d file(s) OK\n", argc - 1);
  return 0;
}
