# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_common[1]_include.cmake")
include("/root/repo/build-review/tests/test_parallel[1]_include.cmake")
include("/root/repo/build-review/tests/test_la[1]_include.cmake")
include("/root/repo/build-review/tests/test_simgpu[1]_include.cmake")
include("/root/repo/build-review/tests/test_tensor[1]_include.cmake")
include("/root/repo/build-review/tests/test_formats[1]_include.cmake")
include("/root/repo/build-review/tests/test_mttkrp[1]_include.cmake")
include("/root/repo/build-review/tests/test_updates[1]_include.cmake")
include("/root/repo/build-review/tests/test_cstf[1]_include.cmake")
include("/root/repo/build-review/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build-review/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build-review/tests/test_metrics[1]_include.cmake")
include("/root/repo/build-review/tests/test_robustness[1]_include.cmake")
include("/root/repo/build-review/tests/test_multigpu[1]_include.cmake")
include("/root/repo/build-review/tests/test_streaming[1]_include.cmake")
include("/root/repo/build-review/tests/test_gcp[1]_include.cmake")
include("/root/repo/build-review/tests/test_trace[1]_include.cmake")
include("/root/repo/build-review/tests/test_property_sweeps[1]_include.cmake")
