file(REMOVE_RECURSE
  "CMakeFiles/test_cstf.dir/test_cstf.cpp.o"
  "CMakeFiles/test_cstf.dir/test_cstf.cpp.o.d"
  "test_cstf"
  "test_cstf.pdb"
  "test_cstf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cstf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
