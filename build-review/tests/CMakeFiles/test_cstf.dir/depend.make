# Empty dependencies file for test_cstf.
# This may be replaced when dependencies are built.
