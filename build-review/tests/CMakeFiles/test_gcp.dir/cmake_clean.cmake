file(REMOVE_RECURSE
  "CMakeFiles/test_gcp.dir/test_gcp.cpp.o"
  "CMakeFiles/test_gcp.dir/test_gcp.cpp.o.d"
  "test_gcp"
  "test_gcp.pdb"
  "test_gcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
