# Empty compiler generated dependencies file for test_gcp.
# This may be replaced when dependencies are built.
