# Empty compiler generated dependencies file for test_simgpu.
# This may be replaced when dependencies are built.
