file(REMOVE_RECURSE
  "CMakeFiles/test_simgpu.dir/test_simgpu.cpp.o"
  "CMakeFiles/test_simgpu.dir/test_simgpu.cpp.o.d"
  "test_simgpu"
  "test_simgpu.pdb"
  "test_simgpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
