file(REMOVE_RECURSE
  "CMakeFiles/test_mttkrp.dir/test_mttkrp.cpp.o"
  "CMakeFiles/test_mttkrp.dir/test_mttkrp.cpp.o.d"
  "test_mttkrp"
  "test_mttkrp.pdb"
  "test_mttkrp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mttkrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
