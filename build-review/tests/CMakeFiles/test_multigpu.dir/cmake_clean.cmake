file(REMOVE_RECURSE
  "CMakeFiles/test_multigpu.dir/test_multigpu.cpp.o"
  "CMakeFiles/test_multigpu.dir/test_multigpu.cpp.o.d"
  "test_multigpu"
  "test_multigpu.pdb"
  "test_multigpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
