# Empty dependencies file for test_multigpu.
# This may be replaced when dependencies are built.
