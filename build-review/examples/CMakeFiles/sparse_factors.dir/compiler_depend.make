# Empty compiler generated dependencies file for sparse_factors.
# This may be replaced when dependencies are built.
