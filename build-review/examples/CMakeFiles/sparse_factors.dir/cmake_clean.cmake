file(REMOVE_RECURSE
  "CMakeFiles/sparse_factors.dir/sparse_factors.cpp.o"
  "CMakeFiles/sparse_factors.dir/sparse_factors.cpp.o.d"
  "sparse_factors"
  "sparse_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
