# Empty compiler generated dependencies file for network_anomaly.
# This may be replaced when dependencies are built.
