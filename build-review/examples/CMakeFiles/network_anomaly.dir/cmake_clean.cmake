file(REMOVE_RECURSE
  "CMakeFiles/network_anomaly.dir/network_anomaly.cpp.o"
  "CMakeFiles/network_anomaly.dir/network_anomaly.cpp.o.d"
  "network_anomaly"
  "network_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
