file(REMOVE_RECURSE
  "CMakeFiles/count_data.dir/count_data.cpp.o"
  "CMakeFiles/count_data.dir/count_data.cpp.o.d"
  "count_data"
  "count_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/count_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
