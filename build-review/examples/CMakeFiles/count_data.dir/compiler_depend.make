# Empty compiler generated dependencies file for count_data.
# This may be replaced when dependencies are built.
