file(REMOVE_RECURSE
  "CMakeFiles/bench_host_wallclock.dir/bench_host_wallclock.cpp.o"
  "CMakeFiles/bench_host_wallclock.dir/bench_host_wallclock.cpp.o.d"
  "bench_host_wallclock"
  "bench_host_wallclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_wallclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
