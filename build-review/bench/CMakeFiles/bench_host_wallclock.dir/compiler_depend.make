# Empty compiler generated dependencies file for bench_host_wallclock.
# This may be replaced when dependencies are built.
