# Empty dependencies file for bench_multigpu_scaling.
# This may be replaced when dependencies are built.
