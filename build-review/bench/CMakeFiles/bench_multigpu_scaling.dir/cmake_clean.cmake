file(REMOVE_RECURSE
  "CMakeFiles/bench_multigpu_scaling.dir/bench_multigpu_scaling.cpp.o"
  "CMakeFiles/bench_multigpu_scaling.dir/bench_multigpu_scaling.cpp.o.d"
  "bench_multigpu_scaling"
  "bench_multigpu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multigpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
