file(REMOVE_RECURSE
  "CMakeFiles/bench_eq345_intensity.dir/bench_eq345_intensity.cpp.o"
  "CMakeFiles/bench_eq345_intensity.dir/bench_eq345_intensity.cpp.o.d"
  "bench_eq345_intensity"
  "bench_eq345_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq345_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
