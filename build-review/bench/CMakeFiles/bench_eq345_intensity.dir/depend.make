# Empty dependencies file for bench_eq345_intensity.
# This may be replaced when dependencies are built.
