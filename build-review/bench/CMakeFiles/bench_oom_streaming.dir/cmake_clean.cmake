file(REMOVE_RECURSE
  "CMakeFiles/bench_oom_streaming.dir/bench_oom_streaming.cpp.o"
  "CMakeFiles/bench_oom_streaming.dir/bench_oom_streaming.cpp.o.d"
  "bench_oom_streaming"
  "bench_oom_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oom_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
