# Empty compiler generated dependencies file for bench_oom_streaming.
# This may be replaced when dependencies are built.
