file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_scatter_h100.dir/bench_fig78_scatter.cpp.o"
  "CMakeFiles/bench_fig8_scatter_h100.dir/bench_fig78_scatter.cpp.o.d"
  "bench_fig8_scatter_h100"
  "bench_fig8_scatter_h100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_scatter_h100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
