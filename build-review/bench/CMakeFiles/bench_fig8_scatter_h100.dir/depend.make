# Empty dependencies file for bench_fig8_scatter_h100.
# This may be replaced when dependencies are built.
