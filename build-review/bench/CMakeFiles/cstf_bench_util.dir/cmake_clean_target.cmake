file(REMOVE_RECURSE
  "libcstf_bench_util.a"
)
