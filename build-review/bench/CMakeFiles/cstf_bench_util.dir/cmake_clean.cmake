file(REMOVE_RECURSE
  "CMakeFiles/cstf_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/cstf_bench_util.dir/bench_util.cpp.o.d"
  "libcstf_bench_util.a"
  "libcstf_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
