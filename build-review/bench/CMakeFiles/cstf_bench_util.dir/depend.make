# Empty dependencies file for cstf_bench_util.
# This may be replaced when dependencies are built.
