file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mu_hals_h100.dir/bench_fig910_mu_hals.cpp.o"
  "CMakeFiles/bench_fig10_mu_hals_h100.dir/bench_fig910_mu_hals.cpp.o.d"
  "bench_fig10_mu_hals_h100"
  "bench_fig10_mu_hals_h100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mu_hals_h100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
