# Empty compiler generated dependencies file for bench_fig10_mu_hals_h100.
# This may be replaced when dependencies are built.
