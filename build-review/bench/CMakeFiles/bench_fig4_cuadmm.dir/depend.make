# Empty dependencies file for bench_fig4_cuadmm.
# This may be replaced when dependencies are built.
