file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cuadmm.dir/bench_fig4_cuadmm.cpp.o"
  "CMakeFiles/bench_fig4_cuadmm.dir/bench_fig4_cuadmm.cpp.o.d"
  "bench_fig4_cuadmm"
  "bench_fig4_cuadmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cuadmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
