# Empty compiler generated dependencies file for bench_fig9_mu_hals_a100.
# This may be replaced when dependencies are built.
