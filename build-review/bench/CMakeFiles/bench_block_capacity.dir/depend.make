# Empty dependencies file for bench_block_capacity.
# This may be replaced when dependencies are built.
