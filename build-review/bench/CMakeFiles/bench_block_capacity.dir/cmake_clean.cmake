file(REMOVE_RECURSE
  "CMakeFiles/bench_block_capacity.dir/bench_block_capacity.cpp.o"
  "CMakeFiles/bench_block_capacity.dir/bench_block_capacity.cpp.o.d"
  "bench_block_capacity"
  "bench_block_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_block_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
