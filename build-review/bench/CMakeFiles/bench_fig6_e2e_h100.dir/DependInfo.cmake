
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig56_e2e.cpp" "bench/CMakeFiles/bench_fig6_e2e_h100.dir/bench_fig56_e2e.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_e2e_h100.dir/bench_fig56_e2e.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/bench/CMakeFiles/cstf_bench_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baselines/CMakeFiles/cstf_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cstf/CMakeFiles/cstf_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/updates/CMakeFiles/cstf_updates.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mttkrp/CMakeFiles/cstf_mttkrp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/formats/CMakeFiles/cstf_formats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tensor/CMakeFiles/cstf_tensor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/perfmodel/CMakeFiles/cstf_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/simgpu/CMakeFiles/cstf_simgpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/la/CMakeFiles/cstf_la.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parallel/CMakeFiles/cstf_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/cstf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
