# Empty dependencies file for bench_fig6_e2e_h100.
# This may be replaced when dependencies are built.
