file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_e2e_a100.dir/bench_fig56_e2e.cpp.o"
  "CMakeFiles/bench_fig5_e2e_a100.dir/bench_fig56_e2e.cpp.o.d"
  "bench_fig5_e2e_a100"
  "bench_fig5_e2e_a100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_e2e_a100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
