# Empty dependencies file for bench_fig5_e2e_a100.
# This may be replaced when dependencies are built.
