# Empty compiler generated dependencies file for bench_constraint_overhead.
# This may be replaced when dependencies are built.
