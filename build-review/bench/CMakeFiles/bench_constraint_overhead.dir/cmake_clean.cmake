file(REMOVE_RECURSE
  "CMakeFiles/bench_constraint_overhead.dir/bench_constraint_overhead.cpp.o"
  "CMakeFiles/bench_constraint_overhead.dir/bench_constraint_overhead.cpp.o.d"
  "bench_constraint_overhead"
  "bench_constraint_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_constraint_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
