# Empty dependencies file for bench_fig7_scatter_a100.
# This may be replaced when dependencies are built.
