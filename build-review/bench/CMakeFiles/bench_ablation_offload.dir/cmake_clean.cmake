file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_offload.dir/bench_ablation_offload.cpp.o"
  "CMakeFiles/bench_ablation_offload.dir/bench_ablation_offload.cpp.o.d"
  "bench_ablation_offload"
  "bench_ablation_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
