# Empty compiler generated dependencies file for bench_ablation_offload.
# This may be replaced when dependencies are built.
