file(REMOVE_RECURSE
  "CMakeFiles/bench_rank_sweep.dir/bench_rank_sweep.cpp.o"
  "CMakeFiles/bench_rank_sweep.dir/bench_rank_sweep.cpp.o.d"
  "bench_rank_sweep"
  "bench_rank_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rank_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
