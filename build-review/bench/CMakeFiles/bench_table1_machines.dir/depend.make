# Empty dependencies file for bench_table1_machines.
# This may be replaced when dependencies are built.
