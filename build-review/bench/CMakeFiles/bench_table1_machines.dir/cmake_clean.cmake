file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_machines.dir/bench_table1_machines.cpp.o"
  "CMakeFiles/bench_table1_machines.dir/bench_table1_machines.cpp.o.d"
  "bench_table1_machines"
  "bench_table1_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
