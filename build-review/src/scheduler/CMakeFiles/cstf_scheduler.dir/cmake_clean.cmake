file(REMOVE_RECURSE
  "CMakeFiles/cstf_scheduler.dir/placement.cpp.o"
  "CMakeFiles/cstf_scheduler.dir/placement.cpp.o.d"
  "libcstf_scheduler.a"
  "libcstf_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
