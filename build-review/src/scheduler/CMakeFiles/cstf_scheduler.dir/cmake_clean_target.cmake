file(REMOVE_RECURSE
  "libcstf_scheduler.a"
)
