# Empty compiler generated dependencies file for cstf_scheduler.
# This may be replaced when dependencies are built.
