
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simgpu/cost_model.cpp" "src/simgpu/CMakeFiles/cstf_simgpu.dir/cost_model.cpp.o" "gcc" "src/simgpu/CMakeFiles/cstf_simgpu.dir/cost_model.cpp.o.d"
  "/root/repo/src/simgpu/dblas.cpp" "src/simgpu/CMakeFiles/cstf_simgpu.dir/dblas.cpp.o" "gcc" "src/simgpu/CMakeFiles/cstf_simgpu.dir/dblas.cpp.o.d"
  "/root/repo/src/simgpu/device.cpp" "src/simgpu/CMakeFiles/cstf_simgpu.dir/device.cpp.o" "gcc" "src/simgpu/CMakeFiles/cstf_simgpu.dir/device.cpp.o.d"
  "/root/repo/src/simgpu/device_spec.cpp" "src/simgpu/CMakeFiles/cstf_simgpu.dir/device_spec.cpp.o" "gcc" "src/simgpu/CMakeFiles/cstf_simgpu.dir/device_spec.cpp.o.d"
  "/root/repo/src/simgpu/trace.cpp" "src/simgpu/CMakeFiles/cstf_simgpu.dir/trace.cpp.o" "gcc" "src/simgpu/CMakeFiles/cstf_simgpu.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/la/CMakeFiles/cstf_la.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parallel/CMakeFiles/cstf_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/cstf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
