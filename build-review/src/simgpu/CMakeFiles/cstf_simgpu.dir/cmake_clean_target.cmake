file(REMOVE_RECURSE
  "libcstf_simgpu.a"
)
