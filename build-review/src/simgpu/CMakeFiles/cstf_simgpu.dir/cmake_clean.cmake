file(REMOVE_RECURSE
  "CMakeFiles/cstf_simgpu.dir/cost_model.cpp.o"
  "CMakeFiles/cstf_simgpu.dir/cost_model.cpp.o.d"
  "CMakeFiles/cstf_simgpu.dir/dblas.cpp.o"
  "CMakeFiles/cstf_simgpu.dir/dblas.cpp.o.d"
  "CMakeFiles/cstf_simgpu.dir/device.cpp.o"
  "CMakeFiles/cstf_simgpu.dir/device.cpp.o.d"
  "CMakeFiles/cstf_simgpu.dir/device_spec.cpp.o"
  "CMakeFiles/cstf_simgpu.dir/device_spec.cpp.o.d"
  "CMakeFiles/cstf_simgpu.dir/trace.cpp.o"
  "CMakeFiles/cstf_simgpu.dir/trace.cpp.o.d"
  "libcstf_simgpu.a"
  "libcstf_simgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
