# Empty dependencies file for cstf_simgpu.
# This may be replaced when dependencies are built.
