# Empty dependencies file for cstf_multigpu.
# This may be replaced when dependencies are built.
