file(REMOVE_RECURSE
  "libcstf_multigpu.a"
)
