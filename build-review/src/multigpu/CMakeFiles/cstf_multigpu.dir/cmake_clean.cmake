file(REMOVE_RECURSE
  "CMakeFiles/cstf_multigpu.dir/multi_gpu.cpp.o"
  "CMakeFiles/cstf_multigpu.dir/multi_gpu.cpp.o.d"
  "libcstf_multigpu.a"
  "libcstf_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
