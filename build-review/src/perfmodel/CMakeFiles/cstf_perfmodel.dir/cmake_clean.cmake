file(REMOVE_RECURSE
  "CMakeFiles/cstf_perfmodel.dir/admm_model.cpp.o"
  "CMakeFiles/cstf_perfmodel.dir/admm_model.cpp.o.d"
  "libcstf_perfmodel.a"
  "libcstf_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
