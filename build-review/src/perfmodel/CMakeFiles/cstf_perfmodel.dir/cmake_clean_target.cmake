file(REMOVE_RECURSE
  "libcstf_perfmodel.a"
)
