# Empty dependencies file for cstf_perfmodel.
# This may be replaced when dependencies are built.
