file(REMOVE_RECURSE
  "CMakeFiles/cstf_common.dir/env.cpp.o"
  "CMakeFiles/cstf_common.dir/env.cpp.o.d"
  "CMakeFiles/cstf_common.dir/log.cpp.o"
  "CMakeFiles/cstf_common.dir/log.cpp.o.d"
  "CMakeFiles/cstf_common.dir/radix_sort.cpp.o"
  "CMakeFiles/cstf_common.dir/radix_sort.cpp.o.d"
  "CMakeFiles/cstf_common.dir/random.cpp.o"
  "CMakeFiles/cstf_common.dir/random.cpp.o.d"
  "CMakeFiles/cstf_common.dir/timer.cpp.o"
  "CMakeFiles/cstf_common.dir/timer.cpp.o.d"
  "libcstf_common.a"
  "libcstf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
