
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/env.cpp" "src/common/CMakeFiles/cstf_common.dir/env.cpp.o" "gcc" "src/common/CMakeFiles/cstf_common.dir/env.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/common/CMakeFiles/cstf_common.dir/log.cpp.o" "gcc" "src/common/CMakeFiles/cstf_common.dir/log.cpp.o.d"
  "/root/repo/src/common/radix_sort.cpp" "src/common/CMakeFiles/cstf_common.dir/radix_sort.cpp.o" "gcc" "src/common/CMakeFiles/cstf_common.dir/radix_sort.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/common/CMakeFiles/cstf_common.dir/random.cpp.o" "gcc" "src/common/CMakeFiles/cstf_common.dir/random.cpp.o.d"
  "/root/repo/src/common/timer.cpp" "src/common/CMakeFiles/cstf_common.dir/timer.cpp.o" "gcc" "src/common/CMakeFiles/cstf_common.dir/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
