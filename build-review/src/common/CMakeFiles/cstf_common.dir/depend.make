# Empty dependencies file for cstf_common.
# This may be replaced when dependencies are built.
