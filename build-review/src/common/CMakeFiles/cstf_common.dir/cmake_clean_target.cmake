file(REMOVE_RECURSE
  "libcstf_common.a"
)
