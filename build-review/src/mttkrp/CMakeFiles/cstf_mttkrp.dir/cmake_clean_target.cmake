file(REMOVE_RECURSE
  "libcstf_mttkrp.a"
)
