file(REMOVE_RECURSE
  "CMakeFiles/cstf_mttkrp.dir/alto_mttkrp.cpp.o"
  "CMakeFiles/cstf_mttkrp.dir/alto_mttkrp.cpp.o.d"
  "CMakeFiles/cstf_mttkrp.dir/blco_mttkrp.cpp.o"
  "CMakeFiles/cstf_mttkrp.dir/blco_mttkrp.cpp.o.d"
  "CMakeFiles/cstf_mttkrp.dir/coo_mttkrp.cpp.o"
  "CMakeFiles/cstf_mttkrp.dir/coo_mttkrp.cpp.o.d"
  "CMakeFiles/cstf_mttkrp.dir/csf_mttkrp.cpp.o"
  "CMakeFiles/cstf_mttkrp.dir/csf_mttkrp.cpp.o.d"
  "libcstf_mttkrp.a"
  "libcstf_mttkrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_mttkrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
