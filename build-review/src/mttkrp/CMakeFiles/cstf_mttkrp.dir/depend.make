# Empty dependencies file for cstf_mttkrp.
# This may be replaced when dependencies are built.
