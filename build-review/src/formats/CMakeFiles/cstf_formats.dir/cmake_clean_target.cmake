file(REMOVE_RECURSE
  "libcstf_formats.a"
)
