file(REMOVE_RECURSE
  "CMakeFiles/cstf_formats.dir/alto.cpp.o"
  "CMakeFiles/cstf_formats.dir/alto.cpp.o.d"
  "CMakeFiles/cstf_formats.dir/bitpack.cpp.o"
  "CMakeFiles/cstf_formats.dir/bitpack.cpp.o.d"
  "CMakeFiles/cstf_formats.dir/blco.cpp.o"
  "CMakeFiles/cstf_formats.dir/blco.cpp.o.d"
  "CMakeFiles/cstf_formats.dir/csf.cpp.o"
  "CMakeFiles/cstf_formats.dir/csf.cpp.o.d"
  "CMakeFiles/cstf_formats.dir/linearize.cpp.o"
  "CMakeFiles/cstf_formats.dir/linearize.cpp.o.d"
  "libcstf_formats.a"
  "libcstf_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
