# Empty dependencies file for cstf_formats.
# This may be replaced when dependencies are built.
