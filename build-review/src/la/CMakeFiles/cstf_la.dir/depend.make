# Empty dependencies file for cstf_la.
# This may be replaced when dependencies are built.
