file(REMOVE_RECURSE
  "CMakeFiles/cstf_la.dir/blas.cpp.o"
  "CMakeFiles/cstf_la.dir/blas.cpp.o.d"
  "CMakeFiles/cstf_la.dir/cholesky.cpp.o"
  "CMakeFiles/cstf_la.dir/cholesky.cpp.o.d"
  "CMakeFiles/cstf_la.dir/elementwise.cpp.o"
  "CMakeFiles/cstf_la.dir/elementwise.cpp.o.d"
  "CMakeFiles/cstf_la.dir/matrix.cpp.o"
  "CMakeFiles/cstf_la.dir/matrix.cpp.o.d"
  "libcstf_la.a"
  "libcstf_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
