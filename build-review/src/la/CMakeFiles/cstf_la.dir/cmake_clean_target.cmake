file(REMOVE_RECURSE
  "libcstf_la.a"
)
