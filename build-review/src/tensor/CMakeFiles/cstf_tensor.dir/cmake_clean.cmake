file(REMOVE_RECURSE
  "CMakeFiles/cstf_tensor.dir/coo.cpp.o"
  "CMakeFiles/cstf_tensor.dir/coo.cpp.o.d"
  "CMakeFiles/cstf_tensor.dir/datasets.cpp.o"
  "CMakeFiles/cstf_tensor.dir/datasets.cpp.o.d"
  "CMakeFiles/cstf_tensor.dir/dense.cpp.o"
  "CMakeFiles/cstf_tensor.dir/dense.cpp.o.d"
  "CMakeFiles/cstf_tensor.dir/generate.cpp.o"
  "CMakeFiles/cstf_tensor.dir/generate.cpp.o.d"
  "CMakeFiles/cstf_tensor.dir/io.cpp.o"
  "CMakeFiles/cstf_tensor.dir/io.cpp.o.d"
  "libcstf_tensor.a"
  "libcstf_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
