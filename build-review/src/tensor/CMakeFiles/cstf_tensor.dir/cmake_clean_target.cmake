file(REMOVE_RECURSE
  "libcstf_tensor.a"
)
