
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/coo.cpp" "src/tensor/CMakeFiles/cstf_tensor.dir/coo.cpp.o" "gcc" "src/tensor/CMakeFiles/cstf_tensor.dir/coo.cpp.o.d"
  "/root/repo/src/tensor/datasets.cpp" "src/tensor/CMakeFiles/cstf_tensor.dir/datasets.cpp.o" "gcc" "src/tensor/CMakeFiles/cstf_tensor.dir/datasets.cpp.o.d"
  "/root/repo/src/tensor/dense.cpp" "src/tensor/CMakeFiles/cstf_tensor.dir/dense.cpp.o" "gcc" "src/tensor/CMakeFiles/cstf_tensor.dir/dense.cpp.o.d"
  "/root/repo/src/tensor/generate.cpp" "src/tensor/CMakeFiles/cstf_tensor.dir/generate.cpp.o" "gcc" "src/tensor/CMakeFiles/cstf_tensor.dir/generate.cpp.o.d"
  "/root/repo/src/tensor/io.cpp" "src/tensor/CMakeFiles/cstf_tensor.dir/io.cpp.o" "gcc" "src/tensor/CMakeFiles/cstf_tensor.dir/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/la/CMakeFiles/cstf_la.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parallel/CMakeFiles/cstf_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/cstf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
