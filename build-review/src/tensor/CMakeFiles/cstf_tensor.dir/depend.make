# Empty dependencies file for cstf_tensor.
# This may be replaced when dependencies are built.
