file(REMOVE_RECURSE
  "CMakeFiles/cstf_core.dir/auntf.cpp.o"
  "CMakeFiles/cstf_core.dir/auntf.cpp.o.d"
  "CMakeFiles/cstf_core.dir/backend.cpp.o"
  "CMakeFiles/cstf_core.dir/backend.cpp.o.d"
  "CMakeFiles/cstf_core.dir/framework.cpp.o"
  "CMakeFiles/cstf_core.dir/framework.cpp.o.d"
  "CMakeFiles/cstf_core.dir/ktensor.cpp.o"
  "CMakeFiles/cstf_core.dir/ktensor.cpp.o.d"
  "CMakeFiles/cstf_core.dir/metrics.cpp.o"
  "CMakeFiles/cstf_core.dir/metrics.cpp.o.d"
  "CMakeFiles/cstf_core.dir/sampled_fit.cpp.o"
  "CMakeFiles/cstf_core.dir/sampled_fit.cpp.o.d"
  "libcstf_core.a"
  "libcstf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
