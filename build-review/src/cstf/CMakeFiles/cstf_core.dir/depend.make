# Empty dependencies file for cstf_core.
# This may be replaced when dependencies are built.
