file(REMOVE_RECURSE
  "libcstf_core.a"
)
