
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cstf/auntf.cpp" "src/cstf/CMakeFiles/cstf_core.dir/auntf.cpp.o" "gcc" "src/cstf/CMakeFiles/cstf_core.dir/auntf.cpp.o.d"
  "/root/repo/src/cstf/backend.cpp" "src/cstf/CMakeFiles/cstf_core.dir/backend.cpp.o" "gcc" "src/cstf/CMakeFiles/cstf_core.dir/backend.cpp.o.d"
  "/root/repo/src/cstf/framework.cpp" "src/cstf/CMakeFiles/cstf_core.dir/framework.cpp.o" "gcc" "src/cstf/CMakeFiles/cstf_core.dir/framework.cpp.o.d"
  "/root/repo/src/cstf/ktensor.cpp" "src/cstf/CMakeFiles/cstf_core.dir/ktensor.cpp.o" "gcc" "src/cstf/CMakeFiles/cstf_core.dir/ktensor.cpp.o.d"
  "/root/repo/src/cstf/metrics.cpp" "src/cstf/CMakeFiles/cstf_core.dir/metrics.cpp.o" "gcc" "src/cstf/CMakeFiles/cstf_core.dir/metrics.cpp.o.d"
  "/root/repo/src/cstf/sampled_fit.cpp" "src/cstf/CMakeFiles/cstf_core.dir/sampled_fit.cpp.o" "gcc" "src/cstf/CMakeFiles/cstf_core.dir/sampled_fit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/updates/CMakeFiles/cstf_updates.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mttkrp/CMakeFiles/cstf_mttkrp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/formats/CMakeFiles/cstf_formats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tensor/CMakeFiles/cstf_tensor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/simgpu/CMakeFiles/cstf_simgpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/la/CMakeFiles/cstf_la.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parallel/CMakeFiles/cstf_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/cstf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
