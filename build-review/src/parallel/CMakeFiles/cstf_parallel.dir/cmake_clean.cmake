file(REMOVE_RECURSE
  "CMakeFiles/cstf_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/cstf_parallel.dir/thread_pool.cpp.o.d"
  "libcstf_parallel.a"
  "libcstf_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
