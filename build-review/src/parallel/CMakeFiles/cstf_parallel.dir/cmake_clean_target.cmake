file(REMOVE_RECURSE
  "libcstf_parallel.a"
)
