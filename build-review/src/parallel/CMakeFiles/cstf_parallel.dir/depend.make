# Empty dependencies file for cstf_parallel.
# This may be replaced when dependencies are built.
