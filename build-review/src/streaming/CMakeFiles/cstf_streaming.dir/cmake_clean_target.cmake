file(REMOVE_RECURSE
  "libcstf_streaming.a"
)
