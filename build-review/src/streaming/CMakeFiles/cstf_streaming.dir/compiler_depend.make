# Empty compiler generated dependencies file for cstf_streaming.
# This may be replaced when dependencies are built.
