file(REMOVE_RECURSE
  "CMakeFiles/cstf_streaming.dir/streaming_cstf.cpp.o"
  "CMakeFiles/cstf_streaming.dir/streaming_cstf.cpp.o.d"
  "libcstf_streaming.a"
  "libcstf_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
