file(REMOVE_RECURSE
  "libcstf_baselines.a"
)
