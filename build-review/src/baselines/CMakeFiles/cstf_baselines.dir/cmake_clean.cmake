file(REMOVE_RECURSE
  "CMakeFiles/cstf_baselines.dir/planc.cpp.o"
  "CMakeFiles/cstf_baselines.dir/planc.cpp.o.d"
  "CMakeFiles/cstf_baselines.dir/splatt.cpp.o"
  "CMakeFiles/cstf_baselines.dir/splatt.cpp.o.d"
  "libcstf_baselines.a"
  "libcstf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
