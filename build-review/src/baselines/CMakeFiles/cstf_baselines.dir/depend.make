# Empty dependencies file for cstf_baselines.
# This may be replaced when dependencies are built.
