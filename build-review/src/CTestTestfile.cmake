# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("parallel")
subdirs("la")
subdirs("simgpu")
subdirs("tensor")
subdirs("formats")
subdirs("mttkrp")
subdirs("updates")
subdirs("cstf")
subdirs("baselines")
subdirs("perfmodel")
subdirs("scheduler")
subdirs("multigpu")
subdirs("streaming")
subdirs("gcp")
