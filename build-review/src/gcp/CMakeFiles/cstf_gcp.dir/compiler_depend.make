# Empty compiler generated dependencies file for cstf_gcp.
# This may be replaced when dependencies are built.
