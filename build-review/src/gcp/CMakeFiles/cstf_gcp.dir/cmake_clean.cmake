file(REMOVE_RECURSE
  "CMakeFiles/cstf_gcp.dir/poisson_ntf.cpp.o"
  "CMakeFiles/cstf_gcp.dir/poisson_ntf.cpp.o.d"
  "libcstf_gcp.a"
  "libcstf_gcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_gcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
