file(REMOVE_RECURSE
  "libcstf_gcp.a"
)
