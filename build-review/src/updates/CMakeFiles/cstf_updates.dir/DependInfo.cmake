
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/updates/admm.cpp" "src/updates/CMakeFiles/cstf_updates.dir/admm.cpp.o" "gcc" "src/updates/CMakeFiles/cstf_updates.dir/admm.cpp.o.d"
  "/root/repo/src/updates/admm_kernels.cpp" "src/updates/CMakeFiles/cstf_updates.dir/admm_kernels.cpp.o" "gcc" "src/updates/CMakeFiles/cstf_updates.dir/admm_kernels.cpp.o.d"
  "/root/repo/src/updates/als.cpp" "src/updates/CMakeFiles/cstf_updates.dir/als.cpp.o" "gcc" "src/updates/CMakeFiles/cstf_updates.dir/als.cpp.o.d"
  "/root/repo/src/updates/block_admm.cpp" "src/updates/CMakeFiles/cstf_updates.dir/block_admm.cpp.o" "gcc" "src/updates/CMakeFiles/cstf_updates.dir/block_admm.cpp.o.d"
  "/root/repo/src/updates/bpp.cpp" "src/updates/CMakeFiles/cstf_updates.dir/bpp.cpp.o" "gcc" "src/updates/CMakeFiles/cstf_updates.dir/bpp.cpp.o.d"
  "/root/repo/src/updates/hals.cpp" "src/updates/CMakeFiles/cstf_updates.dir/hals.cpp.o" "gcc" "src/updates/CMakeFiles/cstf_updates.dir/hals.cpp.o.d"
  "/root/repo/src/updates/mu.cpp" "src/updates/CMakeFiles/cstf_updates.dir/mu.cpp.o" "gcc" "src/updates/CMakeFiles/cstf_updates.dir/mu.cpp.o.d"
  "/root/repo/src/updates/prox.cpp" "src/updates/CMakeFiles/cstf_updates.dir/prox.cpp.o" "gcc" "src/updates/CMakeFiles/cstf_updates.dir/prox.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/simgpu/CMakeFiles/cstf_simgpu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/la/CMakeFiles/cstf_la.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parallel/CMakeFiles/cstf_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/cstf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
