file(REMOVE_RECURSE
  "libcstf_updates.a"
)
