file(REMOVE_RECURSE
  "CMakeFiles/cstf_updates.dir/admm.cpp.o"
  "CMakeFiles/cstf_updates.dir/admm.cpp.o.d"
  "CMakeFiles/cstf_updates.dir/admm_kernels.cpp.o"
  "CMakeFiles/cstf_updates.dir/admm_kernels.cpp.o.d"
  "CMakeFiles/cstf_updates.dir/als.cpp.o"
  "CMakeFiles/cstf_updates.dir/als.cpp.o.d"
  "CMakeFiles/cstf_updates.dir/block_admm.cpp.o"
  "CMakeFiles/cstf_updates.dir/block_admm.cpp.o.d"
  "CMakeFiles/cstf_updates.dir/bpp.cpp.o"
  "CMakeFiles/cstf_updates.dir/bpp.cpp.o.d"
  "CMakeFiles/cstf_updates.dir/hals.cpp.o"
  "CMakeFiles/cstf_updates.dir/hals.cpp.o.d"
  "CMakeFiles/cstf_updates.dir/mu.cpp.o"
  "CMakeFiles/cstf_updates.dir/mu.cpp.o.d"
  "CMakeFiles/cstf_updates.dir/prox.cpp.o"
  "CMakeFiles/cstf_updates.dir/prox.cpp.o.d"
  "libcstf_updates.a"
  "libcstf_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
