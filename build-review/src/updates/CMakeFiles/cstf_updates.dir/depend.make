# Empty dependencies file for cstf_updates.
# This may be replaced when dependencies are built.
