# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke_analog "/root/repo/build-review/tools/cstf_cli" "--dataset" "Uber" "--rank" "4" "--iters" "3")
set_tests_properties(cli_smoke_analog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_bpp_l1 "/root/repo/build-review/tools/cstf_cli" "--dataset" "NIPS" "--rank" "4" "--iters" "2" "--scheme" "cuadmm" "--constraint" "l1nn:0.1" "--device" "h100")
set_tests_properties(cli_smoke_bpp_l1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_args "/root/repo/build-review/tools/cstf_cli" "--dataset" "NoSuchTensor")
set_tests_properties(cli_rejects_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile_trace_smoke "/root/repo/build-review/tools/cstf_cli" "--dataset" "Uber" "--rank" "4" "--iters" "2" "--profile" "--trace=cli_smoke_trace.json")
set_tests_properties(cli_profile_trace_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(info_smoke "/root/repo/build-review/tools/cstf_info" "--dataset" "Chicago")
set_tests_properties(info_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
