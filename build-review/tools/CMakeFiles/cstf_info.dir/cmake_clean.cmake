file(REMOVE_RECURSE
  "CMakeFiles/cstf_info.dir/cstf_info.cpp.o"
  "CMakeFiles/cstf_info.dir/cstf_info.cpp.o.d"
  "cstf_info"
  "cstf_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
