# Empty dependencies file for cstf_info.
# This may be replaced when dependencies are built.
