# Empty dependencies file for cstf_cli.
# This may be replaced when dependencies are built.
