file(REMOVE_RECURSE
  "CMakeFiles/cstf_cli.dir/cstf_cli.cpp.o"
  "CMakeFiles/cstf_cli.dir/cstf_cli.cpp.o.d"
  "cstf_cli"
  "cstf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
