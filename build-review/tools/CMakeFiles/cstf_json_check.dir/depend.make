# Empty dependencies file for cstf_json_check.
# This may be replaced when dependencies are built.
