file(REMOVE_RECURSE
  "CMakeFiles/cstf_json_check.dir/cstf_json_check.cpp.o"
  "CMakeFiles/cstf_json_check.dir/cstf_json_check.cpp.o.d"
  "cstf_json_check"
  "cstf_json_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cstf_json_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
