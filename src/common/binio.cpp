#include "common/binio.hpp"

#include <cstdio>

namespace cstf {

const char* model_io_status_name(ModelIoStatus status) {
  switch (status) {
    case ModelIoStatus::kOpenFailed: return "open-failed";
    case ModelIoStatus::kBadMagic: return "bad-magic";
    case ModelIoStatus::kBadVersion: return "bad-version";
    case ModelIoStatus::kTruncated: return "truncated";
    case ModelIoStatus::kCorruptHeader: return "corrupt-header";
    case ModelIoStatus::kChecksumMismatch: return "checksum-mismatch";
    case ModelIoStatus::kInvalidModel: return "invalid-model";
    case ModelIoStatus::kWriteFailed: return "write-failed";
    case ModelIoStatus::kOptionsMismatch: return "options-mismatch";
  }
  return "?";
}

void throw_model_io(ModelIoStatus status, const std::string& what) {
  throw ModelIoError(status, "model io: " + what + " [" +
                                 model_io_status_name(status) + "]");
}

std::uint64_t fnv1a64(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void commit_tmp_file(const std::string& tmp, const std::string& path) {
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw_model_io(ModelIoStatus::kWriteFailed, "rename " + tmp + " -> " + path);
  }
}

}  // namespace cstf
