// Environment-variable helpers used by benches to scale workloads.
#pragma once

#include <cstdint>
#include <string>

namespace cstf {

/// Reads an integer environment variable; returns `fallback` when unset or
/// unparsable. Used by benches for knobs like CSTF_SCALE and CSTF_THREADS.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Reads a floating-point environment variable with a fallback.
double env_double(const char* name, double fallback);

/// Reads a string environment variable with a fallback.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace cstf
