// Environment-variable helpers used by benches to scale workloads.
#pragma once

#include <cstdint>
#include <string>

namespace cstf {

/// Reads an integer environment variable. The whole value (modulo
/// surrounding whitespace) must parse as one 64-bit integer; malformed or
/// overflowing values ("8x", "", "9"*30) log a typed warning and return
/// `fallback` instead of a silently-truncated number. Used by benches for
/// knobs like CSTF_SCALE and CSTF_THREADS.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Reads a floating-point environment variable with the same strict
/// whole-string parse and warn-and-fallback behavior as env_int.
double env_double(const char* name, double fallback);

/// Reads a string environment variable with a fallback.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace cstf
