// Field-wise FNV-1a digest builder.
//
// Checkpoint and serving metadata both stamp an options digest into their
// file formats so a resume/load can detect incompatible configurations. The
// two call sites used to duplicate the mixing machinery; DigestBuilder is
// the shared piece. Field order and encoding are part of each digest's
// definition — the builder mixes exactly the bytes its callers feed it, in
// order, from the standard FNV-1a offset basis, so rewriting a call site in
// terms of the builder preserves the digest bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cstf {

class DigestBuilder {
 public:
  /// Mixes `len` raw bytes. The fundamental operation; everything else is
  /// encoding sugar over it.
  DigestBuilder& bytes(const void* data, std::size_t len);

  DigestBuilder& u64(std::uint64_t v) { return bytes(&v, sizeof(v)); }
  DigestBuilder& f64(double v) { return bytes(&v, sizeof(v)); }

  /// Booleans are widened to u64 (the encoding both digests always used).
  DigestBuilder& boolean(bool v) { return u64(v ? 1 : 0); }

  /// Length-prefixed string (prefix guards against concatenation collisions).
  DigestBuilder& str(const std::string& s);

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

}  // namespace cstf
