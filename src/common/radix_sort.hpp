// LSD radix sort for (64-bit key, payload) pairs.
//
// ALTO/BLCO construction sorts the linearized coordinate stream; for the
// nonzero counts of Table 2 a comparison sort is the construction
// bottleneck, so the format builders use this 8-bit-digit LSD radix sort
// (O(8·n), stable) instead.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace cstf {

/// Sorts `keys` ascending, applying the same permutation to `payload`.
/// Stable. Both vectors must have equal length.
void radix_sort_pairs(std::vector<lco_t>& keys, std::vector<index_t>& payload);

}  // namespace cstf
