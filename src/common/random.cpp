#include "common/random.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cstf {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  CSTF_CHECK(n > 0);
  // Lemire's method: unbiased without a division in the common case.
  std::uint64_t x = (*this)();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<unsigned __int128>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

std::uint64_t Rng::poisson(double rate) {
  CSTF_CHECK(rate >= 0.0);
  if (rate == 0.0) return 0;
  if (rate > 30.0) {
    const double draw = normal(rate, std::sqrt(rate));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
  }
  const double limit = std::exp(-rate);
  std::uint64_t k = 0;
  double product = uniform();
  while (product > limit) {
    ++k;
    product *= uniform();
  }
  return k;
}

Rng Rng::split() {
  // Derive a child seed from two fresh outputs; the parent state advances so
  // successive splits are independent.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32));
}

ZipfSampler::ZipfSampler(index_t n, double alpha) : n_(n), alpha_(alpha) {
  CSTF_CHECK(n >= 1);
  CSTF_CHECK(alpha >= 0.0);
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  if (std::abs(alpha_ - 1.0) < 1e-12) return log_x;
  return (std::exp((1.0 - alpha_) * log_x) - 1.0) / (1.0 - alpha_);
}

double ZipfSampler::h(double x) const { return std::exp(-alpha_ * std::log(x)); }

double ZipfSampler::h_integral_inverse(double x) const {
  if (std::abs(alpha_ - 1.0) < 1e-12) return std::exp(x);
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // numerical guard per Hörmann & Derflinger
  return std::exp(std::log1p(t) / (1.0 - alpha_));
}

index_t ZipfSampler::operator()(Rng& rng) const {
  if (n_ == 1) return 0;
  // Rejection-inversion sampling (Hörmann & Derflinger 1996). Returns ranks
  // in [1, n]; we shift to [0, n) for array indexing.
  for (;;) {
    const double u =
        h_integral_n_ + rng.uniform() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    auto k = static_cast<index_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k - 1;
    }
  }
}

}  // namespace cstf
