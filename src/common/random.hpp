// Deterministic random number generation for reproducible experiments.
//
// Every workload generator in this repository is seeded explicitly so a bench
// run regenerates bit-identical tensors. xoshiro256++ is used instead of
// std::mt19937_64 because its state is 4 words (cheap per-thread copies) and
// its output is identical across standard libraries.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace cstf {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64, which guarantees
  /// a non-zero, well-mixed state for any seed including 0.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform real in [0, 1).
  double uniform();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection method
  /// to avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (stateless variant: both values drawn
  /// fresh; simplicity over saving the spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Poisson-distributed count with the given rate: Knuth's product method
  /// for small rates, normal approximation (rounded, clamped at 0) above 30.
  /// Used to synthesize genuine count data for the Poisson-NTF objective.
  std::uint64_t poisson(double rate);

  /// Returns an independent child generator; used to give each thread or each
  /// tensor mode its own stream while remaining reproducible.
  Rng split();

  /// The four xoshiro256++ state words — snapshotted into training
  /// checkpoints so a resumed run draws the identical sequence.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& words) {
    for (int i = 0; i < 4; ++i) s_[i] = words[static_cast<std::size_t>(i)];
  }

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed sampler over {0, ..., n-1} with exponent `alpha`.
///
/// Real FROSTT tensors have heavily skewed index distributions (a few users /
/// items / words account for most nonzeros); the dataset analogs in
/// tensor/datasets.cpp use this sampler so the generated tensors show the
/// same duplicate-row reuse that drives MTTKRP cache behaviour.
///
/// Implementation: inverse-CDF over a precomputed table for small n, and the
/// rejection-inversion method of Hörmann & Derflinger for large n (O(1) per
/// sample, no table).
class ZipfSampler {
 public:
  ZipfSampler(index_t n, double alpha);

  index_t operator()(Rng& rng) const;

  index_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  index_t n_;
  double alpha_;
  // Rejection-inversion constants.
  double h_integral_x1_;
  double h_integral_n_;
  double s_;

  double h_integral(double x) const;
  double h(double x) const;
  double h_integral_inverse(double x) const;
};

}  // namespace cstf
