// Fundamental scalar and index types shared by every cstf module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cstf {

/// Floating-point type used for tensor values and factor matrices.
/// The paper evaluates in double precision (its arithmetic-intensity model in
/// Eq. 5 assumes 8-byte words), so `real_t` is double throughout.
using real_t = double;

/// Index type for tensor mode coordinates and nonzero counts. FROSTT tensors
/// exceed 2^31 nonzeros (Amazon: 1.7B), so 64-bit signed is required.
using index_t = std::int64_t;

/// Linearized coordinate type for ALTO/BLCO formats: bit-packed coordinates
/// of all modes of one nonzero. 64 bits suffice for every tensor in Table 2
/// at our scales; construction checks the bit budget explicitly.
using lco_t = std::uint64_t;

/// Maximum number of tensor modes supported by the stack-allocated coordinate
/// helpers. FROSTT's largest-order tensors are 5-mode; 8 leaves headroom.
inline constexpr int kMaxModes = 8;

}  // namespace cstf
