// timer.hpp is header-only; this TU anchors the target so the module always
// has at least one object file.
#include "common/timer.hpp"
