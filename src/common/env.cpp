#include "common/env.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/log.hpp"

namespace cstf {

namespace {

/// True when everything from `end` to the terminator is whitespace —
/// "42  " parses, "42x" does not.
bool only_trailing_space(const char* end) {
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
    ++end;
  }
  return true;
}

}  // namespace

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  // Strict parse: the whole (whitespace-trimmed) string must be one integer.
  // Silently accepting "8x" as 8 (or "" as 0) turns a typo'd knob into a
  // quietly wrong experiment, so malformed/overflowing values warn and fall
  // back instead.
  if (end == value || !only_trailing_space(end)) {
    CSTF_LOG_WARN("env: " << name << "='" << value
                          << "' is not an integer; using default " << fallback);
    return fallback;
  }
  if (errno == ERANGE) {
    CSTF_LOG_WARN("env: " << name << "='" << value
                          << "' overflows a 64-bit integer; using default "
                          << fallback);
    return fallback;
  }
  return parsed;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || !only_trailing_space(end)) {
    CSTF_LOG_WARN("env: " << name << "='" << value
                          << "' is not a number; using default " << fallback);
    return fallback;
  }
  // ERANGE covers both overflow (+-HUGE_VAL) and underflow (denormal/0);
  // only overflow is a usable-value problem.
  if (errno == ERANGE && std::abs(parsed) == HUGE_VAL) {
    CSTF_LOG_WARN("env: " << name << "='" << value
                          << "' overflows a double; using default "
                          << fallback);
    return fallback;
  }
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::string(value);
}

}  // namespace cstf
