#include "common/env.hpp"

#include <cstdlib>

namespace cstf {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  return (end == value) ? fallback : parsed;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return (end == value) ? fallback : parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::string(value);
}

}  // namespace cstf
