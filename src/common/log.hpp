// Minimal leveled logger. Single sink (stderr), thread-safe line emission.
#pragma once

#include <sstream>
#include <string>

namespace cstf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
/// Initialized from the CSTF_LOG environment variable (debug|info|warn|error|off);
/// defaults to kWarn so library use is quiet.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace cstf

#define CSTF_LOG(level, stream_expr)                                \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::cstf::log_level())) {                    \
      std::ostringstream cstf_log_os_;                              \
      cstf_log_os_ << stream_expr;                                  \
      ::cstf::detail::log_emit(level, cstf_log_os_.str());          \
    }                                                               \
  } while (0)

#define CSTF_LOG_DEBUG(s) CSTF_LOG(::cstf::LogLevel::kDebug, s)
#define CSTF_LOG_INFO(s) CSTF_LOG(::cstf::LogLevel::kInfo, s)
#define CSTF_LOG_WARN(s) CSTF_LOG(::cstf::LogLevel::kWarn, s)
#define CSTF_LOG_ERROR(s) CSTF_LOG(::cstf::LogLevel::kError, s)
