#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>

namespace cstf {
namespace {

LogLevel parse_level(const char* s) {
  std::string_view v(s);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{[] {
    const char* env = std::getenv("CSTF_LOG");
    return static_cast<int>(env ? parse_level(env) : LogLevel::kWarn);
  }()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[cstf %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace cstf
