// Shared binary-file primitives for the versioned, checksummed on-disk
// formats (.cstf serving models, CSTFCKPT training checkpoints).
//
// Both formats follow the same discipline: a magic string, a u32 format
// version, a typed payload, and a trailing FNV-1a checksum of every byte
// before it; writes go to "<path>.tmp" and are renamed into place only after
// a successful close, so a crash mid-save never clobbers the previous file
// and a reader never observes a half-written one. This header holds the
// pieces both serializers share — the typed error, the hashing reader/writer,
// and the atomic-commit helper — so the trainer-side checkpoint code does not
// have to depend on the serving library.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <type_traits>

#include "common/error.hpp"

namespace cstf {

/// Why a model/checkpoint file was rejected — load failures are typed so
/// callers (and tests) can distinguish a missing file from corruption.
enum class ModelIoStatus {
  kOpenFailed,        // cannot open / create the file
  kBadMagic,          // not a file of the expected format
  kBadVersion,        // written by an incompatible format version
  kTruncated,         // ran out of bytes mid-structure
  kCorruptHeader,     // implausible mode count / rank / dims
  kChecksumMismatch,  // payload bytes do not hash to the stored checksum
  kInvalidModel,      // deserialized fine but validation failed
  kWriteFailed,       // save-side I/O error
  kOptionsMismatch,   // checkpoint was produced under incompatible options
};

const char* model_io_status_name(ModelIoStatus status);

/// Typed model/checkpoint-I/O failure; also a cstf::Error so existing catch
/// sites keep working.
class ModelIoError : public Error {
 public:
  ModelIoError(ModelIoStatus status, const std::string& what)
      : Error(what), status_(status) {}

  ModelIoStatus status() const { return status_; }

 private:
  ModelIoStatus status_;
};

/// Throws ModelIoError with a "<prefix>: <what> [<status-name>]" message.
[[noreturn]] void throw_model_io(ModelIoStatus status, const std::string& what);

/// FNV-1a 64-bit, the checksum used by the binary formats (exposed for
/// tests).
std::uint64_t fnv1a64(const void* data, std::size_t len,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Streams bytes to a file while folding them into the running checksum.
class HashingWriter {
 public:
  explicit HashingWriter(std::ofstream& out) : out_(out) {}

  void write(const void* data, std::size_t len) {
    hash_ = fnv1a64(data, len, hash_);
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(len));
  }

  template <typename T>
  void write_pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(&v, sizeof(T));
  }

  std::uint64_t digest() const { return hash_; }

 private:
  std::ofstream& out_;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Reads bytes while hashing them; throws kTruncated on short reads.
class HashingReader {
 public:
  HashingReader(std::ifstream& in, const std::string& path)
      : in_(in), path_(path) {}

  void read(void* data, std::size_t len, const char* what) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(len));
    if (static_cast<std::size_t>(in_.gcount()) != len) {
      throw_model_io(ModelIoStatus::kTruncated,
                     path_ + ": truncated reading " + what);
    }
    hash_ = fnv1a64(data, len, hash_);
  }

  template <typename T>
  T read_pod(const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    read(&v, sizeof(T), what);
    return v;
  }

  std::uint64_t digest() const { return hash_; }

 private:
  std::ifstream& in_;
  const std::string& path_;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Renames "<tmp>" into "<path>" (the commit step of a crash-consistent
/// save); removes the tmp file and throws kWriteFailed on failure.
void commit_tmp_file(const std::string& tmp, const std::string& path);

}  // namespace cstf
