#include "common/radix_sort.hpp"

#include <array>

#include "common/error.hpp"

namespace cstf {

void radix_sort_pairs(std::vector<lco_t>& keys,
                      std::vector<index_t>& payload) {
  CSTF_CHECK(keys.size() == payload.size());
  const std::size_t n = keys.size();
  if (n <= 1) return;

  // Find the highest non-trivial digit so short keys skip passes.
  lco_t max_key = 0;
  for (lco_t k : keys) max_key = max_key > k ? max_key : k;

  std::vector<lco_t> key_scratch(n);
  std::vector<index_t> payload_scratch(n);
  constexpr int kDigitBits = 8;
  constexpr std::size_t kBuckets = 1u << kDigitBits;

  for (int pass = 0; pass < 8; ++pass) {
    const int shift = pass * kDigitBits;
    if (pass > 0 && (max_key >> shift) == 0) break;

    std::array<std::size_t, kBuckets> counts{};
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[(keys[i] >> shift) & (kBuckets - 1)];
    }
    std::size_t offset = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::size_t count = counts[b];
      counts[b] = offset;
      offset += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t bucket = (keys[i] >> shift) & (kBuckets - 1);
      const std::size_t dst = counts[bucket]++;
      key_scratch[dst] = keys[i];
      payload_scratch[dst] = payload[i];
    }
    keys.swap(key_scratch);
    payload.swap(payload_scratch);
  }
}

}  // namespace cstf
