// Error handling: a library-specific exception plus CHECK macros.
//
// Following the C++ Core Guidelines (E.2), invariant violations throw rather
// than abort so library users can recover; the macros capture file/line so a
// failure in a deep kernel is attributable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cstf {

/// Exception thrown on any cstf precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "CSTF_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace cstf

/// Verify a precondition; throws cstf::Error with location info on failure.
/// Enabled in all build types: the cost is negligible next to the kernels.
#define CSTF_CHECK(expr)                                                      \
  do {                                                                        \
    if (!(expr))                                                              \
      ::cstf::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");     \
  } while (0)

/// CSTF_CHECK with a streamed message: CSTF_CHECK_MSG(n > 0, "n=" << n).
#define CSTF_CHECK_MSG(expr, stream_expr)                                     \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream cstf_check_os_;                                      \
      cstf_check_os_ << stream_expr;                                          \
      ::cstf::detail::throw_check_failure(#expr, __FILE__, __LINE__,          \
                                          cstf_check_os_.str());              \
    }                                                                         \
  } while (0)
