#include "common/digest.hpp"

#include "common/binio.hpp"

namespace cstf {

DigestBuilder& DigestBuilder::bytes(const void* data, std::size_t len) {
  hash_ = fnv1a64(data, len, hash_);
  return *this;
}

DigestBuilder& DigestBuilder::str(const std::string& s) {
  u64(static_cast<std::uint64_t>(s.size()));
  return bytes(s.data(), s.size());
}

}  // namespace cstf
