// Wall-clock timing and per-phase accumulation.
//
// The paper reports per-iteration times split into the four cSTF phases
// (GRAM / MTTKRP / UPDATE / NORMALIZE); PhaseTimer is the accumulator those
// breakdowns are built from (Figures 1 and 3).
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace cstf {

/// Simple monotonic wall-clock timer.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall time per named phase across repeated iterations.
class PhaseTimer {
 public:
  /// RAII scope: adds elapsed time to `phase` on destruction.
  class Scope {
   public:
    Scope(PhaseTimer& parent, std::string phase)
        : parent_(parent), phase_(std::move(phase)) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { parent_.add(phase_, timer_.seconds()); }

   private:
    PhaseTimer& parent_;
    std::string phase_;
    Timer timer_;
  };

  Scope scope(std::string phase) { return Scope(*this, std::move(phase)); }

  void add(const std::string& phase, double seconds) {
    totals_[phase] += seconds;
  }

  double total(const std::string& phase) const {
    auto it = totals_.find(phase);
    return it == totals_.end() ? 0.0 : it->second;
  }

  /// Sum over all phases.
  double grand_total() const {
    double t = 0.0;
    for (const auto& [phase, seconds] : totals_) t += seconds;
    return t;
  }

  const std::map<std::string, double>& totals() const { return totals_; }

  void clear() { totals_.clear(); }

 private:
  std::map<std::string, double> totals_;
};

/// The four cSTF phase names used throughout benches and the driver, matching
/// the paper's breakdown figures.
namespace phase {
inline constexpr const char* kGram = "GRAM";
inline constexpr const char* kMttkrp = "MTTKRP";
inline constexpr const char* kUpdate = "UPDATE";
inline constexpr const char* kNormalize = "NORMALIZE";

// Serving-layer phases (src/serve): batched entry/top-k queries and the
// constrained fold-in solves, so serve traffic is separable from
// factorization work in traces and telemetry.
inline constexpr const char* kServeQuery = "SERVE_QUERY";
inline constexpr const char* kServeFoldIn = "SERVE_FOLDIN";
}  // namespace phase

}  // namespace cstf
