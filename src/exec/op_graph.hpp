// OpGraph — the execution-graph IR for one compiled iteration.
//
// The AO-ADMM inner loop (and its streaming / multi-GPU / serving variants)
// used to hand-roll its stream/event wiring at every call site. This IR
// makes the iteration explicit instead: a DAG of typed ops (MTTKRP, Gram,
// Hadamard-gram assembly, factor update, fit, copy/all-reduce, checkpoint
// barrier), each assigned to a lane (a simgpu stream), with dependency
// edges that the Executor turns into event waits and buffer declarations
// whose first-use/last-use lifetimes feed a peak-memory estimate.
//
// Ops are appended in issue order; an op may only depend on earlier ops, so
// a well-formed graph is topologically sorted by construction and the
// Executor can run it as a single forward pass — which also makes the
// functional execution order (kernels run eagerly on the host) identical to
// the legacy hand-rolled sequence, keeping factors bit-identical.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace cstf::simgpu {
class Device;
class Stream;
}  // namespace cstf::simgpu

namespace cstf::exec {

/// The op vocabulary of the AO iteration and its variants.
enum class OpKind {
  kMttkrp,            // sparse MTTKRP (any backend/engine)
  kDimTreeExtend,     // dimension-tree chain fold (P_{k+1} = P_k ⊙ H_k)
  kGram,              // dsyrk Gram (re)compute of one factor
  kHadamardGram,      // Hadamard-of-Grams assembly (S^(n), Q increments)
  kUpdate,            // constrained factor update (ADMM/MU/HALS/ALS/BPP)
  kNormalize,         // column-norm absorption into lambda
  kFit,               // fit / residual evaluation
  kCopy,              // host-link staging / device copy
  kAllReduce,         // multi-GPU ring all-reduce (fixed-duration)
  kCheckpointBarrier, // iteration boundary; snapshot-consistent point
  kGeneric,           // anything else
};

/// Display name ("mttkrp", "gram", ...).
const char* op_kind_name(OpKind kind);

/// One device-resident buffer the graph's ops read or write. `bytes` is the
/// modeled device footprint; lifetimes are derived from op use lists.
struct BufferDef {
  std::string name;
  double bytes = 0.0;
};

/// First/last op index that touches a buffer (-1 = never used). Buffers used
/// at least once are modeled live over [first_use, last_use].
struct BufferLifetime {
  int first_use = -1;
  int last_use = -1;
};

class Executor;

/// Execution context handed to an op body: the device and the stream the
/// planner assigned to the op's lane. Bodies must issue all metered work
/// through `device` on `stream` so the modeled timeline matches the plan.
struct ExecContext {
  simgpu::Device& device;
  const simgpu::Stream& stream;
  int op_index;
};

/// One node of the graph. `run` issues the op's device work; ops with
/// `fixed_s >= 0` are externally-modeled fixed-duration spans and need no
/// body. `deps` holds indices of earlier ops; cross-lane deps become event
/// edges, same-lane deps are satisfied by stream order.
struct Op {
  OpKind kind = OpKind::kGeneric;
  std::string name;
  std::string phase;             ///< tracer/phase-timer label; may be empty
  int lane = 0;                  ///< index into Plan::lanes (0 = default)
  double fixed_s = -1.0;         ///< >= 0: record_fixed span, no body
  bool wait_external = false;    ///< waits on the Executor's external event
  std::vector<int> deps;
  std::vector<int> reads;        ///< buffer ids
  std::vector<int> writes;       ///< buffer ids
  std::function<void(ExecContext&)> run;
};

/// Append-only op/buffer container. Validation happens at append time so a
/// compiled plan is structurally sound by construction.
class OpGraph {
 public:
  /// Declares a buffer; returns its id.
  int add_buffer(std::string name, double bytes);

  /// Appends an op; its deps and buffer ids must reference earlier
  /// ops / declared buffers. Returns the op's index.
  int add_op(Op op);

  int num_ops() const { return static_cast<int>(ops_.size()); }
  int num_buffers() const { return static_cast<int>(buffers_.size()); }
  const Op& op(int i) const { return ops_[static_cast<std::size_t>(i)]; }
  const BufferDef& buffer(int i) const {
    return buffers_[static_cast<std::size_t>(i)];
  }

 private:
  std::vector<Op> ops_;
  std::vector<BufferDef> buffers_;
};

/// A compiled plan: the op graph plus its lane (stream) table and the
/// derived buffer-lifetime / peak-memory analysis. Immutable once built;
/// cached and shared between iterations (see PlanCache).
class Plan {
 public:
  Plan(OpGraph graph, std::vector<std::string> lanes);

  const OpGraph& graph() const { return graph_; }

  /// Lane 0 is always the default stream; others are created by the
  /// Executor as named device streams.
  const std::vector<std::string>& lanes() const { return lanes_; }

  /// Per-buffer [first_use, last_use] op-index ranges.
  const std::vector<BufferLifetime>& lifetimes() const { return lifetimes_; }

  /// Peak modeled device bytes: the maximum, over op indices, of the summed
  /// sizes of buffers live at that op (a buffer is live over its lifetime
  /// range). The OOM-streaming path and `cstf_info --plan` consult this.
  double peak_bytes() const { return peak_bytes_; }

  /// True when `op` has a dependent on another lane (the Executor records
  /// an event after it).
  bool needs_event(int op) const {
    return needs_event_[static_cast<std::size_t>(op)];
  }

  /// Human-readable dump: ops with lane/phase/deps, event edges, buffer
  /// lifetimes, and the peak-memory estimate (`cstf_info --plan`).
  std::string describe() const;

 private:
  OpGraph graph_;
  std::vector<std::string> lanes_;
  std::vector<BufferLifetime> lifetimes_;
  std::vector<bool> needs_event_;
  double peak_bytes_ = 0.0;
};

}  // namespace cstf::exec
