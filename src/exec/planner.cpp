#include "exec/planner.hpp"

#include <algorithm>
#include <string>

#include "common/timer.hpp"
#include "metrics/registry.hpp"

namespace cstf::exec {

namespace {

double word() { return static_cast<double>(sizeof(real_t)); }

index_t max_rows_of(const std::vector<index_t>& rows) {
  index_t out = 0;
  for (index_t r : rows) out = std::max(out, r);
  return out;
}

}  // namespace

Plan Planner::compile_ao_iteration(const AoIterationSpec& spec) {
  CSTF_CHECK_MSG(spec.num_modes >= 1, "AO plan needs at least one mode");
  CSTF_CHECK_MSG(
      static_cast<int>(spec.mode_rows.size()) == spec.num_modes,
      "AO plan: mode_rows has " << spec.mode_rows.size() << " entries for "
                                << spec.num_modes << " modes");
  CSTF_CHECK_MSG(spec.hadamard && spec.mttkrp && spec.update &&
                     spec.normalize && spec.gram_recompute,
                 "AO plan: missing an op body");
  if (spec.compute_fit) {
    CSTF_CHECK_MSG(spec.fit_capture && spec.fit,
                   "AO plan: compute_fit set but fit bodies missing");
  }
  if (spec.use_dimtree) {
    CSTF_CHECK_MSG(spec.dimtree_extend != nullptr,
                   "AO plan: use_dimtree set but no dimtree_extend body");
  }

  OpGraph g;
  const double r = static_cast<double>(spec.rank);
  const double rows_max = static_cast<double>(max_rows_of(spec.mode_rows));
  const int last = spec.num_modes - 1;

  const int tensor_buf = g.add_buffer("tensor", spec.tensor_bytes);
  std::vector<int> factor_buf, gram_buf;
  for (int n = 0; n < spec.num_modes; ++n) {
    const double rows = static_cast<double>(
        spec.mode_rows[static_cast<std::size_t>(n)]);
    factor_buf.push_back(
        g.add_buffer("factor_" + std::to_string(n), rows * r * word()));
    gram_buf.push_back(
        g.add_buffer("gram_" + std::to_string(n), r * r * word()));
    if (spec.with_dual) {
      g.add_buffer("dual_" + std::to_string(n), rows * r * word());
    }
  }
  const int s_buf = g.add_buffer("s_hadamard", r * r * word());
  const int m_buf = g.add_buffer("mttkrp_out", rows_max * r * word());
  // The dimension-tree chain intermediate lives alongside the factors for
  // nearly the whole iteration (first write: extend after mode 0; last read:
  // the final derive), so declaring it here makes peak_bytes honest about
  // the reuse engine's footprint.
  const int chain_buf =
      spec.use_dimtree ? g.add_buffer("dimtree_chain", spec.dimtree_chain_bytes)
                       : -1;
  const int scratch_buf =
      g.add_buffer("update_scratch", 2.0 * rows_max * r * word());
  const int lambda_buf = g.add_buffer("lambda", r * word());
  int fit_m_buf = -1;
  int fit_g_buf = -1;
  if (spec.compute_fit) {
    const double rows_last = static_cast<double>(
        spec.mode_rows[static_cast<std::size_t>(last)]);
    fit_m_buf = g.add_buffer("fit_last_m", rows_last * r * word());
    fit_g_buf = g.add_buffer("fit_gram_unnorm", r * r * word());
  }

  // With the pipeline, all Gram-phase work (the Hadamard assembly and the
  // post-normalize recompute) runs on its own lane; Hadamard_n and MTTKRP_n
  // both need only Normalize_{n-1}, so they overlap, and the update joins
  // them with an event edge. This is exactly the event wiring the AUNTF
  // driver used to hand-roll.
  const int gram_lane = spec.pipeline ? 1 : 0;
  int prev_normalize = -1;
  int prev_gram = -1;
  int prev_extend = -1;
  for (int n = 0; n < spec.num_modes; ++n) {
    Op had;
    had.kind = OpKind::kHadamardGram;
    had.name = "hadamard_" + std::to_string(n);
    had.phase = phase::kGram;
    had.lane = gram_lane;
    if (prev_gram >= 0) had.deps.push_back(prev_gram);  // same-lane order
    for (int m = 0; m < spec.num_modes; ++m) {
      if (m != n) had.reads.push_back(gram_buf[static_cast<std::size_t>(m)]);
    }
    had.writes.push_back(s_buf);
    had.run = [body = spec.hadamard, n](ExecContext& ctx) { body(ctx, n); };
    const int had_op = g.add_op(std::move(had));

    Op mk;
    mk.kind = OpKind::kMttkrp;
    mk.name = "mttkrp_" + std::to_string(n);
    mk.phase = phase::kMttkrp;
    mk.lane = 0;
    if (prev_normalize >= 0) mk.deps.push_back(prev_normalize);
    mk.reads.push_back(tensor_buf);
    if (spec.use_dimtree && n > 0) {
      // derive(n) gathers the chain plus only the suffix factors; the prefix
      // is already folded into the chain by the extend ops.
      if (prev_extend >= 0) mk.deps.push_back(prev_extend);
      mk.reads.push_back(chain_buf);
      for (int m = n + 1; m < spec.num_modes; ++m) {
        mk.reads.push_back(factor_buf[static_cast<std::size_t>(m)]);
      }
    } else {
      for (int m = 0; m < spec.num_modes; ++m) {
        if (m != n) mk.reads.push_back(factor_buf[static_cast<std::size_t>(m)]);
      }
    }
    mk.writes.push_back(m_buf);
    mk.run = [body = spec.mttkrp, n](ExecContext& ctx) { body(ctx, n); };
    const int mk_op = g.add_op(std::move(mk));

    Op up;
    up.kind = OpKind::kUpdate;
    up.name = "update_" + std::to_string(n);
    up.phase = phase::kUpdate;
    up.lane = 0;
    up.deps = {had_op, mk_op};  // the Hadamard dep is the pipeline's join
    up.reads = {s_buf, m_buf};
    up.writes = {factor_buf[static_cast<std::size_t>(n)], scratch_buf};
    up.run = [body = spec.update, n](ExecContext& ctx) { body(ctx, n); };
    int tail = g.add_op(std::move(up));

    if (n == last && spec.compute_fit) {
      // Snapshot the unnormalized Gram and the final MTTKRP result before
      // normalization rescales H (no phase: the legacy driver metered this
      // outside the four-phase breakdown).
      Op cap;
      cap.kind = OpKind::kFit;
      cap.name = "fit_capture";
      cap.lane = 0;
      cap.deps = {tail};
      cap.reads = {factor_buf[static_cast<std::size_t>(n)], m_buf};
      cap.writes = {fit_g_buf, fit_m_buf};
      cap.run = spec.fit_capture;
      tail = g.add_op(std::move(cap));
    }

    Op nm;
    nm.kind = OpKind::kNormalize;
    nm.name = "normalize_" + std::to_string(n);
    nm.phase = phase::kNormalize;
    nm.lane = 0;
    nm.deps = {tail};
    nm.reads = {factor_buf[static_cast<std::size_t>(n)]};
    nm.writes = {factor_buf[static_cast<std::size_t>(n)], lambda_buf};
    nm.run = [body = spec.normalize, n](ExecContext& ctx) { body(ctx, n); };
    prev_normalize = g.add_op(std::move(nm));

    if (spec.use_dimtree && n < last) {
      // Fold the freshly-normalized factor into the chain so derive(n+1)
      // reuses it. MTTKRP phase: the fold is part of the reuse engine's
      // MTTKRP cost, and metering it there keeps the flat-vs-tree phase
      // comparison honest.
      Op ex;
      ex.kind = OpKind::kDimTreeExtend;
      ex.name = "dimtree_extend_" + std::to_string(n);
      ex.phase = phase::kMttkrp;
      ex.lane = 0;
      ex.deps = {prev_normalize};
      ex.reads.push_back(factor_buf[static_cast<std::size_t>(n)]);
      if (n > 0) ex.reads.push_back(chain_buf);  // in-place fold
      ex.writes.push_back(chain_buf);
      ex.run = [body = spec.dimtree_extend, n](ExecContext& ctx) {
        body(ctx, n + 1);
      };
      prev_extend = g.add_op(std::move(ex));
    }

    Op gr;
    gr.kind = OpKind::kGram;
    gr.name = "gram_recompute_" + std::to_string(n);
    gr.phase = phase::kGram;
    gr.lane = gram_lane;
    gr.deps = {prev_normalize};  // cross-lane when pipelined: event edge
    gr.reads = {factor_buf[static_cast<std::size_t>(n)]};
    gr.writes = {gram_buf[static_cast<std::size_t>(n)]};
    gr.run =
        [body = spec.gram_recompute, n](ExecContext& ctx) { body(ctx, n); };
    prev_gram = g.add_op(std::move(gr));
  }

  if (spec.compute_fit) {
    Op fit;
    fit.kind = OpKind::kFit;
    fit.name = "fit";
    fit.phase = "FIT";
    fit.lane = 0;
    fit.deps = {prev_gram};  // reads Grams last written on the gram lane
    for (int m = 0; m < spec.num_modes; ++m) {
      fit.reads.push_back(gram_buf[static_cast<std::size_t>(m)]);
    }
    fit.reads.push_back(fit_g_buf);
    fit.reads.push_back(fit_m_buf);
    fit.reads.push_back(factor_buf[static_cast<std::size_t>(last)]);
    fit.reads.push_back(lambda_buf);
    fit.run = spec.fit;
    g.add_op(std::move(fit));
  }

  // Snapshot-consistent point: everything the iteration wrote is final here.
  // Deliberately dependency-free — a dep on the gram lane would add an event
  // wait the legacy driver never issued and delay the next iteration.
  Op bar;
  bar.kind = OpKind::kCheckpointBarrier;
  bar.name = "iteration_barrier";
  bar.lane = 0;
  g.add_op(std::move(bar));

  std::vector<std::string> lanes = {"default"};
  if (spec.pipeline) lanes.push_back("gram");
  return Plan(std::move(g), std::move(lanes));
}

Plan Planner::compile_fixed_pipeline(
    const std::vector<FixedModePhases>& modes) {
  CSTF_CHECK_MSG(!modes.empty(), "fixed pipeline plan needs modes");
  OpGraph g;
  int prev_normalize = -1;
  for (std::size_t n = 0; n < modes.size(); ++n) {
    const FixedModePhases& m = modes[n];
    Op gr;
    gr.kind = OpKind::kGram;
    gr.name = "gram";
    gr.lane = 1;
    gr.fixed_s = m.gram_s;
    if (prev_normalize >= 0) gr.deps.push_back(prev_normalize);
    const int gr_op = g.add_op(std::move(gr));

    Op mk;
    mk.kind = OpKind::kMttkrp;
    mk.name = "mttkrp";
    mk.lane = 0;
    mk.fixed_s = m.mttkrp_s;
    if (prev_normalize >= 0) mk.deps.push_back(prev_normalize);
    const int mk_op = g.add_op(std::move(mk));

    Op up;
    up.kind = OpKind::kUpdate;
    up.name = "update";
    up.lane = 0;
    up.fixed_s = m.update_s;
    up.deps = {gr_op, mk_op};
    const int up_op = g.add_op(std::move(up));

    Op nm;
    nm.kind = OpKind::kNormalize;
    nm.name = "normalize";
    nm.lane = 0;
    nm.fixed_s = m.normalize_s;
    nm.deps = {up_op};
    prev_normalize = g.add_op(std::move(nm));
  }
  return Plan(std::move(g), {"default", "gram"});
}

Plan Planner::compile_chunked_allreduce(const ChunkedAllReduceSpec& spec) {
  CSTF_CHECK_MSG(!spec.shard_compute_s.empty(),
                 "chunked all-reduce plan needs shards");
  CSTF_CHECK_MSG(spec.chunks >= 1, "chunked all-reduce plan: chunks < 1");
  const int shards = static_cast<int>(spec.shard_compute_s.size());
  OpGraph g;
  std::vector<std::string> lanes = {"default"};
  for (int d = 0; d < shards; ++d) lanes.push_back("gpu" + std::to_string(d));
  lanes.push_back("allreduce");
  const int comm_lane = shards + 1;

  for (int i = 0; i < spec.chunks; ++i) {
    std::vector<int> chunk_ops;
    chunk_ops.reserve(static_cast<std::size_t>(shards));
    for (int d = 0; d < shards; ++d) {
      Op c;
      c.kind = OpKind::kMttkrp;
      c.name = "mttkrp_chunk";
      c.lane = 1 + d;
      c.fixed_s = spec.shard_compute_s[static_cast<std::size_t>(d)] /
                  static_cast<double>(spec.chunks);
      chunk_ops.push_back(g.add_op(std::move(c)));
    }
    // The ring all-reduce of chunk i starts once every shard retired its
    // chunk i; each dep is cross-lane, so each becomes an event edge.
    Op ar;
    ar.kind = OpKind::kAllReduce;
    ar.name = "allreduce_chunk";
    ar.lane = comm_lane;
    ar.fixed_s = spec.chunk_comm_s;
    ar.deps = std::move(chunk_ops);
    g.add_op(std::move(ar));
  }
  return Plan(std::move(g), std::move(lanes));
}

Plan Planner::compile_streaming_ingest(const StreamingIngestSpec& spec) {
  CSTF_CHECK_MSG(spec.num_modes >= 1, "streaming plan needs modes");
  CSTF_CHECK_MSG(
      static_cast<int>(spec.mode_rows.size()) == spec.num_modes,
      "streaming plan: mode_rows size mismatch");
  CSTF_CHECK_MSG(spec.temporal_project && spec.temporal_solve &&
                     spec.mode_mttkrp && spec.mode_fold && spec.mode_update &&
                     spec.mode_gram,
                 "streaming plan: missing an op body");
  if (spec.staging) {
    CSTF_CHECK_MSG(spec.stage != nullptr,
                   "streaming plan: staging enabled but no stage body");
  }

  OpGraph g;
  const double r = static_cast<double>(spec.rank);
  const double rows_max = static_cast<double>(max_rows_of(spec.mode_rows));
  const int slice_buf = g.add_buffer("slice", spec.slice_bytes);
  const int c_buf = g.add_buffer("temporal_rhs", r * word());
  const int srow_buf = g.add_buffer("temporal_row", r * word());
  const int b_buf = g.add_buffer("mttkrp_out", rows_max * r * word());
  std::vector<int> factor_buf, gram_buf, p_buf, q_buf;
  for (int m = 0; m < spec.num_modes; ++m) {
    const double rows = static_cast<double>(
        spec.mode_rows[static_cast<std::size_t>(m)]);
    factor_buf.push_back(
        g.add_buffer("factor_" + std::to_string(m), rows * r * word()));
    gram_buf.push_back(
        g.add_buffer("gram_" + std::to_string(m), r * r * word()));
    p_buf.push_back(
        g.add_buffer("p_accum_" + std::to_string(m), rows * r * word()));
    q_buf.push_back(
        g.add_buffer("q_accum_" + std::to_string(m), r * r * word()));
  }

  int stage_op = -1;
  if (spec.staging) {
    // Double-buffered host-link transfer: waits on the executor's external
    // event (compute-done of the slice whose buffer this transfer reuses);
    // every compute op below transitively waits on the transfer.
    Op st;
    st.kind = OpKind::kCopy;
    st.name = "stream_stage_slice";
    st.lane = 1;
    st.wait_external = true;
    st.writes = {slice_buf};
    st.run = spec.stage;
    stage_op = g.add_op(std::move(st));
  }

  Op proj;
  proj.kind = OpKind::kMttkrp;
  proj.name = "stream_slice_project";
  proj.lane = 0;
  if (stage_op >= 0) proj.deps.push_back(stage_op);  // the event join
  proj.reads.push_back(slice_buf);
  for (int m = 0; m < spec.num_modes; ++m) {
    proj.reads.push_back(factor_buf[static_cast<std::size_t>(m)]);
  }
  proj.writes = {c_buf};
  proj.run = spec.temporal_project;
  const int proj_op = g.add_op(std::move(proj));

  Op solve;
  solve.kind = OpKind::kUpdate;
  solve.name = "temporal_solve";
  solve.lane = 0;
  solve.deps = {proj_op};
  solve.reads.push_back(c_buf);
  for (int m = 0; m < spec.num_modes; ++m) {
    solve.reads.push_back(gram_buf[static_cast<std::size_t>(m)]);
  }
  solve.writes = {srow_buf};
  solve.run = spec.temporal_solve;
  int prev = g.add_op(std::move(solve));

  for (int m = 0; m < spec.num_modes; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    Op mk;
    mk.kind = OpKind::kMttkrp;
    mk.name = "stream_slice_mttkrp_" + std::to_string(m);
    mk.lane = 0;
    mk.deps = {prev};
    mk.reads = {slice_buf, srow_buf};
    for (int k = 0; k < spec.num_modes; ++k) {
      if (k != m) mk.reads.push_back(factor_buf[static_cast<std::size_t>(k)]);
    }
    mk.writes = {b_buf};
    mk.run = [body = spec.mode_mttkrp, m](ExecContext& ctx) { body(ctx, m); };
    prev = g.add_op(std::move(mk));

    Op fold;
    fold.kind = OpKind::kHadamardGram;
    fold.name = "fold_accumulators_" + std::to_string(m);
    fold.lane = 0;
    fold.deps = {prev};
    fold.reads = {b_buf, srow_buf};
    for (int k = 0; k < spec.num_modes; ++k) {
      if (k != m) fold.reads.push_back(gram_buf[static_cast<std::size_t>(k)]);
    }
    fold.writes = {p_buf[mi], q_buf[mi]};
    fold.run = [body = spec.mode_fold, m](ExecContext& ctx) { body(ctx, m); };
    prev = g.add_op(std::move(fold));

    Op up;
    up.kind = OpKind::kUpdate;
    up.name = "factor_update_" + std::to_string(m);
    up.lane = 0;
    up.deps = {prev};
    up.reads = {p_buf[mi], q_buf[mi]};
    up.writes = {factor_buf[mi]};
    up.run = [body = spec.mode_update, m](ExecContext& ctx) { body(ctx, m); };
    prev = g.add_op(std::move(up));

    Op gr;
    gr.kind = OpKind::kGram;
    gr.name = "gram_" + std::to_string(m);
    gr.lane = 0;
    gr.deps = {prev};
    gr.reads = {factor_buf[mi]};
    gr.writes = {gram_buf[mi]};
    gr.run = [body = spec.mode_gram, m](ExecContext& ctx) { body(ctx, m); };
    prev = g.add_op(std::move(gr));
  }

  std::vector<std::string> lanes = {"default"};
  if (spec.staging) lanes.push_back("slice_copy");
  return Plan(std::move(g), std::move(lanes));
}

Plan Planner::compile_fold_in(const FoldInSpec& spec) {
  CSTF_CHECK_MSG(spec.rhs && spec.solve, "fold-in plan: missing an op body");
  if (spec.build_gram) {
    CSTF_CHECK_MSG(spec.gram_build != nullptr,
                   "fold-in plan: build_gram set but no gram body");
  }
  OpGraph g;
  const double r = static_cast<double>(spec.rank);
  const double batch = static_cast<double>(spec.batch_rows);
  const int rhs_buf = g.add_buffer("foldin_rhs", batch * r * word());
  const int gram_buf = g.add_buffer("foldin_gram", r * r * word());
  const int h_buf = g.add_buffer("foldin_rows", batch * r * word());

  Op rhs;
  rhs.kind = OpKind::kMttkrp;
  rhs.name = "serve_foldin_rhs";
  rhs.lane = 0;
  rhs.writes = {rhs_buf};
  rhs.run = spec.rhs;
  int prev = g.add_op(std::move(rhs));

  if (spec.build_gram) {
    Op gb;
    gb.kind = OpKind::kGram;
    gb.name = "foldin_gram_build";
    gb.lane = 0;
    gb.deps = {prev};
    gb.writes = {gram_buf};
    gb.run = spec.gram_build;
    prev = g.add_op(std::move(gb));
  }

  Op solve;
  solve.kind = OpKind::kUpdate;
  solve.name = "foldin_solve";
  solve.lane = 0;
  solve.deps = {prev};
  solve.reads = {rhs_buf, gram_buf};
  solve.writes = {h_buf};
  solve.run = spec.solve;
  g.add_op(std::move(solve));

  return Plan(std::move(g), {"default"});
}

void PlanCache::bump_metrics(bool hit) {
  static metrics::Counter* hits =
      metrics::MetricsRegistry::global().counter("exec.plan_cache.hits");
  static metrics::Counter* misses =
      metrics::MetricsRegistry::global().counter("exec.plan_cache.misses");
  (hit ? hits : misses)->inc();
}

}  // namespace cstf::exec
