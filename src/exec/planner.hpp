// Planner — compiles one iteration of each AO-style loop into a Plan.
//
// This is the single home of the scheduling rules that used to be
// hand-rolled per call site:
//  * the batch AO-ADMM iteration (auntf), with the optional gram-lane
//    pipeline (Gram_n overlaps MTTKRP_n; both depend only on
//    Normalize_{n-1}; the update joins them);
//  * the fixed-span variant of the same schedule benches use to model
//    overlap from already-scaled per-mode phase times;
//  * the multi-GPU chunked compute-vs-ring-all-reduce overlap (the
//    all-reduce of chunk i starts once every shard finished chunk i);
//  * the streaming ingest pipeline (slice staging on a copy lane,
//    double-buffered against the previous slice's compute);
//  * the serving fold-in solve (RHS gather -> Gram -> fused ADMM).
//
// Callers supply the op *bodies* (closures issuing the actual metered
// kernels); the planner supplies the *structure*: lanes, dependency edges,
// typed ops, and buffer lifetimes. The Executor then realizes the structure
// as stream/event wiring. Plans are cached via PlanCache, keyed by (tensor
// identity, rank, options digest), and invalidated exactly like
// ScatterPlanCache: a key change drops the slot and recompiles.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.hpp"
#include "exec/op_graph.hpp"

namespace cstf::exec {

/// Spec for one batch AO iteration (the AUNTF driver's loop body). The
/// per-mode bodies receive the mode index; fit bodies are used only when
/// `compute_fit` is set.
struct AoIterationSpec {
  int num_modes = 0;
  index_t rank = 0;
  bool pipeline = false;        ///< gram work on its own lane
  bool compute_fit = false;
  bool with_dual = true;        ///< update scheme keeps a per-mode dual
  double tensor_bytes = 0.0;    ///< device-resident tensor (peak-memory model)
  std::vector<index_t> mode_rows;

  /// Dimension-tree MTTKRP (DESIGN.md §13): when set, the plan adds the
  /// nnz x R chain intermediate as a buffer (so it participates in lifetimes
  /// and peak_bytes), shrinks mttkrp_n's factor reads to the suffix the
  /// derive actually gathers, and emits an explicit kDimTreeExtend op after
  /// normalize_n that folds the freshly-updated factor into the chain.
  bool use_dimtree = false;
  double dimtree_chain_bytes = 0.0;
  /// Body of the extend op; receives the target chain level (n+1 after
  /// mode n). Required when use_dimtree is set.
  std::function<void(ExecContext&, int)> dimtree_extend;

  std::function<void(ExecContext&, int)> hadamard;       // S^(n) assembly
  std::function<void(ExecContext&, int)> mttkrp;         // M^(n)
  std::function<void(ExecContext&, int)> update;         // H^(n)
  std::function<void(ExecContext&, int)> normalize;
  std::function<void(ExecContext&, int)> gram_recompute; // G_n from H^(n)
  std::function<void(ExecContext&)> fit_capture;  // pre-normalize snapshot
  std::function<void(ExecContext&)> fit;          // post-loop fit value
};

/// Fixed-duration per-mode phase times for the bench variant of the AO
/// pipeline (already scaled to the full dataset).
struct FixedModePhases {
  double gram_s = 0.0;
  double mttkrp_s = 0.0;
  double update_s = 0.0;
  double normalize_s = 0.0;
};

/// Spec for the multi-GPU chunked compute/all-reduce overlap: shard d's
/// compute is split into `chunks` equal fixed spans on lane d, and chunk i's
/// all-reduce (duration `chunk_comm_s`) runs on a communication lane once
/// every shard finished its chunk i.
struct ChunkedAllReduceSpec {
  std::vector<double> shard_compute_s;  ///< full per-shard compute times
  int chunks = 1;
  double chunk_comm_s = 0.0;
};

/// Spec for one streaming ingest (one time slice). When `staging` is set the
/// slice transfer runs on a copy lane and waits on the Executor's external
/// event (the compute-done event of the slice whose buffer it reuses).
struct StreamingIngestSpec {
  int num_modes = 0;
  index_t rank = 0;
  bool staging = false;
  double slice_bytes = 0.0;     ///< staged slice footprint (peak-memory model)
  std::vector<index_t> mode_rows;

  std::function<void(ExecContext&)> stage;
  std::function<void(ExecContext&)> temporal_project;
  std::function<void(ExecContext&)> temporal_solve;
  std::function<void(ExecContext&, int)> mode_mttkrp;
  std::function<void(ExecContext&, int)> mode_fold;    // P/Q aging
  std::function<void(ExecContext&, int)> mode_update;
  std::function<void(ExecContext&, int)> mode_gram;
};

/// Spec for one serving fold-in solve (single lane; the value of compiling
/// it is the uniform hook/trace/fault surface and the --plan dump).
struct FoldInSpec {
  index_t rank = 0;
  index_t batch_rows = 0;       ///< solve height for the peak-memory model
  bool build_gram = false;      ///< rebuild+factorize the Gram system per call
  std::function<void(ExecContext&)> rhs;
  std::function<void(ExecContext&)> gram_build;
  std::function<void(ExecContext&)> solve;
};

class Planner {
 public:
  static Plan compile_ao_iteration(const AoIterationSpec& spec);
  static Plan compile_fixed_pipeline(const std::vector<FixedModePhases>& modes);
  static Plan compile_chunked_allreduce(const ChunkedAllReduceSpec& spec);
  static Plan compile_streaming_ingest(const StreamingIngestSpec& spec);
  static Plan compile_fold_in(const FoldInSpec& spec);
};

/// Cache key: tensor identity (address/nnz-derived token), factorization
/// rank, and a digest of every option that changes the compiled structure.
struct PlanKey {
  std::uint64_t tensor_id = 0;
  std::uint64_t rank = 0;
  std::uint64_t options_digest = 0;

  friend bool operator==(const PlanKey& a, const PlanKey& b) {
    return a.tensor_id == b.tensor_id && a.rank == b.rank &&
           a.options_digest == b.options_digest;
  }
};

/// Single-slot compiled-plan cache (the plan-level analogue of
/// ScatterPlanCache): a matching key reuses the cached plan, a mismatch
/// recompiles, clear() drops the slot. Hit/miss counters are exposed so
/// tests can assert invalidation behavior.
class PlanCache {
 public:
  template <typename Build>
  std::shared_ptr<const Plan> get(const PlanKey& key, const Build& build) {
    if (plan_ != nullptr && key == key_) {
      ++hits_;
      bump_metrics(true);
      return plan_;
    }
    ++misses_;
    bump_metrics(false);
    key_ = key;
    plan_ = std::make_shared<const Plan>(build());
    return plan_;
  }

  /// Drops the cached plan (callers whose tensor changes between solves —
  /// the streaming path — must clear or re-key before reuse).
  void clear() { plan_.reset(); }

  bool cached() const { return plan_ != nullptr; }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

 private:
  /// Mirrors the hit/miss into the process-wide exec.plan_cache.* counters
  /// (defined in planner.cpp; the per-cache counters above are untouched).
  static void bump_metrics(bool hit);

  PlanKey key_{};
  std::shared_ptr<const Plan> plan_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace cstf::exec
