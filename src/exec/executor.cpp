#include "exec/executor.hpp"

#include "common/timer.hpp"
#include "metrics/registry.hpp"
#include "simgpu/trace.hpp"

namespace cstf::exec {

namespace {

// One exec.op.duration{kind=...} histogram per OpKind, resolved lazily so
// the per-op cost is one relaxed observe(). Indexed by the enum value;
// kGeneric is last.
metrics::Histogram* op_duration_histogram(OpKind kind) {
  static const auto histograms = [] {
    constexpr int kNumKinds = static_cast<int>(OpKind::kGeneric) + 1;
    std::vector<metrics::Histogram*> h(kNumKinds);
    for (int k = 0; k < kNumKinds; ++k) {
      h[static_cast<std::size_t>(k)] =
          metrics::MetricsRegistry::global().histogram(
              "exec.op.duration",
              {{"kind", op_kind_name(static_cast<OpKind>(k))}});
    }
    return h;
  }();
  return histograms[static_cast<std::size_t>(kind)];
}

}  // namespace

Executor::Executor(simgpu::Device& dev, std::shared_ptr<const Plan> plan)
    : dev_(dev), plan_(std::move(plan)) {
  CSTF_CHECK(plan_ != nullptr);
  streams_.push_back(simgpu::Stream{});  // lane 0: the default stream
  for (std::size_t l = 1; l < plan_->lanes().size(); ++l) {
    streams_.push_back(dev_.create_stream(plan_->lanes()[l]));
  }
  events_.resize(static_cast<std::size_t>(plan_->graph().num_ops()));
}

void Executor::run(OpObserver* observer, const simgpu::Event* external) {
  const OpGraph& graph = plan_->graph();
  for (int i = 0; i < graph.num_ops(); ++i) {
    const Op& op = graph.op(i);
    const simgpu::Stream& stream = streams_[static_cast<std::size_t>(op.lane)];

    // Cross-lane deps become event waits; same-lane deps are already
    // satisfied by the stream's in-order semantics.
    for (int d : op.deps) {
      if (graph.op(d).lane != op.lane) {
        dev_.wait_event(stream, events_[static_cast<std::size_t>(d)]);
      }
    }
    if (op.wait_external && external != nullptr) {
      dev_.wait_event(stream, *external);
    }

    if (observer != nullptr) observer->on_op_begin(op, i);
    {
      simgpu::ScopedPhase scope(op.phase.empty() ? nullptr : dev_.tracer(),
                                op.phase);
      Timer op_timer;
      if (op.fixed_s >= 0.0) {
        dev_.record_fixed(op.name, op.fixed_s, stream);
      } else if (op.run) {
        ExecContext ctx{dev_, stream, i};
        op.run(ctx);
      }
      // A checkpoint barrier with no body is a pure structural marker.
      op_duration_histogram(op.kind)->observe(op_timer.seconds());
    }
    if (observer != nullptr) observer->on_op_end(op, i);

    if (plan_->needs_event(i)) {
      events_[static_cast<std::size_t>(i)] = dev_.record_event(stream);
    }
  }
}

}  // namespace cstf::exec
