// Executor — runs a compiled Plan on a simgpu::Device.
//
// The Executor owns the plan's lane-to-stream mapping (named streams are
// created once, at construction, and stay valid across Device::reset() so an
// executor can drive every iteration of a training run), turns cross-lane
// dependency edges into record_event/wait_event pairs, scopes each op's
// tracer phase, and invokes per-op observer hooks. Tracing, fault injection
// (checked inside Device::record), and phase accounting therefore apply to
// every op by construction — no per-call-site plumbing.
#pragma once

#include <memory>
#include <vector>

#include "exec/op_graph.hpp"
#include "simgpu/device.hpp"

namespace cstf::exec {

/// Per-op hooks: `on_op_begin` fires after the op's event waits are issued
/// and before its body; `on_op_end` after the body. Observers do
/// caller-specific accounting (phase timers, checkpoint anchors, test
/// assertions); the executor handles tracer phases itself.
class OpObserver {
 public:
  virtual ~OpObserver() = default;
  virtual void on_op_begin(const Op& op, int index) { (void)op; (void)index; }
  virtual void on_op_end(const Op& op, int index) { (void)op; (void)index; }
};

class Executor {
 public:
  /// Creates the plan's non-default lanes as named streams on `dev`. The
  /// device must outlive the executor.
  Executor(simgpu::Device& dev, std::shared_ptr<const Plan> plan);

  /// Runs every op in issue order: waits on cross-lane dependency events
  /// (and on `external`, for ops marked wait_external), executes the body
  /// (or records the fixed-duration span) on the op's lane, and records an
  /// event afterwards if a cross-lane dependent needs it.
  void run(OpObserver* observer = nullptr,
           const simgpu::Event* external = nullptr);

  const Plan& plan() const { return *plan_; }
  simgpu::Device& device() { return dev_; }

  /// The stream backing one lane (lane 0 = the default stream).
  const simgpu::Stream& lane_stream(int lane) const {
    return streams_[static_cast<std::size_t>(lane)];
  }

 private:
  simgpu::Device& dev_;
  std::shared_ptr<const Plan> plan_;
  std::vector<simgpu::Stream> streams_;  // per lane
  std::vector<simgpu::Event> events_;    // per op, re-recorded every run
};

}  // namespace cstf::exec
