#include "exec/op_graph.hpp"

#include <algorithm>
#include <sstream>

namespace cstf::exec {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kMttkrp: return "mttkrp";
    case OpKind::kDimTreeExtend: return "dimtree-extend";
    case OpKind::kGram: return "gram";
    case OpKind::kHadamardGram: return "hadamard";
    case OpKind::kUpdate: return "update";
    case OpKind::kNormalize: return "normalize";
    case OpKind::kFit: return "fit";
    case OpKind::kCopy: return "copy";
    case OpKind::kAllReduce: return "allreduce";
    case OpKind::kCheckpointBarrier: return "ckpt-barrier";
    case OpKind::kGeneric: return "generic";
  }
  return "?";
}

int OpGraph::add_buffer(std::string name, double bytes) {
  CSTF_CHECK_MSG(bytes >= 0.0, "buffer " << name << ": negative size");
  buffers_.push_back(BufferDef{std::move(name), bytes});
  return static_cast<int>(buffers_.size()) - 1;
}

int OpGraph::add_op(Op op) {
  const int index = static_cast<int>(ops_.size());
  for (int d : op.deps) {
    CSTF_CHECK_MSG(d >= 0 && d < index,
                   "op " << op.name << ": dep " << d
                         << " does not precede op " << index);
  }
  for (int b : op.reads) {
    CSTF_CHECK_MSG(b >= 0 && b < num_buffers(),
                   "op " << op.name << ": bad read buffer " << b);
  }
  for (int b : op.writes) {
    CSTF_CHECK_MSG(b >= 0 && b < num_buffers(),
                   "op " << op.name << ": bad write buffer " << b);
  }
  CSTF_CHECK_MSG(op.fixed_s >= 0.0 || op.run != nullptr ||
                     op.kind == OpKind::kCheckpointBarrier,
                 "op " << op.name << ": needs a body or a fixed duration");
  ops_.push_back(std::move(op));
  return index;
}

Plan::Plan(OpGraph graph, std::vector<std::string> lanes)
    : graph_(std::move(graph)), lanes_(std::move(lanes)) {
  CSTF_CHECK_MSG(!lanes_.empty() && lanes_[0] == "default",
                 "plan lane 0 must be the default stream");
  const int n = graph_.num_ops();
  for (int i = 0; i < n; ++i) {
    const Op& op = graph_.op(i);
    CSTF_CHECK_MSG(op.lane >= 0 &&
                       op.lane < static_cast<int>(lanes_.size()),
                   "op " << op.name << ": lane " << op.lane
                         << " not in the plan's lane table");
  }

  // Buffer lifetimes: first/last op index touching each buffer.
  lifetimes_.assign(static_cast<std::size_t>(graph_.num_buffers()),
                    BufferLifetime{});
  const auto touch = [&](int buffer, int op) {
    BufferLifetime& lt = lifetimes_[static_cast<std::size_t>(buffer)];
    if (lt.first_use < 0) lt.first_use = op;
    lt.last_use = std::max(lt.last_use, op);
  };
  for (int i = 0; i < n; ++i) {
    for (int b : graph_.op(i).reads) touch(b, i);
    for (int b : graph_.op(i).writes) touch(b, i);
  }

  // Peak memory: sweep op indices, summing live buffers.
  for (int i = 0; i < n; ++i) {
    double live = 0.0;
    for (int b = 0; b < graph_.num_buffers(); ++b) {
      const BufferLifetime& lt = lifetimes_[static_cast<std::size_t>(b)];
      if (lt.first_use >= 0 && lt.first_use <= i && i <= lt.last_use) {
        live += graph_.buffer(b).bytes;
      }
    }
    peak_bytes_ = std::max(peak_bytes_, live);
  }

  // An event is recorded after an op only if some later op on another lane
  // depends on it — exactly the edges the hand-rolled choreographies wired.
  needs_event_.assign(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    for (int d : graph_.op(i).deps) {
      if (graph_.op(d).lane != graph_.op(i).lane) {
        needs_event_[static_cast<std::size_t>(d)] = true;
      }
    }
  }
}

std::string Plan::describe() const {
  std::ostringstream out;
  out << "lanes:";
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    out << " [" << l << "] " << lanes_[l];
  }
  out << "\n\n";
  out << "ops (issue order; * = event recorded after the op):\n";
  for (int i = 0; i < graph_.num_ops(); ++i) {
    const Op& op = graph_.op(i);
    char head[64];
    std::snprintf(head, sizeof(head), "%3d%c %-12s lane=%d", i,
                  needs_event(i) ? '*' : ' ', op_kind_name(op.kind), op.lane);
    out << head << " " << op.name;
    if (!op.phase.empty()) out << " [" << op.phase << "]";
    if (op.fixed_s >= 0.0) out << " fixed=" << op.fixed_s << "s";
    if (op.wait_external) out << " waits-external";
    if (!op.deps.empty()) {
      out << " deps={";
      for (std::size_t d = 0; d < op.deps.size(); ++d) {
        if (d > 0) out << ",";
        out << op.deps[d];
        if (graph_.op(op.deps[d]).lane != op.lane) out << "(event)";
      }
      out << "}";
    }
    out << "\n";
  }
  if (graph_.num_buffers() > 0) {
    out << "\nbuffers (first-use..last-use op):\n";
    for (int b = 0; b < graph_.num_buffers(); ++b) {
      const BufferDef& def = graph_.buffer(b);
      const BufferLifetime& lt = lifetimes_[static_cast<std::size_t>(b)];
      char row[96];
      std::snprintf(row, sizeof(row), "  %-24s %14.0f B   %d..%d\n",
                    def.name.c_str(), def.bytes, lt.first_use, lt.last_use);
      out << row;
    }
    char peak[64];
    std::snprintf(peak, sizeof(peak), "peak modeled device bytes: %.0f\n",
                  peak_bytes_);
    out << peak;
  }
  return out.str();
}

}  // namespace cstf::exec
