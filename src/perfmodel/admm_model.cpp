#include "perfmodel/admm_model.hpp"

#include <algorithm>

#include "simgpu/cost_model.hpp"

namespace cstf::perfmodel {

AdmmIterationModel admm_iteration_model(double i_len, double rank) {
  AdmmIterationModel m;
  m.flops = 19.0 * i_len * rank + 2.0 * i_len * rank * rank;  // Eq. 3
  m.words = 22.0 * i_len * rank + rank * rank;                // Eq. 4
  m.intensity = m.flops / (m.words * simgpu::kWord);          // Eq. 5
  return m;
}

double admm_iteration_time(double i_len, double rank,
                           const simgpu::DeviceSpec& spec) {
  const AdmmIterationModel m = admm_iteration_model(i_len, rank);
  const double t_mem =
      m.words * simgpu::kWord / (spec.mem_bandwidth * spec.stream_bw_fraction);
  const double t_flops = m.flops / spec.peak_flops;
  return std::max(t_mem, t_flops);
}

simgpu::KernelStats scale_stats(const simgpu::KernelStats& stats,
                                double factor) {
  simgpu::KernelStats scaled = stats;
  scaled.flops *= factor;
  scaled.bytes_streamed *= factor;
  scaled.bytes_reused *= factor;
  scaled.bytes_random *= factor;
  scaled.host_link_bytes *= factor;
  scaled.working_set_bytes *= factor;
  scaled.atomic_ops *= factor;
  scaled.atomic_slots *= factor;
  scaled.parallel_items *= factor;
  return scaled;
}

double modeled_sequence_scaled(const std::vector<simgpu::KernelStats>& seq,
                               double factor,
                               const simgpu::DeviceSpec& spec) {
  std::vector<simgpu::KernelStats> scaled;
  scaled.reserve(seq.size());
  for (const auto& stats : seq) scaled.push_back(scale_stats(stats, factor));
  return simgpu::model_sequence(scaled, spec).total_s;
}

double modeled_time_scaled(const simgpu::Device& dev, double factor) {
  double total = 0.0;
  for (const auto& [name, stats] : dev.per_kernel()) {
    total += simgpu::model_time(scale_stats(stats, factor), dev.spec()).total_s;
  }
  return total;
}

}  // namespace cstf::perfmodel
