// The paper's analytical ADMM cost model (Section 3.3, Equations 3-5) and
// the stat-rescaling helper benches use to map scaled-analog meterings back
// to full-size datasets.
#pragma once

#include <vector>

#include "simgpu/counters.hpp"
#include "simgpu/device.hpp"
#include "simgpu/device_spec.hpp"

namespace cstf::perfmodel {

/// One ADMM inner iteration over an I x R factor (Eqs. 3-5).
struct AdmmIterationModel {
  double flops;       // W = 19*I*R + 2*I*R^2
  double words;       // Q = 22*I*R + R^2
  double intensity;   // I_ai = W / (Q * 8)  [flop/byte, doubles]
};

/// Evaluates Equations 3-5 for the given factor height I and rank R.
AdmmIterationModel admm_iteration_model(double i_len, double rank);

/// Roofline-predicted time of one ADMM inner iteration on `spec`, using the
/// closed-form W/Q (bandwidth-bound for the ranks the paper studies).
double admm_iteration_time(double i_len, double rank,
                           const simgpu::DeviceSpec& spec);

/// Scales all extensive quantities of a metered record by `factor`:
/// flops, every byte counter, the working set, and the available
/// parallelism. Launch counts and serial depth are intensive (per-launch /
/// per-chain) and are left unchanged. Used to map a scaled-analog run to the
/// full-size dataset it stands in for (see DESIGN.md §2).
simgpu::KernelStats scale_stats(const simgpu::KernelStats& stats,
                                double factor);

/// Models a kernel sequence at `factor` times its metered size: per-kernel
/// scale_stats, then per-kernel roofline, summed. The sequence counterpart
/// of modeled_time_scaled, keeping each kernel's own working set — how the
/// tree-vs-flat MTTKRP comparison and its bench columns are evaluated at
/// full dataset scale (see mttkrp/dimtree.hpp).
double modeled_sequence_scaled(const std::vector<simgpu::KernelStats>& seq,
                               double factor,
                               const simgpu::DeviceSpec& spec);

/// Models the device's accumulated record as if every kernel had processed
/// `factor`-times more data (per-kernel scale_stats, then per-kernel
/// roofline). This is how a scaled-analog run is converted into the modeled
/// time of the full-size dataset it stands in for.
double modeled_time_scaled(const simgpu::Device& dev, double factor);

}  // namespace cstf::perfmodel
