// CPU/GPU placement decision model — the paper's stated future work
// ("decision models to dynamically determine whether to execute computations
// on the CPU, on the GPU, or on both"), implemented over the same cost model
// that drives the benches.
//
// The cSTF outer iteration is a chain of phases (per mode: GRAM, MTTKRP,
// UPDATE, NORMALIZE). Each phase has a modeled cost on each device, and
// running consecutive phases on different devices forces the phase's live
// data across the host link. choose_placement solves the resulting
// shortest-path problem exactly (two-state dynamic program).
#pragma once

#include <string>
#include <vector>

#include "simgpu/device_spec.hpp"

namespace cstf::scheduler {

enum class Target { kCpu, kGpu };

const char* target_name(Target target);

/// One phase of the chain with its per-device cost and the bytes that must
/// cross the host link if the *next* phase runs on the other device.
struct PhaseCost {
  std::string name;
  double cpu_seconds = 0.0;
  double gpu_seconds = 0.0;
  double boundary_bytes = 0.0;
};

struct PlacementStep {
  std::string name;
  Target target = Target::kGpu;
  double seconds = 0.0;
};

struct PlacementPlan {
  std::vector<PlacementStep> steps;
  double total_seconds = 0.0;     // compute + transfers
  double transfer_seconds = 0.0;  // link share of the total

  /// True when the plan mixes devices (heterogeneous execution).
  bool hybrid() const;

  /// True when every step runs on `target`.
  bool all_on(Target target) const;
};

/// Chooses the optimal device per phase. `gpu` supplies the host-link cost;
/// the chain is assumed to start and end with the factors resident on the
/// host (an initial upload / final download is charged when the first/last
/// phases run on the GPU).
PlacementPlan choose_placement(const std::vector<PhaseCost>& phases,
                               const simgpu::DeviceSpec& gpu,
                               double initial_bytes = 0.0,
                               double final_bytes = 0.0);

}  // namespace cstf::scheduler
