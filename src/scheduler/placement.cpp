#include "scheduler/placement.hpp"

#include <array>
#include <limits>

#include "common/error.hpp"

namespace cstf::scheduler {

const char* target_name(Target target) {
  return target == Target::kCpu ? "CPU" : "GPU";
}

bool PlacementPlan::hybrid() const {
  if (steps.empty()) return false;
  for (const auto& step : steps) {
    if (step.target != steps.front().target) return true;
  }
  return false;
}

bool PlacementPlan::all_on(Target target) const {
  for (const auto& step : steps) {
    if (step.target != target) return false;
  }
  return true;
}

PlacementPlan choose_placement(const std::vector<PhaseCost>& phases,
                               const simgpu::DeviceSpec& gpu,
                               double initial_bytes, double final_bytes) {
  PlacementPlan plan;
  const std::size_t n = phases.size();
  if (n == 0) return plan;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto link = [&](double bytes) { return simgpu::transfer_time(gpu, bytes); };
  auto phase_cost = [&](std::size_t i, int d) {
    return d == 0 ? phases[i].cpu_seconds : phases[i].gpu_seconds;
  };

  // best[i][d]: minimal time through phase i ending on device d (0=CPU,
  // 1=GPU); from[i][d] backtracks the predecessor device.
  std::vector<std::array<double, 2>> best(n, {kInf, kInf});
  std::vector<std::array<int, 2>> from(n, {0, 0});

  best[0][0] = phase_cost(0, 0);
  best[0][1] = link(initial_bytes) + phase_cost(0, 1);
  for (std::size_t i = 1; i < n; ++i) {
    for (int d = 0; d < 2; ++d) {
      for (int prev = 0; prev < 2; ++prev) {
        const double hop = prev == d ? 0.0 : link(phases[i - 1].boundary_bytes);
        const double candidate = best[i - 1][prev] + hop + phase_cost(i, d);
        if (candidate < best[i][d]) {
          best[i][d] = candidate;
          from[i][d] = prev;
        }
      }
    }
  }

  // Final download when ending on the GPU.
  const double end_cpu = best[n - 1][0];
  const double end_gpu = best[n - 1][1] + link(final_bytes);
  int device = end_cpu <= end_gpu ? 0 : 1;
  plan.total_seconds = device == 0 ? end_cpu : end_gpu;

  // Backtrack the per-phase assignment.
  std::vector<int> assignment(n);
  for (std::size_t i = n; i-- > 0;) {
    assignment[i] = device;
    device = from[i][device];
  }

  plan.steps.reserve(n);
  double compute = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    PlacementStep step;
    step.name = phases[i].name;
    step.target = assignment[i] == 0 ? Target::kCpu : Target::kGpu;
    step.seconds = phase_cost(i, assignment[i]);
    compute += step.seconds;
    plan.steps.push_back(std::move(step));
  }
  plan.transfer_seconds = plan.total_seconds - compute;
  CSTF_CHECK(plan.transfer_seconds >= -1e-12);
  return plan;
}

}  // namespace cstf::scheduler
