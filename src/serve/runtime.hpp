// Shared serving runtime: the simulated device, the host thread pool, and
// the submission lock that serializes metered work.
//
// Both Device::record and ThreadPool::run are single-caller interfaces
// (the pool's job/epoch handshake and the device's counter maps are not
// synchronized for concurrent external callers) — which matches the real
// system being modeled: one GPU behind one in-order submission context.
// Serving threads therefore take `submit_mu` around every metered
// computation. Concurrency does not come from racing kernel launches; it
// comes from *batching* — coalescing many requests into one fused launch —
// which is the serving layer's entire performance thesis.
#pragma once

#include <mutex>

#include "parallel/thread_pool.hpp"
#include "simgpu/device.hpp"

namespace cstf::serve {

struct ServeRuntime {
  ServeRuntime(simgpu::Device& device_in, ThreadPool& pool_in)
      : device(device_in), pool(pool_in) {}

  ServeRuntime(const ServeRuntime&) = delete;
  ServeRuntime& operator=(const ServeRuntime&) = delete;

  simgpu::Device& device;
  ThreadPool& pool;

  /// Held for the duration of every metered serving computation (query or
  /// fold-in batch): one submission context, in-order, like a GPU stream.
  std::mutex submit_mu;
};

}  // namespace cstf::serve
