// Versioned, checksummed persistence of a factorized model (.cstf files).
//
// The factorization side of this library already had a bare KTensor
// checkpoint (cstf/ktensor.hpp); serving needs more: the constraint the
// model was trained under (fold-in must solve the *same* constrained
// subproblem), provenance metadata to audit what is in production, and
// enough integrity checking that a truncated or bit-flipped file is rejected
// with a typed error instead of deserializing into garbage.
//
// File layout (all integers little-endian as written by the host, 64-bit):
//
//   magic    "CSTFSRV\n"                     8 bytes
//   version  u32 (kModelFormatVersion)
//   header   u64 num_modes, u64 rank, u64 rows[num_modes]
//   meta     u32 prox kind, f64 prox params a/b, f64 final_fit,
//            u64 options_digest, u64 seed, u32 iterations,
//            u32 name length + bytes
//   payload  f64 lambda[rank], f64 factors (column-major, mode order)
//   footer   u64 FNV-1a checksum of every byte from magic through payload
//
// Writes are crash-consistent: the file is written to "<path>.tmp" and
// renamed into place only after a successful close, so a reader never
// observes a half-written model and a crash mid-save leaves any previous
// model intact.
#pragma once

#include <cstdint>
#include <string>

#include "common/binio.hpp"
#include "common/error.hpp"
#include "cstf/framework.hpp"
#include "cstf/ktensor.hpp"
#include "updates/prox.hpp"

namespace cstf::serve {

inline constexpr std::uint32_t kModelFormatVersion = 1;

// The typed status/error and the FNV-1a checksum live in common/binio.hpp
// (shared with the trainer-side CSTFCKPT checkpoint format); re-exported
// here so serving callers keep their historical spelling.
using cstf::fnv1a64;
using cstf::model_io_status_name;
using cstf::ModelIoError;
using cstf::ModelIoStatus;

/// Provenance + constraint metadata stored alongside the factors.
struct ModelMetadata {
  std::string name;  // store key / human label

  /// The constraint the model was trained under — fold-in replays it.
  ProxKind constraint = ProxKind::kNonNegative;
  real_t constraint_a = 0.0;
  real_t constraint_b = 0.0;

  real_t final_fit = 0.0;
  std::uint64_t options_digest = 0;  // digest_options() of the training run
  std::uint64_t seed = 0;
  std::uint32_t iterations = 0;

  Proximity prox() const {
    return Proximity::from_kind(constraint, constraint_a, constraint_b);
  }

  /// Captures the constraint triple from a configured operator.
  void set_constraint(const Proximity& p) {
    constraint = p.kind();
    constraint_a = p.param_a();
    constraint_b = p.param_b();
  }
};

/// A model plus its metadata — the unit of persistence and serving.
struct SavedModel {
  KTensor model;
  ModelMetadata meta;
};

/// Stable digest of the options that shaped a factorization (rank, scheme,
/// constraint, iterations, seed, scatter config) — recorded in the model file
/// so an operator can tell whether a serving model matches a config.
std::uint64_t digest_options(const FrameworkOptions& options);

/// Saves atomically (tmp + rename). Throws ModelIoError(kWriteFailed /
/// kOpenFailed); validates the model first (kInvalidModel).
void save_model(const SavedModel& saved, const std::string& path);

/// Loads and fully validates a model file; throws ModelIoError with the
/// matching status on any defect. Never returns a partially-initialized
/// model.
SavedModel load_model(const std::string& path);

}  // namespace cstf::serve
