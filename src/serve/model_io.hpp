// Versioned, checksummed persistence of a factorized model (.cstf files).
//
// The factorization side of this library already had a bare KTensor
// checkpoint (cstf/ktensor.hpp); serving needs more: the constraint the
// model was trained under (fold-in must solve the *same* constrained
// subproblem), provenance metadata to audit what is in production, and
// enough integrity checking that a truncated or bit-flipped file is rejected
// with a typed error instead of deserializing into garbage.
//
// File layout (all integers little-endian as written by the host, 64-bit):
//
//   magic    "CSTFSRV\n"                     8 bytes
//   version  u32 (kModelFormatVersion)
//   header   u64 num_modes, u64 rank, u64 rows[num_modes]
//   meta     u32 prox kind, f64 prox params a/b, f64 final_fit,
//            u64 options_digest, u64 seed, u32 iterations,
//            u32 name length + bytes
//   payload  f64 lambda[rank], f64 factors (column-major, mode order)
//   footer   u64 FNV-1a checksum of every byte from magic through payload
//
// Writes are crash-consistent: the file is written to "<path>.tmp" and
// renamed into place only after a successful close, so a reader never
// observes a half-written model and a crash mid-save leaves any previous
// model intact.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "cstf/framework.hpp"
#include "cstf/ktensor.hpp"
#include "updates/prox.hpp"

namespace cstf::serve {

inline constexpr std::uint32_t kModelFormatVersion = 1;

/// Why a model file was rejected — load failures are typed so callers (and
/// tests) can distinguish a missing file from corruption.
enum class ModelIoStatus {
  kOpenFailed,        // cannot open / create the file
  kBadMagic,          // not a .cstf model file
  kBadVersion,        // written by an incompatible format version
  kTruncated,         // ran out of bytes mid-structure
  kCorruptHeader,     // implausible mode count / rank / dims
  kChecksumMismatch,  // payload bytes do not hash to the stored checksum
  kInvalidModel,      // deserialized fine but KTensor::validate() failed
  kWriteFailed,       // save-side I/O error
};

const char* model_io_status_name(ModelIoStatus status);

/// Typed model-I/O failure; also a cstf::Error so existing catch sites keep
/// working.
class ModelIoError : public Error {
 public:
  ModelIoError(ModelIoStatus status, const std::string& what)
      : Error(what), status_(status) {}

  ModelIoStatus status() const { return status_; }

 private:
  ModelIoStatus status_;
};

/// Provenance + constraint metadata stored alongside the factors.
struct ModelMetadata {
  std::string name;  // store key / human label

  /// The constraint the model was trained under — fold-in replays it.
  ProxKind constraint = ProxKind::kNonNegative;
  real_t constraint_a = 0.0;
  real_t constraint_b = 0.0;

  real_t final_fit = 0.0;
  std::uint64_t options_digest = 0;  // digest_options() of the training run
  std::uint64_t seed = 0;
  std::uint32_t iterations = 0;

  Proximity prox() const {
    return Proximity::from_kind(constraint, constraint_a, constraint_b);
  }

  /// Captures the constraint triple from a configured operator.
  void set_constraint(const Proximity& p) {
    constraint = p.kind();
    constraint_a = p.param_a();
    constraint_b = p.param_b();
  }
};

/// A model plus its metadata — the unit of persistence and serving.
struct SavedModel {
  KTensor model;
  ModelMetadata meta;
};

/// Stable digest of the options that shaped a factorization (rank, scheme,
/// constraint, iterations, seed, scatter config) — recorded in the model file
/// so an operator can tell whether a serving model matches a config.
std::uint64_t digest_options(const FrameworkOptions& options);

/// FNV-1a 64-bit, the checksum used by the model format (exposed for tests).
std::uint64_t fnv1a64(const void* data, std::size_t len,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Saves atomically (tmp + rename). Throws ModelIoError(kWriteFailed /
/// kOpenFailed); validates the model first (kInvalidModel).
void save_model(const SavedModel& saved, const std::string& path);

/// Loads and fully validates a model file; throws ModelIoError with the
/// matching status on any defect. Never returns a partially-initialized
/// model.
SavedModel load_model(const std::string& path);

}  // namespace cstf::serve
