// Batched model queries: entry reconstruction and per-mode top-k scoring.
//
// A CP model answers "what is X_hat at (i_1, ..., i_N)?" with a fused
// gather + Hadamard-dot over the rank: pull one row from each factor,
// multiply them elementwise with lambda, and sum. Serving does this for a
// *batch* of coordinates in one launch — the per-query work (N R gathered
// words, ~N R flops) is far too small to amortize a launch on its own,
// which is the same launch-amortization argument the paper makes for
// operation fusion, applied to inference.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/model_store.hpp"
#include "serve/runtime.hpp"
#include "serve/serve_stats.hpp"

namespace cstf::serve {

/// One scored row of a top-k query.
struct ScoredEntry {
  index_t index = 0;
  real_t score = 0.0;
};

class QueryEngine {
 public:
  explicit QueryEngine(ServeRuntime& runtime) : runtime_(runtime) {
    latency_.attach(
        metrics::MetricsRegistry::global().histogram("serve.query.latency"));
  }

  /// Batched entry reconstruction. `coords` holds `batch` coordinate tuples,
  /// row-major (query b's mode-m index at coords[b * num_modes + m]); every
  /// index is bounds-checked. Returns one model value per query:
  ///   X_hat(i) = sum_r lambda_r * prod_m H_m(i_m, r).
  std::vector<real_t> predict(const ServableModel& model,
                              const std::vector<index_t>& coords);

  /// Top-k rows of `target_mode` for the partial coordinate `fixed_coords`
  /// (one index per mode; the target mode's entry is ignored): scores every
  /// row i of H_target as X_hat(..., i, ...) and returns the k largest,
  /// sorted descending (ties by lower index).
  std::vector<ScoredEntry> top_k(const ServableModel& model, int target_mode,
                                 const std::vector<index_t>& fixed_coords,
                                 int k);

  /// Per-call latency (one sample per predict()/top_k() invocation).
  LatencyRecorder& latency() { return latency_; }

 private:
  ServeRuntime& runtime_;
  LatencyRecorder latency_;
};

}  // namespace cstf::serve
