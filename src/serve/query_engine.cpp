#include "serve/query_engine.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "la/blas.hpp"
#include "parallel/parallel_for.hpp"

namespace cstf::serve {

namespace {

void check_coord(const ServableModel& model, int mode, index_t idx) {
  CSTF_CHECK_MSG(idx >= 0 && idx < model.mode_size(mode),
                 "serve query: coordinate " + std::to_string(idx) +
                     " out of range for mode " + std::to_string(mode) +
                     " (size " + std::to_string(model.mode_size(mode)) + ")");
}

}  // namespace

std::vector<real_t> QueryEngine::predict(const ServableModel& model,
                                         const std::vector<index_t>& coords) {
  const int modes = model.num_modes();
  const index_t rank = model.rank();
  CSTF_CHECK_MSG(modes > 0 && coords.size() % static_cast<std::size_t>(modes) ==
                                  0,
                 "serve query: coords length must be a multiple of num_modes");
  const auto batch =
      static_cast<index_t>(coords.size() / static_cast<std::size_t>(modes));
  for (index_t b = 0; b < batch; ++b) {
    for (int m = 0; m < modes; ++m) {
      check_coord(model, m,
                  coords[static_cast<std::size_t>(b) *
                             static_cast<std::size_t>(modes) +
                         static_cast<std::size_t>(m)]);
    }
  }

  std::vector<real_t> out(static_cast<std::size_t>(batch), 0.0);
  if (batch == 0) return out;

  Timer timer;
  {
    std::lock_guard<std::mutex> submit(runtime_.submit_mu);
    simgpu::ScopedPhase scope(runtime_.device.tracer(), phase::kServeQuery);
    const KTensor& kt = model.model();
    Timer kernel_timer;
    // Fused gather + Hadamard-dot: one pass per query, no materialized
    // Khatri-Rao rows.
    parallel_for(runtime_.pool, 0, batch, [&](index_t b) {
      const index_t* c =
          coords.data() + static_cast<std::size_t>(b) *
                              static_cast<std::size_t>(modes);
      real_t value = 0.0;
      for (index_t r = 0; r < rank; ++r) {
        real_t term = kt.lambda[static_cast<std::size_t>(r)];
        for (int m = 0; m < modes; ++m) {
          term *= kt.factors[static_cast<std::size_t>(m)](c[m], r);
        }
        value += term;
      }
      out[static_cast<std::size_t>(b)] = value;
    });

    simgpu::KernelStats stats;
    const double nmodes = static_cast<double>(modes);
    const double nbatch = static_cast<double>(batch);
    const double nrank = static_cast<double>(rank);
    stats.flops = nbatch * nrank * (nmodes + 1.0);
    // Factor-row gathers are strided (column-major factors: one row = R
    // words, each a cache line apart) — random traffic, exactly the access
    // pattern of an MTTKRP gather.
    stats.bytes_random = nbatch * nmodes * nrank * simgpu::kWord;
    stats.bytes_streamed = (nbatch * nmodes + nbatch) * simgpu::kWord;
    stats.bytes_reused = nbatch * nrank * simgpu::kWord;  // lambda
    stats.working_set_bytes = nrank * simgpu::kWord;
    stats.parallel_items = nbatch;
    stats.launches = 1;
    runtime_.device.record("serve_predict_batch", stats,
                           kernel_timer.seconds());
  }
  latency_.record(timer.seconds());
  return out;
}

std::vector<ScoredEntry> QueryEngine::top_k(
    const ServableModel& model, int target_mode,
    const std::vector<index_t>& fixed_coords, int k) {
  const int modes = model.num_modes();
  const index_t rank = model.rank();
  CSTF_CHECK_MSG(target_mode >= 0 && target_mode < modes,
                 "serve top-k: bad target mode");
  CSTF_CHECK_MSG(fixed_coords.size() == static_cast<std::size_t>(modes),
                 "serve top-k: fixed_coords needs one index per mode");
  CSTF_CHECK_MSG(k > 0, "serve top-k: k must be positive");
  for (int m = 0; m < modes; ++m) {
    if (m == target_mode) continue;
    check_coord(model, m, fixed_coords[static_cast<std::size_t>(m)]);
  }

  const KTensor& kt = model.model();
  const Matrix& target = kt.factors[static_cast<std::size_t>(target_mode)];
  const index_t nrows = target.rows();
  std::vector<real_t> scores(static_cast<std::size_t>(nrows), 0.0);

  Timer timer;
  {
    std::lock_guard<std::mutex> submit(runtime_.submit_mu);
    simgpu::ScopedPhase scope(runtime_.device.tracer(), phase::kServeQuery);
    Timer kernel_timer;
    // w_r = lambda_r * prod_{m != target} H_m(i_m, r); scores = H_target * w.
    std::vector<real_t> w(static_cast<std::size_t>(rank));
    for (index_t r = 0; r < rank; ++r) {
      real_t v = kt.lambda[static_cast<std::size_t>(r)];
      for (int m = 0; m < modes; ++m) {
        if (m == target_mode) continue;
        v *= kt.factors[static_cast<std::size_t>(m)](
            fixed_coords[static_cast<std::size_t>(m)], r);
      }
      w[static_cast<std::size_t>(r)] = v;
    }
    parallel_for_blocked(runtime_.pool, 0, nrows,
                         [&](index_t lo, index_t hi) {
                           for (index_t r = 0; r < rank; ++r) {
                             const real_t* col = target.col(r);
                             const real_t wr = w[static_cast<std::size_t>(r)];
                             for (index_t i = lo; i < hi; ++i) {
                               scores[static_cast<std::size_t>(i)] +=
                                   wr * col[i];
                             }
                           }
                         });

    simgpu::KernelStats stats;
    const double ni = static_cast<double>(nrows);
    const double nrank = static_cast<double>(rank);
    stats.flops = 2.0 * ni * nrank +
                  static_cast<double>(modes) * nrank;
    stats.bytes_streamed = (ni * nrank + ni) * simgpu::kWord;
    stats.bytes_random =
        static_cast<double>(modes - 1) * nrank * simgpu::kWord;
    stats.parallel_items = ni;
    stats.launches = 1;
    runtime_.device.record("serve_topk_score", stats, kernel_timer.seconds());
  }

  const auto kk = static_cast<std::size_t>(
      std::min<index_t>(static_cast<index_t>(k), nrows));
  std::vector<ScoredEntry> entries(static_cast<std::size_t>(nrows));
  for (index_t i = 0; i < nrows; ++i) {
    entries[static_cast<std::size_t>(i)] = {i,
                                            scores[static_cast<std::size_t>(
                                                i)]};
  }
  const auto better = [](const ScoredEntry& a, const ScoredEntry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.index < b.index;
  };
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<std::ptrdiff_t>(kk),
                    entries.end(), better);
  entries.resize(kk);
  latency_.record(timer.seconds());
  return entries;
}

}  // namespace cstf::serve
