#include "serve/fold_in.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "common/digest.hpp"
#include "la/cholesky.hpp"
#include "parallel/parallel_for.hpp"
#include "simgpu/dblas.hpp"
#include "simgpu/fault.hpp"

namespace cstf::serve {

void FoldInEngine::check_request(const ServableModel& model,
                                 const FoldInRequest& req) const {
  const int modes = model.num_modes();
  CSTF_CHECK_MSG(req.mode >= 0 && req.mode < modes,
                 "fold-in: bad mode " << req.mode);
  CSTF_CHECK_MSG(modes >= 2, "fold-in needs at least two modes");
  const auto width = static_cast<std::size_t>(modes - 1);
  CSTF_CHECK_MSG(!req.values.empty(), "fold-in: request has no observations");
  CSTF_CHECK_MSG(req.coords.size() == req.values.size() * width,
                 "fold-in: coords/values size mismatch");
  std::size_t pos = 0;
  for (std::size_t j = 0; j < req.values.size(); ++j) {
    for (int m = 0; m < modes; ++m) {
      if (m == req.mode) continue;
      const index_t idx = req.coords[pos++];
      CSTF_CHECK_MSG(idx >= 0 && idx < model.mode_size(m),
                     "fold-in: coordinate " << idx << " out of range for mode "
                                            << m);
    }
  }
}

FoldInResult FoldInEngine::fold_in(const ServableModel& model,
                                   const FoldInRequest& req) {
  std::vector<FoldInResult> results = fold_in_batch(model, {req});
  return std::move(results.front());
}

std::vector<FoldInResult> FoldInEngine::fold_in_batch(
    const ServableModel& model, const std::vector<FoldInRequest>& reqs) {
  CSTF_CHECK_MSG(!reqs.empty(), "fold-in: empty batch");
  const int mode = reqs.front().mode;
  for (const FoldInRequest& req : reqs) {
    CSTF_CHECK_MSG(req.mode == mode,
                   "fold-in: batch mixes modes " << mode << " and "
                                                 << req.mode);
    check_request(model, req);
  }

  const index_t rank = model.rank();
  const auto batch = static_cast<index_t>(reqs.size());

  Timer timer;
  std::vector<FoldInResult> results(reqs.size());
  {
    std::lock_guard<std::mutex> submit(runtime_.submit_mu);
    // One tracer phase spans the whole fused solve (the plan's ops carry no
    // phases of their own), matching the pre-plan begin/end pattern exactly.
    simgpu::ScopedPhase scope(runtime_.device.tracer(), phase::kServeFoldIn);

    ws_.model = &model;
    ws_.reqs = &reqs;
    ws_.mode = mode;
    ws_.gram = nullptr;
    ensure_executor(model, mode, batch);
    executor_->run();

    for (index_t b = 0; b < batch; ++b) {
      FoldInResult& result = results[static_cast<std::size_t>(b)];
      result.row.resize(static_cast<std::size_t>(rank));
      for (index_t r = 0; r < rank; ++r) {
        result.row[static_cast<std::size_t>(r)] = ws_.h(b, r);
      }
      result.diagnostics = ws_.diagnostics;
      result.generation = model.generation();
    }
  }
  latency_.record(timer.seconds());
  return results;
}

exec::PlanKey FoldInEngine::plan_key(const ServableModel& model, int mode,
                                     index_t batch) const {
  // Generation pins the snapshot (a hot-swap must recompile: the Gram cache
  // pointer and factors change); mode and batch shape size the buffers; the
  // solve options add/remove the gram-build op and flip the inner solver.
  DigestBuilder tensor_id;
  tensor_id.u64(model.generation())
      .u64(static_cast<std::uint64_t>(mode))
      .u64(static_cast<std::uint64_t>(batch));
  DigestBuilder opts;
  opts.boolean(options_.use_cached_gram)
      .boolean(options_.preinversion)
      .u64(static_cast<std::uint64_t>(options_.inner_iterations));
  exec::PlanKey key;
  key.tensor_id = tensor_id.value();
  key.rank = static_cast<std::uint64_t>(model.rank());
  key.options_digest = opts.value();
  return key;
}

exec::Plan FoldInEngine::compile_plan(index_t plan_rank, index_t plan_batch) {
  FoldInEngine* self = this;
  exec::FoldInSpec spec;
  spec.rank = plan_rank;
  spec.batch_rows = plan_batch;
  spec.build_gram = !options_.use_cached_gram;

  // Right-hand sides: row b of M is sum_j value_j * lambda .* (hadamard of
  // the other modes' rows at coordinate j) — the sparse-MTTKRP of the new
  // slice, one fused gather pass per request.
  spec.rhs = [self](exec::ExecContext& ctx) {
    const ServableModel& model = *self->ws_.model;
    const std::vector<FoldInRequest>& reqs = *self->ws_.reqs;
    const int modes = model.num_modes();
    const int mode = self->ws_.mode;
    const index_t rank = model.rank();
    const auto batch = static_cast<index_t>(reqs.size());
    const KTensor& kt = model.model();

    Matrix& m = self->ws_.m;
    m.resize(batch, rank);
    m.set_all(0.0);
    double nnz_total = 0.0;
    for (const FoldInRequest& req : reqs) {
      nnz_total += static_cast<double>(req.values.size());
    }
    Timer rhs_timer;
    parallel_for(
        self->runtime_.pool, 0, batch,
        [&](index_t b) {
          const FoldInRequest& req = reqs[static_cast<std::size_t>(b)];
          const auto width = static_cast<std::size_t>(modes - 1);
          for (std::size_t j = 0; j < req.values.size(); ++j) {
            const index_t* c = req.coords.data() + j * width;
            const real_t v = req.values[j];
            for (index_t r = 0; r < rank; ++r) {
              real_t term = v * kt.lambda[static_cast<std::size_t>(r)];
              std::size_t pos = 0;
              for (int n = 0; n < modes; ++n) {
                if (n == mode) continue;
                term *= kt.factors[static_cast<std::size_t>(n)](c[pos++], r);
              }
              m(b, r) += term;
            }
          }
        },
        /*grain=*/1);
    simgpu::KernelStats stats;
    const double nmodes = static_cast<double>(modes);
    const double nrank = static_cast<double>(rank);
    stats.flops = nnz_total * nrank * (nmodes + 1.0);
    stats.bytes_random = nnz_total * (nmodes - 1.0) * nrank * simgpu::kWord;
    stats.bytes_streamed =
        (nnz_total * nmodes + static_cast<double>(batch) * nrank) *
        simgpu::kWord;
    stats.parallel_items = static_cast<double>(batch);
    stats.launches = 1;
    ctx.device.record("serve_foldin_rhs", stats, rhs_timer.seconds(),
                      ctx.stream);
  };

  // Per-call Gram rebuild through the metered solver — the baseline the
  // serving bench measures against (the cached path has no such op: the
  // snapshot's pre-factorized Gram is resolved inside the solve).
  if (spec.build_gram) {
    spec.gram_build = [self](exec::ExecContext& ctx) {
      const ServableModel& model = *self->ws_.model;
      const index_t rank = model.rank();
      AdmmGram& rebuilt = self->ws_.rebuilt;
      rebuilt = AdmmGram{};
      const Matrix& s = model.fold_in_system(self->ws_.mode);
      for (index_t r = 0; r < rank; ++r) rebuilt.rho += s(r, r);
      rebuilt.rho /= static_cast<real_t>(rank);
      if (rebuilt.rho <= 0.0) rebuilt.rho = 1.0;
      Matrix s_loaded = s;
      la::add_diagonal(s_loaded, rebuilt.rho);
      simgpu::dpotrf(ctx.device, s_loaded, rebuilt.l);
      if (self->options_.preinversion) {
        simgpu::dpotri(ctx.device, rebuilt.l, rebuilt.inverse);
      }
      self->ws_.gram = &rebuilt;
    };
  }

  spec.solve = [self](exec::ExecContext& ctx) {
    const ServableModel& model = *self->ws_.model;
    const index_t rank = model.rank();
    const auto batch = static_cast<index_t>(self->ws_.reqs->size());
    if (self->options_.use_cached_gram) {
      // One Cholesky per published snapshot, amortized over every request.
      CSTF_CHECK_MSG(
          model.preinverted() == self->options_.preinversion,
          "fold-in: snapshot Gram cache pre-inversion does not match options");
      self->ws_.gram = &model.fold_in_gram(self->ws_.mode);
    }

    AdmmOptions admm_options;
    admm_options.prox = model.meta().prox();
    admm_options.inner_iterations = self->options_.inner_iterations;
    admm_options.tolerance = 0.0;  // fixed iterations: batch rows stay
                                   // bit-identical to single-row solves
    admm_options.operation_fusion = true;
    admm_options.preinversion = self->options_.preinversion;
    AdmmUpdate admm(admm_options);

    Matrix& h = self->ws_.h;
    h.resize(batch, rank);
    h.set_all(0.0);
    ModeState state;  // cold start: fresh dual per batch, deterministic
    admm.update_with_gram(ctx.device, *self->ws_.gram, self->ws_.m, h, state);
    self->ws_.diagnostics = admm.last();
  };

  return exec::Planner::compile_fold_in(spec);
}

void FoldInEngine::ensure_executor(const ServableModel& model, int mode,
                                   index_t batch) {
  std::shared_ptr<const exec::Plan> plan =
      plan_cache_.get(plan_key(model, mode, batch),
                      [&] { return compile_plan(model.rank(), batch); });
  if (executor_ == nullptr || &executor_->plan() != plan.get()) {
    executor_ =
        std::make_unique<exec::Executor>(runtime_.device, std::move(plan));
  }
}

FoldInBatcher::FoldInBatcher(FoldInEngine& engine, ModelStore& store,
                             std::string model_name, Options options)
    : engine_(engine), store_(store), model_name_(std::move(model_name)),
      options_(options) {
  CSTF_CHECK_MSG(options_.max_batch > 0, "fold-in batcher: max_batch == 0");
  auto& reg = metrics::MetricsRegistry::global();
  m_queue_depth_ = reg.gauge("serve.batcher.queue_depth");
  latency_.attach(reg.histogram("serve.fold_in.latency"));
  batch_sizes_.attach(reg.histogram("serve.batch.size", {},
                                    metrics::default_count_bounds()));
  if (options_.background) {
    collector_ = std::thread([this] { collector_loop(); });
  }
}

FoldInBatcher::FoldInBatcher(FoldInEngine& engine, ModelStore& store,
                             std::string model_name)
    : FoldInBatcher(engine, store, std::move(model_name), Options()) {}

FoldInBatcher::~FoldInBatcher() { stop(); }

std::future<FoldInResult> FoldInBatcher::submit(FoldInRequest req) {
  Pending pending;
  const double timeout_s =
      req.timeout_s > 0.0 ? req.timeout_s : options_.default_deadline_s;
  pending.request = std::move(req);
  pending.enqueue_s = epoch_.seconds();
  if (timeout_s > 0.0) pending.deadline_s = pending.enqueue_s + timeout_s;
  std::future<FoldInResult> future = pending.promise.get_future();
  reliability_.submitted.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    CSTF_CHECK_MSG(!stopping_, "fold-in batcher: submit after stop");
    if (options_.max_queue > 0 && queue_.size() >= options_.max_queue) {
      // Load shedding: fail fast at admission rather than letting the queue
      // (and every queued request's latency) grow without bound.
      reliability_.shed.fetch_add(1, std::memory_order_relaxed);
      pending.promise.set_exception(std::make_exception_ptr(ShedError(
          "fold-in batcher: admission queue full (" +
          std::to_string(options_.max_queue) + " requests); request shed")));
      return future;
    }
    queue_.push_back(std::move(pending));
    publish_queue_depth();
  }
  cv_.notify_all();
  return future;
}

std::size_t FoldInBatcher::flush() {
  std::size_t served = 0;
  for (;;) {
    std::vector<Pending> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const std::size_t take = std::min(options_.max_batch, queue_.size());
      if (take == 0) break;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_[i]));
      }
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(take));
      publish_queue_depth();
    }
    served += drain_and_solve(std::move(batch));
  }
  return served;
}

void FoldInBatcher::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopped; nothing queued can remain after the first stop.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (collector_.joinable()) collector_.join();
  std::vector<Pending> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphaned.swap(queue_);
    publish_queue_depth();
  }
  for (Pending& p : orphaned) {
    p.promise.set_exception(std::make_exception_ptr(
        Error("fold-in batcher stopped before serving the request")));
  }
}

void FoldInBatcher::publish_queue_depth() {
  m_queue_depth_->set(static_cast<double>(queue_.size()));
}

void FoldInBatcher::collector_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    // Linger: give concurrent submitters a window to join this batch.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.max_linger_s));
    cv_.wait_until(lock, deadline, [this] {
      return stopping_ || queue_.size() >= options_.max_batch;
    });
    if (stopping_) return;
    std::vector<Pending> batch;
    const std::size_t take = std::min(options_.max_batch, queue_.size());
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_[i]));
    }
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(take));
    publish_queue_depth();
    lock.unlock();
    drain_and_solve(std::move(batch));
    lock.lock();
  }
}

std::vector<FoldInResult> FoldInBatcher::solve_with_retries(
    const ServableModel& model, const std::vector<FoldInRequest>& group) {
  for (int attempt = 0;; ++attempt) {
    try {
      return engine_.fold_in_batch(model, group);
    } catch (const simgpu::FaultError& e) {
      if (!e.transient() || attempt >= options_.max_retries) throw;
      reliability_.retries.fetch_add(1, std::memory_order_relaxed);
      if (options_.retry_backoff_s > 0.0) {
        const double backoff_s =
            options_.retry_backoff_s * static_cast<double>(1 << attempt);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(backoff_s));
      }
    }
  }
}

std::size_t FoldInBatcher::drain_and_solve(std::vector<Pending> batch) {
  if (batch.empty()) return 0;

  // Expire requests whose deadline passed while they waited in the queue —
  // solving them would waste a batch slot on an answer nobody reads.
  const double now_s = epoch_.seconds();
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (Pending& p : batch) {
    if (p.deadline_s > 0.0 && now_s > p.deadline_s) {
      reliability_.timed_out.fetch_add(1, std::memory_order_relaxed);
      p.promise.set_exception(std::make_exception_ptr(DeadlineError(
          "fold-in batcher: request deadline expired in queue")));
    } else {
      live.push_back(std::move(p));
    }
  }
  batch = std::move(live);
  if (batch.empty()) return 0;

  ServableModelPtr model = store_.get(model_name_);
  bool stale_snapshot = false;
  if (model == nullptr && options_.degraded_fallback) {
    // Degraded mode: the model left the store (hot-swap in flight, or an
    // unpublish) but we served it before — a stale generation beats failing
    // the whole batch. The result's `generation` tells the client.
    std::lock_guard<std::mutex> lock(model_mu_);
    model = last_good_;
    stale_snapshot = model != nullptr;
  }
  if (model == nullptr) {
    for (Pending& p : batch) {
      reliability_.failed.fetch_add(1, std::memory_order_relaxed);
      p.promise.set_exception(std::make_exception_ptr(
          Error("fold-in batcher: model '" + model_name_ +
                "' is not in the store")));
    }
    return 0;
  }

  // Group by mode: each group becomes one fused solve.
  std::map<int, std::vector<std::size_t>> by_mode;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    by_mode[batch[i].request.mode].push_back(i);
  }
  std::size_t served = 0;
  bool any_success = false;
  for (const auto& [mode, indices] : by_mode) {
    std::vector<FoldInRequest> group;
    group.reserve(indices.size());
    for (std::size_t i : indices) group.push_back(batch[i].request);
    try {
      std::vector<FoldInResult> results = solve_with_retries(*model, group);
      const double done_s = epoch_.seconds();
      for (std::size_t g = 0; g < indices.size(); ++g) {
        Pending& p = batch[indices[g]];
        latency_.record(done_s - p.enqueue_s);
        p.promise.set_value(std::move(results[g]));
      }
      batch_sizes_.record(static_cast<std::int64_t>(indices.size()));
      served += indices.size();
      any_success = true;
      reliability_.served.fetch_add(
          static_cast<std::int64_t>(indices.size()),
          std::memory_order_relaxed);
      if (stale_snapshot) {
        reliability_.degraded.fetch_add(
            static_cast<std::int64_t>(indices.size()),
            std::memory_order_relaxed);
      }
    } catch (...) {
      if (!options_.degraded_fallback) {
        for (std::size_t i : indices) {
          reliability_.failed.fetch_add(1, std::memory_order_relaxed);
          batch[i].promise.set_exception(std::current_exception());
        }
        continue;
      }
      // The fused solve died even after retries (a fatal fault, or a
      // request-triggered failure). Isolate: re-solve each request alone so
      // one poisoned request cannot take down its batchmates.
      for (std::size_t i : indices) {
        Pending& p = batch[i];
        try {
          std::vector<FoldInResult> one =
              solve_with_retries(*model, {p.request});
          latency_.record(epoch_.seconds() - p.enqueue_s);
          p.promise.set_value(std::move(one.front()));
          ++served;
          any_success = true;
          reliability_.served.fetch_add(1, std::memory_order_relaxed);
          reliability_.degraded.fetch_add(1, std::memory_order_relaxed);
          batch_sizes_.record(1);
        } catch (...) {
          reliability_.failed.fetch_add(1, std::memory_order_relaxed);
          p.promise.set_exception(std::current_exception());
        }
      }
    }
  }
  if (any_success && !stale_snapshot) {
    std::lock_guard<std::mutex> lock(model_mu_);
    last_good_ = model;
  }
  return served;
}

}  // namespace cstf::serve
