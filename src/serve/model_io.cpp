#include "serve/model_io.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/digest.hpp"
#include "mttkrp/scatter.hpp"

namespace cstf::serve {

namespace {

constexpr char kMagic[8] = {'C', 'S', 'T', 'F', 'S', 'R', 'V', '\n'};
constexpr std::uint64_t kMaxRank = 1u << 20;
constexpr std::uint32_t kMaxNameBytes = 1u << 16;

[[noreturn]] void fail(ModelIoStatus status, const std::string& what) {
  throw_model_io(status, what);
}

}  // namespace

std::uint64_t digest_options(const FrameworkOptions& options) {
  // Hash the fields that change what model a run produces. Field order is
  // part of the digest definition; bump kModelFormatVersion if it changes.
  DigestBuilder d;
  d.u64(static_cast<std::uint64_t>(options.rank))
      .u64(static_cast<std::uint64_t>(options.max_iterations))
      .f64(options.fit_tolerance)
      .u64(options.seed)
      .u64(static_cast<std::uint64_t>(options.scheme))
      .u64(static_cast<std::uint64_t>(options.prox.kind()))
      .f64(options.prox.param_a())
      .f64(options.prox.param_b())
      .u64(static_cast<std::uint64_t>(options.admm_inner_iterations))
      .u64(static_cast<std::uint64_t>(options.blco_block_capacity))
      .u64(static_cast<std::uint64_t>(options.scatter.strategy))
      .boolean(options.scatter.deterministic);
  return d.value();
}

void save_model(const SavedModel& saved, const std::string& path) {
  try {
    saved.model.validate();
  } catch (const Error& e) {
    fail(ModelIoStatus::kInvalidModel, e.what());
  }
  const KTensor& model = saved.model;
  const ModelMetadata& meta = saved.meta;
  if (meta.name.size() > kMaxNameBytes) {
    fail(ModelIoStatus::kWriteFailed, "model name too long");
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) fail(ModelIoStatus::kOpenFailed, "cannot create " + tmp);
    HashingWriter w(out);
    w.write(kMagic, sizeof(kMagic));
    w.write_pod(kModelFormatVersion);
    w.write_pod(static_cast<std::uint64_t>(model.num_modes()));
    w.write_pod(static_cast<std::uint64_t>(model.rank()));
    for (const Matrix& f : model.factors) {
      w.write_pod(static_cast<std::uint64_t>(f.rows()));
    }
    w.write_pod(static_cast<std::uint32_t>(meta.constraint));
    w.write_pod(static_cast<double>(meta.constraint_a));
    w.write_pod(static_cast<double>(meta.constraint_b));
    w.write_pod(static_cast<double>(meta.final_fit));
    w.write_pod(meta.options_digest);
    w.write_pod(meta.seed);
    w.write_pod(meta.iterations);
    w.write_pod(static_cast<std::uint32_t>(meta.name.size()));
    if (!meta.name.empty()) w.write(meta.name.data(), meta.name.size());
    w.write(model.lambda.data(), model.lambda.size() * sizeof(real_t));
    for (const Matrix& f : model.factors) {
      w.write(f.data(), static_cast<std::size_t>(f.size()) * sizeof(real_t));
    }
    const std::uint64_t checksum = w.digest();
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    out.close();
    if (!out.good()) {
      std::remove(tmp.c_str());
      fail(ModelIoStatus::kWriteFailed, "write failed for " + tmp);
    }
  }
  commit_tmp_file(tmp, path);
}

SavedModel load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) fail(ModelIoStatus::kOpenFailed, "cannot open " + path);
  HashingReader r(in, path);

  char magic[sizeof(kMagic)];
  r.read(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    fail(ModelIoStatus::kBadMagic, path + " is not a .cstf model file");
  }
  const auto version = r.read_pod<std::uint32_t>("version");
  if (version != kModelFormatVersion) {
    fail(ModelIoStatus::kBadVersion,
         path + ": format version " + std::to_string(version) +
             " (expected " + std::to_string(kModelFormatVersion) + ")");
  }

  const auto modes = r.read_pod<std::uint64_t>("mode count");
  const auto rank = r.read_pod<std::uint64_t>("rank");
  if (modes < 1 || modes > static_cast<std::uint64_t>(kMaxModes)) {
    fail(ModelIoStatus::kCorruptHeader,
         path + ": implausible mode count " + std::to_string(modes));
  }
  if (rank < 1 || rank > kMaxRank) {
    fail(ModelIoStatus::kCorruptHeader,
         path + ": implausible rank " + std::to_string(rank));
  }
  std::vector<std::uint64_t> rows(static_cast<std::size_t>(modes));
  for (auto& v : rows) {
    v = r.read_pod<std::uint64_t>("factor height");
    if (v < 1 || v > (1ull << 40)) {
      fail(ModelIoStatus::kCorruptHeader,
           path + ": implausible factor height " + std::to_string(v));
    }
  }

  SavedModel saved;
  const auto kind = r.read_pod<std::uint32_t>("constraint kind");
  if (kind > static_cast<std::uint32_t>(ProxKind::kSmooth)) {
    fail(ModelIoStatus::kCorruptHeader,
         path + ": unknown constraint kind " + std::to_string(kind));
  }
  saved.meta.constraint = static_cast<ProxKind>(kind);
  saved.meta.constraint_a = r.read_pod<double>("constraint param a");
  saved.meta.constraint_b = r.read_pod<double>("constraint param b");
  saved.meta.final_fit = r.read_pod<double>("final fit");
  saved.meta.options_digest = r.read_pod<std::uint64_t>("options digest");
  saved.meta.seed = r.read_pod<std::uint64_t>("seed");
  saved.meta.iterations = r.read_pod<std::uint32_t>("iterations");
  const auto name_len = r.read_pod<std::uint32_t>("name length");
  if (name_len > kMaxNameBytes) {
    fail(ModelIoStatus::kCorruptHeader,
         path + ": implausible name length " + std::to_string(name_len));
  }
  saved.meta.name.resize(name_len);
  if (name_len > 0) r.read(saved.meta.name.data(), name_len, "name");

  saved.model.lambda.resize(static_cast<std::size_t>(rank));
  r.read(saved.model.lambda.data(),
         saved.model.lambda.size() * sizeof(real_t), "lambda");
  for (std::uint64_t m = 0; m < modes; ++m) {
    Matrix f(static_cast<index_t>(rows[static_cast<std::size_t>(m)]),
             static_cast<index_t>(rank));
    r.read(f.data(), static_cast<std::size_t>(f.size()) * sizeof(real_t),
           "factor data");
    saved.model.factors.push_back(std::move(f));
  }

  const std::uint64_t expected = r.digest();
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(stored)) {
    fail(ModelIoStatus::kTruncated, path + ": truncated reading checksum");
  }
  if (stored != expected) {
    fail(ModelIoStatus::kChecksumMismatch,
         path + ": checksum mismatch (file is corrupt)");
  }

  try {
    saved.model.validate();
  } catch (const Error& e) {
    fail(ModelIoStatus::kInvalidModel, e.what());
  }
  return saved;
}

}  // namespace cstf::serve
