#include "serve/serve_stats.hpp"

#include <algorithm>
#include <cmath>

namespace cstf::serve {

namespace {

/// Nearest-rank quantile of an already-sorted sample vector.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace

void LatencyRecorder::record(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(seconds);
  if (mirror_ != nullptr) mirror_->observe(seconds);
}

LatencySummary LatencyRecorder::summary() const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = samples_;
  }
  std::sort(sorted.begin(), sorted.end());
  LatencySummary s;
  s.count = static_cast<std::int64_t>(sorted.size());
  if (sorted.empty()) return s;
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean_s = sum / static_cast<double>(sorted.size());
  s.p50_s = sorted_quantile(sorted, 0.50);
  s.p95_s = sorted_quantile(sorted, 0.95);
  s.p99_s = sorted_quantile(sorted, 0.99);
  s.max_s = sorted.back();
  return s;
}

double LatencyRecorder::quantile(double q) const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = samples_;
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted_quantile(sorted, q);
}

std::int64_t LatencyRecorder::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(samples_.size());
}

void LatencyRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
}

void LatencyRecorder::attach(metrics::Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  mirror_ = h;
}

void BatchSizeRecorder::record(std::int64_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[batch_size];
  ++batches_;
  requests_ += batch_size;
  if (mirror_ != nullptr) mirror_->observe(static_cast<double>(batch_size));
}

std::map<std::int64_t, std::int64_t> BatchSizeRecorder::histogram() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

std::int64_t BatchSizeRecorder::batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

std::int64_t BatchSizeRecorder::requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_;
}

double BatchSizeRecorder::mean_batch_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_ == 0
             ? 0.0
             : static_cast<double>(requests_) / static_cast<double>(batches_);
}

void BatchSizeRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.clear();
  batches_ = 0;
  requests_ = 0;
}

void BatchSizeRecorder::attach(metrics::Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  mirror_ = h;
}

void export_reliability(const ReliabilitySnapshot& s) {
  auto& reg = metrics::MetricsRegistry::global();
  const auto sync = [&reg](const char* outcome, std::int64_t v) {
    reg.counter("serve.requests", {{"outcome", outcome}})
        ->sync_to(static_cast<double>(v));
  };
  sync("submitted", s.submitted);
  sync("served", s.served);
  sync("shed", s.shed);
  sync("timed_out", s.timed_out);
  sync("retried", s.retries);
  sync("degraded", s.degraded);
  sync("failed", s.failed);
}

}  // namespace cstf::serve
