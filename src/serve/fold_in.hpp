// Constrained fold-in: admitting unseen slices into a served model.
//
// A fold-in request carries the observed entries of a new slice along one
// mode (a new user's interactions, a new timestamp's measurements). The new
// factor row h solves the same constrained least-squares subproblem the
// trainer solved for every existing row — same proximal operator, same
// ADMM inner loop — against the *fixed* other-mode factors:
//
//   min_h  || vec(values) - K h ||^2  s.t.  h feasible,
//   K rows = lambda .* (hadamard of the other modes' factor rows)
//
// whose normal equations are S = (lambda lambda^T) .* hadamard(Grams) and
// m = sum_j value_j * K_j. Two serving-specific accelerations apply:
//
//   * The Gram system S depends only on the model, not the request — so its
//     Cholesky factorization (and, per the paper's pre-inversion argument,
//     its explicit inverse) is computed ONCE per published snapshot and
//     cached inside ServableModel. Training amortizes pre-inversion over
//     ~10 inner iterations; serving amortizes it over every request.
//   * ADMM's inner iteration touches rows independently (elementwise row
//     ops plus a right-multiply by the R x R system), so B concurrent
//     requests stack into one (B x R) fused solve that is bit-identical,
//     row for row, to B separate single-row solves — batching costs nothing
//     in accuracy and saves B-1 launches per inner iteration.
//
// FoldInBatcher implements the coalescing: concurrent submit()ers park on a
// future while a collector drains the queue, groups by mode, and runs one
// fused solve per group.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "exec/executor.hpp"
#include "exec/planner.hpp"
#include "serve/model_store.hpp"
#include "serve/runtime.hpp"
#include "serve/serve_stats.hpp"
#include "updates/admm.hpp"

namespace cstf::serve {

/// Observed entries of one new slice along `mode`.
struct FoldInRequest {
  int mode = 0;

  /// Entry coordinates in the other modes: nnz tuples of (num_modes - 1)
  /// indices, row-major, in increasing mode order with `mode` skipped.
  std::vector<index_t> coords;

  /// One value per tuple.
  std::vector<real_t> values;

  /// Per-request deadline in seconds from submit(); a request still queued
  /// past its deadline fails with DeadlineError instead of occupying a
  /// batch slot. 0 uses the batcher's default_deadline_s (which may itself
  /// be 0 = no deadline).
  double timeout_s = 0.0;
};

/// Raised through a submit() future when the admission queue is full — the
/// client's signal to back off. A shed request never entered the queue.
class ShedError : public Error {
 public:
  using Error::Error;
};

/// Raised through a submit() future when the request's deadline expired
/// while it was still queued.
class DeadlineError : public Error {
 public:
  using Error::Error;
};

/// A solved fold-in row.
struct FoldInResult {
  std::vector<real_t> row;      ///< length rank(); satisfies the constraint
  AdmmDiagnostics diagnostics;  ///< final-iteration residuals of the solve
  std::uint64_t generation = 0; ///< snapshot the row was solved against
};

struct FoldInOptions {
  /// Inner ADMM iterations (same default the trainer uses).
  int inner_iterations = 10;

  /// Solve against the snapshot's cached pre-factorized Gram (the fast
  /// path). When false, every call re-factorizes S + rho*I through the
  /// metered device solver — the per-request baseline the serving bench
  /// compares against.
  bool use_cached_gram = true;

  /// Pre-inversion (GEMM inner iteration vs triangular solves). Must match
  /// how the ServableModel's cache was built when use_cached_gram is set.
  bool preinversion = true;
};

/// Solves fold-in requests, one or fused-many at a time.
class FoldInEngine {
 public:
  FoldInEngine(ServeRuntime& runtime, FoldInOptions options = {})
      : runtime_(runtime), options_(options) {}

  const FoldInOptions& options() const { return options_; }

  FoldInResult fold_in(const ServableModel& model, const FoldInRequest& req);

  /// Fused multi-row solve. All requests must target the same mode; result
  /// i corresponds to request i. Row i is bit-identical to fold_in(reqs[i])
  /// (batch diagnostics aggregate over the whole block).
  std::vector<FoldInResult> fold_in_batch(
      const ServableModel& model, const std::vector<FoldInRequest>& reqs);

  /// Per-call latency (one sample per fold_in / fold_in_batch invocation).
  LatencyRecorder& latency() { return latency_; }

  /// Compiled fold-in plan cache, keyed by (snapshot generation, mode, batch
  /// shape, solve options): repeated same-shape batches against the same
  /// snapshot reuse the plan; a hot-swap or batch-shape change recompiles.
  const exec::PlanCache& plan_cache() const { return plan_cache_; }

 private:
  void check_request(const ServableModel& model,
                     const FoldInRequest& req) const;
  void ensure_executor(const ServableModel& model, int mode, index_t batch);
  exec::PlanKey plan_key(const ServableModel& model, int mode,
                         index_t batch) const;
  exec::Plan compile_plan(index_t rank, index_t batch);

  // Guarded by runtime_.submit_mu (one fused solve at a time): the cached
  // plan's op bodies reach the current call's model and requests through
  // this workspace.
  struct Workspace {
    const ServableModel* model = nullptr;
    const std::vector<FoldInRequest>* reqs = nullptr;
    int mode = 0;
    Matrix m;          // batch x R right-hand sides
    Matrix h;          // solved rows
    AdmmGram rebuilt;  // per-call Gram system (non-cached path)
    const AdmmGram* gram = nullptr;
    AdmmDiagnostics diagnostics;
  };
  Workspace ws_;
  exec::PlanCache plan_cache_;
  std::unique_ptr<exec::Executor> executor_;

  ServeRuntime& runtime_;
  FoldInOptions options_;
  LatencyRecorder latency_;
};

/// Coalesces concurrent fold-in requests into fused batches against the
/// store's current snapshot of one model (each batch re-resolves the
/// snapshot, so a hot-swap takes effect at the next batch boundary).
///
/// Two collection modes:
///   * background (default): a collector thread drains the queue whenever
///     requests are pending, waiting up to `max_linger_s` for a batch to
///     fill — the open-loop serving configuration;
///   * manual (`background = false`): nothing runs until flush(), giving
///     tests deterministic batch boundaries.
class FoldInBatcher {
 public:
  struct Options {
    std::size_t max_batch = 64;

    /// How long the collector lingers for more arrivals once at least one
    /// request is pending (seconds).
    double max_linger_s = 0.002;

    bool background = true;

    /// Admission-queue bound: submit() beyond this many queued requests
    /// fails the future with ShedError instead of growing the queue
    /// (load shedding). 0 = unbounded.
    std::size_t max_queue = 1024;

    /// Default deadline for requests whose timeout_s is 0. 0 = none.
    double default_deadline_s = 0.0;

    /// How many times a fused solve is re-attempted after a *transient*
    /// simgpu::FaultError (injected launch/copy/allocation failures) before
    /// falling back to degraded per-request isolation.
    int max_retries = 3;

    /// Base sleep between retries; doubles per attempt (exponential
    /// backoff). 0 retries immediately.
    double retry_backoff_s = 0.0005;

    /// Degraded-mode behavior. When the model vanishes from the store, a
    /// batch is served against the last snapshot that successfully served
    /// (stale generations beat failed requests); when a fused solve
    /// exhausts its retries, each request is re-solved individually so one
    /// poisoned request cannot fail its whole batch. Disable for
    /// strict-freshness tests.
    bool degraded_fallback = true;
  };

  /// `store` and `engine` must outlive the batcher. `model_name` is the
  /// store key the batcher serves.
  FoldInBatcher(FoldInEngine& engine, ModelStore& store,
                std::string model_name, Options options);
  FoldInBatcher(FoldInEngine& engine, ModelStore& store,
                std::string model_name);
  ~FoldInBatcher();

  FoldInBatcher(const FoldInBatcher&) = delete;
  FoldInBatcher& operator=(const FoldInBatcher&) = delete;

  /// Enqueues a request; the future resolves when its batch is solved.
  /// Fails the future with ShedError when the admission queue is full,
  /// DeadlineError when the request expires in the queue, and cstf::Error
  /// if the model is unavailable (and no last-good snapshot exists) or the
  /// batcher stops first.
  std::future<FoldInResult> submit(FoldInRequest req);

  /// Drains and solves everything currently queued (manual mode's only
  /// trigger; also usable in background mode to force a boundary). Returns
  /// the number of requests served.
  std::size_t flush();

  /// Stops the collector and fails any still-queued requests. Idempotent;
  /// the destructor calls it.
  void stop();

  /// End-to-end request latency (submit to future-ready).
  LatencyRecorder& latency() { return latency_; }

  /// Realized batch sizes (one record per fused solve).
  BatchSizeRecorder& batch_sizes() { return batch_sizes_; }

  /// Shed / timeout / retry / degraded-mode counters.
  ReliabilityCounters& reliability() { return reliability_; }

  /// Mean arrival rate since construction: submitted requests (shed ones
  /// included — they arrived) over elapsed wall time. This is the measured
  /// rate the autotuner's batcher calibration feeds on; 0 until the first
  /// submit.
  double measured_arrival_rate_rps() const {
    const double elapsed = epoch_.seconds();
    if (elapsed <= 0.0) return 0.0;
    return static_cast<double>(
               reliability_.submitted.load(std::memory_order_relaxed)) /
           elapsed;
  }

 private:
  struct Pending {
    FoldInRequest request;
    std::promise<FoldInResult> promise;
    double enqueue_s = 0.0;
    double deadline_s = 0.0;  ///< absolute epoch_ time; 0 = no deadline
  };

  void collector_loop();
  std::size_t drain_and_solve(std::vector<Pending> batch);
  /// Publishes queue_.size() to the serve.batcher.queue_depth gauge.
  /// Call with mu_ held, right after any queue_ mutation.
  void publish_queue_depth();
  std::vector<FoldInResult> solve_with_retries(
      const ServableModel& model, const std::vector<FoldInRequest>& group);

  FoldInEngine& engine_;
  ModelStore& store_;
  std::string model_name_;
  Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pending> queue_;
  bool stopping_ = false;
  std::thread collector_;

  // Last snapshot that successfully served a batch; the degraded fallback
  // when the store no longer has the model.
  std::mutex model_mu_;
  ServableModelPtr last_good_;

  Timer epoch_;  // timestamps for end-to-end latency
  LatencyRecorder latency_;
  BatchSizeRecorder batch_sizes_;
  ReliabilityCounters reliability_;
  metrics::Gauge* m_queue_depth_ = nullptr;  // registry-owned (see ctor)
};

}  // namespace cstf::serve
