// Serving telemetry: request-latency quantiles and batch-size distribution.
//
// The serving layer's performance story is a tail-latency story — the
// batcher trades a little p50 (requests wait for a batch) for a lot of
// throughput (one fused ADMM launch instead of B), and the only honest way
// to show that trade is p50/p95/p99 plus the realized batch sizes. These
// recorders are the substrate: thread-safe, exact (they keep every sample;
// serving tests and benches run at most ~10^5 requests), and consumed by
// both the cstf_serve CLI and bench_serve_throughput's JSON telemetry.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "metrics/registry.hpp"

namespace cstf::serve {

/// A point-in-time copy of ReliabilityCounters (plain integers, safe to
/// serialize into telemetry JSON).
struct ReliabilitySnapshot {
  std::int64_t submitted = 0;
  std::int64_t served = 0;
  std::int64_t shed = 0;        ///< rejected at admission (queue full)
  std::int64_t timed_out = 0;   ///< expired before their batch was solved
  std::int64_t retries = 0;     ///< solve attempts repeated after a
                                ///< transient fault
  std::int64_t degraded = 0;    ///< served from the last-good snapshot or
                                ///< via per-request isolation
  std::int64_t failed = 0;      ///< futures resolved with an exception
};

/// Load-shedding / fault-handling counters for the hardened serving path.
/// All increments are lock-free; aggregate reads via snapshot().
class ReliabilityCounters {
 public:
  std::atomic<std::int64_t> submitted{0};
  std::atomic<std::int64_t> served{0};
  std::atomic<std::int64_t> shed{0};
  std::atomic<std::int64_t> timed_out{0};
  std::atomic<std::int64_t> retries{0};
  std::atomic<std::int64_t> degraded{0};
  std::atomic<std::int64_t> failed{0};

  ReliabilitySnapshot snapshot() const {
    ReliabilitySnapshot s;
    s.submitted = submitted.load(std::memory_order_relaxed);
    s.served = served.load(std::memory_order_relaxed);
    s.shed = shed.load(std::memory_order_relaxed);
    s.timed_out = timed_out.load(std::memory_order_relaxed);
    s.retries = retries.load(std::memory_order_relaxed);
    s.degraded = degraded.load(std::memory_order_relaxed);
    s.failed = failed.load(std::memory_order_relaxed);
    return s;
  }

  void clear() {
    submitted = 0;
    served = 0;
    shed = 0;
    timed_out = 0;
    retries = 0;
    degraded = 0;
    failed = 0;
  }
};

/// Summary of a latency distribution, in seconds.
struct LatencySummary {
  std::int64_t count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

/// Exact latency recorder. record() is called once per request from any
/// thread; summary() sorts a copy of the samples (nearest-rank quantiles).
///
/// Quantiles are well-defined on every edge, no call-site guards needed:
/// with no samples quantile() and every LatencySummary percentile are 0;
/// with one sample every quantile IS that sample.
class LatencyRecorder {
 public:
  void record(double seconds);

  LatencySummary summary() const;

  /// Nearest-rank quantile; q is clamped to [0, 1]. 0 with no samples,
  /// the sample with one.
  double quantile(double q) const;

  std::int64_t count() const;
  void clear();

  /// Mirrors every subsequent record() into `h` (a registry latency
  /// histogram), from which bucket-derived quantiles approximate the exact
  /// ones here. nullptr detaches; `h` must outlive the recorder or be
  /// detached first (registry instruments live until process exit).
  void attach(metrics::Histogram* h);

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
  metrics::Histogram* mirror_ = nullptr;  // not owned
};

/// Distribution of realized batch sizes (how well the batcher coalesces).
class BatchSizeRecorder {
 public:
  void record(std::int64_t batch_size);

  /// batch size -> number of batches of that size.
  std::map<std::int64_t, std::int64_t> histogram() const;

  std::int64_t batches() const;
  std::int64_t requests() const;

  /// Mean requests per batch; 0 with no batches.
  double mean_batch_size() const;

  void clear();

  /// Mirrors every subsequent record() into `h` (a registry count-bounds
  /// histogram). nullptr detaches.
  void attach(metrics::Histogram* h);

 private:
  mutable std::mutex mu_;
  std::map<std::int64_t, std::int64_t> counts_;
  std::int64_t batches_ = 0;
  std::int64_t requests_ = 0;
  metrics::Histogram* mirror_ = nullptr;  // not owned
};

/// Ratchets the serve.requests{outcome=...} registry counters up to `s`
/// (submitted|served|shed|timed_out|retried|degraded|failed). Call with the
/// same snapshot that feeds a JSON reliability block and the two agree
/// exactly. Safe to call repeatedly — counters only move up.
void export_reliability(const ReliabilitySnapshot& s);

}  // namespace cstf::serve
