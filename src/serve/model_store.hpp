// In-memory model registry with refcounted hot-swap.
//
// A ServableModel is an *immutable* snapshot of a loaded model plus every
// cache the serving engines need: per-mode Gram matrices, the lambda-scaled
// Hadamard-of-Grams system matrix of each mode's fold-in subproblem, and that
// system's pre-factorized (optionally pre-inverted) AdmmGram. All caches are
// built eagerly at publish time, so a hot-swap is a single shared_ptr
// exchange: in-flight requests finish against the snapshot they already
// hold, new requests pick up the fresh snapshot — and because the Gram
// caches live *inside* the snapshot, swapping the model invalidates them
// by construction. There is no cache to flush and no torn read to guard.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/model_io.hpp"
#include "updates/admm.hpp"

namespace cstf::serve {

/// One published model snapshot. Immutable after construction; safe to read
/// from any number of threads concurrently.
class ServableModel {
 public:
  /// Validates the model and builds all serving caches. `preinvert` selects
  /// whether the fold-in AdmmGrams carry the explicit inverse (the paper's
  /// pre-inversion optimization, amortized here across every fold-in request
  /// served from this snapshot).
  ServableModel(SavedModel saved, std::uint64_t generation,
                bool preinvert = true);

  const KTensor& model() const { return saved_.model; }
  const ModelMetadata& meta() const { return saved_.meta; }

  /// Monotonic publish counter of the owning store; two snapshots of the
  /// same name always differ in generation, which tests use to observe a
  /// hot-swap.
  std::uint64_t generation() const { return generation_; }

  int num_modes() const { return saved_.model.num_modes(); }
  index_t rank() const { return saved_.model.rank(); }
  index_t mode_size(int mode) const;
  bool preinverted() const { return preinvert_; }

  /// Gram matrix H_m^T H_m of mode `mode`'s factor (R x R).
  const Matrix& gram(int mode) const;

  /// The fold-in normal-equations matrix of mode `mode`:
  ///   S_m = (lambda lambda^T) .* hadamard_{n != mode} gram(n).
  /// lambda is folded into the system (rather than into the factors) so a
  /// folded-in row lives on the same scale as the stored factor rows.
  const Matrix& fold_in_system(int mode) const;

  /// The pre-factorized fold-in system: Cholesky of S_m + rho*I, plus the
  /// explicit inverse when preinverted(). Built once here; reused by every
  /// fold-in against this snapshot.
  const AdmmGram& fold_in_gram(int mode) const;

 private:
  SavedModel saved_;
  std::uint64_t generation_;
  bool preinvert_;
  std::vector<Matrix> grams_;
  std::vector<Matrix> systems_;
  std::vector<AdmmGram> fold_in_grams_;
};

using ServableModelPtr = std::shared_ptr<const ServableModel>;

/// Named model registry. publish() is the only mutation; readers get
/// refcounted snapshots and never block behind a swap (the lock covers only
/// the map exchange, never cache construction or I/O).
class ModelStore {
 public:
  explicit ModelStore(bool preinvert = true) : preinvert_(preinvert) {}

  /// Builds a snapshot (outside the lock) and swaps it in under the model's
  /// name. Returns the published snapshot.
  ServableModelPtr publish(SavedModel saved);

  /// load_model(path) + publish(). Typed ModelIoError propagates unchanged.
  ServableModelPtr load_and_publish(const std::string& path);

  /// Current snapshot for `name`, or nullptr when absent.
  ServableModelPtr get(const std::string& name) const;

  /// Removes `name`; in-flight holders of the snapshot are unaffected.
  bool erase(const std::string& name);

  std::vector<std::string> names() const;
  std::size_t size() const;

  /// Total publishes across all names (the generation stamped on snapshots).
  std::uint64_t generation() const;

 private:
  bool preinvert_;
  mutable std::mutex mu_;
  std::uint64_t generation_ = 0;
  std::map<std::string, ServableModelPtr> models_;
};

}  // namespace cstf::serve
