#include "serve/model_store.hpp"

#include <utility>

#include "la/blas.hpp"
#include "la/elementwise.hpp"

namespace cstf::serve {

ServableModel::ServableModel(SavedModel saved, std::uint64_t generation,
                             bool preinvert)
    : saved_(std::move(saved)), generation_(generation),
      preinvert_(preinvert) {
  saved_.model.validate();
  const KTensor& model = saved_.model;
  const int modes = model.num_modes();
  const index_t rank = model.rank();

  grams_.resize(static_cast<std::size_t>(modes));
  for (int m = 0; m < modes; ++m) {
    grams_[static_cast<std::size_t>(m)].resize(rank, rank);
    la::gram(model.factors[static_cast<std::size_t>(m)],
             grams_[static_cast<std::size_t>(m)]);
  }

  systems_.resize(static_cast<std::size_t>(modes));
  fold_in_grams_.reserve(static_cast<std::size_t>(modes));
  for (int m = 0; m < modes; ++m) {
    Matrix& s = systems_[static_cast<std::size_t>(m)];
    s.resize(rank, rank);
    s.set_all(1.0);
    for (int n = 0; n < modes; ++n) {
      if (n == m) continue;
      la::hadamard_inplace(s, grams_[static_cast<std::size_t>(n)]);
    }
    for (index_t c = 0; c < rank; ++c) {
      for (index_t r = 0; r < rank; ++r) {
        s(r, c) *= model.lambda[static_cast<std::size_t>(r)] *
                   model.lambda[static_cast<std::size_t>(c)];
      }
    }
    fold_in_grams_.push_back(prepare_admm_gram(s, preinvert_));
  }
}

index_t ServableModel::mode_size(int mode) const {
  CSTF_CHECK(mode >= 0 && mode < num_modes());
  return saved_.model.factors[static_cast<std::size_t>(mode)].rows();
}

const Matrix& ServableModel::gram(int mode) const {
  CSTF_CHECK(mode >= 0 && mode < num_modes());
  return grams_[static_cast<std::size_t>(mode)];
}

const Matrix& ServableModel::fold_in_system(int mode) const {
  CSTF_CHECK(mode >= 0 && mode < num_modes());
  return systems_[static_cast<std::size_t>(mode)];
}

const AdmmGram& ServableModel::fold_in_gram(int mode) const {
  CSTF_CHECK(mode >= 0 && mode < num_modes());
  return fold_in_grams_[static_cast<std::size_t>(mode)];
}

ServableModelPtr ModelStore::publish(SavedModel saved) {
  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    generation = ++generation_;
  }
  // Cache construction (Grams + Cholesky + optional inverse) happens outside
  // the lock: a publish never stalls concurrent get() calls.
  auto snapshot = std::make_shared<const ServableModel>(
      std::move(saved), generation, preinvert_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    models_[snapshot->meta().name] = snapshot;
  }
  return snapshot;
}

ServableModelPtr ModelStore::load_and_publish(const std::string& path) {
  return publish(load_model(path));
}

ServableModelPtr ModelStore::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

bool ModelStore::erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.erase(name) > 0;
}

std::vector<std::string> ModelStore::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) out.push_back(name);
  return out;
}

std::size_t ModelStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

std::uint64_t ModelStore::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

}  // namespace cstf::serve
