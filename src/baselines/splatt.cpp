#include "baselines/splatt.hpp"

namespace cstf {

namespace {

BlockAdmmOptions block_options(const SplattOptions& o) {
  BlockAdmmOptions b;
  b.prox = o.prox;
  b.block_rows = o.admm_block_rows;
  b.inner_iterations = o.admm_inner_iterations;
  return b;
}

AuntfOptions auntf_options(const SplattOptions& o) {
  AuntfOptions a;
  a.rank = o.rank;
  a.max_iterations = o.max_iterations;
  a.seed = o.seed;
  a.compute_fit = o.compute_fit;
  return a;
}

}  // namespace

SplattCpu::SplattCpu(const SparseTensor& tensor, SplattOptions options)
    : device_(options.device),
      backend_(tensor),
      update_(block_options(options)),
      driver_(device_, backend_, update_, auntf_options(options)) {}

}  // namespace cstf
