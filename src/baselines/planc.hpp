// PLANC-style CPU baselines.
//
// Two configurations of Eswar et al.'s PLANC AUNTF loop:
//   * PlancDenseCpu  — dense-tensor constrained factorization, the DenseTF
//     column of Figure 1;
//   * PlancSparseCpu — the paper's "modified PLANC" (Section 4): PLANC's
//     update loop with the ALTO sparse MTTKRP bolted on, the SparseTF
//     column of Figure 1 and the CPU side of Figures 9-10 (MU/HALS).
// The update scheme is selectable (generic ADMM / MU / HALS), matching the
// three update methods Figure 1 profiles.
#pragma once

#include <memory>

#include "cstf/auntf.hpp"
#include "cstf/framework.hpp"

namespace cstf {

struct PlancOptions {
  index_t rank = 32;
  int max_iterations = 10;
  int admm_inner_iterations = 10;
  UpdateScheme scheme = UpdateScheme::kAdmm;  // PLANC's ADMM is unfused
  Proximity prox = Proximity::non_negative();
  std::uint64_t seed = 42;
  bool compute_fit = true;
  simgpu::DeviceSpec device = simgpu::xeon_8367hc();
};

/// Dense-tensor PLANC baseline.
class PlancDenseCpu {
 public:
  PlancDenseCpu(DenseTensor tensor, PlancOptions options);

  AuntfResult run() { return driver_->run(); }
  Auntf& driver() { return *driver_; }
  simgpu::Device& device() { return device_; }
  KTensor ktensor() const { return driver_->ktensor(); }

 private:
  simgpu::Device device_;
  DenseBackend backend_;
  std::unique_ptr<UpdateMethod> update_;
  std::unique_ptr<Auntf> driver_;
};

/// Sparse-tensor PLANC baseline (ALTO MTTKRP).
class PlancSparseCpu {
 public:
  PlancSparseCpu(const SparseTensor& tensor, PlancOptions options);

  AuntfResult run() { return driver_->run(); }
  Auntf& driver() { return *driver_; }
  simgpu::Device& device() { return device_; }
  KTensor ktensor() const { return driver_->ktensor(); }

 private:
  simgpu::Device device_;
  AltoBackend backend_;
  std::unique_ptr<UpdateMethod> update_;
  std::unique_ptr<Auntf> driver_;
};

}  // namespace cstf
