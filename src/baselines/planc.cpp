#include "baselines/planc.hpp"

namespace cstf {

namespace {

AuntfOptions auntf_options(const PlancOptions& o) {
  AuntfOptions a;
  a.rank = o.rank;
  a.max_iterations = o.max_iterations;
  a.seed = o.seed;
  a.compute_fit = o.compute_fit;
  return a;
}

}  // namespace

PlancDenseCpu::PlancDenseCpu(DenseTensor tensor, PlancOptions options)
    : device_(options.device),
      backend_(std::move(tensor)),
      update_(CstfFramework::make_update(options.scheme, options.prox,
                                         options.admm_inner_iterations)) {
  driver_ = std::make_unique<Auntf>(device_, backend_, *update_,
                                    auntf_options(options));
}

PlancSparseCpu::PlancSparseCpu(const SparseTensor& tensor, PlancOptions options)
    : device_(options.device),
      backend_(tensor),
      update_(CstfFramework::make_update(options.scheme, options.prox,
                                         options.admm_inner_iterations)) {
  driver_ = std::make_unique<Auntf>(device_, backend_, *update_,
                                    auntf_options(options));
}

}  // namespace cstf
