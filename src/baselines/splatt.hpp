// SPLATT-style CPU baseline — the comparison system of Figures 5-8.
//
// Reimplements the algorithmic configuration of Smith & Karypis's SPLATT
// with the Smith/Beri/Karypis blocked AO-ADMM (ICPP'17):
//   * CSF trees, one per mode, for race-free fiber-parallel MTTKRP;
//   * cache-blocked ADMM updates (BlockAdmmUpdate);
//   * execution metered against the paper's 26-core Ice Lake Xeon spec.
// Kernels run for real on the host (results are numerically meaningful);
// modeled time corresponds to the Xeon in Table 1.
#pragma once

#include "cstf/auntf.hpp"
#include "updates/block_admm.hpp"

namespace cstf {

struct SplattOptions {
  index_t rank = 32;
  int max_iterations = 10;
  int admm_inner_iterations = 10;
  index_t admm_block_rows = 1024;
  Proximity prox = Proximity::non_negative();
  std::uint64_t seed = 42;
  bool compute_fit = true;
  /// Machine the modeled times correspond to.
  simgpu::DeviceSpec device = simgpu::xeon_8367hc();
};

/// Owns the device, CSF structures, update method, and driver.
class SplattCpu {
 public:
  SplattCpu(const SparseTensor& tensor, SplattOptions options);

  AuntfResult run() { return driver_.run(); }
  Auntf& driver() { return driver_; }
  simgpu::Device& device() { return device_; }
  KTensor ktensor() const { return driver_.ktensor(); }

 private:
  simgpu::Device device_;
  CsfBackend backend_;
  BlockAdmmUpdate update_;
  Auntf driver_;
};

}  // namespace cstf
