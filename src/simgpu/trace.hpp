// Kernel-level tracing and telemetry over the simulated device.
//
// A Tracer attaches to a Device (Device::set_tracer) and receives one
// TraceSpan per recorded launch: kernel name, the phase stack open at record
// time, measured host wall time, the roofline-modeled time of that single
// launch on the device's spec, and the full KernelStats. Phases are opened
// with RAII ScopedPhase guards (the AUNTF driver scopes its four cSTF phases
// GRAM/MTTKRP/UPDATE/NORMALIZE); phases nest, and a span is tagged with the
// joined path of every open phase ("UPDATE" or "outer/inner").
//
// Three exporters:
//   * summary_table()      — per-kernel aggregate table sorted by modeled
//                            time (roofline) with wall time alongside;
//   * chrome_trace_json()  — a chrome://tracing "traceEvents" timeline of
//                            every span and phase (load via chrome://tracing
//                            or https://ui.perfetto.dev);
//   * bench JSON           — machine-readable per-bench records; the schema
//                            lives in bench/bench_util.hpp (JsonSession),
//                            built on the json helpers below.
//
// Aggregation uses KernelStats::operator+= — identical to Device's own
// accounting — so a tracer's per-kernel totals match the Device counters
// exactly (tested in tests/test_trace.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.hpp"
#include "simgpu/counters.hpp"

namespace cstf::simgpu {

/// One recorded kernel launch (or batch of launches recorded together).
struct TraceSpan {
  std::string kernel;
  std::string phase;    ///< joined open-phase path at record time ("" = none)
  double start_s = 0.0; ///< start, seconds since the tracer was constructed
  double wall_s = 0.0;  ///< measured host execution time (0 when untimed)
  double modeled_s = 0.0; ///< roofline time of this span on the device spec
  KernelStats stats;
  int stream = 0;         ///< issuing stream id (0 = default stream)
  std::int64_t seq = -1;  ///< device-timeline span index (-1: not timeline-tracked)
  std::vector<std::int64_t> deps;  ///< timeline indices of event dependencies
};

/// One completed phase interval (for the timeline exporter).
struct PhaseSpan {
  std::string phase;    ///< joined path, e.g. "UPDATE"
  double start_s = 0.0;
  double wall_s = 0.0;
};

/// Collects spans from one or more Devices. Thread-safe: launches may be
/// recorded from any thread; phase open/close is expected from the driving
/// thread but is serialized under the same mutex.
class Tracer {
 public:
  /// Per-kernel (or per-phase) accumulated record.
  struct Aggregate {
    KernelStats stats;       ///< summed exactly like Device::record
    double wall_s = 0.0;
    double modeled_s = 0.0;  ///< sum of per-span roofline times
    std::int64_t spans = 0;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a phase; subsequent spans are tagged with the joined path of all
  /// open phases. Pairs with end_phase (prefer the ScopedPhase guard).
  void begin_phase(const std::string& name);
  void end_phase();

  /// Records one span. Called by Device::record; `modeled_s` is the roofline
  /// time of `stats` alone on the recording device's spec. `stream`/`seq`/
  /// `deps` carry the device-timeline placement (stream lane, span index,
  /// event-dependency edges) for the chrome exporter's lanes and flow arrows.
  void add_span(const std::string& kernel, const KernelStats& stats,
                double wall_s, double modeled_s, int stream = 0,
                std::int64_t seq = -1,
                const std::vector<std::int64_t>& deps = {});

  /// Names a stream lane for the chrome exporter (Device::create_stream
  /// forwards the name of every stream it creates while a tracer is
  /// attached). Unnamed lanes fall back to "stream <id>".
  void name_stream(int stream, const std::string& name);

  /// The recorded lane names, keyed by stream id (exposed for tests).
  std::map<int, std::string> stream_names() const;

  /// Copy of every span recorded so far (cheap for test-sized traces).
  std::vector<TraceSpan> spans() const;
  std::vector<PhaseSpan> phase_spans() const;

  /// Joined path of the currently open phases ("" when none).
  std::string current_phase() const;
  std::size_t phase_depth() const;
  std::size_t span_count() const;

  /// Per-kernel aggregates (stats summed with KernelStats::operator+=,
  /// matching the Device's own per-kernel accounting).
  std::map<std::string, Aggregate> per_kernel() const;

  /// Per-phase aggregates, keyed by joined phase path.
  std::map<std::string, Aggregate> per_phase() const;

  /// Sum of per-span modeled / wall seconds over every span.
  double total_modeled_s() const;
  double total_wall_s() const;

  /// Human-readable per-kernel summary, sorted by modeled time descending:
  /// kernel, spans, launches, gflops, gbytes, flop/byte, modeled s, wall s,
  /// and modeled share.
  std::string summary_table() const;

  /// chrome://tracing JSON ({"traceEvents":[...]}): one complete ("X") event
  /// per span on tid 1 + stream id — the default stream stays on tid 1, each
  /// created stream gets its own lane — (duration = wall time, falling back
  /// to modeled time for untimed spans), one per closed phase on tid 0, and
  /// one "s"/"f" flow-event pair per event-dependency edge so stream
  /// synchronization shows up as arrows between lanes.
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

  void clear();

 private:
  std::string joined_phase_locked() const;

  mutable std::mutex mu_;
  Timer epoch_;
  std::vector<std::string> phase_stack_;
  std::vector<double> phase_start_;
  std::vector<TraceSpan> spans_;
  std::vector<PhaseSpan> phase_spans_;
  std::map<int, std::string> stream_names_;
};

/// RAII phase guard; a null tracer makes it a no-op, so callers can scope
/// phases unconditionally (`ScopedPhase p(dev.tracer(), phase::kGram);`).
class ScopedPhase {
 public:
  ScopedPhase(Tracer* tracer, const std::string& name) : tracer_(tracer) {
    if (tracer_ != nullptr) tracer_->begin_phase(name);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() {
    if (tracer_ != nullptr) tracer_->end_phase();
  }

 private:
  Tracer* tracer_;
};

/// Minimal JSON support for the exporters and their tests: escaping, number
/// formatting that round-trips doubles, and a validating recursive-descent
/// parser (used by tests and tools/cstf_json_check to reject malformed
/// telemetry output).
namespace json {

/// Escapes a string for embedding in a JSON string literal (no quotes added).
std::string escape(const std::string& s);

/// Formats a double as a JSON number (round-trippable; non-finite values
/// become 0, which JSON cannot represent).
std::string number(double v);

/// Parsed JSON value. Object member order is preserved.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
};

/// Parses `text` as one JSON document; throws cstf::Error on any syntax
/// error (with offset) or trailing garbage.
Value parse(const std::string& text);

/// Non-throwing validity check; fills `error` (when non-null) on failure.
bool valid(const std::string& text, std::string* error = nullptr);

}  // namespace json

}  // namespace cstf::simgpu
