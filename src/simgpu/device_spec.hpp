// Machine descriptions for the roofline cost model.
//
// This repository reproduces a GPU paper on a host with no GPU. Kernels run
// functionally on the CPU, and each launch *meters* its flops and memory
// traffic; a DeviceSpec then converts the metered quantities into modeled
// execution time for a specific machine. The three presets correspond to the
// paper's Table 1 (NVIDIA A100, NVIDIA H100, Intel Xeon Platinum 8367HC).
//
// The model deliberately captures only the effects the paper's analysis
// relies on:
//   * peak FP64 throughput and HBM/DRAM bandwidth (roofline, Eqs. 3–5);
//   * a finite cache that discounts re-used traffic — the paper attributes
//     the H100-over-A100 gain at equal bandwidth to its larger caches;
//   * lower achieved bandwidth for random (gather/scatter) access — why
//     MTTKRP speedups shrink as sparsity grows (Figs. 7–8);
//   * kernel-launch / parallel-region overhead — why small tensors (NIPS)
//     see little GPU benefit (Figs. 5–6);
//   * a serial-operation rate — why triangular solves are GPU-hostile and
//     pre-inversion wins (Section 4.3.2);
//   * a parallelism saturation point — why long modes benefit more from the
//     GPU's execution model (Section 5.3).
#pragma once

#include <string>

#include "common/types.hpp"

namespace cstf::simgpu {

/// Static description of one machine for the cost model.
struct DeviceSpec {
  std::string name;

  /// Peak double-precision throughput, flop/s (non-tensor-core for GPUs).
  double peak_flops;

  /// Peak main-memory bandwidth, bytes/s.
  double mem_bandwidth;

  /// Fraction of peak bandwidth achievable for unit-stride streams.
  double stream_bw_fraction;

  /// Fraction of peak bandwidth achievable for random row gathers.
  double random_bw_fraction;

  /// Last-level cache capacity in bytes (L2 for the GPUs, LLC for the CPU).
  double cache_bytes;

  /// Fixed cost per kernel launch (GPU) or parallel-region fork (CPU), s.
  double launch_overhead;

  /// Number of concurrent work items needed to saturate the device. Work
  /// smaller than this runs at proportionally lower throughput.
  double saturation_parallelism;

  /// Dependent scalar operations retired per second on one lane — the rate at
  /// which an inherently sequential chain (e.g. one column of a triangular
  /// solve) executes.
  double serial_op_rate;

  /// Conflict-free atomic read-modify-write throughput, updates/s (GPU: L2
  /// atomic units; CPU: uncontended compare-exchange rate across cores).
  /// The cost model multiplies the per-update cost by the expected
  /// serialization from collisions on the atomic working set.
  double atomic_rate = 0.0;

  /// Host-link (PCIe/NVLink) bandwidth in bytes/s for data staged between
  /// host and device memory; 0 means the device IS the host (no transfers).
  /// Full GPU offload — the paper's core design decision — exists to avoid
  /// paying this.
  double host_link_bandwidth = 0.0;

  /// Fixed latency per host-link transfer, seconds.
  double host_link_latency = 0.0;
};

/// Time to move `bytes` across the host link (0 when the spec has no link).
double transfer_time(const DeviceSpec& spec, double bytes);

/// NVIDIA A100-SXM4-80GB per the paper's Table 1 (1.41 GHz, 108 SMs,
/// 40 MB L2, 2039 GB/s).
DeviceSpec a100();

/// NVIDIA H100-SXM5-80GB per the paper's Table 1 (1.98 GHz, 114 SMs,
/// 50 MB L2, 2039 GB/s). Same bandwidth as the A100 — the paper uses this
/// pair to isolate the cache-capacity effect.
DeviceSpec h100();

/// Intel Xeon Platinum 8367HC (26-core Ice Lake, 3.2 GHz) — the machine the
/// SPLATT and PLANC baselines run on in the paper.
DeviceSpec xeon_8367hc();

/// A 1-core spec matching this container, used by tests that compare modeled
/// time against measured wall time on the host.
DeviceSpec host_1core();

}  // namespace cstf::simgpu
