// Stream/event execution layer: CUDA-like asynchrony for the modeled
// timeline.
//
// Kernels still execute eagerly (and serially, per launch) on the host —
// streams change nothing about functional results. What they change is the
// *time model*: every recorded span lands on one stream's ordered lane, and
// Device::modeled_time_s() becomes the critical-path makespan of the
// resulting DAG instead of a flat sum, so a caller can express
// compute/communication overlap (multi-GPU all-reduce, OOM staging, per-mode
// Gram-vs-MTTKRP pipelining) and have it modeled faithfully.
//
// Semantics, mirroring CUDA:
//  * A Stream is an in-order lane: spans issued to the same stream are
//    modeled back-to-back in issue order.
//  * Spans on different streams are modeled concurrently unless ordered by
//    an Event: record_event() marks "everything issued to stream S so far",
//    wait_event(T, e) makes the next span issued to T start no earlier than
//    that mark completes.
//  * The default stream (id 0, a default-constructed handle) preserves the
//    pre-stream serial semantics exactly: a Device that only ever saw
//    default-stream work models time as the legacy per-kernel-aggregate sum,
//    bit for bit.
//
// Overlap cannot beat the hardware: the makespan is clamped from below by
// the shared-resource roofline — the summed memory-system busy time of every
// span and the summed host-link busy time. Two bandwidth-bound spans on two
// streams therefore take the same modeled time as they would back-to-back;
// only launch gaps, compute, serial chains, and link transfers can hide
// behind each other. See DESIGN.md "Streams and the timeline model".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simgpu/cost_model.hpp"
#include "simgpu/counters.hpp"
#include "simgpu/device_spec.hpp"

namespace cstf::simgpu {

/// Lightweight handle naming one in-order lane of a Device's timeline. The
/// default-constructed handle is the default stream (id 0); other streams
/// come from Device::create_stream and stay valid across Device::reset().
class Stream {
 public:
  constexpr Stream() = default;
  constexpr int id() const { return id_; }
  constexpr bool is_default() const { return id_ == 0; }
  friend constexpr bool operator==(Stream a, Stream b) {
    return a.id_ == b.id_;
  }

 private:
  friend class Timeline;
  explicit constexpr Stream(int id) : id_(id) {}
  int id_ = 0;
};

/// A recorded point on one stream: "everything issued to that stream before
/// the record". A default-constructed (never-recorded) Event is complete at
/// t=0, so waiting on it is a no-op — callers can wait unconditionally.
class Event {
 public:
  Event() = default;
  bool recorded() const { return after_span_ >= 0; }

 private:
  friend class Timeline;
  std::int64_t after_span_ = -1;  ///< global index of the span it completes after
};

/// Per-device modeled-work scheduler: an append-only log of spans (one per
/// recorded launch) on named streams, with event edges, and a list scheduler
/// that computes the DAG critical-path makespan under the shared-bandwidth
/// cap. Owned by Device; usable standalone (via a scratch Device) as a
/// pipeline model for externally-timed spans.
class Timeline {
 public:
  struct Span {
    std::string kernel;
    int stream = 0;
    KernelStats stats;     ///< metered work; remodeled under scaling
    double fixed_s = -1.0; ///< >= 0: externally modeled duration (not rescaled)
    std::vector<std::int64_t> deps;  ///< event edges (span indices waited on)
  };

  /// One span's place on the modeled timeline (filled by makespan_s).
  struct Scheduled {
    double start_s = 0.0;
    double end_s = 0.0;
  };

  Timeline() = default;

  /// Creates a named stream; the handle stays valid across reset().
  Stream create_stream(std::string name);
  int num_streams() const { return static_cast<int>(names_.size()); }
  const std::string& stream_name(int id) const {
    return names_[static_cast<std::size_t>(id)];
  }

  /// Appends one metered span to `stream`, consuming that stream's pending
  /// event waits as dependency edges. Returns the span's global index.
  std::int64_t add_span(Stream stream, std::string kernel,
                        const KernelStats& stats);

  /// Appends a span whose modeled duration is supplied directly (e.g. an
  /// interconnect transfer timed by an external model). Fixed spans are not
  /// rescaled by makespan_s and do not contend for device bandwidth.
  std::int64_t add_fixed_span(Stream stream, std::string kernel,
                              double duration_s);

  Event record_event(Stream stream) const;
  void wait_event(Stream stream, const Event& event);

  /// True once any span was issued off the default stream — the trigger for
  /// makespan (rather than legacy-sum) time modeling.
  bool concurrent() const { return concurrent_; }

  std::size_t span_count() const { return spans_.size(); }
  const Span& span(std::int64_t i) const {
    return spans_[static_cast<std::size_t>(i)];
  }

  /// List-schedules the span DAG on `spec` and returns the makespan. Each
  /// span starts at the later of its stream's clock and its dependencies'
  /// completion; metered spans' durations are remodeled after scaling their
  /// extensive quantities by `extensive_scale` (dataset-analog upscaling).
  /// The result is clamped from below by the shared-resource roofline: the
  /// summed memory busy time and summed host-link busy time of all metered
  /// spans. `schedule`, when non-null, receives per-span start/end times
  /// (before clamping).
  double makespan_s(const DeviceSpec& spec, double extensive_scale = 1.0,
                    std::vector<Scheduled>* schedule = nullptr) const;

  /// Drops all spans and pending waits; created streams survive.
  void reset();

 private:
  std::vector<std::string> names_{"default"};
  std::vector<std::int64_t> last_on_stream_{-1};       // per stream
  std::vector<std::vector<std::int64_t>> pending_{{}}; // per stream, waits
  std::vector<Span> spans_;
  bool concurrent_ = false;
};

}  // namespace cstf::simgpu
