#include "simgpu/device_spec.hpp"

namespace cstf::simgpu {

DeviceSpec a100() {
  return DeviceSpec{
      .name = "A100",
      .peak_flops = 9.7e12,       // FP64 FMA, non-tensor-core
      .mem_bandwidth = 2039e9,    // Table 1
      .stream_bw_fraction = 0.85,
      .random_bw_fraction = 0.15,
      .cache_bytes = 40e6,        // 40 MB L2 (Table 1)
      .launch_overhead = 4e-6,
      .saturation_parallelism = 108.0 * 2048.0,  // SMs x resident threads
      .serial_op_rate = 1.41e9,   // one op per cycle on a single lane
      // Conflict-free FP64 atomics resolve in L2, roughly the random-access
      // bandwidth over one 16-byte RMW each.
      .atomic_rate = 16e9,
      .host_link_bandwidth = 25e9,  // PCIe 4.0 x16 effective
      .host_link_latency = 10e-6,
  };
}

DeviceSpec h100() {
  return DeviceSpec{
      .name = "H100",
      .peak_flops = 25.6e12,
      .mem_bandwidth = 2039e9,    // Table 1 lists the same bandwidth as A100
      .stream_bw_fraction = 0.85,
      .random_bw_fraction = 0.17,
      .cache_bytes = 50e6,        // 50 MB L2 (Table 1)
      .launch_overhead = 3e-6,
      .saturation_parallelism = 114.0 * 2048.0,
      .serial_op_rate = 1.98e9,
      .atomic_rate = 21e9,        // larger L2, more atomic units than A100
      .host_link_bandwidth = 55e9,  // PCIe 5.0 x16 effective
      .host_link_latency = 10e-6,
  };
}

DeviceSpec xeon_8367hc() {
  return DeviceSpec{
      .name = "Xeon-8367HC",
      // 26 cores x 3.2 GHz x 16 DP flop/cycle (2x AVX-512 FMA).
      .peak_flops = 26.0 * 3.2e9 * 16.0,
      // 8-channel DDR4-3200 per Ice Lake socket.
      .mem_bandwidth = 205e9,
      // Achievable triad-style bandwidth: write-allocate (RFO) and NUMA
      // effects hold streaming kernels near half of peak.
      .stream_bw_fraction = 0.50,
      // CPUs tolerate gathers better than GPUs relative to their stream
      // bandwidth (large per-core caches + prefetchers).
      .random_bw_fraction = 0.20,
      .cache_bytes = 39e6,        // 1.5 MB/core LLC slice x 26
      .launch_overhead = 2e-6,    // OpenMP parallel-region fork/barrier
      .saturation_parallelism = 26.0 * 64.0,  // cores x unroll/vector depth
      .serial_op_rate = 2.0 * 3.2e9,  // superscalar scalar chain
      // Uncontended lock-free CAS (~6 ns) per core x 26 cores; cross-core
      // cacheline ping-pong under conflicts is what the contention factor
      // multiplies on top.
      .atomic_rate = 4e9,
  };
}

double transfer_time(const DeviceSpec& spec, double bytes) {
  if (spec.host_link_bandwidth <= 0.0 || bytes <= 0.0) return 0.0;
  return spec.host_link_latency + bytes / spec.host_link_bandwidth;
}

DeviceSpec host_1core() {
  return DeviceSpec{
      .name = "host-1core",
      .peak_flops = 3.0e9 * 4.0,
      .mem_bandwidth = 20e9,
      .stream_bw_fraction = 0.8,
      .random_bw_fraction = 0.4,
      .cache_bytes = 8e6,
      .launch_overhead = 1e-7,
      .saturation_parallelism = 16.0,
      .serial_op_rate = 2.0 * 3.0e9,
      .atomic_rate = 1.5e8,  // one core's CAS loop, ~7 ns per update
  };
}

}  // namespace cstf::simgpu
