// Deterministic fault injection for the simulated device.
//
// Real GPU deployments fail in three characteristic places: a kernel launch
// errors out, a device allocation fails, or a host-link transfer is dropped.
// A FaultPlan models all three against the simulated Device so every recovery
// path in the trainer (checkpoint/resume) and the serving layer (retry,
// load-shedding, degraded mode) can be exercised deterministically from
// tier-1 tests and the check.sh chaos smoke.
//
// A plan is a list of arms, each parsed from a spec string:
//
//   "launch:k=5"                    fail exactly the 5th kernel launch
//   "launch:p=0.01,seed=7"          fail each launch with prob 1% (seeded)
//   "alloc:k=1"                     fail the first scratch allocation
//   "copy:k=2"                      fail the 2nd host-link transfer
//   "launch:k=3,kernel=dgemm"       count only launches whose name contains
//                                   "dgemm"
//   "launch:k=1,fatal=1"            non-transient: retry must not absorb it
//   "launch:p=0.01,seed=7,max=16"   at most 16 injections, then quiescent
//
// Arms are ';'-separated ("launch:k=5;alloc:k=1"). Every fault raises a typed
// FaultError; `transient()` tells retry logic whether another attempt may
// succeed (true unless fatal=1). k-arms default to a single injection;
// p-arms default to unlimited unless capped with max=N.
//
// Wiring: Device::set_fault_plan() checks the launch and host-copy sites on
// every record(); ScopedAllocFaults routes ScratchPool allocations through
// the plan for its lifetime. All hooks are thread-safe (serving batches and
// queries hit the same plan concurrently).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"

namespace cstf::simgpu {

enum class FaultSite {
  kKernelLaunch = 0,
  kAllocation = 1,
  kHostLinkCopy = 2,
};

/// Display name ("launch", "alloc", "copy").
const char* fault_site_name(FaultSite site);

/// Typed injected failure. `transient()` distinguishes faults a retry may
/// outlive (the default) from hard errors that must surface immediately.
class FaultError : public Error {
 public:
  FaultError(FaultSite site, const std::string& what, bool transient)
      : Error(what), site_(site), transient_(transient) {}

  FaultSite site() const { return site_; }
  bool transient() const { return transient_; }

 private:
  FaultSite site_;
  bool transient_;
};

/// One injection rule. Either `k` (fail exactly the k-th matching event,
/// 1-based) or `p` (fail each matching event with probability p, drawn from
/// a generator seeded with `seed`) must be set.
struct FaultArm {
  FaultSite site = FaultSite::kKernelLaunch;
  std::int64_t k = 0;
  double p = 0.0;
  std::uint64_t seed = 0;

  /// Total injections this arm may perform; -1 means "1 for k-arms,
  /// unlimited for p-arms".
  std::int64_t max_faults = -1;

  /// Substring filter on the kernel name (launch / copy sites only; empty
  /// matches everything).
  std::string kernel;

  /// Non-transient: FaultError::transient() is false, so retry loops
  /// re-throw instead of re-attempting.
  bool fatal = false;
};

/// Parses one arm spec ("site:key=val,key=val"); throws cstf::Error on a
/// malformed spec.
FaultArm parse_fault_arm(const std::string& spec);

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses a ';'-separated list of arm specs. An empty string yields an
  /// inactive plan.
  explicit FaultPlan(const std::string& spec);

  /// Builds a plan from the CSTF_FAULT_PLAN environment variable (inactive
  /// when unset/empty).
  static FaultPlan from_env();

  void add(FaultArm arm);

  /// True when the plan has at least one arm.
  bool active() const;

  /// Site hooks — each counts the event against every matching arm and
  /// throws FaultError when one fires. Thread-safe.
  void on_launch(const std::string& kernel_name);
  void on_host_copy(const std::string& kernel_name, double bytes);
  void on_allocation(std::size_t bytes);

  /// Total faults injected across all arms so far.
  std::int64_t injected() const;

  /// Events observed at a site so far (matching any arm's filter or not).
  std::int64_t seen(FaultSite site) const;

 private:
  struct ArmState {
    FaultArm arm;
    Rng rng;
    std::int64_t seen = 0;
    std::int64_t injected = 0;
  };

  void check(FaultSite site, const std::string& name);

  mutable std::mutex mu_;
  std::vector<ArmState> arms_;
  std::int64_t injected_total_ = 0;
  std::int64_t seen_[3] = {0, 0, 0};
};

/// RAII guard that routes ScratchPool allocations through `plan` (the
/// allocation fault site) for its lifetime; detaches on destruction.
class ScopedAllocFaults {
 public:
  explicit ScopedAllocFaults(FaultPlan& plan);
  ~ScopedAllocFaults();

  ScopedAllocFaults(const ScopedAllocFaults&) = delete;
  ScopedAllocFaults& operator=(const ScopedAllocFaults&) = delete;
};

}  // namespace cstf::simgpu
