#include "simgpu/cost_model.hpp"

#include <algorithm>

namespace cstf::simgpu {

double cache_miss_fraction(double working_set_bytes, double cache_bytes) {
  // Capacity misses only; compulsory (cold) traffic is charged separately in
  // model_time as one pass over the working set.
  if (working_set_bytes <= 0.0 || working_set_bytes <= cache_bytes) return 0.0;
  return (working_set_bytes - cache_bytes) / working_set_bytes;
}

double parallel_utilization(double parallel_items, double saturation) {
  if (saturation <= 0.0) return 1.0;
  if (parallel_items <= 0.0) return 1.0 / saturation;
  return std::min(1.0, parallel_items / saturation);
}

double atomic_contention_factor(double concurrent_lanes, double slots) {
  if (slots <= 0.0 || concurrent_lanes <= 1.0) return 1.0;
  return 1.0 + (concurrent_lanes - 1.0) / slots;
}

TimeBreakdown model_time(const KernelStats& stats, const DeviceSpec& spec) {
  TimeBreakdown t;

  const double util =
      parallel_utilization(stats.parallel_items, spec.saturation_parallelism);

  // Compute: throughput-bound at saturation, per-lane-bound below it — a
  // kernel with few independent work items runs each item's op chain at the
  // serial rate, concurrently, rather than at a util-scaled throughput.
  const double throughput_s =
      stats.flops / (spec.peak_flops * stats.compute_efficiency);
  const double per_lane_s =
      stats.parallel_items > 0.0
          ? (stats.flops / stats.parallel_items) / spec.serial_op_rate
          : 0.0;
  t.compute_s = std::max(throughput_s, per_lane_s);

  const double miss =
      cache_miss_fraction(stats.working_set_bytes, spec.cache_bytes);
  const double stream_bw =
      spec.mem_bandwidth * spec.stream_bw_fraction * std::max(util, 0.25);
  const double random_bw =
      spec.mem_bandwidth * spec.random_bw_fraction * std::max(util, 0.25);
  // Reused/random traffic: capacity misses at the corresponding bandwidth,
  // plus the compulsory cold pass over the working set (once).
  auto cached_bytes = [&](double bytes) {
    if (bytes <= 0.0) return 0.0;
    const double cold = std::min(bytes, stats.working_set_bytes);
    return bytes * miss + cold * (1.0 - miss);
  };
  t.memory_s = (stats.bytes_streamed + cached_bytes(stats.bytes_reused)) /
                   stream_bw +
               cached_bytes(stats.bytes_random) / random_bw;

  t.serial_s = stats.serial_depth / spec.serial_op_rate;

  if (stats.atomic_ops > 0.0 && spec.atomic_rate > 0.0) {
    // Lanes concurrently in flight: available work items, capped at what the
    // device can keep resident.
    const double lanes = std::min(std::max(1.0, stats.parallel_items),
                                  spec.saturation_parallelism);
    t.atomic_s = stats.atomic_ops *
                 atomic_contention_factor(lanes, stats.atomic_slots) /
                 spec.atomic_rate;
  }

  if (stats.host_link_bytes > 0.0 && spec.host_link_bandwidth > 0.0) {
    t.link_s = stats.host_link_bytes / spec.host_link_bandwidth;
  }

  t.launch_s = static_cast<double>(stats.launches) * spec.launch_overhead;

  // Compute, memory, serial chains, atomics, and double-buffered staging
  // overlap (roofline max); launch overhead does not.
  t.total_s = t.launch_s + std::max({t.compute_s, t.memory_s, t.serial_s,
                                     t.atomic_s, t.link_s});
  return t;
}

TimeBreakdown model_sequence(const std::vector<KernelStats>& sequence,
                             const DeviceSpec& spec) {
  TimeBreakdown sum;
  for (const KernelStats& stats : sequence) {
    const TimeBreakdown t = model_time(stats, spec);
    sum.compute_s += t.compute_s;
    sum.memory_s += t.memory_s;
    sum.serial_s += t.serial_s;
    sum.atomic_s += t.atomic_s;
    sum.link_s += t.link_s;
    sum.launch_s += t.launch_s;
    sum.total_s += t.total_s;
  }
  return sum;
}

}  // namespace cstf::simgpu
