// Metered device BLAS/solver: the cuBLAS/cuSOLVER surface the baseline (non-
// fused) ADMM is composed from.
//
// Each wrapper executes the host implementation from la/ and records the
// exact global-memory traffic the equivalent cuBLAS call would generate —
// every operand read once, every output written once, no inter-call reuse.
// That "no reuse between kernels" property is precisely the inefficiency the
// paper's operation fusion removes (Section 4.3.1), so metering it faithfully
// is what makes the Figure 4 ablation reproducible.
#pragma once

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "simgpu/device.hpp"

namespace cstf::simgpu {

/// C = alpha*op(A)*op(B) + beta*C (cublasDgemm).
void dgemm(Device& dev, la::Op op_a, la::Op op_b, real_t alpha,
           const Matrix& a, const Matrix& b, real_t beta,
           Matrix& c, Stream stream = {});

/// S = A^T A (cublasDsyrk, full storage).
void dsyrk_gram(Device& dev, const Matrix& a, Matrix& s,
                Stream stream = {});

/// C = alpha*A + beta*B elementwise (cublasDgeam, no transpose). C may alias
/// A and/or B (la::geam's non-transposed path is index-aligned), which the
/// unfused ADMM's in-place dual update relies on.
void dgeam(Device& dev, real_t alpha, const Matrix& a, real_t beta,
           const Matrix& b, Matrix& c, Stream stream = {});

/// Cholesky factorization of S (cusolverDnDpotrf).
void dpotrf(Device& dev, const Matrix& s, Matrix& l, Stream stream = {});

/// In-place Cholesky solve of (LL^T) X = B (cusolverDnDpotrs): two
/// triangular solves, whose serialized substitution chains are charged to
/// KernelStats::serial_depth — the GPU-hostile behaviour pre-inversion
/// removes.
void dpotrs(Device& dev, const Matrix& l, Matrix& b, Stream stream = {});

/// Right-side Cholesky solve X (L L^T) = B in place, B tall-skinny (I x R).
/// This is the triangular-solve step of the baseline (non-pre-inverted)
/// ADMM: two substitution passes over B, each row a length-2R dependent
/// chain, parallel only across rows — the serialization Section 4.3.2 calls
/// out.
void dpotrs_right(Device& dev, const Matrix& l, Matrix& b,
                  Stream stream = {});

/// Explicit SPD inverse via Cholesky solve against the identity; the
/// pre-inversion step of cuADMM (paid once per outer iteration).
void dpotri(Device& dev, const Matrix& l, Matrix& inverse,
            Stream stream = {});

/// Squared Frobenius norm with one read of the operand (cublasDnrm2-style
/// reduction).
real_t dnrm2_sq(Device& dev, const Matrix& a, Stream stream = {});

}  // namespace cstf::simgpu
