// CUDA-like kernel-launch interface executing on the host.
//
// Kernels are written against the familiar grid/block/thread decomposition:
//
//   simgpu::launch(dev, "my_kernel", {grid, block, shmem_reals}, stats,
//                  [&](const simgpu::KernelCtx& ctx) {
//                    index_t gid = ctx.global_thread_id();
//                    ...
//                  });
//
// Semantics vs real CUDA:
//  * Blocks execute in parallel across host worker threads; there is no
//    cross-block ordering, exactly like CUDA — kernels must not assume one.
//  * Threads *within* a block execute sequentially in threadIdx order on one
//    host worker. This makes block-level reductions into shared memory safe
//    without __syncthreads, but kernels must not rely on warp-parallel
//    side effects. All kernels in this repository are per-item independent
//    or block-reduce, so the restriction never binds.
//  * `ctx.shared` is a per-block scratch buffer of `shmem_reals` real_t,
//    zeroed at block start.
#pragma once

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "parallel/parallel_for.hpp"
#include "simgpu/device.hpp"

namespace cstf::simgpu {

/// Launch geometry (1-D grid and block; the kernels in this library all
/// linearize their index spaces), plus the stream the launch is issued to —
/// the fourth launch-config parameter, as in CUDA's <<<grid, block, shmem,
/// stream>>>. The stream affects only the modeled timeline, never execution.
struct LaunchConfig {
  index_t grid_dim = 1;
  index_t block_dim = 1;
  index_t shmem_reals = 0;
  Stream stream{};
};

/// Per-thread execution context handed to the kernel body.
struct KernelCtx {
  index_t block_idx = 0;
  index_t thread_idx = 0;
  index_t block_dim = 1;
  index_t grid_dim = 1;
  /// Per-block shared scratch (zeroed); size = LaunchConfig::shmem_reals.
  real_t* shared = nullptr;

  index_t global_thread_id() const { return block_idx * block_dim + thread_idx; }
  index_t total_threads() const { return grid_dim * block_dim; }
};

/// Executes `body` for every (block, thread) pair and records `stats` (with
/// launches/parallel_items auto-filled if left 0) on `device`.
template <typename Body>
void launch(Device& device, const std::string& kernel_name, LaunchConfig cfg,
            KernelStats stats, const Body& body) {
  CSTF_CHECK(cfg.grid_dim >= 1 && cfg.block_dim >= 1);
  if (stats.launches == 0) stats.launches = 1;
  if (stats.parallel_items == 0.0) {
    stats.parallel_items = static_cast<double>(cfg.grid_dim * cfg.block_dim);
  }

  Timer wall;
  const auto shmem = static_cast<std::size_t>(cfg.shmem_reals);
  parallel_for(0, cfg.grid_dim, [&](index_t block) {
    // Per-worker scratch reused across every block this worker runs; only the
    // zero-fill is per-block. (A fresh vector per block costs a heap
    // round-trip per block per launch on shmem kernels.)
    thread_local std::vector<real_t> shared;
    if (shared.size() < shmem) shared.resize(shmem);
    std::fill_n(shared.begin(), shmem, real_t{0});
    KernelCtx ctx;
    ctx.block_idx = block;
    ctx.block_dim = cfg.block_dim;
    ctx.grid_dim = cfg.grid_dim;
    ctx.shared = shmem > 0 ? shared.data() : nullptr;
    for (index_t t = 0; t < cfg.block_dim; ++t) {
      ctx.thread_idx = t;
      body(ctx);
    }
  }, /*grain=*/1);
  device.record(kernel_name, stats, wall.seconds(), cfg.stream);
}

/// Grid-stride helper: number of blocks covering `n` items with `block_dim`
/// threads per block, capped at `max_blocks` (kernels then loop).
inline index_t blocks_for(index_t n, index_t block_dim,
                          index_t max_blocks = 65535) {
  const index_t blocks = (n + block_dim - 1) / block_dim;
  return blocks < 1 ? 1 : (blocks > max_blocks ? max_blocks : blocks);
}

}  // namespace cstf::simgpu
