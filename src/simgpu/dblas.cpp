#include "simgpu/dblas.hpp"

#include "common/timer.hpp"

namespace cstf::simgpu {

namespace {

double matrix_bytes(const Matrix& m) {
  return static_cast<double>(m.size()) * kWord;
}

}  // namespace

void dgemm(Device& dev, la::Op op_a, la::Op op_b, real_t alpha,
           const Matrix& a, const Matrix& b, real_t beta,
           Matrix& c, Stream stream) {
  const double m = static_cast<double>(c.rows());
  const double n = static_cast<double>(c.cols());
  const double k = static_cast<double>(la::op_cols(a, op_a));
  KernelStats stats;
  stats.flops = 2.0 * m * n * k;
  // A and B are read, C written; C also read when beta != 0. The smaller
  // operand (for cSTF: the RxR matrix) is cache-resident during the sweep.
  stats.bytes_streamed = matrix_bytes(c) * (beta != 0.0 ? 2.0 : 1.0);
  const double bytes_a = matrix_bytes(a);
  const double bytes_b = matrix_bytes(b);
  if (bytes_a >= bytes_b) {
    stats.bytes_streamed += bytes_a;
    stats.bytes_reused += bytes_b;
    stats.working_set_bytes = bytes_b;
  } else {
    stats.bytes_streamed += bytes_b;
    stats.bytes_reused += bytes_a;
    stats.working_set_bytes = bytes_a;
  }
  stats.parallel_items = m * n;
  stats.launches = 1;
  Timer wall;
  la::gemm(op_a, op_b, alpha, a, b, beta, c);
  dev.record("dgemm", stats, wall.seconds(), stream);
}

void dsyrk_gram(Device& dev, const Matrix& a, Matrix& s,
                Stream stream) {
  const double n = static_cast<double>(a.rows());
  const double r = static_cast<double>(a.cols());
  KernelStats stats;
  stats.flops = n * r * (r + 1.0);  // symmetric half of 2*n*r^2
  stats.bytes_streamed = matrix_bytes(a) + matrix_bytes(s);
  stats.parallel_items = r * (r + 1.0) / 2.0;
  stats.launches = 1;
  Timer wall;
  la::gram(a, s);
  dev.record("dsyrk", stats, wall.seconds(), stream);
}

void dgeam(Device& dev, real_t alpha, const Matrix& a, real_t beta,
           const Matrix& b, Matrix& c, Stream stream) {
  KernelStats stats;
  const double n = static_cast<double>(a.size());
  stats.flops = 3.0 * n;  // two scales + one add
  stats.bytes_streamed = 3.0 * n * kWord;  // read A, read B, write C
  stats.parallel_items = n;
  stats.launches = 1;
  Timer wall;
  la::geam(la::Op::kNone, la::Op::kNone, alpha, a, beta, b, c);
  dev.record("dgeam", stats, wall.seconds(), stream);
}

void dpotrf(Device& dev, const Matrix& s, Matrix& l, Stream stream) {
  const double r = static_cast<double>(s.rows());
  KernelStats stats;
  stats.flops = r * r * r / 3.0;
  stats.bytes_streamed = 2.0 * matrix_bytes(s);
  // Column j depends on all columns k < j: critical path ~ r dependent
  // panel steps of ~r ops each.
  stats.serial_depth = r * r;
  stats.parallel_items = r;
  stats.launches = 1;
  Timer wall;
  la::cholesky_factor(s, l);
  dev.record("dpotrf", stats, wall.seconds(), stream);
}

void dpotrs(Device& dev, const Matrix& l, Matrix& b, Stream stream) {
  const double r = static_cast<double>(l.rows());
  const double cols = static_cast<double>(b.cols());
  KernelStats stats;
  stats.flops = 2.0 * r * r * cols;  // forward + backward substitution
  stats.bytes_streamed = 2.0 * matrix_bytes(b);
  stats.bytes_reused = 2.0 * matrix_bytes(l);
  stats.working_set_bytes = matrix_bytes(l);
  // Each column's substitution is a length-2r dependent chain; columns are
  // parallel, so the depth (not the width) is what serializes.
  stats.serial_depth = 2.0 * r * r;
  stats.parallel_items = cols;
  stats.launches = 2;
  Timer wall;
  la::cholesky_solve(l, b);
  dev.record("dpotrs", stats, wall.seconds(), stream);
}

void dpotrs_right(Device& dev, const Matrix& l, Matrix& b,
                  Stream stream) {
  const double r = static_cast<double>(l.rows());
  const double rows = static_cast<double>(b.rows());
  KernelStats stats;
  stats.flops = 2.0 * rows * r * r;
  // B is read and written by each of the two substitution passes.
  stats.bytes_streamed = 4.0 * matrix_bytes(b);
  stats.bytes_reused = 2.0 * matrix_bytes(l);
  stats.working_set_bytes = matrix_bytes(l);
  stats.serial_depth = 2.0 * r * r;  // per-row dependent chain
  stats.parallel_items = rows;       // rows, not rows*R — the PI advantage
  stats.launches = 2;
  // Dependent substitution chains preclude FMA pipelining; dense TRSM with a
  // small triangular factor runs far below GEMM efficiency on every target.
  stats.compute_efficiency = 0.15;
  Timer wall;
  la::cholesky_solve_right(l, b);
  dev.record("dpotrs_right", stats, wall.seconds(), stream);
}

void dpotri(Device& dev, const Matrix& l, Matrix& inverse,
            Stream stream) {
  const double r = static_cast<double>(l.rows());
  KernelStats stats;
  stats.flops = 2.0 * r * r * r;
  stats.bytes_streamed = 2.0 * matrix_bytes(l);
  stats.serial_depth = 2.0 * r * r;
  stats.parallel_items = r;
  stats.launches = 1;
  Timer wall;
  la::cholesky_invert(l, inverse);
  dev.record("dpotri", stats, wall.seconds(), stream);
}

real_t dnrm2_sq(Device& dev, const Matrix& a, Stream stream) {
  KernelStats stats;
  const double n = static_cast<double>(a.size());
  stats.flops = 2.0 * n;
  stats.bytes_streamed = n * kWord;
  stats.parallel_items = n;
  stats.launches = 1;
  Timer wall;
  const real_t result = la::frobenius_norm_sq(a);
  dev.record("dnrm2", stats, wall.seconds(), stream);
  return result;
}

}  // namespace cstf::simgpu
