// device.hpp is header-only; this TU anchors the target.
#include "simgpu/device.hpp"
