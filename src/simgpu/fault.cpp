#include "simgpu/fault.hpp"

#include <cstdlib>
#include <sstream>

#include "common/env.hpp"
#include "parallel/scratch_pool.hpp"

namespace cstf::simgpu {

namespace {

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw Error("fault plan: bad spec '" + spec + "': " + why);
}

/// Strict numeric parses for the spec grammar — a typo'd fault plan must be
/// an error, not a silently different experiment.
std::int64_t parse_int(const std::string& spec, const std::string& value) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    bad_spec(spec, "'" + value + "' is not an integer");
  }
  return v;
}

double parse_real(const std::string& spec, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    bad_spec(spec, "'" + value + "' is not a number");
  }
  return v;
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kKernelLaunch: return "launch";
    case FaultSite::kAllocation: return "alloc";
    case FaultSite::kHostLinkCopy: return "copy";
  }
  return "?";
}

FaultArm parse_fault_arm(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) bad_spec(spec, "missing ':' after the site");
  const std::string site = spec.substr(0, colon);
  FaultArm arm;
  if (site == "launch") arm.site = FaultSite::kKernelLaunch;
  else if (site == "alloc") arm.site = FaultSite::kAllocation;
  else if (site == "copy") arm.site = FaultSite::kHostLinkCopy;
  else bad_spec(spec, "unknown site '" + site + "'");

  std::stringstream rest(spec.substr(colon + 1));
  std::string kv;
  while (std::getline(rest, kv, ',')) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos) bad_spec(spec, "'" + kv + "' is not key=val");
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (key == "k") arm.k = parse_int(spec, value);
    else if (key == "p") arm.p = parse_real(spec, value);
    else if (key == "seed") {
      arm.seed = static_cast<std::uint64_t>(parse_int(spec, value));
    } else if (key == "max") arm.max_faults = parse_int(spec, value);
    else if (key == "kernel") arm.kernel = value;
    else if (key == "fatal") arm.fatal = parse_int(spec, value) != 0;
    else bad_spec(spec, "unknown key '" + key + "'");
  }
  if (arm.k <= 0 && arm.p <= 0.0) bad_spec(spec, "needs k=N or p=F");
  if (arm.k > 0 && arm.p > 0.0) bad_spec(spec, "k and p are exclusive");
  if (arm.p < 0.0 || arm.p > 1.0) bad_spec(spec, "p must be in [0, 1]");
  return arm;
}

FaultPlan::FaultPlan(const std::string& spec) {
  std::stringstream arms(spec);
  std::string one;
  while (std::getline(arms, one, ';')) {
    if (!one.empty()) add(parse_fault_arm(one));
  }
}

FaultPlan FaultPlan::from_env() {
  return FaultPlan(env_string("CSTF_FAULT_PLAN", ""));
}

void FaultPlan::add(FaultArm arm) {
  std::lock_guard<std::mutex> lock(mu_);
  ArmState state;
  state.arm = std::move(arm);
  state.rng = Rng(state.arm.seed);
  arms_.push_back(std::move(state));
}

bool FaultPlan::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !arms_.empty();
}

void FaultPlan::check(FaultSite site, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  seen_[static_cast<int>(site)] += 1;
  for (ArmState& state : arms_) {
    const FaultArm& arm = state.arm;
    if (arm.site != site) continue;
    if (!arm.kernel.empty() && name.find(arm.kernel) == std::string::npos) {
      continue;
    }
    const std::int64_t cap = arm.max_faults >= 0 ? arm.max_faults
                             : arm.k > 0        ? 1
                                                : -1;
    if (cap >= 0 && state.injected >= cap) continue;
    state.seen += 1;
    const bool fire = arm.k > 0 ? (state.seen == arm.k)
                                : (state.rng.uniform() < arm.p);
    if (!fire) continue;
    state.injected += 1;
    injected_total_ += 1;
    std::string what = std::string("injected fault: ") +
                       fault_site_name(site) + " #" +
                       std::to_string(state.seen);
    if (!name.empty()) what += " (" + name + ")";
    if (arm.fatal) what += " [fatal]";
    throw FaultError(site, what, !arm.fatal);
  }
}

void FaultPlan::on_launch(const std::string& kernel_name) {
  check(FaultSite::kKernelLaunch, kernel_name);
}

void FaultPlan::on_host_copy(const std::string& kernel_name, double bytes) {
  (void)bytes;
  check(FaultSite::kHostLinkCopy, kernel_name);
}

void FaultPlan::on_allocation(std::size_t bytes) {
  check(FaultSite::kAllocation, std::to_string(bytes) + " bytes");
}

std::int64_t FaultPlan::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_total_;
}

std::int64_t FaultPlan::seen(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_[static_cast<int>(site)];
}

ScopedAllocFaults::ScopedAllocFaults(FaultPlan& plan) {
  ScratchPool::set_alloc_hook(
      [&plan](std::size_t bytes) { plan.on_allocation(bytes); });
}

ScopedAllocFaults::~ScopedAllocFaults() { ScratchPool::set_alloc_hook({}); }

}  // namespace cstf::simgpu
