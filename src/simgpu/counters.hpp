// Metered quantities for one kernel launch (or an accumulation of launches).
#pragma once

#include <cstdint>

namespace cstf::simgpu {

/// Bytes per floating-point word (the paper's model assumes 8-byte doubles).
inline constexpr double kWord = 8.0;

/// What a kernel did, in machine-independent units. Filled in by the code
/// that launches the kernel (each launcher knows its own traffic exactly —
/// the counts mirror the paper's Section 4.3 read/write accounting).
struct KernelStats {
  /// Floating-point operations executed.
  double flops = 0.0;

  /// Unit-stride global-memory traffic (bytes) with no expected reuse.
  double bytes_streamed = 0.0;

  /// Traffic (bytes) that re-touches a bounded working set; the cost model
  /// discounts it by the fraction of `working_set_bytes` that fits in cache.
  double bytes_reused = 0.0;

  /// Size of the working set the reused traffic touches.
  double working_set_bytes = 0.0;

  /// Random-access (gather/scatter) traffic in bytes; charged at the
  /// device's random-access bandwidth.
  double bytes_random = 0.0;

  /// Bytes staged over the host link (PCIe/NVLink) concurrently with the
  /// kernel — the out-of-memory streaming mode. The cost model overlaps this
  /// with compute/memory (double buffering): the slower of the two binds.
  double host_link_bytes = 0.0;

  /// Length of the longest dependent-operation chain (critical path).
  /// Triangular solves make this O(R) per column; elementwise kernels O(1).
  double serial_depth = 0.0;

  /// Atomic read-modify-write updates issued (e.g. MTTKRP scatter adds).
  /// Their bandwidth cost is already part of `bytes_random`; this count
  /// feeds the *contention* term — conflicting atomics serialize, and the
  /// expected slowdown grows with concurrency over `atomic_slots`.
  double atomic_ops = 0.0;

  /// Number of distinct memory words the atomic updates target (the output
  /// working set — dims[mode] * R for an MTTKRP scatter). Collision
  /// probability, and hence serialization, scales as lanes / slots; a short
  /// mode (few slots) under full occupancy is the pathological case.
  double atomic_slots = 0.0;

  /// Number of independent work items available (for the saturation model).
  double parallel_items = 0.0;

  /// Number of kernel launches represented.
  std::int64_t launches = 0;

  /// Fraction of the machine's peak flop rate this kernel's code can reach
  /// when compute-bound (instruction mix: FMA-vectorizable streaming code is
  /// ~1.0; branchy scalar code with dependent chains — e.g. a blocked ADMM's
  /// substitution + prox loops — is ~0.1). Orthogonal to `parallel_items`,
  /// which models width, not per-lane efficiency.
  double compute_efficiency = 1.0;

  KernelStats& operator+=(const KernelStats& o) {
    flops += o.flops;
    bytes_streamed += o.bytes_streamed;
    bytes_reused += o.bytes_reused;
    // Working sets and parallelism do not add across launches; keep the max
    // so an accumulated record is modeled conservatively.
    working_set_bytes = working_set_bytes > o.working_set_bytes
                            ? working_set_bytes
                            : o.working_set_bytes;
    bytes_random += o.bytes_random;
    host_link_bytes += o.host_link_bytes;
    serial_depth += o.serial_depth;
    atomic_ops += o.atomic_ops;
    // Slot counts do not add across launches; keep the smallest nonzero one
    // (fewer slots = more contention) so an accumulated record is never
    // modeled faster than the sum of its launches.
    if (atomic_slots <= 0.0) {
      atomic_slots = o.atomic_slots;
    } else if (o.atomic_slots > 0.0 && o.atomic_slots < atomic_slots) {
      atomic_slots = o.atomic_slots;
    }
    parallel_items =
        parallel_items > o.parallel_items ? parallel_items : o.parallel_items;
    launches += o.launches;
    // Conservative for accumulated records: the slowest code path bounds.
    compute_efficiency = compute_efficiency < o.compute_efficiency
                             ? compute_efficiency
                             : o.compute_efficiency;
    return *this;
  }

  double total_bytes() const {
    return bytes_streamed + bytes_reused + bytes_random;
  }

  /// Arithmetic intensity in flop/byte over nominal (cache-less) traffic —
  /// comparable to the paper's Eq. 5.
  double arithmetic_intensity() const {
    const double bytes = total_bytes();
    return bytes > 0.0 ? flops / bytes : 0.0;
  }
};

}  // namespace cstf::simgpu
