#include "simgpu/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace cstf::simgpu {

namespace {

void accumulate(Tracer::Aggregate& agg, const TraceSpan& span) {
  agg.stats += span.stats;
  agg.wall_s += span.wall_s;
  agg.modeled_s += span.modeled_s;
  agg.spans += 1;
}

}  // namespace

std::string Tracer::joined_phase_locked() const {
  std::string out;
  for (const std::string& p : phase_stack_) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

void Tracer::begin_phase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  phase_stack_.push_back(name);
  phase_start_.push_back(epoch_.seconds());
}

void Tracer::end_phase() {
  std::lock_guard<std::mutex> lock(mu_);
  CSTF_CHECK_MSG(!phase_stack_.empty(), "end_phase with no open phase");
  PhaseSpan span;
  span.phase = joined_phase_locked();
  span.start_s = phase_start_.back();
  span.wall_s = epoch_.seconds() - span.start_s;
  phase_spans_.push_back(std::move(span));
  phase_stack_.pop_back();
  phase_start_.pop_back();
}

void Tracer::add_span(const std::string& kernel, const KernelStats& stats,
                      double wall_s, double modeled_s, int stream,
                      std::int64_t seq, const std::vector<std::int64_t>& deps) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.kernel = kernel;
  span.phase = joined_phase_locked();
  const double now = epoch_.seconds();
  span.start_s = wall_s < now ? now - wall_s : 0.0;
  span.wall_s = wall_s;
  span.modeled_s = modeled_s;
  span.stats = stats;
  span.stream = stream;
  span.seq = seq;
  span.deps = deps;
  spans_.push_back(std::move(span));
}

void Tracer::name_stream(int stream, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  stream_names_[stream] = name;
}

std::map<int, std::string> Tracer::stream_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_names_;
}

std::vector<TraceSpan> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<PhaseSpan> Tracer::phase_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phase_spans_;
}

std::string Tracer::current_phase() const {
  std::lock_guard<std::mutex> lock(mu_);
  return joined_phase_locked();
}

std::size_t Tracer::phase_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phase_stack_.size();
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::map<std::string, Tracer::Aggregate> Tracer::per_kernel() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Aggregate> out;
  for (const TraceSpan& span : spans_) accumulate(out[span.kernel], span);
  return out;
}

std::map<std::string, Tracer::Aggregate> Tracer::per_phase() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Aggregate> out;
  for (const TraceSpan& span : spans_) accumulate(out[span.phase], span);
  return out;
}

double Tracer::total_modeled_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  double t = 0.0;
  for (const TraceSpan& span : spans_) t += span.modeled_s;
  return t;
}

double Tracer::total_wall_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  double t = 0.0;
  for (const TraceSpan& span : spans_) t += span.wall_s;
  return t;
}

std::string Tracer::summary_table() const {
  const auto kernels = per_kernel();
  std::vector<std::pair<std::string, Aggregate>> rows(kernels.begin(),
                                                      kernels.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.modeled_s > b.second.modeled_s;
  });
  double total_modeled = 0.0;
  for (const auto& [name, agg] : rows) total_modeled += agg.modeled_s;

  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-26s %6s %8s %10s %10s %8s %12s %12s %7s\n",
                "kernel", "spans", "launches", "gflop", "gbyte", "flop/B",
                "modeled_s", "wall_s", "share");
  os << line;
  os << std::string(104, '-') << '\n';
  for (const auto& [name, agg] : rows) {
    const double bytes = agg.stats.total_bytes();
    std::snprintf(line, sizeof(line),
                  "%-26s %6lld %8lld %10.3f %10.3f %8.3f %12.6f %12.6f %6.1f%%\n",
                  name.c_str(), static_cast<long long>(agg.spans),
                  static_cast<long long>(agg.stats.launches),
                  agg.stats.flops / 1e9, bytes / 1e9,
                  bytes > 0.0 ? agg.stats.flops / bytes : 0.0, agg.modeled_s,
                  agg.wall_s,
                  total_modeled > 0.0 ? 100.0 * agg.modeled_s / total_modeled
                                      : 0.0);
    os << line;
  }
  os << std::string(104, '-') << '\n';
  std::snprintf(line, sizeof(line), "%-26s %6zu %8s %10s %10s %8s %12.6f %12.6f\n",
                "total", span_count(), "", "", "", "", total_modeled,
                total_wall_s());
  os << line;
  return os.str();
}

std::string Tracer::chrome_trace_json() const {
  // Copy under the lock, format outside it.
  std::vector<TraceSpan> spans;
  std::vector<PhaseSpan> phases;
  std::map<int, std::string> lane_names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    phases = phase_spans_;
    lane_names = stream_names_;
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  // Lane names as chrome metadata events: tid 0 is the phase lane, tid 1 the
  // default stream, tid 1 + k each created stream (named via name_stream —
  // Device::create_stream forwards its stream names; the serve engines use
  // this for their per-engine lanes).
  lane_names.emplace(0, "default stream");
  for (const TraceSpan& s : spans) lane_names.emplace(s.stream, "");
  const auto metadata = [&](int tid, const std::string& name) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << json::escape(name) << "\"}}";
  };
  metadata(0, "phases");
  for (const auto& [stream, name] : lane_names) {
    metadata(1 + stream,
             name.empty() ? "stream " + std::to_string(stream) : name);
  }
  for (const PhaseSpan& p : phases) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json::escape(p.phase)
       << "\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":1,\"tid\":0"
       << ",\"ts\":" << json::number(p.start_s * 1e6)
       << ",\"dur\":" << json::number(p.wall_s * 1e6) << '}';
  }
  // Spans by device-timeline index, for resolving dependency edges to their
  // source span's lane and end time.
  std::map<std::int64_t, const TraceSpan*> by_seq;
  for (const TraceSpan& s : spans) {
    if (s.seq >= 0) by_seq[s.seq] = &s;
  }
  const auto dur_of = [](const TraceSpan& s) {
    return s.wall_s > 0.0 ? s.wall_s : s.modeled_s;
  };
  std::int64_t flow_id = 0;
  for (const TraceSpan& s : spans) {
    if (!first) os << ',';
    first = false;
    // Stream lanes: default stream on tid 1 (unchanged from before streams
    // existed), stream k on tid 1 + k; phases keep tid 0.
    const double dur_s = dur_of(s);
    os << "{\"name\":\"" << json::escape(s.kernel)
       << "\",\"cat\":\"kernel\",\"ph\":\"X\",\"pid\":1,\"tid\":" << 1 + s.stream
       << ",\"ts\":" << json::number(s.start_s * 1e6)
       << ",\"dur\":" << json::number(dur_s * 1e6) << ",\"args\":{"
       << "\"phase\":\"" << json::escape(s.phase) << '"'
       << ",\"stream\":" << s.stream
       << ",\"flops\":" << json::number(s.stats.flops)
       << ",\"bytes\":" << json::number(s.stats.total_bytes())
       << ",\"launches\":" << s.stats.launches
       << ",\"modeled_s\":" << json::number(s.modeled_s)
       << ",\"wall_s\":" << json::number(s.wall_s) << "}}";
    // One flow arrow per event-dependency edge: "s" at the end of the source
    // span, "f" (binding to the enclosing slice) at the start of this span.
    for (const std::int64_t dep : s.deps) {
      const auto it = by_seq.find(dep);
      if (it == by_seq.end()) continue;
      const TraceSpan& src = *it->second;
      os << ",{\"name\":\"event\",\"cat\":\"dep\",\"ph\":\"s\",\"pid\":1"
         << ",\"tid\":" << 1 + src.stream << ",\"id\":" << flow_id
         << ",\"ts\":" << json::number((src.start_s + dur_of(src)) * 1e6) << '}'
         << ",{\"name\":\"event\",\"cat\":\"dep\",\"ph\":\"f\",\"bp\":\"e\""
         << ",\"pid\":1,\"tid\":" << 1 + s.stream << ",\"id\":" << flow_id
         << ",\"ts\":" << json::number(s.start_s * 1e6) << '}';
      ++flow_id;
    }
  }
  os << "]}";
  return os.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  CSTF_CHECK_MSG(out.good(), "cannot write trace file " << path);
  out << chrome_trace_json() << '\n';
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  phase_spans_.clear();
  phase_stack_.clear();
  phase_start_.clear();
  epoch_.reset();
}

namespace json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent JSON parser (RFC 8259 subset: no surrogate-pair
/// decoding — \uXXXX escapes are validated and kept verbatim).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    if (++depth_ > 256) fail("nesting too deep");
    Value v;
    switch (peek()) {
      case '{': v = parse_object(); break;
      case '[': v = parse_array(); break;
      case '"':
        v.type = Value::Type::kString;
        v.str = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.type = Value::Type::kBool;
        v.boolean = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.type = Value::Type::kBool;
        v.boolean = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.type = Value::Type::kNull;
        break;
      default: v = parse_number();
    }
    --depth_;
    return v;
  }

  Value parse_object() {
    Value v;
    v.type = Value::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    Value v;
    v.type = Value::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + static_cast<std::size_t>(i)]))) {
              fail("bad \\u escape");
            }
          }
          out += "\\u";
          out.append(text_, pos_, 4);
          pos_ += 4;
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("bad number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad fraction");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    Value v;
    v.type = Value::Type::kNumber;
    v.num = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

bool valid(const std::string& text, std::string* error) {
  try {
    parse(text);
    return true;
  } catch (const Error& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

}  // namespace json

}  // namespace cstf::simgpu
