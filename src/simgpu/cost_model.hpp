// Roofline-style execution-time model over metered kernel statistics.
#pragma once

#include <vector>

#include "simgpu/counters.hpp"
#include "simgpu/device_spec.hpp"

namespace cstf::simgpu {

/// Breakdown of one modeled kernel (or kernel-sequence) time.
struct TimeBreakdown {
  double compute_s = 0.0;   // flops at achievable throughput
  double memory_s = 0.0;    // effective bytes at achievable bandwidth
  double serial_s = 0.0;    // critical-path chain at the serial op rate
  double atomic_s = 0.0;    // atomic RMWs, inflated by expected contention
  double link_s = 0.0;      // host-link staging (overlapped double-buffered)
  double launch_s = 0.0;    // per-launch fixed overhead
  double total_s = 0.0;  // launch + max(compute, memory, serial, atomic, link)
};

/// Fraction of `bytes_reused` that misses cache given the working set; 1.0
/// when nothing fits, with a small compulsory-miss floor when everything fits.
double cache_miss_fraction(double working_set_bytes, double cache_bytes);

/// Throughput utilization given available parallelism vs the device's
/// saturation point (linear ramp, capped at 1).
double parallel_utilization(double parallel_items, double saturation);

/// Expected serialization multiplier for atomic updates: with
/// `concurrent_lanes` lanes issuing atomics uniformly over `slots` distinct
/// words, each update expects (lanes - 1) / slots colliders queued behind the
/// same word, so cost inflates by 1 + (lanes - 1) / slots. Degenerates to 1
/// (no contention) for a single lane or an unbounded slot count.
double atomic_contention_factor(double concurrent_lanes, double slots);

/// Models the execution time of `stats` on `spec`.
TimeBreakdown model_time(const KernelStats& stats, const DeviceSpec& spec);

/// Models a dependent kernel sequence: per-kernel roofline, summed. Unlike
/// collapsing the sequence into one accumulated KernelStats record (whose
/// `+=` keeps the *max* working set across launches), this keeps each
/// kernel's own working set, so a sequence that isolates its random traffic
/// into small-working-set kernels models faster than the same traffic lumped
/// together — the reuse-aware comparison behind tree-vs-flat MTTKRP
/// selection (mttkrp/dimtree.hpp).
TimeBreakdown model_sequence(const std::vector<KernelStats>& sequence,
                             const DeviceSpec& spec);

}  // namespace cstf::simgpu
