#include "simgpu/stream.hpp"

#include <algorithm>
#include <utility>

namespace cstf::simgpu {

Stream Timeline::create_stream(std::string name) {
  const int id = static_cast<int>(names_.size());
  names_.push_back(std::move(name));
  last_on_stream_.push_back(-1);
  pending_.emplace_back();
  return Stream(id);
}

std::int64_t Timeline::add_span(Stream stream, std::string kernel,
                                const KernelStats& stats) {
  const auto s = static_cast<std::size_t>(stream.id());
  Span span;
  span.kernel = std::move(kernel);
  span.stream = stream.id();
  span.stats = stats;
  span.deps = std::move(pending_[s]);
  pending_[s].clear();
  spans_.push_back(std::move(span));
  const auto idx = static_cast<std::int64_t>(spans_.size()) - 1;
  last_on_stream_[s] = idx;
  if (!stream.is_default()) concurrent_ = true;
  return idx;
}

std::int64_t Timeline::add_fixed_span(Stream stream, std::string kernel,
                                      double duration_s) {
  const std::int64_t idx = add_span(stream, std::move(kernel), KernelStats{});
  spans_.back().fixed_s = duration_s < 0.0 ? 0.0 : duration_s;
  return idx;
}

Event Timeline::record_event(Stream stream) const {
  Event e;
  e.after_span_ = last_on_stream_[static_cast<std::size_t>(stream.id())];
  return e;
}

void Timeline::wait_event(Stream stream, const Event& event) {
  if (!event.recorded()) return;  // never-recorded events are complete at t=0
  pending_[static_cast<std::size_t>(stream.id())].push_back(event.after_span_);
}

double Timeline::makespan_s(const DeviceSpec& spec, double extensive_scale,
                            std::vector<Scheduled>* schedule) const {
  // List-schedule in issue order: spans are appended in program order, and
  // every dependency (same-stream predecessor or event edge) has a smaller
  // index, so a single forward pass computes each span's start/end exactly.
  std::vector<double> stream_clock(names_.size(), 0.0);
  std::vector<double> end(spans_.size(), 0.0);
  if (schedule) schedule->assign(spans_.size(), Scheduled{});

  double makespan = 0.0;
  double memory_busy_s = 0.0;  // summed memory-system occupancy of all spans
  double link_busy_s = 0.0;    // summed host-link occupancy of all spans
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& sp = spans_[i];
    double duration;
    if (sp.fixed_s >= 0.0) {
      duration = sp.fixed_s;
    } else {
      KernelStats stats = sp.stats;
      if (extensive_scale != 1.0) {
        // Mirror perfmodel::scale_stats: extensive quantities scale with the
        // dataset; serial depth, launch count, and efficiency do not.
        stats.flops *= extensive_scale;
        stats.bytes_streamed *= extensive_scale;
        stats.bytes_reused *= extensive_scale;
        stats.bytes_random *= extensive_scale;
        stats.host_link_bytes *= extensive_scale;
        stats.working_set_bytes *= extensive_scale;
        stats.atomic_ops *= extensive_scale;
        stats.atomic_slots *= extensive_scale;
        stats.parallel_items *= extensive_scale;
      }
      const TimeBreakdown t = model_time(stats, spec);
      duration = t.total_s;
      memory_busy_s += t.memory_s;
      link_busy_s += t.link_s;
    }

    double start = stream_clock[static_cast<std::size_t>(sp.stream)];
    for (const std::int64_t dep : sp.deps) {
      start = std::max(start, end[static_cast<std::size_t>(dep)]);
    }
    const double finish = start + duration;
    end[i] = finish;
    stream_clock[static_cast<std::size_t>(sp.stream)] = finish;
    makespan = std::max(makespan, finish);
    if (schedule) {
      (*schedule)[i].start_s = start;
      (*schedule)[i].end_s = finish;
    }
  }

  // Shared-resource roofline: concurrently-modeled spans still share one
  // memory system and one host link, so overlap can never push the makespan
  // below either resource's total busy time.
  return std::max({makespan, memory_busy_s, link_busy_s});
}

void Timeline::reset() {
  spans_.clear();
  concurrent_ = false;
  std::fill(last_on_stream_.begin(), last_on_stream_.end(), -1);
  for (auto& p : pending_) p.clear();
}

}  // namespace cstf::simgpu
