// Simulated device: a machine spec plus accumulated kernel accounting.
#pragma once

#include <map>
#include <string>

#include "simgpu/cost_model.hpp"
#include "simgpu/counters.hpp"
#include "simgpu/device_spec.hpp"
#include "simgpu/trace.hpp"

namespace cstf::simgpu {

/// One simulated execution target. Kernels run functionally on the host;
/// every launch records its KernelStats here, and modeled_time() converts the
/// accumulated record into execution time on this device's spec.
///
/// A Device is also the unit of comparison: benches run the same algorithm
/// once, recording into an A100 Device, an H100 Device, and a Xeon Device,
/// and report the modeled-time ratios (plus host wall time, which is real).
class Device {
 public:
  explicit Device(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Records one launch (or a batch) under `kernel_name`. `wall_s` is the
  /// measured host execution time of the launch when the caller timed it
  /// (simgpu::launch and the dblas wrappers do); it feeds the attached
  /// tracer's spans and does not affect the counter totals.
  void record(const std::string& kernel_name, const KernelStats& stats,
              double wall_s = 0.0) {
    per_kernel_[kernel_name] += stats;
    total_ += stats;
    if (tracer_ != nullptr) {
      tracer_->add_span(kernel_name, stats, wall_s,
                        model_time(stats, spec_).total_s);
    }
  }

  /// Attaches (or detaches, with nullptr) a span tracer. The tracer must
  /// outlive the device or be detached first; it is not owned and survives
  /// reset(), so a trace can cover several metering windows.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// Accumulated statistics since the last reset.
  const KernelStats& total() const { return total_; }
  const std::map<std::string, KernelStats>& per_kernel() const {
    return per_kernel_;
  }

  /// Modeled execution time of everything recorded since the last reset.
  /// Per-kernel modeling (not one aggregate) so each kernel's own working
  /// set and parallelism shape its time.
  double modeled_time_s() const {
    double t = 0.0;
    for (const auto& [name, stats] : per_kernel_) {
      t += model_time(stats, spec_).total_s;
    }
    return t;
  }

  /// Modeled time of a single named kernel's accumulated record.
  double modeled_kernel_time_s(const std::string& kernel_name) const {
    auto it = per_kernel_.find(kernel_name);
    if (it == per_kernel_.end()) return 0.0;
    return model_time(it->second, spec_).total_s;
  }

  void reset() {
    per_kernel_.clear();
    total_ = KernelStats{};
  }

 private:
  DeviceSpec spec_;
  KernelStats total_;
  std::map<std::string, KernelStats> per_kernel_;
  Tracer* tracer_ = nullptr;  // not owned; optional
};

}  // namespace cstf::simgpu
