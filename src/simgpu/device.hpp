// Simulated device: a machine spec plus accumulated kernel accounting.
#pragma once

#include <map>
#include <string>

#include "metrics/registry.hpp"
#include "simgpu/cost_model.hpp"
#include "simgpu/counters.hpp"
#include "simgpu/device_spec.hpp"
#include "simgpu/fault.hpp"
#include "simgpu/stream.hpp"
#include "simgpu/trace.hpp"

namespace cstf::simgpu {

/// One simulated execution target. Kernels run functionally on the host;
/// every launch records its KernelStats here, and modeled_time() converts the
/// accumulated record into execution time on this device's spec.
///
/// A Device is also the unit of comparison: benches run the same algorithm
/// once, recording into an A100 Device, an H100 Device, and a Xeon Device,
/// and report the modeled-time ratios (plus host wall time, which is real).
///
/// Work is issued to streams (see stream.hpp): every record lands on the
/// default stream unless the caller passes an explicit one, and once any
/// span has been issued off the default stream, modeled_time_s() switches
/// from the legacy serial per-kernel sum to the timeline's critical-path
/// makespan. A device that only ever sees default-stream work models
/// identically to the pre-stream implementation.
class Device {
 public:
  explicit Device(DeviceSpec spec) : spec_(std::move(spec)) {
    // Resolved once here so record() pays only relaxed atomic adds; the
    // registry mirrors are process-cumulative and do NOT reset() with the
    // device's own KernelStats window.
    const metrics::Labels labels = {{"device", spec_.name}};
    auto& reg = metrics::MetricsRegistry::global();
    m_launches_ = reg.counter("simgpu.kernel.launches", labels);
    m_flops_ = reg.counter("simgpu.kernel.flops", labels);
    m_bytes_ = reg.counter("simgpu.kernel.bytes", labels);
    m_atomics_ = reg.counter("simgpu.kernel.atomic_ops", labels);
  }

  const DeviceSpec& spec() const { return spec_; }

  /// Records one launch (or a batch) under `kernel_name` on `stream` (the
  /// default stream unless given). `wall_s` is the measured host execution
  /// time of the launch when the caller timed it (simgpu::launch and the
  /// dblas wrappers do); it feeds the attached tracer's spans and does not
  /// affect the counter totals.
  void record(const std::string& kernel_name, const KernelStats& stats,
              double wall_s = 0.0, Stream stream = {}) {
    if (fault_plan_ != nullptr) {
      // Fault check BEFORE accounting: an injected launch (or host-copy)
      // failure throws FaultError and the launch never lands in the
      // counters/timeline — the caller's retry re-issues it cleanly.
      fault_plan_->on_launch(kernel_name);
      if (stats.host_link_bytes > 0.0) {
        fault_plan_->on_host_copy(kernel_name, stats.host_link_bytes);
      }
    }
    per_kernel_[kernel_name] += stats;
    total_ += stats;
    m_launches_->inc(static_cast<double>(stats.launches));
    m_flops_->inc(stats.flops);
    m_bytes_->inc(stats.total_bytes());
    m_atomics_->inc(stats.atomic_ops);
    const std::int64_t idx = timeline_.add_span(stream, kernel_name, stats);
    if (tracer_ != nullptr) {
      tracer_->add_span(kernel_name, stats, wall_s,
                        model_time(stats, spec_).total_s, stream.id(), idx,
                        timeline_.span(idx).deps);
    }
  }

  /// Records a span whose modeled duration comes from an external model
  /// (e.g. multi-GPU interconnect time, which is not a device kernel). The
  /// span participates in timeline scheduling but not in the per-kernel
  /// counters; it is never rescaled.
  void record_fixed(const std::string& name, double modeled_s,
                    Stream stream = {}) {
    const std::int64_t idx = timeline_.add_fixed_span(stream, name, modeled_s);
    if (tracer_ != nullptr) {
      tracer_->add_span(name, KernelStats{}, 0.0, modeled_s, stream.id(), idx,
                        timeline_.span(idx).deps);
    }
  }

  /// Creates a named stream on this device's timeline. Handles stay valid
  /// across reset() (like CUDA streams surviving between iterations). The
  /// name is forwarded to the attached tracer so the chrome export labels
  /// the stream's lane.
  Stream create_stream(const std::string& name) {
    Stream s = timeline_.create_stream(name);
    if (tracer_ != nullptr) tracer_->name_stream(s.id(), name);
    return s;
  }

  /// Captures "everything issued to `stream` so far" as an event.
  Event record_event(Stream stream = {}) const {
    return timeline_.record_event(stream);
  }

  /// Makes the next span issued to `stream` start no earlier than `event`.
  void wait_event(Stream stream, const Event& event) {
    timeline_.wait_event(stream, event);
  }

  const Timeline& timeline() const { return timeline_; }

  /// Attaches (or detaches, with nullptr) a span tracer. The tracer must
  /// outlive the device or be detached first; it is not owned and survives
  /// reset(), so a trace can cover several metering windows.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// Attaches (or detaches, with nullptr) a fault-injection plan; every
  /// subsequent record() checks the launch site (and the host-copy site for
  /// spans with host_link_bytes) against it. Not owned; survives reset()
  /// like the tracer.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }
  FaultPlan* fault_plan() const { return fault_plan_; }

  /// Accumulated statistics since the last reset.
  const KernelStats& total() const { return total_; }
  const std::map<std::string, KernelStats>& per_kernel() const {
    return per_kernel_;
  }

  /// Modeled execution time of everything recorded since the last reset.
  /// Serial (default-stream-only) history: per-kernel modeling (not one
  /// aggregate) so each kernel's own working set and parallelism shape its
  /// time — identical to the pre-stream implementation. Once any span has
  /// been issued to a non-default stream, the timeline's critical-path
  /// makespan (with shared-bandwidth capping) is reported instead.
  double modeled_time_s() const {
    if (timeline_.concurrent()) return timeline_.makespan_s(spec_);
    return serial_modeled_time_s();
  }

  /// The legacy serial sum, regardless of stream usage — the "no overlap"
  /// baseline benches compare the makespan against.
  double serial_modeled_time_s() const {
    double t = 0.0;
    for (const auto& [name, stats] : per_kernel_) {
      t += model_time(stats, spec_).total_s;
    }
    return t;
  }

  /// The timeline makespan with every metered span's extensive quantities
  /// scaled by `extensive_scale` (the stream/overlap analog of
  /// perfmodel::modeled_time_scaled). Fixed-duration spans are not rescaled.
  double modeled_makespan_s(double extensive_scale = 1.0) const {
    return timeline_.makespan_s(spec_, extensive_scale);
  }

  /// Modeled time of a single named kernel's accumulated record.
  double modeled_kernel_time_s(const std::string& kernel_name) const {
    auto it = per_kernel_.find(kernel_name);
    if (it == per_kernel_.end()) return 0.0;
    return model_time(it->second, spec_).total_s;
  }

  /// Clears counters and timeline spans; created streams and the attached
  /// tracer survive, so handles stay usable across metering windows.
  void reset() {
    per_kernel_.clear();
    total_ = KernelStats{};
    timeline_.reset();
  }

 private:
  DeviceSpec spec_;
  KernelStats total_;
  std::map<std::string, KernelStats> per_kernel_;
  Timeline timeline_;
  Tracer* tracer_ = nullptr;          // not owned; optional
  FaultPlan* fault_plan_ = nullptr;   // not owned; optional
  // Registry-owned, valid for the process lifetime (see ctor).
  metrics::Counter* m_launches_ = nullptr;
  metrics::Counter* m_flops_ = nullptr;
  metrics::Counter* m_bytes_ = nullptr;
  metrics::Counter* m_atomics_ = nullptr;
};

}  // namespace cstf::simgpu
