#include "gcp/poisson_ntf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "parallel/atomic.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "simgpu/launch.hpp"

namespace cstf {

namespace {

// Refreshes the model values at the tensor's nonzeros.
void evaluate_model(const SparseTensor& x, const std::vector<Matrix>& factors,
                    std::vector<real_t>& out) {
  const int modes = x.num_modes();
  const index_t rank = factors[0].cols();
  out.resize(static_cast<std::size_t>(x.nnz()));
  parallel_for_blocked(0, x.nnz(), [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) {
      real_t acc = 0.0;
      for (index_t r = 0; r < rank; ++r) {
        real_t prod = 1.0;
        for (int m = 0; m < modes; ++m) {
          prod *= factors[static_cast<std::size_t>(m)](
              x.indices(m)[static_cast<std::size_t>(i)], r);
        }
        acc += prod;
      }
      out[static_cast<std::size_t>(i)] = acc;
    }
  });
}

}  // namespace

PoissonNtf::PoissonNtf(const SparseTensor& tensor, PoissonNtfOptions options)
    : tensor_(tensor), options_(options), device_(options.device) {
  CSTF_CHECK(options_.rank >= 1 && options_.max_iterations >= 1);
  CSTF_CHECK_MSG(options_.epsilon > 0.0 && std::isfinite(options_.epsilon),
                 "Poisson NTF: epsilon must be a positive finite loss floor "
                 "(got " << options_.epsilon << ")");
  for (real_t v : tensor_.values()) {
    CSTF_CHECK_MSG(v >= 0.0, "Poisson NTF requires non-negative counts");
  }
  Rng rng(options_.seed);
  for (int m = 0; m < tensor_.num_modes(); ++m) {
    Matrix f(tensor_.dim(m), options_.rank);
    f.fill_uniform(rng, 0.1, 1.0);  // strictly positive start
    factors_.push_back(std::move(f));
  }
}

void PoissonNtf::set_factors(std::vector<Matrix> factors) {
  CSTF_CHECK_MSG(
      static_cast<int>(factors.size()) == tensor_.num_modes(),
      "set_factors: " << factors.size() << " factors for a "
                      << tensor_.num_modes() << "-mode tensor");
  for (int m = 0; m < tensor_.num_modes(); ++m) {
    const Matrix& f = factors[static_cast<std::size_t>(m)];
    CSTF_CHECK_MSG(f.rows() == tensor_.dim(m) && f.cols() == options_.rank,
                   "set_factors: mode " << m << " factor is " << f.rows()
                                        << "x" << f.cols() << ", expected "
                                        << tensor_.dim(m) << "x"
                                        << options_.rank);
    for (index_t r = 0; r < f.cols(); ++r) {
      const real_t* col = f.col(r);
      for (index_t i = 0; i < f.rows(); ++i) {
        CSTF_CHECK_MSG(col[i] >= 0.0 && std::isfinite(col[i]),
                       "set_factors: negative or non-finite entry in mode "
                           << m);
      }
    }
  }
  factors_ = std::move(factors);
}

real_t PoissonNtf::objective() const {
  const index_t rank = options_.rank;
  // Model mass over all cells: sum_r prod_m colsum_m(r).
  real_t mass = 0.0;
  for (index_t r = 0; r < rank; ++r) {
    real_t prod = 1.0;
    for (const Matrix& f : factors_) {
      real_t colsum = 0.0;
      const real_t* col = f.col(r);
      for (index_t i = 0; i < f.rows(); ++i) colsum += col[i];
      prod *= colsum;
    }
    mass += prod;
  }
  // - sum_nnz x * log(x_hat).
  std::vector<real_t> model;
  evaluate_model(tensor_, factors_, model);
  const real_t eps = options_.epsilon;
  const real_t log_term = parallel_sum(0, tensor_.nnz(), [&](index_t i) {
    return tensor_.values()[static_cast<std::size_t>(i)] *
           std::log(std::max(model[static_cast<std::size_t>(i)], eps));
  });
  return mass - log_term;
}

void PoissonNtf::sweep_mode(int mode) {
  const int modes = tensor_.num_modes();
  const index_t rank = options_.rank;
  Matrix& h = factors_[static_cast<std::size_t>(mode)];
  const real_t eps = options_.epsilon;

  evaluate_model(tensor_, factors_, model_at_nnz_);

  // Phi = MTTKRP of the ratio tensor (x / x_hat): atomic scatter into the
  // output rows, like the COO MTTKRP kernel.
  Matrix phi(h.rows(), rank);
  {
    simgpu::KernelStats stats;
    const auto nnz = static_cast<double>(tensor_.nnz());
    stats.flops = nnz * static_cast<double>(rank * (modes + 2));
    stats.bytes_random =
        nnz * static_cast<double>(rank * modes) * simgpu::kWord;
    stats.bytes_streamed = nnz * (static_cast<double>(modes) * sizeof(index_t) +
                                  2.0 * sizeof(real_t));
    stats.parallel_items = nnz;
    device_.record("poisson_ratio_mttkrp", stats);
  }
  const auto& out_idx = tensor_.indices(mode);
  parallel_for_blocked(0, tensor_.nnz(), [&](index_t lo, index_t hi) {
    std::vector<real_t> row(static_cast<std::size_t>(rank));
    for (index_t i = lo; i < hi; ++i) {
      const real_t ratio =
          tensor_.values()[static_cast<std::size_t>(i)] /
          std::max(model_at_nnz_[static_cast<std::size_t>(i)], eps);
      for (index_t r = 0; r < rank; ++r) row[static_cast<std::size_t>(r)] = ratio;
      for (int m = 0; m < modes; ++m) {
        if (m == mode) continue;
        const Matrix& f = factors_[static_cast<std::size_t>(m)];
        const index_t idx = tensor_.indices(m)[static_cast<std::size_t>(i)];
        for (index_t r = 0; r < rank; ++r) {
          row[static_cast<std::size_t>(r)] *= f(idx, r);
        }
      }
      const index_t out_row = out_idx[static_cast<std::size_t>(i)];
      for (index_t r = 0; r < rank; ++r) {
        atomic_add(&phi(out_row, r), row[static_cast<std::size_t>(r)]);
      }
    }
  });

  // d(r) = prod_{k != mode} colsum_k(r).
  std::vector<real_t> denom(static_cast<std::size_t>(rank), 1.0);
  for (int m = 0; m < modes; ++m) {
    if (m == mode) continue;
    const Matrix& f = factors_[static_cast<std::size_t>(m)];
    for (index_t r = 0; r < rank; ++r) {
      real_t colsum = 0.0;
      const real_t* col = f.col(r);
      for (index_t i = 0; i < f.rows(); ++i) colsum += col[i];
      denom[static_cast<std::size_t>(r)] *= colsum;
    }
  }

  // Multiplicative update.
  {
    simgpu::KernelStats stats;
    stats.flops = 2.0 * static_cast<double>(h.size());
    stats.bytes_streamed = 3.0 * static_cast<double>(h.size()) * simgpu::kWord;
    stats.parallel_items = static_cast<double>(h.size());
    device_.record("poisson_mu_update", stats);
  }
  parallel_for(0, rank, [&](index_t r) {
    const real_t d = std::max(denom[static_cast<std::size_t>(r)], eps);
    real_t* hr = h.col(r);
    const real_t* pr = phi.col(r);
    for (index_t i = 0; i < h.rows(); ++i) {
      hr[i] = std::max(hr[i] * pr[i] / d, real_t{0});
    }
  }, /*grain=*/1);
}

PoissonNtfResult PoissonNtf::run() {
  PoissonNtfResult result;
  real_t prev = objective();
  for (int it = 0; it < options_.max_iterations; ++it) {
    for (int m = 0; m < tensor_.num_modes(); ++m) sweep_mode(m);
    const real_t now = objective();
    result.objective_history.push_back(now);
    result.final_objective = now;
    result.iterations = it + 1;
    if (options_.tolerance > 0.0 && prev != 0.0 &&
        std::abs(prev - now) / std::abs(prev) < options_.tolerance) {
      result.converged = true;
      break;
    }
    prev = now;
  }
  return result;
}

KTensor PoissonNtf::ktensor() const {
  KTensor kt;
  kt.factors = factors_;
  kt.lambda.assign(static_cast<std::size_t>(options_.rank), 1.0);
  return kt;
}

}  // namespace cstf
