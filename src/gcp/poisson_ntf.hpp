// Poisson non-negative tensor factorization (KL-divergence objective) — the
// generalized-loss direction of the paper's related work (Hong, Kolda &
// Duersch's GCP [8]): count tensors are Poisson observations of a
// non-negative low-rank rate, and minimizing KL divergence
//     f = sum_cells x_hat  -  sum_{nonzeros} x * log(x_hat)
// is their maximum-likelihood factorization (vs the Gaussian least-squares
// objective the ADMM framework minimizes).
//
// The solver is the multiplicative KL update (Lee & Seung extended to
// tensors, the workhorse inside CP-APR):
//     H_m(i,r) <- H_m(i,r) * Phi_m(i,r) / d_m(r)
// with Phi_m the MTTKRP of the elementwise ratio tensor (x / x_hat at the
// nonzeros) and d_m(r) = prod_{k != m} colsum_k(r) the model's mass
// gradient. Each sweep monotonically decreases f.
#pragma once

#include <vector>

#include "cstf/ktensor.hpp"
#include "simgpu/device.hpp"
#include "tensor/coo.hpp"

namespace cstf {

struct PoissonNtfOptions {
  index_t rank = 8;
  int max_iterations = 50;
  /// Stop when the relative objective improvement drops below this.
  real_t tolerance = 0.0;
  std::uint64_t seed = 42;
  /// Loss floor on the model value x_hat and denominator guards: the
  /// objective's log term evaluates log(max(x_hat, epsilon)), and the MU
  /// sweep's ratio and column-mass divisions clamp their denominators the
  /// same way. A nonzero observed over a zero model therefore contributes
  /// the FINITE penalty -x * log(epsilon) (= +27.6*x at the 1e-12 default)
  /// instead of +inf, so one dead cell cannot blow up the objective or the
  /// update. Must be > 0; the constructor rejects 0 and negatives, which
  /// would reintroduce log(0)/division-by-zero.
  real_t epsilon = 1e-12;
  simgpu::DeviceSpec device = simgpu::a100();
};

struct PoissonNtfResult {
  int iterations = 0;
  bool converged = false;
  real_t final_objective = 0.0;
  std::vector<real_t> objective_history;
};

class PoissonNtf {
 public:
  PoissonNtf(const SparseTensor& tensor, PoissonNtfOptions options);

  /// Runs alternating KL-MU sweeps until convergence or max_iterations.
  PoissonNtfResult run();

  /// KL objective of the current factors (up to the x*log(x) - x constant).
  real_t objective() const;

  /// Replaces the factors (warm start, or pinning exact values in tests).
  /// Shapes must match the tensor's dims and the configured rank; entries
  /// must be non-negative (the MU update preserves non-negativity only from
  /// a non-negative start).
  void set_factors(std::vector<Matrix> factors);

  const std::vector<Matrix>& factors() const { return factors_; }
  KTensor ktensor() const;
  simgpu::Device& device() { return device_; }

 private:
  void sweep_mode(int mode);

  const SparseTensor& tensor_;
  PoissonNtfOptions options_;
  simgpu::Device device_;
  std::vector<Matrix> factors_;
  std::vector<real_t> model_at_nnz_;  // x_hat cache, refreshed per sweep
};

}  // namespace cstf
