#include "autotune/tuning_cache.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/digest.hpp"
#include "common/log.hpp"
#include "common/types.hpp"
#include "metrics/registry.hpp"

namespace cstf::autotune {

namespace {

// Process-wide mirrors of every TuningCache instance's counters; the
// per-instance hits()/misses()/evictions() (resettable by load) stay as-is.
void bump_cache_metric(const char* name) {
  metrics::MetricsRegistry::global()
      .counter(std::string("autotune.tuning_cache.") + name)
      ->inc();
}

constexpr char kMagic[8] = {'C', 'S', 'T', 'F', 'T', 'U', 'N', 'E'};
constexpr std::uint64_t kMaxCacheEntries = 1u << 16;
constexpr std::uint64_t kMaxRecordModes = kMaxModes;
constexpr std::uint64_t kMaxProvenanceBytes = 1u << 12;

bool valid_strategy_byte(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(ScatterStrategy::kSorted);
}

bool valid_mode_byte(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(MttkrpMode::kDimtree);
}

}  // namespace

std::uint64_t digest_device_spec(const simgpu::DeviceSpec& spec) {
  DigestBuilder d;
  d.str(spec.name)
      .f64(spec.peak_flops)
      .f64(spec.mem_bandwidth)
      .f64(spec.stream_bw_fraction)
      .f64(spec.random_bw_fraction)
      .f64(spec.cache_bytes)
      .f64(spec.launch_overhead)
      .f64(spec.saturation_parallelism)
      .f64(spec.serial_op_rate)
      .f64(spec.atomic_rate)
      .f64(spec.host_link_bandwidth)
      .f64(spec.host_link_latency);
  return d.value();
}

std::uint64_t digest_shape_fingerprint(const std::vector<index_t>& dims,
                                       index_t nnz, std::uint64_t layout_tag) {
  DigestBuilder d;
  d.u64(static_cast<std::uint64_t>(dims.size()));
  for (index_t len : dims) d.u64(static_cast<std::uint64_t>(len));
  d.u64(static_cast<std::uint64_t>(nnz)).u64(layout_tag);
  return d.value();
}

std::uint64_t digest_tensor_fingerprint(const SparseTensor& x,
                                        std::uint64_t layout_tag) {
  return digest_shape_fingerprint(x.dims(), x.nnz(), layout_tag);
}

TuningCache::TuningCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

const TuningRecord* TuningCache::find(const TuningKey& key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == key) {
      entries_.splice(entries_.end(), entries_, it);  // bump to MRU
      ++hits_;
      bump_cache_metric("hits");
      return &entries_.back().record;
    }
  }
  ++misses_;
  bump_cache_metric("misses");
  return nullptr;
}

void TuningCache::put(const TuningKey& key, TuningRecord record) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == key) {
      it->record = std::move(record);
      entries_.splice(entries_.end(), entries_, it);
      return;
    }
  }
  entries_.push_back(Entry{key, std::move(record)});
  while (entries_.size() > capacity_) {
    entries_.pop_front();
    ++evictions_;
    bump_cache_metric("evictions");
  }
}

void TuningCache::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw_model_io(ModelIoStatus::kOpenFailed, "cannot create " + tmp);
    }
    HashingWriter w(out);
    w.write(kMagic, sizeof(kMagic));
    w.write_pod(kTuningCacheFormatVersion);
    w.write_pod(static_cast<std::uint64_t>(entries_.size()));
    for (const Entry& e : entries_) {
      w.write_pod(e.key.device_digest);
      w.write_pod(e.key.tensor_digest);
      w.write_pod(e.key.rank);
      w.write_pod(e.key.options_digest);

      const TuningRecord& rec = e.record;
      w.write_pod(static_cast<std::uint64_t>(rec.scatter_per_mode.size()));
      for (ScatterStrategy s : rec.scatter_per_mode) {
        w.write_pod(static_cast<std::uint8_t>(s));
      }
      w.write_pod(static_cast<std::uint8_t>(rec.mttkrp_mode));
      w.write_pod(rec.dimtree_budget_bytes);
      w.write_pod(rec.chunks_per_worker);
      w.write_pod(rec.batcher_linger_s);
      w.write_pod(rec.batcher_max_batch);
      w.write_pod(rec.batcher_arrival_rate_rps);
      w.write_pod(rec.measured_best_s);
      w.write_pod(rec.measured_model_s);
      w.write_pod(rec.modeled_best_s);
      w.write_pod(rec.modeled_model_s);
      w.write_pod(rec.seed);
      w.write_pod(rec.best_of);
      w.write_pod(rec.sample_nnz);
      w.write_pod(static_cast<std::uint64_t>(rec.provenance.size()));
      w.write(rec.provenance.data(), rec.provenance.size());
    }
    const std::uint64_t checksum = w.digest();
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    out.close();
    if (!out.good()) {
      std::remove(tmp.c_str());
      throw_model_io(ModelIoStatus::kWriteFailed, "write failed for " + tmp);
    }
  }
  commit_tmp_file(tmp, path);
}

TuningCache TuningCache::load(const std::string& path, std::size_t capacity) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw_model_io(ModelIoStatus::kOpenFailed, "cannot open " + path);
  }
  HashingReader r(in, path);

  char magic[sizeof(kMagic)];
  r.read(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw_model_io(ModelIoStatus::kBadMagic,
                   path + " is not a CSTFTUNE tuning cache file");
  }
  const auto version = r.read_pod<std::uint32_t>("version");
  if (version != kTuningCacheFormatVersion) {
    throw_model_io(ModelIoStatus::kBadVersion,
                   path + ": format version " + std::to_string(version) +
                       " (expected " +
                       std::to_string(kTuningCacheFormatVersion) + ")");
  }

  TuningCache cache(capacity);
  const auto count = r.read_pod<std::uint64_t>("entry count");
  if (count > kMaxCacheEntries) {
    throw_model_io(ModelIoStatus::kCorruptHeader,
                   path + ": implausible entry count " + std::to_string(count));
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    TuningKey key;
    key.device_digest = r.read_pod<std::uint64_t>("device digest");
    key.tensor_digest = r.read_pod<std::uint64_t>("tensor digest");
    key.rank = r.read_pod<std::uint64_t>("rank");
    key.options_digest = r.read_pod<std::uint64_t>("options digest");

    TuningRecord rec;
    const auto modes = r.read_pod<std::uint64_t>("mode count");
    if (modes > kMaxRecordModes) {
      throw_model_io(ModelIoStatus::kCorruptHeader,
                     path + ": implausible mode count " +
                         std::to_string(modes));
    }
    rec.scatter_per_mode.reserve(static_cast<std::size_t>(modes));
    for (std::uint64_t m = 0; m < modes; ++m) {
      const auto s = r.read_pod<std::uint8_t>("scatter strategy");
      if (!valid_strategy_byte(s)) {
        throw_model_io(ModelIoStatus::kInvalidModel,
                       path + ": unknown scatter strategy byte " +
                           std::to_string(static_cast<unsigned>(s)));
      }
      rec.scatter_per_mode.push_back(static_cast<ScatterStrategy>(s));
    }
    const auto mode_byte = r.read_pod<std::uint8_t>("mttkrp mode");
    if (!valid_mode_byte(mode_byte)) {
      throw_model_io(ModelIoStatus::kInvalidModel,
                     path + ": unknown mttkrp mode byte " +
                         std::to_string(static_cast<unsigned>(mode_byte)));
    }
    rec.mttkrp_mode = static_cast<MttkrpMode>(mode_byte);
    rec.dimtree_budget_bytes = r.read_pod<double>("dimtree budget");
    rec.chunks_per_worker = r.read_pod<std::uint32_t>("chunks per worker");
    rec.batcher_linger_s = r.read_pod<double>("batcher linger");
    rec.batcher_max_batch = r.read_pod<std::uint32_t>("batcher max batch");
    rec.batcher_arrival_rate_rps = r.read_pod<double>("arrival rate");
    rec.measured_best_s = r.read_pod<double>("measured best");
    rec.measured_model_s = r.read_pod<double>("measured model");
    rec.modeled_best_s = r.read_pod<double>("modeled best");
    rec.modeled_model_s = r.read_pod<double>("modeled model");
    rec.seed = r.read_pod<std::uint64_t>("seed");
    rec.best_of = r.read_pod<std::uint32_t>("best-of");
    rec.sample_nnz = r.read_pod<std::uint64_t>("sample nnz");
    const auto prov_len = r.read_pod<std::uint64_t>("provenance length");
    if (prov_len > kMaxProvenanceBytes) {
      throw_model_io(ModelIoStatus::kCorruptHeader,
                     path + ": implausible provenance length " +
                         std::to_string(prov_len));
    }
    rec.provenance.resize(static_cast<std::size_t>(prov_len));
    if (prov_len > 0) {
      r.read(rec.provenance.data(), rec.provenance.size(), "provenance");
    }
    for (double v : {rec.dimtree_budget_bytes, rec.batcher_linger_s,
                     rec.batcher_arrival_rate_rps, rec.measured_best_s,
                     rec.measured_model_s, rec.modeled_best_s,
                     rec.modeled_model_s}) {
      if (!std::isfinite(v) || v < 0.0) {
        throw_model_io(ModelIoStatus::kInvalidModel,
                       path + ": non-finite or negative tuning field");
      }
    }
    cache.put(key, std::move(rec));
  }

  const std::uint64_t expected = r.digest();
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(stored)) {
    throw_model_io(ModelIoStatus::kTruncated,
                   path + ": truncated reading checksum");
  }
  if (stored != expected) {
    throw_model_io(ModelIoStatus::kChecksumMismatch,
                   path + ": checksum mismatch (file is corrupt)");
  }
  // load() itself performed put()s; lookups start with clean counters.
  cache.hits_ = 0;
  cache.misses_ = 0;
  cache.evictions_ = 0;
  return cache;
}

TuningCache TuningCache::load_or_empty(const std::string& path,
                                       std::size_t capacity) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe.good()) return TuningCache(capacity);  // no cache yet: start cold
  probe.close();
  try {
    return load(path, capacity);
  } catch (const ModelIoError& e) {
    CSTF_LOG_WARN("tuning cache " << path << " rejected ("
                                  << model_io_status_name(e.status())
                                  << "); starting empty");
    return TuningCache(capacity);
  }
}

}  // namespace cstf::autotune
