// Persistent measurement cache for the autotuning subsystem (CSTFTUNE files).
//
// A TuningKey identifies one tuning problem: the device the roofline model
// targets (digest of every DeviceSpec field), the tensor fingerprint (order,
// mode lengths, nonzero count, layout tag), the factorization rank, and a
// digest of the options that change which candidate configurations are legal
// (determinism, privatization/dimtree budgets, the trial protocol itself).
// A TuningRecord is the decision the micro-trials produced for that key plus
// the evidence behind it — the measured (host wall) and modeled (roofline)
// seconds of both the winning configuration and the cost model's own pick —
// and a provenance stamp, so a later reader can audit *why* the cached
// configuration won.
//
// The cache is a small LRU map persisted with the same discipline as every
// other binary format in this repository (common/binio.hpp): magic
// "CSTFTUNE", a u32 format version, the records from least- to most-recently
// used, and a trailing FNV-1a checksum; writes are crash-consistent
// (tmp + rename). Loads are fully validated and raise typed ModelIoError
// (kBadMagic / kBadVersion / kTruncated / kCorruptHeader /
// kChecksumMismatch); `load_or_empty` turns any defect into an empty cache —
// a version bump or a corrupted file invalidates, never crashes, a tuned
// run. A device-spec change invalidates by construction: the device digest
// is part of every key, so records tuned for another machine simply miss.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "mttkrp/dimtree.hpp"
#include "mttkrp/scatter.hpp"
#include "simgpu/device_spec.hpp"
#include "tensor/coo.hpp"

namespace cstf::autotune {

inline constexpr std::uint32_t kTuningCacheFormatVersion = 1;
inline constexpr std::size_t kDefaultTuningCacheCapacity = 64;

/// Identity of one tuning problem. Two runs that agree on all four digests
/// may share a cached decision; anything that changes the workload, the
/// machine, or the candidate set changes the key.
struct TuningKey {
  std::uint64_t device_digest = 0;   ///< digest_device_spec()
  std::uint64_t tensor_digest = 0;   ///< digest_tensor_fingerprint()
  std::uint64_t rank = 0;
  std::uint64_t options_digest = 0;  ///< candidate-set + trial-protocol digest

  friend bool operator==(const TuningKey& a, const TuningKey& b) {
    return a.device_digest == b.device_digest &&
           a.tensor_digest == b.tensor_digest && a.rank == b.rank &&
           a.options_digest == b.options_digest;
  }
};

/// One cached tuning decision plus its evidence and provenance.
struct TuningRecord {
  /// Concrete scatter strategy per tensor mode (never kAuto). Empty for
  /// records that tune something other than the training loop (the serve
  /// batcher records fill only the batcher fields below).
  std::vector<ScatterStrategy> scatter_per_mode;

  /// Concrete MTTKRP engine choice; kAuto means "not tuned" (serve records).
  MttkrpMode mttkrp_mode = MttkrpMode::kAuto;

  /// Chain budget the decision was made under (flat-vs-dimtree feasibility).
  double dimtree_budget_bytes = 0.0;

  /// Tuned dynamic-chunking oversubscription (parallel_chunks_per_worker);
  /// 0 = untuned, keep the default.
  std::uint32_t chunks_per_worker = 0;

  /// Tuned serve-batcher knobs (cstf_serve --tune); 0 = untuned.
  double batcher_linger_s = 0.0;
  std::uint32_t batcher_max_batch = 0;
  double batcher_arrival_rate_rps = 0.0;  ///< measured rate behind the pick

  // Evidence: per-AO-iteration MTTKRP seconds of the chosen configuration
  // and of the configuration the cost model alone would have picked, on both
  // clocks. chosen == model pick is common and healthy (the model was right).
  double measured_best_s = 0.0;   ///< host wall, winning config
  double measured_model_s = 0.0;  ///< host wall, model-picked config
  double modeled_best_s = 0.0;    ///< roofline, winning config
  double modeled_model_s = 0.0;   ///< roofline, model-picked config

  // Provenance: enough to reproduce the trial.
  std::uint64_t seed = 0;         ///< trial-protocol seed
  std::uint32_t best_of = 0;      ///< timed repeats per candidate
  std::uint64_t sample_nnz = 0;   ///< deterministic nnz sample size
  std::string provenance;         ///< human-readable stamp
};

/// Digest of every DeviceSpec field (name included): the cache must not
/// serve an A100-tuned decision to an H100 run.
std::uint64_t digest_device_spec(const simgpu::DeviceSpec& spec);

/// Tensor fingerprint: order, mode lengths, nnz, and a layout tag (the BLCO
/// block capacity for training records, a format label for others).
std::uint64_t digest_tensor_fingerprint(const SparseTensor& x,
                                        std::uint64_t layout_tag);
std::uint64_t digest_shape_fingerprint(const std::vector<index_t>& dims,
                                       index_t nnz, std::uint64_t layout_tag);

/// In-memory LRU cache of tuning records with typed persistent storage.
class TuningCache {
 public:
  explicit TuningCache(std::size_t capacity = kDefaultTuningCacheCapacity);

  /// Most-recently-used lookup; bumps the entry and the hit counter on a
  /// match, the miss counter otherwise. The pointer is invalidated by the
  /// next put()/load.
  const TuningRecord* find(const TuningKey& key);

  /// Inserts or replaces the record for `key` as most-recently used,
  /// evicting the least-recently-used entry beyond capacity.
  void put(const TuningKey& key, TuningRecord record);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  std::int64_t evictions() const { return evictions_; }

  /// Loads a CSTFTUNE file; throws ModelIoError on any defect (missing
  /// file, bad magic, wrong version, truncation, corrupt record fields,
  /// checksum mismatch). Counters start at zero.
  static TuningCache load(const std::string& path,
                          std::size_t capacity = kDefaultTuningCacheCapacity);

  /// Load that treats every defect as invalidation: a missing, corrupt, or
  /// version-incompatible file yields an empty cache (with a warning for
  /// everything except a cleanly missing file). This is what tuned runs use
  /// — a stale cache must never fail a factorization.
  static TuningCache load_or_empty(
      const std::string& path,
      std::size_t capacity = kDefaultTuningCacheCapacity);

  /// Crash-consistent save (tmp + rename, trailing FNV-1a). Throws
  /// ModelIoError(kOpenFailed / kWriteFailed).
  void save(const std::string& path) const;

 private:
  struct Entry {
    TuningKey key;
    TuningRecord record;
  };

  std::size_t capacity_;
  std::list<Entry> entries_;  // LRU order: front = oldest, back = newest
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace cstf::autotune
