// Measurement-driven autotuning for the MTTKRP engine stack.
//
// The cost model (resolve_scatter_strategy / resolve_mttkrp_mode) picks the
// scatter strategy, the MTTKRP engine, and the chunking per run from the
// roofline alone; it is only as good as its calibration and re-derives the
// same answer every process. This module closes the loop the way production
// kernel stacks do: short, seeded, best-of-N *micro-trials* of each candidate
// configuration on a deterministic nonzero sample, executed through the
// metered simgpu path so every trial records both host-wallclock and modeled
// evidence; the cost model remains the prior and the tie-breaker (a measured
// win smaller than the tolerance defers to the model's pick). Decisions are
// cached persistently (tuning_cache.hpp) so later runs skip the trials.
//
// Three policies, threaded through FrameworkOptions:
//   kModel   — no tuning at all: the cost model decides, bit-identical to
//              the pre-autotune behavior. The default.
//   kCached  — use a cached decision when the key matches; run trials (and
//              store the result) only on a miss.
//   kMeasure — always run trials; refresh the cache.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "autotune/tuning_cache.hpp"
#include "mttkrp/dimtree.hpp"
#include "mttkrp/scatter.hpp"
#include "simgpu/device_spec.hpp"
#include "tensor/coo.hpp"

namespace cstf::autotune {

enum class TuningPolicy {
  kModel,    ///< cost model only (default; bit-identical legacy path)
  kCached,   ///< cached decision, trials on miss
  kMeasure,  ///< always re-measure
};

/// Display name ("model", "cached", "measure").
const char* tuning_policy_name(TuningPolicy policy);

/// Parses a policy name; returns false (leaving `out` untouched) on an
/// unknown name.
bool parse_tuning_policy(const std::string& name, TuningPolicy* out);

/// Tuning configuration, carried inside FrameworkOptions.
struct TuningOptions {
  TuningPolicy policy = TuningPolicy::kModel;

  /// CSTFTUNE cache file; empty keeps decisions in-process only.
  std::string cache_path;
  std::size_t cache_capacity = kDefaultTuningCacheCapacity;

  /// Trial protocol. The seed drives the nonzero sample and the factor
  /// fills; best_of is the timed repeats per candidate (minimum wins);
  /// max_sample_nnz caps the sample the trials run on.
  std::uint64_t seed = 0x7475'6e65;  // "tune"
  std::uint32_t best_of = 3;
  std::uint64_t max_sample_nnz = 100'000;

  /// Rank candidates by measured host wall time (modeled time breaks ties).
  /// False ranks by modeled time alone — fully deterministic, which is what
  /// the tests pin; the evidence fields still record wall times.
  bool use_host_clock = true;

  /// A measured win below this relative margin defers to the cost model's
  /// pick (the model is the prior; noise should not flip decisions).
  double tie_break_tolerance = 0.05;
};

/// Everything the trials need to know about the workload being tuned.
struct TuneInputs {
  const SparseTensor* tensor = nullptr;
  index_t rank = 0;
  simgpu::DeviceSpec spec;

  /// Requested (pre-tuning) options: an explicit scatter strategy or MTTKRP
  /// mode narrows the candidate set to exactly that request.
  ScatterOptions scatter;
  MttkrpMode requested_mode = MttkrpMode::kAuto;
  double dimtree_budget_bytes = kDefaultDimtreeBudgetBytes;

  /// Resident-format streamed footprint for flat-vs-tree modeling (BLCO
  /// storage bytes); 0 = raw COO footprint.
  double flat_stream_bytes = 0.0;

  /// Layout tag folded into the tensor fingerprint (the BLCO block
  /// capacity for training records).
  std::uint64_t layout_tag = 0;
};

/// The four-digest cache key for these inputs under this protocol.
TuningKey make_tuning_key(const TuneInputs& in, const TuningOptions& opts);

/// Deterministic stratified sample of up to `max_nnz` nonzeros: the nonzero
/// range is cut into max_nnz equal buckets and one nonzero is drawn per
/// bucket with seeded jitter, preserving the tensor's index distribution.
/// Returns a copy of the whole tensor when it is already small enough.
SparseTensor sample_nonzeros(const SparseTensor& x, std::uint64_t max_nnz,
                             std::uint64_t seed);

/// Runs the calibrated micro-trials and returns the winning configuration
/// with full evidence. Deterministic for a fixed seed when
/// `opts.use_host_clock` is false.
TuningRecord run_tuning_trials(const TuneInputs& in,
                               const TuningOptions& opts);

/// True when `record` can be applied to these inputs as-is: per-mode
/// strategies cover every mode with concrete values, determinism is
/// respected, and the privatized picks still fit the scratch budget.
bool record_applies(const TuningRecord& record, const TuneInputs& in);

/// What resolve_tuning decided and how it got there.
struct TuningOutcome {
  bool applied = false;     ///< false under kModel (record is meaningless)
  bool cache_hit = false;   ///< decision came from the cache, no trials
  bool trials_run = false;  ///< micro-trials executed this call
  TuningKey key;
  TuningRecord record;
};

/// Policy dispatch: kModel returns un-applied immediately; kCached consults
/// the cache (loading `opts.cache_path` if set) and falls back to trials on
/// a miss or an inapplicable record; kMeasure always runs trials. Whenever
/// trials run and a cache path is set, the refreshed cache is saved back.
TuningOutcome resolve_tuning(const TuneInputs& in, const TuningOptions& opts);

/// Measured serve-side calibration for the batcher tuner: the observed
/// arrival rate and the fused-solve cost model  t(B) = base + per_row * B
/// fitted from two timed solves.
struct BatcherCalibration {
  double arrival_rate_rps = 0.0;
  double solve_base_s = 0.0;
  double solve_per_row_s = 0.0;
};

struct BatcherTuning {
  double linger_s = 0.0;
  std::uint32_t max_batch = 0;
};

/// Picks the smallest max_batch whose fused-solve throughput B/t(B) is
/// within 5% of the cap's, then the linger needed to actually collect that
/// batch at the measured arrival rate (clamped to `max_linger_cap_s`).
/// Degenerate calibrations (no rate, no costs) fall back to the batcher's
/// defaults.
BatcherTuning tune_fold_in_batcher(const BatcherCalibration& cal,
                                   std::uint32_t max_batch_cap = 64,
                                   double max_linger_cap_s = 0.05);

}  // namespace cstf::autotune
