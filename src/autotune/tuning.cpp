#include "autotune/tuning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/digest.hpp"
#include "common/random.hpp"
#include "common/timer.hpp"
#include "la/matrix.hpp"
#include "metrics/registry.hpp"
#include "parallel/parallel_for.hpp"
#include "simgpu/device.hpp"

namespace cstf::autotune {

namespace {

// One autotune.trials tick per timed measurement (warmups excluded).
void count_trial() {
  static metrics::Counter* trials =
      metrics::MetricsRegistry::global().counter("autotune.trials");
  trials->inc();
}

/// One timed candidate: the best-of-N minimum host wall time and the (repeat-
/// invariant) modeled roofline time of the same kernel sequence.
struct TrialTime {
  double wall_s = std::numeric_limits<double>::infinity();
  double modeled_s = std::numeric_limits<double>::infinity();
};

double rank_metric(const TrialTime& t, bool use_host_clock) {
  return use_host_clock ? t.wall_s : t.modeled_s;
}

/// Does a full-size privatized pass fit the scratch budget? Mirrors
/// resolve_scatter_strategy's feasibility test so trial candidates and the
/// model prior agree on what is even legal.
bool privatized_fits(const ScatterOptions& opts, index_t mode_len,
                     index_t rank, index_t nnz) {
  const double tile_bytes = static_cast<double>(mode_len) *
                            static_cast<double>(rank) * simgpu::kWord;
  const auto tiles = static_cast<double>(privatized_tile_count(nnz));
  return tiles * tile_bytes <= opts.privatization_budget_bytes;
}

/// The strategy the cost model alone would run for this mode — through the
/// same lens the engines use (deterministic forces the sorted order, the one
/// that reproduces the reference bit-for-bit).
ScatterStrategy model_scatter_pick(const ScatterOptions& opts,
                                   index_t mode_len, index_t rank,
                                   index_t nnz) {
  if (opts.deterministic) return ScatterStrategy::kSorted;
  return resolve_scatter_strategy(opts, mode_len, rank, nnz);
}

/// Candidate strategies for one mode. An explicit request (or determinism)
/// collapses the set to the one strategy the engines would actually run;
/// kAuto opens the full set, privatized gated on full-size feasibility.
std::vector<ScatterStrategy> scatter_candidates(const ScatterOptions& opts,
                                                index_t mode_len, index_t rank,
                                                index_t full_nnz) {
  if (opts.deterministic) return {ScatterStrategy::kSorted};
  if (opts.strategy != ScatterStrategy::kAuto) return {opts.strategy};
  std::vector<ScatterStrategy> c = {ScatterStrategy::kAtomic,
                                    ScatterStrategy::kSorted};
  if (privatized_fits(opts, mode_len, rank, full_nnz)) {
    c.push_back(ScatterStrategy::kPrivatized);
  }
  return c;
}

/// Times one MTTKRP of `mode` with a forced strategy on the (budget-0 =
/// always flat, still metered) engine. A fresh Device per repeat keeps the
/// modeled time per-execution; the warmup run builds the sorted plan and
/// leases scratch outside the timed window.
TrialTime time_single_mode(DimTreeEngine& eng,
                           const std::vector<Matrix>& factors, int mode,
                           ScatterStrategy strategy,
                           const ScatterOptions& base,
                           const simgpu::DeviceSpec& spec,
                           std::uint32_t best_of, Matrix& out) {
  ScatterOptions o = base;
  o.strategy = strategy;
  {
    simgpu::Device warm(spec);
    eng.mttkrp(warm, factors, mode, out, o);
  }
  TrialTime t;
  for (std::uint32_t rep = 0; rep < std::max<std::uint32_t>(1, best_of);
       ++rep) {
    simgpu::Device dev(spec);
    Timer timer;
    eng.mttkrp(dev, factors, mode, out, o);
    t.wall_s = std::min(t.wall_s, timer.seconds());
    t.modeled_s = dev.modeled_time_s();
    count_trial();
  }
  return t;
}

/// Times one full AO iteration's MTTKRP sequence (every mode in ascending
/// order, the trainer's sweep) with per-mode forced strategies.
TrialTime time_iteration(DimTreeEngine& eng,
                         const std::vector<Matrix>& factors,
                         const std::vector<ScatterStrategy>& per_mode,
                         const ScatterOptions& base,
                         const simgpu::DeviceSpec& spec,
                         std::uint32_t best_of, std::vector<Matrix>& outs) {
  const int modes = eng.num_modes();
  auto sweep = [&](simgpu::Device& dev) {
    for (int m = 0; m < modes; ++m) {
      ScatterOptions o = base;
      o.strategy = per_mode[static_cast<std::size_t>(m)];
      eng.mttkrp(dev, factors, m, outs[static_cast<std::size_t>(m)], o);
    }
  };
  {
    simgpu::Device warm(spec);
    sweep(warm);
  }
  TrialTime t;
  for (std::uint32_t rep = 0; rep < std::max<std::uint32_t>(1, best_of);
       ++rep) {
    simgpu::Device dev(spec);
    Timer timer;
    sweep(dev);
    t.wall_s = std::min(t.wall_s, timer.seconds());
    t.modeled_s = dev.modeled_time_s();
    count_trial();
  }
  return t;
}

}  // namespace

const char* tuning_policy_name(TuningPolicy policy) {
  switch (policy) {
    case TuningPolicy::kModel: return "model";
    case TuningPolicy::kCached: return "cached";
    case TuningPolicy::kMeasure: return "measure";
  }
  return "?";
}

bool parse_tuning_policy(const std::string& name, TuningPolicy* out) {
  if (name == "model") *out = TuningPolicy::kModel;
  else if (name == "cached") *out = TuningPolicy::kCached;
  else if (name == "measure") *out = TuningPolicy::kMeasure;
  else return false;
  return true;
}

TuningKey make_tuning_key(const TuneInputs& in, const TuningOptions& opts) {
  TuningKey key;
  key.device_digest = digest_device_spec(in.spec);
  key.tensor_digest = digest_tensor_fingerprint(*in.tensor, in.layout_tag);
  key.rank = static_cast<std::uint64_t>(in.rank);
  DigestBuilder d;
  d.u64(static_cast<std::uint64_t>(in.scatter.strategy))
      .boolean(in.scatter.deterministic)
      .f64(in.scatter.privatization_budget_bytes)
      .u64(static_cast<std::uint64_t>(in.requested_mode))
      .f64(in.dimtree_budget_bytes)
      .f64(in.flat_stream_bytes)
      .u64(opts.seed)
      .u64(opts.best_of)
      .u64(opts.max_sample_nnz)
      .boolean(opts.use_host_clock)
      .f64(opts.tie_break_tolerance);
  key.options_digest = d.value();
  return key;
}

SparseTensor sample_nonzeros(const SparseTensor& x, std::uint64_t max_nnz,
                             std::uint64_t seed) {
  const auto full = static_cast<std::uint64_t>(x.nnz());
  SparseTensor sample(x.dims());
  const int modes = x.num_modes();
  std::vector<index_t> coords(static_cast<std::size_t>(modes));
  if (max_nnz == 0 || full <= max_nnz) {
    sample.reserve(x.nnz());
    for (index_t i = 0; i < x.nnz(); ++i) {
      for (int m = 0; m < modes; ++m) {
        coords[static_cast<std::size_t>(m)] =
            x.indices(m)[static_cast<std::size_t>(i)];
      }
      sample.append(coords, x.values()[static_cast<std::size_t>(i)]);
    }
    return sample;
  }
  // One nonzero per stride bucket with seeded jitter: preserves the index
  // distribution along the storage order (skewed tensors cluster hot rows,
  // so a prefix sample would be badly biased) while staying deterministic.
  Rng rng(seed);
  sample.reserve(static_cast<index_t>(max_nnz));
  for (std::uint64_t b = 0; b < max_nnz; ++b) {
    const std::uint64_t lo = b * full / max_nnz;
    const std::uint64_t hi = std::max<std::uint64_t>((b + 1) * full / max_nnz,
                                                     lo + 1);
    const auto i =
        static_cast<index_t>(lo + rng.uniform_index(hi - lo));
    for (int m = 0; m < modes; ++m) {
      coords[static_cast<std::size_t>(m)] =
          x.indices(m)[static_cast<std::size_t>(i)];
    }
    sample.append(coords, x.values()[static_cast<std::size_t>(i)]);
  }
  return sample;
}

TuningRecord run_tuning_trials(const TuneInputs& in,
                               const TuningOptions& opts) {
  const SparseTensor& full = *in.tensor;
  const int modes = full.num_modes();
  const index_t rank = in.rank;
  const double tol = std::max(0.0, opts.tie_break_tolerance);

  const SparseTensor sample =
      sample_nonzeros(full, opts.max_sample_nnz, opts.seed);
  const double sample_frac =
      full.nnz() > 0
          ? static_cast<double>(sample.nnz()) / static_cast<double>(full.nnz())
          : 1.0;

  // Seeded factor fills: the trials are a fixed function of (tensor, seed).
  Rng rng(opts.seed);
  std::vector<Matrix> factors;
  std::vector<Matrix> outs;
  factors.reserve(static_cast<std::size_t>(modes));
  outs.reserve(static_cast<std::size_t>(modes));
  for (int m = 0; m < modes; ++m) {
    Matrix f(full.dim(m), rank);
    f.fill_uniform(rng, 0.0, 1.0);
    factors.push_back(std::move(f));
    outs.emplace_back(full.dim(m), rank);
  }

  // Budget 0 keeps this engine permanently on its flat, metered, from-raw
  // path — the harness for single-mode strategy trials (the plain flat
  // kernels are unmetered; this one records KernelStats per call).
  DimTreeEngine flat_eng(sample, rank, /*budget_bytes=*/0.0);
  flat_eng.set_flat_stream_bytes(in.flat_stream_bytes * sample_frac);

  // Phase 1: per-mode scatter strategy. The model's pick is the prior; a
  // candidate must beat it by more than the tolerance to displace it.
  std::vector<ScatterStrategy> chosen_per_mode;
  std::vector<ScatterStrategy> model_per_mode;
  for (int m = 0; m < modes; ++m) {
    const index_t mode_len = full.dim(m);
    const ScatterStrategy prior =
        model_scatter_pick(in.scatter, mode_len, rank, full.nnz());
    model_per_mode.push_back(prior);
    const std::vector<ScatterStrategy> candidates =
        scatter_candidates(in.scatter, mode_len, rank, full.nnz());
    ScatterStrategy best = candidates.front();
    double best_metric = std::numeric_limits<double>::infinity();
    double prior_metric = std::numeric_limits<double>::infinity();
    for (ScatterStrategy s : candidates) {
      const TrialTime t = time_single_mode(
          flat_eng, factors, m, s, in.scatter, in.spec, opts.best_of,
          outs[static_cast<std::size_t>(m)]);
      const double metric = rank_metric(t, opts.use_host_clock);
      if (metric < best_metric) {
        best_metric = metric;
        best = s;
      }
      if (s == prior) prior_metric = metric;
    }
    if (std::isfinite(prior_metric) &&
        prior_metric <= best_metric * (1.0 + tol)) {
      best = prior;  // model prior wins ties
    }
    chosen_per_mode.push_back(best);
  }

  // Phase 2: MTTKRP engine. Feasibility is judged at full size — the chain
  // the real run would allocate, not the sample's.
  const double full_chain_bytes = static_cast<double>(full.nnz()) *
                                  static_cast<double>(rank) * simgpu::kWord;
  const bool tree_feasible =
      modes >= 2 && full_chain_bytes <= in.dimtree_budget_bytes;
  const MttkrpMode model_engine =
      in.requested_mode != MttkrpMode::kAuto
          ? in.requested_mode
          : resolve_mttkrp_mode(full, rank, in.scatter, in.spec,
                                in.dimtree_budget_bytes, in.flat_stream_bytes);

  std::vector<MttkrpMode> engine_candidates;
  if (in.requested_mode != MttkrpMode::kAuto) {
    engine_candidates.push_back(in.requested_mode);
  } else {
    engine_candidates.push_back(MttkrpMode::kFlat);
    if (tree_feasible) engine_candidates.push_back(MttkrpMode::kDimtree);
  }

  DimTreeEngine tree_eng(sample, rank, /*budget_bytes=*/
                         std::max(1.0, 2.0 * static_cast<double>(sample.nnz()) *
                                           static_cast<double>(rank) *
                                           simgpu::kWord));
  tree_eng.set_flat_stream_bytes(in.flat_stream_bytes * sample_frac);

  auto time_engine = [&](MttkrpMode mode,
                         const std::vector<ScatterStrategy>& per_mode) {
    DimTreeEngine& eng =
        mode == MttkrpMode::kDimtree ? tree_eng : flat_eng;
    return time_iteration(eng, factors, per_mode, in.scatter, in.spec,
                          opts.best_of, outs);
  };

  MttkrpMode chosen_engine = engine_candidates.front();
  TrialTime chosen_time;
  double best_metric = std::numeric_limits<double>::infinity();
  for (MttkrpMode mode : engine_candidates) {
    const TrialTime t = time_engine(mode, chosen_per_mode);
    const double metric = rank_metric(t, opts.use_host_clock);
    if (metric < best_metric) {
      best_metric = metric;
      chosen_engine = mode;
      chosen_time = t;
    }
  }

  // Phase 3: the cost model's full configuration, timed for the evidence
  // record — and as the final prior: if the model's configuration is within
  // tolerance of the trial winner, it IS the decision (so tuned runs never
  // regress the model path beyond noise).
  TrialTime model_time = chosen_time;
  const bool model_differs =
      model_engine != chosen_engine || model_per_mode != chosen_per_mode;
  if (model_differs) {
    model_time = time_engine(model_engine, model_per_mode);
    const double chosen_metric = rank_metric(chosen_time, opts.use_host_clock);
    const double model_metric = rank_metric(model_time, opts.use_host_clock);
    if (model_metric <= chosen_metric * (1.0 + tol)) {
      chosen_engine = model_engine;
      chosen_per_mode = model_per_mode;
      chosen_time = model_time;
    }
  }

  // Phase 4: dynamic-chunk oversubscription, wall-clock only (the roofline
  // does not see chunking, so there is nothing to rank without the host
  // clock). The default wins ties.
  std::uint32_t chosen_chunks = 0;
  if (opts.use_host_clock) {
    const index_t saved = parallel_chunks_per_worker();
    const auto default_chunks =
        static_cast<std::uint32_t>(kParallelChunksPerWorker);
    std::uint32_t best_chunks = default_chunks;
    double best_wall = std::numeric_limits<double>::infinity();
    double default_wall = std::numeric_limits<double>::infinity();
    for (std::uint32_t c : {2u, 4u, 8u}) {
      set_parallel_chunks_per_worker(static_cast<index_t>(c));
      const TrialTime t = time_engine(chosen_engine, chosen_per_mode);
      if (t.wall_s < best_wall) {
        best_wall = t.wall_s;
        best_chunks = c;
      }
      if (c == default_chunks) default_wall = t.wall_s;
    }
    set_parallel_chunks_per_worker(saved);
    chosen_chunks = default_wall <= best_wall * (1.0 + tol) ? default_chunks
                                                            : best_chunks;
  }

  TuningRecord rec;
  rec.scatter_per_mode = chosen_per_mode;
  rec.mttkrp_mode = chosen_engine;
  rec.dimtree_budget_bytes = in.dimtree_budget_bytes;
  rec.chunks_per_worker = chosen_chunks;
  rec.measured_best_s = chosen_time.wall_s;
  rec.measured_model_s = model_time.wall_s;
  rec.modeled_best_s = chosen_time.modeled_s;
  rec.modeled_model_s = model_time.modeled_s;
  rec.seed = opts.seed;
  rec.best_of = opts.best_of;
  rec.sample_nnz = static_cast<std::uint64_t>(sample.nnz());
  std::ostringstream prov;
  prov << "micro-trials device=" << in.spec.name << " sample=" << sample.nnz()
       << "/" << full.nnz() << " best_of=" << opts.best_of
       << " clock=" << (opts.use_host_clock ? "host" : "model");
  rec.provenance = prov.str();
  return rec;
}

bool record_applies(const TuningRecord& record, const TuneInputs& in) {
  const SparseTensor& x = *in.tensor;
  if (record.mttkrp_mode == MttkrpMode::kAuto) return false;
  if (static_cast<int>(record.scatter_per_mode.size()) != x.num_modes()) {
    return false;
  }
  const double chain_bytes = static_cast<double>(x.nnz()) *
                             static_cast<double>(in.rank) * simgpu::kWord;
  if (record.mttkrp_mode == MttkrpMode::kDimtree &&
      chain_bytes > in.dimtree_budget_bytes) {
    return false;
  }
  for (int m = 0; m < x.num_modes(); ++m) {
    const ScatterStrategy s =
        record.scatter_per_mode[static_cast<std::size_t>(m)];
    if (s == ScatterStrategy::kAuto) return false;
    if (in.scatter.deterministic && s == ScatterStrategy::kAtomic) {
      return false;
    }
    if (s == ScatterStrategy::kPrivatized &&
        !privatized_fits(in.scatter, x.dim(m), in.rank, x.nnz())) {
      return false;
    }
  }
  if (record.chunks_per_worker > 64) return false;
  return true;
}

TuningOutcome resolve_tuning(const TuneInputs& in, const TuningOptions& opts) {
  TuningOutcome out;
  out.key = make_tuning_key(in, opts);
  if (opts.policy == TuningPolicy::kModel) return out;

  TuningCache cache(opts.cache_capacity);
  const bool persistent = !opts.cache_path.empty();
  if (persistent) {
    cache = TuningCache::load_or_empty(opts.cache_path, opts.cache_capacity);
  }

  if (opts.policy == TuningPolicy::kCached) {
    const TuningRecord* hit = cache.find(out.key);
    if (hit != nullptr && record_applies(*hit, in)) {
      out.record = *hit;
      out.cache_hit = true;
      out.applied = true;
      if (persistent) cache.save(opts.cache_path);  // persist the LRU bump
      return out;
    }
  }

  out.record = run_tuning_trials(in, opts);
  out.trials_run = true;
  out.applied = true;
  cache.put(out.key, out.record);
  if (persistent) cache.save(opts.cache_path);
  return out;
}

BatcherTuning tune_fold_in_batcher(const BatcherCalibration& cal,
                                   std::uint32_t max_batch_cap,
                                   double max_linger_cap_s) {
  // Defaults mirror FoldInBatcher::Options (64 / 2ms); degenerate
  // calibrations keep them rather than inventing a pick from no evidence.
  BatcherTuning t;
  t.max_batch = max_batch_cap > 0 ? std::min<std::uint32_t>(64, max_batch_cap)
                                  : 64;
  t.linger_s = std::min(0.002, max_linger_cap_s);
  const double c0 = cal.solve_base_s;
  const double c1 = cal.solve_per_row_s;
  if (max_batch_cap == 0 || c0 < 0.0 || c1 < 0.0 || (c0 == 0.0 && c1 == 0.0) ||
      !std::isfinite(c0) || !std::isfinite(c1)) {
    return t;
  }

  auto throughput = [&](std::uint32_t b) {
    const double bd = static_cast<double>(b);
    const double solve = c0 + c1 * bd;
    return solve > 0.0 ? bd / solve : 0.0;
  };
  const double target = 0.95 * throughput(max_batch_cap);
  std::uint32_t batch = max_batch_cap;
  for (std::uint32_t b = 1; b <= max_batch_cap; ++b) {
    if (throughput(b) >= target) {
      batch = b;
      break;
    }
  }
  t.max_batch = batch;
  // Linger just long enough to actually collect the batch at the measured
  // rate; with no measured arrivals there is nothing to wait for.
  if (cal.arrival_rate_rps > 0.0 && batch > 1) {
    t.linger_s = std::min(static_cast<double>(batch - 1) / cal.arrival_rate_rps,
                          max_linger_cap_s);
  } else {
    t.linger_s = 0.0;
  }
  return t;
}

}  // namespace cstf::autotune
