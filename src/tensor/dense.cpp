#include "tensor/dense.hpp"

#include <algorithm>

#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"

namespace cstf {

namespace {
constexpr index_t kMaxDenseElements = index_t{1} << 28;  // 2 GiB of doubles
}

DenseTensor::DenseTensor(std::vector<index_t> dims) : dims_(std::move(dims)) {
  CSTF_CHECK(!dims_.empty() && static_cast<int>(dims_.size()) <= kMaxModes);
  index_t total = 1;
  strides_.resize(dims_.size());
  for (std::size_t m = 0; m < dims_.size(); ++m) {
    CSTF_CHECK(dims_[m] >= 1);
    strides_[m] = total;
    total *= dims_[m];
    CSTF_CHECK_MSG(total <= kMaxDenseElements,
                   "dense tensor too large: " << total << " elements");
  }
  values_.assign(static_cast<std::size_t>(total), real_t{0});
}

index_t DenseTensor::offset(const index_t* coords) const {
  index_t off = 0;
  for (std::size_t m = 0; m < dims_.size(); ++m) {
    off += coords[m] * strides_[m];
  }
  return off;
}

DenseTensor DenseTensor::from_sparse(const SparseTensor& sparse) {
  DenseTensor dense(sparse.dims());
  index_t coords[kMaxModes];
  for (index_t i = 0; i < sparse.nnz(); ++i) {
    for (int m = 0; m < sparse.num_modes(); ++m) {
      coords[m] = sparse.indices(m)[static_cast<std::size_t>(i)];
    }
    dense.values_[static_cast<std::size_t>(dense.offset(coords))] +=
        sparse.values()[static_cast<std::size_t>(i)];
  }
  return dense;
}

DenseTensor DenseTensor::from_factors(const std::vector<Matrix>& factors,
                                      const std::vector<index_t>& dims) {
  CSTF_CHECK(factors.size() == dims.size());
  const index_t rank = factors[0].cols();
  for (std::size_t m = 0; m < factors.size(); ++m) {
    CSTF_CHECK(factors[m].rows() == dims[m] && factors[m].cols() == rank);
  }
  DenseTensor dense(dims);
  const index_t total = dense.num_elements();
  const int modes = static_cast<int>(dims.size());
  parallel_for_blocked(0, total, [&](index_t lo, index_t hi) {
    index_t coords[kMaxModes];
    for (index_t lin = lo; lin < hi; ++lin) {
      index_t rem = lin;
      for (int m = 0; m < modes; ++m) {
        coords[m] = rem % dims[static_cast<std::size_t>(m)];
        rem /= dims[static_cast<std::size_t>(m)];
      }
      real_t acc = 0.0;
      for (index_t r = 0; r < rank; ++r) {
        real_t prod = 1.0;
        for (int m = 0; m < modes; ++m) {
          prod *= factors[static_cast<std::size_t>(m)](coords[m], r);
        }
        acc += prod;
      }
      dense.values_[static_cast<std::size_t>(lin)] = acc;
    }
  });
  return dense;
}

real_t DenseTensor::frobenius_norm_sq() const {
  const real_t* v = values_.data();
  return parallel_sum(0, num_elements(), [v](index_t i) { return v[i] * v[i]; });
}

void dense_mttkrp(const DenseTensor& x, const std::vector<Matrix>& factors,
                  int mode, Matrix& out) {
  const int modes = x.num_modes();
  CSTF_CHECK(mode >= 0 && mode < modes);
  CSTF_CHECK(static_cast<int>(factors.size()) == modes);
  const index_t rank = factors[0].cols();
  CSTF_CHECK(out.rows() == x.dim(mode) && out.cols() == rank);
  out.set_all(0.0);

  const index_t total = x.num_elements();
  const auto& dims = x.dims();
  // Parallel over output rows: each worker scans the whole tensor but only
  // accumulates elements whose mode-index falls in its row range, keeping
  // the accumulation race-free without atomics.
  parallel_for_blocked(0, x.dim(mode), [&](index_t row_lo, index_t row_hi) {
    index_t coords[kMaxModes];
    for (index_t lin = 0; lin < total; ++lin) {
      index_t rem = lin;
      for (int m = 0; m < modes; ++m) {
        coords[m] = rem % dims[static_cast<std::size_t>(m)];
        rem /= dims[static_cast<std::size_t>(m)];
      }
      const index_t row = coords[mode];
      if (row < row_lo || row >= row_hi) continue;
      const real_t v = x.data()[lin];
      if (v == 0.0) continue;
      for (index_t r = 0; r < rank; ++r) {
        real_t prod = v;
        for (int m = 0; m < modes; ++m) {
          if (m == mode) continue;
          prod *= factors[static_cast<std::size_t>(m)](coords[m], r);
        }
        out(row, r) += prod;
      }
    }
  }, /*grain=*/1);
}

}  // namespace cstf
