// Dense tensor — the substrate for the PLANC-style dense-TF baseline that
// Figure 1's DenseTF column profiles.
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo.hpp"

namespace cstf {

/// Dense N-mode tensor, stored with mode-0 fastest (generalized
/// column-major, matching the factor-matrix layout).
class DenseTensor {
 public:
  DenseTensor() = default;
  explicit DenseTensor(std::vector<index_t> dims);

  int num_modes() const { return static_cast<int>(dims_.size()); }
  index_t dim(int mode) const { return dims_[static_cast<std::size_t>(mode)]; }
  const std::vector<index_t>& dims() const { return dims_; }
  index_t num_elements() const { return static_cast<index_t>(values_.size()); }

  real_t* data() { return values_.data(); }
  const real_t* data() const { return values_.data(); }

  /// Linear offset of a coordinate (mode-0 fastest).
  index_t offset(const index_t* coords) const;

  real_t at(const std::vector<index_t>& coords) const {
    return values_[static_cast<std::size_t>(offset(coords.data()))];
  }
  real_t& at(const std::vector<index_t>& coords) {
    return values_[static_cast<std::size_t>(offset(coords.data()))];
  }

  /// Materializes a sparse tensor densely (zero elsewhere). Guards against
  /// absurd sizes — only for tests and small baselines.
  static DenseTensor from_sparse(const SparseTensor& sparse);

  /// Reconstructs a dense tensor from rank-R factors: X = sum_r outer
  /// product of factor columns (unweighted CPD). Factor n must be
  /// dim(n) x R.
  static DenseTensor from_factors(const std::vector<Matrix>& factors,
                                  const std::vector<index_t>& dims);

  real_t frobenius_norm_sq() const;

 private:
  std::vector<index_t> dims_;
  std::vector<index_t> strides_;
  std::vector<real_t> values_;
};

/// Dense MTTKRP for mode `mode`: out = X_(mode) * (khatri-rao of the other
/// factors), computed by direct enumeration of all tensor elements. This is
/// the workload whose cost is proportional to prod(dims) — the reason MTTKRP
/// dominates DenseTF in Figure 1.
void dense_mttkrp(const DenseTensor& x, const std::vector<Matrix>& factors,
                  int mode, Matrix& out);

}  // namespace cstf
