// Registry of the paper's 10 FROSTT datasets (Table 2) and scaled synthetic
// analogs of each.
//
// The real tensors (3.1M–1.7B nonzeros) are not redistributable inside this
// repository, so each dataset has a deterministic generator that preserves
// what the paper's analysis says drives the results: the *ratios* between
// mode lengths and the nonzero count (update cost ~ sum_n I_n*R vs MTTKRP
// cost ~ nnz*R), the mode count, and FROSTT-like index skew. Benches scale
// metered kernel statistics back up by `nnz_scale()` / `dim_scale()` before
// feeding the cost model, so modeled times correspond to the full-size
// tensors. A user with the real `.tns` files can instead load them through
// tensor/io.hpp and pass CSTF_DATA_DIR to the benches.
#pragma once

#include <string>
#include <vector>

#include "tensor/coo.hpp"
#include "tensor/generate.hpp"

namespace cstf {

/// One row of the paper's Table 2.
struct DatasetSpec {
  std::string name;
  std::vector<index_t> full_dims;
  double full_nnz;
  /// Index-skew exponent used by the analog generator.
  double zipf_alpha;
  /// Seed for the analog generator (fixed per dataset).
  std::uint64_t seed;

  /// Density of the full tensor: nnz / prod(dims).
  double density() const;
};

/// All 10 datasets, in the paper's order (ascending nonzero count):
/// NIPS, Uber, Chicago, Vast, Enron, NELL2, Flickr, Delicious, NELL1, Amazon.
const std::vector<DatasetSpec>& paper_datasets();

/// Looks up a spec by (case-sensitive) name; throws if unknown.
const DatasetSpec& dataset_by_name(const std::string& name);

/// A generated analog plus the scale factors that map metered statistics
/// back to full size.
struct DatasetAnalog {
  DatasetSpec spec;
  SparseTensor tensor;

  /// full_nnz / analog nnz — scales nnz-proportional statistics (MTTKRP).
  double nnz_scale() const;

  /// full dim / analog dim for one mode — scales I_n-proportional statistics
  /// (the ADMM/MU/HALS updates of that mode's factor).
  double dim_scale(int mode) const;
};

/// Generates the analog of `spec` with roughly `target_nnz` nonzeros
/// (duplicate merging makes the exact count slightly smaller). Deterministic
/// for a fixed (spec, target_nnz).
DatasetAnalog make_analog(const DatasetSpec& spec, index_t target_nnz);

/// Convenience: analog by dataset name, with the default bench size
/// (CSTF_ANALOG_NNZ env var, default 60000).
DatasetAnalog make_analog(const std::string& name);

/// Default analog size used by benches (reads CSTF_ANALOG_NNZ once per call).
index_t default_analog_nnz();

}  // namespace cstf
