// FROSTT `.tns` text format reader/writer.
//
// The format is one nonzero per line: N whitespace-separated 1-based indices
// followed by the value; lines starting with '#' are comments. This is the
// format the paper's datasets (Table 2) are distributed in at frostt.io, so a
// user with the real data can run every bench on it unmodified.
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/coo.hpp"

namespace cstf {

/// Reads a `.tns` stream. Mode count is inferred from the first data line;
/// dimensions are the per-mode maxima unless `dims_hint` is non-empty (then
/// indices are validated against the hint).
SparseTensor read_tns(std::istream& in,
                      const std::vector<index_t>& dims_hint = {});

/// Reads a `.tns` file by path.
SparseTensor read_tns_file(const std::string& path,
                           const std::vector<index_t>& dims_hint = {});

/// Writes `.tns` (1-based indices, full value precision).
void write_tns(const SparseTensor& tensor, std::ostream& out);

/// Writes a `.tns` file by path.
void write_tns_file(const SparseTensor& tensor, const std::string& path);

/// Binary tensor format (".cstf"): magic "CSTF1", mode count, dimensions,
/// nonzero count, then raw index/value arrays. Loads the large FROSTT
/// tensors an order of magnitude faster than text parsing; intended as a
/// local cache next to the original `.tns`.
void write_binary_file(const SparseTensor& tensor, const std::string& path);

/// Reads the binary format; throws on bad magic, version, or truncation.
SparseTensor read_binary_file(const std::string& path);

}  // namespace cstf
