#include "tensor/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "common/env.hpp"

namespace cstf {

double DatasetSpec::density() const {
  double cells = 1.0;
  for (index_t d : full_dims) cells *= static_cast<double>(d);
  return full_nnz / cells;
}

const std::vector<DatasetSpec>& paper_datasets() {
  // Dimensions and nonzero counts from the paper's Table 2. Skew exponents
  // are not reported there; 0.8 is a representative FROSTT skew, with milder
  // skew for tensors whose modes are near-dense (Chicago, Uber, Vast).
  static const std::vector<DatasetSpec> specs = {
      {"NIPS", {2500, 2900, 14000, 17}, 3.1e6, 0.8, 101},
      {"Uber", {183, 24, 1100, 1700}, 3.3e6, 0.5, 102},
      {"Chicago", {6200, 24, 77, 32}, 5.3e6, 0.5, 103},
      {"Vast", {165400, 11400, 2}, 26.0e6, 0.5, 104},
      {"Enron", {6000, 5700, 244300, 1200}, 54.2e6, 0.8, 105},
      {"NELL2", {12100, 9200, 28800}, 76.9e6, 0.8, 106},
      {"Flickr", {319700, 28200000, 1600000, 731}, 112.9e6, 0.9, 107},
      {"Delicious", {532900, 17300000, 2500000, 1400}, 140.1e6, 0.9, 108},
      {"NELL1", {2900000, 2100000, 25500000}, 143.6e6, 0.9, 109},
      {"Amazon", {4800000, 1800000, 1800000}, 1.7e9, 0.9, 110},
  };
  return specs;
}

const DatasetSpec& dataset_by_name(const std::string& name) {
  for (const auto& spec : paper_datasets()) {
    if (spec.name == name) return spec;
  }
  throw Error("unknown dataset: " + name);
}

double DatasetAnalog::nnz_scale() const {
  return spec.full_nnz / static_cast<double>(tensor.nnz());
}

double DatasetAnalog::dim_scale(int mode) const {
  return static_cast<double>(spec.full_dims[static_cast<std::size_t>(mode)]) /
         static_cast<double>(tensor.dim(mode));
}

DatasetAnalog make_analog(const DatasetSpec& spec, index_t target_nnz) {
  CSTF_CHECK(target_nnz > 0);

  // Start from the nnz scale factor and grow until the coordinate space is
  // comfortably larger than the nonzero target, so duplicate merging does
  // not collapse dense-ish tensors (Chicago, NELL2). Per-mode scale factors
  // are reported via dim_scale(), so benches rescale each mode's metered
  // statistics independently — the analog's dims need the right *shape*
  // (long vs short modes), not exact ratios to nnz.
  auto dims_for = [&](double g) {
    std::vector<index_t> dims;
    dims.reserve(spec.full_dims.size());
    for (index_t full_dim : spec.full_dims) {
      const auto scaled =
          static_cast<index_t>(std::llround(static_cast<double>(full_dim) * g));
      // Never below 2 (Vast's mode-3 length of 2 must survive) and never
      // above the true dimension.
      dims.push_back(
          std::clamp<index_t>(scaled, std::min<index_t>(full_dim, 2), full_dim));
    }
    return dims;
  };
  auto cell_count = [](const std::vector<index_t>& dims) {
    double cells = 1.0;
    for (index_t d : dims) cells *= static_cast<double>(d);
    return cells;
  };

  constexpr double kSparsityHeadroom = 50.0;
  double g = static_cast<double>(target_nnz) / spec.full_nnz;
  std::vector<index_t> dims = dims_for(g);
  for (int step = 0; step < 64 && g < 1.0; ++step) {
    if (cell_count(dims) >=
        kSparsityHeadroom * static_cast<double>(target_nnz)) {
      break;
    }
    g = std::min(1.0, g * 2.0);
    dims = dims_for(g);
  }

  RandomTensorParams params;
  params.dims = std::move(dims);
  params.target_nnz = target_nnz;
  params.mode_dist.assign(spec.full_dims.size(),
                          ModeDistribution{spec.zipf_alpha});
  params.seed = spec.seed;
  params.value_lo = 0.0;
  params.value_hi = 1.0;

  DatasetAnalog analog{spec, generate_random(params)};
  return analog;
}

index_t default_analog_nnz() { return env_int("CSTF_ANALOG_NNZ", 60000); }

DatasetAnalog make_analog(const std::string& name) {
  return make_analog(dataset_by_name(name), default_analog_nnz());
}

}  // namespace cstf
