// Synthetic sparse tensor generators.
//
// Two kinds of tensors are generated:
//  * `generate_random` — skewed random coordinates with no planted structure;
//    used by the performance benches, where only the sparsity pattern's
//    statistics matter.
//  * `generate_low_rank` — sampled from a planted non-negative CPD model plus
//    noise; used by convergence tests, where the factorization must be able
//    to recover a known fit.
#pragma once

#include <vector>

#include "common/random.hpp"
#include "la/matrix.hpp"
#include "tensor/coo.hpp"

namespace cstf {

/// How coordinates are drawn along one mode.
struct ModeDistribution {
  /// Zipf exponent; 0 means uniform. FROSTT-like skew is ~0.6–1.2.
  double zipf_alpha = 0.8;
};

/// Parameters for `generate_random`.
struct RandomTensorParams {
  std::vector<index_t> dims;
  index_t target_nnz = 0;
  /// Per-mode index skew; resized with default if shorter than dims.
  std::vector<ModeDistribution> mode_dist;
  /// Values are uniform in [value_lo, value_hi).
  real_t value_lo = 0.0;
  real_t value_hi = 1.0;
  std::uint64_t seed = 1;
};

/// Draws `target_nnz` coordinates (duplicates merged by summation, so the
/// result can have slightly fewer nonzeros), sorted by mode 0.
SparseTensor generate_random(const RandomTensorParams& params);

/// Parameters for `generate_low_rank`.
struct LowRankTensorParams {
  std::vector<index_t> dims;
  index_t rank = 8;
  index_t target_nnz = 0;
  /// Relative Gaussian noise added to each sampled value.
  real_t noise = 0.01;
  std::uint64_t seed = 1;
};

/// Ground truth + sample: non-negative factors are drawn, then `target_nnz`
/// coordinates are sampled (uniformly) and set to the model value plus noise.
/// When `target_nnz >= prod(dims)` every cell is enumerated instead, giving a
/// fully observed tensor — the construction convergence tests need, since CP
/// of a *partially* sampled tensor treats unobserved cells as zeros and the
/// planted model is then not recoverable.
/// Returns the tensor and the planted factors (each dims[m] x rank).
struct LowRankTensor {
  SparseTensor tensor;
  std::vector<Matrix> factors;
};
LowRankTensor generate_low_rank(const LowRankTensorParams& params);

}  // namespace cstf
