#include "tensor/generate.hpp"

#include <algorithm>
#include <numeric>

namespace cstf {

namespace {

// Bijective scatter on [0, d): x -> (a*x + b) mod d with gcd(a, d) == 1.
// Used to spread Zipf's head ranks across the mode without losing coverage
// (a plain multiplicative hash reduced mod d is NOT injective and collapses
// a third or more of the index space).
struct AffineScatter {
  std::uint64_t a = 1, b = 0, d = 1;

  static AffineScatter make(index_t dim, Rng& rng) {
    AffineScatter s;
    s.d = static_cast<std::uint64_t>(dim);
    s.b = rng.uniform_index(s.d);
    // Pick a multiplier coprime with d near a golden-ratio fraction of it.
    s.a = (static_cast<std::uint64_t>(
               static_cast<double>(s.d) * 0.6180339887498949) |
           1u) %
          s.d;
    if (s.a == 0) s.a = 1;
    while (std::gcd(s.a, s.d) != 1) s.a = (s.a + 1) % s.d == 0 ? 1 : s.a + 1;
    return s;
  }

  index_t operator()(index_t x) const {
    return static_cast<index_t>(
        (static_cast<unsigned __int128>(a) * static_cast<std::uint64_t>(x) +
         b) %
        d);
  }
};

}  // namespace

SparseTensor generate_random(const RandomTensorParams& params) {
  CSTF_CHECK(!params.dims.empty());
  CSTF_CHECK(params.target_nnz > 0);
  const int modes = static_cast<int>(params.dims.size());

  std::vector<ModeDistribution> dist = params.mode_dist;
  dist.resize(static_cast<std::size_t>(modes));

  Rng rng(params.seed);
  std::vector<ZipfSampler> samplers;
  std::vector<AffineScatter> scatters;
  samplers.reserve(static_cast<std::size_t>(modes));
  scatters.reserve(static_cast<std::size_t>(modes));
  for (int m = 0; m < modes; ++m) {
    samplers.emplace_back(params.dims[static_cast<std::size_t>(m)],
                          dist[static_cast<std::size_t>(m)].zipf_alpha);
    scatters.push_back(
        AffineScatter::make(params.dims[static_cast<std::size_t>(m)], rng));
  }

  SparseTensor tensor(params.dims);
  tensor.reserve(params.target_nnz);
  index_t coords[kMaxModes];
  for (index_t i = 0; i < params.target_nnz; ++i) {
    for (int m = 0; m < modes; ++m) {
      // Zipf puts rank 0 first; scatter ranks across the mode bijectively so
      // "popular" indices are not all clustered at the low end (matches real
      // data, keeps blocked formats from degenerating) while every index
      // stays reachable.
      const index_t raw = samplers[static_cast<std::size_t>(m)](rng);
      coords[m] = scatters[static_cast<std::size_t>(m)](raw);
    }
    tensor.append(coords, rng.uniform(params.value_lo, params.value_hi));
  }
  tensor.sort_by_mode(0);
  tensor.dedup_sum();
  return tensor;
}

LowRankTensor generate_low_rank(const LowRankTensorParams& params) {
  CSTF_CHECK(!params.dims.empty());
  CSTF_CHECK(params.rank >= 1 && params.target_nnz > 0);
  const int modes = static_cast<int>(params.dims.size());

  Rng rng(params.seed);
  LowRankTensor out;
  out.factors.reserve(static_cast<std::size_t>(modes));
  for (int m = 0; m < modes; ++m) {
    Matrix f(params.dims[static_cast<std::size_t>(m)], params.rank);
    // Non-negative, sparse-ish factors: most entries small, some strong.
    for (index_t j = 0; j < f.cols(); ++j) {
      real_t* col = f.col(j);
      for (index_t i = 0; i < f.rows(); ++i) {
        const real_t u = rng.uniform();
        col[i] = u < 0.7 ? 0.05 * rng.uniform() : rng.uniform();
      }
    }
    out.factors.push_back(std::move(f));
  }

  double cells = 1.0;
  for (index_t d : params.dims) cells *= static_cast<double>(d);
  const bool full = static_cast<double>(params.target_nnz) >= cells;

  SparseTensor tensor(params.dims);
  tensor.reserve(params.target_nnz);
  index_t coords[kMaxModes];
  auto model_value = [&](const index_t* c) {
    real_t value = 0.0;
    for (index_t r = 0; r < params.rank; ++r) {
      real_t prod = 1.0;
      for (int m = 0; m < modes; ++m) {
        prod *= out.factors[static_cast<std::size_t>(m)](c[m], r);
      }
      value += prod;
    }
    value *= (1.0 + params.noise * rng.normal());
    return std::max<real_t>(value, 0.0);
  };
  if (full) {
    // Enumerate every cell (fully observed tensor).
    const auto total = static_cast<index_t>(cells);
    for (index_t lin = 0; lin < total; ++lin) {
      index_t rem = lin;
      for (int m = 0; m < modes; ++m) {
        coords[m] = rem % params.dims[static_cast<std::size_t>(m)];
        rem /= params.dims[static_cast<std::size_t>(m)];
      }
      tensor.append(coords, model_value(coords));
    }
  } else {
    for (index_t i = 0; i < params.target_nnz; ++i) {
      for (int m = 0; m < modes; ++m) {
        coords[m] = static_cast<index_t>(rng.uniform_index(static_cast<std::uint64_t>(
            params.dims[static_cast<std::size_t>(m)])));
      }
      tensor.append(coords, model_value(coords));
    }
  }
  tensor.sort_by_mode(0);
  // Re-sampling the same coordinate yields the same model value; keep one
  // copy rather than summing, so sampled values always match the model.
  tensor.dedup_keep_first();
  out.tensor = std::move(tensor);
  return out;
}

}  // namespace cstf
