#include "tensor/io.hpp"

#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace cstf {

namespace {

struct ParsedLine {
  index_t coords[kMaxModes];
  real_t value;
  int modes;
};

// Parses one data line; returns false for blank/comment lines.
bool parse_line(const std::string& line, int expected_modes, ParsedLine& out) {
  std::size_t pos = 0;
  while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
  if (pos == line.size() || line[pos] == '#') return false;

  std::istringstream ss(line);
  double fields[kMaxModes + 1];
  int count = 0;
  double v;
  while (count < kMaxModes + 1 && (ss >> v)) fields[count++] = v;
  CSTF_CHECK_MSG(count >= 2, "tns line needs >= 1 index + value: '" << line << "'");
  if (expected_modes > 0) {
    CSTF_CHECK_MSG(count == expected_modes + 1,
                   "tns line has " << count - 1 << " indices, expected "
                                   << expected_modes);
  }
  out.modes = count - 1;
  for (int m = 0; m < out.modes; ++m) {
    const auto idx = static_cast<index_t>(fields[m]);
    CSTF_CHECK_MSG(idx >= 1, "tns indices are 1-based; got " << idx);
    out.coords[m] = idx - 1;  // to 0-based
  }
  out.value = static_cast<real_t>(fields[count - 1]);
  return true;
}

}  // namespace

SparseTensor read_tns(std::istream& in, const std::vector<index_t>& dims_hint) {
  std::vector<index_t> coords_per_mode[kMaxModes];
  std::vector<real_t> values;
  std::vector<index_t> max_index;
  int modes = dims_hint.empty() ? 0 : static_cast<int>(dims_hint.size());

  std::string line;
  ParsedLine parsed;
  while (std::getline(in, line)) {
    if (!parse_line(line, modes, parsed)) continue;
    if (modes == 0) {
      modes = parsed.modes;
      max_index.assign(static_cast<std::size_t>(modes), 0);
    }
    if (max_index.empty()) max_index.assign(static_cast<std::size_t>(modes), 0);
    for (int m = 0; m < modes; ++m) {
      coords_per_mode[m].push_back(parsed.coords[m]);
      if (parsed.coords[m] > max_index[static_cast<std::size_t>(m)]) {
        max_index[static_cast<std::size_t>(m)] = parsed.coords[m];
      }
    }
    values.push_back(parsed.value);
  }
  CSTF_CHECK_MSG(modes > 0, "tns stream contained no data lines");

  std::vector<index_t> dims = dims_hint;
  if (dims.empty()) {
    dims.resize(static_cast<std::size_t>(modes));
    for (int m = 0; m < modes; ++m) {
      dims[static_cast<std::size_t>(m)] = max_index[static_cast<std::size_t>(m)] + 1;
    }
  }

  SparseTensor tensor(dims);
  tensor.reserve(static_cast<index_t>(values.size()));
  index_t coords[kMaxModes];
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (int m = 0; m < modes; ++m) coords[m] = coords_per_mode[m][i];
    tensor.append(coords, values[i]);
  }
  return tensor;
}

SparseTensor read_tns_file(const std::string& path,
                           const std::vector<index_t>& dims_hint) {
  std::ifstream in(path);
  CSTF_CHECK_MSG(in.good(), "cannot open tns file: " << path);
  return read_tns(in, dims_hint);
}

void write_tns(const SparseTensor& tensor, std::ostream& out) {
  out << std::setprecision(std::numeric_limits<real_t>::max_digits10);
  const index_t n = tensor.nnz();
  for (index_t i = 0; i < n; ++i) {
    for (int m = 0; m < tensor.num_modes(); ++m) {
      out << tensor.indices(m)[static_cast<std::size_t>(i)] + 1 << ' ';
    }
    out << tensor.values()[static_cast<std::size_t>(i)] << '\n';
  }
}

void write_tns_file(const SparseTensor& tensor, const std::string& path) {
  std::ofstream out(path);
  CSTF_CHECK_MSG(out.good(), "cannot open tns file for write: " << path);
  write_tns(tensor, out);
}

namespace {
constexpr char kBinaryMagic[6] = {'C', 'S', 'T', 'F', '1', '\n'};

template <typename T>
void write_raw(std::ostream& out, const T* data, std::size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
void read_raw(std::istream& in, T* data, std::size_t count,
              const char* what) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  CSTF_CHECK_MSG(in.good(), "binary tensor file truncated reading " << what);
}
}  // namespace

void write_binary_file(const SparseTensor& tensor, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  CSTF_CHECK_MSG(out.good(), "cannot open binary file for write: " << path);
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const auto modes = static_cast<std::uint64_t>(tensor.num_modes());
  const auto nnz = static_cast<std::uint64_t>(tensor.nnz());
  write_raw(out, &modes, 1);
  write_raw(out, tensor.dims().data(), tensor.dims().size());
  write_raw(out, &nnz, 1);
  for (int m = 0; m < tensor.num_modes(); ++m) {
    write_raw(out, tensor.indices(m).data(), tensor.indices(m).size());
  }
  write_raw(out, tensor.values().data(), tensor.values().size());
  CSTF_CHECK_MSG(out.good(), "write failed: " << path);
}

SparseTensor read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CSTF_CHECK_MSG(in.good(), "cannot open binary tensor file: " << path);
  char magic[sizeof(kBinaryMagic)];
  read_raw(in, magic, sizeof(kBinaryMagic), "magic");
  CSTF_CHECK_MSG(std::memcmp(magic, kBinaryMagic, sizeof(kBinaryMagic)) == 0,
                 "not a CSTF1 binary tensor: " << path);
  std::uint64_t modes = 0;
  read_raw(in, &modes, 1, "mode count");
  CSTF_CHECK_MSG(modes >= 1 && modes <= static_cast<std::uint64_t>(kMaxModes),
                 "corrupt mode count " << modes);
  std::vector<index_t> dims(static_cast<std::size_t>(modes));
  read_raw(in, dims.data(), dims.size(), "dims");
  std::uint64_t nnz = 0;
  read_raw(in, &nnz, 1, "nnz");

  SparseTensor tensor(dims);
  for (std::uint64_t m = 0; m < modes; ++m) {
    auto& idx = tensor.mutable_indices(static_cast<int>(m));
    idx.resize(static_cast<std::size_t>(nnz));
    read_raw(in, idx.data(), idx.size(), "indices");
  }
  auto& values = tensor.mutable_values();
  values.resize(static_cast<std::size_t>(nnz));
  read_raw(in, values.data(), values.size(), "values");
  tensor.validate();
  return tensor;
}

}  // namespace cstf
