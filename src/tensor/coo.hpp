// Coordinate-format sparse tensor — the canonical in-memory representation.
//
// Storage is structure-of-arrays: one index vector per mode plus a value
// vector. Every other format (CSF, ALTO, BLCO) is constructed from a sorted
// COO tensor.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cstf {

/// Sparse tensor in coordinate format with 0-based indices.
class SparseTensor {
 public:
  SparseTensor() = default;

  /// Creates an empty tensor with the given mode dimensions.
  explicit SparseTensor(std::vector<index_t> dims);

  int num_modes() const { return static_cast<int>(dims_.size()); }
  index_t dim(int mode) const { return dims_[static_cast<std::size_t>(mode)]; }
  const std::vector<index_t>& dims() const { return dims_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }

  /// Index array of one mode (length nnz()).
  const std::vector<index_t>& indices(int mode) const {
    return indices_[static_cast<std::size_t>(mode)];
  }
  std::vector<index_t>& mutable_indices(int mode) {
    return indices_[static_cast<std::size_t>(mode)];
  }

  const std::vector<real_t>& values() const { return values_; }
  std::vector<real_t>& mutable_values() { return values_; }

  void reserve(index_t nnz);

  /// Appends one nonzero; `coords` must have num_modes() entries in range.
  void append(const index_t* coords, real_t value);
  void append(const std::vector<index_t>& coords, real_t value) {
    CSTF_CHECK(static_cast<int>(coords.size()) == num_modes());
    append(coords.data(), value);
  }

  /// Sorts nonzeros lexicographically with `lead_mode` as the most
  /// significant key, followed by the remaining modes in ascending order —
  /// the ordering CSF construction for that mode needs.
  void sort_by_mode(int lead_mode);

  /// Sorts lexicographically by an explicit mode priority order.
  void sort_by_order(const std::vector<int>& mode_order);

  /// Merges duplicate coordinates by summing their values. Requires the
  /// tensor to be sorted (any lexicographic order). Returns the number of
  /// duplicates removed.
  index_t dedup_sum();

  /// Removes duplicate coordinates keeping the first value — for generators
  /// sampling from a deterministic model, where re-sampling a coordinate
  /// yields the same value and summing would double it. Requires sorted
  /// input. Returns the number of duplicates removed.
  index_t dedup_keep_first();

  /// Throws if any index is out of range or array lengths disagree.
  void validate() const;

  /// Sum of squared values (||X||_F^2) — used in fit computation.
  real_t frobenius_norm_sq() const;

  /// Fraction of occupied cells: nnz / prod(dims). Computed in doubles; the
  /// product overflows index_t for FROSTT-scale dimensions.
  double density() const;

  /// Returns a copy with modes permuted: new mode m = old mode perm[m].
  SparseTensor permute_modes(const std::vector<int>& perm) const;

  /// Human-readable "I0 x I1 x ... (nnz=...)" summary.
  std::string shape_string() const;

 private:
  std::vector<index_t> dims_;
  std::vector<std::vector<index_t>> indices_;
  std::vector<real_t> values_;

  void apply_permutation(const std::vector<index_t>& perm);
  void dedup_impl(bool sum_values);
};

}  // namespace cstf
