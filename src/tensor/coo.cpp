#include "tensor/coo.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "parallel/reduce.hpp"

namespace cstf {

SparseTensor::SparseTensor(std::vector<index_t> dims) : dims_(std::move(dims)) {
  CSTF_CHECK(!dims_.empty() && static_cast<int>(dims_.size()) <= kMaxModes);
  for (index_t d : dims_) CSTF_CHECK(d >= 1);
  indices_.resize(dims_.size());
}

void SparseTensor::reserve(index_t n) {
  for (auto& idx : indices_) idx.reserve(static_cast<std::size_t>(n));
  values_.reserve(static_cast<std::size_t>(n));
}

void SparseTensor::append(const index_t* coords, real_t value) {
  for (int m = 0; m < num_modes(); ++m) {
    CSTF_CHECK_MSG(coords[m] >= 0 && coords[m] < dim(m),
                   "mode " << m << " index " << coords[m] << " out of [0,"
                           << dim(m) << ")");
    indices_[static_cast<std::size_t>(m)].push_back(coords[m]);
  }
  values_.push_back(value);
}

void SparseTensor::sort_by_mode(int lead_mode) {
  CSTF_CHECK(lead_mode >= 0 && lead_mode < num_modes());
  std::vector<int> order;
  order.push_back(lead_mode);
  for (int m = 0; m < num_modes(); ++m) {
    if (m != lead_mode) order.push_back(m);
  }
  sort_by_order(order);
}

void SparseTensor::sort_by_order(const std::vector<int>& mode_order) {
  CSTF_CHECK(static_cast<int>(mode_order.size()) == num_modes());
  const index_t n = nnz();
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
    for (int m : mode_order) {
      const auto& idx = indices_[static_cast<std::size_t>(m)];
      if (idx[static_cast<std::size_t>(a)] != idx[static_cast<std::size_t>(b)]) {
        return idx[static_cast<std::size_t>(a)] < idx[static_cast<std::size_t>(b)];
      }
    }
    return false;
  });
  apply_permutation(perm);
}

void SparseTensor::apply_permutation(const std::vector<index_t>& perm) {
  const auto n = perm.size();
  std::vector<index_t> scratch_idx(n);
  for (auto& idx : indices_) {
    for (std::size_t i = 0; i < n; ++i) {
      scratch_idx[i] = idx[static_cast<std::size_t>(perm[i])];
    }
    idx = scratch_idx;
  }
  std::vector<real_t> scratch_val(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch_val[i] = values_[static_cast<std::size_t>(perm[i])];
  }
  values_ = std::move(scratch_val);
}

index_t SparseTensor::dedup_keep_first() {
  const index_t before = nnz();
  dedup_impl(/*sum_values=*/false);
  return before - nnz();
}

index_t SparseTensor::dedup_sum() {
  const index_t before = nnz();
  dedup_impl(/*sum_values=*/true);
  return before - nnz();
}

void SparseTensor::dedup_impl(bool sum_values) {
  const index_t n = nnz();
  if (n == 0) return;
  const int modes = num_modes();
  auto same_coords = [&](index_t a, index_t b) {
    for (int m = 0; m < modes; ++m) {
      const auto& idx = indices_[static_cast<std::size_t>(m)];
      if (idx[static_cast<std::size_t>(a)] != idx[static_cast<std::size_t>(b)]) {
        return false;
      }
    }
    return true;
  };
  index_t out = 0;
  for (index_t i = 1; i < n; ++i) {
    if (same_coords(out, i)) {
      if (sum_values) {
        values_[static_cast<std::size_t>(out)] +=
            values_[static_cast<std::size_t>(i)];
      }
    } else {
      ++out;
      if (out != i) {
        for (int m = 0; m < modes; ++m) {
          auto& idx = indices_[static_cast<std::size_t>(m)];
          idx[static_cast<std::size_t>(out)] = idx[static_cast<std::size_t>(i)];
        }
        values_[static_cast<std::size_t>(out)] = values_[static_cast<std::size_t>(i)];
      }
    }
  }
  const index_t kept = out + 1;
  for (auto& idx : indices_) idx.resize(static_cast<std::size_t>(kept));
  values_.resize(static_cast<std::size_t>(kept));
}

void SparseTensor::validate() const {
  const auto n = values_.size();
  CSTF_CHECK(indices_.size() == dims_.size());
  for (int m = 0; m < num_modes(); ++m) {
    const auto& idx = indices_[static_cast<std::size_t>(m)];
    CSTF_CHECK_MSG(idx.size() == n, "mode " << m << " index count mismatch");
    for (index_t v : idx) {
      CSTF_CHECK_MSG(v >= 0 && v < dim(m),
                     "mode " << m << " index " << v << " out of range");
    }
  }
}

real_t SparseTensor::frobenius_norm_sq() const {
  const real_t* v = values_.data();
  return parallel_sum(0, nnz(), [v](index_t i) { return v[i] * v[i]; });
}

double SparseTensor::density() const {
  double cells = 1.0;
  for (index_t d : dims_) cells *= static_cast<double>(d);
  return cells > 0.0 ? static_cast<double>(nnz()) / cells : 0.0;
}

SparseTensor SparseTensor::permute_modes(const std::vector<int>& perm) const {
  CSTF_CHECK(static_cast<int>(perm.size()) == num_modes());
  std::vector<index_t> new_dims(perm.size());
  for (std::size_t m = 0; m < perm.size(); ++m) {
    new_dims[m] = dim(perm[m]);
  }
  SparseTensor out(new_dims);
  out.values_ = values_;
  for (std::size_t m = 0; m < perm.size(); ++m) {
    out.indices_[m] = indices_[static_cast<std::size_t>(perm[m])];
  }
  return out;
}

std::string SparseTensor::shape_string() const {
  std::ostringstream os;
  for (int m = 0; m < num_modes(); ++m) {
    if (m) os << " x ";
    os << dim(m);
  }
  os << " (nnz=" << nnz() << ")";
  return os.str();
}

}  // namespace cstf
