#include "metrics/exposition.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace cstf::metrics {

namespace {

constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53

// Dotted name -> Prometheus metric name: cstf_ prefix, dots to underscores.
std::string prom_name(const std::string& name) {
  std::string out = "cstf_";
  for (char c : name) out += (c == '.') ? '_' : c;
  return out;
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  for (char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// {k="v",k2="v2"} or "" for no labels; extra_key/value appends one more
// pair (for the histogram `le` label).
std::string prom_labels(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string format_number(double v) {
  if (!std::isfinite(v)) return "0";
  if (std::floor(v) == v && std::fabs(v) < kMaxExactInt) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::ostringstream os;
  std::string last_name;
  for (const auto& s : snap.instruments) {
    const std::string pname = prom_name(s.name);
    if (s.name != last_name) {
      // HELP/TYPE once per metric family, even when labels fan it out
      // into several series.
      if (!s.help.empty()) os << "# HELP " << pname << ' ' << s.help << '\n';
      os << "# TYPE " << pname << ' ' << instrument_type_name(s.type)
         << '\n';
      last_name = s.name;
    }
    if (s.type == InstrumentType::kHistogram) {
      std::int64_t cumulative = 0;
      for (std::size_t i = 0; i < s.histogram.bounds.size(); ++i) {
        cumulative += s.histogram.counts[i];
        os << pname << "_bucket"
           << prom_labels(s.labels, "le", format_number(s.histogram.bounds[i]))
           << ' ' << cumulative << '\n';
      }
      os << pname << "_bucket" << prom_labels(s.labels, "le", "+Inf") << ' '
         << s.histogram.count << '\n';
      os << pname << "_sum" << prom_labels(s.labels) << ' '
         << format_number(s.histogram.sum) << '\n';
      os << pname << "_count" << prom_labels(s.labels) << ' '
         << s.histogram.count << '\n';
    } else {
      os << pname << prom_labels(s.labels) << ' ' << format_number(s.value)
         << '\n';
    }
  }
  return os.str();
}

std::string to_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const auto& s : snap.instruments) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(s.name) << "\",\"type\":\""
       << instrument_type_name(s.type) << '"';
    if (!s.labels.empty()) {
      os << ",\"labels\":{";
      bool lf = true;
      for (const auto& [k, v] : s.labels) {
        if (!lf) os << ',';
        lf = false;
        os << '"' << json_escape(k) << "\":\"" << json_escape(v) << '"';
      }
      os << '}';
    }
    if (!s.unit.empty()) os << ",\"unit\":\"" << json_escape(s.unit) << '"';
    if (!s.help.empty()) os << ",\"help\":\"" << json_escape(s.help) << '"';
    if (s.type == InstrumentType::kHistogram) {
      os << ",\"count\":" << s.histogram.count
         << ",\"sum\":" << format_number(s.histogram.sum) << ",\"bounds\":[";
      for (std::size_t i = 0; i < s.histogram.bounds.size(); ++i) {
        if (i) os << ',';
        os << format_number(s.histogram.bounds[i]);
      }
      os << "],\"counts\":[";
      for (std::size_t i = 0; i < s.histogram.counts.size(); ++i) {
        if (i) os << ',';
        os << s.histogram.counts[i];
      }
      os << "],\"p50\":" << format_number(histogram_quantile(s.histogram, 0.50))
         << ",\"p95\":" << format_number(histogram_quantile(s.histogram, 0.95))
         << ",\"p99\":" << format_number(histogram_quantile(s.histogram, 0.99));
    } else {
      os << ",\"value\":" << format_number(s.value);
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::vector<std::pair<std::string, double>> flatten(
    const MetricsSnapshot& snap) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& s : snap.instruments) {
    std::string key = s.name;
    if (!s.labels.empty()) {
      key += '{';
      bool first = true;
      for (const auto& [k, v] : s.labels) {
        if (!first) key += ',';
        first = false;
        key += k;
        key += '=';
        key += v;
      }
      key += '}';
    }
    if (s.type == InstrumentType::kHistogram) {
      out.emplace_back(key + ".count",
                       static_cast<double>(s.histogram.count));
      out.emplace_back(key + ".sum", s.histogram.sum);
      out.emplace_back(key + ".p50", histogram_quantile(s.histogram, 0.50));
      out.emplace_back(key + ".p95", histogram_quantile(s.histogram, 0.95));
      out.emplace_back(key + ".p99", histogram_quantile(s.histogram, 0.99));
    } else {
      out.emplace_back(std::move(key), s.value);
    }
  }
  return out;
}

void write_text_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    CSTF_CHECK_MSG(os.good(), "cannot open " << tmp << " for writing");
    os << text;
    os.flush();
    CSTF_CHECK_MSG(os.good(), "write to " << tmp << " failed");
  }
  CSTF_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "rename " << tmp << " -> " << path << " failed");
}

}  // namespace cstf::metrics
