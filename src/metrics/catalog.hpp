// Static metric catalog: the single source of truth for every instrument
// name's type, label keys, unit, and help text. The registry consults it at
// snapshot time to attach help/units, `cstf_info --metrics` prints it, and
// docs/METRICS.md mirrors it — keeping the three in lockstep.
//
// A name missing from the catalog still registers and exports fine (the
// registry is open), it just carries no help text; tests pin that every
// instrument the codebase registers IS cataloged.
#pragma once

#include <cstddef>
#include <string>

#include "metrics/registry.hpp"

namespace cstf::metrics {

struct CatalogEntry {
  const char* name;        ///< dotted instrument name
  InstrumentType type;
  const char* label_keys;  ///< comma-separated label keys, "" if none
  const char* unit;        ///< "1" for dimensionless counts
  const char* help;        ///< one-line meaning
};

/// Every instrument the codebase registers, sorted by name.
const CatalogEntry* catalog_entries(std::size_t* count);

/// nullptr if `name` is not cataloged.
const CatalogEntry* find_catalog_entry(const std::string& name);

}  // namespace cstf::metrics
