// Exporters off a MetricsSnapshot. Both walk the same snapshot, so a
// Prometheus dump and a JSON block taken from one snapshot always agree.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "metrics/registry.hpp"

namespace cstf::metrics {

/// Prometheus text exposition format (version 0.0.4). Dotted names become
/// `cstf_`-prefixed underscore names ("serve.requests" ->
/// "cstf_serve_requests"); histograms emit cumulative `_bucket{le=...}`
/// series plus `_sum` and `_count`. Deterministic: instruments in snapshot
/// order, integral values printed without a decimal point.
std::string to_prometheus(const MetricsSnapshot& snap);

/// Strict-JSON document: {"metrics": [{"name", "type", "labels", "unit",
/// "help", and "value" or histogram fields}, ...]}. Parses with
/// simgpu::json::parse; numbers formatted identically to the Prometheus
/// exporter so cross-format comparisons are exact.
std::string to_json(const MetricsSnapshot& snap);

/// Scalar flattening for bench::JsonSession extras: one
/// ("name{label=value}", value) pair per counter/gauge; histograms
/// contribute name.count, name.sum, name.p50/p95/p99.
std::vector<std::pair<std::string, double>> flatten(
    const MetricsSnapshot& snap);

/// Writes `text` to `path` atomically (tmp file in the same directory,
/// then rename). Throws cstf::Error on I/O failure.
void write_text_atomic(const std::string& path, const std::string& text);

/// Shared number formatting: integral values (|v| < 2^53) print without a
/// decimal point, everything else as %.17g — matching simgpu::json::number.
std::string format_number(double v);

}  // namespace cstf::metrics
