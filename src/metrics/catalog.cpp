#include "metrics/catalog.hpp"

#include <algorithm>

namespace cstf::metrics {

namespace {

// Sorted by name (binary-searched in find_catalog_entry). Keep
// docs/METRICS.md in sync — scripts/check_docs.sh cross-checks the names.
constexpr CatalogEntry kCatalog[] = {
    {"autotune.trials", InstrumentType::kCounter, "",
     "1", "Autotune measurement trials executed."},
    {"autotune.tuning_cache.evictions", InstrumentType::kCounter, "",
     "1", "Entries evicted from the LRU tuning cache."},
    {"autotune.tuning_cache.hits", InstrumentType::kCounter, "",
     "1", "Tuning-cache lookups answered from the cache."},
    {"autotune.tuning_cache.misses", InstrumentType::kCounter, "",
     "1", "Tuning-cache lookups that required a fresh tuning run."},
    {"checkpoint.loads", InstrumentType::kCounter, "result",
     "1", "Checkpoint load attempts by result (ok|error)."},
    {"checkpoint.saves", InstrumentType::kCounter, "result",
     "1", "Checkpoint save attempts by result (ok|error)."},
    {"exec.op.duration", InstrumentType::kHistogram, "kind",
     "seconds", "Executor per-op wall time by op kind."},
    {"exec.plan_cache.hits", InstrumentType::kCounter, "",
     "1", "Execution-plan cache lookups answered from the cache."},
    {"exec.plan_cache.misses", InstrumentType::kCounter, "",
     "1", "Execution-plan cache lookups that rebuilt the plan."},
    {"mttkrp.scatter_cache.hits", InstrumentType::kCounter, "engine",
     "1", "Scatter-plan cache hits by engine (backend|dimtree)."},
    {"mttkrp.scatter_cache.misses", InstrumentType::kCounter, "engine",
     "1", "Scatter-plan cache misses by engine (backend|dimtree)."},
    {"serve.batch.size", InstrumentType::kHistogram, "",
     "1", "Fold-in batch sizes drained by the batcher."},
    {"serve.batcher.queue_depth", InstrumentType::kGauge, "",
     "1", "Fold-in requests currently queued in the batcher."},
    {"serve.fold_in.latency", InstrumentType::kHistogram, "",
     "seconds", "End-to-end fold-in request latency."},
    {"serve.query.latency", InstrumentType::kHistogram, "",
     "seconds", "Query (completion/top-k) latency."},
    {"serve.requests", InstrumentType::kCounter, "outcome",
     "1", "Serve requests by outcome (submitted|served|shed|timed_out|"
          "retried|degraded|failed)."},
    {"simgpu.kernel.atomic_ops", InstrumentType::kCounter, "device",
     "1", "Simulated device atomic operations issued."},
    {"simgpu.kernel.bytes", InstrumentType::kCounter, "device",
     "bytes", "Simulated device bytes moved (streamed + reused + random)."},
    {"simgpu.kernel.flops", InstrumentType::kCounter, "device",
     "1", "Simulated device floating-point operations."},
    {"simgpu.kernel.launches", InstrumentType::kCounter, "device",
     "1", "Simulated device kernel launches recorded."},
};

}  // namespace

const CatalogEntry* catalog_entries(std::size_t* count) {
  *count = sizeof(kCatalog) / sizeof(kCatalog[0]);
  return kCatalog;
}

const CatalogEntry* find_catalog_entry(const std::string& name) {
  const CatalogEntry* begin = kCatalog;
  const CatalogEntry* end = kCatalog + sizeof(kCatalog) / sizeof(kCatalog[0]);
  const CatalogEntry* it = std::lower_bound(
      begin, end, name, [](const CatalogEntry& e, const std::string& n) {
        return n.compare(e.name) > 0;
      });
  if (it != end && name == it->name) return it;
  return nullptr;
}

}  // namespace cstf::metrics
