// Process-wide metrics registry: typed instruments under dotted names.
//
// After nine PRs the operational signals were fragmented — simgpu kernel
// counters, serve reliability/latency recorders, and four separate cache
// hit/miss sets each with bespoke structs and ad-hoc printing. This layer
// unifies them behind one registry with a standard exposition surface, so a
// single `snapshot()` answers "what is this process doing right now":
//
//   * `Counter`   — monotonic cumulative total (requests served, bytes
//                   moved, cache hits). Double-valued so kernel byte/flop
//                   totals fit; increments of integral deltas sum exactly
//                   up to 2^53.
//   * `Gauge`     — a value that goes up and down (queue depth).
//   * `Histogram` — fixed upper-bound buckets (log-spaced for latencies)
//                   plus an exact observation count and sum. Quantiles are
//                   derived from the buckets at read time — the registry
//                   never stores samples.
//
// Instruments are registered under dotted names ("serve.requests") with
// optional key=value labels ({outcome="shed"}); help text and units come
// from the static catalog (catalog.hpp), so `cstf_info --metrics` and
// docs/METRICS.md share one source of truth.
//
// Concurrency contract: the registry mutex is taken only at registration
// and snapshot time. Every instrument operation on the hot path is a single
// relaxed atomic (per-bucket atomics for histograms), so metering a kernel
// launch or a request costs a few uncontended atomic adds. Instrument
// pointers returned by the registry stay valid for the registry's lifetime;
// the process-wide registry (`MetricsRegistry::global()`) lives until exit.
//
// Exposition (exposition.hpp): Prometheus text format and a strict-JSON
// document off the same `MetricsSnapshot`, which is an isolated copy —
// mutating instruments after `snapshot()` does not change it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cstf::metrics {

enum class InstrumentType { kCounter, kGauge, kHistogram };

/// Display name ("counter", "gauge", "histogram").
const char* instrument_type_name(InstrumentType type);

/// Instrument labels: ordered key=value pairs. Order is part of the
/// identity ({a=1,b=2} and {b=2,a=1} are distinct registrations — callers
/// use one canonical order per instrument, which every call site in this
/// repository does by construction).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic cumulative total. inc() with a negative delta is ignored (a
/// counter never goes down); sync_to() ratchets the counter up to an
/// externally-accumulated cumulative value — the bridge for pre-existing
/// counter structs (Device totals, cache hit counts) that keep their own
/// storage and are mirrored into the registry at collection points.
class Counter {
 public:
  void inc(double delta = 1.0) {
    if (!(delta > 0.0)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Sets the counter to `cumulative` if that is larger than the current
  /// value; never decreases. Safe to call repeatedly (periodic dumps).
  void sync_to(double cumulative) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cumulative > cur &&
           !value_.compare_exchange_weak(cur, cumulative,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A value that can go up and down (queue depth, resident bytes).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-spaced latency bounds: 1 us doubling up to ~8.4 s (24 buckets plus
/// the implicit overflow bucket). The default for every *.latency and
/// *.duration histogram in the catalog.
std::vector<double> default_latency_bounds();

/// Power-of-two count bounds 1, 2, 4, ..., 256 (batch sizes, fan-outs).
std::vector<double> default_count_bounds();

/// Fixed-bucket histogram: observation v lands in the first bucket whose
/// upper bound satisfies v <= bound (Prometheus `le` semantics); anything
/// above the last bound lands in the overflow bucket. Exact atomic count
/// and sum ride along.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Per-bucket (non-cumulative) counts, one per bound plus the overflow
  /// bucket at the end.
  std::vector<std::int64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;  // bounds + overflow
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one histogram.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;  ///< per bucket, overflow last
  std::int64_t count = 0;
  double sum = 0.0;
};

/// Nearest-rank quantile derived from the buckets: the upper bound of the
/// bucket containing the rank — an upper bound on the exact sample quantile
/// with one-bucket resolution (the derived value is >= the exact quantile
/// and <= the next bucket bound). Returns 0 with no observations; ranks
/// landing in the overflow bucket return the last finite bound.
double histogram_quantile(const HistogramData& h, double q);

/// Point-in-time copy of one instrument.
struct InstrumentSnapshot {
  std::string name;
  Labels labels;
  InstrumentType type = InstrumentType::kCounter;
  std::string help;   ///< from the catalog; empty for uncataloged names
  std::string unit;   ///< from the catalog
  double value = 0.0;  ///< counter / gauge
  HistogramData histogram;
};

/// An isolated copy of every registered instrument, sorted by (name,
/// labels) so exposition output is deterministic.
struct MetricsSnapshot {
  std::vector<InstrumentSnapshot> instruments;
};

/// The registry. Instrument getters register on first use and return the
/// existing instrument on every subsequent call with the same (name,
/// labels); a type mismatch between two registrations of the same key
/// throws. Returned pointers stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem meters into. Constructed on
  /// first use, never destroyed before exit.
  static MetricsRegistry& global();

  Counter* counter(const std::string& name, const Labels& labels = {});
  Gauge* gauge(const std::string& name, const Labels& labels = {});

  /// `bounds` applies only to the first registration of the key; later
  /// calls return the existing histogram regardless.
  Histogram* histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> bounds = default_latency_bounds());

  MetricsSnapshot snapshot() const;

  /// Number of registered instruments (for tests).
  std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    InstrumentType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, const Labels& labels,
                        InstrumentType type);

  mutable std::mutex mu_;
  // Key: name + '\0' + canonical label serialization (registration order).
  std::map<std::string, Entry> entries_;
};

}  // namespace cstf::metrics
