#include "metrics/registry.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "metrics/catalog.hpp"

namespace cstf::metrics {

const char* instrument_type_name(InstrumentType type) {
  switch (type) {
    case InstrumentType::kCounter: return "counter";
    case InstrumentType::kGauge: return "gauge";
    case InstrumentType::kHistogram: return "histogram";
  }
  return "?";
}

std::vector<double> default_latency_bounds() {
  std::vector<double> bounds;
  double b = 1e-6;
  for (int i = 0; i < 24; ++i) {
    bounds.push_back(b);
    b *= 2.0;
  }
  return bounds;
}

std::vector<double> default_count_bounds() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 256.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  CSTF_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    CSTF_CHECK_MSG(bounds_[i] < bounds_[i + 1],
                   "histogram bounds must be strictly increasing");
  }
  buckets_ =
      std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double histogram_quantile(const HistogramData& h, double q) {
  if (h.count <= 0) return 0.0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  std::int64_t rank = static_cast<std::int64_t>(
      std::ceil(clamped * static_cast<double>(h.count)));
  if (rank < 1) rank = 1;
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    cumulative += h.counts[i];
    if (cumulative >= rank) return h.bounds[i];
  }
  return h.bounds.empty() ? 0.0 : h.bounds.back();
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: subsystems hold instrument pointers in objects with
  // static storage duration, so the registry must outlive every static.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

std::string entry_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\0';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, InstrumentType type) {
  // Caller holds mu_.
  auto [it, inserted] = entries_.try_emplace(entry_key(name, labels));
  Entry& e = it->second;
  if (inserted) {
    e.name = name;
    e.labels = labels;
    e.type = type;
  } else {
    CSTF_CHECK_MSG(e.type == type,
                   "metric '" << name << "' registered as "
                              << instrument_type_name(e.type)
                              << " and re-requested as "
                              << instrument_type_name(type));
  }
  return e;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_create(name, labels, InstrumentType::kCounter);
  if (e.counter == nullptr) e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_create(name, labels, InstrumentType::kGauge);
  if (e.gauge == nullptr) e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_create(name, labels, InstrumentType::kHistogram);
  if (e.histogram == nullptr) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return e.histogram.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.instruments.reserve(entries_.size());
    for (const auto& [key, e] : entries_) {
      InstrumentSnapshot s;
      s.name = e.name;
      s.labels = e.labels;
      s.type = e.type;
      if (const CatalogEntry* cat = find_catalog_entry(e.name)) {
        s.help = cat->help;
        s.unit = cat->unit;
      }
      switch (e.type) {
        case InstrumentType::kCounter:
          s.value = e.counter->value();
          break;
        case InstrumentType::kGauge:
          s.value = e.gauge->value();
          break;
        case InstrumentType::kHistogram:
          s.histogram.bounds = e.histogram->bounds();
          s.histogram.counts = e.histogram->bucket_counts();
          s.histogram.count = e.histogram->count();
          s.histogram.sum = e.histogram->sum();
          break;
      }
      snap.instruments.push_back(std::move(s));
    }
  }
  // The map iterates in key order (name, then label serialization), which
  // is already the deterministic exposition order.
  return snap;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace cstf::metrics
