#include "parallel/scratch_pool.hpp"

#include <algorithm>

namespace cstf {

ScratchPool::Lease::~Lease() {
  if (pool_ != nullptr) pool_->release(std::move(buffers_));
}

namespace {

std::mutex g_alloc_hook_mu;
std::function<void(std::size_t)> g_alloc_hook;

}  // namespace

void ScratchPool::set_alloc_hook(std::function<void(std::size_t)> hook) {
  std::lock_guard<std::mutex> lock(g_alloc_hook_mu);
  g_alloc_hook = std::move(hook);
}

ScratchPool::Lease ScratchPool::acquire(std::size_t count, std::size_t size) {
  {
    // Copy under the lock, invoke outside it: the hook may throw (injected
    // allocation fault), and must not deadlock re-entering the pool.
    std::function<void(std::size_t)> hook;
    {
      std::lock_guard<std::mutex> lock(g_alloc_hook_mu);
      hook = g_alloc_hook;
    }
    if (hook) hook(count * size * sizeof(real_t));
  }
  Lease lease;
  lease.pool_ = this;
  lease.buffers_.reserve(count);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Hand out the largest idle buffers first: resize is then usually a
    // no-op, and the pool converges to `count` buffers at the high-water
    // size instead of accumulating many small ones.
    std::sort(idle_.begin(), idle_.end(), [](const auto& a, const auto& b) {
      return a->size() < b->size();
    });
    while (lease.buffers_.size() < count && !idle_.empty()) {
      lease.buffers_.push_back(std::move(idle_.back()));
      idle_.pop_back();
    }
  }
  for (auto& buf : lease.buffers_) {
    if (buf->size() < size) buf->resize(size);
  }
  while (lease.buffers_.size() < count) {
    lease.buffers_.push_back(std::make_unique<std::vector<real_t>>(size));
  }
  return lease;
}

std::size_t ScratchPool::idle_buffers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

void ScratchPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.clear();
}

void ScratchPool::release(
    std::vector<std::unique_ptr<std::vector<real_t>>> buffers) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers) idle_.push_back(std::move(buf));
}

ScratchPool& ScratchPool::global() {
  static ScratchPool pool;
  return pool;
}

}  // namespace cstf
