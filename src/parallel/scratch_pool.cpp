#include "parallel/scratch_pool.hpp"

#include <algorithm>

namespace cstf {

ScratchPool::Lease::~Lease() {
  if (pool_ != nullptr) pool_->release(std::move(buffers_));
}

ScratchPool::Lease ScratchPool::acquire(std::size_t count, std::size_t size) {
  Lease lease;
  lease.pool_ = this;
  lease.buffers_.reserve(count);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Hand out the largest idle buffers first: resize is then usually a
    // no-op, and the pool converges to `count` buffers at the high-water
    // size instead of accumulating many small ones.
    std::sort(idle_.begin(), idle_.end(), [](const auto& a, const auto& b) {
      return a->size() < b->size();
    });
    while (lease.buffers_.size() < count && !idle_.empty()) {
      lease.buffers_.push_back(std::move(idle_.back()));
      idle_.pop_back();
    }
  }
  for (auto& buf : lease.buffers_) {
    if (buf->size() < size) buf->resize(size);
  }
  while (lease.buffers_.size() < count) {
    lease.buffers_.push_back(std::make_unique<std::vector<real_t>>(size));
  }
  return lease;
}

std::size_t ScratchPool::idle_buffers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

void ScratchPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.clear();
}

void ScratchPool::release(
    std::vector<std::unique_ptr<std::vector<real_t>>> buffers) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers) idle_.push_back(std::move(buf));
}

ScratchPool& ScratchPool::global() {
  static ScratchPool pool;
  return pool;
}

}  // namespace cstf
