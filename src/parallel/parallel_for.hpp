// Blocked parallel loops over index ranges, built on ThreadPool.
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/types.hpp"
#include "parallel/thread_pool.hpp"

namespace cstf {

/// Serial threshold: ranges smaller than this run inline — forking the pool
/// costs more than the loop body for tiny ranges.
inline constexpr index_t kParallelGrainDefault = 1024;

/// Executes `body(i)` for every i in [begin, end), statically blocked across
/// the global pool. `body` must be safe to run concurrently for distinct i.
template <typename Body>
void parallel_for(index_t begin, index_t end, const Body& body,
                  index_t grain = kParallelGrainDefault) {
  const index_t n = end - begin;
  if (n <= 0) return;
  ThreadPool& pool = global_pool();
  const auto workers = static_cast<index_t>(pool.num_threads());
  if (n <= grain || workers == 1 || ThreadPool::in_parallel_region()) {
    for (index_t i = begin; i < end; ++i) body(i);
    return;
  }
  const index_t chunk = (n + workers - 1) / workers;
  pool.run([&](std::size_t w) {
    const index_t lo = begin + static_cast<index_t>(w) * chunk;
    const index_t hi = std::min<index_t>(lo + chunk, end);
    for (index_t i = lo; i < hi; ++i) body(i);
  });
}

/// Blocked variant: `body(lo, hi)` receives each worker's contiguous
/// subrange. Prefer this when the body can vectorize over the subrange or
/// needs per-block scratch.
template <typename Body>
void parallel_for_blocked(index_t begin, index_t end, const Body& body,
                          index_t grain = kParallelGrainDefault) {
  const index_t n = end - begin;
  if (n <= 0) return;
  ThreadPool& pool = global_pool();
  const auto workers = static_cast<index_t>(pool.num_threads());
  if (n <= grain || workers == 1 || ThreadPool::in_parallel_region()) {
    body(begin, end);
    return;
  }
  const index_t chunk = (n + workers - 1) / workers;
  pool.run([&](std::size_t w) {
    const index_t lo = begin + static_cast<index_t>(w) * chunk;
    const index_t hi = std::min<index_t>(lo + chunk, end);
    if (lo < hi) body(lo, hi);
  });
}

}  // namespace cstf
