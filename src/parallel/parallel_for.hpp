// Blocked parallel loops over index ranges, built on ThreadPool.
//
// Scheduling: the range is cut into ~4x more chunks than workers and chunks
// are claimed dynamically through an atomic ticket counter (OpenMP
// schedule(dynamic) with a coarse chunk size). The previous static
// one-chunk-per-worker split load-imbalanced badly on skewed sparse tensors,
// where the nonzeros of a few hot rows cluster in one contiguous stretch of
// the iteration space: the worker owning that stretch finished last while
// the rest idled. Oversubscription bounds that tail to ~1/4 of one worker's
// share; the ticket counter is touched once per chunk (not per element), so
// contention on it is negligible.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>

#include "common/types.hpp"
#include "parallel/thread_pool.hpp"

namespace cstf {

/// Serial threshold: ranges smaller than this run inline — forking the pool
/// costs more than the loop body for tiny ranges.
inline constexpr index_t kParallelGrainDefault = 1024;

/// Default chunk oversubscription factor: chunks created per worker. 4x
/// keeps the longest post-imbalance tail at ~25% of one worker's share while
/// keeping per-chunk overhead (one ticket fetch_add) amortized over many
/// elements.
inline constexpr index_t kParallelChunksPerWorker = 4;

namespace detail {

inline std::atomic<index_t>& chunks_per_worker_knob() {
  static std::atomic<index_t> knob{kParallelChunksPerWorker};
  return knob;
}

}  // namespace detail

/// Runtime chunk oversubscription factor; defaults to
/// kParallelChunksPerWorker. The autotuner sweeps it and applies the tuned
/// value process-wide; every run that never touches it behaves exactly as
/// before. NOTE: it also sizes the privatized scatter's tile set, so
/// changing it between runs changes privatized accumulation grouping —
/// which is why the tuned value enters the checkpoint options digest.
inline index_t parallel_chunks_per_worker() {
  return detail::chunks_per_worker_knob().load(std::memory_order_relaxed);
}

/// Clamped to [1, 64]; values outside are pinned, never rejected.
inline void set_parallel_chunks_per_worker(index_t chunks) {
  detail::chunks_per_worker_knob().store(
      std::max<index_t>(1, std::min<index_t>(chunks, 64)),
      std::memory_order_relaxed);
}

namespace detail {

/// Number of dynamic chunks for a range of `n` elements: ~4x the worker
/// count (see the runtime knob above), but never chunks smaller than `grain`
/// elements (tiny chunks would pay more in ticket traffic than they win in
/// balance).
inline index_t parallel_chunk_count(index_t n, index_t workers, index_t grain) {
  const index_t by_grain = grain > 0 ? (n + grain - 1) / grain : n;
  return std::max<index_t>(
      1, std::min(workers * parallel_chunks_per_worker(), by_grain));
}

/// Runs `block(lo, hi)` for every chunk of [begin, end), chunks claimed
/// dynamically via an atomic ticket counter shared by all workers.
template <typename Block>
void run_dynamic_chunks(ThreadPool& pool, index_t begin, index_t end,
                        index_t grain, const Block& block) {
  const index_t n = end - begin;
  const auto workers = static_cast<index_t>(pool.num_threads());
  const index_t chunks = parallel_chunk_count(n, workers, grain);
  const index_t chunk = (n + chunks - 1) / chunks;
  std::atomic<index_t> ticket{0};
  pool.run([&](std::size_t) {
    for (index_t c = ticket.fetch_add(1, std::memory_order_relaxed); c < chunks;
         c = ticket.fetch_add(1, std::memory_order_relaxed)) {
      const index_t lo = begin + c * chunk;
      const index_t hi = std::min<index_t>(lo + chunk, end);
      if (lo < hi) block(lo, hi);
    }
  });
}

}  // namespace detail

/// Executes `body(i)` for every i in [begin, end) on `pool`, dynamically
/// chunked. `body` must be safe to run concurrently for distinct i.
template <typename Body>
void parallel_for(ThreadPool& pool, index_t begin, index_t end,
                  const Body& body, index_t grain = kParallelGrainDefault) {
  const index_t n = end - begin;
  if (n <= 0) return;
  if (n <= grain || pool.num_threads() == 1 ||
      ThreadPool::in_parallel_region()) {
    for (index_t i = begin; i < end; ++i) body(i);
    return;
  }
  detail::run_dynamic_chunks(pool, begin, end, grain,
                             [&](index_t lo, index_t hi) {
                               for (index_t i = lo; i < hi; ++i) body(i);
                             });
}

/// Global-pool convenience overload.
template <typename Body>
void parallel_for(index_t begin, index_t end, const Body& body,
                  index_t grain = kParallelGrainDefault) {
  parallel_for(global_pool(), begin, end, body, grain);
}

/// Blocked variant: `body(lo, hi)` receives each chunk's contiguous
/// subrange (a worker typically runs several chunks). Prefer this when the
/// body can vectorize over the subrange or needs per-block scratch.
template <typename Body>
void parallel_for_blocked(ThreadPool& pool, index_t begin, index_t end,
                          const Body& body,
                          index_t grain = kParallelGrainDefault) {
  const index_t n = end - begin;
  if (n <= 0) return;
  if (n <= grain || pool.num_threads() == 1 ||
      ThreadPool::in_parallel_region()) {
    body(begin, end);
    return;
  }
  detail::run_dynamic_chunks(pool, begin, end, grain, body);
}

/// Global-pool convenience overload.
template <typename Body>
void parallel_for_blocked(index_t begin, index_t end, const Body& body,
                          index_t grain = kParallelGrainDefault) {
  parallel_for_blocked(global_pool(), begin, end, body, grain);
}

}  // namespace cstf
