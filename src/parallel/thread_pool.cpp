#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "common/error.hpp"

namespace cstf {

namespace {
thread_local bool tls_in_parallel = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(std::max<std::size_t>(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (std::size_t i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_parallel_region() { return tls_in_parallel; }

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  if (num_threads_ == 1 || tls_in_parallel) {
    // Inline / nested execution: run every "worker" sequentially so callers
    // that partition work by worker index still cover the whole range.
    const bool was_parallel = tls_in_parallel;
    tls_in_parallel = true;
    try {
      for (std::size_t i = 0; i < num_threads_; ++i) fn(i);
    } catch (...) {
      tls_in_parallel = was_parallel;
      throw;
    }
    tls_in_parallel = was_parallel;
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    first_error_ = nullptr;
    remaining_ = num_threads_ - 1;
    ++epoch_;
  }
  cv_start_.notify_all();

  // The caller participates as worker 0. Its exception goes through the
  // same first-recorded-wins slot as the workers' so no error is ever
  // silently dropped and exactly one — the first recorded — propagates.
  tls_in_parallel = true;
  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  tls_in_parallel = false;

  std::unique_lock<std::mutex> lock(mu_);
  if (caller_error && !first_error_) first_error_ = caller_error;
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  // Always take-and-clear so a recorded error can never dangle into (or be
  // re-reported by) a later run.
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock,
                     [&] { return shutting_down_ || epoch_ != seen_epoch; });
      if (shutting_down_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    tls_in_parallel = true;
    std::exception_ptr error;
    try {
      (*job)(worker_index);
    } catch (...) {
      error = std::current_exception();
    }
    tls_in_parallel = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    const auto hw = static_cast<std::int64_t>(std::thread::hardware_concurrency());
    const std::int64_t n = env_int("CSTF_THREADS", hw > 0 ? hw : 1);
    return static_cast<std::size_t>(std::max<std::int64_t>(1, n));
  }());
  return pool;
}

std::size_t global_thread_count() { return global_pool().num_threads(); }

}  // namespace cstf
