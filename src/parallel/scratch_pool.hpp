// Reusable scratch-tile pool for privatized accumulation.
//
// The privatized MTTKRP scatter path needs one private output tile
// (dims[mode] x R reals) per accumulation lane, every call, for every mode.
// Allocating those from the heap each launch costs a multi-megabyte
// round-trip per call; this pool keeps the buffers alive across calls and
// hands them out under a mutex (acquisition is per kernel call, not per
// element, so the lock is cold).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace cstf {

/// Process-wide pool of reusable real_t scratch buffers.
class ScratchPool {
 public:
  /// RAII lease over `count` buffers of `size` reals each. Buffers are NOT
  /// zeroed on acquisition — callers zero the prefix they use (cheaper than
  /// zeroing a whole recycled buffer that may be larger than needed).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    std::size_t count() const { return buffers_.size(); }
    real_t* tile(std::size_t i) { return buffers_[i]->data(); }

   private:
    friend class ScratchPool;
    ScratchPool* pool_ = nullptr;
    std::vector<std::unique_ptr<std::vector<real_t>>> buffers_;
  };

  /// Acquires `count` buffers of at least `size` reals each, recycling
  /// returned buffers when available (largest-first, so buffers grow toward
  /// the high-water mark instead of fragmenting).
  Lease acquire(std::size_t count, std::size_t size);

  /// Buffers currently idle in the pool (for tests / introspection).
  std::size_t idle_buffers() const;

  /// Drops all idle buffers, releasing their memory.
  void trim();

  /// Process-wide instance shared by the scatter kernels.
  static ScratchPool& global();

  /// Process-wide observer invoked before every acquire() hands out buffers,
  /// with the total bytes requested. Fault injection (simgpu::FaultPlan)
  /// uses it to model device-allocation failures: the hook may throw, in
  /// which case acquire() propagates before touching the pool. Pass an empty
  /// function to detach. The hook must be detached before it dangles.
  static void set_alloc_hook(std::function<void(std::size_t bytes)> hook);

 private:
  void release(std::vector<std::unique_ptr<std::vector<real_t>>> buffers);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<std::vector<real_t>>> idle_;
};

}  // namespace cstf
