// Atomic floating-point accumulation, the CPU analog of CUDA's atomicAdd.
//
// COO-format MTTKRP scatters contributions from concurrently processed
// nonzeros into shared output rows; this helper provides the lock-free
// accumulate those kernels need.
#pragma once

#include <atomic>

#include "common/types.hpp"

namespace cstf {

/// Atomically performs `*target += value` via compare-exchange. Relaxed
/// ordering: accumulation order is already nondeterministic, and all kernels
/// join the pool (a full barrier) before reading results.
inline void atomic_add(real_t* target, real_t value) {
  auto* atomic_target = reinterpret_cast<std::atomic<real_t>*>(target);
  real_t expected = atomic_target->load(std::memory_order_relaxed);
  while (!atomic_target->compare_exchange_weak(expected, expected + value,
                                               std::memory_order_relaxed)) {
  }
}

static_assert(sizeof(std::atomic<real_t>) == sizeof(real_t),
              "atomic_add requires lock-free std::atomic<real_t> layout");

}  // namespace cstf
