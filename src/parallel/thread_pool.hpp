// Static thread pool used by every parallel loop in the library.
//
// Design notes (see /opt guides: explicit parallelism, OpenMP-style static
// scheduling): the pool partitions an index range into contiguous blocks, one
// per worker, like `omp parallel for schedule(static)`. There is no task
// queue or stealing — the kernels in this library are data-parallel with
// predictable per-element cost once blocked, and static partitioning avoids
// queue contention on many-core hosts.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace cstf {

/// Fixed-size worker pool executing blocked index ranges.
///
/// A single process-wide pool (see `global_pool()`) is shared by all modules
/// so the library never oversubscribes the machine. The pool is safe to use
/// from one caller at a time (parallel regions do not nest; nested calls run
/// sequentially on the calling thread, matching OpenMP's default).
class ThreadPool {
 public:
  /// Creates `num_threads` workers. `num_threads == 1` creates no worker
  /// threads at all; every run() executes inline on the caller.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Runs `fn(worker_index)` on every worker (including the caller as worker
  /// 0) and returns when all have finished. `fn` must be re-entrant across
  /// workers. Exceptions thrown inside `fn` are captured and the first one is
  /// rethrown on the caller.
  void run(const std::function<void(std::size_t)>& fn);

  /// True while the calling thread is inside a run() region; used to detect
  /// (and serialize) nested parallelism.
  static bool in_parallel_region();

 private:
  void worker_loop(std::size_t worker_index);

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t epoch_ = 0;        // increments per run(); wakes workers
  std::size_t remaining_ = 0;    // workers still executing the current job
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

/// Process-wide pool. Sized from CSTF_THREADS if set, otherwise
/// std::thread::hardware_concurrency(). Constructed on first use.
ThreadPool& global_pool();

/// Number of workers in the global pool.
std::size_t global_thread_count();

}  // namespace cstf
