// Parallel reductions over index ranges.
#pragma once

#include <vector>

#include "parallel/parallel_for.hpp"

namespace cstf {

/// Reduces `mapper(i)` over [begin, end) with `combine`, starting from
/// `identity`. Each worker accumulates privately; partials are combined on
/// the caller in worker order, so the result is deterministic for a fixed
/// thread count.
template <typename T, typename Mapper, typename Combine>
T parallel_reduce(index_t begin, index_t end, T identity, const Mapper& mapper,
                  const Combine& combine,
                  index_t grain = kParallelGrainDefault) {
  const index_t n = end - begin;
  if (n <= 0) return identity;
  ThreadPool& pool = global_pool();
  const auto workers = static_cast<index_t>(pool.num_threads());
  if (n <= grain || workers == 1 || ThreadPool::in_parallel_region()) {
    T acc = identity;
    for (index_t i = begin; i < end; ++i) acc = combine(acc, mapper(i));
    return acc;
  }
  std::vector<T> partials(static_cast<std::size_t>(workers), identity);
  const index_t chunk = (n + workers - 1) / workers;
  pool.run([&](std::size_t w) {
    const index_t lo = begin + static_cast<index_t>(w) * chunk;
    const index_t hi = std::min<index_t>(lo + chunk, end);
    T acc = identity;
    for (index_t i = lo; i < hi; ++i) acc = combine(acc, mapper(i));
    partials[w] = acc;
  });
  T acc = identity;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

/// Parallel sum of `mapper(i)` over [begin, end).
template <typename Mapper>
auto parallel_sum(index_t begin, index_t end, const Mapper& mapper,
                  index_t grain = kParallelGrainDefault) {
  using T = decltype(mapper(begin));
  return parallel_reduce<T>(
      begin, end, T{}, mapper, [](T a, T b) { return a + b; }, grain);
}

/// Pairwise tree reduction of `num_tiles` equal-length buffers into
/// `tiles[0]`: level by level, tiles[i] += tiles[i + stride]. The combine
/// tree depends only on `num_tiles`, and each element is summed
/// independently, so for a fixed tile count the result is bit-identical
/// regardless of worker count or scheduling — the property the
/// deterministic scatter paths rely on. Parallelism is over elements.
inline void deterministic_tree_reduce(real_t* const* tiles,
                                      std::size_t num_tiles, index_t len) {
  for (std::size_t stride = 1; stride < num_tiles; stride *= 2) {
    for (std::size_t i = 0; i + stride < num_tiles; i += 2 * stride) {
      real_t* dst = tiles[i];
      const real_t* src = tiles[i + stride];
      parallel_for(0, len, [&](index_t j) {
        dst[static_cast<std::size_t>(j)] += src[static_cast<std::size_t>(j)];
      });
    }
  }
}

}  // namespace cstf
