#include "mttkrp/blco_mttkrp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "parallel/atomic.hpp"
#include "simgpu/launch.hpp"

namespace cstf {

simgpu::KernelStats blco_mttkrp_stats(const BlcoTensor& blco,
                                      const std::vector<Matrix>& factors,
                                      int mode) {
  const int modes = blco.num_modes();
  const auto rank = static_cast<double>(factors[0].cols());
  const auto nnz = static_cast<double>(blco.nnz());
  simgpu::KernelStats stats;
  // Per nonzero: (modes-1) row scalings + value scale + accumulate add.
  stats.flops = nnz * rank * static_cast<double>(modes + 1);
  // Compressed tensor is streamed once.
  stats.bytes_streamed = blco.storage_bytes();
  // Factor-row gathers and output scatter are random accesses whose reuse is
  // bounded by the live factor working set.
  double factor_bytes = 0.0;
  for (int m = 0; m < modes; ++m) {
    if (m == mode) continue;
    factor_bytes +=
        static_cast<double>(factors[static_cast<std::size_t>(m)].size()) *
        simgpu::kWord;
  }
  const double out_bytes =
      static_cast<double>(blco.dims()[static_cast<std::size_t>(mode)]) * rank *
      simgpu::kWord;
  stats.bytes_random = nnz * rank * simgpu::kWord *
                           static_cast<double>(modes - 1)  // gathers
                       + nnz * rank * simgpu::kWord * 2.0;  // scatter RMW
  stats.working_set_bytes = factor_bytes + out_bytes;
  stats.parallel_items = nnz;
  // Warp-level gathers and atomics keep the SMs below FMA peak.
  stats.compute_efficiency = 0.5;
  return stats;
}

namespace {

// Scales the extensive parts of a per-call record to a fraction of the
// nonzeros (used to pro-rate the full-tensor stats over a streamed batch).
// `atomic_slots` stays: every batch scatters into the same output rows.
simgpu::KernelStats prorate(const simgpu::KernelStats& stats, double share) {
  simgpu::KernelStats scaled = stats;
  scaled.flops *= share;
  scaled.bytes_streamed *= share;
  scaled.bytes_reused *= share;
  scaled.bytes_random *= share;
  scaled.atomic_ops *= share;
  scaled.parallel_items *= share;
  return scaled;
}

// Per-worker Khatri-Rao row scratch, reused across blocks and launches (the
// launch.hpp shared-memory pattern): a fresh vector per block costs a heap
// round-trip per block per call.
real_t* krp_row_scratch(index_t rank) {
  thread_local std::vector<real_t> row;
  if (row.size() < static_cast<std::size_t>(rank)) {
    row.resize(static_cast<std::size_t>(rank));
  }
  return row.data();
}

// Computes nonzero (blk, i)'s Khatri-Rao row into `row` and returns its
// output-mode coordinate. Shared by all three device kernels.
index_t blco_krp_row(const BlcoTensor& blco, const BlcoBlock& blk,
                     const BitReader& deltas, index_t i,
                     const std::vector<Matrix>& factors, int mode,
                     index_t rank, real_t* row) {
  const int modes = blco.num_modes();
  index_t coords[kMaxModes];
  const lco_t lco = blk.base + deltas.get(static_cast<std::size_t>(i));
  blco.encoding().decode_all(lco, coords);
  const real_t v =
      blco.values()[static_cast<std::size_t>(blk.value_offset + i)];
  for (index_t r = 0; r < rank; ++r) row[r] = v;
  for (int m = 0; m < modes; ++m) {
    if (m == mode) continue;
    const Matrix& f = factors[static_cast<std::size_t>(m)];
    for (index_t r = 0; r < rank; ++r) row[r] *= f(coords[m], r);
  }
  return coords[mode];
}

// Atomic-scatter kernel over a contiguous block range [block_lo, block_lo +
// grid): shared by the resident and streamed entry points. `stats` must
// describe exactly this range's work.
void launch_blco_range(simgpu::Device& dev, const char* name,
                       const BlcoTensor& blco,
                       const std::vector<Matrix>& factors, int mode,
                       Matrix& out, index_t block_lo, index_t grid,
                       simgpu::KernelStats stats) {
  const index_t rank = factors[0].cols();
  constexpr index_t kThreads = 128;
  simgpu::LaunchConfig cfg{.grid_dim = grid, .block_dim = kThreads};
  simgpu::launch(dev, name, cfg, stats, [&](const simgpu::KernelCtx& ctx) {
    const BlcoBlock& blk = blco.block(block_lo + ctx.block_idx);
    const BitReader deltas(blk.packed_deltas.data(), blk.delta_bits);
    real_t* row = krp_row_scratch(rank);
    for (index_t i = ctx.thread_idx; i < blk.count; i += ctx.block_dim) {
      const index_t out_row =
          blco_krp_row(blco, blk, deltas, i, factors, mode, rank, row);
      for (index_t r = 0; r < rank; ++r) {
        atomic_add(&out(out_row, r), row[r]);
      }
    }
  });
}

// Privatized kernel: grid of `tiles` launch blocks, tile t accumulating its
// fixed contiguous BLCO-block range into a private output tile (tile 0 is
// `out` itself, already zeroed), followed by a reduce launch combining the
// tiles with the fixed pairwise tree — atomic-free and bit-deterministic
// regardless of which worker runs which tile.
void launch_blco_priv(simgpu::Device& dev, const BlcoTensor& blco,
                      const std::vector<Matrix>& factors, int mode,
                      Matrix& out, simgpu::KernelStats stats) {
  const index_t rank = factors[0].cols();
  const index_t mode_len = out.rows();
  const index_t num_blocks = blco.num_blocks();
  const index_t tiles =
      std::min(privatized_tile_count(blco.nnz()), num_blocks);
  const auto len = static_cast<std::size_t>(mode_len * rank);
  const double tile_bytes = static_cast<double>(len) * simgpu::kWord;

  ScratchPool::Lease lease = ScratchPool::global().acquire(
      static_cast<std::size_t>(tiles - 1), len);
  std::vector<real_t*> tile(static_cast<std::size_t>(tiles));
  tile[0] = out.data();
  for (index_t t = 1; t < tiles; ++t) {
    tile[static_cast<std::size_t>(t)] =
        lease.tile(static_cast<std::size_t>(t - 1));
  }
  const index_t per_tile = (num_blocks + tiles - 1) / tiles;

  // Accumulate launch: base stats plus the tile zero-fill traffic.
  stats.bytes_streamed += static_cast<double>(tiles) * tile_bytes;
  simgpu::LaunchConfig cfg{.grid_dim = tiles, .block_dim = 1};
  simgpu::launch(dev, "mttkrp_blco_priv", cfg, stats,
                 [&](const simgpu::KernelCtx& ctx) {
    const index_t t = ctx.block_idx;
    real_t* dst = tile[static_cast<std::size_t>(t)];
    if (t > 0) std::fill_n(dst, len, real_t{0});
    real_t* row = krp_row_scratch(rank);
    const index_t b_lo = t * per_tile;
    const index_t b_hi = std::min<index_t>(b_lo + per_tile, num_blocks);
    for (index_t b = b_lo; b < b_hi; ++b) {
      const BlcoBlock& blk = blco.block(b);
      const BitReader deltas(blk.packed_deltas.data(), blk.delta_bits);
      for (index_t i = 0; i < blk.count; ++i) {
        const index_t out_row =
            blco_krp_row(blco, blk, deltas, i, factors, mode, rank, row);
        for (index_t r = 0; r < rank; ++r) {
          dst[static_cast<std::size_t>(r * mode_len + out_row)] += row[r];
        }
      }
    }
  });

  // Reduce launch: single-block (the element-level parallelism happens
  // inside deterministic_tree_reduce), metered as the tree's traffic.
  simgpu::KernelStats red;
  red.bytes_streamed = 3.0 * static_cast<double>(tiles - 1) * tile_bytes;
  red.flops = static_cast<double>(tiles - 1) * static_cast<double>(len);
  red.parallel_items = static_cast<double>(len);
  simgpu::launch(dev, "mttkrp_blco_reduce",
                 simgpu::LaunchConfig{.grid_dim = 1, .block_dim = 1}, red,
                 [&](const simgpu::KernelCtx&) {
                   deterministic_tree_reduce(tile.data(),
                                             static_cast<std::size_t>(tiles),
                                             static_cast<index_t>(len));
                 });
}

// Sorted kernel: threads stride over the plan's segments; each segment owns
// one output row, so the final writes are plain stores and the per-row
// accumulation order is the plan's (fixed) order.
void launch_blco_sorted(simgpu::Device& dev, const BlcoTensor& blco,
                        const std::vector<Matrix>& factors, int mode,
                        Matrix& out, const ScatterPlan& plan,
                        simgpu::KernelStats stats) {
  const index_t rank = factors[0].cols();
  const index_t num_blocks = blco.num_blocks();
  const index_t segments = plan.num_segments();

  // Global-nonzero-id -> block lookup: blocks are ordered by value_offset.
  std::vector<index_t> offsets(static_cast<std::size_t>(num_blocks));
  for (index_t b = 0; b < num_blocks; ++b) {
    offsets[static_cast<std::size_t>(b)] = blco.block(b).value_offset;
  }

  constexpr index_t kThreads = 128;
  simgpu::LaunchConfig cfg{
      .grid_dim = simgpu::blocks_for(segments, kThreads),
      .block_dim = kThreads};
  simgpu::launch(dev, "mttkrp_blco_sorted", cfg, stats,
                 [&](const simgpu::KernelCtx& ctx) {
    thread_local std::vector<real_t> scratch;
    if (scratch.size() < 2 * static_cast<std::size_t>(rank)) {
      scratch.resize(2 * static_cast<std::size_t>(rank));
    }
    real_t* row = scratch.data();
    real_t* acc = scratch.data() + rank;
    for (index_t s = ctx.global_thread_id(); s < segments;
         s += ctx.total_threads()) {
      std::fill_n(acc, static_cast<std::size_t>(rank), real_t{0});
      const index_t lo = plan.seg_ptr[static_cast<std::size_t>(s)];
      const index_t hi = plan.seg_ptr[static_cast<std::size_t>(s) + 1];
      for (index_t k = lo; k < hi; ++k) {
        const index_t i = plan.order[static_cast<std::size_t>(k)];
        const auto it = std::upper_bound(offsets.begin(), offsets.end(), i);
        const auto b = static_cast<index_t>(it - offsets.begin()) - 1;
        const BlcoBlock& blk = blco.block(b);
        const BitReader deltas(blk.packed_deltas.data(), blk.delta_bits);
        blco_krp_row(blco, blk, deltas, i - blk.value_offset, factors, mode,
                     rank, row);
        for (index_t r = 0; r < rank; ++r) acc[r] += row[r];
      }
      const index_t out_row = plan.seg_row[static_cast<std::size_t>(s)];
      for (index_t r = 0; r < rank; ++r) out(out_row, r) = acc[r];
    }
  });
}

// cudaMemset-equivalent launch clearing the output.
void zero_output(simgpu::Device& dev, Matrix& out) {
  simgpu::KernelStats zero_stats;
  zero_stats.bytes_streamed = static_cast<double>(out.size()) * simgpu::kWord;
  zero_stats.parallel_items = static_cast<double>(out.size());
  simgpu::launch(dev, "mttkrp_zero_out",
                 simgpu::LaunchConfig{.grid_dim = 1, .block_dim = 1},
                 zero_stats,
                 [&](const simgpu::KernelCtx&) { out.set_all(0.0); });
}

void check_mttkrp_args(const BlcoTensor& blco,
                       const std::vector<Matrix>& factors, int mode,
                       const Matrix& out) {
  const int modes = blco.num_modes();
  CSTF_CHECK(mode >= 0 && mode < modes);
  CSTF_CHECK(static_cast<int>(factors.size()) == modes);
  CSTF_CHECK(out.rows() == blco.dims()[static_cast<std::size_t>(mode)] &&
             out.cols() == factors[0].cols());
}

}  // namespace

void mttkrp_blco(simgpu::Device& dev, const BlcoTensor& blco,
                 const std::vector<Matrix>& factors, int mode, Matrix& out) {
  check_mttkrp_args(blco, factors, mode, out);
  zero_output(dev, out);
  simgpu::KernelStats stats = blco_mttkrp_stats(blco, factors, mode);
  apply_scatter_stats(stats, ScatterStrategy::kAtomic, out.rows(), out.cols(),
                      static_cast<double>(blco.nnz()));
  launch_blco_range(dev, "mttkrp_blco", blco, factors, mode, out, 0,
                    blco.num_blocks(), stats);
}

ScatterStrategy mttkrp_blco(simgpu::Device& dev, const BlcoTensor& blco,
                            const std::vector<Matrix>& factors, int mode,
                            Matrix& out, const ScatterOptions& opts,
                            const ScatterPlan* plan) {
  check_mttkrp_args(blco, factors, mode, out);
  const index_t rank = factors[0].cols();
  const index_t mode_len = out.rows();
  const ScatterStrategy strategy =
      resolve_scatter_strategy_for_mode(opts, mode, mode_len, rank, blco.nnz());

  ScatterPlan local_plan;
  if (strategy == ScatterStrategy::kSorted && plan == nullptr) {
    local_plan = blco_scatter_plan(blco, mode);
    plan = &local_plan;
  }

  zero_output(dev, out);
  simgpu::KernelStats stats = blco_mttkrp_stats(blco, factors, mode);
  switch (strategy) {
    case ScatterStrategy::kAtomic:
      apply_scatter_stats(stats, strategy, mode_len, rank,
                          static_cast<double>(blco.nnz()));
      launch_blco_range(dev, "mttkrp_blco", blco, factors, mode, out, 0,
                        blco.num_blocks(), stats);
      break;
    case ScatterStrategy::kPrivatized:
      // launch_blco_priv splits the privatized extras over its two launches.
      launch_blco_priv(dev, blco, factors, mode, out, stats);
      break;
    case ScatterStrategy::kSorted:
      apply_scatter_stats(stats, strategy, mode_len, rank,
                          static_cast<double>(blco.nnz()));
      launch_blco_sorted(dev, blco, factors, mode, out, *plan, stats);
      break;
    case ScatterStrategy::kAuto:
      break;  // resolve_scatter_strategy never returns kAuto
  }
  return strategy;
}

ScatterPlan blco_scatter_plan(const BlcoTensor& blco, int mode) {
  CSTF_CHECK(mode >= 0 && mode < blco.num_modes());
  const index_t nnz = blco.nnz();
  std::vector<lco_t> keys(static_cast<std::size_t>(nnz));
  std::vector<index_t> order(static_cast<std::size_t>(nnz));
  const auto& enc = blco.encoding();
  parallel_for(0, blco.num_blocks(), [&](index_t b) {
    const BlcoBlock& blk = blco.block(b);
    const BitReader deltas(blk.packed_deltas.data(), blk.delta_bits);
    index_t coords[kMaxModes];
    for (index_t i = 0; i < blk.count; ++i) {
      const lco_t lco = blk.base + deltas.get(static_cast<std::size_t>(i));
      enc.decode_all(lco, coords);
      const auto at = static_cast<std::size_t>(blk.value_offset + i);
      keys[at] = static_cast<lco_t>(coords[mode]);
      order[at] = blk.value_offset + i;
    }
  });
  return detail::finish_scatter_plan(std::move(keys), std::move(order));
}

index_t mttkrp_blco_streamed(simgpu::Device& dev, const BlcoTensor& blco,
                             const std::vector<Matrix>& factors, int mode,
                             Matrix& out, double device_budget_bytes,
                             simgpu::Stream copy_stream) {
  CSTF_CHECK(device_budget_bytes > 0.0);
  check_mttkrp_args(blco, factors, mode, out);
  const double tensor_bytes = blco.storage_bytes();
  if (tensor_bytes <= device_budget_bytes) {
    mttkrp_blco(dev, blco, factors, mode, out);
    return 1;
  }

  zero_output(dev, out);
  auto batches =
      static_cast<index_t>(std::ceil(tensor_bytes / device_budget_bytes));
  batches = std::min(batches, blco.num_blocks());
  const index_t per_batch = (blco.num_blocks() + batches - 1) / batches;

  const bool staged_async = !copy_stream.is_default();
  simgpu::KernelStats full_stats = blco_mttkrp_stats(blco, factors, mode);
  apply_scatter_stats(full_stats, ScatterStrategy::kAtomic, out.rows(),
                      out.cols(), static_cast<double>(blco.nnz()));
  std::vector<simgpu::Event> compute_done;  // per batch, for buffer reuse
  index_t used = 0;
  for (index_t lo = 0; lo < blco.num_blocks(); lo += per_batch) {
    const index_t grid = std::min<index_t>(per_batch, blco.num_blocks() - lo);
    // Pro-rate the full-tensor traffic over this batch's nonzero share; the
    // batch's compressed bytes are what crosses the host link.
    double batch_nnz = 0.0, batch_bytes = 0.0;
    for (index_t b = lo; b < lo + grid; ++b) {
      const BlcoBlock& blk = blco.block(b);
      batch_nnz += static_cast<double>(blk.count);
      batch_bytes += static_cast<double>(blk.packed_deltas.size()) *
                         sizeof(std::uint64_t) +
                     static_cast<double>(blk.count) * sizeof(real_t);
    }
    simgpu::KernelStats stats =
        prorate(full_stats, batch_nnz / static_cast<double>(blco.nnz()));
    if (staged_async) {
      // Explicit pipeline: the staging transfer is its own span on the copy
      // stream. Two staging buffers — batch i's transfer reuses the buffer
      // compute of batch i-2 read from, so it waits on that compute.
      if (used >= 2) {
        dev.wait_event(copy_stream,
                       compute_done[static_cast<std::size_t>(used - 2)]);
      }
      simgpu::KernelStats stage;
      stage.host_link_bytes = batch_bytes;
      stage.launches = 1;
      dev.record("mttkrp_stage_batch", stage, 0.0, copy_stream);
      dev.wait_event(simgpu::Stream{}, dev.record_event(copy_stream));
    } else {
      // Legacy single-span modeling: staging rides on the compute record and
      // the cost model overlaps the two inside the span (double buffering).
      stats.host_link_bytes = batch_bytes;
    }
    launch_blco_range(dev, "mttkrp_blco_streamed", blco, factors, mode, out,
                      lo, grid, stats);
    if (staged_async) compute_done.push_back(dev.record_event());
    ++used;
  }
  return used;
}

}  // namespace cstf
