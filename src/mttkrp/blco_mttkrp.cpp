#include "mttkrp/blco_mttkrp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "parallel/atomic.hpp"
#include "simgpu/launch.hpp"

namespace cstf {

simgpu::KernelStats blco_mttkrp_stats(const BlcoTensor& blco,
                                      const std::vector<Matrix>& factors,
                                      int mode) {
  const int modes = blco.num_modes();
  const auto rank = static_cast<double>(factors[0].cols());
  const auto nnz = static_cast<double>(blco.nnz());
  simgpu::KernelStats stats;
  // Per nonzero: (modes-1) row scalings + value scale + accumulate add.
  stats.flops = nnz * rank * static_cast<double>(modes + 1);
  // Compressed tensor is streamed once.
  stats.bytes_streamed = blco.storage_bytes();
  // Factor-row gathers and output scatter are random accesses whose reuse is
  // bounded by the live factor working set.
  double factor_bytes = 0.0;
  for (int m = 0; m < modes; ++m) {
    if (m == mode) continue;
    factor_bytes +=
        static_cast<double>(factors[static_cast<std::size_t>(m)].size()) *
        simgpu::kWord;
  }
  const double out_bytes =
      static_cast<double>(blco.dims()[static_cast<std::size_t>(mode)]) * rank *
      simgpu::kWord;
  stats.bytes_random = nnz * rank * simgpu::kWord *
                           static_cast<double>(modes - 1)  // gathers
                       + nnz * rank * simgpu::kWord * 2.0;  // scatter RMW
  stats.working_set_bytes = factor_bytes + out_bytes;
  stats.parallel_items = nnz;
  // Warp-level gathers and atomics keep the SMs below FMA peak.
  stats.compute_efficiency = 0.5;
  return stats;
}

namespace {

// Scales the extensive parts of a per-call record to a fraction of the
// nonzeros (used to pro-rate the full-tensor stats over a streamed batch).
simgpu::KernelStats prorate(const simgpu::KernelStats& stats, double share) {
  simgpu::KernelStats scaled = stats;
  scaled.flops *= share;
  scaled.bytes_streamed *= share;
  scaled.bytes_reused *= share;
  scaled.bytes_random *= share;
  scaled.parallel_items *= share;
  return scaled;
}

// Core kernel over a contiguous block range [block_lo, block_lo + grid):
// shared by the resident and streamed entry points. `stats` must describe
// exactly this range's work.
void launch_blco_range(simgpu::Device& dev, const char* name,
                       const BlcoTensor& blco,
                       const std::vector<Matrix>& factors, int mode,
                       Matrix& out, index_t block_lo, index_t grid,
                       simgpu::KernelStats stats) {
  const int modes = blco.num_modes();
  const index_t rank = factors[0].cols();
  const auto& enc = blco.encoding();
  constexpr index_t kThreads = 128;
  CSTF_CHECK(rank <= 64);
  simgpu::LaunchConfig cfg{.grid_dim = grid, .block_dim = kThreads};
  simgpu::launch(dev, name, cfg, stats, [&](const simgpu::KernelCtx& ctx) {
    const BlcoBlock& blk = blco.block(block_lo + ctx.block_idx);
    const BitReader deltas(blk.packed_deltas.data(), blk.delta_bits);
    real_t row[64];
    index_t coords[kMaxModes];
    for (index_t i = ctx.thread_idx; i < blk.count; i += ctx.block_dim) {
      const lco_t lco = blk.base + deltas.get(static_cast<std::size_t>(i));
      enc.decode_all(lco, coords);
      const real_t v =
          blco.values()[static_cast<std::size_t>(blk.value_offset + i)];
      for (index_t r = 0; r < rank; ++r) row[r] = v;
      for (int m = 0; m < modes; ++m) {
        if (m == mode) continue;
        const Matrix& f = factors[static_cast<std::size_t>(m)];
        for (index_t r = 0; r < rank; ++r) row[r] *= f(coords[m], r);
      }
      for (index_t r = 0; r < rank; ++r) {
        atomic_add(&out(coords[mode], r), row[r]);
      }
    }
  });
}

// cudaMemset-equivalent launch clearing the output.
void zero_output(simgpu::Device& dev, Matrix& out) {
  simgpu::KernelStats zero_stats;
  zero_stats.bytes_streamed = static_cast<double>(out.size()) * simgpu::kWord;
  zero_stats.parallel_items = static_cast<double>(out.size());
  simgpu::launch(dev, "mttkrp_zero_out",
                 simgpu::LaunchConfig{.grid_dim = 1, .block_dim = 1},
                 zero_stats,
                 [&](const simgpu::KernelCtx&) { out.set_all(0.0); });
}

void check_mttkrp_args(const BlcoTensor& blco,
                       const std::vector<Matrix>& factors, int mode,
                       const Matrix& out) {
  const int modes = blco.num_modes();
  CSTF_CHECK(mode >= 0 && mode < modes);
  CSTF_CHECK(static_cast<int>(factors.size()) == modes);
  CSTF_CHECK(out.rows() == blco.dims()[static_cast<std::size_t>(mode)] &&
             out.cols() == factors[0].cols());
}

}  // namespace

void mttkrp_blco(simgpu::Device& dev, const BlcoTensor& blco,
                 const std::vector<Matrix>& factors, int mode, Matrix& out) {
  check_mttkrp_args(blco, factors, mode, out);
  zero_output(dev, out);
  launch_blco_range(dev, "mttkrp_blco", blco, factors, mode, out, 0,
                    blco.num_blocks(), blco_mttkrp_stats(blco, factors, mode));
}

index_t mttkrp_blco_streamed(simgpu::Device& dev, const BlcoTensor& blco,
                             const std::vector<Matrix>& factors, int mode,
                             Matrix& out, double device_budget_bytes,
                             simgpu::Stream copy_stream) {
  CSTF_CHECK(device_budget_bytes > 0.0);
  check_mttkrp_args(blco, factors, mode, out);
  const double tensor_bytes = blco.storage_bytes();
  if (tensor_bytes <= device_budget_bytes) {
    mttkrp_blco(dev, blco, factors, mode, out);
    return 1;
  }

  zero_output(dev, out);
  auto batches =
      static_cast<index_t>(std::ceil(tensor_bytes / device_budget_bytes));
  batches = std::min(batches, blco.num_blocks());
  const index_t per_batch = (blco.num_blocks() + batches - 1) / batches;

  const bool staged_async = !copy_stream.is_default();
  const simgpu::KernelStats full_stats =
      blco_mttkrp_stats(blco, factors, mode);
  std::vector<simgpu::Event> compute_done;  // per batch, for buffer reuse
  index_t used = 0;
  for (index_t lo = 0; lo < blco.num_blocks(); lo += per_batch) {
    const index_t grid = std::min<index_t>(per_batch, blco.num_blocks() - lo);
    // Pro-rate the full-tensor traffic over this batch's nonzero share; the
    // batch's compressed bytes are what crosses the host link.
    double batch_nnz = 0.0, batch_bytes = 0.0;
    for (index_t b = lo; b < lo + grid; ++b) {
      const BlcoBlock& blk = blco.block(b);
      batch_nnz += static_cast<double>(blk.count);
      batch_bytes += static_cast<double>(blk.packed_deltas.size()) *
                         sizeof(std::uint64_t) +
                     static_cast<double>(blk.count) * sizeof(real_t);
    }
    simgpu::KernelStats stats =
        prorate(full_stats, batch_nnz / static_cast<double>(blco.nnz()));
    if (staged_async) {
      // Explicit pipeline: the staging transfer is its own span on the copy
      // stream. Two staging buffers — batch i's transfer reuses the buffer
      // compute of batch i-2 read from, so it waits on that compute.
      if (used >= 2) {
        dev.wait_event(copy_stream,
                       compute_done[static_cast<std::size_t>(used - 2)]);
      }
      simgpu::KernelStats stage;
      stage.host_link_bytes = batch_bytes;
      stage.launches = 1;
      dev.record("mttkrp_stage_batch", stage, 0.0, copy_stream);
      dev.wait_event(simgpu::Stream{}, dev.record_event(copy_stream));
    } else {
      // Legacy single-span modeling: staging rides on the compute record and
      // the cost model overlaps the two inside the span (double buffering).
      stats.host_link_bytes = batch_bytes;
    }
    launch_blco_range(dev, "mttkrp_blco_streamed", blco, factors, mode, out,
                      lo, grid, stats);
    if (staged_async) compute_done.push_back(dev.record_event());
    ++used;
  }
  return used;
}

}  // namespace cstf
