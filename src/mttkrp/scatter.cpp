#include "mttkrp/scatter.hpp"

#include <algorithm>

#include "common/radix_sort.hpp"
#include "metrics/registry.hpp"
#include "parallel/thread_pool.hpp"

namespace cstf {

namespace {

/// Average atomic updates per output row above which kAuto prefers the
/// sorted plan over atomics when privatization does not fit: at >= 8
/// expected colliders per row the CAS retry traffic outweighs the plan's
/// indirect access (measured on the bundled fixtures; see DESIGN.md §8).
constexpr double kSortedContentionThreshold = 8.0;

}  // namespace

void ScatterPlanCache::bump_metrics(bool hit) const {
  auto& reg = metrics::MetricsRegistry::global();
  const metrics::Labels labels = {{"engine", engine_}};
  (hit ? reg.counter("mttkrp.scatter_cache.hits", labels)
       : reg.counter("mttkrp.scatter_cache.misses", labels))
      ->inc();
}

const char* scatter_strategy_name(ScatterStrategy strategy) {
  switch (strategy) {
    case ScatterStrategy::kAuto: return "auto";
    case ScatterStrategy::kAtomic: return "atomic";
    case ScatterStrategy::kPrivatized: return "privatized";
    case ScatterStrategy::kSorted: return "sorted";
  }
  return "?";
}

bool parse_scatter_strategy(const std::string& name, ScatterStrategy* out) {
  if (name == "auto") *out = ScatterStrategy::kAuto;
  else if (name == "atomic") *out = ScatterStrategy::kAtomic;
  else if (name == "privatized") *out = ScatterStrategy::kPrivatized;
  else if (name == "sorted") *out = ScatterStrategy::kSorted;
  else return false;
  return true;
}

index_t privatized_tile_count(index_t nnz) {
  const auto workers = static_cast<index_t>(global_thread_count());
  return detail::parallel_chunk_count(nnz, workers, kParallelGrainDefault);
}

ScatterStrategy resolve_scatter_strategy(const ScatterOptions& opts,
                                         index_t mode_len, index_t rank,
                                         index_t nnz) {
  ScatterStrategy s = opts.strategy;
  if (opts.deterministic && s == ScatterStrategy::kAtomic) {
    s = ScatterStrategy::kAuto;
  }
  if (s != ScatterStrategy::kAuto) return s;

  const double tile_bytes = static_cast<double>(mode_len) *
                            static_cast<double>(rank) * simgpu::kWord;
  const auto tiles = static_cast<double>(privatized_tile_count(nnz));
  if (tiles * tile_bytes <= opts.privatization_budget_bytes) {
    return ScatterStrategy::kPrivatized;
  }
  if (opts.deterministic) return ScatterStrategy::kSorted;
  const double updates_per_row =
      static_cast<double>(nnz) / std::max<double>(1.0, static_cast<double>(mode_len));
  return updates_per_row >= kSortedContentionThreshold
             ? ScatterStrategy::kSorted
             : ScatterStrategy::kAtomic;
}

ScatterStrategy resolve_scatter_strategy_for_mode(const ScatterOptions& opts,
                                                  int mode, index_t mode_len,
                                                  index_t rank, index_t nnz) {
  if (mode >= 0 && static_cast<std::size_t>(mode) < opts.per_mode.size()) {
    const ScatterStrategy s = opts.per_mode[static_cast<std::size_t>(mode)];
    if (s != ScatterStrategy::kAuto &&
        !(opts.deterministic && s == ScatterStrategy::kAtomic)) {
      return s;
    }
  }
  return resolve_scatter_strategy(opts, mode_len, rank, nnz);
}

void apply_scatter_stats(simgpu::KernelStats& stats, ScatterStrategy strategy,
                         index_t mode_len, index_t rank, double nnz) {
  const double out_words =
      static_cast<double>(mode_len) * static_cast<double>(rank);
  switch (strategy) {
    case ScatterStrategy::kAtomic:
      stats.atomic_ops = nnz * static_cast<double>(rank);
      stats.atomic_slots = out_words;
      break;
    case ScatterStrategy::kPrivatized: {
      const auto tiles = static_cast<double>(
          privatized_tile_count(static_cast<index_t>(nnz)));
      // Zero-fill of every tile, then the tree reduce: each of the tiles-1
      // combines streams two tiles in and one out.
      stats.bytes_streamed += (tiles + 3.0 * (tiles - 1.0)) * out_words * simgpu::kWord;
      stats.flops += (tiles - 1.0) * out_words;
      break;
    }
    case ScatterStrategy::kSorted:
      // The plan's permutation is streamed once; the nonzero accesses it
      // drives are already charged (as random traffic) by the base record.
      stats.bytes_streamed += nnz * static_cast<double>(sizeof(index_t));
      break;
    case ScatterStrategy::kAuto:
      CSTF_CHECK_MSG(false, "apply_scatter_stats requires a concrete strategy");
  }
}

namespace detail {

ScatterPlan finish_scatter_plan(std::vector<lco_t> keys,
                                std::vector<index_t> order) {
  CSTF_CHECK(keys.size() == order.size());
  radix_sort_pairs(keys, order);
  ScatterPlan plan;
  plan.order = std::move(order);
  const std::size_t n = keys.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 || keys[i] != keys[i - 1]) {
      plan.seg_ptr.push_back(static_cast<index_t>(i));
      plan.seg_row.push_back(static_cast<index_t>(keys[i]));
    }
  }
  plan.seg_ptr.push_back(static_cast<index_t>(n));
  return plan;
}

}  // namespace detail

}  // namespace cstf
