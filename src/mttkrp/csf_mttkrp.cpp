#include "mttkrp/csf_mttkrp.hpp"

#include "common/error.hpp"
#include "parallel/parallel_for.hpp"

namespace cstf {

namespace {

/// Accumulates into `acc[0..rank)` the subtree sum
///   sum_{leaves under node} val * hadamard of factor rows of levels > l.
/// `node` lives at level `l`; requires l <= modes-2.
void walk_subtree(const CsfTensor& csf, const std::vector<Matrix>& factors,
                  index_t rank, int l, index_t node, real_t* acc,
                  real_t* scratch) {
  const int modes = csf.num_modes();
  const index_t child_lo = csf.fptr(l)[static_cast<std::size_t>(node)];
  const index_t child_hi = csf.fptr(l)[static_cast<std::size_t>(node) + 1];
  if (l == modes - 2) {
    // Children are leaf entries.
    const auto& leaf_fids = csf.fids(modes - 1);
    const Matrix& leaf_factor =
        factors[static_cast<std::size_t>(csf.mode_order()[static_cast<std::size_t>(modes - 1)])];
    for (index_t e = child_lo; e < child_hi; ++e) {
      const real_t v = csf.values()[static_cast<std::size_t>(e)];
      const index_t fid = leaf_fids[static_cast<std::size_t>(e)];
      for (index_t r = 0; r < rank; ++r) acc[r] += v * leaf_factor(fid, r);
    }
    return;
  }
  // Children are internal nodes at level l+1: acc += H(fid_child) .* walk(child).
  const auto& child_fids = csf.fids(l + 1);
  const Matrix& child_factor =
      factors[static_cast<std::size_t>(csf.mode_order()[static_cast<std::size_t>(l + 1)])];
  // Each recursion level needs its own scratch row; `scratch` points at a
  // (modes-deep) stack of rank-sized rows.
  real_t* child_acc = scratch;
  for (index_t c = child_lo; c < child_hi; ++c) {
    for (index_t r = 0; r < rank; ++r) child_acc[r] = 0.0;
    walk_subtree(csf, factors, rank, l + 1, c, child_acc, scratch + rank);
    const index_t fid = child_fids[static_cast<std::size_t>(c)];
    for (index_t r = 0; r < rank; ++r) acc[r] += child_factor(fid, r) * child_acc[r];
  }
}

}  // namespace

simgpu::KernelStats csf_mttkrp_stats(const CsfTensor& csf,
                                     const std::vector<Matrix>& factors) {
  const int modes = csf.num_modes();
  const auto rank = static_cast<double>(factors[0].cols());
  simgpu::KernelStats stats;
  // Leaf work: one fma per rank slot per nonzero; internal levels: one
  // hadamard-accumulate per node.
  stats.flops = 2.0 * static_cast<double>(csf.nnz()) * rank;
  double internal_nodes = 0.0;
  for (int l = 0; l < modes - 1; ++l) {
    internal_nodes += static_cast<double>(csf.num_nodes(l));
  }
  stats.flops += 2.0 * internal_nodes * rank;
  stats.bytes_streamed = csf.storage_bytes();
  // Factor-row gathers: leaf rows per nonzero, internal rows per node.
  stats.bytes_random =
      (static_cast<double>(csf.nnz()) + internal_nodes) * rank * simgpu::kWord;
  double factor_bytes = 0.0;
  for (int m = 0; m < modes; ++m) {
    if (m == csf.root_mode()) continue;
    factor_bytes +=
        static_cast<double>(factors[static_cast<std::size_t>(m)].size()) *
        simgpu::kWord;
  }
  stats.working_set_bytes = factor_bytes;
  // Output: each root fiber row written once, no atomics.
  stats.bytes_streamed +=
      static_cast<double>(csf.num_nodes(0)) * rank * simgpu::kWord;
  stats.parallel_items = static_cast<double>(csf.num_nodes(0));
  // Gather-dominated per-nonzero loops with short rank-length bodies.
  stats.compute_efficiency = 0.4;
  return stats;
}

void mttkrp_csf(const CsfTensor& csf, const std::vector<Matrix>& factors,
                Matrix& out) {
  const int modes = csf.num_modes();
  CSTF_CHECK(modes >= 2);
  CSTF_CHECK(static_cast<int>(factors.size()) == modes);
  const index_t rank = factors[0].cols();
  const int root = csf.root_mode();
  CSTF_CHECK(out.rows() == csf.dims()[static_cast<std::size_t>(root)] &&
             out.cols() == rank);
  out.set_all(0.0);

  const auto& root_fids = csf.fids(0);
  parallel_for_blocked(0, csf.num_nodes(0), [&](index_t lo, index_t hi) {
    // Per-worker scratch: one accumulator row per tree level.
    std::vector<real_t> scratch(static_cast<std::size_t>(rank * modes), 0.0);
    real_t* acc = scratch.data();
    for (index_t node = lo; node < hi; ++node) {
      for (index_t r = 0; r < rank; ++r) acc[r] = 0.0;
      walk_subtree(csf, factors, rank, 0, node, acc, scratch.data() + rank);
      const index_t row = root_fids[static_cast<std::size_t>(node)];
      for (index_t r = 0; r < rank; ++r) out(row, r) += acc[r];
    }
  }, /*grain=*/8);
}

}  // namespace cstf
