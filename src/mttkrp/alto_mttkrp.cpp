#include "mttkrp/alto_mttkrp.hpp"

#include "common/error.hpp"
#include "parallel/parallel_for.hpp"

namespace cstf {

simgpu::KernelStats alto_mttkrp_stats(const AltoTensor& alto,
                                      const std::vector<Matrix>& factors,
                                      int mode) {
  const int modes = alto.num_modes();
  const auto rank = static_cast<double>(factors[0].cols());
  const auto nnz = static_cast<double>(alto.nnz());
  simgpu::KernelStats stats;
  stats.flops = nnz * rank * static_cast<double>(modes + 1);
  stats.bytes_streamed = alto.storage_bytes();
  // Factor-row gathers are random; output accumulation is thread-local in
  // the CPU kernel (ALTO's line partitioning), merged with one streaming
  // pass over the output.
  stats.bytes_random =
      nnz * rank * simgpu::kWord * static_cast<double>(modes - 1);
  stats.bytes_streamed +=
      static_cast<double>(alto.dims()[static_cast<std::size_t>(mode)]) * rank *
      simgpu::kWord;
  double factor_bytes = 0.0;
  for (int m = 0; m < modes; ++m) {
    if (m == mode) continue;
    factor_bytes +=
        static_cast<double>(factors[static_cast<std::size_t>(m)].size()) *
        simgpu::kWord;
  }
  stats.working_set_bytes =
      factor_bytes + static_cast<double>(alto.dims()[static_cast<std::size_t>(
                         mode)]) *
                         rank * simgpu::kWord;
  stats.parallel_items = nnz;
  // Bit-decode plus gather per nonzero: scalar-bound on CPUs.
  stats.compute_efficiency = 0.4;
  return stats;
}

void mttkrp_alto(const AltoTensor& alto, const std::vector<Matrix>& factors,
                 int mode, Matrix& out) {
  ScatterOptions opts;
  opts.strategy = ScatterStrategy::kAtomic;
  mttkrp_alto(alto, factors, mode, out, opts);
}

ScatterStrategy mttkrp_alto(const AltoTensor& alto,
                            const std::vector<Matrix>& factors, int mode,
                            Matrix& out, const ScatterOptions& opts,
                            const ScatterPlan* plan) {
  const int modes = alto.num_modes();
  CSTF_CHECK(mode >= 0 && mode < modes);
  CSTF_CHECK(static_cast<int>(factors.size()) == modes);
  const index_t rank = factors[0].cols();
  const index_t mode_len = alto.dims()[static_cast<std::size_t>(mode)];
  CSTF_CHECK(out.rows() == mode_len && out.cols() == rank);

  const ScatterStrategy strategy =
      resolve_scatter_strategy_for_mode(opts, mode, mode_len, rank, alto.nnz());

  ScatterPlan local_plan;
  if (strategy == ScatterStrategy::kSorted && plan == nullptr) {
    local_plan = alto_scatter_plan(alto, mode);
    plan = &local_plan;
  }

  const auto& enc = alto.encoding();
  const auto& lcos = alto.linearized();
  const auto& vals = alto.values();

  scatter_accumulate(
      strategy, out, alto.nnz(),
      [&](index_t i, real_t* row) {
        index_t coords[kMaxModes];
        enc.decode_all(lcos[static_cast<std::size_t>(i)], coords);
        const real_t v = vals[static_cast<std::size_t>(i)];
        for (index_t r = 0; r < rank; ++r) row[static_cast<std::size_t>(r)] = v;
        for (int m = 0; m < modes; ++m) {
          if (m == mode) continue;
          const Matrix& f = factors[static_cast<std::size_t>(m)];
          for (index_t r = 0; r < rank; ++r) {
            row[static_cast<std::size_t>(r)] *= f(coords[m], r);
          }
        }
        return coords[mode];
      },
      plan);
  return strategy;
}

ScatterPlan alto_scatter_plan(const AltoTensor& alto, int mode) {
  CSTF_CHECK(mode >= 0 && mode < alto.num_modes());
  const auto& enc = alto.encoding();
  const auto& lcos = alto.linearized();
  return build_scatter_plan(alto.nnz(), [&](index_t i) {
    index_t coords[kMaxModes];
    enc.decode_all(lcos[static_cast<std::size_t>(i)], coords);
    return coords[mode];
  });
}

}  // namespace cstf
