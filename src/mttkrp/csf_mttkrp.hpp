// CSF (SPLATT-style) MTTKRP for the tree's root mode.
//
// Each root fiber owns a disjoint output row, so the walk is parallel over
// roots with no atomics — SPLATT's key structural advantage on CPUs. The
// subtree walk accumulates Khatri-Rao partial products bottom-up, reusing
// each internal node's product across all of its leaves.
#pragma once

#include <vector>

#include "formats/csf.hpp"
#include "la/matrix.hpp"
#include "simgpu/counters.hpp"

namespace cstf {

/// MTTKRP for `csf.root_mode()`. `factors` are indexed by original mode
/// number; `out` must be dims()[root_mode] x R. Only the root mode of a CSF
/// tree can be computed from it; the SPLATT baseline keeps one tree per mode.
void mttkrp_csf(const CsfTensor& csf, const std::vector<Matrix>& factors,
                Matrix& out);

/// Cost-model statistics for one mttkrp_csf call: CSF structure streamed
/// once, factor rows gathered randomly against the live-factor working set,
/// output rows written race-free (no atomic read-modify-write, unlike the
/// scatter formats).
simgpu::KernelStats csf_mttkrp_stats(const CsfTensor& csf,
                                     const std::vector<Matrix>& factors);

}  // namespace cstf
