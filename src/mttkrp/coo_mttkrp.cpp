#include "mttkrp/coo_mttkrp.hpp"

#include "parallel/atomic.hpp"
#include "parallel/parallel_for.hpp"

namespace cstf {

void mttkrp_ref(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out) {
  const int modes = x.num_modes();
  CSTF_CHECK(mode >= 0 && mode < modes);
  CSTF_CHECK(static_cast<int>(factors.size()) == modes);
  const index_t rank = factors[0].cols();
  CSTF_CHECK(out.rows() == x.dim(mode) && out.cols() == rank);
  out.set_all(0.0);

  std::vector<real_t> row(static_cast<std::size_t>(rank));
  for (index_t i = 0; i < x.nnz(); ++i) {
    const real_t v = x.values()[static_cast<std::size_t>(i)];
    for (index_t r = 0; r < rank; ++r) row[static_cast<std::size_t>(r)] = v;
    for (int m = 0; m < modes; ++m) {
      if (m == mode) continue;
      const index_t idx = x.indices(m)[static_cast<std::size_t>(i)];
      const Matrix& f = factors[static_cast<std::size_t>(m)];
      for (index_t r = 0; r < rank; ++r) {
        row[static_cast<std::size_t>(r)] *= f(idx, r);
      }
    }
    const index_t out_row = x.indices(mode)[static_cast<std::size_t>(i)];
    for (index_t r = 0; r < rank; ++r) {
      out(out_row, r) += row[static_cast<std::size_t>(r)];
    }
  }
}

void mttkrp_coo(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out) {
  const int modes = x.num_modes();
  CSTF_CHECK(mode >= 0 && mode < modes);
  CSTF_CHECK(static_cast<int>(factors.size()) == modes);
  const index_t rank = factors[0].cols();
  CSTF_CHECK(out.rows() == x.dim(mode) && out.cols() == rank);
  out.set_all(0.0);

  parallel_for_blocked(0, x.nnz(), [&](index_t lo, index_t hi) {
    std::vector<real_t> row(static_cast<std::size_t>(rank));
    for (index_t i = lo; i < hi; ++i) {
      const real_t v = x.values()[static_cast<std::size_t>(i)];
      for (index_t r = 0; r < rank; ++r) row[static_cast<std::size_t>(r)] = v;
      for (int m = 0; m < modes; ++m) {
        if (m == mode) continue;
        const index_t idx = x.indices(m)[static_cast<std::size_t>(i)];
        const Matrix& f = factors[static_cast<std::size_t>(m)];
        for (index_t r = 0; r < rank; ++r) {
          row[static_cast<std::size_t>(r)] *= f(idx, r);
        }
      }
      const index_t out_row = x.indices(mode)[static_cast<std::size_t>(i)];
      for (index_t r = 0; r < rank; ++r) {
        atomic_add(&out(out_row, r), row[static_cast<std::size_t>(r)]);
      }
    }
  });
}

}  // namespace cstf
