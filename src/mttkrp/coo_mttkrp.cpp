#include "mttkrp/coo_mttkrp.hpp"

#include "parallel/parallel_for.hpp"

namespace cstf {

void mttkrp_ref(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out) {
  const int modes = x.num_modes();
  CSTF_CHECK(mode >= 0 && mode < modes);
  CSTF_CHECK(static_cast<int>(factors.size()) == modes);
  const index_t rank = factors[0].cols();
  CSTF_CHECK(out.rows() == x.dim(mode) && out.cols() == rank);
  out.set_all(0.0);

  std::vector<real_t> row(static_cast<std::size_t>(rank));
  for (index_t i = 0; i < x.nnz(); ++i) {
    const real_t v = x.values()[static_cast<std::size_t>(i)];
    for (index_t r = 0; r < rank; ++r) row[static_cast<std::size_t>(r)] = v;
    for (int m = 0; m < modes; ++m) {
      if (m == mode) continue;
      const index_t idx = x.indices(m)[static_cast<std::size_t>(i)];
      const Matrix& f = factors[static_cast<std::size_t>(m)];
      for (index_t r = 0; r < rank; ++r) {
        row[static_cast<std::size_t>(r)] *= f(idx, r);
      }
    }
    const index_t out_row = x.indices(mode)[static_cast<std::size_t>(i)];
    for (index_t r = 0; r < rank; ++r) {
      out(out_row, r) += row[static_cast<std::size_t>(r)];
    }
  }
}

void mttkrp_coo(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out) {
  ScatterOptions opts;
  opts.strategy = ScatterStrategy::kAtomic;
  mttkrp_coo(x, factors, mode, out, opts);
}

ScatterStrategy mttkrp_coo(const SparseTensor& x,
                           const std::vector<Matrix>& factors, int mode,
                           Matrix& out, const ScatterOptions& opts,
                           const ScatterPlan* plan) {
  const int modes = x.num_modes();
  CSTF_CHECK(mode >= 0 && mode < modes);
  CSTF_CHECK(static_cast<int>(factors.size()) == modes);
  const index_t rank = factors[0].cols();
  CSTF_CHECK(out.rows() == x.dim(mode) && out.cols() == rank);

  const ScatterStrategy strategy =
      resolve_scatter_strategy_for_mode(opts, mode, x.dim(mode), rank, x.nnz());

  // One-shot plan when the caller has no cache for this (tensor, mode).
  ScatterPlan local_plan;
  if (strategy == ScatterStrategy::kSorted && plan == nullptr) {
    local_plan = coo_scatter_plan(x, mode);
    plan = &local_plan;
  }

  const index_t* out_rows = x.indices(mode).data();
  scatter_accumulate(
      strategy, out, x.nnz(),
      [&](index_t i, real_t* row) {
        const real_t v = x.values()[static_cast<std::size_t>(i)];
        for (index_t r = 0; r < rank; ++r) row[static_cast<std::size_t>(r)] = v;
        for (int m = 0; m < modes; ++m) {
          if (m == mode) continue;
          const index_t idx = x.indices(m)[static_cast<std::size_t>(i)];
          const Matrix& f = factors[static_cast<std::size_t>(m)];
          for (index_t r = 0; r < rank; ++r) {
            row[static_cast<std::size_t>(r)] *= f(idx, r);
          }
        }
        return out_rows[static_cast<std::size_t>(i)];
      },
      plan);
  return strategy;
}

ScatterPlan coo_scatter_plan(const SparseTensor& x, int mode) {
  CSTF_CHECK(mode >= 0 && mode < x.num_modes());
  const index_t* out_rows = x.indices(mode).data();
  return build_scatter_plan(x.nnz(), [&](index_t i) {
    return out_rows[static_cast<std::size_t>(i)];
  });
}

}  // namespace cstf
