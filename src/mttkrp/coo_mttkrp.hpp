// COO-format MTTKRP kernels.
//
// `mttkrp_ref` is the deliberately simple sequential kernel every other
// implementation is differentially tested against; `mttkrp_coo` is the
// parallel variant. Both compute, for the chosen mode n,
//   out = X_(n) * (H_N ⊙ ... ⊙ H_{n+1} ⊙ H_{n-1} ⊙ ... ⊙ H_1),
// materializing the Khatri-Rao rows on the fly per nonzero (Figure 2).
//
// The parallel kernel's output accumulation goes through the adaptive
// scatter engine (mttkrp/scatter.hpp): atomic scatter, privatized tiles, or
// a sorted segment plan, selected by ScatterOptions.
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "mttkrp/scatter.hpp"
#include "tensor/coo.hpp"

namespace cstf {

/// Sequential reference MTTKRP. `out` must be dim(mode) x R.
void mttkrp_ref(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out);

/// Parallel COO MTTKRP using atomic scatter into the output rows (the
/// pre-engine behavior, kept for callers that want exactly that path).
void mttkrp_coo(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out);

/// Parallel COO MTTKRP through the adaptive scatter engine. Returns the
/// concrete strategy used (after kAuto resolution). `plan` may carry a
/// cached sorted-scatter plan for this (tensor, mode); when the sorted
/// strategy is selected and `plan` is null, a one-shot plan is built
/// internally.
ScatterStrategy mttkrp_coo(const SparseTensor& x,
                           const std::vector<Matrix>& factors, int mode,
                           Matrix& out, const ScatterOptions& opts,
                           const ScatterPlan* plan = nullptr);

/// Builds the sorted-scatter plan for `mode` of `x` (bucket nonzeros by
/// output row); reusable for every mttkrp_coo call on the same tensor.
ScatterPlan coo_scatter_plan(const SparseTensor& x, int mode);

}  // namespace cstf
