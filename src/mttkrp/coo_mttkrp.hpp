// COO-format MTTKRP kernels.
//
// `mttkrp_ref` is the deliberately simple sequential kernel every other
// implementation is differentially tested against; `mttkrp_coo` is the
// parallel (atomic-scatter) variant. Both compute, for the chosen mode n,
//   out = X_(n) * (H_N ⊙ ... ⊙ H_{n+1} ⊙ H_{n-1} ⊙ ... ⊙ H_1),
// materializing the Khatri-Rao rows on the fly per nonzero (Figure 2).
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo.hpp"

namespace cstf {

/// Sequential reference MTTKRP. `out` must be dim(mode) x R.
void mttkrp_ref(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out);

/// Parallel COO MTTKRP using atomic scatter into the output rows.
void mttkrp_coo(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out);

}  // namespace cstf
