#include "mttkrp/dimtree.hpp"

#include <cstdio>
#include <cstring>

#include "common/timer.hpp"
#include "perfmodel/admm_model.hpp"
#include "simgpu/launch.hpp"

namespace cstf {

const char* mttkrp_mode_name(MttkrpMode mode) {
  switch (mode) {
    case MttkrpMode::kAuto: return "auto";
    case MttkrpMode::kFlat: return "flat";
    case MttkrpMode::kDimtree: return "dimtree";
  }
  return "?";
}

bool parse_mttkrp_mode(const std::string& name, MttkrpMode* out) {
  if (name == "auto") { *out = MttkrpMode::kAuto; return true; }
  if (name == "flat") { *out = MttkrpMode::kFlat; return true; }
  if (name == "dimtree") { *out = MttkrpMode::kDimtree; return true; }
  return false;
}

namespace {

// The per-kernel stat builders are free functions over the tensor shape so
// resolve_mttkrp_mode can model a tensor without paying the engine's
// coordinate copy.

double raw_coo_bytes(const std::vector<index_t>& dims, index_t nnz) {
  return static_cast<double>(nnz) *
         static_cast<double>(dims.size() + 1) * simgpu::kWord;
}

// One flat from-raw MTTKRP for `mode` — mirrors blco_mttkrp_stats: the
// resident tensor streamed once, (N-1) factor-row gathers plus the scatter
// read-modify-write as random traffic against the live-factor working set.
simgpu::KernelStats flat_mode_stats(const std::vector<index_t>& dims,
                                    index_t nnz, index_t rank,
                                    double flat_stream_bytes, int mode,
                                    ScatterStrategy strategy) {
  const auto modes = static_cast<int>(dims.size());
  const auto n = static_cast<double>(nnz);
  const auto r = static_cast<double>(rank);
  simgpu::KernelStats s;
  s.flops = n * r * static_cast<double>(modes + 1);
  s.bytes_streamed = flat_stream_bytes > 0.0
                         ? flat_stream_bytes
                         : raw_coo_bytes(dims, nnz);
  s.bytes_random = n * r * simgpu::kWord * static_cast<double>(modes - 1) +
                   n * r * simgpu::kWord * 2.0;
  double factor_bytes = 0.0;
  for (int m = 0; m < modes; ++m) {
    factor_bytes += static_cast<double>(dims[static_cast<std::size_t>(m)]) *
                    r * simgpu::kWord;
  }
  s.working_set_bytes = factor_bytes;  // other factors + the output tile
  s.parallel_items = n;
  s.compute_efficiency = 0.5;
  apply_scatter_stats(s, strategy, dims[static_cast<std::size_t>(mode)], rank,
                      n);
  return s;
}

// extend(k): fold factor k into the chain. Level 0 builds the chain from the
// raw values (write-only pass over P); later levels rewrite P in place. The
// only random traffic is the H_k row gather, against a working set of that
// one factor — the isolation that makes extends cheap on cache-resident
// factors.
simgpu::KernelStats extend_level_stats(const std::vector<index_t>& dims,
                                       index_t nnz, index_t rank, int k) {
  const auto n = static_cast<double>(nnz);
  const auto r = static_cast<double>(rank);
  simgpu::KernelStats s;
  s.flops = n * r * (k == 0 ? 2.0 : 1.0);
  s.bytes_streamed =
      (k == 0 ? 1.0 : 2.0) * n * r * simgpu::kWord + n * simgpu::kWord;
  s.bytes_random = n * r * simgpu::kWord;
  s.working_set_bytes =
      static_cast<double>(dims[static_cast<std::size_t>(k)]) * r *
      simgpu::kWord;
  s.parallel_items = n;
  s.compute_efficiency = 0.5;
  return s;
}

// derive(mode), mode >= 1: stream the chain, gather only the suffix factors
// H_{mode+1..N-1}, scatter. The working set shrinks with the mode — the last
// mode's derive gathers nothing but the output tile.
simgpu::KernelStats derive_mode_stats(const std::vector<index_t>& dims,
                                      index_t nnz, index_t rank, int mode,
                                      ScatterStrategy strategy) {
  const auto modes = static_cast<int>(dims.size());
  const int suffix = modes - 1 - mode;
  const auto n = static_cast<double>(nnz);
  const auto r = static_cast<double>(rank);
  simgpu::KernelStats s;
  s.flops = n * r * static_cast<double>(suffix + 1);
  s.bytes_streamed = n * r * simgpu::kWord +
                     n * simgpu::kWord * static_cast<double>(modes - mode);
  s.bytes_random = n * r * simgpu::kWord * static_cast<double>(suffix + 2);
  double ws = static_cast<double>(dims[static_cast<std::size_t>(mode)]) * r *
              simgpu::kWord;  // the output tile
  for (int m = mode + 1; m < modes; ++m) {
    ws += static_cast<double>(dims[static_cast<std::size_t>(m)]) * r *
          simgpu::kWord;
  }
  s.working_set_bytes = ws;
  s.parallel_items = n;
  s.compute_efficiency = 0.5;
  apply_scatter_stats(s, strategy, dims[static_cast<std::size_t>(mode)], rank,
                      n);
  return s;
}

ScatterStrategy resolve_engine_strategy(const ScatterOptions& opts, int mode,
                                        index_t mode_len, index_t rank,
                                        index_t nnz) {
  // Deterministic means ref-bit-identical here, which only the sorted
  // accumulation order provides (privatized regroups the per-row sums) —
  // it overrides even an autotuned per-mode pick.
  if (opts.deterministic) return ScatterStrategy::kSorted;
  return resolve_scatter_strategy_for_mode(opts, mode, mode_len, rank, nnz);
}

std::vector<simgpu::KernelStats> tree_sequence_stats(
    const std::vector<index_t>& dims, index_t nnz, index_t rank,
    double flat_stream_bytes, const ScatterOptions& opts) {
  const auto modes = static_cast<int>(dims.size());
  std::vector<simgpu::KernelStats> seq;
  seq.push_back(flat_mode_stats(
      dims, nnz, rank, flat_stream_bytes, 0,
      resolve_engine_strategy(opts, 0, dims[0], rank, nnz)));
  for (int m = 1; m < modes; ++m) {
    seq.push_back(extend_level_stats(dims, nnz, rank, m - 1));
    seq.push_back(derive_mode_stats(
        dims, nnz, rank, m,
        resolve_engine_strategy(opts, m, dims[static_cast<std::size_t>(m)],
                                rank, nnz)));
  }
  return seq;
}

std::vector<simgpu::KernelStats> flat_sequence_stats(
    const std::vector<index_t>& dims, index_t nnz, index_t rank,
    double flat_stream_bytes, const ScatterOptions& opts) {
  const auto modes = static_cast<int>(dims.size());
  std::vector<simgpu::KernelStats> seq;
  for (int m = 0; m < modes; ++m) {
    seq.push_back(flat_mode_stats(
        dims, nnz, rank, flat_stream_bytes, m,
        resolve_engine_strategy(opts, m, dims[static_cast<std::size_t>(m)],
                                rank, nnz)));
  }
  return seq;
}

// Sampled content hash: the shape, the first and last entries, and up to
// kFingerprintProbes strided probes in between. check_fingerprints runs on
// every chain-derived MTTKRP, so the backstop must stay O(1) per folded
// level — a full hash over a long-mode factor (exactly the shapes the
// resolver sends to dimtree) would erode the reuse win the extend/derive
// stats model. The price is that the silent-mutation net is probabilistic
// for entries between probes; note_factor_updated remains the contract.
constexpr std::size_t kFingerprintProbes = 64;

std::uint64_t content_hash(const Matrix& f) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  const auto mix_entry = [&](std::size_t i, const real_t* p) {
    std::uint64_t bits;
    std::memcpy(&bits, &p[i], sizeof bits);
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(f.rows()));
  mix(static_cast<std::uint64_t>(f.cols()));
  const real_t* p = f.data();
  const auto count = static_cast<std::size_t>(f.size());
  if (count == 0) return h;
  const std::size_t stride =
      count > kFingerprintProbes ? count / kFingerprintProbes : 1;
  for (std::size_t i = 0; i < count; i += stride) mix_entry(i, p);
  mix_entry(count - 1, p);
  return h;
}

}  // namespace

bool DimTreeEngine::Fingerprint::matches(const Matrix& f) const {
  return data == f.data() && hash == content_hash(f);
}

DimTreeEngine::DimTreeEngine(const SparseTensor& x, index_t rank,
                             double budget_bytes)
    : dims_(x.dims()),
      values_(x.values()),
      nnz_(x.nnz()),
      rank_(rank),
      budget_bytes_(budget_bytes) {
  CSTF_CHECK(x.num_modes() >= 2);
  CSTF_CHECK(rank >= 1);
  idx_.reserve(static_cast<std::size_t>(x.num_modes()));
  for (int m = 0; m < x.num_modes(); ++m) idx_.push_back(x.indices(m));
  fps_.resize(static_cast<std::size_t>(x.num_modes()));
  flat_stream_bytes_ = raw_coo_bytes(dims_, nnz_);
}

void DimTreeEngine::set_budget_bytes(double bytes) {
  budget_bytes_ = bytes;
  if (!chain_fits()) release_chain();
}

void DimTreeEngine::invalidate() { level_ = 0; }

void DimTreeEngine::note_factor_updated(int mode) {
  CSTF_CHECK(mode >= 0 && mode < num_modes());
  // The chain is folded in place, so the buffer physically holds only
  // P_{level_}. A stale factor anywhere in the folded prefix therefore
  // invalidates the whole chain: truncating to an intermediate k > 0 and
  // re-folding would multiply the fresh factor into a product that still
  // contains its old value. Only level 0 is re-enterable (fold(0)
  // overwrites).
  if (level_ > mode) level_ = 0;
}

void DimTreeEngine::ensure_chain() {
  if (chain_ != nullptr) return;
  lease_ = ScratchPool::global().acquire(
      1, static_cast<std::size_t>(nnz_ * rank_));
  chain_ = lease_.tile(0);
  level_ = 0;
}

void DimTreeEngine::release_chain() {
  lease_ = ScratchPool::Lease();
  chain_ = nullptr;
  level_ = 0;
}

void DimTreeEngine::check_fingerprints(const std::vector<Matrix>& factors) {
  for (int k = 0; k < level_; ++k) {
    if (!fps_[static_cast<std::size_t>(k)].matches(
            factors[static_cast<std::size_t>(k)])) {
      level_ = 0;  // in-place chain: no intermediate level to fall back to
      return;
    }
  }
}

void DimTreeEngine::fold(simgpu::Device& dev, const Matrix& factor, int k) {
  const index_t rank = rank_;
  const index_t nnz = nnz_;
  const index_t* idx = idx_[static_cast<std::size_t>(k)].data();
  const real_t* vals = values_.data();
  real_t* chain = chain_;
  constexpr index_t kThreads = 128;
  simgpu::LaunchConfig cfg{
      .grid_dim = simgpu::blocks_for(nnz, kThreads), .block_dim = kThreads};
  simgpu::launch(dev, "dimtree_extend", cfg,
                 extend_level_stats(dims_, nnz_, rank_, k),
                 [&](const simgpu::KernelCtx& ctx) {
    for (index_t i = ctx.global_thread_id(); i < nnz;
         i += ctx.total_threads()) {
      real_t* p = chain + static_cast<std::size_t>(i * rank);
      const index_t j = idx[static_cast<std::size_t>(i)];
      if (k == 0) {
        const real_t v = vals[static_cast<std::size_t>(i)];
        for (index_t r = 0; r < rank; ++r) {
          p[static_cast<std::size_t>(r)] = v * factor(j, r);
        }
      } else {
        for (index_t r = 0; r < rank; ++r) {
          p[static_cast<std::size_t>(r)] *= factor(j, r);
        }
      }
    }
  });
  fps_[static_cast<std::size_t>(k)] =
      Fingerprint{factor.data(), content_hash(factor)};
  level_ = k + 1;
}

void DimTreeEngine::extend_to(simgpu::Device& dev,
                              const std::vector<Matrix>& factors,
                              int target_level) {
  CSTF_CHECK(target_level >= 0 && target_level < num_modes());
  CSTF_CHECK(static_cast<int>(factors.size()) == num_modes());
  if (!chain_fits()) return;  // flat fallback: nothing to maintain
  ensure_chain();
  check_fingerprints(factors);
  if (level_ > target_level) level_ = 0;  // cannot unfold; rebuild
  while (level_ < target_level) {
    fold(dev, factors[static_cast<std::size_t>(level_)], level_);
  }
}

ScatterStrategy DimTreeEngine::mttkrp(simgpu::Device& dev,
                                      const std::vector<Matrix>& factors,
                                      int mode, Matrix& out,
                                      const ScatterOptions& opts) {
  const int modes = num_modes();
  CSTF_CHECK(mode >= 0 && mode < modes);
  CSTF_CHECK(static_cast<int>(factors.size()) == modes);
  CSTF_CHECK(out.rows() == dim(mode) && out.cols() == rank_);
  for (const Matrix& f : factors) CSTF_CHECK(f.cols() == rank_);

  const ScatterStrategy strategy =
      resolve_engine_strategy(opts, mode, dim(mode), rank_, nnz_);
  const ScatterPlan* plan =
      strategy == ScatterStrategy::kSorted ? &plan_for(mode) : nullptr;
  const index_t rank = rank_;
  const index_t* out_rows = idx_[static_cast<std::size_t>(mode)].data();

  const bool use_chain = chain_fits() && mode > 0;
  if (use_chain) extend_to(dev, factors, mode);

  Timer wall;
  if (use_chain) {
    const real_t* chain = chain_;
    scatter_accumulate(
        strategy, out, nnz_,
        [&](index_t i, real_t* row) {
          const real_t* p = chain + static_cast<std::size_t>(i * rank);
          for (index_t r = 0; r < rank; ++r) {
            row[static_cast<std::size_t>(r)] = p[static_cast<std::size_t>(r)];
          }
          for (int m = mode + 1; m < modes; ++m) {
            const index_t j =
                idx_[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)];
            const Matrix& f = factors[static_cast<std::size_t>(m)];
            for (index_t r = 0; r < rank; ++r) {
              row[static_cast<std::size_t>(r)] *= f(j, r);
            }
          }
          return out_rows[static_cast<std::size_t>(i)];
        },
        plan);
    dev.record("dimtree_derive",
               derive_mode_stats(dims_, nnz_, rank_, mode, strategy),
               wall.seconds());
  } else {
    // Mode 0 (no prefix to reuse) or over-budget fallback: the flat from-raw
    // computation, in the reference's ascending product order.
    scatter_accumulate(
        strategy, out, nnz_,
        [&](index_t i, real_t* row) {
          const real_t v = values_[static_cast<std::size_t>(i)];
          for (index_t r = 0; r < rank; ++r) {
            row[static_cast<std::size_t>(r)] = v;
          }
          for (int m = 0; m < modes; ++m) {
            if (m == mode) continue;
            const index_t j =
                idx_[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)];
            const Matrix& f = factors[static_cast<std::size_t>(m)];
            for (index_t r = 0; r < rank; ++r) {
              row[static_cast<std::size_t>(r)] *= f(j, r);
            }
          }
          return out_rows[static_cast<std::size_t>(i)];
        },
        plan);
    dev.record("dimtree_flat",
               flat_mode_stats(dims_, nnz_, rank_, flat_stream_bytes_, mode,
                               strategy),
               wall.seconds());
  }
  return strategy;
}

const ScatterPlan& DimTreeEngine::plan_for(int mode) {
  return plans_.get(mode, [&] {
    const index_t* rows = idx_[static_cast<std::size_t>(mode)].data();
    return build_scatter_plan(nnz_, [&](index_t i) {
      return rows[static_cast<std::size_t>(i)];
    });
  });
}

double DimTreeEngine::flat_iteration_flops() const {
  const auto modes = static_cast<double>(num_modes());
  return static_cast<double>(nnz_) * static_cast<double>(rank_) * modes *
         (modes + 1.0);
}

double DimTreeEngine::tree_iteration_flops() const {
  const auto modes = num_modes();
  double per_nnz_rank = static_cast<double>(modes + 1);  // mode-0 flat derive
  per_nnz_rank += 2.0;                                   // extend(0)
  per_nnz_rank += static_cast<double>(modes - 2);        // extend(1..N-2)
  for (int m = 1; m < modes; ++m) {
    per_nnz_rank += static_cast<double>(modes - m);      // derive(m)
  }
  return static_cast<double>(nnz_) * static_cast<double>(rank_) * per_nnz_rank;
}

std::vector<simgpu::KernelStats> DimTreeEngine::tree_iteration_stats(
    const ScatterOptions& opts) const {
  return tree_sequence_stats(dims_, nnz_, rank_, flat_stream_bytes_, opts);
}

std::vector<simgpu::KernelStats> DimTreeEngine::flat_iteration_stats(
    const ScatterOptions& opts) const {
  return flat_sequence_stats(dims_, nnz_, rank_, flat_stream_bytes_, opts);
}

MttkrpMode resolve_mttkrp_mode(const SparseTensor& x, index_t rank,
                               const ScatterOptions& scatter,
                               const simgpu::DeviceSpec& spec,
                               double budget_bytes,
                               double flat_stream_bytes, double nnz_scale) {
  const double chain = static_cast<double>(x.nnz()) *
                       static_cast<double>(rank) * simgpu::kWord;
  if (chain > budget_bytes) return MttkrpMode::kFlat;
  const double flat_s = perfmodel::modeled_sequence_scaled(
      flat_sequence_stats(x.dims(), x.nnz(), rank, flat_stream_bytes,
                          scatter),
      nnz_scale, spec);
  const double tree_s = perfmodel::modeled_sequence_scaled(
      tree_sequence_stats(x.dims(), x.nnz(), rank, flat_stream_bytes,
                          scatter),
      nnz_scale, spec);
  return tree_s < flat_s ? MttkrpMode::kDimtree : MttkrpMode::kFlat;
}

std::string describe_dimtree(const DimTreeEngine& engine) {
  const int modes = engine.num_modes();
  char line[160];
  std::string out = "dimension tree (prefix chain):\n";
  for (int m = 0; m < modes; ++m) {
    std::snprintf(line, sizeof line, "  leaf H%d: %lld x %lld\n", m,
                  static_cast<long long>(engine.dim(m)),
                  static_cast<long long>(engine.rank()));
    out += line;
  }
  const double mib = engine.chain_bytes() / (1024.0 * 1024.0);
  for (int k = 1; k < modes; ++k) {
    char parent[16];
    if (k == 1) {
      std::snprintf(parent, sizeof parent, "X");
    } else {
      std::snprintf(parent, sizeof parent, "P%d", k - 1);
    }
    std::snprintf(line, sizeof line,
                  "  node P%d = %s * H%d: %lld x %lld (%.1f MiB, derives "
                  "mode %d)\n",
                  k, parent, k - 1, static_cast<long long>(engine.nnz()),
                  static_cast<long long>(engine.rank()), mib, k);
    out += line;
  }
  std::snprintf(line, sizeof line,
                "  reuse factor: %.2fx fewer multiplies than flat\n",
                engine.reuse_factor());
  out += line;
  std::snprintf(line, sizeof line,
                "  intermediate bytes: %.1f MiB of %.1f MiB budget (%s)\n",
                mib, engine.budget_bytes() / (1024.0 * 1024.0),
                engine.chain_fits() ? "within" : "over; flat fallback");
  out += line;
  return out;
}

}  // namespace cstf
