// Adaptive scatter engine for sparse MTTKRP output accumulation.
//
// Every sparse MTTKRP kernel in this library ends the same way: a rank-length
// Khatri-Rao row, computed per nonzero, is accumulated into one row of the
// output matrix, and concurrently processed nonzeros may target the same row.
// This header centralizes the three ways to resolve that conflict:
//
//  * kAtomic      — CAS-loop accumulation directly into the output (the
//                   GPU-style scatter of the paper's BLCO kernel). Cheap to
//                   set up, but serializes under contention — pathological on
//                   short modes, where many nonzeros land on few rows.
//  * kPrivatized  — each of T fixed nonzero ranges accumulates into its own
//                   private output tile; tiles are then combined by a
//                   fixed-shape pairwise tree reduction. Atomic-free and
//                   bit-deterministic, but needs T * dims[mode] * R reals of
//                   scratch — only affordable on short modes.
//  * kSorted      — nonzeros are bucketed by output row once per (tensor,
//                   mode) via the radix sort the format builders already use;
//                   each row's contributions are then contiguous and a single
//                   worker accumulates them with plain adds. Atomic-free and
//                   bit-deterministic with no per-call scratch; pays one
//                   plan build (reusable across iterations) and an indirect
//                   nonzero access during accumulation.
//
// kAuto picks per (mode length, rank, nnz/row, worker count): privatized when
// the tiles fit the scratch budget, otherwise sorted when determinism is
// required or the expected updates-per-row (the contention proxy) are high,
// otherwise atomic. See DESIGN.md §8 for the derivation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "la/matrix.hpp"
#include "parallel/atomic.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scratch_pool.hpp"
#include "simgpu/counters.hpp"

namespace cstf {

enum class ScatterStrategy {
  kAuto,        // choose per mode/rank/nnz/workers (resolve_scatter_strategy)
  kAtomic,      // CAS scatter into the shared output
  kPrivatized,  // per-range private tiles + deterministic tree reduce
  kSorted,      // radix-bucketed segments, one owner per output row
};

/// Display name ("auto", "atomic", "privatized", "sorted").
const char* scatter_strategy_name(ScatterStrategy strategy);

/// Parses a strategy name; returns false (leaving `out` untouched) on an
/// unknown name.
bool parse_scatter_strategy(const std::string& name, ScatterStrategy* out);

/// Per-run scatter configuration, threaded from FrameworkOptions / the CLI
/// down to the kernels.
struct ScatterOptions {
  ScatterStrategy strategy = ScatterStrategy::kAuto;

  /// Force atomic-free execution: kAuto never resolves to kAtomic, and an
  /// explicit kAtomic request is re-resolved as if it were kAuto. With this
  /// set, repeated runs produce bit-identical outputs (see DESIGN.md §8).
  bool deterministic = false;

  /// Upper bound on the private-tile scratch (bytes) the privatized strategy
  /// may allocate per call; above it, resolution falls through to
  /// sorted/atomic. Tiles are pooled (ScratchPool), so this bounds steady-
  /// state memory, not per-call allocation traffic.
  double privatization_budget_bytes = 64.0 * 1024.0 * 1024.0;

  /// Per-mode strategy overrides from the autotuner: entry m (when present
  /// and not kAuto) pins mode m's strategy ahead of `strategy`. Modes beyond
  /// the vector (or kAuto entries) fall through to the normal resolution.
  /// Only resolve_scatter_strategy_for_mode consults this — call sites that
  /// do not know their mode (streaming slices) ignore it.
  std::vector<ScatterStrategy> per_mode;
};

/// Reusable sorted-scatter plan for one (tensor, mode): the nonzero ids
/// permuted so equal output rows are contiguous, plus the segment table.
/// Built once, reused every iteration (the tensor never changes during a
/// factorization).
struct ScatterPlan {
  /// Nonzero ids sorted by output row; ties keep ascending id order (the
  /// radix sort is stable), which fixes the accumulation order and makes the
  /// sorted path bit-deterministic.
  std::vector<index_t> order;

  /// seg_ptr[s] .. seg_ptr[s+1] delimit segment s inside `order`.
  std::vector<index_t> seg_ptr;

  /// Output row owned by segment s. Rows with no nonzeros have no segment.
  std::vector<index_t> seg_row;

  index_t num_segments() const {
    return static_cast<index_t>(seg_row.size());
  }

  std::size_t storage_bytes() const {
    return (order.size() + seg_ptr.size() + seg_row.size()) * sizeof(index_t);
  }
};

/// Lazily built per-mode plan store for backends that serve every mode of a
/// fixed tensor. Not thread-safe (backends are driven by one caller, like
/// the rest of the library).
class ScatterPlanCache {
 public:
  /// `engine` tags this cache's series in the process-wide
  /// mttkrp.scatter_cache.* counters ("backend" for the MTTKRP backends and
  /// the streaming path, "dimtree" for the dimension-tree engine's cache).
  /// The per-cache hits()/misses() below are untouched by the tag.
  explicit ScatterPlanCache(const char* engine = "backend") : engine_(engine) {}

  template <typename BuildFn>
  const ScatterPlan& get(int mode, const BuildFn& build) {
    CSTF_CHECK(mode >= 0 && mode < kMaxModes);
    auto& slot = slots_[static_cast<std::size_t>(mode)];
    if (!slot) {
      ++misses_;
      bump_metrics(false);
      slot = std::make_unique<ScatterPlan>(build());
    } else {
      ++hits_;
      bump_metrics(true);
    }
    return *slot;
  }

  /// Plan reuse counters (cumulative across clear()): a miss builds a plan,
  /// a hit reuses one. Surfaced by cstf_info and the tuning telemetry so
  /// plan-build overhead is observable.
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

  /// Drops every cached plan. Callers whose nonzero set changes between
  /// solves (the streaming path: each time slice is a different tensor)
  /// MUST clear before reusing the cache — a plan built for one slice
  /// permutes the wrong nonzeros of the next.
  void clear() {
    for (auto& slot : slots_) slot.reset();
  }

 private:
  /// Mirrors the hit/miss into mttkrp.scatter_cache.*{engine=...} (defined
  /// in scatter.cpp).
  void bump_metrics(bool hit) const;

  const char* engine_;
  std::unique_ptr<ScatterPlan> slots_[kMaxModes];
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

/// Number of private tiles the privatized strategy uses for `nnz` nonzeros:
/// the dynamic-chunk count of the parallel layer (~4x workers, bounded by
/// grain). Each tile is bound to a fixed contiguous nonzero range — the tile
/// index is the range index, never the worker index — so tile contents do
/// not depend on which worker claims which range.
index_t privatized_tile_count(index_t nnz);

/// Resolves kAuto (and kAtomic under `deterministic`) to a concrete strategy
/// for one mode. Explicit non-auto requests pass through unchanged. Ignores
/// `opts.per_mode` (callers that do not know their mode index, e.g. the
/// streaming path where each slice is a different tensor).
ScatterStrategy resolve_scatter_strategy(const ScatterOptions& opts,
                                         index_t mode_len, index_t rank,
                                         index_t nnz);

/// Mode-aware resolution: a concrete `opts.per_mode[mode]` entry (the
/// autotuner's pick) wins — unless it is kAtomic under `deterministic`,
/// which falls through to the auto resolution like any other atomic request.
/// Without an override this is exactly resolve_scatter_strategy.
ScatterStrategy resolve_scatter_strategy_for_mode(const ScatterOptions& opts,
                                                  int mode, index_t mode_len,
                                                  index_t rank, index_t nnz);

/// Adds the strategy-specific cost terms to a kernel-stats record that
/// already accounts for the shared work (stream + factor gathers + scatter
/// write traffic):
///  * kAtomic: the atomic-op count and slot count feeding the contention
///    term of the cost model;
///  * kPrivatized: tile zeroing plus the tree-reduce traffic and flops;
///  * kSorted: the streamed read of the plan's permutation.
void apply_scatter_stats(simgpu::KernelStats& stats, ScatterStrategy strategy,
                         index_t mode_len, index_t rank, double nnz);

namespace detail {
/// Builds the segment table from row keys; `order` must be the identity
/// permutation of the same length. Sorts (stable LSD radix) then scans for
/// boundaries.
ScatterPlan finish_scatter_plan(std::vector<lco_t> keys,
                                std::vector<index_t> order);
}  // namespace detail

/// Builds the sorted-scatter plan for one mode. `row_of(i)` must return the
/// output row of nonzero i, for i in [0, nnz).
template <typename RowOf>
ScatterPlan build_scatter_plan(index_t nnz, const RowOf& row_of) {
  std::vector<lco_t> keys(static_cast<std::size_t>(nnz));
  std::vector<index_t> order(static_cast<std::size_t>(nnz));
  parallel_for(0, nnz, [&](index_t i) {
    keys[static_cast<std::size_t>(i)] = static_cast<lco_t>(row_of(i));
    order[static_cast<std::size_t>(i)] = i;
  });
  return detail::finish_scatter_plan(std::move(keys), std::move(order));
}

/// The engine: accumulates one rank-length contribution per nonzero into
/// `out` (dims[mode] x R, column-major) using the given concrete strategy.
/// `contribute(i, row)` must fill `row` (length out.cols()) with nonzero i's
/// Khatri-Rao row and return its output row index; it must be safe to call
/// concurrently for distinct i. `plan` is required for kSorted and ignored
/// otherwise. Zeroes `out` itself.
template <typename Contribute>
void scatter_accumulate(ScatterStrategy strategy, Matrix& out, index_t nnz,
                        const Contribute& contribute,
                        const ScatterPlan* plan = nullptr) {
  CSTF_CHECK_MSG(strategy != ScatterStrategy::kAuto,
                 "scatter_accumulate requires a concrete strategy; resolve "
                 "kAuto with resolve_scatter_strategy first");
  const index_t mode_len = out.rows();
  const index_t rank = out.cols();
  out.set_all(0.0);
  if (nnz <= 0) return;

  switch (strategy) {
    case ScatterStrategy::kAtomic: {
      parallel_for_blocked(0, nnz, [&](index_t lo, index_t hi) {
        thread_local std::vector<real_t> row;
        if (row.size() < static_cast<std::size_t>(rank)) {
          row.resize(static_cast<std::size_t>(rank));
        }
        for (index_t i = lo; i < hi; ++i) {
          const index_t out_row = contribute(i, row.data());
          for (index_t r = 0; r < rank; ++r) {
            atomic_add(&out(out_row, r), row[static_cast<std::size_t>(r)]);
          }
        }
      });
      return;
    }

    case ScatterStrategy::kPrivatized: {
      const index_t tiles = privatized_tile_count(nnz);
      const auto len = static_cast<std::size_t>(mode_len * rank);
      // `out` itself serves as tile 0 (already zeroed); the pool lends the
      // other tiles-1 buffers, unzeroed — each range zeroes its own prefix.
      ScratchPool::Lease lease = ScratchPool::global().acquire(
          static_cast<std::size_t>(tiles - 1), len);
      std::vector<real_t*> tile(static_cast<std::size_t>(tiles));
      tile[0] = out.data();
      for (index_t t = 1; t < tiles; ++t) {
        tile[static_cast<std::size_t>(t)] =
            lease.tile(static_cast<std::size_t>(t - 1));
      }
      const index_t chunk = (nnz + tiles - 1) / tiles;
      // One loop item per tile: tile t accumulates exactly the nonzeros of
      // its fixed range, serially in id order, whichever worker runs it.
      parallel_for(
          0, tiles,
          [&](index_t t) {
            real_t* dst = tile[static_cast<std::size_t>(t)];
            if (t > 0) std::fill_n(dst, len, real_t{0});
            thread_local std::vector<real_t> row;
            if (row.size() < static_cast<std::size_t>(rank)) {
              row.resize(static_cast<std::size_t>(rank));
            }
            const index_t lo = t * chunk;
            const index_t hi = std::min<index_t>(lo + chunk, nnz);
            for (index_t i = lo; i < hi; ++i) {
              const index_t out_row = contribute(i, row.data());
              for (index_t r = 0; r < rank; ++r) {
                dst[static_cast<std::size_t>(r * mode_len + out_row)] +=
                    row[static_cast<std::size_t>(r)];
              }
            }
          },
          /*grain=*/1);
      deterministic_tree_reduce(tile.data(), static_cast<std::size_t>(tiles),
                                static_cast<index_t>(len));
      return;
    }

    case ScatterStrategy::kSorted: {
      CSTF_CHECK(plan != nullptr);
      CSTF_CHECK(static_cast<index_t>(plan->order.size()) == nnz);
      const index_t segments = plan->num_segments();
      // Whole segments per loop item: each output row has exactly one owner,
      // so the writes are plain stores and the per-row accumulation order is
      // the plan's (fixed) order.
      parallel_for(
          0, segments,
          [&](index_t s) {
            thread_local std::vector<real_t> scratch;
            if (scratch.size() < 2 * static_cast<std::size_t>(rank)) {
              scratch.resize(2 * static_cast<std::size_t>(rank));
            }
            real_t* row = scratch.data();
            real_t* acc = scratch.data() + rank;
            std::fill_n(acc, static_cast<std::size_t>(rank), real_t{0});
            const index_t lo = plan->seg_ptr[static_cast<std::size_t>(s)];
            const index_t hi = plan->seg_ptr[static_cast<std::size_t>(s) + 1];
            for (index_t k = lo; k < hi; ++k) {
              const index_t i = plan->order[static_cast<std::size_t>(k)];
              contribute(i, row);
              for (index_t r = 0; r < rank; ++r) {
                acc[static_cast<std::size_t>(r)] +=
                    row[static_cast<std::size_t>(r)];
              }
            }
            const index_t out_row = plan->seg_row[static_cast<std::size_t>(s)];
            for (index_t r = 0; r < rank; ++r) {
              out(out_row, r) = acc[static_cast<std::size_t>(r)];
            }
          },
          /*grain=*/16);
      return;
    }

    case ScatterStrategy::kAuto:
      break;  // rejected by the entry check
  }
}

}  // namespace cstf
