// Dimension-tree MTTKRP reuse engine.
//
// Every AO outer iteration needs one MTTKRP per mode, and consecutive modes
// share most of their partial Khatri-Rao contractions. This engine caches the
// shared part as a single semi-sparse intermediate — the *prefix chain* —
// instead of recomputing it per mode:
//
//   P_k[i, :] = v_i ⊙ H_0[i_0, :] ⊙ ... ⊙ H_{k-1}[i_{k-1}, :]
//
// one rank-length row per nonzero, with the factors folded in ascending mode
// order. The tree is the degenerate caterpillar: node P_k has parent P_{k-1}
// and a single leaf child H_{k-1}. Mode n's MTTKRP is then derived from the
// nearest cached ancestor P_n by multiplying only the *suffix* factors
// H_{n+1} .. H_{N-1} into each chain row and scattering:
//
//   derive(n):  out[i_n, :] += P_n[i, :] ⊙ H_{n+1}[i_{n+1}, :] ⊙ ...
//   extend(n):  P_{n+1}[i, :] = P_n[i, :] ⊙ H_n[i_n, :]   (after mode n's
//               update+normalize, so the chain always holds current factors)
//
// Per AO iteration that is one extend per non-terminal mode plus suffix-only
// derives — for an order-N tensor the per-nonzero multiply count drops from
// N(N-1) to ~N(N+2)/2, and the gathers shrink the same way (derive(N-1)
// gathers nothing at all). The caterpillar shape is deliberate: the ascending
// left-fold is exactly `mttkrp_ref`'s product order, so with the sorted
// scatter strategy (per-row accumulation in ascending nonzero id) the derive
// is bit-identical to the reference. A balanced tree or a suffix cache would
// regroup the floating-point products and break that property.
//
// Memory: the chain is one nnz x R double buffer leased from ScratchPool
// (`chain_bytes()`); when it exceeds `budget_bytes` the engine releases it
// and every derive falls back to the flat from-raw path — correctness is
// unaffected, only the reuse is lost. Staleness: the chain is folded in
// place, so the buffer only ever holds its top level — when
// `note_factor_updated` / `invalidate` (or the fingerprint backstop) find
// any folded factor stale, the whole chain is dropped and rebuilt from the
// overwriting level-0 fold; there is no intermediate level to resume from.
// A per-level factor fingerprint (pointer + sampled content hash) catches
// callers that mutate a folded factor without telling us.
//
// Tree-vs-flat selection (`resolve_mttkrp_mode`) models one full AO
// iteration's MTTKRP sequence both ways with the simgpu roofline and picks
// the faster; see DESIGN.md §13 for when each side wins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "mttkrp/scatter.hpp"
#include "parallel/scratch_pool.hpp"
#include "simgpu/device.hpp"
#include "simgpu/device_spec.hpp"
#include "tensor/coo.hpp"

namespace cstf {

/// How the framework computes MTTKRPs: flat per-mode kernels, the
/// dimension-tree engine, or a per-tensor cost-model decision.
enum class MttkrpMode {
  kAuto,     ///< resolve_mttkrp_mode picks per (tensor, rank, order)
  kFlat,     ///< the existing per-mode kernels, no reuse
  kDimtree,  ///< prefix-chain reuse engine
};

/// Display name ("auto", "flat", "dimtree").
const char* mttkrp_mode_name(MttkrpMode mode);

/// Parses a mode name; returns false (leaving `out` untouched) on an
/// unknown name.
bool parse_mttkrp_mode(const std::string& name, MttkrpMode* out);

/// Default chain budget: matches FrameworkOptions::dimtree_budget_bytes.
inline constexpr double kDefaultDimtreeBudgetBytes = 256.0 * 1024.0 * 1024.0;

/// The engine. Owns a structure-of-arrays copy of the tensor's coordinates
/// (backends like BLCO do not keep the COO around) plus the chain lease and
/// its own per-mode sorted-scatter plan cache.
class DimTreeEngine {
 public:
  /// `x` must be validated; `rank` fixes the chain width for the engine's
  /// lifetime (one engine per factorization, like the scatter plan cache).
  DimTreeEngine(const SparseTensor& x, index_t rank,
                double budget_bytes = kDefaultDimtreeBudgetBytes);

  int num_modes() const { return static_cast<int>(dims_.size()); }
  index_t dim(int mode) const {
    return dims_[static_cast<std::size_t>(mode)];
  }
  index_t nnz() const { return nnz_; }
  index_t rank() const { return rank_; }

  /// Bytes of the nnz x R chain intermediate (the only tree node that is
  /// ever materialized). This is what `Plan::peak_bytes` accounts for.
  double chain_bytes() const {
    return static_cast<double>(nnz_) * static_cast<double>(rank_) *
           simgpu::kWord;
  }

  double budget_bytes() const { return budget_bytes_; }

  /// Shrinking the budget below chain_bytes() releases the chain
  /// immediately; subsequent derives run flat until the budget is raised.
  void set_budget_bytes(double bytes);

  /// False when the chain exceeds the budget (the engine is in flat
  /// fallback).
  bool chain_fits() const { return chain_bytes() <= budget_bytes_; }

  /// Number of leading factors currently folded into the chain (0 = empty).
  int level() const { return level_; }

  /// Drops the whole chain (all prefix levels).
  void invalidate();

  /// Factor `mode`'s contents changed. If it was folded (level() > mode)
  /// the whole chain is dropped: the in-place buffer holds only the top
  /// level, so a shorter prefix cannot be recovered — the next extend
  /// rebuilds from level 0. A no-op when the factor was not folded yet
  /// (the trainer's in-order sweep, where level() == mode at update time).
  void note_factor_updated(int mode);

  /// Folds factors[level()] .. factors[target_level - 1] into the chain.
  /// A target below the current level rebuilds from scratch (the start-of-
  /// iteration case: the chain is at N-1 from the previous sweep and mode 0
  /// restarts it). No-op when the chain is over budget.
  void extend_to(simgpu::Device& dev, const std::vector<Matrix>& factors,
                 int target_level);

  /// MTTKRP for `mode` into `out` (dim(mode) x rank). Derives from the
  /// chain when it fits the budget (lazily extending to level `mode` with
  /// the *current* factor contents — correct mid-AO, where modes < `mode`
  /// hold their updated values), otherwise computes flat from the raw
  /// nonzeros. Under opts.deterministic the scatter is forced to kSorted,
  /// the one strategy whose accumulation order matches `mttkrp_ref` —
  /// making the result bit-identical to the reference. Returns the scatter
  /// strategy used.
  ScatterStrategy mttkrp(simgpu::Device& dev,
                         const std::vector<Matrix>& factors, int mode,
                         Matrix& out, const ScatterOptions& opts = {});

  /// Streamed bytes charged when a derive has no prefix to reuse (mode 0,
  /// or the over-budget fallback) and the whole tensor is read once. The
  /// default is the raw COO footprint; backends that model a compressed
  /// resident tensor (BLCO) override it with their storage_bytes() so the
  /// tree's mode-0 term matches the flat kernel they replace.
  void set_flat_stream_bytes(double bytes) { flat_stream_bytes_ = bytes; }

  /// Per-nonzero multiply-add count of one full AO iteration, flat vs tree
  /// — the reuse factor `cstf_info --plan` reports.
  double flat_iteration_flops() const;
  double tree_iteration_flops() const;
  double reuse_factor() const {
    const double tree = tree_iteration_flops();
    return tree > 0.0 ? flat_iteration_flops() / tree : 1.0;
  }

  /// Modeled kernel sequence of one AO iteration's MTTKRPs through the
  /// tree: extend(0..N-2) interleaved with derive(0..N-1), with the scatter
  /// strategy resolved per mode. Used by resolve_mttkrp_mode and exposed
  /// for tests.
  std::vector<simgpu::KernelStats> tree_iteration_stats(
      const ScatterOptions& opts) const;

  /// The flat counterpart: one from-raw MTTKRP per mode.
  std::vector<simgpu::KernelStats> flat_iteration_stats(
      const ScatterOptions& opts) const;

  /// The engine's per-mode sorted-scatter plan cache — exposed so its
  /// hit/miss counters are observable (cstf_info, tuning telemetry).
  const ScatterPlanCache& scatter_plans() const { return plans_; }

 private:
  struct Fingerprint {
    const real_t* data = nullptr;
    std::uint64_t hash = 0;  // sampled content hash (O(1) probes, not full)
    bool matches(const Matrix& f) const;
  };

  void ensure_chain();
  void release_chain();
  /// Verifies the fingerprints of every folded level against the current
  /// factors; any mismatch drops the whole chain (the backstop behind
  /// note_factor_updated). Probabilistic: the hash samples O(1) entries
  /// per factor.
  void check_fingerprints(const std::vector<Matrix>& factors);
  void fold(simgpu::Device& dev, const Matrix& factor, int k);
  simgpu::KernelStats extend_stats(int k) const;
  simgpu::KernelStats derive_stats(int mode, ScatterStrategy strategy) const;
  simgpu::KernelStats flat_stats(int mode, ScatterStrategy strategy) const;
  const ScatterPlan& plan_for(int mode);

  std::vector<index_t> dims_;
  std::vector<std::vector<index_t>> idx_;  // per-mode coordinate arrays
  std::vector<real_t> values_;
  index_t nnz_ = 0;
  index_t rank_ = 0;
  double budget_bytes_ = kDefaultDimtreeBudgetBytes;
  double flat_stream_bytes_ = 0.0;

  // Chain state: `lease_` holds the nnz x R buffer (row i at chain_ + i*R),
  // `level_` the folded prefix length, `fps_[k]` the fingerprint of the
  // factor folded at level k.
  ScratchPool::Lease lease_;
  real_t* chain_ = nullptr;
  int level_ = 0;
  std::vector<Fingerprint> fps_;

  ScatterPlanCache plans_{"dimtree"};
};

/// Picks tree-vs-flat for one (tensor shape, rank) on `spec` by modeling a
/// full AO iteration's MTTKRP kernel sequence both ways (the engine's
/// *_iteration_stats) and comparing roofline totals. Returns kFlat whenever
/// the chain would exceed `budget_bytes` (the chain actually allocated, so
/// the budget check is always at in-memory size). `flat_stream_bytes` is
/// the resident tensor's streamed footprint (BLCO storage bytes for the GPU
/// backend); pass 0 for the raw COO footprint. `nnz_scale` scales the
/// extensive stats before modeling — benches pass the analog's scale factor
/// to ask what the full-size dataset would pick; the framework resolves the
/// tensor it actually holds with the default 1.
MttkrpMode resolve_mttkrp_mode(const SparseTensor& x, index_t rank,
                               const ScatterOptions& scatter,
                               const simgpu::DeviceSpec& spec,
                               double budget_bytes,
                               double flat_stream_bytes = 0.0,
                               double nnz_scale = 1.0);

/// Human-readable tree dump for `cstf_info --plan`: one line per node with
/// its shape and bytes, plus the reuse factor and budget verdict.
std::string describe_dimtree(const DimTreeEngine& engine);

}  // namespace cstf
