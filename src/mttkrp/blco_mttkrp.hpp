// BLCO MTTKRP — the simulated-GPU kernel (Nguyen et al. ICS'22 style).
//
// One thread block per BLCO block; threads stride over the block's nonzeros,
// unpack the delta-compressed coordinates, form the Khatri-Rao row on the
// fly, and scatter into the output. The launch is metered: the streamed
// bytes are the *compressed* tensor, and the factor-row gathers are charged
// as random traffic against a working set of the live factor matrices — the
// two quantities whose interplay produces the MTTKRP-vs-ADMM speedup
// trade-off of Figures 7–8.
//
// The output scatter goes through the adaptive scatter engine
// (mttkrp/scatter.hpp). Three device kernels exist:
//   mttkrp_blco         — atomic scatter (the original kernel), with the
//                         atomic-op counts feeding the contention model;
//   mttkrp_blco_priv    — grid of private output tiles, one per fixed BLCO
//                         block range, + a mttkrp_blco_reduce launch that
//                         tree-combines them (atomic-free, deterministic);
//   mttkrp_blco_sorted  — segment sweep over a row-bucketed plan, one owner
//                         per output row (atomic-free, deterministic).
#pragma once

#include <vector>

#include "formats/blco.hpp"
#include "la/matrix.hpp"
#include "mttkrp/scatter.hpp"
#include "simgpu/device.hpp"

namespace cstf {

/// MTTKRP for `mode` on the simulated device using atomic scatter (the
/// pre-engine behavior). `out` must be dims()[mode] x R.
void mttkrp_blco(simgpu::Device& dev, const BlcoTensor& blco,
                 const std::vector<Matrix>& factors, int mode, Matrix& out);

/// MTTKRP through the adaptive scatter engine; returns the concrete strategy
/// used. A null `plan` with the sorted strategy builds a one-shot plan.
ScatterStrategy mttkrp_blco(simgpu::Device& dev, const BlcoTensor& blco,
                            const std::vector<Matrix>& factors, int mode,
                            Matrix& out, const ScatterOptions& opts,
                            const ScatterPlan* plan = nullptr);

/// Builds the sorted-scatter plan for `mode` (bucket the delta-decoded
/// nonzeros by output row); reusable across iterations.
ScatterPlan blco_scatter_plan(const BlcoTensor& blco, int mode);

/// The KernelStats `mttkrp_blco` records for one call (exposed so benches
/// can rescale the traffic to full-size datasets before modeling time).
/// Describes the strategy-independent work; `apply_scatter_stats` adds the
/// per-strategy terms.
simgpu::KernelStats blco_mttkrp_stats(const BlcoTensor& blco,
                                      const std::vector<Matrix>& factors,
                                      int mode);

/// Out-of-memory streamed MTTKRP (the BLCO substrate paper's headline mode):
/// when the tensor exceeds `device_budget_bytes` of device memory (after the
/// resident factors), its blocks are processed in batches staged over the
/// host link, double-buffered so staging overlaps compute. Results are
/// identical to `mttkrp_blco`. Always uses atomic scatter: the private-tile
/// and plan structures would outlive the staged batches, defeating the
/// memory budget the mode exists to honor.
///
/// Two ways to model the staging:
///  * default `copy_stream` — each batch's compute span carries its own
///    host_link_bytes, and the cost model overlaps the two within the span
///    (the pre-stream behavior, unchanged);
///  * an explicit `copy_stream` — staging becomes its own spans on that
///    stream, with events expressing the two-buffer pipeline (compute of
///    batch i waits its staging; staging of batch i reuses the buffer of
///    batch i-2, so it waits that compute), and Device::modeled_time_s()
///    reports the pipeline's critical path.
///
/// Returns the number of batches used (1 == fully resident, no staging).
index_t mttkrp_blco_streamed(simgpu::Device& dev, const BlcoTensor& blco,
                             const std::vector<Matrix>& factors, int mode,
                             Matrix& out, double device_budget_bytes,
                             simgpu::Stream copy_stream = {});

}  // namespace cstf
