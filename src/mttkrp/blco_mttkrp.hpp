// BLCO MTTKRP — the simulated-GPU kernel (Nguyen et al. ICS'22 style).
//
// One thread block per BLCO block; threads stride over the block's nonzeros,
// unpack the delta-compressed coordinates, form the Khatri-Rao row on the
// fly, and scatter into the output with atomics. The launch is metered: the
// streamed bytes are the *compressed* tensor, and the factor-row gathers are
// charged as random traffic against a working set of the live factor
// matrices — the two quantities whose interplay produces the
// MTTKRP-vs-ADMM speedup trade-off of Figures 7–8.
#pragma once

#include <vector>

#include "formats/blco.hpp"
#include "la/matrix.hpp"
#include "simgpu/device.hpp"

namespace cstf {

/// MTTKRP for `mode` on the simulated device. `out` must be dims()[mode] x R.
void mttkrp_blco(simgpu::Device& dev, const BlcoTensor& blco,
                 const std::vector<Matrix>& factors, int mode, Matrix& out);

/// The KernelStats `mttkrp_blco` records for one call (exposed so benches
/// can rescale the traffic to full-size datasets before modeling time).
simgpu::KernelStats blco_mttkrp_stats(const BlcoTensor& blco,
                                      const std::vector<Matrix>& factors,
                                      int mode);

/// Out-of-memory streamed MTTKRP (the BLCO substrate paper's headline mode):
/// when the tensor exceeds `device_budget_bytes` of device memory (after the
/// resident factors), its blocks are processed in batches staged over the
/// host link, double-buffered so staging overlaps compute. Results are
/// identical to `mttkrp_blco`; the metered record adds the staging traffic,
/// and the per-batch time is modeled as max(compute, transfer).
///
/// Returns the number of batches used (1 == fully resident, no staging).
index_t mttkrp_blco_streamed(simgpu::Device& dev, const BlcoTensor& blco,
                             const std::vector<Matrix>& factors, int mode,
                             Matrix& out, double device_budget_bytes);

}  // namespace cstf
