// ALTO-format MTTKRP (the CPU kernel of the paper's modified PLANC baseline).
#pragma once

#include <vector>

#include "formats/alto.hpp"
#include "la/matrix.hpp"
#include "simgpu/counters.hpp"

namespace cstf {

/// MTTKRP over the linearized stream: one pass decodes each nonzero's
/// coordinates from its bit-packed lco and scatters into `out` with atomics.
/// A single ALTO copy serves every mode. `out` must be dims()[mode] x R.
void mttkrp_alto(const AltoTensor& alto, const std::vector<Matrix>& factors,
                 int mode, Matrix& out);

/// Cost-model statistics for one mttkrp_alto call: linearized stream read
/// once, factor gathers and the atomic output scatter charged as random
/// traffic.
simgpu::KernelStats alto_mttkrp_stats(const AltoTensor& alto,
                                      const std::vector<Matrix>& factors,
                                      int mode);

}  // namespace cstf
