// ALTO-format MTTKRP (the CPU kernel of the paper's modified PLANC baseline).
#pragma once

#include <vector>

#include "formats/alto.hpp"
#include "la/matrix.hpp"
#include "mttkrp/scatter.hpp"
#include "simgpu/counters.hpp"

namespace cstf {

/// MTTKRP over the linearized stream: one pass decodes each nonzero's
/// coordinates from its bit-packed lco and scatters into `out` with atomics.
/// A single ALTO copy serves every mode. `out` must be dims()[mode] x R.
void mttkrp_alto(const AltoTensor& alto, const std::vector<Matrix>& factors,
                 int mode, Matrix& out);

/// MTTKRP through the adaptive scatter engine; returns the concrete strategy
/// used. A null `plan` with the sorted strategy builds a one-shot plan.
ScatterStrategy mttkrp_alto(const AltoTensor& alto,
                            const std::vector<Matrix>& factors, int mode,
                            Matrix& out, const ScatterOptions& opts,
                            const ScatterPlan* plan = nullptr);

/// Builds the sorted-scatter plan for `mode` (bucket the linearized stream
/// by the mode's decoded coordinate); reusable across iterations.
ScatterPlan alto_scatter_plan(const AltoTensor& alto, int mode);

/// Cost-model statistics for one mttkrp_alto call: linearized stream read
/// once, factor gathers and the atomic output scatter charged as random
/// traffic. Describes the shared (strategy-independent) work; use
/// `apply_scatter_stats` to add the strategy-specific terms.
simgpu::KernelStats alto_mttkrp_stats(const AltoTensor& alto,
                                      const std::vector<Matrix>& factors,
                                      int mode);

}  // namespace cstf
