#include "streaming/streaming_cstf.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "la/blas.hpp"
#include "la/elementwise.hpp"
#include "simgpu/dblas.hpp"

namespace cstf {

namespace {

AdmmOptions admm_options(const StreamingOptions& o) {
  AdmmOptions a;
  a.prox = o.prox;
  a.inner_iterations = o.admm_inner_iterations;
  return a;
}

// The temporal row is a single rank-sized system whose matrix (the Hadamard
// of all Grams) is often ill-conditioned for coherent non-negative factors;
// solve it to convergence — it costs O(R^2) per inner iteration.
AdmmOptions temporal_options(const StreamingOptions& o) {
  AdmmOptions a;
  a.prox = o.prox;
  a.inner_iterations = 200;
  a.tolerance = 1e-12;
  return a;
}

// Weighted slice MTTKRP: out(i_m, :) += x * s .* prod_{k != m} H^k(i_k, :),
// where s is the slice's temporal row — the streaming analogue of the batch
// MTTKRP with the time factor contracted to a single row.
void slice_mttkrp(const SparseTensor& slice, const std::vector<Matrix>& factors,
                  const real_t* s_row, int mode, Matrix& out) {
  const int modes = slice.num_modes();
  const index_t rank = out.cols();
  out.set_all(0.0);
  std::vector<real_t> row(static_cast<std::size_t>(rank));
  for (index_t i = 0; i < slice.nnz(); ++i) {
    const real_t v = slice.values()[static_cast<std::size_t>(i)];
    for (index_t r = 0; r < rank; ++r) {
      row[static_cast<std::size_t>(r)] = v * s_row[r];
    }
    for (int m = 0; m < modes; ++m) {
      if (m == mode) continue;
      const Matrix& f = factors[static_cast<std::size_t>(m)];
      const index_t idx = slice.indices(m)[static_cast<std::size_t>(i)];
      for (index_t r = 0; r < rank; ++r) {
        row[static_cast<std::size_t>(r)] *= f(idx, r);
      }
    }
    const index_t out_row = slice.indices(mode)[static_cast<std::size_t>(i)];
    for (index_t r = 0; r < rank; ++r) {
      out(out_row, r) += row[static_cast<std::size_t>(r)];
    }
  }
}

}  // namespace

StreamingCstf::StreamingCstf(std::vector<index_t> nontemporal_dims,
                             StreamingOptions options)
    : options_(options),
      dims_(std::move(nontemporal_dims)),
      device_(options.device),
      factor_update_(admm_options(options)),
      temporal_update_(temporal_options(options)) {
  CSTF_CHECK(!dims_.empty());
  CSTF_CHECK(options_.rank >= 1);
  CSTF_CHECK(options_.forgetting > 0.0 && options_.forgetting <= 1.0);
  Rng rng(options_.seed);
  const index_t rank = options_.rank;
  for (index_t dim : dims_) {
    Matrix f(dim, rank);
    f.fill_uniform(rng, 0.0, 1.0);
    Matrix g(rank, rank);
    la::gram(f, g);
    factors_.push_back(std::move(f));
    grams_.push_back(std::move(g));
    p_accum_.emplace_back(dim, rank);
    q_accum_.emplace_back(rank, rank);
  }
  states_.assign(dims_.size(), ModeState{});
  if (options_.model_staging) {
    copy_stream_ = device_.create_stream("slice_copy");
  }
}

std::vector<real_t> StreamingCstf::ingest(const SparseTensor& slice) {
  const int modes = static_cast<int>(dims_.size());
  CSTF_CHECK_MSG(!poisoned_,
                 "streaming: a previous ingest failed mid-update; the "
                 "accumulators are inconsistent — rebuild the StreamingCstf");
  CSTF_CHECK_MSG(slice.num_modes() == modes,
                 "slice has " << slice.num_modes() << " modes, expected "
                              << modes);
  for (int m = 0; m < modes; ++m) {
    CSTF_CHECK_MSG(slice.dim(m) == dims_[static_cast<std::size_t>(m)],
                   "slice mode " << m << " dimension mismatch");
  }
  const index_t rank = options_.rank;

  // Every slice is a different tensor: plans cached for the previous slice
  // are stale (wrong permutation, wrong length). Invalidate before any mode
  // can consult the cache.
  plans_.clear();

  try {
    return ingest_impl(slice);
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

std::vector<real_t> StreamingCstf::ingest_impl(const SparseTensor& slice) {
  const int modes = static_cast<int>(dims_.size());
  const index_t rank = options_.rank;

  if (options_.model_staging) {
    // --- 0. Stage the arriving slice over the host link on the copy
    // stream, double-buffered: this slice's transfer lands in the buffer
    // slice t-2 computed from, so it waits on that compute, and all of this
    // slice's compute waits on the transfer. In steady state the transfer
    // hides behind the previous slice's ADMM work.
    device_.wait_event(copy_stream_, prev_prev_done_);
    simgpu::KernelStats stage;
    stage.host_link_bytes =
        static_cast<double>(slice.nnz()) *
        (static_cast<double>(modes) * sizeof(index_t) + sizeof(real_t));
    stage.launches = 1;
    device_.record("stream_stage_slice", stage, 0.0, copy_stream_);
    device_.wait_event(simgpu::Stream{}, device_.record_event(copy_stream_));
  }

  // --- 1. Temporal row: c_r = sum_nnz x * prod_m H^m(i_m, r), then a
  // rank-sized constrained LS against S = Hadamard of all Grams.
  Matrix c(1, rank);
  {
    std::vector<real_t> row(static_cast<std::size_t>(rank));
    for (index_t i = 0; i < slice.nnz(); ++i) {
      const real_t v = slice.values()[static_cast<std::size_t>(i)];
      for (index_t r = 0; r < rank; ++r) row[static_cast<std::size_t>(r)] = v;
      for (int m = 0; m < modes; ++m) {
        const Matrix& f = factors_[static_cast<std::size_t>(m)];
        const index_t idx = slice.indices(m)[static_cast<std::size_t>(i)];
        for (index_t r = 0; r < rank; ++r) {
          row[static_cast<std::size_t>(r)] *= f(idx, r);
        }
      }
      for (index_t r = 0; r < rank; ++r) c(0, r) += row[static_cast<std::size_t>(r)];
    }
    simgpu::KernelStats stats;
    stats.flops = static_cast<double>(slice.nnz() * rank * (modes + 1));
    stats.bytes_streamed = static_cast<double>(slice.nnz()) *
                           (static_cast<double>(modes) * sizeof(index_t) +
                            sizeof(real_t));
    stats.bytes_random = static_cast<double>(slice.nnz() * rank * modes) *
                         simgpu::kWord;
    stats.parallel_items = static_cast<double>(slice.nnz());
    device_.record("stream_slice_project", stats);
  }
  Matrix s_all(rank, rank);
  s_all.set_all(1.0);
  for (const Matrix& g : grams_) la::hadamard_inplace(s_all, g);

  Matrix s_row(1, rank);
  s_row.set_all(1.0 / static_cast<real_t>(rank));
  ModeState temporal_state;  // fresh duals: each time step is a new problem
  temporal_update_.update(device_, s_all, c, s_row, temporal_state);

  // Residual of this slice under the pre-update model (online anomaly
  // score): ||X_t - model_t||^2 = ||X_t||^2 - 2 s.c + s S s^T.
  {
    const real_t x_sq = slice.frobenius_norm_sq();
    real_t sc = 0.0, s_s_st = 0.0;
    for (index_t r = 0; r < rank; ++r) {
      sc += s_row(0, r) * c(0, r);
      for (index_t q = 0; q < rank; ++q) {
        s_s_st += s_row(0, r) * s_all(r, q) * s_row(0, q);
      }
    }
    const real_t residual_sq = std::max<real_t>(0.0, x_sq - 2.0 * sc + s_s_st);
    last_residual_ = x_sq > 0.0 ? std::sqrt(residual_sq / x_sq) : 0.0;
  }

  // --- 2. Fold the slice into the aged accumulators and refresh factors.
  const real_t mu = options_.forgetting;
  Matrix b;
  Matrix ssT(rank, rank);
  for (index_t r = 0; r < rank; ++r) {
    for (index_t q = 0; q < rank; ++q) {
      ssT(r, q) = s_row(0, r) * s_row(0, q);
    }
  }
  for (int m = 0; m < modes; ++m) {
    auto mi = static_cast<std::size_t>(m);
    Matrix& p = p_accum_[mi];
    Matrix& q = q_accum_[mi];

    if (!b.same_shape(p)) b.resize(p.rows(), p.cols());
    ScatterStrategy strategy = ScatterStrategy::kAuto;
    if (options_.use_scatter_engine) {
      // Streaming forces deterministic resolution: slice results must be
      // bit-identical to the serial reference so resumable/replayed streams
      // agree regardless of worker count.
      ScatterOptions scatter = options_.scatter;
      scatter.deterministic = true;
      strategy =
          resolve_scatter_strategy(scatter, b.rows(), rank, slice.nnz());
      const ScatterPlan* plan = nullptr;
      if (strategy == ScatterStrategy::kSorted) {
        plan = &plans_.get(m, [&] {
          return build_scatter_plan(slice.nnz(), [&](index_t i) {
            return slice.indices(m)[static_cast<std::size_t>(i)];
          });
        });
      }
      scatter_accumulate(
          strategy, b, slice.nnz(),
          [&](index_t i, real_t* row) {
            const real_t v = slice.values()[static_cast<std::size_t>(i)];
            for (index_t r = 0; r < rank; ++r) {
              row[static_cast<std::size_t>(r)] = v * s_row(0, r);
            }
            for (int k = 0; k < modes; ++k) {
              if (k == m) continue;
              const Matrix& f = factors_[static_cast<std::size_t>(k)];
              const index_t idx =
                  slice.indices(k)[static_cast<std::size_t>(i)];
              for (index_t r = 0; r < rank; ++r) {
                row[static_cast<std::size_t>(r)] *= f(idx, r);
              }
            }
            return slice.indices(m)[static_cast<std::size_t>(i)];
          },
          plan);
    } else {
      slice_mttkrp(slice, factors_, s_row.data(), m, b);
    }
    {
      simgpu::KernelStats stats;
      stats.flops = static_cast<double>(slice.nnz() * rank * (modes + 2));
      stats.bytes_random =
          static_cast<double>(slice.nnz() * rank * (modes + 1)) * simgpu::kWord;
      stats.parallel_items = static_cast<double>(slice.nnz());
      if (options_.use_scatter_engine) {
        apply_scatter_stats(stats, strategy, b.rows(), rank,
                            static_cast<double>(slice.nnz()));
      }
      device_.record("stream_slice_mttkrp", stats);
    }
    la::geam(la::Op::kNone, la::Op::kNone, mu, p, 1.0, b, p);

    Matrix q_inc(rank, rank);
    q_inc.set_all(1.0);
    for (int k = 0; k < modes; ++k) {
      if (k == m) continue;
      la::hadamard_inplace(q_inc, grams_[static_cast<std::size_t>(k)]);
    }
    la::hadamard_inplace(q_inc, ssT);
    la::geam(la::Op::kNone, la::Op::kNone, mu, q, 1.0, q_inc, q);

    factor_update_.update(device_, q, p, factors_[mi], states_[mi]);
    la::gram(factors_[mi], grams_[mi]);
  }

  if (options_.model_staging) {
    prev_prev_done_ = prev_done_;
    prev_done_ = device_.record_event();
  }

  // --- 3. Append the temporal row.
  std::vector<real_t> out(static_cast<std::size_t>(rank));
  for (index_t r = 0; r < rank; ++r) out[static_cast<std::size_t>(r)] = s_row(0, r);
  temporal_rows_.push_back(out);
  return out;
}

Matrix StreamingCstf::temporal() const {
  Matrix t(static_cast<index_t>(temporal_rows_.size()), options_.rank);
  for (std::size_t i = 0; i < temporal_rows_.size(); ++i) {
    for (index_t r = 0; r < options_.rank; ++r) {
      t(static_cast<index_t>(i), r) = temporal_rows_[i][static_cast<std::size_t>(r)];
    }
  }
  return t;
}

KTensor StreamingCstf::ktensor() const {
  KTensor kt;
  kt.factors = factors_;
  kt.factors.push_back(temporal());
  kt.lambda.assign(static_cast<std::size_t>(options_.rank), 1.0);
  return kt;
}

}  // namespace cstf
