#include "streaming/streaming_cstf.hpp"

#include <cmath>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "common/random.hpp"
#include "la/blas.hpp"
#include "la/elementwise.hpp"
#include "simgpu/dblas.hpp"

namespace cstf {

namespace {

AdmmOptions admm_options(const StreamingOptions& o) {
  AdmmOptions a;
  a.prox = o.prox;
  a.inner_iterations = o.admm_inner_iterations;
  return a;
}

// The temporal row is a single rank-sized system whose matrix (the Hadamard
// of all Grams) is often ill-conditioned for coherent non-negative factors;
// solve it to convergence — it costs O(R^2) per inner iteration.
AdmmOptions temporal_options(const StreamingOptions& o) {
  AdmmOptions a;
  a.prox = o.prox;
  a.inner_iterations = 200;
  a.tolerance = 1e-12;
  return a;
}

// Weighted slice MTTKRP: out(i_m, :) += x * s .* prod_{k != m} H^k(i_k, :),
// where s is the slice's temporal row — the streaming analogue of the batch
// MTTKRP with the time factor contracted to a single row.
void slice_mttkrp(const SparseTensor& slice, const std::vector<Matrix>& factors,
                  const real_t* s_row, int mode, Matrix& out) {
  const int modes = slice.num_modes();
  const index_t rank = out.cols();
  out.set_all(0.0);
  std::vector<real_t> row(static_cast<std::size_t>(rank));
  for (index_t i = 0; i < slice.nnz(); ++i) {
    const real_t v = slice.values()[static_cast<std::size_t>(i)];
    for (index_t r = 0; r < rank; ++r) {
      row[static_cast<std::size_t>(r)] = v * s_row[r];
    }
    for (int m = 0; m < modes; ++m) {
      if (m == mode) continue;
      const Matrix& f = factors[static_cast<std::size_t>(m)];
      const index_t idx = slice.indices(m)[static_cast<std::size_t>(i)];
      for (index_t r = 0; r < rank; ++r) {
        row[static_cast<std::size_t>(r)] *= f(idx, r);
      }
    }
    const index_t out_row = slice.indices(mode)[static_cast<std::size_t>(i)];
    for (index_t r = 0; r < rank; ++r) {
      out(out_row, r) += row[static_cast<std::size_t>(r)];
    }
  }
}

double slice_link_bytes(const SparseTensor& slice) {
  return static_cast<double>(slice.nnz()) *
         (static_cast<double>(slice.num_modes()) * sizeof(index_t) +
          sizeof(real_t));
}

}  // namespace

StreamingCstf::StreamingCstf(std::vector<index_t> nontemporal_dims,
                             StreamingOptions options)
    : options_(options),
      dims_(std::move(nontemporal_dims)),
      device_(options.device),
      factor_update_(admm_options(options)),
      temporal_update_(temporal_options(options)) {
  CSTF_CHECK(!dims_.empty());
  CSTF_CHECK(options_.rank >= 1);
  CSTF_CHECK(options_.forgetting > 0.0 && options_.forgetting <= 1.0);
  Rng rng(options_.seed);
  const index_t rank = options_.rank;
  for (index_t dim : dims_) {
    Matrix f(dim, rank);
    f.fill_uniform(rng, 0.0, 1.0);
    Matrix g(rank, rank);
    la::gram(f, g);
    factors_.push_back(std::move(f));
    grams_.push_back(std::move(g));
    p_accum_.emplace_back(dim, rank);
    q_accum_.emplace_back(rank, rank);
  }
  states_.assign(dims_.size(), ModeState{});
}

std::vector<real_t> StreamingCstf::ingest(const SparseTensor& slice) {
  const int modes = static_cast<int>(dims_.size());
  CSTF_CHECK_MSG(!poisoned_,
                 "streaming: a previous ingest failed mid-update; the "
                 "accumulators are inconsistent — rebuild the StreamingCstf");
  CSTF_CHECK_MSG(slice.num_modes() == modes,
                 "slice has " << slice.num_modes() << " modes, expected "
                              << modes);
  for (int m = 0; m < modes; ++m) {
    CSTF_CHECK_MSG(slice.dim(m) == dims_[static_cast<std::size_t>(m)],
                   "slice mode " << m << " dimension mismatch");
  }

  // Every slice is a different tensor: scatter plans cached for the previous
  // slice are stale (wrong permutation, wrong length). Invalidate before any
  // mode can consult the cache. (The compiled *execution* plan, by contrast,
  // is content-independent — it is keyed on the slice's nnz and reused while
  // the shape of the work stays the same.)
  plans_.clear();

  try {
    return ingest_impl(slice);
  } catch (...) {
    poisoned_ = true;
    throw;
  }
}

exec::PlanKey StreamingCstf::ingest_plan_key(const SparseTensor& slice) const {
  // The op bodies read the slice through the workspace, so the plan depends
  // only on the work's shape: nonzero count (span costs), dimensions, rank,
  // and the options that add/remove or re-route ops.
  DigestBuilder tensor_id;
  tensor_id.u64(static_cast<std::uint64_t>(slice.nnz()));
  for (index_t d : dims_) tensor_id.u64(static_cast<std::uint64_t>(d));
  DigestBuilder opts;
  opts.boolean(options_.model_staging)
      .boolean(options_.use_scatter_engine)
      .u64(static_cast<std::uint64_t>(options_.scatter.strategy))
      .boolean(options_.scatter.deterministic);
  exec::PlanKey key;
  key.tensor_id = tensor_id.value();
  key.rank = static_cast<std::uint64_t>(options_.rank);
  key.options_digest = opts.value();
  return key;
}

exec::Plan StreamingCstf::compile_ingest_plan(const SparseTensor& shape_slice) {
  StreamingCstf* self = this;
  const int modes = static_cast<int>(dims_.size());
  const index_t rank = options_.rank;

  exec::StreamingIngestSpec spec;
  spec.num_modes = modes;
  spec.rank = rank;
  spec.staging = options_.model_staging;
  spec.slice_bytes = slice_link_bytes(shape_slice);
  spec.mode_rows = dims_;

  if (options_.model_staging) {
    // Host-link transfer of the arriving slice on the copy lane. The plan's
    // stage op carries wait_external, so the executor first waits this lane
    // on the compute-done event of the slice whose buffer is being reused.
    spec.stage = [self](exec::ExecContext& ctx) {
      simgpu::KernelStats stage;
      stage.host_link_bytes = slice_link_bytes(*self->ws_.slice);
      stage.launches = 1;
      ctx.device.record("stream_stage_slice", stage, 0.0, ctx.stream);
    };
  }

  // Temporal row RHS: c_r = sum_nnz x * prod_m H^m(i_m, r).
  spec.temporal_project = [self, modes, rank](exec::ExecContext& ctx) {
    const SparseTensor& slice = *self->ws_.slice;
    Matrix& c = self->ws_.c;
    c.resize(1, rank);
    c.set_all(0.0);
    std::vector<real_t> row(static_cast<std::size_t>(rank));
    for (index_t i = 0; i < slice.nnz(); ++i) {
      const real_t v = slice.values()[static_cast<std::size_t>(i)];
      for (index_t r = 0; r < rank; ++r) row[static_cast<std::size_t>(r)] = v;
      for (int m = 0; m < modes; ++m) {
        const Matrix& f = self->factors_[static_cast<std::size_t>(m)];
        const index_t idx = slice.indices(m)[static_cast<std::size_t>(i)];
        for (index_t r = 0; r < rank; ++r) {
          row[static_cast<std::size_t>(r)] *= f(idx, r);
        }
      }
      for (index_t r = 0; r < rank; ++r) {
        c(0, r) += row[static_cast<std::size_t>(r)];
      }
    }
    simgpu::KernelStats stats;
    stats.flops = static_cast<double>(slice.nnz() * rank * (modes + 1));
    stats.bytes_streamed = slice_link_bytes(slice);
    stats.bytes_random =
        static_cast<double>(slice.nnz() * rank * modes) * simgpu::kWord;
    stats.parallel_items = static_cast<double>(slice.nnz());
    ctx.device.record("stream_slice_project", stats, 0.0, ctx.stream);
  };

  // Rank-sized constrained LS for the temporal row, then the pre-update
  // residual of the slice (online anomaly score) and s s^T for the Q folds.
  spec.temporal_solve = [self, rank](exec::ExecContext& ctx) {
    Matrix& s_all = self->ws_.s_all;
    s_all.resize(rank, rank);
    s_all.set_all(1.0);
    for (const Matrix& g : self->grams_) la::hadamard_inplace(s_all, g);

    Matrix& s_row = self->ws_.s_row;
    s_row.resize(1, rank);
    s_row.set_all(1.0 / static_cast<real_t>(rank));
    ModeState temporal_state;  // fresh duals: each time step is a new problem
    self->temporal_update_.update(ctx.device, s_all, self->ws_.c, s_row,
                                  temporal_state);

    // ||X_t - model_t||^2 = ||X_t||^2 - 2 s.c + s S s^T.
    const real_t x_sq = self->ws_.slice->frobenius_norm_sq();
    real_t sc = 0.0, s_s_st = 0.0;
    for (index_t r = 0; r < rank; ++r) {
      sc += s_row(0, r) * self->ws_.c(0, r);
      for (index_t q = 0; q < rank; ++q) {
        s_s_st += s_row(0, r) * s_all(r, q) * s_row(0, q);
      }
    }
    const real_t residual_sq = std::max<real_t>(0.0, x_sq - 2.0 * sc + s_s_st);
    self->last_residual_ = x_sq > 0.0 ? std::sqrt(residual_sq / x_sq) : 0.0;

    Matrix& ssT = self->ws_.ssT;
    ssT.resize(rank, rank);
    for (index_t r = 0; r < rank; ++r) {
      for (index_t q = 0; q < rank; ++q) {
        ssT(r, q) = s_row(0, r) * s_row(0, q);
      }
    }
  };

  // Weighted slice MTTKRP for one mode (scatter engine or serial reference).
  spec.mode_mttkrp = [self, modes, rank](exec::ExecContext& ctx, int m) {
    const SparseTensor& slice = *self->ws_.slice;
    const Matrix& p = self->p_accum_[static_cast<std::size_t>(m)];
    Matrix& b = self->ws_.b;
    if (!b.same_shape(p)) b.resize(p.rows(), p.cols());
    ScatterStrategy strategy = ScatterStrategy::kAuto;
    if (self->options_.use_scatter_engine) {
      // Streaming forces deterministic resolution: slice results must be
      // bit-identical to the serial reference so resumable/replayed streams
      // agree regardless of worker count.
      ScatterOptions scatter = self->options_.scatter;
      scatter.deterministic = true;
      strategy =
          resolve_scatter_strategy(scatter, b.rows(), rank, slice.nnz());
      const ScatterPlan* plan = nullptr;
      if (strategy == ScatterStrategy::kSorted) {
        plan = &self->plans_.get(m, [&] {
          return build_scatter_plan(slice.nnz(), [&](index_t i) {
            return slice.indices(m)[static_cast<std::size_t>(i)];
          });
        });
      }
      scatter_accumulate(
          strategy, b, slice.nnz(),
          [&](index_t i, real_t* row) {
            const real_t v = slice.values()[static_cast<std::size_t>(i)];
            for (index_t r = 0; r < rank; ++r) {
              row[static_cast<std::size_t>(r)] = v * self->ws_.s_row(0, r);
            }
            for (int k = 0; k < modes; ++k) {
              if (k == m) continue;
              const Matrix& f = self->factors_[static_cast<std::size_t>(k)];
              const index_t idx =
                  slice.indices(k)[static_cast<std::size_t>(i)];
              for (index_t r = 0; r < rank; ++r) {
                row[static_cast<std::size_t>(r)] *= f(idx, r);
              }
            }
            return slice.indices(m)[static_cast<std::size_t>(i)];
          },
          plan);
    } else {
      slice_mttkrp(slice, self->factors_, self->ws_.s_row.data(), m, b);
    }
    simgpu::KernelStats stats;
    stats.flops = static_cast<double>(slice.nnz() * rank * (modes + 2));
    stats.bytes_random =
        static_cast<double>(slice.nnz() * rank * (modes + 1)) * simgpu::kWord;
    stats.parallel_items = static_cast<double>(slice.nnz());
    if (self->options_.use_scatter_engine) {
      apply_scatter_stats(stats, strategy, b.rows(), rank,
                          static_cast<double>(slice.nnz()));
    }
    ctx.device.record("stream_slice_mttkrp", stats, 0.0, ctx.stream);
  };

  // Fold the slice into the exponentially aged accumulators:
  //   P^m <- mu P^m + B,   Q^m <- mu Q^m + (s s^T) .* prod_{k != m} G_k.
  spec.mode_fold = [self, modes, rank](exec::ExecContext&, int m) {
    const auto mi = static_cast<std::size_t>(m);
    const real_t mu = self->options_.forgetting;
    Matrix& p = self->p_accum_[mi];
    Matrix& q = self->q_accum_[mi];
    la::geam(la::Op::kNone, la::Op::kNone, mu, p, 1.0, self->ws_.b, p);
    Matrix q_inc(rank, rank);
    q_inc.set_all(1.0);
    for (int k = 0; k < modes; ++k) {
      if (k == m) continue;
      la::hadamard_inplace(q_inc, self->grams_[static_cast<std::size_t>(k)]);
    }
    la::hadamard_inplace(q_inc, self->ws_.ssT);
    la::geam(la::Op::kNone, la::Op::kNone, mu, q, 1.0, q_inc, q);
  };

  spec.mode_update = [self](exec::ExecContext& ctx, int m) {
    const auto mi = static_cast<std::size_t>(m);
    self->factor_update_.update(ctx.device, self->q_accum_[mi],
                                self->p_accum_[mi], self->factors_[mi],
                                self->states_[mi]);
  };

  spec.mode_gram = [self](exec::ExecContext&, int m) {
    const auto mi = static_cast<std::size_t>(m);
    la::gram(self->factors_[mi], self->grams_[mi]);
  };

  return exec::Planner::compile_streaming_ingest(spec);
}

void StreamingCstf::ensure_executor(const SparseTensor& slice) {
  std::shared_ptr<const exec::Plan> plan = exec_plans_.get(
      ingest_plan_key(slice), [&] { return compile_ingest_plan(slice); });
  if (executor_ == nullptr || &executor_->plan() != plan.get()) {
    executor_ = std::make_unique<exec::Executor>(device_, std::move(plan));
  }
}

std::vector<real_t> StreamingCstf::ingest_impl(const SparseTensor& slice) {
  const index_t rank = options_.rank;
  ensure_executor(slice);
  ws_.slice = &slice;

  // With staging, the plan's stage op double-buffers against the compute of
  // slice t-2: its transfer waits on prev_prev_done_ (the executor's external
  // event), and everything downstream waits on the transfer via the plan's
  // stage -> project event edge.
  executor_->run(/*observer=*/nullptr,
                 options_.model_staging ? &prev_prev_done_ : nullptr);

  if (options_.model_staging) {
    prev_prev_done_ = prev_done_;
    prev_done_ = device_.record_event();
  }

  // Append the temporal row.
  std::vector<real_t> out(static_cast<std::size_t>(rank));
  for (index_t r = 0; r < rank; ++r) {
    out[static_cast<std::size_t>(r)] = ws_.s_row(0, r);
  }
  temporal_rows_.push_back(out);
  return out;
}

Matrix StreamingCstf::temporal() const {
  Matrix t(static_cast<index_t>(temporal_rows_.size()), options_.rank);
  for (std::size_t i = 0; i < temporal_rows_.size(); ++i) {
    for (index_t r = 0; r < options_.rank; ++r) {
      t(static_cast<index_t>(i), r) = temporal_rows_[i][static_cast<std::size_t>(r)];
    }
  }
  return t;
}

KTensor StreamingCstf::ktensor() const {
  KTensor kt;
  kt.factors = factors_;
  kt.factors.push_back(temporal());
  kt.lambda.assign(static_cast<std::size_t>(options_.rank), 1.0);
  return kt;
}

}  // namespace cstf
