// Streaming constrained sparse CP factorization — the spCP-stream-style
// extension (Soh et al., IPDPS'21 [33]) of the batch framework: tensors
// whose final mode is time, processed one time-slice at a time in bounded
// memory.
//
// Per arriving slice X_t (an (N-1)-mode sparse tensor):
//  1. the new temporal row s_t is solved from the current factors
//     (a rank-sized constrained least-squares via ADMM);
//  2. the non-temporal normal equations are folded into exponentially
//     aged accumulators,
//       P^m <- mu * P^m + MTTKRP_m(X_t; {H}, s_t)
//       Q^m <- mu * Q^m + (s_t s_t^T) .* prod_{k != m} G_k
//     and each factor is refreshed with the same constrained ADMM update
//     the batch framework uses (warm-started duals);
//  3. s_t is appended to the temporal factor.
// A forgetting factor mu < 1 makes the model track non-stationary data.
#pragma once

#include <memory>
#include <vector>

#include "cstf/ktensor.hpp"
#include "exec/executor.hpp"
#include "exec/planner.hpp"
#include "mttkrp/scatter.hpp"
#include "simgpu/device.hpp"
#include "tensor/coo.hpp"
#include "updates/admm.hpp"

namespace cstf {

struct StreamingOptions {
  index_t rank = 8;

  /// Exponential aging of the accumulated statistics; 1.0 = remember
  /// everything (converges to the batch solution on stationary data),
  /// smaller values track drift.
  real_t forgetting = 1.0;

  int admm_inner_iterations = 10;
  Proximity prox = Proximity::non_negative();
  std::uint64_t seed = 42;
  simgpu::DeviceSpec device = simgpu::a100();

  /// Model the host->device staging of each arriving slice as spans on a
  /// copy stream, double-buffered against the previous slice's ADMM compute
  /// (staging of slice t reuses the buffer slice t-2 computed from). Off by
  /// default: staging is not modeled, matching the pre-stream behavior.
  bool model_staging = false;

  /// Route the per-slice weighted MTTKRP through the adaptive scatter engine
  /// (mttkrp/scatter.hpp) instead of the serial reference loop. Streaming
  /// always resolves with `deterministic` forced on, so per-slice results
  /// are bit-identical to the serial reference regardless of worker count.
  bool use_scatter_engine = true;

  /// Scatter configuration for the engine path (strategy/budget knobs;
  /// `deterministic` is overridden to true as described above).
  ScatterOptions scatter;
};

class StreamingCstf {
 public:
  /// `nontemporal_dims` are the slice dimensions (the tensor's modes minus
  /// the trailing time mode).
  StreamingCstf(std::vector<index_t> nontemporal_dims,
                StreamingOptions options);

  /// Processes one time slice; returns the new temporal row (length rank()).
  /// The slice must have the non-temporal mode count and dimensions.
  std::vector<real_t> ingest(const SparseTensor& slice);

  index_t rank() const { return options_.rank; }
  int num_slices() const { return static_cast<int>(temporal_rows_.size()); }

  /// Non-temporal factor matrices (indexed by slice mode).
  const std::vector<Matrix>& factors() const { return factors_; }

  /// Temporal factor accumulated so far (num_slices() x rank).
  Matrix temporal() const;

  /// The full model over everything ingested so far: factors() plus the
  /// temporal factor as the final mode (lambda = 1).
  KTensor ktensor() const;

  /// Reconstruction error of one slice against the model *before* it was
  /// ingested is returned by ingest via last_slice_residual(); useful for
  /// online anomaly scoring.
  real_t last_slice_residual() const { return last_residual_; }

  simgpu::Device& device() { return device_; }

  /// Compiled ingest-plan cache: keyed by (slice nnz, rank, options digest),
  /// so a same-shape slice reuses the compiled plan and an nnz change
  /// recompiles — its hit/miss counters back the invalidation tests.
  const exec::PlanCache& plan_cache() const { return exec_plans_; }

 private:
  std::vector<real_t> ingest_impl(const SparseTensor& slice);
  void ensure_executor(const SparseTensor& slice);
  exec::PlanKey ingest_plan_key(const SparseTensor& slice) const;
  exec::Plan compile_ingest_plan(const SparseTensor& slice);

  StreamingOptions options_;
  std::vector<index_t> dims_;
  simgpu::Device device_;
  AdmmUpdate factor_update_;
  AdmmUpdate temporal_update_;

  std::vector<Matrix> factors_;   // H^m, I_m x R
  std::vector<Matrix> grams_;     // G_m = H^m^T H^m
  std::vector<Matrix> p_accum_;   // P^m, I_m x R
  std::vector<Matrix> q_accum_;   // Q^m, R x R
  std::vector<ModeState> states_;
  std::vector<std::vector<real_t>> temporal_rows_;
  real_t last_residual_ = 0.0;

  // Sorted-scatter plans for the CURRENT slice only; ingest() clears the
  // cache up front because each slice is a different nonzero set (a stale
  // plan would permute the wrong nonzeros, or trip the engine's size check).
  ScatterPlanCache plans_;

  // Set when an ingest() threw mid-update (e.g. an injected device fault):
  // the accumulators may hold a half-applied slice, so further ingests
  // refuse rather than silently diverge.
  bool poisoned_ = false;

  // Plan op bodies reach the arriving slice and the per-slice temporaries
  // through `this` plus this workspace; every field is fully overwritten
  // before it is read, so reuse across slices is safe.
  struct IngestWorkspace {
    const SparseTensor* slice = nullptr;
    Matrix c;      // temporal RHS (1 x R)
    Matrix s_all;  // Hadamard of all Grams
    Matrix s_row;  // solved temporal row (1 x R)
    Matrix ssT;    // s_row^T s_row
    Matrix b;      // per-mode weighted MTTKRP output
  };
  IngestWorkspace ws_;

  exec::PlanCache exec_plans_;
  std::unique_ptr<exec::Executor> executor_;

  // Staging pipeline state (model_staging): the compute completion events of
  // the two most recent slices (two staging buffers); the copy lane itself
  // belongs to the compiled plan's executor.
  simgpu::Event prev_done_;
  simgpu::Event prev_prev_done_;
};

}  // namespace cstf
