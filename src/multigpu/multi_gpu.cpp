#include "multigpu/multi_gpu.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "exec/executor.hpp"
#include "exec/planner.hpp"
#include "mttkrp/blco_mttkrp.hpp"
#include "parallel/parallel_for.hpp"
#include "perfmodel/admm_model.hpp"

namespace cstf {

double allreduce_time(const MultiGpuOptions& options, double bytes) {
  const auto ranks = static_cast<double>(options.num_devices);
  if (ranks <= 1.0 || bytes <= 0.0) return 0.0;
  const double payload = 2.0 * (ranks - 1.0) / ranks * bytes;
  return payload / options.interconnect_bandwidth +
         2.0 * (ranks - 1.0) * options.interconnect_latency;
}

MultiGpuCstf::MultiGpuCstf(const SparseTensor& tensor, MultiGpuOptions options)
    : options_(options), dims_(tensor.dims()) {
  CSTF_CHECK(options_.num_devices >= 1);
  CSTF_CHECK(tensor.nnz() >= options_.num_devices);

  // Slice the sorted nonzero stream into contiguous shards.
  SparseTensor sorted = tensor;
  sorted.sort_by_mode(0);
  const index_t n = sorted.nnz();
  const index_t per_shard =
      (n + options_.num_devices - 1) / options_.num_devices;
  for (int d = 0; d < options_.num_devices; ++d) {
    const index_t lo = static_cast<index_t>(d) * per_shard;
    const index_t hi = std::min<index_t>(lo + per_shard, n);
    if (lo >= hi) break;
    SparseTensor shard(dims_);
    shard.reserve(hi - lo);
    index_t coords[kMaxModes];
    for (index_t i = lo; i < hi; ++i) {
      for (int m = 0; m < shard.num_modes(); ++m) {
        coords[m] = sorted.indices(m)[static_cast<std::size_t>(i)];
      }
      shard.append(coords, sorted.values()[static_cast<std::size_t>(i)]);
    }
    shards_.push_back(
        std::make_unique<BlcoTensor>(shard, options_.blco_block_capacity));
    devices_.push_back(std::make_unique<simgpu::Device>(options_.device));
  }
}

void MultiGpuCstf::mttkrp(const std::vector<Matrix>& factors, int mode,
                          Matrix& out) {
  CSTF_CHECK(mode >= 0 && mode < num_modes());
  const index_t rank = factors[0].cols();
  CSTF_CHECK(out.rows() == dims_[static_cast<std::size_t>(mode)] &&
             out.cols() == rank);

  std::vector<Matrix> partials(shards_.size());
  for (std::size_t d = 0; d < shards_.size(); ++d) {
    devices_[d]->reset();
    partials[d].resize(out.rows(), out.cols());
    mttkrp_blco(*devices_[d], *shards_[d], factors, mode, partials[d]);
  }
  // Host-side reduction stands in for the ring all-reduce (whose cost the
  // model charges in modeled_mttkrp_time).
  out.set_all(0.0);
  real_t* po = out.data();
  parallel_for_blocked(0, out.size(), [&](index_t lo, index_t hi) {
    for (const Matrix& partial : partials) {
      const real_t* pp = partial.data();
      for (index_t i = lo; i < hi; ++i) po[i] += pp[i];
    }
  });
}

double MultiGpuCstf::modeled_mttkrp_time(int mode, index_t rank,
                                         double nnz_scale,
                                         double dim_scale) const {
  double slowest = 0.0;
  for (const auto& dev : devices_) {
    slowest = std::max(slowest,
                       perfmodel::modeled_time_scaled(*dev, nnz_scale));
  }
  const double reduce_bytes = static_cast<double>(
                                  dims_[static_cast<std::size_t>(mode)]) *
                              static_cast<double>(rank) * simgpu::kWord *
                              dim_scale;
  return slowest + allreduce_time(options_, reduce_bytes);
}

double MultiGpuCstf::modeled_mttkrp_time_overlapped(int mode, index_t rank,
                                                    double nnz_scale,
                                                    double dim_scale,
                                                    int chunks,
                                                    int* chunks_used) const {
  // Per-shard compute times at full scale (the same numbers the serial
  // model maxes over).
  std::vector<double> shard_s;
  shard_s.reserve(devices_.size());
  for (const auto& dev : devices_) {
    shard_s.push_back(perfmodel::modeled_time_scaled(*dev, nnz_scale));
  }
  const double reduce_bytes = static_cast<double>(
                                  dims_[static_cast<std::size_t>(mode)]) *
                              static_cast<double>(rank) * simgpu::kWord *
                              dim_scale;

  // Compiles one candidate chunking into an execution plan (device lanes
  // carry fixed compute spans — externally modeled, so they don't contend
  // for the scratch device's bandwidth — and the all-reduce of chunk i
  // depends on every lane's chunk i) and replays it on a scratch timeline.
  const auto makespan_for = [&](int c) {
    exec::ChunkedAllReduceSpec spec;
    spec.shard_compute_s = shard_s;
    spec.chunks = c;
    spec.chunk_comm_s =
        allreduce_time(options_, reduce_bytes / static_cast<double>(c));
    simgpu::Device timeline(options_.device);
    exec::Executor executor(
        timeline, std::make_shared<const exec::Plan>(
                      exec::Planner::compile_chunked_allreduce(spec)));
    executor.run();
    return timeline.modeled_makespan_s();
  };

  if (chunks > 0) {
    if (chunks_used != nullptr) *chunks_used = chunks;
    return makespan_for(chunks);
  }
  double best = 0.0;
  int best_c = 1;
  for (const int c : {1, 2, 4, 8, 16, 32}) {
    const double t = makespan_for(c);
    if (c == 1 || t < best) {
      best = t;
      best_c = c;
    }
  }
  if (chunks_used != nullptr) *chunks_used = best_c;
  return best;
}

}  // namespace cstf
