// Multi-GPU cSTF — the paper's stated future work ("extend our framework to
// support multi-GPU and distributed-memory computation"), built on the same
// simulated-device substrate.
//
// Decomposition (the standard medium-grained scheme for CPD):
//  * The nonzero stream is split into `num_devices` contiguous slices of the
//    linearized (ALTO-sorted) order; each device holds one BLCO tensor.
//  * Factor matrices are replicated on every device.
//  * Per mode: each device computes a *partial* MTTKRP over its slice; the
//    partial outputs are combined with a ring all-reduce over the GPU
//    interconnect; every device then runs the (identical, deterministic)
//    factor update redundantly — compute is cheaper than communicating H.
//
// The kernels execute for real (the partial outputs are summed on the host,
// so results are exact and testable); each device meters its own work, and
// modeled iteration time is max-over-devices plus the all-reduce.
#pragma once

#include <memory>
#include <vector>

#include "cstf/backend.hpp"
#include "formats/blco.hpp"
#include "simgpu/device.hpp"
#include "updates/update_method.hpp"

namespace cstf {

struct MultiGpuOptions {
  int num_devices = 4;
  simgpu::DeviceSpec device = simgpu::a100();
  /// Per-link GPU-to-GPU bandwidth (NVLink3 ~ 300 GB/s per direction).
  double interconnect_bandwidth = 300e9;
  double interconnect_latency = 5e-6;
  index_t blco_block_capacity = 4096;
};

/// Ring all-reduce time for `bytes` per rank across `ranks` devices:
/// 2*(ranks-1)/ranks of the payload crosses each link, in 2*(ranks-1) steps.
double allreduce_time(const MultiGpuOptions& options, double bytes);

class MultiGpuCstf {
 public:
  MultiGpuCstf(const SparseTensor& tensor, MultiGpuOptions options);

  int num_devices() const { return static_cast<int>(shards_.size()); }
  int num_modes() const { return static_cast<int>(dims_.size()); }
  const std::vector<index_t>& dims() const { return dims_; }

  /// Nonzeros held by one device's shard.
  index_t shard_nnz(int device) const {
    return shards_[static_cast<std::size_t>(device)]->nnz();
  }

  /// Exact multi-device MTTKRP: every shard computes its partial result and
  /// the partials are reduced into `out`. Each shard's work is metered on
  /// its own Device; `out` equals the single-device result bit-for-bit up to
  /// floating-point addition order.
  void mttkrp(const std::vector<Matrix>& factors, int mode, Matrix& out);

  /// Modeled time of the last mttkrp() call for `mode`: slowest shard plus
  /// the all-reduce of the I_mode x R partial output. `scale` rescales the
  /// metered shard statistics (dataset-analog upscaling), and the reduced
  /// bytes are scaled by `dim_scale` of the output mode.
  double modeled_mttkrp_time(int mode, index_t rank, double nnz_scale,
                             double dim_scale) const;

  /// Overlapped variant (the AMPED-style schedule): each shard's MTTKRP is
  /// split into `chunks` pieces on its own stream, and the all-reduce of
  /// chunk i runs on a communication stream as soon as every device has
  /// finished its chunk i — so communication hides behind the remaining
  /// compute. Modeled on a stream timeline with event edges; `chunks == 0`
  /// picks the chunk count with the smallest makespan (chunking shrinks the
  /// exposed all-reduce tail but multiplies its latency steps, so more is
  /// not always better). Chunk count 1 degenerates to the serial
  /// modeled_mttkrp_time exactly, hence the result never exceeds it.
  double modeled_mttkrp_time_overlapped(int mode, index_t rank,
                                        double nnz_scale, double dim_scale,
                                        int chunks = 0,
                                        int* chunks_used = nullptr) const;

  /// Per-device meters (index by device id).
  simgpu::Device& device(int d) { return *devices_[static_cast<std::size_t>(d)]; }

  const MultiGpuOptions& options() const { return options_; }

 private:
  MultiGpuOptions options_;
  std::vector<index_t> dims_;
  std::vector<std::unique_ptr<BlcoTensor>> shards_;
  std::vector<std::unique_ptr<simgpu::Device>> devices_;
  mutable std::vector<double> last_shard_times_;  // per device, unscaled
};

}  // namespace cstf
