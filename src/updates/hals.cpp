#include "updates/hals.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "simgpu/launch.hpp"

namespace cstf {

void HalsUpdate::update(simgpu::Device& dev, const Matrix& s, const Matrix& m,
                        Matrix& h, ModeState& /*state*/) const {
  const index_t rank = h.cols();
  CSTF_CHECK(s.rows() == rank && s.cols() == rank);
  CSTF_CHECK(m.same_shape(h));
  const index_t rows = h.rows();
  const real_t eps = options_.epsilon;

  for (int iter = 0; iter < options_.inner_iterations; ++iter) {
    for (index_t r = 0; r < rank; ++r) {
      const real_t srr = std::max(s(r, r), real_t{1e-12});
      // One fused kernel per column: the row-local dot product H(i,:)*S(:,r)
      // and the clamped update, in a single pass over H.
      simgpu::KernelStats stats;
      stats.flops = static_cast<double>(rows) * (2.0 * static_cast<double>(rank) + 3.0);
      // Reads the full H (for the dot) + M column; writes the H column.
      stats.bytes_reused =
          static_cast<double>(rows * rank) * simgpu::kWord;  // H re-read per column
      stats.working_set_bytes = static_cast<double>(h.size()) * simgpu::kWord;
      stats.bytes_streamed = 2.0 * static_cast<double>(rows) * simgpu::kWord;
      stats.parallel_items = static_cast<double>(rows);
      const real_t* sr = s.col(r);
      const real_t* mr = m.col(r);
      real_t* hr = h.col(r);
      simgpu::launch(
          dev, "hals_column",
          simgpu::LaunchConfig{.grid_dim = simgpu::blocks_for(rows, 256, 2048),
                               .block_dim = 256},
          stats, [&](const simgpu::KernelCtx& ctx) {
            for (index_t i = ctx.global_thread_id(); i < rows;
                 i += ctx.total_threads()) {
              real_t dot = 0.0;
              for (index_t k = 0; k < rank; ++k) dot += h(i, k) * sr[k];
              hr[i] = std::max(eps, hr[i] + (mr[i] - dot) / srr);
            }
          });
    }
  }
}

}  // namespace cstf
