#include "updates/mu.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "simgpu/dblas.hpp"
#include "simgpu/launch.hpp"

namespace cstf {

void MuUpdate::update(simgpu::Device& dev, const Matrix& s, const Matrix& m,
                      Matrix& h, ModeState& state) const {
  CSTF_CHECK(s.rows() == h.cols() && s.cols() == h.cols());
  CSTF_CHECK(m.same_shape(h));
  if (!state.scratch.same_shape(h)) state.scratch.resize(h.rows(), h.cols());
  Matrix& denom = state.scratch;

  const index_t n = h.size();
  const real_t eps = options_.epsilon;
  for (int iter = 0; iter < options_.inner_iterations; ++iter) {
    // denom = H * S.
    simgpu::dgemm(dev, la::Op::kNone, la::Op::kNone, 1.0, h, s, 0.0, denom);

    // Fused elementwise H = H .* M ./ max(denom, eps): 3 reads + 1 write.
    simgpu::KernelStats stats;
    stats.flops = 2.0 * static_cast<double>(n);
    stats.bytes_streamed = 4.0 * static_cast<double>(n) * simgpu::kWord;
    stats.parallel_items = static_cast<double>(n);
    real_t* ph = h.data();
    const real_t* pm = m.data();
    const real_t* pd = denom.data();
    simgpu::launch(
        dev, "mu_elementwise",
        simgpu::LaunchConfig{.grid_dim = simgpu::blocks_for(n, 256, 2048),
                             .block_dim = 256},
        stats, [&](const simgpu::KernelCtx& ctx) {
          for (index_t i = ctx.global_thread_id(); i < n;
               i += ctx.total_threads()) {
            ph[i] = ph[i] * pm[i] / std::max(pd[i], eps);
          }
        });
  }
}

}  // namespace cstf
