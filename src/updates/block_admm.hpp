// Blocked AO-ADMM — the CPU-optimized variant of Smith, Beri & Karypis
// (ICPP'17), which the SPLATT library implements and the paper benchmarks
// against (Section 5.3).
//
// Factor rows are partitioned into cache-sized blocks; each block runs its
// own complete ADMM inner loop (with its own convergence test) before the
// next block is touched. Because the row system is separable given S, this
// is exact, and it converts the update's memory traffic from I-sized streams
// into block-sized working sets that stay resident in CPU caches. The paper
// notes this blockwise structure is precisely what does NOT map well to GPUs
// (Section 4.2) — which is why it lives here as the CPU baseline rather than
// inside cuADMM.
#pragma once

#include "updates/prox.hpp"
#include "updates/update_method.hpp"

namespace cstf {

struct BlockAdmmOptions {
  Proximity prox = Proximity::non_negative();

  /// Rows per block. 1024 rows x 32 cols x 4 live matrices x 8 B = 1 MiB,
  /// comfortably inside a per-core L2 slice.
  index_t block_rows = 1024;

  /// Inner iterations per block (the paper's fixed budget).
  int inner_iterations = 10;

  /// Per-block early exit on residual ratios; 0 disables (fixed-cost runs).
  real_t tolerance = 0.0;
};

class BlockAdmmUpdate final : public UpdateMethod {
 public:
  explicit BlockAdmmUpdate(BlockAdmmOptions options) : options_(options) {}

  std::string name() const override { return "BlockADMM(" + options_.prox.name() + ")"; }
  const BlockAdmmOptions& options() const { return options_; }

  void update(simgpu::Device& dev, const Matrix& s, const Matrix& m, Matrix& h,
              ModeState& state) const override;

 private:
  BlockAdmmOptions options_;
};

}  // namespace cstf
