#include "updates/admm.hpp"

#include <cmath>

#include "common/error.hpp"
#include "la/cholesky.hpp"
#include "simgpu/dblas.hpp"

namespace cstf {

AdmmGram prepare_admm_gram(const Matrix& s, bool preinvert) {
  const index_t rank = s.rows();
  CSTF_CHECK(s.cols() == rank && rank > 0);
  AdmmGram gram;
  // rho <- trace(S)/R (Algorithm 2 line 2), with the same degenerate
  // all-zero-factor clamp as update() so both paths see identical systems.
  for (index_t r = 0; r < rank; ++r) gram.rho += s(r, r);
  gram.rho /= static_cast<real_t>(rank);
  if (gram.rho <= 0.0) gram.rho = 1.0;
  Matrix s_loaded = s;
  la::add_diagonal(s_loaded, gram.rho);
  la::cholesky_factor(s_loaded, gram.l);
  if (preinvert) la::cholesky_invert(gram.l, gram.inverse);
  return gram;
}

std::string AdmmUpdate::name() const {
  std::string n = "ADMM(";
  n += options_.prox.name();
  if (options_.operation_fusion) n += ",OF";
  if (options_.preinversion) n += ",PI";
  n += ")";
  return n;
}

void AdmmUpdate::update(simgpu::Device& dev, const Matrix& s, const Matrix& m,
                        Matrix& h, ModeState& state) const {
  const index_t rank = s.rows();
  CSTF_CHECK(s.cols() == rank);
  CSTF_CHECK(m.cols() == rank && h.cols() == rank && m.rows() == h.rows());

  // rho <- trace(S)/R (Algorithm 2 line 2). The degenerate all-zero-factor
  // fallback is clamped here (and in prepare_admm_gram) so the fused kernels
  // and the unfused BLAS chain see the identical rho (> 0); the kernels
  // assert it.
  AdmmGram gram;
  for (index_t r = 0; r < rank; ++r) gram.rho += s(r, r);
  gram.rho /= static_cast<real_t>(rank);
  if (gram.rho <= 0.0) gram.rho = 1.0;

  // Factor S + rho*I once per update (line 3); reused by every inner
  // iteration.
  Matrix s_loaded = s;
  la::add_diagonal(s_loaded, gram.rho);
  simgpu::dpotrf(dev, s_loaded, gram.l, options_.stream);
  if (options_.preinversion) {
    simgpu::dpotri(dev, gram.l, gram.inverse,
                   options_.stream);  // Algorithm 3 line 4
  }
  update_with_gram(dev, gram, m, h, state);
}

void AdmmUpdate::update_with_gram(simgpu::Device& dev, const AdmmGram& gram,
                                  const Matrix& m, Matrix& h,
                                  ModeState& state) const {
  const index_t rank = gram.l.rows();
  const real_t rho = gram.rho;
  CSTF_CHECK_MSG(rho > 0.0, "AdmmGram not prepared (rho=" << rho << ")");
  CSTF_CHECK(m.cols() == rank && h.cols() == rank && m.rows() == h.rows());
  CSTF_CHECK_MSG(gram.preinverted() == options_.preinversion,
                 "AdmmGram pre-inversion does not match AdmmOptions");
  const Matrix& l = gram.l;
  const Matrix& inverse = gram.inverse;

  // Persistent dual + scratch, lazily sized.
  if (!state.dual.same_shape(h)) state.dual.resize(h.rows(), h.cols());
  if (!state.aux.same_shape(h)) state.aux.resize(h.rows(), h.cols());
  if (!state.scratch.same_shape(h)) state.scratch.resize(h.rows(), h.cols());
  Matrix& u = state.dual;
  Matrix& htilde = state.aux;
  Matrix& t = state.scratch;

  const real_t inv_rho = 1.0 / rho;
  last_ = AdmmDiagnostics{};
  last_.rho = rho;

  for (int iter = 0; iter < options_.inner_iterations; ++iter) {
    real_t delta_h_sq = 0.0;  // ||H_new - H_old||^2 (dual residual numerator)
    real_t primal_sq = 0.0, h_sq = 0.0, u_sq = 0.0;

    if (options_.operation_fusion) {
      // --- Fused path (Algorithm 3 lines 6-9) ---
      kernel_compute_auxiliary(dev, m, h, u, rho, t, options_.stream);
      if (options_.preinversion) {
        simgpu::dgemm(dev, la::Op::kNone, la::Op::kNone, 1.0, t, inverse, 0.0,
                      htilde, options_.stream);  // line 7: one DGEMM
      } else {
        simgpu::dpotrs_right(dev, l, t, options_.stream);  // two triangular solves
        std::swap(htilde, t);
      }
      if (options_.prox.elementwise()) {
        kernel_apply_proximity(dev, options_.prox, rho, htilde, u, h,
                               &delta_h_sq, options_.stream);
      } else {
        // Column-wise constraint (L2 ball / simplex / smoothness): fuse only
        // the subtraction, then project in a separate column-parallel pass.
        kernel_apply_proximity(dev, Proximity::identity(), rho, htilde, u, h,
                               &delta_h_sq, options_.stream);
        simgpu::KernelStats proj;
        proj.bytes_streamed =
            2.0 * static_cast<double>(h.size()) * simgpu::kWord;
        proj.flops = 2.0 * static_cast<double>(h.size());
        proj.parallel_items = static_cast<double>(h.cols());
        proj.launches = 1;
        dev.record("admm_columnwise_prox", proj, 0.0, options_.stream);
        options_.prox.apply(h, inv_rho);
      }
      kernel_dual_update(dev, h, htilde, u, &primal_sq, &h_sq, &u_sq,
                         options_.stream);
    } else {
      // --- Unfused baseline (Algorithm 2 with cuBLAS-style calls) ---
      // Traffic matches the paper's Eq. 4 accounting (~22 I*R words per
      // inner iteration); the dual residual reuses the primal difference
      // rather than keeping an explicit H0 copy, as the reference
      // implementations do.
      simgpu::dgeam(dev, 1.0, h, 1.0, u, t, options_.stream);   // H + U
      simgpu::dgeam(dev, 1.0, m, rho, t, t, options_.stream);   // M + rho*(H+U)
      if (options_.preinversion) {
        simgpu::dgemm(dev, la::Op::kNone, la::Op::kNone, 1.0, t, inverse, 0.0,
                      htilde, options_.stream);
      } else {
        simgpu::dpotrs_right(dev, l, t, options_.stream);
        std::swap(htilde, t);
      }
      simgpu::dgeam(dev, 1.0, htilde, -1.0, u, h, options_.stream);  // H <- H~ - U
      {
        // Separate proximity kernel (1 read + 1 write).
        simgpu::KernelStats prox_stats;
        prox_stats.bytes_streamed =
            2.0 * static_cast<double>(h.size()) * simgpu::kWord;
        prox_stats.flops = static_cast<double>(h.size());
        prox_stats.parallel_items = static_cast<double>(h.size());
        dev.record("admm_prox_unfused", prox_stats, 0.0, options_.stream);
        options_.prox.apply(h, inv_rho);
      }
      simgpu::dgeam(dev, 1.0, h, -1.0, htilde, t, options_.stream);  // H - H~
      primal_sq = simgpu::dnrm2_sq(dev, t, options_.stream);
      simgpu::dgeam(dev, 1.0, u, 1.0, t, u, options_.stream);  // U += (H - H~)
      // Residual norms, each its own reduction kernel.
      h_sq = simgpu::dnrm2_sq(dev, h, options_.stream);
      u_sq = simgpu::dnrm2_sq(dev, u, options_.stream);
      delta_h_sq = primal_sq;  // primal diff doubles as the dual residual
    }

    // Both variants read the residuals back and synchronize the stream once
    // per inner iteration (the convergence check of line 9) — a fixed cost
    // fusion cannot remove.
    {
      simgpu::KernelStats sync;
      sync.launches = 10;  // three D2H norm reads + stream sync (D2H latency ~ several launch equivalents)
      dev.record("admm_residual_sync", sync, 0.0, options_.stream);
    }

    last_.iterations = iter + 1;
    last_.primal_residual = h_sq > 0.0 ? primal_sq / h_sq : primal_sq;
    last_.dual_residual = u_sq > 0.0 ? delta_h_sq / u_sq : delta_h_sq;
    if (options_.tolerance > 0.0 &&
        last_.primal_residual < options_.tolerance &&
        last_.dual_residual < options_.tolerance) {
      break;
    }
  }
}

}  // namespace cstf
