// Non-negative least squares via Block Principal Pivoting (Kim & Park) —
// the exact NNLS update method in PLANC's update-scheme family (alongside
// MU, HALS, and AO-ADMM).
//
// Each factor row solves min ||x^T S x/2 - x.m|| s.t. x >= 0 by partitioning
// the R variables into a free set F (x_F = S_FF^{-1} m_F, x_G = 0) and
// swapping KKT-violating variables between F and G block-wise, with Kim &
// Park's backup rule (shrinking exchange, then single-variable Murty steps)
// to guarantee termination. Unlike ADMM it produces the *exact* constrained
// optimum, which makes it the validation oracle for the iterative methods —
// at the price of per-row R x R solves that do not map to large fused GPU
// kernels (the reason the paper's GPU framework prefers ADMM).
#pragma once

#include "updates/update_method.hpp"

namespace cstf {

struct BppOptions {
  /// Maximum pivoting iterations per row (KKT usually settles in < R swaps).
  int max_pivots = 100;
  /// KKT feasibility tolerance.
  real_t tolerance = 1e-12;
};

class BppUpdate final : public UpdateMethod {
 public:
  explicit BppUpdate(BppOptions options = {}) : options_(options) {}

  std::string name() const override { return "BPP"; }

  void update(simgpu::Device& dev, const Matrix& s, const Matrix& m, Matrix& h,
              ModeState& state) const override;

 private:
  BppOptions options_;
};

}  // namespace cstf
