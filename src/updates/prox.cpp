#include "updates/prox.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "la/blas.hpp"
#include "la/elementwise.hpp"
#include "parallel/parallel_for.hpp"

namespace cstf {

Proximity Proximity::from_kind(ProxKind kind, real_t a, real_t b) {
  switch (kind) {
    case ProxKind::kIdentity:
    case ProxKind::kNonNegative:
    case ProxKind::kL1:
    case ProxKind::kL1NonNegative:
    case ProxKind::kBox:
    case ProxKind::kL2Ball:
    case ProxKind::kSimplex:
    case ProxKind::kSmooth:
      return Proximity(kind, a, b);
  }
  CSTF_CHECK_MSG(false, "unknown ProxKind " << static_cast<int>(kind));
  return identity();  // unreachable
}

std::string Proximity::name() const {
  switch (kind_) {
    case ProxKind::kIdentity: return "identity";
    case ProxKind::kNonNegative: return "nonneg";
    case ProxKind::kL1: return "l1";
    case ProxKind::kL1NonNegative: return "l1+nonneg";
    case ProxKind::kBox: return "box";
    case ProxKind::kL2Ball: return "l2ball";
    case ProxKind::kSimplex: return "simplex";
    case ProxKind::kSmooth: return "smooth";
  }
  return "?";
}

real_t Proximity::apply_scalar(real_t x, real_t rho_scale) const {
  switch (kind_) {
    case ProxKind::kIdentity:
      return x;
    case ProxKind::kNonNegative:
      return x > 0.0 ? x : 0.0;
    case ProxKind::kL1: {
      const real_t t = a_ * rho_scale;
      if (x > t) return x - t;
      if (x < -t) return x + t;
      return 0.0;
    }
    case ProxKind::kL1NonNegative: {
      const real_t t = a_ * rho_scale;
      return x > t ? x - t : 0.0;
    }
    case ProxKind::kBox:
      return std::clamp(x, a_, b_);
    case ProxKind::kL2Ball:
    case ProxKind::kSimplex:
    case ProxKind::kSmooth:
      break;  // not elementwise
  }
  CSTF_CHECK_MSG(false, "apply_scalar on non-elementwise prox");
  return x;
}

namespace {

// Euclidean projection of a column onto the probability simplex
// (Held/Wolfe/Crowder; the sort-based O(n log n) algorithm).
void project_simplex(real_t* col, index_t n, std::vector<real_t>& scratch) {
  scratch.assign(col, col + n);
  std::sort(scratch.begin(), scratch.end(), std::greater<real_t>());
  real_t cumulative = 0.0;
  real_t theta = 0.0;
  index_t support = 0;
  for (index_t k = 0; k < n; ++k) {
    cumulative += scratch[static_cast<std::size_t>(k)];
    const real_t candidate =
        (cumulative - 1.0) / static_cast<real_t>(k + 1);
    if (scratch[static_cast<std::size_t>(k)] - candidate > 0.0) {
      theta = candidate;
      support = k + 1;
    }
  }
  CSTF_CHECK(support > 0);
  for (index_t i = 0; i < n; ++i) {
    col[i] = std::max<real_t>(col[i] - theta, 0.0);
  }
}

// Proximity of (lambda/2)*||D x||^2: solves (I + lambda * D^T D) x = v with
// D the first-difference operator; the system is tridiagonal
// [-(lambda), 1 + 2*lambda, -(lambda)] with 1 + lambda at the boundaries.
// Thomas algorithm, O(n) per column.
void smooth_column(real_t* col, index_t n, real_t lambda,
                   std::vector<real_t>& scratch) {
  if (n == 1 || lambda <= 0.0) return;
  scratch.assign(static_cast<std::size_t>(2 * n), 0.0);
  real_t* c_prime = scratch.data();      // modified super-diagonal
  real_t* d_prime = scratch.data() + n;  // modified RHS
  const real_t off = -lambda;
  auto diag = [&](index_t i) {
    return (i == 0 || i == n - 1) ? 1.0 + lambda : 1.0 + 2.0 * lambda;
  };
  c_prime[0] = off / diag(0);
  d_prime[0] = col[0] / diag(0);
  for (index_t i = 1; i < n; ++i) {
    const real_t denom = diag(i) - off * c_prime[i - 1];
    c_prime[i] = off / denom;
    d_prime[i] = (col[i] - off * d_prime[i - 1]) / denom;
  }
  col[n - 1] = d_prime[n - 1];
  for (index_t i = n - 2; i >= 0; --i) {
    col[i] = d_prime[i] - c_prime[i] * col[i + 1];
  }
}

}  // namespace

void Proximity::apply(Matrix& h, real_t rho_scale) const {
  if (kind_ == ProxKind::kL2Ball) {
    // Per-column projection onto the ball of radius a_.
    parallel_for(0, h.cols(), [&](index_t j) {
      real_t* col = h.col(j);
      const real_t norm = la::nrm2(h.rows(), col);
      if (norm > a_ && norm > 0.0) {
        la::scal(h.rows(), a_ / norm, col);
      }
    }, /*grain=*/1);
    return;
  }
  if (kind_ == ProxKind::kSimplex) {
    parallel_for(0, h.cols(), [&](index_t j) {
      std::vector<real_t> scratch;
      project_simplex(h.col(j), h.rows(), scratch);
    }, /*grain=*/1);
    return;
  }
  if (kind_ == ProxKind::kSmooth) {
    // The prox of (lambda/rho)*(1/2)||D x||^2: the regularization weight is
    // divided by the ADMM step size, like the L1 threshold.
    const real_t effective_lambda = a_ * rho_scale;
    parallel_for(0, h.cols(), [&](index_t j) {
      std::vector<real_t> scratch;
      smooth_column(h.col(j), h.rows(), effective_lambda, scratch);
    }, /*grain=*/1);
    return;
  }
  real_t* p = h.data();
  parallel_for_blocked(0, h.size(), [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) p[i] = apply_scalar(p[i], rho_scale);
  });
}

bool Proximity::is_feasible(const Matrix& h, real_t eps) const {
  switch (kind_) {
    case ProxKind::kIdentity:
    case ProxKind::kL1:
      return true;
    case ProxKind::kNonNegative:
    case ProxKind::kL1NonNegative: {
      const real_t* p = h.data();
      for (index_t i = 0; i < h.size(); ++i) {
        if (p[i] < -eps) return false;
      }
      return true;
    }
    case ProxKind::kBox: {
      const real_t* p = h.data();
      for (index_t i = 0; i < h.size(); ++i) {
        if (p[i] < a_ - eps || p[i] > b_ + eps) return false;
      }
      return true;
    }
    case ProxKind::kL2Ball: {
      for (index_t j = 0; j < h.cols(); ++j) {
        if (la::nrm2(h.rows(), h.col(j)) > a_ + eps) return false;
      }
      return true;
    }
    case ProxKind::kSimplex: {
      for (index_t j = 0; j < h.cols(); ++j) {
        const real_t* col = h.col(j);
        real_t sum = 0.0;
        for (index_t i = 0; i < h.rows(); ++i) {
          if (col[i] < -eps) return false;
          sum += col[i];
        }
        if (std::abs(sum - 1.0) > 1e-6 + eps * static_cast<real_t>(h.rows())) {
          return false;
        }
      }
      return true;
    }
    case ProxKind::kSmooth:
      return true;  // regularizer, not a constraint set
  }
  return true;
}

}  // namespace cstf
