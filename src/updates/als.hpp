// Unconstrained ALS update — plain CP-ALS least squares, included as the
// no-constraint reference point (what STF without the "c" does).
//
//   H <- M * (S)^{-1}   via Cholesky.
#pragma once

#include "updates/update_method.hpp"

namespace cstf {

struct AlsOptions {
  /// Tikhonov ridge added to S's diagonal for rank-deficient safety.
  real_t ridge = 1e-12;
};

class AlsUpdate final : public UpdateMethod {
 public:
  explicit AlsUpdate(AlsOptions options = {}) : options_(options) {}

  std::string name() const override { return "ALS"; }

  void update(simgpu::Device& dev, const Matrix& s, const Matrix& m, Matrix& h,
              ModeState& state) const override;

 private:
  AlsOptions options_;
};

}  // namespace cstf
