// HALS — Hierarchical Alternating Least Squares (Cichocki & Phan) for
// non-negative factorization; the second additional update scheme of
// Section 5.4.
//
// Columns are updated in sequence, each by a closed-form non-negative
// rank-one correction:
//   H(:,r) <- max(eps, H(:,r) + (M(:,r) - H*S(:,r)) / S(r,r))
// Column r's update sees the already-updated columns < r (Gauss-Seidel), so
// the R column kernels launch sequentially while each parallelizes over the
// I rows.
#pragma once

#include "updates/update_method.hpp"

namespace cstf {

struct HalsOptions {
  int inner_iterations = 1;
  /// Lower bound applied to updated entries; a strictly positive floor is
  /// the standard HALS guard against zero-locked columns.
  real_t epsilon = 1e-16;
};

class HalsUpdate final : public UpdateMethod {
 public:
  explicit HalsUpdate(HalsOptions options = {}) : options_(options) {}

  std::string name() const override { return "HALS"; }

  void update(simgpu::Device& dev, const Matrix& s, const Matrix& m, Matrix& h,
              ModeState& state) const override;

 private:
  HalsOptions options_;
};

}  // namespace cstf
