// Proximity operators — the r(·) of Algorithm 2 line 7.
//
// ADMM supports any constraint with a computable proximity operator; this is
// the flexibility the paper highlights over single-constraint methods. All
// operators here except the L2 ball are elementwise, which is what lets
// cuADMM fuse the projection into the (H_aux - U) subtraction kernel
// (Section 4.3.1).
#pragma once

#include <string>

#include "common/types.hpp"
#include "la/matrix.hpp"

namespace cstf {

enum class ProxKind {
  /// No constraint: identity (unconstrained least squares via ADMM).
  kIdentity,
  /// Non-negativity: projection onto R+, max(0, x). The paper's primary
  /// constraint (non-negative CP factorization).
  kNonNegative,
  /// L1 sparsity: soft-thresholding shrink(x, lambda/rho), optionally
  /// combined with non-negativity.
  kL1,
  kL1NonNegative,
  /// Box constraint: clamp to [lo, hi].
  kBox,
  /// L2-ball of given radius per column (not elementwise; falls back to the
  /// column-wise path in the fused kernel).
  kL2Ball,
  /// Probability-simplex projection per column (non-negative, sums to 1) —
  /// for probabilistic/topic-model factors. Column-wise.
  kSimplex,
  /// Quadratic smoothness regularizer (lambda/2)*||D h||^2 with D the
  /// first-difference operator — the "smoothness" constraint the paper lists
  /// among ADMM's supported regularizers (Section 3.2). Its proximity
  /// operator solves a tridiagonal system per column (Thomas algorithm).
  kSmooth,
};

/// A configured proximity operator.
class Proximity {
 public:
  static Proximity identity() { return Proximity(ProxKind::kIdentity, 0, 0); }
  static Proximity non_negative() {
    return Proximity(ProxKind::kNonNegative, 0, 0);
  }
  static Proximity l1(real_t lambda) { return Proximity(ProxKind::kL1, lambda, 0); }
  static Proximity l1_non_negative(real_t lambda) {
    return Proximity(ProxKind::kL1NonNegative, lambda, 0);
  }
  static Proximity box(real_t lo, real_t hi) {
    return Proximity(ProxKind::kBox, lo, hi);
  }
  static Proximity l2_ball(real_t radius) {
    return Proximity(ProxKind::kL2Ball, radius, 0);
  }
  static Proximity simplex() { return Proximity(ProxKind::kSimplex, 1.0, 0); }
  static Proximity smooth(real_t lambda) {
    return Proximity(ProxKind::kSmooth, lambda, 0);
  }

  /// Rebuilds an operator from its serialized (kind, params) triple — the
  /// model-persistence path. Throws on an out-of-range kind (corrupt file).
  static Proximity from_kind(ProxKind kind, real_t a, real_t b);

  ProxKind kind() const { return kind_; }

  /// The raw parameters, paired with kind() for serialization: lambda (L1,
  /// smooth), lo (box), radius (L2 ball) in `param_a`; hi (box) in `param_b`.
  real_t param_a() const { return a_; }
  real_t param_b() const { return b_; }
  bool elementwise() const {
    return kind_ != ProxKind::kL2Ball && kind_ != ProxKind::kSimplex &&
           kind_ != ProxKind::kSmooth;
  }
  std::string name() const;

  /// The scalar map for elementwise kinds. `scale` divides the L1 threshold
  /// by the ADMM step size (the prox of (lambda/rho)*||.||_1).
  real_t apply_scalar(real_t x, real_t rho_scale) const;

  /// Applies the operator to a full matrix in place (used by the unfused
  /// baseline path and by non-ADMM callers; rho_scale as above).
  void apply(Matrix& h, real_t rho_scale) const;

  /// True if every element of `h` satisfies the constraint (within eps) —
  /// the property tests' feasibility oracle.
  bool is_feasible(const Matrix& h, real_t eps = 1e-12) const;

 private:
  Proximity(ProxKind kind, real_t a, real_t b) : kind_(kind), a_(a), b_(b) {}

  ProxKind kind_;
  real_t a_;  // lambda (L1), lo (box), radius (L2 ball)
  real_t b_;  // hi (box)
};

}  // namespace cstf
