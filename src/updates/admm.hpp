// ADMM factor update (Algorithms 2 and 3 of the paper).
//
// One class covers the paper's four Figure-4 configurations through two
// independent switches:
//   operation_fusion  — fused custom kernels (Section 4.3.1) vs a chain of
//                       cuBLAS-style DGEAM/reduction calls;
//   preinversion      — explicit (L L^T)^{-1} once + DGEMM per inner
//                       iteration (Section 4.3.2) vs triangular solves.
// Both off   = baseline "generic ADMM on GPU" (Algorithm 2);
// both on    = cuADMM (Algorithm 3).
#pragma once

#include "updates/admm_kernels.hpp"
#include "updates/update_method.hpp"

namespace cstf {

struct AdmmOptions {
  Proximity prox = Proximity::non_negative();

  /// Inner ADMM iterations. The paper fixes 10 ("ADMM converges in
  /// approximately 10 iterations for all practical purposes").
  int inner_iterations = 10;

  /// Early-exit tolerance on the primal/dual residual ratios (Algorithm 2
  /// line 9). 0 disables the test so every run costs exactly
  /// `inner_iterations` — what the paper's fixed-iteration benchmarking does.
  real_t tolerance = 0.0;

  bool operation_fusion = true;
  bool preinversion = true;

  /// Stream every kernel of the update is issued to (cublasSetStream-style:
  /// one handle-wide setting rather than a per-call parameter). Default
  /// stream = today's serial modeling; callers pipelining factor updates
  /// against other work point this at a created stream.
  simgpu::Stream stream{};
};

/// Result of the last update() call (residuals of the final inner iteration).
struct AdmmDiagnostics {
  int iterations = 0;
  real_t primal_residual = 0.0;  // ||H - H~||^2 / ||H||^2
  real_t dual_residual = 0.0;    // ||H - H_prev||^2 / ||U||^2
  real_t rho = 0.0;
};

/// The factorized system matrix of the ADMM inner loop: rho = trace(S)/R
/// (clamped to 1 when degenerate), L the Cholesky factor of S + rho*I, and —
/// when pre-inverted — the explicit (L L^T)^{-1}. update() rebuilds this
/// every call; the serving fold-in path builds it once per model snapshot
/// (prepare_admm_gram) and amortizes the factorization across thousands of
/// requests, where the paper's pre-inversion optimization pays off most.
struct AdmmGram {
  real_t rho = 0.0;
  Matrix l;
  Matrix inverse;  // empty unless pre-inverted

  bool preinverted() const { return !inverse.empty(); }
};

/// Factors S + rho*I on the host without metering (no Device): the cache-
/// building path, charged once at model-publish time rather than per solve.
AdmmGram prepare_admm_gram(const Matrix& s, bool preinvert);

class AdmmUpdate final : public UpdateMethod {
 public:
  explicit AdmmUpdate(AdmmOptions options) : options_(options) {}

  std::string name() const override;
  const AdmmOptions& options() const { return options_; }

  void update(simgpu::Device& dev, const Matrix& s, const Matrix& m, Matrix& h,
              ModeState& state) const override;

  /// Runs the inner iterations against an already-factorized Gram, skipping
  /// the per-call dpotrf/dpotri (and their modeled cost). `gram` must have
  /// been built with pre-inversion iff options().preinversion. This is the
  /// serving fold-in hot path; update() is equivalent to prepare_admm_gram +
  /// update_with_gram with the factorization metered.
  void update_with_gram(simgpu::Device& dev, const AdmmGram& gram,
                        const Matrix& m, Matrix& h, ModeState& state) const;

  /// Diagnostics of the most recent update() call.
  const AdmmDiagnostics& last() const { return last_; }

 private:
  AdmmOptions options_;
  mutable AdmmDiagnostics last_;
};

}  // namespace cstf
