#include "updates/bpp.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "parallel/parallel_for.hpp"
#include "simgpu/launch.hpp"

namespace cstf {

namespace {

// Solves the dense SPD subsystem S_FF x_F = m_F for the free set (in-place
// Cholesky on a packed copy; |F| <= R <= 64 so stack-ish vectors suffice).
void solve_free_set(const Matrix& s, const real_t* m_row,
                    const std::vector<int>& free_set, real_t* x) {
  const auto nf = static_cast<index_t>(free_set.size());
  if (nf == 0) return;
  std::vector<real_t> sub(static_cast<std::size_t>(nf * nf));
  std::vector<real_t> rhs(static_cast<std::size_t>(nf));
  for (index_t j = 0; j < nf; ++j) {
    rhs[static_cast<std::size_t>(j)] = m_row[free_set[static_cast<std::size_t>(j)]];
    for (index_t i = 0; i < nf; ++i) {
      sub[static_cast<std::size_t>(j * nf + i)] =
          s(free_set[static_cast<std::size_t>(i)],
            free_set[static_cast<std::size_t>(j)]);
    }
  }
  // In-place Cholesky (lower) on the packed column-major submatrix.
  for (index_t j = 0; j < nf; ++j) {
    real_t diag = sub[static_cast<std::size_t>(j * nf + j)];
    for (index_t k = 0; k < j; ++k) {
      const real_t ljk = sub[static_cast<std::size_t>(k * nf + j)];
      diag -= ljk * ljk;
    }
    CSTF_CHECK_MSG(diag > 0.0, "BPP subsystem not positive definite");
    const real_t ljj = std::sqrt(diag);
    sub[static_cast<std::size_t>(j * nf + j)] = ljj;
    for (index_t i = j + 1; i < nf; ++i) {
      real_t acc = sub[static_cast<std::size_t>(j * nf + i)];
      for (index_t k = 0; k < j; ++k) {
        acc -= sub[static_cast<std::size_t>(k * nf + i)] *
               sub[static_cast<std::size_t>(k * nf + j)];
      }
      sub[static_cast<std::size_t>(j * nf + i)] = acc / ljj;
    }
  }
  // Forward then backward substitution.
  for (index_t i = 0; i < nf; ++i) {
    real_t acc = rhs[static_cast<std::size_t>(i)];
    for (index_t k = 0; k < i; ++k) {
      acc -= sub[static_cast<std::size_t>(k * nf + i)] *
             rhs[static_cast<std::size_t>(k)];
    }
    rhs[static_cast<std::size_t>(i)] = acc / sub[static_cast<std::size_t>(i * nf + i)];
  }
  for (index_t i = nf - 1; i >= 0; --i) {
    real_t acc = rhs[static_cast<std::size_t>(i)];
    for (index_t k = i + 1; k < nf; ++k) {
      acc -= sub[static_cast<std::size_t>(i * nf + k)] *
             rhs[static_cast<std::size_t>(k)];
    }
    rhs[static_cast<std::size_t>(i)] = acc / sub[static_cast<std::size_t>(i * nf + i)];
  }
  for (index_t j = 0; j < nf; ++j) {
    x[free_set[static_cast<std::size_t>(j)]] = rhs[static_cast<std::size_t>(j)];
  }
}

// One row's NNLS via block principal pivoting. x holds the solution.
void bpp_row(const Matrix& s, const real_t* m_row, index_t rank, real_t* x,
             const BppOptions& opt) {
  std::vector<bool> in_free(static_cast<std::size_t>(rank), false);
  std::vector<real_t> y(static_cast<std::size_t>(rank));
  std::vector<int> free_set;

  // Kim & Park's termination safeguard: full exchanges while the violation
  // count decreases; otherwise shrink the exchange (alpha), finally Murty's
  // single-variable rule.
  int backup_budget = 3;
  index_t best_violations = rank + 1;

  for (int pivot = 0; pivot < opt.max_pivots; ++pivot) {
    // Solve for the current free set.
    for (index_t r = 0; r < rank; ++r) x[r] = 0.0;
    free_set.clear();
    for (index_t r = 0; r < rank; ++r) {
      if (in_free[static_cast<std::size_t>(r)]) {
        free_set.push_back(static_cast<int>(r));
      }
    }
    solve_free_set(s, m_row, free_set, x);

    // Dual: y = S x - m.
    for (index_t r = 0; r < rank; ++r) {
      real_t acc = -m_row[r];
      for (index_t k = 0; k < rank; ++k) acc += s(r, k) * x[k];
      y[static_cast<std::size_t>(r)] = acc;
    }

    // Collect KKT violations: x_F < 0 or y_G < 0.
    std::vector<index_t> violators;
    for (index_t r = 0; r < rank; ++r) {
      const bool f = in_free[static_cast<std::size_t>(r)];
      if (f && x[r] < -opt.tolerance) violators.push_back(r);
      if (!f && y[static_cast<std::size_t>(r)] < -opt.tolerance) {
        violators.push_back(r);
      }
    }
    if (violators.empty()) {
      for (index_t r = 0; r < rank; ++r) {
        if (x[r] < 0.0) x[r] = 0.0;  // clean tolerance-level dust
      }
      return;
    }

    const auto violations = static_cast<index_t>(violators.size());
    if (violations < best_violations) {
      best_violations = violations;
      backup_budget = 3;
      for (index_t r : violators) {
        in_free[static_cast<std::size_t>(r)] = !in_free[static_cast<std::size_t>(r)];
      }
    } else if (backup_budget > 0) {
      --backup_budget;
      for (index_t r : violators) {
        in_free[static_cast<std::size_t>(r)] = !in_free[static_cast<std::size_t>(r)];
      }
    } else {
      // Murty's rule: flip only the highest-index violator.
      const index_t r = violators.back();
      in_free[static_cast<std::size_t>(r)] = !in_free[static_cast<std::size_t>(r)];
    }
  }
  // Budget exhausted: x holds the last (feasible-clamped) iterate.
  for (index_t r = 0; r < rank; ++r) {
    if (x[r] < 0.0) x[r] = 0.0;
  }
}

}  // namespace

void BppUpdate::update(simgpu::Device& dev, const Matrix& s, const Matrix& m,
                       Matrix& h, ModeState& /*state*/) const {
  const index_t rank = s.rows();
  CSTF_CHECK(s.cols() == rank);
  CSTF_CHECK(m.same_shape(h) && m.cols() == rank);

  // Metering: per-row combinatorial solves — heavy flops per byte with only
  // row-level parallelism and dependent pivot sequences, the profile that
  // keeps exact NNLS off the paper's GPU fast path.
  {
    simgpu::KernelStats stats;
    const double rows = static_cast<double>(h.rows());
    const double r = static_cast<double>(rank);
    stats.flops = rows * (r * r * r / 3.0 + 4.0 * r * r);  // ~per-pivot solve
    stats.bytes_streamed = 3.0 * static_cast<double>(h.size()) * simgpu::kWord;
    stats.serial_depth = 4.0 * r * r;  // dependent pivot iterations
    stats.parallel_items = rows;
    stats.launches = 1;
    stats.compute_efficiency = 0.05;  // branchy set bookkeeping
    dev.record("bpp_update", stats);
  }

  parallel_for_blocked(0, h.rows(), [&](index_t lo, index_t hi) {
    std::vector<real_t> m_row(static_cast<std::size_t>(rank));
    std::vector<real_t> x(static_cast<std::size_t>(rank));
    for (index_t i = lo; i < hi; ++i) {
      for (index_t r = 0; r < rank; ++r) m_row[static_cast<std::size_t>(r)] = m(i, r);
      bpp_row(s, m_row.data(), rank, x.data(), options_);
      for (index_t r = 0; r < rank; ++r) h(i, r) = x[static_cast<std::size_t>(r)];
    }
  }, /*grain=*/16);
}

}  // namespace cstf
