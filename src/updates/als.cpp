#include "updates/als.hpp"

#include "common/error.hpp"
#include "la/cholesky.hpp"
#include "simgpu/dblas.hpp"

namespace cstf {

void AlsUpdate::update(simgpu::Device& dev, const Matrix& s, const Matrix& m,
                       Matrix& h, ModeState& /*state*/) const {
  CSTF_CHECK(m.same_shape(h));
  Matrix s_ridged = s;
  la::add_diagonal(s_ridged, options_.ridge);
  Matrix l;
  simgpu::dpotrf(dev, s_ridged, l);
  // H <- M, then solve H * S = M in place.
  simgpu::dgeam(dev, 1.0, m, 0.0, m, h);
  simgpu::dpotrs_right(dev, l, h);
}

}  // namespace cstf
