#include "updates/block_admm.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "la/cholesky.hpp"
#include "parallel/parallel_for.hpp"
#include "simgpu/dblas.hpp"

namespace cstf {

namespace {

// Runs the complete ADMM inner loop on rows [lo, hi). All buffers are
// row-block slices held in dense scratch (block-major), so every inner
// iteration after the first touches only cache-resident data.
void admm_block(const BlockAdmmOptions& opt, const Matrix& l, const Matrix& m,
                Matrix& h, Matrix& u, real_t rho, index_t lo, index_t hi,
                std::vector<real_t>& scratch) {
  const index_t rank = h.cols();
  const index_t rows = hi - lo;
  const real_t inv_rho = 1.0 / rho;
  // Scratch layout: t (rows x rank), z (rank) per row reused.
  scratch.assign(static_cast<std::size_t>(rows * rank + rank), 0.0);
  real_t* t = scratch.data();
  real_t* z = scratch.data() + rows * rank;

  for (int iter = 0; iter < opt.inner_iterations; ++iter) {
    real_t primal_sq = 0.0, h_sq = 0.0, delta_sq = 0.0, u_sq = 0.0;
    for (index_t i = 0; i < rows; ++i) {
      real_t* ti = t + i * rank;
      const index_t row = lo + i;
      // t_i = M(row,:) + rho * (H(row,:) + U(row,:)).
      for (index_t r = 0; r < rank; ++r) {
        ti[r] = m(row, r) + rho * (h(row, r) + u(row, r));
      }
      // Right-solve t_i (L L^T) = t_i: forward then backward substitution.
      for (index_t j = 0; j < rank; ++j) {
        real_t acc = ti[j];
        for (index_t k = 0; k < j; ++k) acc -= z[k] * l(j, k);
        z[j] = acc / l(j, j);
      }
      for (index_t j = rank - 1; j >= 0; --j) {
        real_t acc = z[j];
        for (index_t k = j + 1; k < rank; ++k) acc -= ti[k] * l(k, j);
        ti[j] = acc / l(j, j);
      }
      // Prox, dual update, residuals — all in-register for this row.
      for (index_t r = 0; r < rank; ++r) {
        const real_t old_h = h(row, r);
        const real_t new_h = opt.prox.apply_scalar(ti[r] - u(row, r), inv_rho);
        h(row, r) = new_h;
        const real_t diff = new_h - ti[r];
        const real_t nu = u(row, r) + diff;
        u(row, r) = nu;
        primal_sq += diff * diff;
        h_sq += new_h * new_h;
        u_sq += nu * nu;
        const real_t dh = new_h - old_h;
        delta_sq += dh * dh;
      }
    }
    if (opt.tolerance > 0.0 && h_sq > 0.0 && u_sq > 0.0 &&
        primal_sq / h_sq < opt.tolerance && delta_sq / u_sq < opt.tolerance) {
      break;
    }
  }
}

}  // namespace

void BlockAdmmUpdate::update(simgpu::Device& dev, const Matrix& s,
                             const Matrix& m, Matrix& h,
                             ModeState& state) const {
  const index_t rank = s.rows();
  CSTF_CHECK(s.cols() == rank);
  CSTF_CHECK(m.same_shape(h) && m.cols() == rank);

  real_t rho = 0.0;
  for (index_t r = 0; r < rank; ++r) rho += s(r, r);
  rho /= static_cast<real_t>(rank);
  if (rho <= 0.0) rho = 1.0;

  Matrix s_loaded = s;
  la::add_diagonal(s_loaded, rho);
  Matrix l;
  simgpu::dpotrf(dev, s_loaded, l);

  if (!state.dual.same_shape(h)) state.dual.resize(h.rows(), h.cols());
  Matrix& u = state.dual;

  const index_t rows = h.rows();
  const index_t block = std::max<index_t>(1, options_.block_rows);
  const index_t num_blocks = (rows + block - 1) / block;

  // Metering: the first inner iteration streams H/U/M once; the remaining
  // iterations re-touch a block-sized working set.
  {
    simgpu::KernelStats stats;
    const double n = static_cast<double>(h.size());
    const double iters = static_cast<double>(options_.inner_iterations);
    const double r = static_cast<double>(rank);
    stats.flops = n * iters * (19.0 + 2.0 * r);  // Eq. 3 per row element
    stats.bytes_streamed = 4.0 * n * simgpu::kWord;  // first touch of M,H,U,t
    stats.bytes_reused = 4.0 * n * (iters - 1.0) * simgpu::kWord;
    stats.working_set_bytes =
        4.0 * static_cast<double>(block * rank) * simgpu::kWord;
    stats.serial_depth = 2.0 * r * r * iters;
    stats.parallel_items = static_cast<double>(rows);
    stats.launches = 1;  // one parallel region over blocks
    // Scalar substitution chains, branchy prox, and residual reductions: far
    // from the machine's FMA-vector peak (the flip side of the blocked
    // variant's excellent cache behaviour).
    stats.compute_efficiency = 0.08;
    dev.record("block_admm", stats);
  }

  parallel_for(0, num_blocks, [&](index_t b) {
    std::vector<real_t> scratch;
    const index_t lo = b * block;
    const index_t hi = std::min<index_t>(lo + block, rows);
    admm_block(options_, l, m, h, u, rho, lo, hi, scratch);
  }, /*grain=*/1);
}

}  // namespace cstf
