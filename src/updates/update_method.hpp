// The update-method interface of the AUNTF driver (Algorithm 1, line 10).
//
// Given the Hadamard-of-Grams matrix S (R x R) and the MTTKRP result M
// (I x R), an update method computes the new factor H (I x R) subject to its
// constraint. ADMM carries a dual variable U across outer iterations
// (warm-started, per the AO-ADMM literature); ModeState holds it.
#pragma once

#include <string>

#include "la/matrix.hpp"
#include "simgpu/device.hpp"

namespace cstf {

/// Per-mode persistent state owned by the driver, one per tensor mode.
struct ModeState {
  /// ADMM dual variable U (I x R). Empty until first use; kept across outer
  /// iterations as a warm start.
  Matrix dual;

  /// Scratch matrices sized I x R, reused across iterations to avoid
  /// reallocation in the inner loop.
  Matrix aux;      // H~ (ADMM auxiliary / primal-tilde)
  Matrix scratch;  // general temporary
};

/// Abstract constrained update.
class UpdateMethod {
 public:
  virtual ~UpdateMethod() = default;

  virtual std::string name() const = 0;

  /// Updates `h` in place from the normal equations (S, M). All device
  /// work — kernels and BLAS — must be issued through `dev` so the run is
  /// metered for the cost model.
  virtual void update(simgpu::Device& dev, const Matrix& s, const Matrix& m,
                      Matrix& h, ModeState& state) const = 0;
};

}  // namespace cstf
