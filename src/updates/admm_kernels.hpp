// The three fused cuADMM kernels of Section 4.3.1, as simulated-GPU launches.
//
// Traffic accounting per kernel (I x R matrices, w = 8 bytes/word):
//   compute_auxiliary    reads M, H, U; writes T            -> 4*I*R*w
//     (vs. two chained DGEAMs: 6*I*R*w — the ~33% saving the paper cites)
//   apply_proximity      reads T, U, H(old); writes H       -> 4*I*R*w
//     (also emits ||H_new - H_old||^2 for the dual-residual test, reusing
//      the old value it is overwriting — no separate H0 copy pass)
//   dual_update          reads H, T, U; writes U            -> 4*I*R*w
//     (also emits ||H - T||^2, ||H||^2, ||U||^2 from the same pass)
#pragma once

#include "la/matrix.hpp"
#include "simgpu/device.hpp"
#include "simgpu/stream.hpp"
#include "updates/prox.hpp"

namespace cstf {

/// T = M + rho * (H + U), fused.
void kernel_compute_auxiliary(simgpu::Device& dev, const Matrix& m,
                              const Matrix& h, const Matrix& u, real_t rho,
                              Matrix& t, simgpu::Stream stream = {});

/// H = prox(T - U), fused with the dual-residual accumulation
/// ||H_new - H_old||^2 (old H read in place before being overwritten).
/// Requires an elementwise prox; the caller handles the L2-ball fallback.
void kernel_apply_proximity(simgpu::Device& dev, const Proximity& prox,
                            real_t rho, const Matrix& t, const Matrix& u,
                            Matrix& h, real_t* delta_h_sq,
                            simgpu::Stream stream = {});

/// U += H - T, fused with the residual reductions: primal ||H - T||^2,
/// ||H||^2, and ||U||^2 (post-update).
void kernel_dual_update(simgpu::Device& dev, const Matrix& h, const Matrix& t,
                        Matrix& u, real_t* primal_sq, real_t* h_sq,
                        real_t* u_sq, simgpu::Stream stream = {});

}  // namespace cstf
