// Multiplicative update (Lee & Seung) for non-negative factorization —
// one of the two additional update schemes the framework integrates to
// demonstrate flexibility (Section 5.4, Figures 9-10).
//
//   H <- H .* M ./ (H*S + eps)
//
// Non-negativity is preserved multiplicatively: H stays >= 0 if it starts
// >= 0, no projection needed.
#pragma once

#include "updates/update_method.hpp"

namespace cstf {

struct MuOptions {
  /// Inner sweeps per outer iteration (kept at 1 by convention; MU makes
  /// slow per-sweep progress but each sweep is one GEMM + one fused kernel).
  int inner_iterations = 1;
  /// Denominator guard.
  real_t epsilon = 1e-16;
};

class MuUpdate final : public UpdateMethod {
 public:
  explicit MuUpdate(MuOptions options = {}) : options_(options) {}

  std::string name() const override { return "MU"; }

  void update(simgpu::Device& dev, const Matrix& s, const Matrix& m, Matrix& h,
              ModeState& state) const override;

 private:
  MuOptions options_;
};

}  // namespace cstf
