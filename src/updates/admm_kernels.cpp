#include "updates/admm_kernels.hpp"

#include "common/error.hpp"
#include "parallel/atomic.hpp"
#include "simgpu/launch.hpp"

namespace cstf {

namespace {

constexpr index_t kBlockDim = 256;

simgpu::LaunchConfig config_for(index_t n, simgpu::Stream stream = {}) {
  return simgpu::LaunchConfig{.grid_dim = simgpu::blocks_for(n, kBlockDim, 2048),
                              .block_dim = kBlockDim,
                              .shmem_reals = 4,
                              .stream = stream};
}

simgpu::KernelStats elementwise_stats(index_t n, double reads, double writes,
                                      double flops_per_elem) {
  simgpu::KernelStats stats;
  const auto dn = static_cast<double>(n);
  stats.flops = dn * flops_per_elem;
  stats.bytes_streamed = dn * (reads + writes) * simgpu::kWord;
  stats.parallel_items = dn;
  return stats;
}

}  // namespace

void kernel_compute_auxiliary(simgpu::Device& dev, const Matrix& m,
                              const Matrix& h, const Matrix& u, real_t rho,
                              Matrix& t, simgpu::Stream stream) {
  CSTF_CHECK(m.same_shape(h) && m.same_shape(u) && m.same_shape(t));
  CSTF_CHECK_MSG(rho > 0.0, "kernel_compute_auxiliary requires rho > 0, got "
                                << rho);
  const index_t n = m.size();
  const real_t* pm = m.data();
  const real_t* ph = h.data();
  const real_t* pu = u.data();
  real_t* pt = t.data();
  simgpu::launch(dev, "admm_compute_auxiliary", config_for(n, stream),
                 elementwise_stats(n, 3, 1, 3),
                 [&](const simgpu::KernelCtx& ctx) {
    for (index_t i = ctx.global_thread_id(); i < n; i += ctx.total_threads()) {
      pt[i] = pm[i] + rho * (ph[i] + pu[i]);
    }
  });
}

void kernel_apply_proximity(simgpu::Device& dev, const Proximity& prox,
                            real_t rho, const Matrix& t, const Matrix& u,
                            Matrix& h, real_t* delta_h_sq,
                            simgpu::Stream stream) {
  CSTF_CHECK(prox.elementwise());
  CSTF_CHECK(t.same_shape(u) && t.same_shape(h));
  // The degenerate-rho clamp lives in AdmmUpdate::update; a silent fallback
  // here would let the fused and unfused paths disagree on the prox scaling.
  CSTF_CHECK_MSG(rho > 0.0, "kernel_apply_proximity requires rho > 0, got "
                                << rho);
  const index_t n = t.size();
  const real_t* pt = t.data();
  const real_t* pu = u.data();
  real_t* ph = h.data();
  const real_t inv_rho = 1.0 / rho;
  *delta_h_sq = 0.0;
  real_t* out_sq = delta_h_sq;
  simgpu::launch(dev, "admm_apply_proximity", config_for(n, stream),
                 elementwise_stats(n, 3, 1, 4),
                 [&](const simgpu::KernelCtx& ctx) {
    if (ctx.thread_idx == 0) ctx.shared[0] = 0.0;
    real_t local = 0.0;
    for (index_t i = ctx.global_thread_id(); i < n; i += ctx.total_threads()) {
      const real_t old_h = ph[i];
      const real_t new_h = prox.apply_scalar(pt[i] - pu[i], inv_rho);
      ph[i] = new_h;
      const real_t d = new_h - old_h;
      local += d * d;
    }
    ctx.shared[0] += local;
    if (ctx.thread_idx == ctx.block_dim - 1) {
      atomic_add(out_sq, ctx.shared[0]);
    }
  });
}

void kernel_dual_update(simgpu::Device& dev, const Matrix& h, const Matrix& t,
                        Matrix& u, real_t* primal_sq, real_t* h_sq,
                        real_t* u_sq, simgpu::Stream stream) {
  CSTF_CHECK(h.same_shape(t) && h.same_shape(u));
  const index_t n = h.size();
  const real_t* ph = h.data();
  const real_t* pt = t.data();
  real_t* pu = u.data();
  *primal_sq = 0.0;
  *h_sq = 0.0;
  *u_sq = 0.0;
  real_t* out_primal = primal_sq;
  real_t* out_h = h_sq;
  real_t* out_u = u_sq;
  simgpu::launch(dev, "admm_dual_update", config_for(n, stream),
                 elementwise_stats(n, 3, 1, 8),
                 [&](const simgpu::KernelCtx& ctx) {
    if (ctx.thread_idx == 0) {
      ctx.shared[0] = 0.0;
      ctx.shared[1] = 0.0;
      ctx.shared[2] = 0.0;
    }
    real_t lp = 0.0, lh = 0.0, lu = 0.0;
    for (index_t i = ctx.global_thread_id(); i < n; i += ctx.total_threads()) {
      const real_t diff = ph[i] - pt[i];
      const real_t nu = pu[i] + diff;
      pu[i] = nu;
      lp += diff * diff;
      lh += ph[i] * ph[i];
      lu += nu * nu;
    }
    ctx.shared[0] += lp;
    ctx.shared[1] += lh;
    ctx.shared[2] += lu;
    if (ctx.thread_idx == ctx.block_dim - 1) {
      atomic_add(out_primal, ctx.shared[0]);
      atomic_add(out_h, ctx.shared[1]);
      atomic_add(out_u, ctx.shared[2]);
    }
  });
}

}  // namespace cstf
