// MTTKRP backends: the format-specific engines the AUNTF driver dispatches
// to (Algorithm 1 line 9).
//
// Each backend owns its format structure(s) and meters every call on the
// given Device, so one driver runs unchanged as:
//   BlcoBackend  + A100/H100 Device -> the paper's cSTF-GPU framework
//   CsfBackend   + Xeon Device      -> the SPLATT CPU baseline
//   AltoBackend  + Xeon Device      -> the modified-PLANC sparse baseline
//   DenseBackend + Xeon Device      -> the PLANC dense baseline (Figure 1)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "formats/alto.hpp"
#include "formats/blco.hpp"
#include "formats/csf.hpp"
#include "la/matrix.hpp"
#include "mttkrp/dimtree.hpp"
#include "mttkrp/scatter.hpp"
#include "simgpu/device.hpp"
#include "tensor/coo.hpp"
#include "tensor/dense.hpp"

namespace cstf {

/// Abstract MTTKRP engine over a fixed tensor.
class MttkrpBackend {
 public:
  virtual ~MttkrpBackend() = default;

  virtual std::string name() const = 0;
  virtual int num_modes() const = 0;
  virtual index_t dim(int mode) const = 0;
  virtual index_t nnz() const = 0;

  /// ||X||_F^2, needed by the driver's fit computation.
  virtual real_t norm_sq() const = 0;

  /// Computes `out = MTTKRP(X, factors, mode)` and meters the work on `dev`.
  /// `out` must be dim(mode) x R.
  virtual void mttkrp(simgpu::Device& dev, const std::vector<Matrix>& factors,
                      int mode, Matrix& out) const = 0;

  /// The dimension-tree reuse engine, when one is enabled on this backend
  /// (see BlcoBackend::enable_dimtree); null otherwise. Non-owning; callers
  /// use it to schedule chain extends and to invalidate on factor resets.
  virtual DimTreeEngine* dimtree() const { return nullptr; }
};

/// BLCO-format backend (the GPU framework's engine). `scatter` selects the
/// output-accumulation strategy (see mttkrp/scatter.hpp); sorted-scatter
/// plans are built lazily per mode and cached for the tensor's lifetime.
class BlcoBackend final : public MttkrpBackend {
 public:
  explicit BlcoBackend(const SparseTensor& coo, index_t block_capacity = 4096,
                       ScatterOptions scatter = {});

  std::string name() const override { return "BLCO"; }
  int num_modes() const override { return blco_.num_modes(); }
  index_t dim(int mode) const override {
    return blco_.dims()[static_cast<std::size_t>(mode)];
  }
  index_t nnz() const override { return blco_.nnz(); }
  real_t norm_sq() const override { return norm_sq_; }
  void mttkrp(simgpu::Device& dev, const std::vector<Matrix>& factors,
              int mode, Matrix& out) const override;

  const BlcoTensor& tensor() const { return blco_; }

  /// The concrete strategy the engine used on the most recent mttkrp call
  /// (after kAuto resolution); kAuto until the first call.
  ScatterStrategy last_scatter_strategy() const { return last_strategy_; }

  /// Enables dimension-tree MTTKRP reuse (DESIGN.md §13): every mttkrp()
  /// call routes through the engine from now on. All modes go through it —
  /// BLCO blocking reorders nonzeros, so mixing the flat BLCO kernel with
  /// chain-derived modes would break the engine's bit-identity-to-
  /// `mttkrp_ref` guarantee under deterministic scatter. Needs the original
  /// COO tensor (BLCO does not keep it); `rank` fixes the chain width and
  /// `budget_bytes` caps the chain intermediate.
  void enable_dimtree(const SparseTensor& coo, index_t rank,
                      double budget_bytes = kDefaultDimtreeBudgetBytes);

  DimTreeEngine* dimtree() const override { return dimtree_.get(); }

  /// The backend's own sorted-scatter plan cache (the flat path; the
  /// dimtree engine keeps a separate one) — exposed for counter surfacing.
  const ScatterPlanCache& scatter_plans() const { return plans_; }

 private:
  BlcoTensor blco_;
  real_t norm_sq_;
  ScatterOptions scatter_;
  mutable ScatterPlanCache plans_;
  mutable ScatterStrategy last_strategy_ = ScatterStrategy::kAuto;
  std::unique_ptr<DimTreeEngine> dimtree_;
};

/// CSF backend with one tree per mode (SPLATT's ALLMODE configuration).
class CsfBackend final : public MttkrpBackend {
 public:
  explicit CsfBackend(const SparseTensor& coo);

  std::string name() const override { return "CSF"; }
  int num_modes() const override { return static_cast<int>(trees_.size()); }
  index_t dim(int mode) const override {
    return trees_[static_cast<std::size_t>(mode)]->dims()[static_cast<std::size_t>(mode)];
  }
  index_t nnz() const override { return trees_[0]->nnz(); }
  real_t norm_sq() const override { return norm_sq_; }
  void mttkrp(simgpu::Device& dev, const std::vector<Matrix>& factors,
              int mode, Matrix& out) const override;

 private:
  std::vector<std::unique_ptr<CsfTensor>> trees_;
  real_t norm_sq_;
};

/// ALTO backend: a single linearized copy serving all modes.
class AltoBackend final : public MttkrpBackend {
 public:
  explicit AltoBackend(const SparseTensor& coo, ScatterOptions scatter = {});

  std::string name() const override { return "ALTO"; }
  int num_modes() const override { return alto_.num_modes(); }
  index_t dim(int mode) const override {
    return alto_.dims()[static_cast<std::size_t>(mode)];
  }
  index_t nnz() const override { return alto_.nnz(); }
  real_t norm_sq() const override { return norm_sq_; }
  void mttkrp(simgpu::Device& dev, const std::vector<Matrix>& factors,
              int mode, Matrix& out) const override;

 private:
  AltoTensor alto_;
  real_t norm_sq_;
  ScatterOptions scatter_;
  mutable ScatterPlanCache plans_;
};

/// COO reference backend (tests and tiny problems).
class CooBackend final : public MttkrpBackend {
 public:
  explicit CooBackend(SparseTensor coo, ScatterOptions scatter = {});

  std::string name() const override { return "COO"; }
  int num_modes() const override { return coo_.num_modes(); }
  index_t dim(int mode) const override { return coo_.dim(mode); }
  index_t nnz() const override { return coo_.nnz(); }
  real_t norm_sq() const override { return norm_sq_; }
  void mttkrp(simgpu::Device& dev, const std::vector<Matrix>& factors,
              int mode, Matrix& out) const override;

 private:
  SparseTensor coo_;
  real_t norm_sq_;
  ScatterOptions scatter_;
  mutable ScatterPlanCache plans_;
};

/// Dense backend (the PLANC dense-TF baseline of Figure 1).
class DenseBackend final : public MttkrpBackend {
 public:
  explicit DenseBackend(DenseTensor dense);

  std::string name() const override { return "Dense"; }
  int num_modes() const override { return dense_.num_modes(); }
  index_t dim(int mode) const override { return dense_.dim(mode); }
  index_t nnz() const override { return dense_.num_elements(); }
  real_t norm_sq() const override { return norm_sq_; }
  void mttkrp(simgpu::Device& dev, const std::vector<Matrix>& factors,
              int mode, Matrix& out) const override;

 private:
  DenseTensor dense_;
  real_t norm_sq_;
};

}  // namespace cstf
