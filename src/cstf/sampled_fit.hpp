// Sampled fit estimation for tensors too large for an exact per-iteration
// fit computation.
//
// The exact fit needs <X, X_hat> over every nonzero plus the model norm; for
// billion-nonzero tensors (Amazon) that inner product costs as much as an
// MTTKRP. The estimator samples `sample_size` nonzeros uniformly and rescales
// — an unbiased estimate of the inner product whose error the caller can
// drive down with the sample size.
#pragma once

#include "cstf/ktensor.hpp"
#include "common/random.hpp"
#include "tensor/coo.hpp"

namespace cstf {

struct SampledFitOptions {
  index_t sample_size = 10000;
  std::uint64_t seed = 1;
};

/// Estimated fit = 1 - ||X - X_hat|| / ||X||, with <X, X_hat> estimated from
/// a uniform nonzero sample. ||X||^2 and ||X_hat||^2 are exact (the former is
/// one cheap pass, the latter closed-form via Grams). When sample_size >=
/// nnz, the computation degenerates to the exact fit.
real_t sampled_fit(const KTensor& model, const SparseTensor& x,
                   const SampledFitOptions& options = {});

}  // namespace cstf
