#include "cstf/ktensor.hpp"

#include <cmath>
#include <cstring>
#include <fstream>

#include "common/error.hpp"
#include "la/blas.hpp"
#include "la/elementwise.hpp"
#include "parallel/reduce.hpp"

namespace cstf {

real_t KTensor::value_at(const index_t* coords) const {
  const index_t r_max = rank();
  real_t acc = 0.0;
  for (index_t r = 0; r < r_max; ++r) {
    real_t prod = lambda[static_cast<std::size_t>(r)];
    for (int m = 0; m < num_modes(); ++m) {
      prod *= factors[static_cast<std::size_t>(m)](coords[m], r);
    }
    acc += prod;
  }
  return acc;
}

real_t KTensor::norm_sq() const {
  const index_t r_max = rank();
  CSTF_CHECK(r_max > 0);
  Matrix had(r_max, r_max);
  had.set_all(1.0);
  Matrix g(r_max, r_max);
  for (const Matrix& f : factors) {
    la::gram(f, g);
    la::hadamard_inplace(had, g);
  }
  real_t acc = 0.0;
  for (index_t s = 0; s < r_max; ++s) {
    for (index_t r = 0; r < r_max; ++r) {
      acc += lambda[static_cast<std::size_t>(r)] *
             lambda[static_cast<std::size_t>(s)] * had(r, s);
    }
  }
  return acc;
}

void KTensor::validate() const {
  CSTF_CHECK_MSG(!factors.empty(), "KTensor has no factor matrices");
  const index_t r_max = rank();
  CSTF_CHECK_MSG(r_max > 0, "KTensor rank is zero");
  CSTF_CHECK_MSG(lambda.size() == static_cast<std::size_t>(r_max),
                 "lambda has " << lambda.size() << " entries for rank "
                               << r_max);
  for (real_t l : lambda) {
    CSTF_CHECK_MSG(std::isfinite(l), "non-finite lambda entry " << l);
  }
  for (int m = 0; m < num_modes(); ++m) {
    const Matrix& f = factors[static_cast<std::size_t>(m)];
    CSTF_CHECK_MSG(f.rows() > 0, "mode " << m << " factor has no rows");
    CSTF_CHECK_MSG(f.cols() == r_max, "mode " << m << " factor has "
                                              << f.cols()
                                              << " columns for rank " << r_max);
    const real_t* p = f.data();
    for (index_t i = 0; i < f.size(); ++i) {
      CSTF_CHECK_MSG(std::isfinite(p[static_cast<std::size_t>(i)]),
                     "non-finite entry in mode " << m << " factor");
    }
  }
}

real_t KTensor::inner_product_with(const SparseTensor& x) const {
  CSTF_CHECK(x.num_modes() == num_modes());
  return parallel_sum(0, x.nnz(), [&](index_t i) {
    index_t coords[kMaxModes];
    for (int m = 0; m < x.num_modes(); ++m) {
      coords[m] = x.indices(m)[static_cast<std::size_t>(i)];
    }
    return x.values()[static_cast<std::size_t>(i)] * value_at(coords);
  });
}

real_t KTensor::fit_to(const SparseTensor& x) const {
  CSTF_CHECK(x.num_modes() == num_modes());
  const real_t x_norm_sq = x.frobenius_norm_sq();
  const real_t inner = inner_product_with(x);
  const real_t model_sq = norm_sq();
  const real_t residual_sq =
      std::max<real_t>(0.0, x_norm_sq - 2.0 * inner + model_sq);
  if (x_norm_sq <= 0.0) return 1.0;
  return 1.0 - std::sqrt(residual_sq) / std::sqrt(x_norm_sq);
}

namespace {
constexpr char kKtMagic[8] = {'C', 'S', 'T', 'F', 'K', 'T', '1', '\n'};

template <typename T>
void write_raw(std::ostream& out, const T* data, std::size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
void read_raw(std::istream& in, T* data, std::size_t count, const char* what) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  CSTF_CHECK_MSG(in.good(), "ktensor checkpoint truncated reading " << what);
}
}  // namespace

void save_ktensor(const KTensor& model, const std::string& path) {
  CSTF_CHECK(!model.factors.empty());
  CSTF_CHECK(model.lambda.size() == static_cast<std::size_t>(model.rank()));
  std::ofstream out(path, std::ios::binary);
  CSTF_CHECK_MSG(out.good(), "cannot open ktensor checkpoint: " << path);
  out.write(kKtMagic, sizeof(kKtMagic));
  const auto modes = static_cast<std::uint64_t>(model.num_modes());
  const auto rank = static_cast<std::uint64_t>(model.rank());
  write_raw(out, &modes, 1);
  write_raw(out, &rank, 1);
  for (const Matrix& f : model.factors) {
    const auto rows = static_cast<std::uint64_t>(f.rows());
    write_raw(out, &rows, 1);
  }
  write_raw(out, model.lambda.data(), model.lambda.size());
  for (const Matrix& f : model.factors) {
    write_raw(out, f.data(), static_cast<std::size_t>(f.size()));
  }
  CSTF_CHECK_MSG(out.good(), "ktensor checkpoint write failed: " << path);
}

KTensor load_ktensor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CSTF_CHECK_MSG(in.good(), "cannot open ktensor checkpoint: " << path);
  char magic[sizeof(kKtMagic)];
  read_raw(in, magic, sizeof(kKtMagic), "magic");
  CSTF_CHECK_MSG(std::memcmp(magic, kKtMagic, sizeof(kKtMagic)) == 0,
                 "not a CSTFKT1 checkpoint: " << path);
  std::uint64_t modes = 0, rank = 0;
  read_raw(in, &modes, 1, "mode count");
  read_raw(in, &rank, 1, "rank");
  CSTF_CHECK_MSG(modes >= 1 && modes <= static_cast<std::uint64_t>(kMaxModes),
                 "corrupt ktensor mode count " << modes);
  CSTF_CHECK_MSG(rank >= 1 && rank <= (1u << 20), "corrupt rank " << rank);

  std::vector<std::uint64_t> rows(static_cast<std::size_t>(modes));
  read_raw(in, rows.data(), rows.size(), "factor heights");

  KTensor model;
  model.lambda.resize(static_cast<std::size_t>(rank));
  read_raw(in, model.lambda.data(), model.lambda.size(), "lambda");
  for (std::uint64_t m = 0; m < modes; ++m) {
    Matrix f(static_cast<index_t>(rows[static_cast<std::size_t>(m)]),
             static_cast<index_t>(rank));
    read_raw(in, f.data(), static_cast<std::size_t>(f.size()), "factor");
    model.factors.push_back(std::move(f));
  }
  model.validate();  // a structurally valid file can still carry NaNs
  return model;
}

}  // namespace cstf
