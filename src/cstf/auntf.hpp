// AUNTF — Alternating-Update Nonnegative (constrained) Tensor Factorization
// driver: Algorithm 1 of the paper, the class the paper calls AUNTF_GPU.
//
// One outer iteration updates every mode through four phases, timed and
// metered separately so the Figure 1/3 phase breakdowns fall out directly:
//   GRAM       S^(n) = Hadamard of cached Gram matrices of the other modes,
//              plus the post-update Gram recompute of the target mode;
//   MTTKRP     M^(n) = MTTKRP(X, factors, n) via the configured backend;
//   UPDATE     H^(n) = update(S^(n), M^(n)) via the configured UpdateMethod
//              (cuADMM, generic ADMM, blocked ADMM, MU, HALS, ALS);
//   NORMALIZE  column 2-norms absorbed into lambda.
//
// The driver is execution-target agnostic: all work is issued through a
// simgpu::Device, so the same code metered against the A100 spec is the
// paper's GPU framework and against the Xeon spec is a CPU baseline.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/timer.hpp"
#include "cstf/backend.hpp"
#include "cstf/ktensor.hpp"
#include "exec/executor.hpp"
#include "exec/planner.hpp"
#include "updates/update_method.hpp"

namespace cstf {

class Auntf;

struct AuntfOptions {
  index_t rank = 16;
  int max_iterations = 10;

  /// Stop when |fit - previous fit| < tolerance (requires compute_fit).
  real_t fit_tolerance = 0.0;

  /// Seed for the random non-negative factor initialization.
  std::uint64_t seed = 42;

  /// Compute the model fit each outer iteration (adds one inner-product and
  /// a few R^2 kernels; benchmarking runs that only time phases disable it).
  bool compute_fit = true;

  /// Issue the R^2 Gram work (Hadamard product and the post-update Gram
  /// recompute) on its own stream so it is modeled concurrently with the
  /// default-stream MTTKRP of the same mode, with events joining both before
  /// the factor update (Gram_n and MTTKRP_n only depend on Normalize_{n-1}).
  /// Functional results are unchanged — only the modeled timeline overlaps.
  bool pipeline_streams = false;

  /// Invoked inside run() after each completed outer iteration with the
  /// driver and the total completed-iteration count. The checkpoint layer
  /// hooks here to snapshot training state at iteration boundaries.
  std::function<void(const Auntf&, int completed)> on_iteration;

  /// Modeled device bytes of the resident tensor, fed into the compiled
  /// plan's buffer table so its peak-memory estimate covers the tensor.
  /// 0 = a COO-equivalent estimate from the backend's nnz.
  double tensor_device_bytes = 0.0;

  /// Extra configuration digest folded into the plan-cache key, for knobs
  /// the driver cannot see itself (the framework folds its scatter options
  /// in here so a scatter-strategy change recompiles the plan).
  std::uint64_t plan_digest_extra = 0;
};

struct AuntfResult {
  int iterations = 0;
  bool converged = false;
  real_t final_fit = 0.0;
  std::vector<real_t> fit_history;
};

/// A snapshot of everything the run loop carries across outer iterations —
/// the payload of a training checkpoint. Correct ADMM resume needs the
/// per-mode dual variables (warm-started across outer iterations), not just
/// the factors; restoring this state makes a resumed run bit-identical to an
/// uninterrupted one.
struct TrainerState {
  int completed_iterations = 0;
  bool converged = false;
  real_t prev_fit = 0.0;                 // meaningful when has_prev_fit
  bool has_prev_fit = false;             // false until the first fit
  std::vector<real_t> fit_history;
  std::vector<real_t> lambda;
  std::vector<Matrix> factors;           // one per mode
  std::vector<Matrix> duals;             // ADMM U per mode; may be empty
  std::vector<real_t> rho;               // per-mode trace(S_m)/R at capture
  std::array<std::uint64_t, 4> rng{};    // driver RNG state words
};

class Auntf {
 public:
  /// The backend and update method must outlive the driver. The Device is
  /// where all work is metered; wall-clock phase times accumulate in the
  /// driver's PhaseTimer.
  Auntf(simgpu::Device& dev, const MttkrpBackend& backend,
        const UpdateMethod& update, AuntfOptions options);

  /// Per-mode update methods (mixed constraints — e.g. non-negativity on
  /// entity modes and a simplex or smoothness constraint on a
  /// distribution/time mode). `updates` must have one entry per tensor mode;
  /// all must outlive the driver.
  Auntf(simgpu::Device& dev, const MttkrpBackend& backend,
        std::vector<const UpdateMethod*> updates, AuntfOptions options);

  /// (Re-)initializes factors to uniform random non-negative values,
  /// resets Grams, lambda, dual state, timers, and device counters.
  void initialize();

  /// Runs one outer iteration (all modes). Returns the fit if computed,
  /// NaN otherwise.
  real_t iterate();

  /// Runs until convergence or max_iterations total completed iterations
  /// (resume-aware: after import_state() at iteration k, run() performs the
  /// remaining max_iterations - k). The result covers the whole training
  /// history, including iterations before a resume.
  AuntfResult run();

  /// Snapshot of the cross-iteration training state (see TrainerState).
  TrainerState export_state() const;

  /// Restores a snapshot: factors, lambda, ADMM duals, RNG, counters; Grams
  /// are recomputed from the factors (bit-identical to the in-loop
  /// recompute). Marks the driver initialized.
  void import_state(const TrainerState& state);

  /// Outer iterations completed by run() since initialize()/import_state().
  int completed_iterations() const { return completed_iterations_; }

  const std::vector<Matrix>& factors() const { return factors_; }
  const std::vector<real_t>& lambda() const { return lambda_; }

  /// The current model as a Kruskal tensor (copies the factors).
  KTensor ktensor() const;

  /// Wall-clock time per phase since initialize().
  const PhaseTimer& phases() const { return phases_; }

  /// Modeled device time per phase since initialize() — the quantity the
  /// paper's figures are built from.
  const std::map<std::string, double>& modeled_phase_seconds() const {
    return modeled_phase_;
  }

  const AuntfOptions& options() const { return options_; }
  simgpu::Device& device() { return dev_; }

  /// The compiled execution plan for one AO iteration, compiling (and
  /// caching) it on first use. The plan carries the op DAG, lane/event
  /// structure, buffer lifetimes, and the peak-memory estimate that
  /// `cstf_info --plan` dumps.
  const exec::Plan& plan();

  /// The plan-cache key for this driver's configuration: tensor identity,
  /// rank, and a digest of the structure-affecting options.
  exec::PlanKey plan_key() const;

  /// Compiled-plan cache; hit/miss counters back the invalidation tests.
  const exec::PlanCache& plan_cache() const { return plan_cache_; }

 private:
  class PhaseObserver;

  void ensure_executor();
  exec::Plan compile_plan();
  real_t fit_from_workspace();

  simgpu::Device& dev_;
  const MttkrpBackend& backend_;
  std::vector<const UpdateMethod*> updates_;  // one per mode
  AuntfOptions options_;

  std::vector<Matrix> factors_;
  std::vector<Matrix> grams_;       // cached H^(m)^T H^(m), normalized
  std::vector<real_t> lambda_;
  std::vector<ModeState> states_;   // per-mode dual/scratch
  Rng rng_{0};                      // re-seeded by initialize()

  // Cross-iteration run() state; snapshot/restored by export/import_state.
  int completed_iterations_ = 0;
  bool converged_ = false;
  real_t prev_fit_ = 0.0;
  bool has_prev_fit_ = false;
  std::vector<real_t> fit_history_;

  PhaseTimer phases_;
  std::map<std::string, double> modeled_phase_;

  // Plan closures reach factors/grams/state through `this` plus this
  // workspace (factors_ reallocates on initialize(), so closures never
  // capture Matrix pointers). The workspace persists across iterations;
  // every field is fully overwritten before it is read.
  struct IterationWorkspace {
    Matrix s;            // Hadamard-of-Grams S^(n)
    Matrix m_out;        // MTTKRP output
    Matrix last_m;       // final mode's MTTKRP result (fit)
    Matrix gram_unnorm;  // unnormalized Gram of the final mode (fit)
    real_t fit = 0.0;
  };
  IterationWorkspace ws_;

  exec::PlanCache plan_cache_;
  std::unique_ptr<exec::Executor> executor_;
  bool initialized_ = false;
};

}  // namespace cstf
