#include "cstf/framework.hpp"

#include "common/digest.hpp"
#include "common/error.hpp"
#include "cstf/checkpoint.hpp"

namespace cstf {

std::unique_ptr<UpdateMethod> CstfFramework::make_update(
    UpdateScheme scheme, const Proximity& prox, int admm_inner_iterations) {
  switch (scheme) {
    case UpdateScheme::kCuAdmm: {
      AdmmOptions o;
      o.prox = prox;
      o.inner_iterations = admm_inner_iterations;
      o.operation_fusion = true;
      o.preinversion = true;
      return std::make_unique<AdmmUpdate>(o);
    }
    case UpdateScheme::kAdmm: {
      AdmmOptions o;
      o.prox = prox;
      o.inner_iterations = admm_inner_iterations;
      o.operation_fusion = false;
      o.preinversion = false;
      return std::make_unique<AdmmUpdate>(o);
    }
    case UpdateScheme::kMu:
      return std::make_unique<MuUpdate>();
    case UpdateScheme::kHals:
      return std::make_unique<HalsUpdate>();
    case UpdateScheme::kAls:
      return std::make_unique<AlsUpdate>();
    case UpdateScheme::kBpp:
      return std::make_unique<BppUpdate>();
  }
  throw Error("unknown update scheme");
}

FrameworkOptions CstfFramework::apply_tuning(const SparseTensor& tensor,
                                             FrameworkOptions options,
                                             autotune::TuningOutcome* outcome) {
  autotune::TuneInputs in;
  in.tensor = &tensor;
  in.rank = options.rank;
  in.spec = options.device;
  in.scatter = options.scatter;
  in.requested_mode = options.mttkrp_mode;
  in.dimtree_budget_bytes = options.dimtree_budget_bytes;
  // The BLCO backend is not built yet, so the trials model the raw COO
  // stream footprint; the block capacity still enters the fingerprint.
  in.layout_tag = static_cast<std::uint64_t>(options.blco_block_capacity);
  *outcome = autotune::resolve_tuning(in, options.tuning);
  if (outcome->applied) {
    options.scatter.per_mode = outcome->record.scatter_per_mode;
    options.mttkrp_mode = outcome->record.mttkrp_mode;
    if (outcome->record.chunks_per_worker > 0) {
      set_parallel_chunks_per_worker(
          static_cast<index_t>(outcome->record.chunks_per_worker));
    }
  }
  return options;
}

CstfFramework::CstfFramework(const SparseTensor& tensor,
                             FrameworkOptions options)
    : options_(apply_tuning(tensor, std::move(options), &tuning_outcome_)),
      device_(options_.device),
      backend_(tensor, options_.blco_block_capacity, options_.scatter),
      update_(make_update(options_.scheme, options_.prox,
                          options_.admm_inner_iterations)) {
  resolved_mttkrp_ = options_.mttkrp_mode;
  if (resolved_mttkrp_ == MttkrpMode::kAuto) {
    resolved_mttkrp_ = resolve_mttkrp_mode(
        tensor, options_.rank, options_.scatter, options_.device,
        options_.dimtree_budget_bytes, backend_.tensor().storage_bytes());
  }
  if (resolved_mttkrp_ == MttkrpMode::kDimtree) {
    backend_.enable_dimtree(tensor, options_.rank,
                            options_.dimtree_budget_bytes);
  }

  AuntfOptions auntf;
  auntf.rank = options_.rank;
  auntf.max_iterations = options_.max_iterations;
  auntf.fit_tolerance = options_.fit_tolerance;
  auntf.compute_fit = options_.compute_fit;
  auntf.seed = options_.seed;
  auntf.pipeline_streams = options_.pipeline_streams;
  auntf.tensor_device_bytes = backend_.tensor().storage_bytes();
  // Scatter options change the MTTKRP op bodies' behavior without being
  // visible to the driver; fold them into the plan-cache key so a
  // scatter-strategy change recompiles the plan.
  DigestBuilder scatter_digest;
  scatter_digest.u64(static_cast<std::uint64_t>(options_.scatter.strategy))
      .boolean(options_.scatter.deterministic)
      .u64(static_cast<std::uint64_t>(resolved_mttkrp_));
  // The tuning policy and its applied per-mode picks also change the op
  // bodies' behavior (and fp accumulation order); a policy flip or a
  // different cached decision must recompile the plan.
  scatter_digest.u64(static_cast<std::uint64_t>(options_.tuning.policy))
      .u64(static_cast<std::uint64_t>(options_.scatter.per_mode.size()));
  for (ScatterStrategy s : options_.scatter.per_mode) {
    scatter_digest.u64(static_cast<std::uint64_t>(s));
  }
  scatter_digest.u64(
      static_cast<std::uint64_t>(parallel_chunks_per_worker()));
  auntf.plan_digest_extra = scatter_digest.value();
  if (options_.checkpoint_every > 0) {
    CSTF_CHECK_MSG(!options_.checkpoint_path.empty(),
                   "checkpoint_every > 0 requires checkpoint_path");
    auntf.on_iteration = [this](const Auntf&, int completed) {
      if (completed % options_.checkpoint_every == 0) {
        write_checkpoint(options_.checkpoint_path);
      }
    };
  }
  driver_ = std::make_unique<Auntf>(device_, backend_, *update_, auntf);
}

void CstfFramework::write_checkpoint(const std::string& path) const {
  TrainingCheckpoint checkpoint;
  checkpoint.state = driver_->export_state();
  checkpoint.options_digest = digest_training_options(options_);
  checkpoint.seed = options_.seed;
  save_checkpoint(checkpoint, path);
}

void CstfFramework::resume_from_checkpoint(const std::string& path) {
  TrainingCheckpoint checkpoint = load_checkpoint(path);
  const std::uint64_t expected = digest_training_options(options_);
  if (checkpoint.options_digest != expected) {
    throw_model_io(ModelIoStatus::kOptionsMismatch,
                   path + ": checkpoint was written under different training "
                          "options (digest mismatch); resume must only change "
                          "max_iterations / convergence knobs");
  }
  try {
    driver_->import_state(checkpoint.state);
  } catch (const Error& e) {
    // Structural mismatch the digest cannot see (e.g. a different tensor
    // with the same options): surface it as a typed load failure.
    throw_model_io(ModelIoStatus::kInvalidModel, e.what());
  }
  resumed_ = true;
}

AuntfResult CstfFramework::run() {
  if (!options_.resume_from.empty() && !resumed_) {
    resume_from_checkpoint(options_.resume_from);
  }
  AuntfResult result = driver_->run();
  // Exit-path sanity: a NaN that slipped into a factor (bad input data, a
  // broken kernel) would otherwise silently poison fit numbers and any model
  // saved for serving.
  driver_->ktensor().validate();
  return result;
}

double CstfFramework::device_footprint_bytes() {
  // The compiled plan's buffer table covers exactly the resident set a full
  // run needs: the BLCO tensor, factor + dual per mode, the MTTKRP output
  // and update scratch (sized by the longest mode), and the R x R Gram
  // family. Peak is its maximum over op-lifetime-overlapping buffers.
  return driver_->plan().peak_bytes();
}

}  // namespace cstf
