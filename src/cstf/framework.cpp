#include "cstf/framework.hpp"

#include "common/error.hpp"

namespace cstf {

std::unique_ptr<UpdateMethod> CstfFramework::make_update(
    UpdateScheme scheme, const Proximity& prox, int admm_inner_iterations) {
  switch (scheme) {
    case UpdateScheme::kCuAdmm: {
      AdmmOptions o;
      o.prox = prox;
      o.inner_iterations = admm_inner_iterations;
      o.operation_fusion = true;
      o.preinversion = true;
      return std::make_unique<AdmmUpdate>(o);
    }
    case UpdateScheme::kAdmm: {
      AdmmOptions o;
      o.prox = prox;
      o.inner_iterations = admm_inner_iterations;
      o.operation_fusion = false;
      o.preinversion = false;
      return std::make_unique<AdmmUpdate>(o);
    }
    case UpdateScheme::kMu:
      return std::make_unique<MuUpdate>();
    case UpdateScheme::kHals:
      return std::make_unique<HalsUpdate>();
    case UpdateScheme::kAls:
      return std::make_unique<AlsUpdate>();
    case UpdateScheme::kBpp:
      return std::make_unique<BppUpdate>();
  }
  throw Error("unknown update scheme");
}

CstfFramework::CstfFramework(const SparseTensor& tensor,
                             FrameworkOptions options)
    : options_(options),
      device_(options.device),
      backend_(tensor, options.blco_block_capacity, options.scatter),
      update_(make_update(options.scheme, options.prox,
                          options.admm_inner_iterations)) {
  AuntfOptions auntf;
  auntf.rank = options_.rank;
  auntf.max_iterations = options_.max_iterations;
  auntf.fit_tolerance = options_.fit_tolerance;
  auntf.compute_fit = options_.compute_fit;
  auntf.seed = options_.seed;
  auntf.pipeline_streams = options_.pipeline_streams;
  driver_ = std::make_unique<Auntf>(device_, backend_, *update_, auntf);
}

AuntfResult CstfFramework::run() {
  AuntfResult result = driver_->run();
  // Exit-path sanity: a NaN that slipped into a factor (bad input data, a
  // broken kernel) would otherwise silently poison fit numbers and any model
  // saved for serving.
  driver_->ktensor().validate();
  return result;
}

double CstfFramework::device_footprint_bytes() const {
  const double rank = static_cast<double>(options_.rank);
  double bytes = backend_.tensor().storage_bytes();
  double max_rows = 0.0;
  for (int m = 0; m < backend_.num_modes(); ++m) {
    const auto rows = static_cast<double>(backend_.dim(m));
    max_rows = std::max(max_rows, rows);
    // Factor + persistent ADMM dual per mode.
    bytes += 2.0 * rows * rank * sizeof(real_t);
  }
  // MTTKRP output + the two reusable update scratch buffers (sized by the
  // longest mode), plus the R x R Gram/Cholesky matrices.
  bytes += 3.0 * max_rows * rank * sizeof(real_t);
  bytes += 4.0 * rank * rank * sizeof(real_t);
  return bytes;
}

}  // namespace cstf
