// Kruskal tensor: the factored CPD model [lambda; H^(1), ..., H^(N)].
#pragma once

#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "tensor/coo.hpp"

namespace cstf {

/// The output of a CPD factorization: normalized factor matrices plus the
/// per-component weights lambda.
struct KTensor {
  std::vector<Matrix> factors;  // factors[m] is I_m x R
  std::vector<real_t> lambda;   // length R

  int num_modes() const { return static_cast<int>(factors.size()); }
  index_t rank() const {
    return factors.empty() ? 0 : factors[0].cols();
  }

  /// Model value at one coordinate: sum_r lambda_r * prod_m H^(m)(i_m, r).
  real_t value_at(const index_t* coords) const;

  /// Structural + numerical sanity check: at least one mode, every factor
  /// has rank() columns and a positive row count, lambda has rank() entries,
  /// and every stored value (factors and lambda) is finite. Throws
  /// cstf::Error naming the offending mode otherwise. Called on the
  /// framework exit path and on every model load, so a corrupt factor fails
  /// loudly instead of propagating NaNs into fit/serving computations.
  void validate() const;

  /// <X, X_hat> over the nonzeros of `x` (X is zero elsewhere), parallel-
  /// reduced deterministically for a fixed thread count. Shared by fit_to()
  /// and sampled_fit() so the estimator's sample_size >= nnz branch is
  /// bit-identical to the exact fit.
  real_t inner_product_with(const SparseTensor& x) const;

  /// ||X_hat||_F^2 computed in O(N R^2 + sum I_m R) via the Gram identity:
  /// sum_{r,s} lambda_r lambda_s prod_m <h_r^m, h_s^m>.
  real_t norm_sq() const;

  /// Fit against a sparse tensor: 1 - ||X - X_hat||_F / ||X||_F.
  /// Exact (enumerates model values at the nonzeros and uses norm_sq() for
  /// the dense part); intended for validation, not the inner loop.
  real_t fit_to(const SparseTensor& x) const;
};

/// Binary checkpoint of a Kruskal tensor (magic "CSTFKT1", shapes, lambda,
/// raw factor data). Round-trips exactly; throws on bad magic/truncation.
void save_ktensor(const KTensor& model, const std::string& path);
KTensor load_ktensor(const std::string& path);

}  // namespace cstf
