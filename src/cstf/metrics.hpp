// Model-quality metrics for comparing factorizations.
#pragma once

#include "cstf/ktensor.hpp"

namespace cstf {

/// Factor Match Score between two Kruskal tensors of equal rank and shape.
///
/// FMS = (1/R) * sum over greedily matched component pairs (r, s) of
///   penalty(lambda_r, lambda_s) * prod_m |cos(a^m_r, b^m_s)|
/// with penalty = 1 - |la - lb| / max(la, lb). 1.0 means identical models up
/// to component permutation; planted-recovery tests treat FMS > 0.95 as a
/// successful recovery.
double factor_match_score(const KTensor& a, const KTensor& b);

/// Congruence (product of absolute column cosines across modes) between
/// component r of `a` and component s of `b` — the matching kernel FMS uses.
double component_congruence(const KTensor& a, index_t r, const KTensor& b,
                            index_t s);

}  // namespace cstf
