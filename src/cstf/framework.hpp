// CstfFramework — the library's top-level public API.
//
// Mirrors the paper's cSTF-GPU framework: a sparse tensor is ingested into
// the BLCO format, and constrained CPD factorization runs entirely on the
// (simulated) device with the chosen update scheme. Quickstart:
//
//   cstf::FrameworkOptions opts;
//   opts.rank = 32;
//   opts.scheme = cstf::UpdateScheme::kCuAdmm;          // Algorithm 3
//   opts.prox = cstf::Proximity::non_negative();
//   cstf::CstfFramework framework(tensor, opts);
//   auto result = framework.run();
//   cstf::KTensor model = framework.ktensor();
#pragma once

#include <memory>

#include "autotune/tuning.hpp"
#include "cstf/auntf.hpp"
#include "updates/admm.hpp"
#include "updates/als.hpp"
#include "updates/bpp.hpp"
#include "updates/hals.hpp"
#include "updates/mu.hpp"

namespace cstf {

/// Constraint-update algorithm selection (Sections 4.2-4.3, 5.4).
enum class UpdateScheme {
  kCuAdmm,      // GPU-optimized ADMM: operation fusion + pre-inversion
  kAdmm,        // generic ADMM composed from device BLAS calls
  kMu,          // multiplicative update (non-negativity only)
  kHals,        // hierarchical ALS (non-negativity only)
  kAls,         // unconstrained least squares
  kBpp,         // exact NNLS via block principal pivoting (PLANC's ANLS-BPP)
};

struct FrameworkOptions {
  index_t rank = 32;
  int max_iterations = 10;
  real_t fit_tolerance = 0.0;
  bool compute_fit = true;
  std::uint64_t seed = 42;

  UpdateScheme scheme = UpdateScheme::kCuAdmm;

  /// Constraint for the ADMM schemes (MU/HALS are inherently non-negative;
  /// ALS ignores it).
  Proximity prox = Proximity::non_negative();

  /// Inner ADMM iterations (paper fixes 10).
  int admm_inner_iterations = 10;

  /// Execution target for the cost model; defaults to the paper's A100.
  simgpu::DeviceSpec device = simgpu::a100();

  /// BLCO block capacity (nonzeros per device block).
  index_t blco_block_capacity = 4096;

  /// MTTKRP output-accumulation strategy (see mttkrp/scatter.hpp). The
  /// default auto-selects per mode; set `scatter.deterministic` for
  /// bit-identical repeated runs.
  ScatterOptions scatter;

  /// How MTTKRPs are computed (see mttkrp/dimtree.hpp and DESIGN.md §13):
  /// kFlat uses the per-mode BLCO kernels, kDimtree the prefix-chain reuse
  /// engine, and kAuto lets resolve_mttkrp_mode model both over one AO
  /// iteration on `device` and pick the faster. Under
  /// `scatter.deterministic` each engine is bit-reproducible run to run,
  /// and dimtree is additionally bit-identical to the COO reference
  /// `mttkrp_ref` (the flat BLCO kernel regroups per-row sums by block, so
  /// the two engines agree to fp tolerance, not bitwise).
  MttkrpMode mttkrp_mode = MttkrpMode::kAuto;

  /// Byte cap on the dimension tree's nnz x R chain intermediate; over
  /// budget the engine falls back to the flat kernels (and kAuto resolves
  /// to flat).
  double dimtree_budget_bytes = kDefaultDimtreeBudgetBytes;

  /// Model per-mode Gram work concurrently with MTTKRP on a second stream
  /// (see AuntfOptions::pipeline_streams). Off by default: serial modeling.
  bool pipeline_streams = false;

  /// Autotuning policy and trial protocol (see autotune/tuning.hpp). The
  /// default kModel runs no trials and keeps the cost-model path
  /// bit-identical; kMeasure/kCached replace the kAuto resolutions above
  /// with measured per-mode scatter picks, a measured engine choice, and a
  /// tuned chunk count — consulting/refreshing `tuning.cache_path` when set.
  autotune::TuningOptions tuning;

  /// Write a crash-consistent training checkpoint (CSTFCKPT, see
  /// cstf/checkpoint.hpp) to `checkpoint_path` every N completed outer
  /// iterations. 0 disables checkpointing.
  int checkpoint_every = 0;
  std::string checkpoint_path;

  /// Resume training from this checkpoint before the first iteration of
  /// run(). The checkpoint's options digest must match this configuration
  /// (rank, seed, scheme, constraint, ... — everything except
  /// max_iterations and the checkpoint knobs themselves); a resumed run is
  /// bit-identical to an uninterrupted one.
  std::string resume_from;
};

/// End-to-end constrained sparse tensor factorization on the simulated GPU.
class CstfFramework {
 public:
  CstfFramework(const SparseTensor& tensor, FrameworkOptions options);

  // The checkpoint hook captures `this`; pinning the object keeps the
  // capture valid for the framework's whole lifetime.
  CstfFramework(const CstfFramework&) = delete;
  CstfFramework& operator=(const CstfFramework&) = delete;

  /// Runs the factorization to completion. With `resume_from` set, restores
  /// that checkpoint first (throws ModelIoError on corruption or an options
  /// mismatch) and performs only the remaining iterations; with
  /// `checkpoint_every` > 0, snapshots training state to `checkpoint_path`
  /// at the configured iteration boundaries.
  AuntfResult run();

  /// Writes a checkpoint of the driver's current training state (also used
  /// internally by the periodic hook).
  void write_checkpoint(const std::string& path) const;

  /// The factored model after run()/iterate().
  KTensor ktensor() const { return driver_->ktensor(); }

  Auntf& driver() { return *driver_; }
  simgpu::Device& device() { return device_; }
  const UpdateMethod& update_method() const { return *update_; }
  const BlcoBackend& backend() const { return backend_; }

  /// The MTTKRP mode actually in effect after kAuto resolution (never
  /// kAuto). `cstf_info --plan` and the benches report this.
  MttkrpMode resolved_mttkrp_mode() const { return resolved_mttkrp_; }

  /// What the autotuner decided for this run (applied=false under kModel).
  const autotune::TuningOutcome& tuning() const { return tuning_outcome_; }

  /// Builds an update method for a scheme outside the framework (used by
  /// benches that drive Auntf directly).
  static std::unique_ptr<UpdateMethod> make_update(
      UpdateScheme scheme, const Proximity& prox, int admm_inner_iterations);

  /// Device-memory footprint of a fully resident run: the BLCO tensor, the
  /// factor matrices, the ADMM dual/scratch state, and the MTTKRP output.
  /// The paper's framework keeps all of this on the GPU; comparing this
  /// number against the 80 GB HBM of Table 1 shows which full-size datasets
  /// need the out-of-memory streaming mode of the underlying BLCO work
  /// (Nguyen et al.) — Amazon at 1.7 B nonzeros does. The number is the
  /// compiled iteration plan's peak over its buffer-lifetime table (see
  /// exec::Plan::peak_bytes), so `cstf_info --plan` and this always agree.
  double device_footprint_bytes();

 private:
  void resume_from_checkpoint(const std::string& path);

  /// Runs resolve_tuning per `options.tuning` and folds the decision into
  /// the returned options (per-mode scatter picks, concrete MTTKRP mode,
  /// chunk count). Called from options_'s member initializer — the tuned
  /// options must exist before backend_ is constructed from them.
  static FrameworkOptions apply_tuning(const SparseTensor& tensor,
                                       FrameworkOptions options,
                                       autotune::TuningOutcome* outcome);

  // Declared before options_: apply_tuning fills it while options_
  // initializes.
  autotune::TuningOutcome tuning_outcome_;
  FrameworkOptions options_;
  simgpu::Device device_;
  BlcoBackend backend_;
  MttkrpMode resolved_mttkrp_ = MttkrpMode::kFlat;
  std::unique_ptr<UpdateMethod> update_;
  std::unique_ptr<Auntf> driver_;
  bool resumed_ = false;
};

}  // namespace cstf
