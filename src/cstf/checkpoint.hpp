// Crash-consistent training checkpoints (CSTFCKPT files).
//
// A checkpoint snapshots the full cross-iteration state of an AUNTF run —
// factors, lambda, the per-mode ADMM dual variables (the AO-ADMM literature's
// warm start; resume without them is NOT the same algorithm), per-mode rho,
// the driver RNG state, the iteration counter and fit history — so a run
// killed at iteration k and resumed produces factors bit-identical to an
// uninterrupted run.
//
// File layout (same discipline as the .cstf serving format, common/binio.hpp):
//
//   magic    "CSTFCKPT"                     8 bytes
//   version  u32 (kCheckpointFormatVersion)
//   header   u64 options_digest (digest_training_options), u64 seed,
//            u64 rng[4], u32 completed_iterations, u8 converged,
//            u8 has_prev_fit, f64 prev_fit,
//            u64 fit_history length + f64s,
//            u64 num_modes, u64 rank, u64 rows[num_modes]
//   payload  f64 lambda[rank], per mode f64 factor (column-major),
//            per mode u8 has_dual + f64 dual (column-major),
//            per mode f64 rho
//   footer   u64 FNV-1a checksum of every byte from magic through payload
//
// Writes are crash-consistent (tmp + rename): a crash mid-save leaves the
// previous checkpoint intact, and a reader never observes a torn file. Loads
// are fully validated and raise typed ModelIoError (truncated, bit-flipped,
// wrong version, implausible header, options mismatch).
#pragma once

#include <cstdint>
#include <string>

#include "common/binio.hpp"
#include "cstf/auntf.hpp"
#include "cstf/framework.hpp"

namespace cstf {

inline constexpr std::uint32_t kCheckpointFormatVersion = 4;

/// A training snapshot plus the provenance needed to refuse a mismatched
/// resume.
struct TrainingCheckpoint {
  TrainerState state;

  /// digest_training_options() of the run that wrote the checkpoint; resume
  /// validates it against the resuming configuration.
  std::uint64_t options_digest = 0;
  std::uint64_t seed = 0;
};

/// Digest of the FrameworkOptions fields that shape the per-iteration
/// numerics (rank, seed, scheme, constraint, inner iterations, scatter
/// config). Deliberately EXCLUDES max_iterations and the convergence /
/// checkpoint knobs: training 40 iterations, then resuming with
/// max_iterations = 100, is the intended use, and neither changes any
/// iteration's arithmetic.
std::uint64_t digest_training_options(const FrameworkOptions& options);

/// Saves atomically (tmp + rename, trailing checksum). Throws
/// ModelIoError(kOpenFailed / kWriteFailed).
void save_checkpoint(const TrainingCheckpoint& checkpoint,
                     const std::string& path);

/// Loads and fully validates a checkpoint; throws ModelIoError with the
/// matching status on any defect. Never returns partial state.
TrainingCheckpoint load_checkpoint(const std::string& path);

}  // namespace cstf
