#include "cstf/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "la/blas.hpp"

namespace cstf {

double component_congruence(const KTensor& a, index_t r, const KTensor& b,
                            index_t s) {
  CSTF_CHECK(a.num_modes() == b.num_modes());
  double congruence = 1.0;
  for (int m = 0; m < a.num_modes(); ++m) {
    const Matrix& fa = a.factors[static_cast<std::size_t>(m)];
    const Matrix& fb = b.factors[static_cast<std::size_t>(m)];
    CSTF_CHECK(fa.rows() == fb.rows());
    const double na = la::nrm2(fa.rows(), fa.col(r));
    const double nb = la::nrm2(fb.rows(), fb.col(s));
    if (na <= 0.0 || nb <= 0.0) return 0.0;
    const double cos_rs = la::dot(fa.rows(), fa.col(r), fb.col(s)) / (na * nb);
    congruence *= std::abs(cos_rs);
  }
  return congruence;
}

double factor_match_score(const KTensor& a, const KTensor& b) {
  CSTF_CHECK(a.rank() == b.rank() && a.rank() > 0);
  const index_t rank = a.rank();

  // Effective component weights include the column norms (factors may not be
  // normalized).
  auto effective_weight = [](const KTensor& kt, index_t r) {
    double w = r < static_cast<index_t>(kt.lambda.size())
                   ? kt.lambda[static_cast<std::size_t>(r)]
                   : 1.0;
    for (const Matrix& f : kt.factors) w *= la::nrm2(f.rows(), f.col(r));
    return std::abs(w);
  };

  // Greedy maximum matching over congruence (adequate for the near-diagonal
  // matchings recovery tests produce).
  std::vector<bool> used(static_cast<std::size_t>(rank), false);
  double score = 0.0;
  for (index_t r = 0; r < rank; ++r) {
    double best = -1.0;
    index_t best_s = -1;
    for (index_t s = 0; s < rank; ++s) {
      if (used[static_cast<std::size_t>(s)]) continue;
      const double c = component_congruence(a, r, b, s);
      if (c > best) {
        best = c;
        best_s = s;
      }
    }
    used[static_cast<std::size_t>(best_s)] = true;
    const double wa = effective_weight(a, r);
    const double wb = effective_weight(b, best_s);
    const double wmax = std::max(wa, wb);
    const double penalty = wmax > 0.0 ? 1.0 - std::abs(wa - wb) / wmax : 0.0;
    score += penalty * best;
  }
  return score / static_cast<double>(rank);
}

}  // namespace cstf
