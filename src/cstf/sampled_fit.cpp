#include "cstf/sampled_fit.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cstf {

real_t sampled_fit(const KTensor& model, const SparseTensor& x,
                   const SampledFitOptions& options) {
  CSTF_CHECK(model.num_modes() == x.num_modes());
  CSTF_CHECK(options.sample_size > 0);
  const index_t nnz = x.nnz();
  const real_t x_sq = x.frobenius_norm_sq();
  if (x_sq <= 0.0) return 1.0;

  index_t coords[kMaxModes];
  real_t inner = 0.0;
  if (options.sample_size >= nnz) {
    // Same reduction as the exact fit, so the degenerate case is
    // bit-identical to fit_to() (tested).
    inner = model.inner_product_with(x);
  } else {
    Rng rng(options.seed);
    for (index_t s = 0; s < options.sample_size; ++s) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_index(static_cast<std::uint64_t>(nnz)));
      for (int m = 0; m < x.num_modes(); ++m) {
        coords[m] = x.indices(m)[i];
      }
      inner += x.values()[i] * model.value_at(coords);
    }
    inner *= static_cast<real_t>(nnz) /
             static_cast<real_t>(options.sample_size);
  }

  const real_t model_sq = model.norm_sq();
  const real_t residual_sq =
      std::max<real_t>(0.0, x_sq - 2.0 * inner + model_sq);
  return 1.0 - std::sqrt(residual_sq) / std::sqrt(x_sq);
}

}  // namespace cstf
