#include "cstf/backend.hpp"

#include "common/error.hpp"
#include "mttkrp/alto_mttkrp.hpp"
#include "mttkrp/blco_mttkrp.hpp"
#include "mttkrp/coo_mttkrp.hpp"
#include "mttkrp/csf_mttkrp.hpp"
#include "tensor/dense.hpp"

namespace cstf {

BlcoBackend::BlcoBackend(const SparseTensor& coo, index_t block_capacity,
                         ScatterOptions scatter)
    : blco_(coo, block_capacity),
      norm_sq_(coo.frobenius_norm_sq()),
      scatter_(scatter) {}

void BlcoBackend::enable_dimtree(const SparseTensor& coo, index_t rank,
                                 double budget_bytes) {
  CSTF_CHECK_MSG(coo.nnz() == blco_.nnz() &&
                     coo.num_modes() == blco_.num_modes(),
                 "enable_dimtree: tensor does not match the ingested BLCO");
  dimtree_ = std::make_unique<DimTreeEngine>(coo, rank, budget_bytes);
  // Mode-0 / over-budget derives stream the resident tensor once; charge
  // them the BLCO storage footprint so the tree's flat term models the
  // kernel it replaces.
  dimtree_->set_flat_stream_bytes(blco_.storage_bytes());
}

void BlcoBackend::mttkrp(simgpu::Device& dev,
                         const std::vector<Matrix>& factors, int mode,
                         Matrix& out) const {
  if (dimtree_ != nullptr) {
    last_strategy_ = dimtree_->mttkrp(dev, factors, mode, out, scatter_);
    return;
  }
  ScatterOptions opts = scatter_;
  opts.strategy =
      resolve_scatter_strategy_for_mode(opts, mode, dim(mode), out.cols(), nnz());
  const ScatterPlan* plan = nullptr;
  if (opts.strategy == ScatterStrategy::kSorted) {
    plan = &plans_.get(mode, [&] { return blco_scatter_plan(blco_, mode); });
  }
  last_strategy_ = mttkrp_blco(dev, blco_, factors, mode, out, opts, plan);
}

CsfBackend::CsfBackend(const SparseTensor& coo)
    : norm_sq_(coo.frobenius_norm_sq()) {
  trees_.reserve(static_cast<std::size_t>(coo.num_modes()));
  for (int m = 0; m < coo.num_modes(); ++m) {
    trees_.push_back(std::make_unique<CsfTensor>(coo, m));
  }
}

void CsfBackend::mttkrp(simgpu::Device& dev,
                        const std::vector<Matrix>& factors, int mode,
                        Matrix& out) const {
  const CsfTensor& tree = *trees_[static_cast<std::size_t>(mode)];
  dev.record("mttkrp_csf", csf_mttkrp_stats(tree, factors));
  mttkrp_csf(tree, factors, out);
}

AltoBackend::AltoBackend(const SparseTensor& coo, ScatterOptions scatter)
    : alto_(coo), norm_sq_(coo.frobenius_norm_sq()), scatter_(scatter) {}

void AltoBackend::mttkrp(simgpu::Device& dev,
                         const std::vector<Matrix>& factors, int mode,
                         Matrix& out) const {
  ScatterOptions opts = scatter_;
  opts.strategy =
      resolve_scatter_strategy_for_mode(opts, mode, dim(mode), out.cols(), nnz());
  const ScatterPlan* plan = nullptr;
  if (opts.strategy == ScatterStrategy::kSorted) {
    plan = &plans_.get(mode, [&] { return alto_scatter_plan(alto_, mode); });
  }
  simgpu::KernelStats stats = alto_mttkrp_stats(alto_, factors, mode);
  apply_scatter_stats(stats, opts.strategy, dim(mode), out.cols(),
                      static_cast<double>(nnz()));
  dev.record("mttkrp_alto", stats);
  mttkrp_alto(alto_, factors, mode, out, opts, plan);
}

CooBackend::CooBackend(SparseTensor coo, ScatterOptions scatter)
    : coo_(std::move(coo)),
      norm_sq_(coo_.frobenius_norm_sq()),
      scatter_(scatter) {}

void CooBackend::mttkrp(simgpu::Device& dev,
                        const std::vector<Matrix>& factors, int mode,
                        Matrix& out) const {
  ScatterOptions opts = scatter_;
  opts.strategy =
      resolve_scatter_strategy_for_mode(opts, mode, dim(mode), out.cols(), nnz());
  const ScatterPlan* plan = nullptr;
  if (opts.strategy == ScatterStrategy::kSorted) {
    plan = &plans_.get(mode, [&] { return coo_scatter_plan(coo_, mode); });
  }
  // Traffic mirrors the ALTO accounting minus the compression.
  simgpu::KernelStats stats;
  const auto rank = static_cast<double>(factors[0].cols());
  const auto n = static_cast<double>(coo_.nnz());
  const int modes = coo_.num_modes();
  stats.flops = n * rank * static_cast<double>(modes + 1);
  stats.bytes_streamed =
      n * (static_cast<double>(modes) * sizeof(index_t) + sizeof(real_t));
  stats.bytes_random = n * rank * simgpu::kWord * static_cast<double>(modes + 1);
  stats.parallel_items = n;
  apply_scatter_stats(stats, opts.strategy, dim(mode), out.cols(), n);
  dev.record("mttkrp_coo", stats);
  mttkrp_coo(coo_, factors, mode, out, opts, plan);
}

DenseBackend::DenseBackend(DenseTensor dense)
    : dense_(std::move(dense)), norm_sq_(dense_.frobenius_norm_sq()) {}

void DenseBackend::mttkrp(simgpu::Device& dev,
                          const std::vector<Matrix>& factors, int mode,
                          Matrix& out) const {
  simgpu::KernelStats stats;
  const auto rank = static_cast<double>(factors[0].cols());
  const auto elems = static_cast<double>(dense_.num_elements());
  const int modes = dense_.num_modes();
  // The dense MTTKRP touches every tensor element: cost proportional to
  // prod(dims), the property that makes it dominate DenseTF (Figure 1).
  stats.flops = elems * rank * static_cast<double>(modes);
  stats.bytes_streamed = elems * simgpu::kWord;
  stats.bytes_reused = elems * rank * simgpu::kWord;  // factor rows
  double factor_bytes = 0.0;
  for (int m = 0; m < modes; ++m) {
    if (m == mode) continue;
    factor_bytes +=
        static_cast<double>(factors[static_cast<std::size_t>(m)].size()) *
        simgpu::kWord;
  }
  stats.working_set_bytes = factor_bytes;
  stats.parallel_items = static_cast<double>(dense_.dim(mode));
  dev.record("mttkrp_dense", stats);
  dense_mttkrp(dense_, factors, mode, out);
}

}  // namespace cstf
