#include "cstf/auntf.hpp"

#include <cmath>
#include <limits>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "common/random.hpp"
#include "la/blas.hpp"
#include "la/elementwise.hpp"
#include "simgpu/dblas.hpp"
#include "simgpu/launch.hpp"

namespace cstf {

namespace {

/// S = Hadamard over m != mode of grams[m]; an R^2 device kernel.
void hadamard_of_grams(simgpu::Device& dev, const std::vector<Matrix>& grams,
                       int mode, Matrix& s, simgpu::Stream stream = {}) {
  const index_t r = s.rows();
  s.set_all(1.0);
  simgpu::KernelStats stats;
  stats.flops = static_cast<double>(r * r) * static_cast<double>(grams.size());
  stats.bytes_streamed = static_cast<double>(r * r) * simgpu::kWord *
                         static_cast<double>(grams.size() + 1);
  stats.parallel_items = static_cast<double>(r * r);
  dev.record("gram_hadamard", stats, 0.0, stream);
  for (int m = 0; m < static_cast<int>(grams.size()); ++m) {
    if (m == mode) continue;
    la::hadamard_inplace(s, grams[static_cast<std::size_t>(m)]);
  }
}

/// Normalizes H's columns by their 2-norms, absorbing them into lambda.
void normalize_device(simgpu::Device& dev, Matrix& h,
                      std::vector<real_t>& lambda) {
  simgpu::KernelStats stats;
  const double n = static_cast<double>(h.size());
  stats.flops = 3.0 * n;
  stats.bytes_streamed = 2.0 * n * simgpu::kWord;  // one read + one write pass
  stats.parallel_items = static_cast<double>(h.cols());
  stats.launches = 2;  // norm reduction + scale
  dev.record("normalize", stats);
  la::column_norms(h, lambda.data());
  la::scale_columns_inv(h, lambda.data());
}

}  // namespace

/// Per-op accounting hook: reproduces the legacy driver's wall-clock and
/// modeled-time phase attribution. Modeled time is marked at phase-op
/// boundaries, so an unphased op's share (the fit capture) rolls into the
/// next closed phase, exactly as before; fit ops stay outside the four-phase
/// breakdown entirely.
class Auntf::PhaseObserver final : public exec::OpObserver {
 public:
  explicit PhaseObserver(Auntf& self)
      : self_(self), modeled_mark_(self.dev_.modeled_time_s()) {}

  void on_op_begin(const exec::Op& op, int index) override {
    (void)op;
    (void)index;
    timer_.reset();
  }

  void on_op_end(const exec::Op& op, int index) override {
    (void)index;
    if (op.phase.empty() || op.kind == exec::OpKind::kFit) return;
    self_.phases_.add(op.phase, timer_.seconds());
    const double now = self_.dev_.modeled_time_s();
    self_.modeled_phase_[op.phase] += now - modeled_mark_;
    modeled_mark_ = now;
  }

 private:
  Auntf& self_;
  double modeled_mark_;
  Timer timer_;
};

Auntf::Auntf(simgpu::Device& dev, const MttkrpBackend& backend,
             const UpdateMethod& update, AuntfOptions options)
    : Auntf(dev, backend,
            std::vector<const UpdateMethod*>(
                static_cast<std::size_t>(backend.num_modes()), &update),
            std::move(options)) {}

Auntf::Auntf(simgpu::Device& dev, const MttkrpBackend& backend,
             std::vector<const UpdateMethod*> updates, AuntfOptions options)
    : dev_(dev),
      backend_(backend),
      updates_(std::move(updates)),
      options_(options) {
  CSTF_CHECK(options_.rank >= 1);
  CSTF_CHECK(options_.max_iterations >= 1);
  CSTF_CHECK_MSG(static_cast<int>(updates_.size()) == backend_.num_modes(),
                 "need one update method per mode");
  for (const UpdateMethod* u : updates_) CSTF_CHECK(u != nullptr);
}

void Auntf::initialize() {
  const int modes = backend_.num_modes();
  rng_ = Rng(options_.seed);
  factors_.clear();
  grams_.clear();
  states_.assign(static_cast<std::size_t>(modes), ModeState{});
  lambda_.assign(static_cast<std::size_t>(options_.rank), 1.0);
  for (int m = 0; m < modes; ++m) {
    Matrix f(backend_.dim(m), options_.rank);
    f.fill_uniform(rng_, 0.0, 1.0);
    factors_.push_back(std::move(f));
    Matrix g(options_.rank, options_.rank);
    la::gram(factors_.back(), g);
    grams_.push_back(std::move(g));
  }
  completed_iterations_ = 0;
  converged_ = false;
  prev_fit_ = 0.0;
  has_prev_fit_ = false;
  fit_history_.clear();
  phases_.clear();
  modeled_phase_.clear();
  dev_.reset();
  // Fresh factors: any chain the reuse engine carried is stale, exactly
  // like ScatterPlanCache invalidation on re-ingest.
  if (DimTreeEngine* tree = backend_.dimtree()) tree->invalidate();
  initialized_ = true;
}

exec::PlanKey Auntf::plan_key() const {
  // Tensor identity: the backend instance plus its shape/nnz signature (a
  // re-ingested tensor at the same address with different contents still
  // re-keys through nnz/dims).
  DigestBuilder tensor_id;
  tensor_id.u64(static_cast<std::uint64_t>(
      reinterpret_cast<std::uintptr_t>(&backend_)));
  tensor_id.u64(static_cast<std::uint64_t>(backend_.nnz()));
  for (int m = 0; m < backend_.num_modes(); ++m) {
    tensor_id.u64(static_cast<std::uint64_t>(backend_.dim(m)));
  }
  // Structure-affecting options; convergence knobs (max_iterations,
  // fit_tolerance) deliberately excluded — they do not change the plan.
  DigestBuilder opts;
  const DimTreeEngine* tree = backend_.dimtree();
  opts.boolean(options_.pipeline_streams)
      .boolean(options_.compute_fit)
      // Dimtree changes the op set (extend ops, chain buffer, suffix
      // reads); a budget change that flips chain_fits() must recompile.
      .boolean(tree != nullptr && tree->chain_fits())
      .u64(options_.plan_digest_extra);
  return exec::PlanKey{tensor_id.value(),
                       static_cast<std::uint64_t>(options_.rank),
                       opts.value()};
}

exec::Plan Auntf::compile_plan() {
  exec::AoIterationSpec spec;
  spec.num_modes = backend_.num_modes();
  spec.rank = options_.rank;
  spec.pipeline = options_.pipeline_streams;
  spec.compute_fit = options_.compute_fit;
  spec.tensor_bytes =
      options_.tensor_device_bytes > 0.0
          ? options_.tensor_device_bytes
          : static_cast<double>(backend_.nnz()) *
                (static_cast<double>(backend_.num_modes()) * sizeof(index_t) +
                 sizeof(real_t));
  for (int m = 0; m < spec.num_modes; ++m) {
    spec.mode_rows.push_back(backend_.dim(m));
  }

  Auntf* self = this;
  if (DimTreeEngine* tree = backend_.dimtree()) {
    // The chain only enters the plan when it fits the budget — in the flat
    // fallback there is no intermediate to account for and the mttkrp ops
    // keep their flat read sets.
    if (tree->chain_fits()) {
      spec.use_dimtree = true;
      spec.dimtree_chain_bytes = tree->chain_bytes();
      spec.dimtree_extend = [self](exec::ExecContext& ctx, int level) {
        self->backend_.dimtree()->extend_to(ctx.device, self->factors_, level);
      };
    }
  }
  spec.hadamard = [self](exec::ExecContext& ctx, int n) {
    hadamard_of_grams(ctx.device, self->grams_, n, self->ws_.s, ctx.stream);
  };
  spec.mttkrp = [self](exec::ExecContext& ctx, int n) {
    // m_out is one workspace shared by every mode. Size it to *this* mode
    // before each call (resize discards and re-zeroes) and validate after:
    // a shape left over from a larger mode would hand the update stale
    // trailing rows, a hazard that stays latent while modes happen to run
    // in a monotone size order.
    const index_t rows = self->backend_.dim(n);
    const index_t rank = self->options_.rank;
    if (self->ws_.m_out.rows() != rows || self->ws_.m_out.cols() != rank) {
      self->ws_.m_out.resize(rows, rank);
    }
    self->backend_.mttkrp(ctx.device, self->factors_, n, self->ws_.m_out);
    CSTF_CHECK_MSG(
        self->ws_.m_out.rows() == rows && self->ws_.m_out.cols() == rank,
        "mttkrp workspace shape drifted for mode " << n);
  };
  spec.update = [self](exec::ExecContext& ctx, int n) {
    self->updates_[static_cast<std::size_t>(n)]->update(
        ctx.device, self->ws_.s, self->ws_.m_out,
        self->factors_[static_cast<std::size_t>(n)],
        self->states_[static_cast<std::size_t>(n)]);
    // If the chain folded this factor, the whole chain is stale (the
    // in-place buffer cannot shed one level). In the in-order sweep this
    // is a no-op — level == n here, and the explicit extend op folds the
    // fresh contents right after normalization.
    if (DimTreeEngine* tree = self->backend_.dimtree()) {
      tree->note_factor_updated(n);
    }
  };
  spec.normalize = [self](exec::ExecContext& ctx, int n) {
    normalize_device(ctx.device, self->factors_[static_cast<std::size_t>(n)],
                     self->lambda_);
  };
  spec.gram_recompute = [self](exec::ExecContext& ctx, int n) {
    simgpu::dsyrk_gram(ctx.device,
                       self->factors_[static_cast<std::size_t>(n)],
                       self->grams_[static_cast<std::size_t>(n)], ctx.stream);
  };
  spec.fit_capture = [self](exec::ExecContext& ctx) {
    // Fit needs the unnormalized Gram of the final mode and its MTTKRP
    // result; capture before normalization rescales H.
    const auto last =
        static_cast<std::size_t>(self->backend_.num_modes() - 1);
    simgpu::dsyrk_gram(ctx.device, self->factors_[last],
                       self->ws_.gram_unnorm);
    self->ws_.last_m = self->ws_.m_out;
  };
  spec.fit = [self](exec::ExecContext& ctx) {
    (void)ctx;
    self->ws_.fit = self->fit_from_workspace();
  };
  return exec::Planner::compile_ao_iteration(spec);
}

void Auntf::ensure_executor() {
  std::shared_ptr<const exec::Plan> plan =
      plan_cache_.get(plan_key(), [&] { return compile_plan(); });
  if (executor_ == nullptr || &executor_->plan() != plan.get()) {
    executor_ = std::make_unique<exec::Executor>(dev_, std::move(plan));
  }
}

const exec::Plan& Auntf::plan() {
  ensure_executor();
  return executor_->plan();
}

real_t Auntf::iterate() {
  CSTF_CHECK_MSG(initialized_, "call initialize() before iterate()");
  ensure_executor();
  const index_t rank = options_.rank;
  if (ws_.s.rows() != rank || ws_.s.cols() != rank) ws_.s.resize(rank, rank);
  if (ws_.gram_unnorm.rows() != rank || ws_.gram_unnorm.cols() != rank) {
    ws_.gram_unnorm.resize(rank, rank);
  }
  ws_.fit = std::numeric_limits<real_t>::quiet_NaN();

  PhaseObserver observer(*this);
  executor_->run(&observer);

  if (!options_.compute_fit) return std::numeric_limits<real_t>::quiet_NaN();
  return ws_.fit;
}

real_t Auntf::fit_from_workspace() {
  const int modes = backend_.num_modes();
  const index_t rank = options_.rank;
  const int last = modes - 1;

  // ||X_hat||^2 = sum_{r,s} [gram_unnorm(last) .* prod_{m != last} G_m]_{rs}.
  Matrix had(rank, rank);
  hadamard_of_grams(dev_, grams_, last, had);
  la::hadamard_inplace(had, ws_.gram_unnorm);
  real_t model_sq = 0.0;
  for (index_t j = 0; j < rank; ++j) {
    for (index_t i = 0; i < rank; ++i) model_sq += had(i, j);
  }

  // <X, X_hat> = sum_{i,r} M_last(i,r) * H_last_unnorm(i,r); the factor is
  // already normalized, so fold lambda back per column.
  const Matrix& h_last = factors_[static_cast<std::size_t>(last)];
  simgpu::KernelStats stats;
  stats.flops = 2.0 * static_cast<double>(ws_.last_m.size());
  stats.bytes_streamed =
      2.0 * static_cast<double>(ws_.last_m.size()) * simgpu::kWord;
  stats.parallel_items = static_cast<double>(ws_.last_m.size());
  dev_.record("fit_inner_product", stats);
  real_t inner = 0.0;
  for (index_t r = 0; r < rank; ++r) {
    inner += lambda_[static_cast<std::size_t>(r)] *
             la::dot(h_last.rows(), h_last.col(r), ws_.last_m.col(r));
  }

  const real_t x_sq = backend_.norm_sq();
  const real_t residual_sq =
      std::max<real_t>(0.0, x_sq - 2.0 * inner + model_sq);
  if (x_sq <= 0.0) return 1.0;
  return 1.0 - std::sqrt(residual_sq) / std::sqrt(x_sq);
}

AuntfResult Auntf::run() {
  if (!initialized_) initialize();
  // The loop state lives in members (not locals) so a checkpoint taken by
  // the on_iteration hook captures it and import_state() resumes mid-run
  // bit-identically — including the early-stop bookkeeping.
  while (completed_iterations_ < options_.max_iterations && !converged_) {
    const real_t fit = iterate();
    ++completed_iterations_;
    if (options_.compute_fit) {
      fit_history_.push_back(fit);
      if (has_prev_fit_ && options_.fit_tolerance > 0.0 &&
          std::abs(fit - prev_fit_) < options_.fit_tolerance) {
        converged_ = true;
      }
      prev_fit_ = fit;
      has_prev_fit_ = true;
    }
    if (options_.on_iteration) options_.on_iteration(*this, completed_iterations_);
  }
  AuntfResult result;
  result.iterations = completed_iterations_;
  result.converged = converged_;
  result.fit_history = fit_history_;
  result.final_fit = fit_history_.empty() ? 0.0 : fit_history_.back();
  return result;
}

TrainerState Auntf::export_state() const {
  TrainerState state;
  state.completed_iterations = completed_iterations_;
  state.converged = converged_;
  state.prev_fit = prev_fit_;
  state.has_prev_fit = has_prev_fit_;
  state.fit_history = fit_history_;
  state.lambda = lambda_;
  state.factors = factors_;
  state.rng = rng_.state();
  state.duals.reserve(states_.size());
  for (const ModeState& ms : states_) state.duals.push_back(ms.dual);
  // Per-mode rho = trace(Hadamard of the other modes' Grams)/R, the value
  // the next ADMM update will derive (informational: rho is recomputed from
  // the Grams each update, so it is a consequence of the factors, but
  // recording it lets an operator audit a checkpoint without replaying).
  const index_t rank = options_.rank;
  for (std::size_t m = 0; m < factors_.size(); ++m) {
    real_t trace = 0.0;
    for (index_t r = 0; r < rank; ++r) {
      real_t prod = 1.0;
      for (std::size_t k = 0; k < grams_.size(); ++k) {
        if (k == m) continue;
        prod *= grams_[k](r, r);
      }
      trace += prod;
    }
    real_t rho = trace / static_cast<real_t>(rank);
    if (rho <= 0.0) rho = 1.0;
    state.rho.push_back(rho);
  }
  return state;
}

void Auntf::import_state(const TrainerState& state) {
  const int modes = backend_.num_modes();
  CSTF_CHECK_MSG(static_cast<int>(state.factors.size()) == modes,
                 "trainer state has " << state.factors.size()
                                      << " factors, tensor has " << modes
                                      << " modes");
  CSTF_CHECK_MSG(static_cast<index_t>(state.lambda.size()) == options_.rank,
                 "trainer state rank " << state.lambda.size()
                                       << " != configured rank "
                                       << options_.rank);
  for (int m = 0; m < modes; ++m) {
    const Matrix& f = state.factors[static_cast<std::size_t>(m)];
    CSTF_CHECK_MSG(f.rows() == backend_.dim(m) && f.cols() == options_.rank,
                   "trainer state factor " << m << " shape mismatch");
  }
  CSTF_CHECK_MSG(state.duals.empty() ||
                     static_cast<int>(state.duals.size()) == modes,
                 "trainer state dual count mismatch");

  factors_ = state.factors;
  lambda_ = state.lambda;
  states_.assign(static_cast<std::size_t>(modes), ModeState{});
  if (!state.duals.empty()) {
    for (int m = 0; m < modes; ++m) {
      states_[static_cast<std::size_t>(m)].dual =
          state.duals[static_cast<std::size_t>(m)];
    }
  }
  // Grams are derived state: recompute from the restored factors with the
  // same la::gram the in-loop dsyrk_gram recompute calls, so the restored
  // caches are bit-identical to what an uninterrupted run would hold here.
  grams_.clear();
  for (int m = 0; m < modes; ++m) {
    Matrix g(options_.rank, options_.rank);
    la::gram(factors_[static_cast<std::size_t>(m)], g);
    grams_.push_back(std::move(g));
  }
  rng_.set_state(state.rng);
  completed_iterations_ = state.completed_iterations;
  converged_ = state.converged;
  prev_fit_ = state.prev_fit;
  has_prev_fit_ = state.has_prev_fit;
  fit_history_ = state.fit_history;
  phases_.clear();
  modeled_phase_.clear();
  dev_.reset();
  if (DimTreeEngine* tree = backend_.dimtree()) tree->invalidate();
  initialized_ = true;
}

KTensor Auntf::ktensor() const {
  KTensor kt;
  kt.factors = factors_;
  kt.lambda = lambda_;
  return kt;
}

}  // namespace cstf
