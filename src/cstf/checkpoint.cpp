#include "cstf/checkpoint.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/digest.hpp"
#include "metrics/registry.hpp"
#include "parallel/parallel_for.hpp"

namespace cstf {

namespace {

constexpr char kMagic[8] = {'C', 'S', 'T', 'F', 'C', 'K', 'P', 'T'};
constexpr std::uint64_t kMaxRank = 1u << 20;
constexpr std::uint64_t kMaxRows = 1ull << 40;
constexpr std::uint64_t kMaxHistory = 1u << 24;

void write_matrix(HashingWriter& w, const Matrix& m) {
  w.write(m.data(), static_cast<std::size_t>(m.size()) * sizeof(real_t));
}

void read_matrix(HashingReader& r, Matrix& m, const char* what) {
  r.read(m.data(), static_cast<std::size_t>(m.size()) * sizeof(real_t), what);
}

}  // namespace

std::uint64_t digest_training_options(const FrameworkOptions& options) {
  // Field order is part of the digest definition; bump
  // kCheckpointFormatVersion if it changes (v2 added mttkrp_mode, v3 added
  // dimtree_budget_bytes, v4 added the autotuning policy / per-mode picks /
  // chunk knob). Convergence and checkpoint cadence knobs (max_iterations,
  // fit_tolerance, checkpoint_*) are deliberately excluded: a resumed run
  // may legitimately extend or re-schedule a training job without
  // invalidating its checkpoints.
  DigestBuilder d;
  d.u64(static_cast<std::uint64_t>(options.rank))
      .u64(options.seed)
      .u64(static_cast<std::uint64_t>(options.scheme))
      .u64(static_cast<std::uint64_t>(options.prox.kind()))
      .f64(options.prox.param_a())
      .f64(options.prox.param_b())
      .u64(static_cast<std::uint64_t>(options.admm_inner_iterations))
      .u64(static_cast<std::uint64_t>(options.blco_block_capacity))
      .u64(static_cast<std::uint64_t>(options.scatter.strategy))
      .boolean(options.scatter.deterministic)
      .u64(static_cast<std::uint64_t>(options.mttkrp_mode))
      // Under kAuto the budget decides which engine resolve_mttkrp_mode
      // picks, and flat vs dimtree agree only to fp tolerance — so the
      // budget shapes the numerics and must pin the digest.
      .f64(options.dimtree_budget_bytes)
      .boolean(options.compute_fit);
  // Autotuning shapes the numerics the same way: a tuned per-mode scatter
  // pick changes the fp accumulation order, and the chunk knob resizes the
  // privatized tile set. The framework folds applied picks into
  // options.scatter.per_mode before this digest is ever taken, so a
  // checkpoint written under a tuned configuration refuses to resume under
  // a different one.
  d.u64(static_cast<std::uint64_t>(options.tuning.policy))
      .u64(static_cast<std::uint64_t>(options.scatter.per_mode.size()));
  for (ScatterStrategy s : options.scatter.per_mode) {
    d.u64(static_cast<std::uint64_t>(s));
  }
  d.u64(static_cast<std::uint64_t>(parallel_chunks_per_worker()));
  return d.value();
}

namespace {

// checkpoint.saves/loads{result=ok|error}: counts the attempt outcome and
// lets the exception propagate unchanged.
void count_checkpoint_outcome(const char* op, bool ok) {
  metrics::MetricsRegistry::global()
      .counter(std::string("checkpoint.") + op,
               {{"result", ok ? "ok" : "error"}})
      ->inc();
}

void save_checkpoint_impl(const TrainingCheckpoint& checkpoint,
                          const std::string& path) {
  const TrainerState& state = checkpoint.state;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw_model_io(ModelIoStatus::kOpenFailed, "cannot create " + tmp);
    }
    HashingWriter w(out);
    w.write(kMagic, sizeof(kMagic));
    w.write_pod(kCheckpointFormatVersion);
    w.write_pod(checkpoint.options_digest);
    w.write_pod(checkpoint.seed);
    for (std::uint64_t word : state.rng) w.write_pod(word);
    w.write_pod(static_cast<std::uint32_t>(state.completed_iterations));
    w.write_pod(static_cast<std::uint8_t>(state.converged ? 1 : 0));
    w.write_pod(static_cast<std::uint8_t>(state.has_prev_fit ? 1 : 0));
    w.write_pod(static_cast<double>(state.prev_fit));
    w.write_pod(static_cast<std::uint64_t>(state.fit_history.size()));
    for (real_t fit : state.fit_history) w.write_pod(static_cast<double>(fit));
    w.write_pod(static_cast<std::uint64_t>(state.factors.size()));
    w.write_pod(static_cast<std::uint64_t>(state.lambda.size()));
    for (const Matrix& f : state.factors) {
      w.write_pod(static_cast<std::uint64_t>(f.rows()));
    }
    w.write(state.lambda.data(), state.lambda.size() * sizeof(real_t));
    for (const Matrix& f : state.factors) write_matrix(w, f);
    for (std::size_t m = 0; m < state.factors.size(); ++m) {
      const bool has_dual = m < state.duals.size() && !state.duals[m].empty();
      w.write_pod(static_cast<std::uint8_t>(has_dual ? 1 : 0));
      if (has_dual) write_matrix(w, state.duals[m]);
    }
    for (std::size_t m = 0; m < state.factors.size(); ++m) {
      const double rho = m < state.rho.size() ? state.rho[m] : 0.0;
      w.write_pod(rho);
    }
    const std::uint64_t checksum = w.digest();
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    out.close();
    if (!out.good()) {
      std::remove(tmp.c_str());
      throw_model_io(ModelIoStatus::kWriteFailed, "write failed for " + tmp);
    }
  }
  commit_tmp_file(tmp, path);
}

TrainingCheckpoint load_checkpoint_impl(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw_model_io(ModelIoStatus::kOpenFailed, "cannot open " + path);
  }
  HashingReader r(in, path);

  char magic[sizeof(kMagic)];
  r.read(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw_model_io(ModelIoStatus::kBadMagic,
                   path + " is not a CSTFCKPT checkpoint file");
  }
  const auto version = r.read_pod<std::uint32_t>("version");
  if (version != kCheckpointFormatVersion) {
    throw_model_io(ModelIoStatus::kBadVersion,
                   path + ": format version " + std::to_string(version) +
                       " (expected " +
                       std::to_string(kCheckpointFormatVersion) + ")");
  }

  TrainingCheckpoint checkpoint;
  TrainerState& state = checkpoint.state;
  checkpoint.options_digest = r.read_pod<std::uint64_t>("options digest");
  checkpoint.seed = r.read_pod<std::uint64_t>("seed");
  for (std::uint64_t& word : state.rng) {
    word = r.read_pod<std::uint64_t>("rng state");
  }
  state.completed_iterations =
      static_cast<int>(r.read_pod<std::uint32_t>("iteration counter"));
  state.converged = r.read_pod<std::uint8_t>("converged flag") != 0;
  state.has_prev_fit = r.read_pod<std::uint8_t>("prev-fit flag") != 0;
  state.prev_fit = static_cast<real_t>(r.read_pod<double>("previous fit"));
  const auto history = r.read_pod<std::uint64_t>("fit history length");
  if (history > kMaxHistory) {
    throw_model_io(ModelIoStatus::kCorruptHeader,
                   path + ": implausible fit history length " +
                       std::to_string(history));
  }
  state.fit_history.resize(static_cast<std::size_t>(history));
  for (real_t& fit : state.fit_history) {
    fit = static_cast<real_t>(r.read_pod<double>("fit history"));
  }

  const auto modes = r.read_pod<std::uint64_t>("mode count");
  const auto rank = r.read_pod<std::uint64_t>("rank");
  if (modes < 1 || modes > static_cast<std::uint64_t>(kMaxModes)) {
    throw_model_io(ModelIoStatus::kCorruptHeader,
                   path + ": implausible mode count " + std::to_string(modes));
  }
  if (rank < 1 || rank > kMaxRank) {
    throw_model_io(ModelIoStatus::kCorruptHeader,
                   path + ": implausible rank " + std::to_string(rank));
  }
  std::vector<std::uint64_t> rows(static_cast<std::size_t>(modes));
  for (auto& v : rows) {
    v = r.read_pod<std::uint64_t>("factor height");
    if (v < 1 || v > kMaxRows) {
      throw_model_io(ModelIoStatus::kCorruptHeader,
                     path + ": implausible factor height " +
                         std::to_string(v));
    }
  }

  state.lambda.resize(static_cast<std::size_t>(rank));
  r.read(state.lambda.data(), state.lambda.size() * sizeof(real_t), "lambda");
  for (std::uint64_t m = 0; m < modes; ++m) {
    Matrix f(static_cast<index_t>(rows[static_cast<std::size_t>(m)]),
             static_cast<index_t>(rank));
    read_matrix(r, f, "factor data");
    state.factors.push_back(std::move(f));
  }
  for (std::uint64_t m = 0; m < modes; ++m) {
    const bool has_dual = r.read_pod<std::uint8_t>("dual flag") != 0;
    Matrix dual;
    if (has_dual) {
      dual.resize(static_cast<index_t>(rows[static_cast<std::size_t>(m)]),
                  static_cast<index_t>(rank));
      read_matrix(r, dual, "dual data");
    }
    state.duals.push_back(std::move(dual));
  }
  for (std::uint64_t m = 0; m < modes; ++m) {
    state.rho.push_back(static_cast<real_t>(r.read_pod<double>("rho")));
  }

  const std::uint64_t expected = r.digest();
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(stored)) {
    throw_model_io(ModelIoStatus::kTruncated,
                   path + ": truncated reading checksum");
  }
  if (stored != expected) {
    throw_model_io(ModelIoStatus::kChecksumMismatch,
                   path + ": checksum mismatch (file is corrupt)");
  }

  // Finite-value validation: a checkpoint that deserialized cleanly but
  // carries NaN/Inf factors would poison the resumed run.
  for (const Matrix& f : state.factors) {
    for (index_t j = 0; j < f.cols(); ++j) {
      const real_t* col = f.col(j);
      for (index_t i = 0; i < f.rows(); ++i) {
        if (!std::isfinite(col[i])) {
          throw_model_io(ModelIoStatus::kInvalidModel,
                         path + ": non-finite factor entry");
        }
      }
    }
  }
  for (real_t l : state.lambda) {
    if (!std::isfinite(l)) {
      throw_model_io(ModelIoStatus::kInvalidModel,
                     path + ": non-finite lambda entry");
    }
  }
  return checkpoint;
}

}  // namespace

void save_checkpoint(const TrainingCheckpoint& checkpoint,
                     const std::string& path) {
  try {
    save_checkpoint_impl(checkpoint, path);
  } catch (...) {
    count_checkpoint_outcome("saves", false);
    throw;
  }
  count_checkpoint_outcome("saves", true);
}

TrainingCheckpoint load_checkpoint(const std::string& path) {
  try {
    TrainingCheckpoint checkpoint = load_checkpoint_impl(path);
    count_checkpoint_outcome("loads", true);
    return checkpoint;
  } catch (...) {
    count_checkpoint_outcome("loads", false);
    throw;
  }
}

}  // namespace cstf
