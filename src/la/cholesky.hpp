// Cholesky factorization, triangular solves, and SPD inversion.
//
// These are the LAPACK/cuSOLVER pieces the ADMM update needs:
//   cholesky_factor   — dpotrf (lower)
//   trsm_lower/upper  — dtrsm, the forward/backward substitutions of a
//                       Cholesky solve (Algorithm 2 line 6)
//   cholesky_solve    — dpotrs
//   cholesky_invert   — explicit (LL^T)^{-1}, the pre-inversion step of
//                       cuADMM (Algorithm 3 line 4)
#pragma once

#include "la/matrix.hpp"

namespace cstf::la {

/// Computes the lower-triangular L with S = L*L^T. `l` gets the full matrix
/// with zeros above the diagonal. Throws cstf::Error if S is not positive
/// definite (non-positive pivot).
void cholesky_factor(const Matrix& s, Matrix& l);

/// Solves L * X = B in place (forward substitution), L lower triangular.
/// X and B share storage `b`; each column is independent (parallel).
void trsm_lower(const Matrix& l, Matrix& b);

/// Solves L^T * X = B in place (backward substitution), L lower triangular.
void trsm_lower_transpose(const Matrix& l, Matrix& b);

/// Solves (L*L^T) * X = B in place given the Cholesky factor L
/// (forward then backward substitution) — one dpotrs.
void cholesky_solve(const Matrix& l, Matrix& b);

/// Right-side Cholesky solve: X * (L*L^T) = B in place, B of shape I x R
/// with L of order R. This is the orientation the ADMM update needs — H is
/// tall-skinny and the system matrix S + rho*I is R x R — and avoids the
/// transpose copies a left-side dpotrs would force. Rows of B are
/// independent; each runs a forward then a backward substitution chain.
void cholesky_solve_right(const Matrix& l, Matrix& b);

/// Explicit inverse of S = L*L^T given L, via Cholesky-solving the identity.
/// This is the cuADMM pre-inversion: the result lets the iteration replace
/// two triangular solves per step with one GEMM.
void cholesky_invert(const Matrix& l, Matrix& inverse);

/// Convenience: adds `rho` to the diagonal of `s` in place (the diagonal
/// loading S + rho*I from Algorithm 2 line 3).
void add_diagonal(Matrix& s, real_t rho);

}  // namespace cstf::la
