#include "la/blas.hpp"

#include <cmath>

#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"

namespace cstf::la {

index_t op_rows(const Matrix& a, Op op) {
  return op == Op::kNone ? a.rows() : a.cols();
}
index_t op_cols(const Matrix& a, Op op) {
  return op == Op::kNone ? a.cols() : a.rows();
}

namespace {

// Core kernels, one per (op_a, op_b) combination, column-parallel over C.
// The factor-matrix shapes in cSTF are tall-skinny (I x R with small R), so
// parallelizing across C's columns when C is RxR would starve the pool; the
// NN kernel therefore parallelizes across C's rows in blocks instead when C
// is tall.

void gemm_nn(real_t alpha, const Matrix& a, const Matrix& b, real_t beta,
             Matrix& c) {
  const index_t m = c.rows(), n = c.cols(), k = a.cols();
  // C(:,j) = beta*C(:,j) + alpha * sum_l A(:,l) * B(l,j): axpy over columns,
  // fully sequential memory access in A and C. Parallel over row blocks of C
  // so tall C (m >> n) still spreads across workers.
  parallel_for_blocked(0, m, [&](index_t lo, index_t hi) {
    for (index_t j = 0; j < n; ++j) {
      real_t* cj = c.col(j);
      if (beta == 0.0) {
        for (index_t i = lo; i < hi; ++i) cj[i] = 0.0;
      } else if (beta != 1.0) {
        for (index_t i = lo; i < hi; ++i) cj[i] *= beta;
      }
      for (index_t l = 0; l < k; ++l) {
        const real_t ab = alpha * b(l, j);
        if (ab == 0.0) continue;
        const real_t* al = a.col(l);
        for (index_t i = lo; i < hi; ++i) cj[i] += ab * al[i];
      }
    }
  });
}

void gemm_tn(real_t alpha, const Matrix& a, const Matrix& b, real_t beta,
             Matrix& c) {
  // C = alpha * A^T * B: C(i,j) = dot(A(:,i), B(:,j)). C is small (RxR-ish);
  // parallelize over C's columns.
  const index_t m = c.rows(), n = c.cols(), k = a.rows();
  parallel_for(0, n, [&](index_t j) {
    const real_t* bj = b.col(j);
    real_t* cj = c.col(j);
    for (index_t i = 0; i < m; ++i) {
      const real_t* ai = a.col(i);
      real_t acc = 0.0;
      for (index_t l = 0; l < k; ++l) acc += ai[l] * bj[l];
      cj[i] = alpha * acc + (beta == 0.0 ? 0.0 : beta * cj[i]);
    }
  }, /*grain=*/1);
}

void gemm_nt(real_t alpha, const Matrix& a, const Matrix& b, real_t beta,
             Matrix& c) {
  // C = alpha * A * B^T: axpy formulation, row-blocked like NN.
  const index_t m = c.rows(), n = c.cols(), k = a.cols();
  parallel_for_blocked(0, m, [&](index_t lo, index_t hi) {
    for (index_t j = 0; j < n; ++j) {
      real_t* cj = c.col(j);
      if (beta == 0.0) {
        for (index_t i = lo; i < hi; ++i) cj[i] = 0.0;
      } else if (beta != 1.0) {
        for (index_t i = lo; i < hi; ++i) cj[i] *= beta;
      }
      for (index_t l = 0; l < k; ++l) {
        const real_t ab = alpha * b(j, l);
        if (ab == 0.0) continue;
        const real_t* al = a.col(l);
        for (index_t i = lo; i < hi; ++i) cj[i] += ab * al[i];
      }
    }
  });
}

void gemm_tt(real_t alpha, const Matrix& a, const Matrix& b, real_t beta,
             Matrix& c) {
  // C(i,j) = alpha * dot(A(:,i), B(j,:)); B row access is strided but TT only
  // appears in tests, never in a kernel hot path.
  const index_t m = c.rows(), n = c.cols(), k = a.rows();
  parallel_for(0, n, [&](index_t j) {
    real_t* cj = c.col(j);
    for (index_t i = 0; i < m; ++i) {
      const real_t* ai = a.col(i);
      real_t acc = 0.0;
      for (index_t l = 0; l < k; ++l) acc += ai[l] * b(j, l);
      cj[i] = alpha * acc + (beta == 0.0 ? 0.0 : beta * cj[i]);
    }
  }, /*grain=*/1);
}

}  // namespace

void gemm(Op op_a, Op op_b, real_t alpha, const Matrix& a, const Matrix& b,
          real_t beta, Matrix& c) {
  CSTF_CHECK_MSG(op_cols(a, op_a) == op_rows(b, op_b),
                 "gemm inner dims: " << op_cols(a, op_a) << " vs "
                                     << op_rows(b, op_b));
  CSTF_CHECK_MSG(c.rows() == op_rows(a, op_a) && c.cols() == op_cols(b, op_b),
                 "gemm output shape " << c.rows() << "x" << c.cols());
  if (op_a == Op::kNone && op_b == Op::kNone) return gemm_nn(alpha, a, b, beta, c);
  if (op_a == Op::kTranspose && op_b == Op::kNone) return gemm_tn(alpha, a, b, beta, c);
  if (op_a == Op::kNone && op_b == Op::kTranspose) return gemm_nt(alpha, a, b, beta, c);
  return gemm_tt(alpha, a, b, beta, c);
}

void gram(const Matrix& a, Matrix& s) {
  const index_t r = a.cols();
  CSTF_CHECK(s.rows() == r && s.cols() == r);
  const index_t n = a.rows();
  // Upper triangle, then mirror. Parallel over columns of S.
  parallel_for(0, r, [&](index_t j) {
    const real_t* aj = a.col(j);
    for (index_t i = 0; i <= j; ++i) {
      const real_t* ai = a.col(i);
      real_t acc = 0.0;
      for (index_t l = 0; l < n; ++l) acc += ai[l] * aj[l];
      s(i, j) = acc;
    }
  }, /*grain=*/1);
  for (index_t j = 0; j < r; ++j) {
    for (index_t i = j + 1; i < r; ++i) s(i, j) = s(j, i);
  }
}

void gemv(Op op_a, real_t alpha, const Matrix& a, const real_t* x, real_t beta,
          real_t* y) {
  const index_t m = op_rows(a, op_a);
  if (op_a == Op::kNone) {
    if (beta == 0.0) {
      for (index_t i = 0; i < m; ++i) y[i] = 0.0;
    } else if (beta != 1.0) {
      scal(m, beta, y);
    }
    for (index_t j = 0; j < a.cols(); ++j) {
      axpy(a.rows(), alpha * x[j], a.col(j), y);
    }
  } else {
    for (index_t j = 0; j < a.cols(); ++j) {
      const real_t v = alpha * dot(a.rows(), a.col(j), x);
      y[j] = v + (beta == 0.0 ? 0.0 : beta * y[j]);
    }
  }
}

void geam(Op op_a, Op op_b, real_t alpha, const Matrix& a, real_t beta,
          const Matrix& b, Matrix& c) {
  CSTF_CHECK(c.rows() == op_rows(a, op_a) && c.cols() == op_cols(a, op_a));
  CSTF_CHECK(op_rows(a, op_a) == op_rows(b, op_b) &&
             op_cols(a, op_a) == op_cols(b, op_b));
  const index_t m = c.rows(), n = c.cols();
  if (op_a == Op::kNone && op_b == Op::kNone) {
    // Index-aligned elementwise update: element i of C depends only on
    // element i of A and B, so C aliasing either input is well-defined even
    // across parallel blocks (the unfused ADMM updates U in place this way).
    const real_t* pa = a.data();
    const real_t* pb = b.data();
    real_t* pc = c.data();
    parallel_for_blocked(0, m * n, [&](index_t lo, index_t hi) {
      for (index_t i = lo; i < hi; ++i) pc[i] = alpha * pa[i] + beta * pb[i];
    });
    return;
  }
  // A transposed operand is read at (j,i) while C is written at (i,j); an
  // aliased output would read elements it already overwrote.
  CSTF_CHECK_MSG(op_a == Op::kNone || c.data() != a.data(),
                 "geam: output must not alias a transposed A operand");
  CSTF_CHECK_MSG(op_b == Op::kNone || c.data() != b.data(),
                 "geam: output must not alias a transposed B operand");
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      const real_t va = (op_a == Op::kNone) ? a(i, j) : a(j, i);
      const real_t vb = (op_b == Op::kNone) ? b(i, j) : b(j, i);
      c(i, j) = alpha * va + beta * vb;
    }
  }
}

void axpy(index_t n, real_t alpha, const real_t* x, real_t* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scal(index_t n, real_t alpha, real_t* x) {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

real_t dot(index_t n, const real_t* x, const real_t* y) {
  real_t acc = 0.0;
  for (index_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

real_t nrm2(index_t n, const real_t* x) { return std::sqrt(dot(n, x, x)); }

real_t frobenius_norm_sq(const Matrix& a) {
  const real_t* p = a.data();
  const index_t n = a.size();
  return parallel_sum(0, n, [&](index_t i) { return p[i] * p[i]; });
}

real_t frobenius_norm(const Matrix& a) { return std::sqrt(frobenius_norm_sq(a)); }

}  // namespace cstf::la
