#include "la/elementwise.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/parallel_for.hpp"

namespace cstf::la {

void hadamard(const Matrix& a, const Matrix& b, Matrix& c) {
  CSTF_CHECK(a.same_shape(b) && a.same_shape(c));
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  real_t* pc = c.data();
  parallel_for_blocked(0, a.size(), [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) pc[i] = pa[i] * pb[i];
  });
}

void hadamard_inplace(Matrix& c, const Matrix& a) {
  CSTF_CHECK(a.same_shape(c));
  const real_t* pa = a.data();
  real_t* pc = c.data();
  parallel_for_blocked(0, a.size(), [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) pc[i] *= pa[i];
  });
}

void safe_divide(const Matrix& a, const Matrix& b, real_t eps, Matrix& c) {
  CSTF_CHECK(a.same_shape(b) && a.same_shape(c));
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  real_t* pc = c.data();
  parallel_for_blocked(0, a.size(), [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) pc[i] = pa[i] / std::max(pb[i], eps);
  });
}

void clamp_min(Matrix& a, real_t floor) {
  real_t* p = a.data();
  parallel_for_blocked(0, a.size(), [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) p[i] = std::max(p[i], floor);
  });
}

void column_norms(const Matrix& a, real_t* norms) {
  parallel_for(0, a.cols(), [&](index_t j) {
    const real_t* col = a.col(j);
    real_t acc = 0.0;
    for (index_t i = 0; i < a.rows(); ++i) acc += col[i] * col[i];
    norms[j] = std::sqrt(acc);
  }, /*grain=*/1);
}

void column_max_norms(const Matrix& a, real_t* norms) {
  parallel_for(0, a.cols(), [&](index_t j) {
    const real_t* col = a.col(j);
    real_t m = 0.0;
    for (index_t i = 0; i < a.rows(); ++i) m = std::max(m, std::abs(col[i]));
    norms[j] = m;
  }, /*grain=*/1);
}

void scale_columns_inv(Matrix& a, real_t* norms, real_t eps) {
  parallel_for(0, a.cols(), [&](index_t j) {
    if (norms[j] <= eps) {
      norms[j] = 1.0;
      return;
    }
    const real_t inv = 1.0 / norms[j];
    real_t* col = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i) col[i] *= inv;
  }, /*grain=*/1);
}

}  // namespace cstf::la
