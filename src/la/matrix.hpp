// Dense column-major matrix — the storage type for factor matrices.
//
// Column-major is chosen to match BLAS/cuBLAS convention: the paper's update
// kernels are expressed in terms of DGEMM/DGEAM on column-major operands, and
// keeping the same layout makes the traffic accounting in simgpu line up with
// the paper's counts.
#pragma once

#include <initializer_list>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/types.hpp"

namespace cstf {

/// Owning dense matrix of `real_t`, column-major, zero-initialized.
class Matrix {
 public:
  Matrix() = default;

  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), real_t{0}) {
    CSTF_CHECK(rows >= 0 && cols >= 0);
  }

  /// Builds from a row-major initializer list (convenient in tests):
  /// Matrix::from_rows({{1,2},{3,4}}).
  static Matrix from_rows(std::initializer_list<std::initializer_list<real_t>> rows);

  /// Identity matrix of order n.
  static Matrix identity(index_t n);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  real_t* data() { return data_.data(); }
  const real_t* data() const { return data_.data(); }

  /// Pointer to the start of column j.
  real_t* col(index_t j) {
    CSTF_CHECK(j >= 0 && j < cols_);
    return data_.data() + static_cast<std::size_t>(j * rows_);
  }
  const real_t* col(index_t j) const {
    CSTF_CHECK(j >= 0 && j < cols_);
    return data_.data() + static_cast<std::size_t>(j * rows_);
  }

  real_t& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }
  real_t operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }

  /// Row-pointer-free row access helper (strided); prefer column access in
  /// hot loops.
  void set_all(real_t value);

  /// Fills with uniform values in [lo, hi) from `rng`.
  void fill_uniform(Rng& rng, real_t lo = 0.0, real_t hi = 1.0);

  /// Fills with N(mean, stddev) values from `rng`.
  void fill_normal(Rng& rng, real_t mean = 0.0, real_t stddev = 1.0);

  /// Resizes, discarding contents (re-zeroed).
  void resize(index_t rows, index_t cols);

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<real_t> data_;
};

/// Max absolute elementwise difference; the comparison primitive used by
/// tests to check kernel equivalence.
real_t max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace cstf
