#include "la/cholesky.hpp"

#include <cmath>

#include "parallel/parallel_for.hpp"

namespace cstf::la {

void cholesky_factor(const Matrix& s, Matrix& l) {
  const index_t n = s.rows();
  CSTF_CHECK(s.cols() == n);
  if (!l.same_shape(s)) l.resize(n, n);
  // Column-oriented (left-looking) Cholesky; n is the factorization rank
  // (<= 64 in the paper's experiments), so this is sequential by design.
  for (index_t j = 0; j < n; ++j) {
    real_t diag = s(j, j);
    for (index_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    CSTF_CHECK_MSG(diag > 0.0,
                   "matrix not positive definite at pivot " << j
                                                            << " (d=" << diag << ")");
    const real_t ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (index_t i = j + 1; i < n; ++i) {
      real_t acc = s(i, j);
      for (index_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / ljj;
    }
    for (index_t i = 0; i < j; ++i) l(i, j) = 0.0;
  }
}

void trsm_lower(const Matrix& l, Matrix& b) {
  const index_t n = l.rows();
  CSTF_CHECK(l.cols() == n && b.rows() == n);
  // Each right-hand-side column is independent; the substitution within a
  // column is inherently sequential — exactly the serialization the paper
  // calls out as hostile to GPUs (Section 4.3.2).
  parallel_for(0, b.cols(), [&](index_t j) {
    real_t* x = b.col(j);
    for (index_t i = 0; i < n; ++i) {
      real_t acc = x[i];
      for (index_t k = 0; k < i; ++k) acc -= l(i, k) * x[k];
      x[i] = acc / l(i, i);
    }
  }, /*grain=*/1);
}

void trsm_lower_transpose(const Matrix& l, Matrix& b) {
  const index_t n = l.rows();
  CSTF_CHECK(l.cols() == n && b.rows() == n);
  parallel_for(0, b.cols(), [&](index_t j) {
    real_t* x = b.col(j);
    for (index_t i = n - 1; i >= 0; --i) {
      real_t acc = x[i];
      for (index_t k = i + 1; k < n; ++k) acc -= l(k, i) * x[k];
      x[i] = acc / l(i, i);
    }
  }, /*grain=*/1);
}

void cholesky_solve(const Matrix& l, Matrix& b) {
  trsm_lower(l, b);
  trsm_lower_transpose(l, b);
}

void cholesky_solve_right(const Matrix& l, Matrix& b) {
  const index_t r = l.rows();
  CSTF_CHECK(l.cols() == r && b.cols() == r);
  // X (L L^T) = B row-wise: with x, b rows, first solve z L^T = b_row
  // (forward substitution against L), then x L = z (backward substitution).
  parallel_for_blocked(0, b.rows(), [&](index_t lo, index_t hi) {
    std::vector<real_t> row(static_cast<std::size_t>(r));
    for (index_t i = lo; i < hi; ++i) {
      // Forward: z_j = (b_j - sum_{k<j} z_k * L(j,k)) / L(j,j).
      for (index_t j = 0; j < r; ++j) {
        real_t acc = b(i, j);
        for (index_t k = 0; k < j; ++k) acc -= row[static_cast<std::size_t>(k)] * l(j, k);
        row[static_cast<std::size_t>(j)] = acc / l(j, j);
      }
      // Backward: x_j = (z_j - sum_{k>j} x_k * L(k,j)) / L(j,j).
      for (index_t j = r - 1; j >= 0; --j) {
        real_t acc = row[static_cast<std::size_t>(j)];
        for (index_t k = j + 1; k < r; ++k) acc -= b(i, k) * l(k, j);
        b(i, j) = acc / l(j, j);
      }
    }
  }, /*grain=*/64);
}

void cholesky_invert(const Matrix& l, Matrix& inverse) {
  const index_t n = l.rows();
  inverse = Matrix::identity(n);
  cholesky_solve(l, inverse);
  // Symmetrize: substitution rounding can leave the inverse slightly
  // asymmetric, which would bias downstream Gram updates.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) {
      const real_t v = 0.5 * (inverse(i, j) + inverse(j, i));
      inverse(i, j) = v;
      inverse(j, i) = v;
    }
  }
}

void add_diagonal(Matrix& s, real_t rho) {
  CSTF_CHECK(s.rows() == s.cols());
  for (index_t i = 0; i < s.rows(); ++i) s(i, i) += rho;
}

}  // namespace cstf::la
