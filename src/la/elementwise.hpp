// Elementwise matrix kernels shared by the update algorithms.
#pragma once

#include "la/matrix.hpp"

namespace cstf::la {

/// C = A .* B (Hadamard product). C may alias A or B.
void hadamard(const Matrix& a, const Matrix& b, Matrix& c);

/// C = C .* A (in-place Hadamard accumulate-multiply).
void hadamard_inplace(Matrix& c, const Matrix& a);

/// C = A ./ max(B, eps) — guarded elementwise division, the building block of
/// the multiplicative-update (MU) rule where division by ~0 must not produce
/// inf/NaN.
void safe_divide(const Matrix& a, const Matrix& b, real_t eps, Matrix& c);

/// Clamps every element to be >= `floor` in place (projection onto the
/// non-negative orthant when floor == 0).
void clamp_min(Matrix& a, real_t floor);

/// Per-column Euclidean norms of `a`, written to `norms[0..cols)`.
void column_norms(const Matrix& a, real_t* norms);

/// Per-column max-abs values of `a`, written to `norms[0..cols)` — SPLATT
/// normalizes with the max norm on all but the final outer iteration.
void column_max_norms(const Matrix& a, real_t* norms);

/// Divides column j of `a` by norms[j] (columns with norm <= eps are left
/// unscaled and their reported norm set to 1, so degenerate factors do not
/// poison lambda).
void scale_columns_inv(Matrix& a, real_t* norms, real_t eps = 1e-12);

}  // namespace cstf::la
