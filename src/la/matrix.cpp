#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace cstf {

Matrix Matrix::from_rows(
    std::initializer_list<std::initializer_list<real_t>> rows) {
  const auto r = static_cast<index_t>(rows.size());
  CSTF_CHECK(r > 0);
  const auto c = static_cast<index_t>(rows.begin()->size());
  Matrix m(r, c);
  index_t i = 0;
  for (const auto& row : rows) {
    CSTF_CHECK(static_cast<index_t>(row.size()) == c);
    index_t j = 0;
    for (real_t v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

Matrix Matrix::identity(index_t n) {
  Matrix m(n, n);
  for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::set_all(real_t value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::fill_uniform(Rng& rng, real_t lo, real_t hi) {
  for (auto& v : data_) v = rng.uniform(lo, hi);
}

void Matrix::fill_normal(Rng& rng, real_t mean, real_t stddev) {
  for (auto& v : data_) v = rng.normal(mean, stddev);
}

void Matrix::resize(index_t new_rows, index_t new_cols) {
  CSTF_CHECK(new_rows >= 0 && new_cols >= 0);
  rows_ = new_rows;
  cols_ = new_cols;
  data_.assign(static_cast<std::size_t>(new_rows * new_cols), real_t{0});
}

real_t max_abs_diff(const Matrix& a, const Matrix& b) {
  CSTF_CHECK(a.same_shape(b));
  real_t worst = 0.0;
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  const index_t n = a.size();
  for (index_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(pa[i] - pb[i]));
  }
  return worst;
}

}  // namespace cstf
