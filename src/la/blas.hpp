// BLAS subset implemented natively (no external BLAS dependency).
//
// Only the operations the cSTF algorithms need are provided, with the same
// semantics as the corresponding (cu)BLAS routines so the simgpu device BLAS
// can wrap them one-to-one:
//   gemm  — C = alpha*op(A)*op(B) + beta*C          (cublasDgemm)
//   syrk  — S = A^T * A (gram matrix)               (cublasDsyrk, full store)
//   gemv  — y = alpha*op(A)*x + beta*y              (cublasDgemv)
//   geam  — C = alpha*op(A) + beta*op(B)            (cublasDgeam)
// plus vector helpers (axpy/scal/dot/nrm2).
#pragma once

#include "la/matrix.hpp"

namespace cstf::la {

enum class Op { kNone, kTranspose };

/// Dimensions of op(A).
index_t op_rows(const Matrix& a, Op op);
index_t op_cols(const Matrix& a, Op op);

/// General matrix multiply: C = alpha * op(A) * op(B) + beta * C.
/// Shapes are validated; C must already have the result shape.
void gemm(Op op_a, Op op_b, real_t alpha, const Matrix& a, const Matrix& b,
          real_t beta, Matrix& c);

/// Gram matrix: S = A^T * A (S is cols(A) x cols(A), full storage).
/// Exploits symmetry: computes the upper triangle and mirrors it.
void gram(const Matrix& a, Matrix& s);

/// Matrix-vector multiply: y = alpha * op(A) * x + beta * y.
void gemv(Op op_a, real_t alpha, const Matrix& a, const real_t* x, real_t beta,
          real_t* y);

/// Elementwise matrix add with transposes: C = alpha*op(A) + beta*op(B).
/// C may alias A or B only when the corresponding op is kNone.
void geam(Op op_a, Op op_b, real_t alpha, const Matrix& a, real_t beta,
          const Matrix& b, Matrix& c);

/// y += alpha * x over n elements.
void axpy(index_t n, real_t alpha, const real_t* x, real_t* y);

/// x *= alpha over n elements.
void scal(index_t n, real_t alpha, real_t* x);

/// Dot product over n elements.
real_t dot(index_t n, const real_t* x, const real_t* y);

/// Euclidean norm over n elements.
real_t nrm2(index_t n, const real_t* x);

/// Frobenius norm of a matrix.
real_t frobenius_norm(const Matrix& a);

/// Squared Frobenius norm (avoids the sqrt when ratios are needed, as in the
/// ADMM convergence test of Algorithm 2 line 9).
real_t frobenius_norm_sq(const Matrix& a);

}  // namespace cstf::la
