#include "formats/linearize.hpp"

#include "common/error.hpp"
#include "formats/bitpack.hpp"

namespace cstf {

LinearizedEncoding::LinearizedEncoding(const std::vector<index_t>& dims,
                                       BitOrder order)
    : dims_(dims), order_(order) {
  CSTF_CHECK(!dims_.empty());
  const int modes = num_modes();
  bits_.resize(static_cast<std::size_t>(modes));
  masks_.assign(static_cast<std::size_t>(modes), 0);
  positions_.resize(static_cast<std::size_t>(modes));
  int total = 0;
  for (int m = 0; m < modes; ++m) {
    bits_[static_cast<std::size_t>(m)] =
        bits_for(static_cast<std::uint64_t>(dims_[static_cast<std::size_t>(m)]));
    total += bits_[static_cast<std::size_t>(m)];
  }
  CSTF_CHECK_MSG(total <= 64, "linearized coordinate needs " << total
                                                             << " bits (max 64)");
  total_bits_ = total;

  if (order_ == BitOrder::kInterleaved) {
    // Round-robin interleave from the LSB: repeatedly give the next bit
    // position to each mode that still has unassigned bits.
    std::vector<int> assigned(static_cast<std::size_t>(modes), 0);
    int pos = 0;
    bool any = true;
    while (any) {
      any = false;
      for (int m = 0; m < modes; ++m) {
        auto mi = static_cast<std::size_t>(m);
        if (assigned[mi] < bits_[mi]) {
          positions_[mi].push_back(pos);
          masks_[mi] |= lco_t{1} << pos;
          ++pos;
          ++assigned[mi];
          any = true;
        }
      }
    }
  } else {
    // Mode-major: last mode in the low bits, mode 0 on top — the linearized
    // order coincides with a mode-0-first lexicographic sort.
    int pos = 0;
    for (int m = modes - 1; m >= 0; --m) {
      auto mi = static_cast<std::size_t>(m);
      for (int b = 0; b < bits_[mi]; ++b) {
        positions_[mi].push_back(pos);
        masks_[mi] |= lco_t{1} << pos;
        ++pos;
      }
    }
  }
}

lco_t LinearizedEncoding::encode(const index_t* coords) const {
  lco_t lco = 0;
  for (int m = 0; m < num_modes(); ++m) {
    const auto mi = static_cast<std::size_t>(m);
    const auto c = static_cast<lco_t>(coords[m]);
    for (int b = 0; b < bits_[mi]; ++b) {
      lco |= ((c >> b) & 1u) << positions_[mi][static_cast<std::size_t>(b)];
    }
  }
  return lco;
}

index_t LinearizedEncoding::decode(lco_t lco, int mode) const {
  const auto mi = static_cast<std::size_t>(mode);
  lco_t c = 0;
  for (int b = 0; b < bits_[mi]; ++b) {
    c |= ((lco >> positions_[mi][static_cast<std::size_t>(b)]) & 1u)
         << b;
  }
  return static_cast<index_t>(c);
}

void LinearizedEncoding::decode_all(lco_t lco, index_t* coords) const {
  for (int m = 0; m < num_modes(); ++m) coords[m] = decode(lco, m);
}

}  // namespace cstf
