// Fixed-width bit packing, used by BLCO's per-block delta compression.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cstf {

/// Number of bits needed to represent values in [0, n) (at least 1).
int bits_for(std::uint64_t n);

/// Append-only writer of fixed-width codes into a word array.
class BitWriter {
 public:
  explicit BitWriter(int width) : width_(width) {
    CSTF_CHECK(width >= 1 && width <= 64);
  }

  void push(std::uint64_t value);

  const std::vector<std::uint64_t>& words() const { return words_; }
  std::vector<std::uint64_t> take() { return std::move(words_); }
  std::size_t count() const { return count_; }
  int width() const { return width_; }

 private:
  int width_;
  std::size_t count_ = 0;
  std::size_t bit_pos_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Random-access reader of fixed-width codes from a word array.
class BitReader {
 public:
  BitReader(const std::uint64_t* words, int width) : words_(words), width_(width) {}

  std::uint64_t get(std::size_t index) const;

 private:
  const std::uint64_t* words_;
  int width_;
};

}  // namespace cstf
