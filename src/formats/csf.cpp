#include "formats/csf.hpp"

#include "common/error.hpp"

namespace cstf {

CsfTensor::CsfTensor(const SparseTensor& coo, int root_mode) {
  const int modes = coo.num_modes();
  CSTF_CHECK(root_mode >= 0 && root_mode < modes);
  CSTF_CHECK(coo.nnz() > 0);

  mode_order_.push_back(root_mode);
  for (int m = 0; m < modes; ++m) {
    if (m != root_mode) mode_order_.push_back(m);
  }
  dims_ = coo.dims();

  SparseTensor sorted = coo;
  sorted.sort_by_order(mode_order_);
  sorted.dedup_sum();
  const index_t n = sorted.nnz();

  fids_.resize(static_cast<std::size_t>(modes));
  fptr_.resize(static_cast<std::size_t>(modes - 1));
  values_ = sorted.values();

  // The leaf level stores one fid per nonzero.
  fids_[static_cast<std::size_t>(modes - 1)] =
      sorted.indices(mode_order_[static_cast<std::size_t>(modes - 1)]);

  // Build upper levels bottom-up conceptually, but a single forward scan
  // works: a new node opens at level l whenever any coordinate in modes
  // order[0..l] changes from the previous nonzero.
  for (int l = 0; l < modes - 1; ++l) {
    auto& fids = fids_[static_cast<std::size_t>(l)];
    auto& fptr = fptr_[static_cast<std::size_t>(l)];
    fids.clear();
    fptr.clear();
  }

  // child_count[l] tracks how many nodes exist so far at level l+1.
  for (index_t i = 0; i < n; ++i) {
    int first_change = modes;  // deepest level whose prefix is unchanged + 1
    if (i == 0) {
      first_change = 0;
    } else {
      for (int l = 0; l < modes; ++l) {
        const auto& idx =
            sorted.indices(mode_order_[static_cast<std::size_t>(l)]);
        if (idx[static_cast<std::size_t>(i)] != idx[static_cast<std::size_t>(i - 1)]) {
          first_change = l;
          break;
        }
      }
    }
    // A change at level l opens new nodes at levels l..modes-1. The leaf
    // level (modes-1) was materialized wholesale above, so only levels
    // < modes-1 need explicit nodes; each records where its children begin.
    for (int l = first_change; l < modes - 1; ++l) {
      const auto& idx = sorted.indices(mode_order_[static_cast<std::size_t>(l)]);
      fids_[static_cast<std::size_t>(l)].push_back(
          idx[static_cast<std::size_t>(i)]);
      const index_t child_pos =
          (l == modes - 2)
              ? i
              : static_cast<index_t>(fids_[static_cast<std::size_t>(l + 1)].size());
      fptr_[static_cast<std::size_t>(l)].push_back(child_pos);
    }
    // Exact duplicates are impossible after dedup_sum, so first_change is
    // always < modes for i > 0.
    CSTF_CHECK(first_change < modes);
  }

  // Close the child ranges with end sentinels.
  for (int l = 0; l < modes - 1; ++l) {
    const index_t end =
        (l == modes - 2)
            ? n
            : static_cast<index_t>(fids_[static_cast<std::size_t>(l + 1)].size());
    fptr_[static_cast<std::size_t>(l)].push_back(end);
  }
}

double CsfTensor::storage_bytes() const {
  double bytes = static_cast<double>(values_.size()) * sizeof(real_t);
  for (const auto& fids : fids_) {
    bytes += static_cast<double>(fids.size()) * sizeof(index_t);
  }
  for (const auto& fptr : fptr_) {
    bytes += static_cast<double>(fptr.size()) * sizeof(index_t);
  }
  return bytes;
}

}  // namespace cstf
