#include "formats/alto.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/radix_sort.hpp"

namespace cstf {

AltoTensor::AltoTensor(const SparseTensor& coo, BitOrder order)
    : encoding_(coo.dims(), order) {
  const index_t n = coo.nnz();
  CSTF_CHECK(n > 0);
  const int modes = coo.num_modes();

  std::vector<lco_t> lcos(static_cast<std::size_t>(n));
  index_t coords[kMaxModes];
  for (index_t i = 0; i < n; ++i) {
    for (int m = 0; m < modes; ++m) {
      coords[m] = coo.indices(m)[static_cast<std::size_t>(i)];
    }
    lcos[static_cast<std::size_t>(i)] = encoding_.encode(coords);
  }

  // Radix-sort the linearized stream (the construction bottleneck at
  // FROSTT-scale nonzero counts), carrying the source index as payload.
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  radix_sort_pairs(lcos, perm);

  linearized_.reserve(static_cast<std::size_t>(n));
  values_.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const lco_t lco = lcos[static_cast<std::size_t>(i)];
    const real_t v = coo.values()[static_cast<std::size_t>(
        perm[static_cast<std::size_t>(i)])];
    if (!linearized_.empty() && linearized_.back() == lco) {
      values_.back() += v;  // merge duplicates
    } else {
      linearized_.push_back(lco);
      values_.push_back(v);
    }
  }
}

}  // namespace cstf
