// Compressed Sparse Fiber (CSF) — SPLATT's sparse tensor format.
//
// A CSF tensor is a forest: level 0 holds the distinct indices of the root
// mode, each deeper level the distinct index continuations, and the leaves
// hold values. MTTKRP for the root mode walks each tree once, giving
// race-free parallelism over root fibers — the structure the SPLATT CPU
// baseline in Section 5.3 relies on.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "tensor/coo.hpp"

namespace cstf {

/// One CSF representation, rooted at a chosen mode.
class CsfTensor {
 public:
  /// Builds from COO with `root_mode` as the tree root; the remaining modes
  /// follow in ascending order (SPLATT's default ordering). The input is
  /// copied and sorted internally.
  CsfTensor(const SparseTensor& coo, int root_mode);

  int num_modes() const { return static_cast<int>(mode_order_.size()); }
  int root_mode() const { return mode_order_[0]; }
  const std::vector<int>& mode_order() const { return mode_order_; }
  const std::vector<index_t>& dims() const { return dims_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }

  /// Number of nodes at tree level `l` (level 0 = root fibers).
  index_t num_nodes(int level) const {
    return static_cast<index_t>(fids_[static_cast<std::size_t>(level)].size());
  }

  /// Index value (coordinate in mode_order()[level]) of each node.
  const std::vector<index_t>& fids(int level) const {
    return fids_[static_cast<std::size_t>(level)];
  }

  /// Child ranges: children of node i at level l are
  /// [fptr(l)[i], fptr(l)[i+1]) at level l+1. Defined for l in
  /// [0, num_modes()-2]; the last level's "children" are value slots.
  const std::vector<index_t>& fptr(int level) const {
    return fptr_[static_cast<std::size_t>(level)];
  }

  const std::vector<real_t>& values() const { return values_; }

  /// Total bytes of the structure (pointers + ids + values) — the quantity
  /// the CPU MTTKRP streams.
  double storage_bytes() const;

 private:
  std::vector<int> mode_order_;
  std::vector<index_t> dims_;
  std::vector<std::vector<index_t>> fids_;   // per level
  std::vector<std::vector<index_t>> fptr_;   // per level except the last
  std::vector<real_t> values_;
};

}  // namespace cstf
