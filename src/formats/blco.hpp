// BLCO — Blocked Linearized COOrdinate format (Nguyen et al., ICS'22).
//
// The GPU-side sparse format of the paper's framework (Section 2.3/4). The
// linearized nonzero stream is cut into fixed-capacity blocks; within each
// block, coordinates are stored as bit-packed deltas from the block's base
// value, shrinking the per-nonzero index footprint well below the 8 bytes an
// lco_t would need. One copy serves MTTKRP for all modes, and each block is
// an independent unit of GPU work (one thread block).
#pragma once

#include <vector>

#include "formats/bitpack.hpp"
#include "formats/linearize.hpp"

namespace cstf {

/// One BLCO block: `count` nonzeros whose linearized coordinates are
/// base + delta_i, with deltas bit-packed at `delta_bits` each.
struct BlcoBlock {
  lco_t base = 0;
  int delta_bits = 1;
  index_t count = 0;
  /// Offset of this block's first nonzero in the tensor-wide value array.
  index_t value_offset = 0;
  std::vector<std::uint64_t> packed_deltas;
};

class BlcoTensor {
 public:
  /// Builds from COO. `block_capacity` bounds nonzeros per block (the GPU
  /// kernel's unit of work); the default matches a typical thread-block
  /// workload of 4K elements. `order` selects the linearization bit layout.
  explicit BlcoTensor(const SparseTensor& coo, index_t block_capacity = 4096,
                      BitOrder order = BitOrder::kInterleaved);

  const LinearizedEncoding& encoding() const { return encoding_; }
  int num_modes() const { return encoding_.num_modes(); }
  const std::vector<index_t>& dims() const { return encoding_.dims(); }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }
  index_t block_capacity() const { return block_capacity_; }

  index_t num_blocks() const { return static_cast<index_t>(blocks_.size()); }
  const BlcoBlock& block(index_t b) const {
    return blocks_[static_cast<std::size_t>(b)];
  }
  const std::vector<real_t>& values() const { return values_; }

  /// Reconstructs the linearized coordinate of element `i` within block `b`.
  lco_t element_lco(const BlcoBlock& blk, index_t i) const {
    return blk.base +
           BitReader(blk.packed_deltas.data(), blk.delta_bits).get(
               static_cast<std::size_t>(i));
  }

  /// Bytes streamed by one full sweep: packed deltas + block headers +
  /// values. The compression vs COO/ALTO is what the format buys.
  double storage_bytes() const;

 private:
  LinearizedEncoding encoding_;
  index_t block_capacity_;
  std::vector<BlcoBlock> blocks_;
  std::vector<real_t> values_;
};

}  // namespace cstf
