#include "formats/bitpack.hpp"

namespace cstf {

int bits_for(std::uint64_t n) {
  if (n <= 2) return 1;
  int bits = 0;
  std::uint64_t v = n - 1;
  while (v) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

void BitWriter::push(std::uint64_t value) {
  if (width_ < 64) {
    CSTF_CHECK_MSG(value < (std::uint64_t{1} << width_),
                   "value " << value << " exceeds " << width_ << " bits");
  }
  const std::size_t word = bit_pos_ >> 6;
  const int offset = static_cast<int>(bit_pos_ & 63);
  if (word >= words_.size()) words_.push_back(0);
  words_[word] |= value << offset;
  const int spill = offset + width_ - 64;
  if (spill > 0) {
    words_.push_back(value >> (width_ - spill));
  }
  bit_pos_ += static_cast<std::size_t>(width_);
  ++count_;
}

std::uint64_t BitReader::get(std::size_t index) const {
  const std::size_t bit = index * static_cast<std::size_t>(width_);
  const std::size_t word = bit >> 6;
  const int offset = static_cast<int>(bit & 63);
  std::uint64_t value = words_[word] >> offset;
  const int spill = offset + width_ - 64;
  if (spill > 0) {
    value |= words_[word + 1] << (width_ - spill);
  }
  if (width_ < 64) {
    value &= (std::uint64_t{1} << width_) - 1;
  }
  return value;
}

}  // namespace cstf
